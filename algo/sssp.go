package algo

import (
	"math"

	"flash"
	"flash/graph"
)

type ssspProps struct {
	Dis float32
}

// SSSP computes single-source shortest path distances on a weighted graph by
// frontier-based Bellman-Ford relaxation (the standard FLASH formulation:
// EdgeMap relaxes out-edges of vertices whose distance improved).
// Unreachable vertices get +Inf.
func SSSP(g *graph.Graph, root graph.VID, opts ...flash.Option) ([]float32, error) {
	e, err := newEngine[ssspProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	out := make([]float32, g.NumVertices())
	if _, err := e.Run(func() error {
		winf := float32(math.Inf(1))
		e.VertexMap(e.All(), nil, func(v flash.Vertex[ssspProps]) ssspProps {
			if v.ID == root {
				return ssspProps{Dis: 0}
			}
			return ssspProps{Dis: winf}
		})
		u := e.FromIDs(root)
		for u.Size() != 0 {
			u = e.EdgeMapW(u, e.E(),
				func(s, d flash.Vertex[ssspProps], w float32) bool { return s.Val.Dis+w < d.Val.Dis },
				func(s, d flash.Vertex[ssspProps], w float32) ssspProps { return ssspProps{Dis: s.Val.Dis + w} },
				nil,
				func(t, cur ssspProps) ssspProps {
					if t.Dis < cur.Dis {
						return t
					}
					return cur
				})
		}
		e.Gather(func(v graph.VID, val *ssspProps) { out[v] = val.Dis })
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
