package flash_test

import (
	"path/filepath"
	"testing"

	"flash"
	"flash/algo"
	"flash/graph"
)

// openXLBlock writes the bench XL graph to a FLASHBLK file in a test temp dir
// and reopens it out-of-core.
func openXLBlock(t *testing.T, g *graph.Graph, blockSize int) *graph.BlockGraph {
	t.Helper()
	path := filepath.Join(t.TempDir(), g.Name()+".blk")
	if err := graph.WriteBlockFile(g, path, blockSize); err != nil {
		t.Fatalf("WriteBlockFile: %v", err)
	}
	bg, err := graph.OpenBlockFile(path)
	if err != nil {
		t.Fatalf("OpenBlockFile: %v", err)
	}
	t.Cleanup(func() { bg.Close() })
	return bg
}

// TestBlockBackendMatchesCSR runs BFS, CC, and PageRank over the XL bench
// graph through the out-of-core block backend and requires byte-identical
// results against the in-memory CSR, across both transports and worker
// counts. The cache budget is far below the edge bytes, so the runs exercise
// eviction, not just decoding.
func TestBlockBackendMatchesCSR(t *testing.T) {
	g := graph.GenRMAT(16384, 16384*12, 101)
	bg := openXLBlock(t, g, 32<<10)
	sk := bg.Skeleton()

	wantBFS, err := algo.BFS(g, 0)
	if err != nil {
		t.Fatalf("CSR BFS: %v", err)
	}
	wantCC, err := algo.CC(g)
	if err != nil {
		t.Fatalf("CSR CC: %v", err)
	}
	wantPR, err := algo.PageRank(g, 10, 0)
	if err != nil {
		t.Fatalf("CSR PageRank: %v", err)
	}

	budget := int64(bg.EdgeBytes()) / 5 // 20% of decoded edge bytes
	for _, tc := range []struct {
		name string
		opts []flash.Option
	}{
		{"mem-w1", []flash.Option{flash.WithWorkers(1)}},
		{"mem-w4", []flash.Option{flash.WithWorkers(4)}},
		{"tcp-w1", []flash.Option{flash.WithWorkers(1), flash.WithTCP()}},
		{"tcp-w4", []flash.Option{flash.WithWorkers(4), flash.WithTCP()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stats []flash.RunStats
			opts := append([]flash.Option{
				flash.WithBlockBackend(bg),
				flash.WithBlockCacheBytes(budget),
				flash.WithRunStats(func(s flash.RunStats) { stats = append(stats, s) }),
			}, tc.opts...)

			gotBFS, err := algo.BFS(sk, 0, opts...)
			if err != nil {
				t.Fatalf("block BFS: %v", err)
			}
			gotCC, err := algo.CC(sk, opts...)
			if err != nil {
				t.Fatalf("block CC: %v", err)
			}
			gotPR, err := algo.PageRank(sk, 10, 0, opts...)
			if err != nil {
				t.Fatalf("block PageRank: %v", err)
			}

			for i := range wantBFS {
				if gotBFS[i] != wantBFS[i] {
					t.Fatalf("BFS[%d] = %d, want %d", i, gotBFS[i], wantBFS[i])
				}
			}
			for i := range wantCC {
				if gotCC[i] != wantCC[i] {
					t.Fatalf("CC[%d] = %d, want %d", i, gotCC[i], wantCC[i])
				}
			}
			for i := range wantPR {
				if gotPR[i] != wantPR[i] {
					t.Fatalf("PageRank[%d] = %v, want %v", i, gotPR[i], wantPR[i])
				}
			}

			if len(stats) != 3 {
				t.Fatalf("got %d run summaries, want 3", len(stats))
			}
			for i, s := range stats {
				r := s.Result
				if r.BlockMisses == 0 {
					t.Fatalf("run %d: no block reads recorded", i)
				}
				if r.BlockStepsDense+r.BlockStepsSparse == 0 {
					t.Fatalf("run %d: no block supersteps recorded", i)
				}
			}
		})
	}
}

// TestBlockBackendTinyCache forces heavy eviction (budget of a few blocks)
// and still requires exact results — correctness must not depend on
// residency.
func TestBlockBackendTinyCache(t *testing.T) {
	g := graph.GenRMAT(2048, 2048*12, 77)
	bg := openXLBlock(t, g, 4<<10)
	sk := bg.Skeleton()

	want, err := algo.CC(g)
	if err != nil {
		t.Fatalf("CSR CC: %v", err)
	}
	var st flash.RunStats
	got, err := algo.CC(sk,
		flash.WithBlockBackend(bg),
		flash.WithBlockCacheBytes(64<<10), // a handful of decoded blocks
		flash.WithWorkers(2),
		flash.WithRunStats(func(s flash.RunStats) { st = s }))
	if err != nil {
		t.Fatalf("block CC: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CC[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if st.Result.BlockEvictions == 0 {
		t.Fatalf("tiny cache recorded no evictions: %+v", st.Result)
	}
}

// TestBlockHandleAdoption checks that a GraphHandle over a block graph makes
// every engine run out-of-core with no per-job options.
func TestBlockHandleAdoption(t *testing.T) {
	g := graph.GenRMAT(1024, 1024*8, 42)
	bg := openXLBlock(t, g, 8<<10)
	h := flash.NewBlockGraphHandle(bg)
	if h.Block() != bg || h.Graph() != bg.Skeleton() {
		t.Fatalf("handle accessors wrong")
	}

	want, err := algo.BFS(g, 3)
	if err != nil {
		t.Fatalf("CSR BFS: %v", err)
	}
	var st flash.RunStats
	got, err := algo.BFS(h.Graph(), 3,
		flash.WithGraphHandle(h),
		flash.WithRunStats(func(s flash.RunStats) { st = s }))
	if err != nil {
		t.Fatalf("handle BFS: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFS[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if st.Result.BlockMisses == 0 {
		t.Fatalf("handle run did not go through the block backend")
	}
}
