package cluster

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// FaultKind names a process-level fault the chaos injector can deliver.
type FaultKind string

const (
	// FaultKill SIGKILLs the victim: no drain, no flush, no goodbye — the
	// hardest loss the coordinator must survive.
	FaultKill FaultKind = "kill"
	// FaultStall SIGSTOPs the victim: the process stays in the table but
	// stops heartbeating and draining, so peers see a stall and the
	// coordinator's /proc monitor sees state 'T'.
	FaultStall FaultKind = "stall"
	// FaultPartition makes the victim drop every mesh socket (the worker
	// calls DropPeers on its transport). Connections either heal by redial
	// or surface as a peer-stalled failure and a fleet restart.
	FaultPartition FaultKind = "partition"
)

// ChaosPlan injects one process-level fault into a running fleet. The fault
// fires once per Coordinator.Run, even across restarts: the point is to
// prove one loss is survivable, not to starve the job forever.
type ChaosPlan struct {
	Worker   int           // victim worker id
	Kind     FaultKind     // what to inject
	AwaitSeq uint64        // wait until the victim's store holds checkpoint seq >= this (0 = no wait)
	Delay    time.Duration // extra delay after the await condition
}

// runChaos waits for the plan's trigger condition and delivers the fault to
// the victim process of the current epoch. If the epoch ends first (done
// closes), the injection is abandoned un-fired and the next epoch re-arms.
func (c *Coordinator) runChaos(victim *workerProc, done <-chan struct{}) {
	plan := c.cfg.Chaos
	if plan.AwaitSeq > 0 {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for maxCheckpointSeq(c.cfg.StoreDir, plan.Worker) < plan.AwaitSeq {
			select {
			case <-done:
				return
			case <-tick.C:
			}
		}
	}
	if plan.Delay > 0 {
		select {
		case <-done:
			return
		case <-time.After(plan.Delay):
		}
	}
	select {
	case <-done:
		return
	default:
	}
	// Mark fired before delivering: if the kill races the epoch teardown the
	// job still completes, and a double injection would prove nothing more.
	c.chaosFired.Store(true)
	switch plan.Kind {
	case FaultKill:
		_ = victim.cmd.Process.Kill()
	case FaultStall:
		_ = victim.cmd.Process.Signal(syscall.SIGSTOP)
	case FaultPartition:
		_ = victim.send(&Message{Type: MsgChaos, Fault: "partition"})
	}
}

// maxCheckpointSeq scans a worker's store directory for the newest durable
// checkpoint image. It reads only file names (the save path renames images
// into place atomically), so it never races the worker's writes.
func maxCheckpointSeq(storeDir string, worker int) uint64 {
	pattern := filepath.Join(storeDir, fmt.Sprintf("w%03d", worker), "ckpt-*.flashckp")
	names, err := filepath.Glob(pattern)
	if err != nil {
		return 0
	}
	var maxSeq uint64
	for _, name := range names {
		base := strings.TrimSuffix(filepath.Base(name), ".flashckp")
		seqStr := strings.TrimPrefix(base, "ckpt-")
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	return maxSeq
}

// Interrupt sends SIGTERM to one worker of the current fleet — exposed so
// tests can exercise the drain exit path without stopping the whole job.
func (c *Coordinator) Interrupt(worker int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if worker < 0 || worker >= len(c.procs) || c.procs[worker] == nil {
		return fmt.Errorf("cluster: no process for worker %d", worker)
	}
	return c.procs[worker].cmd.Process.Signal(syscall.SIGTERM)
}
