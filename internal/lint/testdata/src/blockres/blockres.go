// Fixture for the blockres analyzer: decoded block adjacency lives in an
// arena that eviction recycles, so no alias of it may outlive the superstep
// scope that fetched the block. Matched by type name (DecodedBlock), like
// the real graph.BlockGraph.ReadBlock result.
package blockres

type VID uint32

// DecodedBlock mirrors graph.DecodedBlock: a resident decoded block whose
// adjacency slices alias the decode arena.
type DecodedBlock struct {
	first VID
	adj   [][]VID
}

// Adj returns the adjacency of v — an alias into the arena.
func (b *DecodedBlock) Adj(v VID) []VID { return b.adj[int(v-b.first)] }

type source struct{ blocks []*DecodedBlock }

func (s *source) ReadBlock(idx int) (*DecodedBlock, error) { return s.blocks[idx], nil }

// adjOf flows its block argument's memory to its return value; callers see
// that through the dataflow summary, not the type.
func adjOf(dec *DecodedBlock, v VID) []VID {
	return dec.adj[int(v-dec.first)]
}

// stashAdj retains its argument in package state.
func stashAdj(a []VID) { lastAdj = a }

// checksum only reads its argument; passing tainted memory is fine.
func checksum(a []VID) int { return len(a) }

var lastAdj []VID

var shipCh = make(chan []VID, 1)

type scan struct{ keep []VID }

func leaks(s *source, h *scan, v VID) {
	dec, _ := s.ReadBlock(0)
	lastAdj = dec.Adj(v)     // want `decoded block memory stored in package state`
	h.keep = dec.Adj(v)      // want `decoded block memory stored through h\.keep`
	shipCh <- dec.Adj(v)     // want `decoded block memory sent on a channel`
	stashAdj(dec.Adj(v))     // want `decoded block memory passed to stashAdj, which retains its argument`
	_ = checksum(dec.Adj(v)) // no diagnostic: the callee does not retain
}

// The interprocedural case: the alias crosses a call boundary before
// leaking, so only the summary (FlowsToRet) connects the block to the sink.
func leaksViaCallee(s *source, v VID) {
	dec, _ := s.ReadBlock(0)
	a := adjOf(dec, v)
	lastAdj = a // want `decoded block memory stored in package state`
}

func leaksCapture(s *source, v VID) {
	dec, _ := s.ReadBlock(0)
	a := dec.Adj(v)
	go func() { // want `decoded block memory captured by go`
		_ = a[0]
	}()
	defer func() { // want `decoded block memory captured by defer`
		_ = len(a)
	}()
}

func returnsAlias(s *source, v VID) []VID {
	dec, _ := s.ReadBlock(0)
	return dec.Adj(v) // want `returning an alias of decoded block adjacency`
}

// Returning the *DecodedBlock itself is sanctioned: the taint is carried by
// the type and re-attaches at every caller.
func returnsBlock(s *source) *DecodedBlock {
	dec, _ := s.ReadBlock(0)
	return dec
}

// Copying the adjacency out severs the alias.
func copiesOut(s *source, v VID) []VID {
	dec, _ := s.ReadBlock(0)
	out := append([]VID(nil), dec.Adj(v)...)
	return out // no diagnostic: fresh copy, not an arena alias
}

// remember models the cache's own bookkeeping: the sanctioned residency
// owner may store blocks by design.
//
//flash:blockowner the cache is the budget-bounded residency authority
func (s *source) remember(dec *DecodedBlock) {
	s.blocks[0] = dec
}

func insertPath(s *source) {
	dec, _ := s.ReadBlock(1)
	s.remember(dec) // no diagnostic: callee is //flash:blockowner
}
