// Package cluster promotes FLASH workers from goroutines to separate OS
// processes. A Coordinator spawns one `flashd worker` subprocess per worker,
// wires them into a TCP mesh (comm.ListenTCPCluster), supervises their
// liveness, and restarts the whole fleet from the durable per-worker stores
// (core.WorkerStore) when a process is lost. The control plane is a
// line-oriented JSON protocol over each worker's stdin/stdout — deliberately
// boring, because the data plane (the worker mesh) is where the throughput
// is, and because a half-dead worker must never be able to wedge the
// coordinator with a partial binary frame.
package cluster

import (
	"encoding/json"
	"fmt"
)

// Worker process exit codes. The coordinator maps these onto restart
// decisions: mesh-failure codes (peer-dead, peer-stalled, protocol) and
// signal deaths are retryable under the restart budget; config and run
// errors are deterministic and terminate the job immediately.
const (
	ExitOK          = 0 // result delivered, clean shutdown
	ExitConfig      = 2 // bad flags, graph spec, algo, or store — retry cannot help
	ExitPeerDead    = 3 // a peer missed its liveness window (comm.ErrPeerDead)
	ExitPeerStalled = 4 // a peer went silent past the drain timeout (comm.ErrPeerStalled)
	ExitDrained     = 5 // SIGTERM received, drained, and shut down on request
	ExitRunError    = 6 // the algorithm itself failed — deterministic, no retry
	ExitProtocol    = 7 // coordinator control channel broken or peer mesh unreachable
)

// Message is one line of the coordinator<->worker control protocol. A single
// struct covers every message type; Type selects which fields are meaningful.
//
//	worker -> coordinator:  register {worker, epoch, addr, latest_seq}
//	coordinator -> worker:  start {peers, resume_seq}
//	worker -> coordinator:  result {result}
//	worker -> coordinator:  fail {error}
//	coordinator -> worker:  chaos {fault}   (test-only fault injection)
type Message struct {
	Type      string          `json:"type"`
	Worker    int             `json:"worker,omitempty"`
	Epoch     uint32          `json:"epoch,omitempty"`
	Addr      string          `json:"addr,omitempty"`
	LatestSeq uint64          `json:"latest_seq,omitempty"`
	Peers     []string        `json:"peers,omitempty"`
	ResumeSeq uint64          `json:"resume_seq,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	Fault     string          `json:"fault,omitempty"`
}

// Message type tags.
const (
	MsgRegister = "register"
	MsgStart    = "start"
	MsgResult   = "result"
	MsgFail     = "fail"
	MsgChaos    = "chaos"
)

// maxControlLine bounds one control-protocol line. Result payloads are JSON
// arrays over the whole vertex set, so the bound is generous; anything past
// it is a hostile or corrupt writer, not a real worker.
const maxControlLine = 64 << 20

// ParseMessage decodes one control line. It is the fuzz surface of the
// control plane: any input must produce a typed error, never a panic, and
// unknown fields are rejected so a confused peer speaking a future protocol
// version fails loudly at the first line.
func ParseMessage(line []byte) (*Message, error) {
	if len(line) == 0 {
		return nil, &ProtocolError{Reason: "empty control line"}
	}
	if len(line) > maxControlLine {
		return nil, &ProtocolError{Reason: fmt.Sprintf("control line of %d bytes exceeds limit %d", len(line), maxControlLine)}
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, &ProtocolError{Reason: "malformed JSON: " + err.Error()}
	}
	switch m.Type {
	case MsgRegister, MsgStart, MsgResult, MsgFail, MsgChaos:
	case "":
		return nil, &ProtocolError{Reason: "missing message type"}
	default:
		return nil, &ProtocolError{Reason: fmt.Sprintf("unknown message type %q", m.Type)}
	}
	return &m, nil
}

// ProtocolError reports a malformed or out-of-order control-plane message.
type ProtocolError struct {
	Reason string
}

func (e *ProtocolError) Error() string { return "cluster: protocol: " + e.Reason }

// WorkerError attributes a cluster job failure to one worker process. It is
// the coordinator's verdict: ExitCode is the process's exit status (-1 when
// it died by signal or never exited), Verdict the classified cause.
type WorkerError struct {
	Worker   int
	ExitCode int
	Verdict  string // "killed", "stalled", "peer-dead", "peer-stalled", "config", "run-error", "protocol", "drained", "diverged", "register-timeout"
	Err      error
}

func (e *WorkerError) Error() string {
	s := fmt.Sprintf("cluster: worker %d %s (exit code %d)", e.Worker, e.Verdict, e.ExitCode)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *WorkerError) Unwrap() error { return e.Err }

// Verdicts the coordinator assigns. Retryable verdicts trigger a
// restart-all at the next epoch (under the MaxRestarts budget); the rest
// terminate the job.
const (
	VerdictKilled          = "killed"       // died by signal (SIGKILL chaos, OOM)
	VerdictStalled         = "stalled"      // process alive but stopped (SIGSTOP: /proc state T)
	VerdictPeerDead        = "peer-dead"    // worker reported a dead peer
	VerdictPeerStalled     = "peer-stalled" // worker reported a stalled peer
	VerdictConfig          = "config"       // bad configuration — permanent
	VerdictRunError        = "run-error"    // algorithm failure — permanent
	VerdictProtocol        = "protocol"     // control channel broken
	VerdictDrained         = "drained"      // clean SIGTERM drain (coordinator Stop)
	VerdictDiverged        = "diverged"     // replicated results not byte-identical — permanent
	VerdictRegisterTimeout = "register-timeout"
)

// retryableVerdict reports whether the coordinator should respawn the fleet
// after this failure. Deterministic failures (config, run-error, diverged)
// would fail identically on every retry; a drain is a requested shutdown.
func retryableVerdict(v string) bool {
	switch v {
	case VerdictKilled, VerdictStalled, VerdictPeerDead, VerdictPeerStalled,
		VerdictProtocol, VerdictRegisterTimeout:
		return true
	}
	return false
}

// verdictForExit classifies a worker's own exit code.
func verdictForExit(code int) string {
	switch code {
	case ExitConfig:
		return VerdictConfig
	case ExitPeerDead:
		return VerdictPeerDead
	case ExitPeerStalled:
		return VerdictPeerStalled
	case ExitDrained:
		return VerdictDrained
	case ExitRunError:
		return VerdictRunError
	case ExitProtocol:
		return VerdictProtocol
	}
	return VerdictKilled
}
