// Fixture for the slotindex analyzer: //flash:slot-indexed slices hold one
// entry per resident vertex and may only be indexed through the slot table.
package slotindex

import "slotindex/slotdep"

type VID uint32

type SlotTable struct{}

func (s *SlotTable) Slot(v VID) int           { return int(v) }
func (s *SlotTable) Lookup(v VID) (int, bool) { return int(v), true }

type worker struct {
	st *SlotTable
	// cur holds per-resident-vertex state in compact slot order.
	cur []float64 //flash:slot-indexed
	// scratch is plain per-worker scratch, not slot-ordered.
	scratch []float64
}

func bad(w *worker, gid VID) float64 {
	a := w.cur[gid]      // want `derived from a raw vertex id`
	b := w.cur[int(gid)] // want `derived from a raw vertex id`
	l := int(gid) + 1
	c := w.cur[l] // want `derived from a raw vertex id`
	return a + b + c
}

func good(w *worker, gid VID) float64 {
	s := w.st.Slot(gid)
	a := w.cur[s] // no diagnostic: slot-table derived
	if slot, ok := w.st.Lookup(gid); ok {
		a += w.cur[slot] // no diagnostic: Lookup result
	}
	a += w.cur[0] // no diagnostic: constant index
	for i := range w.cur {
		a += w.cur[i] // no diagnostic: index from ranging the slice itself
	}
	a += w.scratch[int(gid)] // no diagnostic: slice is not tagged
	return a
}

// Cross-package derivation: slotdep.AsIndex derives its result from the raw
// vertex id (per its summary), so the index is still raw; slotdep.SlotOf is
// a //flash:slot-launder boundary, the pinned negative v1 applied to every
// call indiscriminately.
func crossPackage(w *worker, gid VID) float64 {
	a := w.cur[slotdep.AsIndex(slotdep.VID(gid))] // want `derived from a raw vertex id`
	s := slotdep.SlotOf(slotdep.VID(gid))
	return a + w.cur[s] // no diagnostic: laundered in the dep package
}
