// Package bitset provides a dense, fixed-capacity bitmap used throughout the
// runtime for vertex subsets, mirror masks, and frontier bitmaps.
//
// The zero value is an empty bitset of capacity zero; use New to allocate one
// with a given capacity. Methods that combine two bitsets require equal
// capacities and panic otherwise: sets of different capacity indicate a
// programming error (mixing vertex universes), not a recoverable condition.
package bitset

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitset is a fixed-capacity set of integers in [0, Cap).
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty bitset with capacity n.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap returns the capacity (the exclusive upper bound on members).
func (b *Bitset) Cap() int { return b.n }

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Set adds i to the set.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear removes i from the set.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether i is in the set.
func (b *Bitset) Test(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// TestAndSet adds i and reports whether it was already present.
func (b *Bitset) TestAndSet(i int) bool {
	b.check(i)
	w, m := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	old := b.words[w]&m != 0
	b.words[w] |= m
	return old
}

// Count returns the number of members.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no members.
func (b *Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset removes all members.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill adds every integer in [0, Cap).
func (b *Bitset) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// trim clears bits at positions >= n in the last word.
func (b *Bitset) trim() {
	if rem := b.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with the contents of o (capacities must match).
func (b *Bitset) CopyFrom(o *Bitset) {
	b.sameCap(o)
	copy(b.words, o.words)
}

func (b *Bitset) sameCap(o *Bitset) {
	if b.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", b.n, o.n))
	}
}

// Union adds every member of o to b.
func (b *Bitset) Union(o *Bitset) {
	b.sameCap(o)
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// Intersect removes members of b not present in o.
func (b *Bitset) Intersect(o *Bitset) {
	b.sameCap(o)
	for i, w := range o.words {
		b.words[i] &= w
	}
}

// Minus removes every member of o from b.
func (b *Bitset) Minus(o *Bitset) {
	b.sameCap(o)
	for i, w := range o.words {
		b.words[i] &^= w
	}
}

// Equal reports whether b and o contain exactly the same members.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range o.words {
		if b.words[i] != w {
			return false
		}
	}
	return true
}

// Range calls f for each member in ascending order, stopping early if f
// returns false.
func (b *Bitset) Range(f func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !f(wi*wordBits + t) {
				return
			}
			w &= w - 1
		}
	}
}

// Members appends all members in ascending order to dst and returns it.
func (b *Bitset) Members(dst []int) []int {
	b.Range(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// Words exposes the backing words for bulk transfer (e.g. frontier
// broadcast). The slice must not be resized by callers.
func (b *Bitset) Words() []uint64 { return b.words }

// SetWords overwrites the backing words from src, which must have been
// produced by Words on a bitset of the same capacity.
func (b *Bitset) SetWords(src []uint64) {
	if len(src) != len(b.words) {
		panic("bitset: word length mismatch")
	}
	copy(b.words, src)
	b.trim()
}

// String renders the set as {a, b, c} for debugging.
func (b *Bitset) String() string {
	s := "{"
	first := true
	b.Range(func(i int) bool {
		if !first {
			s += " "
		}
		first = false
		s += fmt.Sprint(i)
		return true
	})
	return s + "}"
}
