package core

import (
	"fmt"

	"flash/graph"
)

// Get returns v's current state as held by its master. It is FLASHWARE's
// get(id) for driver-side result extraction and for algorithms that read
// arbitrary vertices between supersteps (requires FullMirrors only when
// called from inside step callbacks via Ctx; this driver-side form is always
// exact).
func (e *Engine[V]) Get(v graph.VID) V {
	e.checkVertex(v)
	if e.resident >= 0 && e.place.Owner(v) != e.resident {
		panic(fmt.Sprintf("core: Get(%d) in cluster mode: vertex is mastered by worker %d, this process is worker %d (use Gather/Fold)",
			v, e.place.Owner(v), e.resident))
	}
	return e.workers[e.place.Owner(v)].cur[e.place.LocalIndex(v)]
}

// Set overwrites v's state on its master and on every worker currently
// holding a mirror of it. It runs between supersteps (driver-side) and is
// intended for seeding initial values cheaper than a VertexMap.
func (e *Engine[V]) Set(v graph.VID, val V) {
	e.checkVertex(v)
	for _, w := range e.workers {
		if w.cur == nil {
			continue // cluster shell: the owning process seeds its own copy
		}
		if slot, ok := w.st.Lookup(v); ok {
			w.cur[slot] = val
		}
	}
}

// Gather calls f for every vertex in ascending id order with the master's
// current state. Driver-side.
func (e *Engine[V]) Gather(f func(v graph.VID, val *V)) {
	if e.resident >= 0 {
		e.gatherCluster(f)
		return
	}
	for v := 0; v < e.g.NumVertices(); v++ {
		gid := graph.VID(v)
		f(gid, &e.workers[e.place.Owner(gid)].cur[e.place.LocalIndex(gid)])
	}
}

// Fold accumulates a driver-side reduction over all masters' states.
func Fold[V, T any](e *Engine[V], init T, f func(acc T, v graph.VID, val *V) T) T {
	acc := init
	e.Gather(func(v graph.VID, val *V) {
		acc = f(acc, v, val)
	})
	return acc
}

// CheckMirrorCoherence verifies that every mirror equals its master's state
// according to eq. Tests call it after supersteps to assert the §IV-A
// consistency invariant ("the current states of a vertex are ensured to be
// consistent on all workers who access it").
func (e *Engine[V]) CheckMirrorCoherence(eq func(a, b V) bool) error {
	if e.resident >= 0 {
		// Cluster mode: masters live in peer processes, so the invariant is
		// not checkable locally. The cross-process golden tests compare full
		// results instead.
		return nil
	}
	for _, w := range e.workers {
		var err error
		w.part.Mirrors.Range(func(v int) bool {
			master := e.Get(graph.VID(v))
			if !eq(w.cur[w.st.Slot(graph.VID(v))], master) {
				err = &CoherenceError{Worker: w.id, Vertex: graph.VID(v)}
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// CoherenceError reports a mirror that diverged from its master.
type CoherenceError struct {
	Worker int
	Vertex graph.VID
}

func (e *CoherenceError) Error() string {
	return fmt.Sprintf("core: mirror of vertex %d on worker %d diverged from master", e.Vertex, e.Worker)
}
