package algo

// Golden reference tests: every algorithm in the package runs against a
// brute-force single-threaded oracle on small deterministic graphs, across
// worker counts {1, 2, 4} and both transports (in-memory exchange and real
// TCP loopback). The regular *_test.go suites pin correctness on the mem
// transport with workers {1, 3}; this file is the wider matrix the perf work
// must not disturb — pooled frames, delta-coded vids, and the fixed codec
// all sit on the wire path TCP exercises for real.

import (
	"fmt"
	"math"
	"testing"

	"flash"
	"flash/graph"
)

var goldenWorkers = []int{1, 2, 4}

// goldenGraphs are deliberately tiny: the full matrix multiplies every graph
// by 6 engine configurations per algorithm, half of them over TCP.
func goldenGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":     graph.GenPath(12),
		"er":       graph.GenErdosRenyi(24, 70, 5),
		"complete": graph.GenComplete(6),
		"tree":     graph.GenTree(15, 3),
	}
}

// goldenDirected are the directed inputs for SCC.
func goldenDirected() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"randdir": graph.GenRandomDirected(30, 90, 7),
		"cycles":  graph.FromEdges(6, true, [][2]graph.VID{{0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 2}, {1, 2}}),
		"dag":     graph.FromEdges(6, true, [][2]graph.VID{{0, 1}, {1, 2}, {0, 3}, {3, 4}, {4, 5}}),
	}
}

// forGolden runs f over graphs x worker counts x transports.
func forGolden(t *testing.T, graphs map[string]*graph.Graph, f func(t *testing.T, g *graph.Graph, opts []flash.Option)) {
	t.Helper()
	for name, g := range graphs {
		for _, w := range goldenWorkers {
			for _, transport := range []string{"mem", "tcp"} {
				opts := []flash.Option{flash.WithWorkers(w)}
				if transport == "tcp" {
					opts = append(opts, flash.WithTCP())
				}
				t.Run(fmt.Sprintf("%s/w%d/%s", name, w, transport), func(t *testing.T) {
					f(t, g, opts)
				})
			}
		}
	}
}

func TestGoldenBFS(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		got, err := BFS(g, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := refBFS(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
			}
		}
	})
}

func TestGoldenMultiBFS(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		sources := []graph.VID{0, graph.VID(g.NumVertices() - 1)}
		got, err := MultiBFS(g, sources, opts...)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: pointwise minimum of single-source BFS distances.
		want := make([]int32, g.NumVertices())
		for i := range want {
			want[i] = -1
		}
		for _, s := range sources {
			for v, d := range refBFS(g, s) {
				if d != -1 && (want[v] == -1 || d < want[v]) {
					want[v] = d
				}
			}
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("multi-dist[%d] = %d, want %d", v, got[v], want[v])
			}
		}
	})
}

func TestGoldenCC(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		got, err := CC(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := refComponents(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("cc[%d] = %d, want %d", v, got[v], want[v])
			}
		}
		if CountComponents(got) != CountComponents(want) {
			t.Fatalf("component count %d, want %d", CountComponents(got), CountComponents(want))
		}
	})
}

func TestGoldenCCOpt(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		res, err := CCOpt(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !samePartition(res.Labels, refComponents(g)) {
			t.Fatal("CCOpt partition differs from reference")
		}
	})
}

func TestGoldenBC(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		got, err := BC(g, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := refBC(g, 0)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-6 {
				t.Fatalf("bc[%d] = %g, want %g", v, got[v], want[v])
			}
		}
	})
}

func TestGoldenSSSP(t *testing.T) {
	weighted := map[string]*graph.Graph{
		"er":   graph.WithRandomWeights(graph.GenErdosRenyi(24, 70, 5), 9),
		"path": graph.WithRandomWeights(graph.GenPath(12), 3),
	}
	forGolden(t, weighted, func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		got, err := SSSP(g, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := refDijkstra(g, 0)
		for v := range want {
			if math.Abs(float64(got[v]-want[v])) > 1e-4 {
				t.Fatalf("dist[%d] = %g, want %g", v, got[v], want[v])
			}
		}
	})
}

// refPageRank mirrors prIterate exactly: damping 0.85, uniform dangling-mass
// redistribution, L1 convergence test against the pre-update ranks.
func refPageRank(g *graph.Graph, maxIters int, eps float64) []float64 {
	n := g.NumVertices()
	const damping = 0.85
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	for it := 0; it < maxIters; it++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			if g.OutDegree(graph.VID(v)) == 0 {
				dangling += rank[v]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := range next {
			next[v] = 0
		}
		for u := 0; u < n; u++ {
			if d := g.OutDegree(graph.VID(u)); d > 0 {
				share := damping * rank[u] / float64(d)
				for _, v := range g.OutNeighbors(graph.VID(u)) {
					next[v] += share
				}
			}
		}
		delta := 0.0
		for v := 0; v < n; v++ {
			delta += math.Abs(base + next[v] - rank[v])
		}
		for v := 0; v < n; v++ {
			rank[v] = base + next[v]
		}
		if delta < eps {
			break
		}
	}
	return rank
}

func TestGoldenPageRank(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		// eps=0 pins the iteration count, so oracle and engine run the same
		// number of rounds and differ only in float summation order.
		got, err := PageRank(g, 30, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := refPageRank(g, 30, 0)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("rank[%d] = %g, want %g", v, got[v], want[v])
			}
		}
	})
}

func TestGoldenKCore(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		want := refCore(g)
		for _, kc := range []struct {
			name string
			f    func(*graph.Graph, ...flash.Option) ([]int32, error)
		}{{"kc", KC}, {"kcopt", KCOpt}} {
			got, err := kc.f(g, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s: core[%d] = %d, want %d", kc.name, v, got[v], want[v])
				}
			}
		}
	})
}

func TestGoldenTriangleFamily(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		tc, err := TC(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if want := refTC(g); tc != want {
			t.Fatalf("triangles = %d, want %d", tc, want)
		}
		rc, err := RC(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if want := refRC(g); rc != want {
			t.Fatalf("rectangles = %d, want %d", rc, want)
		}
		cl, err := CL(g, 4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if want := refCL(g, 4); cl != want {
			t.Fatalf("4-cliques = %d, want %d", cl, want)
		}
	})
}

func TestGoldenSCC(t *testing.T) {
	forGolden(t, goldenDirected(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		got, err := SCC(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !samePartition(got, refSCC(g)) {
			t.Fatalf("SCC partition mismatch: %v", got)
		}
	})
}

func TestGoldenBCC(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		res, err := BCC(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := CountBCCs(res), refBCCCount(g); got != want {
			t.Fatalf("%d BCCs, want %d", got, want)
		}
	})
}

// refKTruss peels under-supported edges to a fixed point and returns the
// surviving undirected edge set keyed (u, v) with u < v.
func refKTruss(g *graph.Graph, k int) map[[2]graph.VID]bool {
	if k < 3 {
		k = 3
	}
	n := g.NumVertices()
	adj := make([]map[graph.VID]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[graph.VID]bool)
		for _, u := range g.OutNeighbors(graph.VID(v)) {
			if u != graph.VID(v) {
				adj[v][u] = true
			}
		}
	}
	support := func(u, v graph.VID) int {
		c := 0
		for w := range adj[u] {
			if adj[v][w] {
				c++
			}
		}
		return c
	}
	for {
		var drop [][2]graph.VID
		for u := 0; u < n; u++ {
			for v := range adj[u] {
				if graph.VID(u) < v && support(graph.VID(u), v) < k-2 {
					drop = append(drop, [2]graph.VID{graph.VID(u), v})
				}
			}
		}
		if len(drop) == 0 {
			break
		}
		for _, e := range drop {
			delete(adj[e[0]], e[1])
			delete(adj[e[1]], e[0])
		}
	}
	out := make(map[[2]graph.VID]bool)
	for u := 0; u < n; u++ {
		for v := range adj[u] {
			if graph.VID(u) < v {
				out[[2]graph.VID{graph.VID(u), v}] = true
			}
		}
	}
	return out
}

func TestGoldenKTruss(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		for _, k := range []int{3, 4} {
			edges, err := KTruss(g, k, opts...)
			if err != nil {
				t.Fatal(err)
			}
			want := refKTruss(g, k)
			if len(edges) != len(want) {
				t.Fatalf("k=%d: %d edges, want %d", k, len(edges), len(want))
			}
			for _, e := range edges {
				if !want[e] {
					t.Fatalf("k=%d: edge %v not in reference truss", k, e)
				}
			}
		}
	})
}

func TestGoldenMatchingAndMIS(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		for _, mm := range []struct {
			name string
			f    func(*graph.Graph, ...flash.Option) ([]int32, error)
		}{{"mm", MM}, {"mmopt", MMOpt}} {
			match, err := mm.f(g, opts...)
			if err != nil {
				t.Fatal(err)
			}
			checkMatching(t, g, match)
		}
		in, err := MIS(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		g.Edges(func(u, v graph.VID, _ float32) bool {
			if u != v && in[u] && in[v] {
				t.Fatalf("adjacent vertices %d,%d both in MIS", u, v)
			}
			return true
		})
		for v := 0; v < g.NumVertices(); v++ {
			if in[v] {
				continue
			}
			covered := false
			for _, u := range g.OutNeighbors(graph.VID(v)) {
				if in[u] {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("vertex %d outside MIS with no MIS neighbor", v)
			}
		}
	})
}

func TestGoldenGC(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		colors, err := GC(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		g.Edges(func(u, v graph.VID, _ float32) bool {
			if u != v && colors[u] == colors[v] {
				t.Fatalf("edge (%d,%d) same color %d", u, v, colors[u])
			}
			return true
		})
		_, maxDeg := g.MaxOutDegree()
		if nc := CountColors(colors); nc > maxDeg+1 {
			t.Fatalf("%d colors exceeds maxdeg+1 = %d", nc, maxDeg+1)
		}
	})
}

// refBipartite two-colors each component by BFS parity.
func refBipartite(g *graph.Graph) bool {
	n := g.NumVertices()
	side := make([]int8, n)
	for i := range side {
		side[i] = -1
	}
	for s := 0; s < n; s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		q := []graph.VID{graph.VID(s)}
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			for _, v := range g.OutNeighbors(u) {
				if side[v] == -1 {
					side[v] = 1 - side[u]
					q = append(q, v)
				} else if side[v] == side[u] {
					return false
				}
			}
		}
	}
	return true
}

func TestGoldenBipartite(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		res, err := Bipartite(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if want := refBipartite(g); res.IsBipartite != want {
			t.Fatalf("IsBipartite = %v, want %v", res.IsBipartite, want)
		}
		if res.IsBipartite {
			g.Edges(func(u, v graph.VID, _ float32) bool {
				if u != v && res.Side[u] == res.Side[v] {
					t.Fatalf("edge (%d,%d) on one side %d", u, v, res.Side[u])
				}
				return true
			})
		}
	})
}

func TestGoldenDiameter(t *testing.T) {
	// The double sweep is exact on trees and paths.
	forGolden(t, map[string]*graph.Graph{"path": graph.GenPath(12)},
		func(t *testing.T, g *graph.Graph, opts []flash.Option) {
			got, err := DiameterEstimate(g, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got != 11 {
				t.Fatalf("path diameter %d, want 11", got)
			}
		})
}

func TestGoldenMSF(t *testing.T) {
	weighted := map[string]*graph.Graph{
		"er": graph.WithRandomWeights(graph.GenErdosRenyi(24, 70, 5), 9),
	}
	forGolden(t, weighted, func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		var all []MSFEdge
		g.Edges(func(u, v graph.VID, wt float32) bool {
			if u < v {
				all = append(all, MSFEdge{U: u, V: v, W: wt})
			}
			return true
		})
		ref := kruskal(g.NumVertices(), all)
		var refW float64
		for _, e := range ref {
			refW += float64(e.W)
		}
		for _, msf := range []struct {
			name string
			f    func(*graph.Graph, ...flash.Option) (MSFResult, error)
		}{{"msf", MSF}, {"boruvka", MSFBoruvka}} {
			res, err := msf.f(g, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Edges) != len(ref) {
				t.Fatalf("%s: %d forest edges, want %d", msf.name, len(res.Edges), len(ref))
			}
			if math.Abs(res.Weight-refW) > 1e-4 {
				t.Fatalf("%s: weight %g, want %g", msf.name, res.Weight, refW)
			}
		}
	})
}

func TestGoldenLPA(t *testing.T) {
	// Two K5 cliques joined by one edge: each clique converges to one label
	// and the labels differ.
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.VID(i), graph.VID(j))
			b.AddEdge(graph.VID(i+5), graph.VID(j+5))
		}
	}
	b.AddEdge(0, 5)
	forGolden(t, map[string]*graph.Graph{"cliques": b.Build()},
		func(t *testing.T, g *graph.Graph, opts []flash.Option) {
			labels, err := LPA(g, 30, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for v := 1; v < 5; v++ {
				if labels[v] != labels[1] || labels[v+5] != labels[6] {
					t.Fatalf("clique fragmented: %v", labels)
				}
			}
		})
}

func TestGoldenClustering(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		res, err := ClusteringCoefficient(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: triangles through v over deg(v) choose 2; global
		// transitivity = closed wedges over all wedges.
		n := g.NumVertices()
		adj := make([]map[graph.VID]bool, n)
		for v := 0; v < n; v++ {
			adj[v] = make(map[graph.VID]bool)
			for _, u := range g.OutNeighbors(graph.VID(v)) {
				adj[v][u] = true
			}
		}
		var closed, wedges float64
		for v := 0; v < n; v++ {
			deg := float64(len(adj[v]))
			tri := 0.0
			for a := range adj[v] {
				for bb := range adj[v] {
					if a < bb && adj[a][bb] {
						tri++
					}
				}
			}
			var local float64
			if deg >= 2 {
				local = tri / (deg * (deg - 1) / 2)
				wedges += deg * (deg - 1) / 2
				closed += tri
			}
			if math.Abs(res.Local[v]-local) > 1e-9 {
				t.Fatalf("local cc[%d] = %g, want %g", v, res.Local[v], local)
			}
		}
		var global float64
		if wedges > 0 {
			global = closed / wedges
		}
		if math.Abs(res.Global-global) > 1e-9 {
			t.Fatalf("global cc = %g, want %g", res.Global, global)
		}
	})
}

func TestGoldenAssortativity(t *testing.T) {
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		res, err := Assortativity(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		// AvgNeighborDegree oracle: mean neighbor degree.
		for v := 0; v < g.NumVertices(); v++ {
			nb := g.OutNeighbors(graph.VID(v))
			var want float64
			if len(nb) > 0 {
				sum := 0.0
				for _, u := range nb {
					sum += float64(g.OutDegree(u))
				}
				want = sum / float64(len(nb))
			}
			if math.Abs(res.AvgNeighborDegree[v]-want) > 1e-9 {
				t.Fatalf("knn[%d] = %g, want %g", v, res.AvgNeighborDegree[v], want)
			}
		}
		// Coefficient oracle: Pearson over directed edge instances, 0 when
		// degree variance vanishes (regular graphs).
		var cnt, sx, sy, sxx, syy, sxy float64
		g.Edges(func(a, b graph.VID, _ float32) bool {
			x, y := float64(g.OutDegree(a)), float64(g.OutDegree(b))
			cnt++
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			return true
		})
		var want float64
		if cnt > 0 {
			num := sxy/cnt - (sx/cnt)*(sy/cnt)
			den := math.Sqrt(sxx/cnt-(sx/cnt)*(sx/cnt)) * math.Sqrt(syy/cnt-(sy/cnt)*(sy/cnt))
			if den > 0 {
				want = num / den
			}
		}
		if math.Abs(res.Coefficient-want) > 1e-9 {
			t.Fatalf("assortativity %g, want %g", res.Coefficient, want)
		}
	})
}
