package core

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"flash/graph"
	"flash/internal/comm"
)

// coldRestartConfig is the canonical worker-loss setup: durable file store,
// frequent checkpoints, heartbeats arming the liveness layer, and a short
// drain deadline so a dead peer is detected quickly.
func coldRestartConfig(t *testing.T, workers int, kills []comm.WorkerKill) Config {
	t.Helper()
	store, err := NewFileStore(filepath.Join(t.TempDir(), "ckpt.flash"))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Workers:         workers,
		CheckpointEvery: 2,
		MaxRecoveries:   5,
		Store:           store,
		HeartbeatEvery:  10 * time.Millisecond,
		DrainTimeout:    80 * time.Millisecond,
		FaultPlan:       &comm.FaultPlan{Kills: kills},
	}
}

// TestColdRestartSurvivesWorkerKill is the tentpole end-to-end test: a
// worker is hard-killed mid-run (endpoint torn down, all its calls failing),
// the liveness layer detects the loss, the engine rebuilds the worker from
// the graph and rehydrates it from the file-backed checkpoint store, and the
// run completes with results identical to a fault-free execution.
func TestColdRestartSurvivesWorkerKill(t *testing.T) {
	g := graph.GenErdosRenyi(120, 500, 3)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, coldRestartConfig(t, 4, []comm.WorkerKill{{Worker: 2, Round: 5}}))
	got, res, err := runBFSChecked(e, 0)
	if err != nil {
		t.Fatalf("run did not survive the kill: %v", err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
	if res.Restarts < 1 {
		t.Fatalf("restarts=%d, want >=1 (res=%+v)", res.Restarts, res)
	}
	if res.Recoveries < 1 {
		t.Fatalf("recoveries=%d, want >=1", res.Recoveries)
	}
	if res.CheckpointBytes == 0 {
		t.Fatal("no checkpoint bytes recorded despite checkpointing to a file store")
	}
	if res.RecoveryTime <= 0 {
		t.Fatal("recovery time not recorded")
	}
	if err := e.CheckMirrorCoherence(func(a, b bfsProps) bool { return a == b }); err != nil {
		t.Fatal(err)
	}
}

// TestColdRestartFromMemStoreAndHash exercises the same path with the
// default in-memory store and hash placement, proving restart correctness is
// independent of the store backend and the partitioning scheme.
func TestColdRestartFromMemStoreAndHash(t *testing.T) {
	g := graph.GenErdosRenyi(100, 420, 9)
	want := seqBFS(g, 0)
	cfg := coldRestartConfig(t, 3, []comm.WorkerKill{{Worker: 1, Round: 4}})
	cfg.Store = NewMemStore()
	cfg.UseHashPlacement = true
	e := mustEngine(t, g, cfg)
	got, res, err := runBFSChecked(e, 0)
	if err != nil {
		t.Fatalf("run did not survive the kill: %v", err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
	if res.Restarts < 1 {
		t.Fatalf("restarts=%d, want >=1", res.Restarts)
	}
}

// TestWorkerKillWithoutCheckpointingFails verifies a permanent loss without
// a checkpoint to restart from is a bounded, clean failure: Run returns an
// error within the deadline instead of hanging.
func TestWorkerKillWithoutCheckpointingFails(t *testing.T) {
	g := graph.GenPath(40)
	e := mustEngine(t, g, Config{
		Workers:        2,
		HeartbeatEvery: 10 * time.Millisecond,
		DrainTimeout:   80 * time.Millisecond,
		FaultPlan:      &comm.FaultPlan{Kills: []comm.WorkerKill{{Worker: 1, Round: 2}}},
	})
	start := time.Now()
	_, _, err := runBFSChecked(e, 0)
	if err == nil {
		t.Fatal("run succeeded despite an unrecoverable worker loss")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failure took %v, want bounded detection", elapsed)
	}
}

// TestColdRestartBudgetExhausted verifies a worker that keeps dying runs out
// of recovery budget instead of looping forever.
func TestColdRestartBudgetExhausted(t *testing.T) {
	g := graph.GenPath(40)
	cfg := coldRestartConfig(t, 2, []comm.WorkerKill{
		{Worker: 1, Round: 3},
		{Worker: 1, Round: 0}, // re-kill the revived incarnation immediately
	})
	cfg.MaxRecoveries = 1
	e := mustEngine(t, g, cfg)
	_, res, err := runBFSChecked(e, 0)
	if err == nil {
		t.Fatal("run succeeded despite kills beyond the recovery budget")
	}
	if res.Recoveries != 1 {
		t.Fatalf("recoveries=%d, want exactly MaxRecoveries=1", res.Recoveries)
	}
}

// TestKilledWorkerClassifier pins the two error shapes that identify a
// permanent loss.
func TestKilledWorkerClassifier(t *testing.T) {
	if w, ok := killedWorker(&comm.KillError{Worker: 3}); !ok || w != 3 {
		t.Fatalf("KillError: got (%d,%v)", w, ok)
	}
	wrapped := &comm.WorkerError{Worker: 2, Err: comm.ErrPeerDead}
	if w, ok := killedWorker(wrapped); !ok || w != 2 {
		t.Fatalf("WorkerError{ErrPeerDead}: got (%d,%v)", w, ok)
	}
	if _, ok := killedWorker(&comm.WorkerError{Worker: 2, Err: comm.ErrPeerStalled}); ok {
		t.Fatal("stalled peer misclassified as dead")
	}
	if _, ok := killedWorker(errors.New("boom")); ok {
		t.Fatal("arbitrary error misclassified as a worker loss")
	}
}

// TestDefaultDrainTimeoutApplied verifies the sane-default satellite: leaving
// DrainTimeout zero selects DefaultDrainTimeout, and negative restores the
// wait-forever behavior.
func TestDefaultDrainTimeoutApplied(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.DrainTimeout != DefaultDrainTimeout {
		t.Fatalf("DrainTimeout=%v, want DefaultDrainTimeout", c.DrainTimeout)
	}
	c2 := Config{DrainTimeout: -1}
	c2.fillDefaults()
	if c2.DrainTimeout != -1 {
		t.Fatalf("negative DrainTimeout rewritten to %v", c2.DrainTimeout)
	}
	c3 := Config{CheckpointEvery: 2}
	c3.fillDefaults()
	if c3.Store == nil {
		t.Fatal("checkpointing enabled without a default store")
	}
}
