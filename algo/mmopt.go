package algo

import (
	"flash"
	"flash/graph"
)

// MMOpt computes a maximal matching with the optimized algorithm (paper
// Algorithm 12): after the initial round, proposals are recomputed only for
// unmatched vertices whose neighborhood changed — the unmatched neighbors of
// newly matched vertices — and the marriage check runs along the *virtual*
// edge set join(U, p) (each vertex to its proposal target) instead of all
// edges. Other frameworks cannot express this because they do not support
// user-defined edge sets; Fig. 4(a) shows the resulting frontier collapse.
func MMOpt(g *graph.Graph, opts ...flash.Option) ([]int32, error) {
	return mmOpt(g, nil, opts...)
}

func mmOpt(g *graph.Graph, trace func(int), opts ...flash.Option) ([]int32, error) {
	e, err := newEngine[mmProps](g, opts, flash.WithFullMirrors())
	if err != nil {
		return nil, err
	}
	defer e.Close()

	// join(U, p): each proposer to its proposal target.
	proposalEdges := flash.OutEdges(func(c *flash.Ctx[mmProps], u graph.VID) []graph.VID {
		if p := c.Get(u).P; p != none {
			return []graph.VID{graph.VID(p)}
		}
		return nil
	})
	// join(A, s): each newly matched vertex to its partner.
	partnerEdges := flash.OutEdges(func(c *flash.Ctx[mmProps], u graph.VID) []graph.VID {
		if s := c.Get(u).S; s != none {
			return []graph.VID{graph.VID(s)}
		}
		return nil
	})

	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[mmProps]) mmProps {
		return mmProps{S: none, P: none}
	})
	for u.Size() != 0 {
		u = e.VertexMap(u,
			func(v flash.Vertex[mmProps]) bool { return v.Val.S == none },
			func(v flash.Vertex[mmProps]) mmProps { return mmProps{S: v.Val.S, P: none} })
		if trace != nil {
			trace(u.Size())
		}
		// Recompute proposals only where needed: any unmatched source
		// proposing into targets in U (the paper's EDGEMAPDENSE over
		// join(E, U)).
		e.EdgeMap(e.All(), e.JoinEU(e.E(), u),
			func(s, d flash.Vertex[mmProps]) bool { return s.Val.S == none },
			func(s, d flash.Vertex[mmProps]) mmProps {
				nv := *d.Val
				if int32(s.ID) > nv.P {
					nv.P = int32(s.ID)
				}
				return nv
			},
			func(d flash.Vertex[mmProps]) bool { return d.Val.S == none },
			func(t, cur mmProps) mmProps {
				if t.P > cur.P {
					cur.P = t.P
				}
				return cur
			})
		// Marry along the proposal edges: target accepts when the proposal
		// is mutual.
		a := e.EdgeMapSparse(u, proposalEdges,
			func(s, d flash.Vertex[mmProps]) bool { return d.Val.P == int32(s.ID) && s.Val.P == int32(d.ID) },
			func(s, d flash.Vertex[mmProps]) mmProps {
				nv := *d.Val
				nv.S = int32(s.ID)
				return nv
			},
			func(d flash.Vertex[mmProps]) bool { return d.Val.S == none },
			func(t, cur mmProps) mmProps { return t })
		// Reciprocal side of each new match.
		b := e.EdgeMapSparse(a, partnerEdges,
			func(s, d flash.Vertex[mmProps]) bool { return d.Val.P == int32(s.ID) },
			func(s, d flash.Vertex[mmProps]) mmProps {
				nv := *d.Val
				nv.S = int32(s.ID)
				return nv
			},
			func(d flash.Vertex[mmProps]) bool { return d.Val.S == none },
			func(t, cur mmProps) mmProps { return t })
		// Next frontier: unmatched neighbors of the newly matched.
		u = e.EdgeMapSparse(e.Union(a, b), e.E(),
			nil,
			func(s, d flash.Vertex[mmProps]) mmProps { return *d.Val },
			func(d flash.Vertex[mmProps]) bool { return d.Val.S == none },
			func(t, cur mmProps) mmProps { return cur })
	}

	// Epilogue: the narrowed frontier can go empty one round before the
	// matching is maximal in rare proposal-cycle configurations; finish any
	// leftovers with basic rounds (a no-op when already maximal).
	runBasicMM(e, e.VertexMap(e.All(),
		func(v flash.Vertex[mmProps]) bool { return v.Val.S == none }, nil))

	out := make([]int32, g.NumVertices())
	e.Gather(func(v graph.VID, val *mmProps) { out[v] = val.S })
	return out, nil
}

// MMOptActiveTrace records MMOpt's per-round recompute-frontier sizes for
// Fig. 4(a): only the vertices whose proposals must be refreshed, which is
// the set the optimization shrinks.
func MMOptActiveTrace(g *graph.Graph, opts ...flash.Option) ([]int, error) {
	var trace []int
	if _, err := mmOpt(g, func(active int) { trace = append(trace, active) }, opts...); err != nil {
		return nil, err
	}
	return trace, nil
}
