package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndBreakdown(t *testing.T) {
	c := New()
	c.Add(Compute, 3*time.Second)
	c.Add(Communication, time.Second)
	if c.Total() != 4*time.Second {
		t.Fatalf("total %v", c.Total())
	}
	bd := c.Breakdown()
	if bd[Compute] != 0.75 || bd[Communication] != 0.25 {
		t.Fatalf("breakdown %v", bd)
	}
	if bd[Serialization] != 0 || bd[Other] != 0 {
		t.Fatalf("breakdown %v", bd)
	}
}

func TestEmptyBreakdown(t *testing.T) {
	if bd := New().Breakdown(); bd != [4]float64{} {
		t.Fatalf("breakdown of empty collector: %v", bd)
	}
}

func TestTimeHelper(t *testing.T) {
	c := New()
	c.Time(Serialization, func() { time.Sleep(2 * time.Millisecond) })
	if c.Duration(Serialization) < time.Millisecond {
		t.Fatalf("Time recorded %v", c.Duration(Serialization))
	}
}

func TestStepsAndTraffic(t *testing.T) {
	c := New()
	c.Step(10)
	c.Step(5)
	c.AddTraffic(3, 300)
	if c.Supersteps != 2 || len(c.Frontier) != 2 || c.Frontier[1] != 5 {
		t.Fatalf("steps %d frontier %v", c.Supersteps, c.Frontier)
	}
	if c.Messages != 3 || c.Bytes != 300 {
		t.Fatalf("traffic %d/%d", c.Messages, c.Bytes)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Add(Compute, time.Second)
	a.Step(1)
	b.Add(Compute, time.Second)
	b.Add(Other, time.Second)
	b.AddTraffic(1, 10)
	a.Merge(b)
	if a.Duration(Compute) != 2*time.Second || a.Duration(Other) != time.Second {
		t.Fatalf("merge durations: %v", a)
	}
	if a.Messages != 1 || a.Supersteps != 1 {
		t.Fatalf("merge counters: %v", a)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Add(Compute, time.Second)
	c.Step(4)
	c.AddTraffic(1, 1)
	c.Reset()
	if c.Total() != 0 || c.Supersteps != 0 || c.Messages != 0 || len(c.Frontier) != 0 {
		t.Fatalf("reset left state: %v", c)
	}
}

func TestConcurrentAdds(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add(Compute, time.Millisecond)
				c.AddTraffic(1, 2)
			}
		}()
	}
	wg.Wait()
	if c.Duration(Compute) != 800*time.Millisecond || c.Messages != 800 {
		t.Fatalf("concurrent adds lost updates: %v", c)
	}
}

func TestString(t *testing.T) {
	c := New()
	c.Step(1)
	s := c.String()
	for _, want := range []string{"steps=1", "computation=", "communication=", "serialization=", "other="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category string empty")
	}
}
