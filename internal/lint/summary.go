package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Summary is one function's bottom-up dataflow facts, the unit the
// interprocedural analyzers compose: what flows from parameters to returns,
// what the function writes through, what it keeps alive after returning, and
// what it allocates. Summaries are computed callee-first over the SCC
// condensation (callgraph.go), so consulting a callee's Summary at a call
// site is sound without re-walking its body.
type Summary struct {
	// IteratesMap: the body (including its function literals) ranges over a
	// map. Consumed by detorder through the module-wide reachability walk.
	IteratesMap bool

	// AllocatesEver / AllocatesInLoop: the function performs a heap
	// allocation (make, new, composite literal, fmt call, closure) at all /
	// inside a loop — directly or through module callees. Consumed by
	// hotalloc: calling an allocates-in-loop function from a hot path is a
	// per-call allocation storm the intraprocedural check could not see.
	AllocatesEver   bool
	AllocatesInLoop bool

	// MutatesRecv / MutatesParam[i]: the function writes through memory
	// reachable from its receiver / i-th parameter (directly or via a module
	// callee). Consumed by sharedmut against //flash:immutable types.
	MutatesRecv  bool
	MutatesParam []bool

	// RetainsParam[i]: an alias of parameter i survives the call — stored to
	// a global, a field, a map/slice element, sent on a channel, captured by
	// go/defer, or handed to a module callee that retains it. Consumed by
	// poolescape and blockres at call sites.
	RetainsParam []bool

	// FlowsToRet[i]: a return value may alias parameter i's memory
	// (re-slices and field loads included). Callers re-taint the call result.
	FlowsToRet []bool

	// DerivesRet[i]: a return value is derived from parameter i's value
	// (conversions and arithmetic included). Consumed by slotindex: a helper
	// that turns a VID into an int no longer launders the taint.
	// Slot-table lookups (SlotTable.Slot/Lookup, Placement.LocalIndex, and
	// anything marked //flash:slot-launder) are the sanctioned boundary and
	// report false here by construction.
	DerivesRet []bool

	// ReturnsFresh: every return hands back freshly constructed memory
	// (composite literals, new, or calls to other fresh-returning functions).
	// Consumed by sharedmut: a fresh value is private until published, so
	// mutating it is sanctioned.
	ReturnsFresh bool
}

func (s *Summary) equal(o *Summary) bool {
	if s.IteratesMap != o.IteratesMap || s.AllocatesEver != o.AllocatesEver ||
		s.AllocatesInLoop != o.AllocatesInLoop || s.MutatesRecv != o.MutatesRecv ||
		s.ReturnsFresh != o.ReturnsFresh {
		return false
	}
	eq := func(a, b []bool) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	return eq(s.MutatesParam, o.MutatesParam) && eq(s.RetainsParam, o.RetainsParam) &&
		eq(s.FlowsToRet, o.FlowsToRet) && eq(s.DerivesRet, o.DerivesRet)
}

// sumCtx is the per-function analysis state: a bitmask per local object over
// the parameter space (bit i = parameter i, recvBit = the receiver).
//
// Aliasing is tracked at two depths. alias is direct: the object's own memory
// may be parameter i's memory, so a write through it is a write the caller
// sees. inner is containment: the object holds references to parameter i's
// memory somewhere inside (a local struct with a field copied from a
// parameter, a local slice an element was stored into), so the parameter
// escapes wherever the object does — but writing another slot of the object
// touches only local memory. Collapsing the two is what a naive
// implementation does, and it brands every function that packages its
// argument into a returned struct as "retains its argument".
type sumCtx struct {
	mod   *Module
	f     *Func
	info  *types.Info
	alias map[types.Object]uint64 // may share memory with parameter i
	inner map[types.Object]uint64 // contains references to parameter i memory
	deriv map[types.Object]uint64 // value derived from parameter i
	fresh map[types.Object]bool   // holds locally constructed memory

	params  []types.Object
	recvBit uint64
	results []types.Object // named results, for bare returns
}

const maxTrackedParams = 62

// computeSummary runs the per-function dataflow over f's body. Callee
// summaries may still change within f's SCC; BuildModule iterates to a fixed
// point there.
func computeSummary(mod *Module, f *Func) Summary {
	sc := newSumCtx(mod, f)
	sc.propagate()
	sum := sc.sinks()
	sum.IteratesMap = iteratesMap(sc.info, f.Decl.Body)
	sum.AllocatesEver, sum.AllocatesInLoop = sc.allocates()
	sum.ReturnsFresh = sc.returnsFresh()
	if isLaunder(f) {
		sum.DerivesRet = make([]bool, len(sc.params))
	}
	return sum
}

// freshLocals re-runs the local propagation for f and returns the objects
// holding locally constructed memory (used by sharedmut to sanction
// construction-time writes).
func freshLocals(mod *Module, f *Func) map[types.Object]bool {
	sc := newSumCtx(mod, f)
	sc.propagate()
	return sc.fresh
}

// newSumCtx seeds the per-function dataflow state: each parameter (and the
// receiver) aliases and derives itself.
func newSumCtx(mod *Module, f *Func) *sumCtx {
	sc := &sumCtx{
		mod:   mod,
		f:     f,
		info:  f.Pkg.Info,
		alias: map[types.Object]uint64{},
		inner: map[types.Object]uint64{},
		deriv: map[types.Object]uint64{},
		fresh: map[types.Object]bool{},
	}
	collect := func(fl *ast.FieldList, dst *[]types.Object) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				*dst = append(*dst, sc.info.Defs[name])
			}
			if len(field.Names) == 0 {
				*dst = append(*dst, nil) // unnamed: position still counts
			}
		}
	}
	collect(f.Decl.Type.Params, &sc.params)
	for i, p := range sc.params {
		if p != nil && i < maxTrackedParams {
			sc.alias[p] = 1 << i
			sc.deriv[p] = 1 << i
		}
	}
	if f.Decl.Recv != nil && len(f.Decl.Recv.List) > 0 && len(f.Decl.Recv.List[0].Names) > 0 {
		if obj := sc.info.Defs[f.Decl.Recv.List[0].Names[0]]; obj != nil {
			sc.recvBit = 1 << maxTrackedParams
			sc.alias[obj] = sc.recvBit
			sc.deriv[obj] = sc.recvBit
		}
	}
	if f.Decl.Type.Results != nil {
		for _, field := range f.Decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := sc.info.Defs[name]; obj != nil {
					sc.results = append(sc.results, obj)
				}
			}
		}
	}
	return sc
}

// isLaunder reports whether f is a sanctioned gid→index boundary for the
// slotindex taint: SlotTable.Slot / SlotTable.Lookup, any LocalIndex method
// (the Placement contract), or an explicit //flash:slot-launder marker.
func isLaunder(f *Func) bool {
	if f.HasFuncMarker("slot-launder") {
		return true
	}
	if f.Decl.Recv == nil {
		return false
	}
	recv := types.ExprString(f.Decl.Recv.List[0].Type)
	name := f.Decl.Name.Name
	if name == "LocalIndex" {
		return true
	}
	isSlotTable := recv == "SlotTable" || recv == "*SlotTable"
	return isSlotTable && (name == "Slot" || name == "Lookup")
}

// propagate runs the local taint fixpoint: assignments, declarations, and
// range statements move parameter masks and freshness between locals.
func (sc *sumCtx) propagate() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(sc.f.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						changed = sc.flowTo(n.Lhs[i], n.Rhs[i]) || changed
					}
				} else if len(n.Rhs) == 1 {
					for i := range n.Lhs {
						changed = sc.flowTo(n.Lhs[i], n.Rhs[0]) || changed
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						v := n.Values[i]
						changed = sc.flowToIdent(name, sc.aliasOf(v), sc.innerOf(v), sc.derivOf(v), sc.isFresh(v)) || changed
					}
				}
			case *ast.RangeStmt:
				am, dm := sc.escOf(n.X), sc.derivOf(n.X)
				_, isMap := typeOf(sc.info, n.X).(*types.Map)
				if id, ok := n.Key.(*ast.Ident); ok && n.Key != nil {
					km := uint64(0)
					if isMap {
						km = dm // map keys are data; slice indexes are positions
					}
					changed = sc.flowToIdent(id, 0, 0, km, false) || changed
				}
				if id, ok := n.Value.(*ast.Ident); ok && n.Value != nil {
					// An element loaded out of a container may alias anything
					// the container holds, so the value gets the esc mask.
					changed = sc.flowToIdent(id, am, 0, dm, false) || changed
				}
			}
			return true
		})
	}
}

// flowTo merges rhs's masks into lhs. A plain identifier receives them
// directly; a store through a selector/index/star flows them into the chain's
// root object's inner mask, so that taint placed inside a local struct or
// slice resurfaces when that local is later returned or stored (whether the
// store also counts as retention is decided in sinks, by where the root's
// memory lives).
func (sc *sumCtx) flowTo(lhs, rhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		if root := chainRootIdent(lhs); root != nil {
			return sc.flowToIdent(root, 0, sc.escOf(rhs), sc.derivOf(rhs), false)
		}
		return false
	}
	if id.Name == "_" {
		return false
	}
	return sc.flowToIdent(id, sc.aliasOf(rhs), sc.innerOf(rhs), sc.derivOf(rhs), sc.isFresh(rhs))
}

// chainRootIdent walks x.f[i].g-style chains to the base identifier, or nil
// when the base is not an identifier (a call result, say).
func chainRootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func (sc *sumCtx) flowToIdent(id *ast.Ident, am, im, dm uint64, fresh bool) bool {
	obj := sc.objOf(id)
	if obj == nil {
		return false
	}
	changed := false
	if am&^sc.alias[obj] != 0 {
		sc.alias[obj] |= am
		changed = true
	}
	if im&^sc.inner[obj] != 0 {
		sc.inner[obj] |= im
		changed = true
	}
	if dm&^sc.deriv[obj] != 0 {
		sc.deriv[obj] |= dm
		changed = true
	}
	if fresh && !sc.fresh[obj] {
		sc.fresh[obj] = true
		changed = true
	}
	return changed
}

func (sc *sumCtx) objOf(id *ast.Ident) types.Object {
	if obj := sc.info.Defs[id]; obj != nil {
		return obj
	}
	return sc.info.Uses[id]
}

// aliasOf computes which parameters expr may share memory with. Loading a
// value whose type cannot carry references (ints, floats, strings, bools)
// breaks aliasing.
func (sc *sumCtx) aliasOf(expr ast.Expr) uint64 {
	e := ast.Unparen(expr)
	if t := typeOfExpr(sc.info, e); t != nil && !typeRetainsMemory(t) {
		if u, ok := e.(*ast.UnaryExpr); !ok || u.Op != token.AND {
			return 0
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := sc.objOf(e); obj != nil {
			return sc.alias[obj]
		}
	case *ast.SliceExpr:
		return sc.escOf(e.X)
	case *ast.SelectorExpr:
		// A value loaded out of a container may alias anything the container
		// holds, so container loads collapse the base's esc mask into direct
		// aliasing of the loaded value.
		return sc.escOf(e.X)
	case *ast.IndexExpr:
		return sc.escOf(e.X)
	case *ast.StarExpr:
		return sc.escOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return sc.aliasAddr(e.X)
		}
	case *ast.CompositeLit:
		return 0 // the literal's own memory is fresh; contents are innerOf
	case *ast.CallExpr:
		return sc.callAlias(e)
	}
	return 0
}

// innerOf computes which parameters' memory expr's value holds references to
// (without its own memory being that memory). Container loads need no case of
// their own: aliasOf already collapses the base's esc mask into them.
func (sc *sumCtx) innerOf(expr ast.Expr) uint64 {
	e := ast.Unparen(expr)
	if t := typeOfExpr(sc.info, e); t != nil && !typeRetainsMemory(t) {
		return 0
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := sc.objOf(e); obj != nil {
			return sc.inner[obj]
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// &x reaches everything x's value holds.
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if obj := sc.objOf(id); obj != nil {
					return sc.alias[obj] | sc.inner[obj]
				}
			}
			if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return sc.innerOf(lit)
			}
		}
	case *ast.CompositeLit:
		var m uint64
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			m |= sc.escOf(elt)
		}
		return m
	case *ast.CallExpr:
		if tv, ok := sc.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return sc.innerOf(e.Args[0])
		}
	}
	return 0
}

// escOf is the full reachability mask of expr's value: its own memory plus
// everything it contains. Sinks (returns, global stores, sends, captures,
// retaining callees) use this; write-through checks use aliasOf/aliasAddr.
func (sc *sumCtx) escOf(expr ast.Expr) uint64 {
	return sc.aliasOf(expr) | sc.innerOf(expr)
}

// aliasAddr handles &x: the pointer aliases the addressed object's memory
// regardless of the field's own type.
func (sc *sumCtx) aliasAddr(expr ast.Expr) uint64 {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := sc.objOf(e); obj != nil {
			return sc.alias[obj]
		}
	case *ast.SelectorExpr:
		return sc.aliasAddr(e.X)
	case *ast.IndexExpr:
		return sc.aliasAddr(e.X)
	case *ast.StarExpr:
		return sc.aliasAddr(e.X)
	case *ast.CompositeLit, *ast.CallExpr:
		return sc.aliasOf(expr)
	}
	return 0
}

func (sc *sumCtx) callAlias(call *ast.CallExpr) uint64 {
	if tv, ok := sc.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return sc.aliasOf(call.Args[0])
		}
		return 0
	}
	if isBuiltin(sc.info, call, "append") {
		var m uint64
		if len(call.Args) > 0 {
			m = sc.aliasOf(call.Args[0])
		}
		for i, a := range call.Args[1:] {
			if call.Ellipsis != token.NoPos && i == len(call.Args)-2 {
				continue // append(dst, src...) copies the elements out
			}
			m |= sc.escOf(a) // appended references live inside the result
		}
		return m
	}
	callee := sc.mod.CalleeOf(sc.info, call)
	if callee == nil {
		return 0
	}
	var m uint64
	for j, a := range call.Args {
		if flag(callee.Sum.FlowsToRet, paramIndex(callee, j, len(call.Args))) {
			m |= sc.escOf(a)
		}
	}
	return m
}

// derivOf computes which parameters expr's value is derived from —
// conversions, arithmetic, and field/element loads all propagate; calls
// launder unless the module callee's summary says otherwise.
func (sc *sumCtx) derivOf(expr ast.Expr) uint64 {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := sc.objOf(e); obj != nil {
			return sc.deriv[obj]
		}
	case *ast.SliceExpr:
		return sc.derivOf(e.X)
	case *ast.SelectorExpr:
		return sc.derivOf(e.X)
	case *ast.IndexExpr:
		return sc.derivOf(e.X) | sc.derivOf(e.Index)
	case *ast.StarExpr:
		return sc.derivOf(e.X)
	case *ast.UnaryExpr:
		return sc.derivOf(e.X)
	case *ast.BinaryExpr:
		return sc.derivOf(e.X) | sc.derivOf(e.Y)
	case *ast.CompositeLit:
		var m uint64
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			m |= sc.derivOf(elt)
		}
		return m
	case *ast.CallExpr:
		if tv, ok := sc.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return sc.derivOf(e.Args[0])
		}
		callee := sc.mod.CalleeOf(sc.info, e)
		if callee == nil {
			return 0
		}
		var m uint64
		for j, a := range e.Args {
			if flag(callee.Sum.DerivesRet, paramIndex(callee, j, len(e.Args))) {
				m |= sc.derivOf(a)
			}
		}
		return m
	}
	return 0
}

// isFresh reports whether expr hands back freshly constructed memory.
func (sc *sumCtx) isFresh(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			switch x := ast.Unparen(e.X).(type) {
			case *ast.CompositeLit:
				return true
			case *ast.Ident:
				// &localVar: the variable's own memory is private to this
				// call (the Fork shallow-copy pattern: q := *p; return &q).
				if obj := sc.objOf(x); obj != nil && declaredIn(obj, sc.f.Decl) {
					return true
				}
			}
		}
	case *ast.Ident:
		if obj := sc.objOf(e); obj != nil {
			return sc.fresh[obj]
		}
	case *ast.CallExpr:
		if tv, ok := sc.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return sc.isFresh(e.Args[0])
		}
		if isBuiltin(sc.info, e, "new") || isBuiltin(sc.info, e, "make") {
			return true
		}
		if callee := sc.mod.CalleeOf(sc.info, e); callee != nil {
			return callee.Sum.ReturnsFresh || callee.HasFuncMarker("fresh")
		}
	}
	return false
}

// sinks walks the body once after the fixpoint and records every way a
// parameter escapes, is mutated through, or reaches a return.
func (sc *sumCtx) sinks() Summary {
	np := len(sc.params)
	sum := Summary{
		MutatesParam: make([]bool, np),
		RetainsParam: make([]bool, np),
		FlowsToRet:   make([]bool, np),
		DerivesRet:   make([]bool, np),
	}
	setBits := func(dst []bool, mask uint64) {
		for i := 0; i < np && i < maxTrackedParams; i++ {
			if mask&(1<<i) != 0 {
				dst[i] = true
			}
		}
	}
	mutate := func(mask uint64) {
		setBits(sum.MutatesParam, mask)
		if mask&sc.recvBit != 0 {
			sum.MutatesRecv = true
		}
	}
	retain := func(mask uint64) { setBits(sum.RetainsParam, mask) }

	ast.Inspect(sc.f.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Lhs) == len(n.Rhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				default:
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if l.Name == "_" {
						continue
					}
					if obj := sc.objOf(l); obj != nil && !declaredIn(obj, sc.f.Decl) {
						retain(sc.escOf(rhs)) // store to a package global
					}
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					// A store into memory rooted at a purely local object is
					// not retention — the taint flows into the root's inner
					// mask (propagate) and escapes only if the root itself
					// does. Everything else (globals, call results, memory
					// reachable from params or the receiver) is
					// caller-visible, so the stored value outlives the call.
					base := sc.aliasAddr(l)
					mutate(base)
					root := chainRootIdent(l)
					local := base == 0 && root != nil
					if local {
						obj := sc.objOf(root)
						local = obj != nil && declaredIn(obj, sc.f.Decl)
					}
					if !local {
						retain(sc.escOf(rhs))
					}
				}
			}
		case *ast.IncDecStmt:
			switch ast.Unparen(n.X).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				mutate(sc.aliasAddr(n.X))
			}
		case *ast.SendStmt:
			retain(sc.escOf(n.Value))
		case *ast.GoStmt:
			retain(sc.capturedMask(n.Call))
		case *ast.DeferStmt:
			retain(sc.capturedMask(n.Call))
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				for _, obj := range sc.results {
					setBits(sum.FlowsToRet, sc.alias[obj]|sc.inner[obj])
					setBits(sum.DerivesRet, sc.deriv[obj])
				}
			}
			for _, res := range n.Results {
				setBits(sum.FlowsToRet, sc.escOf(res))
				setBits(sum.DerivesRet, sc.derivOf(res))
			}
		case *ast.CallExpr:
			sc.callSinks(n, retain, mutate)
		}
		return true
	})
	return sum
}

// callSinks applies a module callee's summary to the masks at one call site.
func (sc *sumCtx) callSinks(call *ast.CallExpr, retain, mutate func(uint64)) {
	callee := sc.mod.CalleeOf(sc.info, call)
	if callee == nil {
		return
	}
	for j, a := range call.Args {
		pi := paramIndex(callee, j, len(call.Args))
		if flag(callee.Sum.RetainsParam, pi) {
			retain(sc.escOf(a))
		}
		if flag(callee.Sum.MutatesParam, pi) {
			mutate(sc.escOf(a))
		}
	}
	if callee.Sum.MutatesRecv {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			mutate(sc.aliasOf(sel.X))
		}
	}
}

// capturedMask collects the parameter masks a go/defer call keeps alive:
// its arguments plus everything a function-literal callee captures.
func (sc *sumCtx) capturedMask(call *ast.CallExpr) uint64 {
	var m uint64
	for _, a := range call.Args {
		m |= sc.escOf(a)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := sc.info.Uses[id]; obj != nil {
					m |= sc.alias[obj] | sc.inner[obj]
				}
			}
			return true
		})
	}
	return m
}

// returnsFresh reports whether every return statement hands back freshly
// constructed memory in each reference-carrying result position.
func (sc *sumCtx) returnsFresh() bool {
	if sc.f.Decl.Type.Results == nil {
		return false
	}
	fresh, sawFresh := true, false
	ast.Inspect(sc.f.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are its own
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			t := typeOfExpr(sc.info, res)
			if t == nil || !typeRetainsMemory(t) || isErrorType(t) || isUntypedNil(t) {
				continue
			}
			if sc.isFresh(res) {
				sawFresh = true
			} else {
				fresh = false
			}
		}
		return true
	})
	return fresh && sawFresh
}

// allocates scans for direct allocation sites and composes callee summaries:
// (ever, inLoop). Cold paths are exempt the same way hotalloc's own walk
// exempts them — fmt calls in return position (error construction for a
// failing step) and everything under a panic argument — so a bounds-check
// panic deep in a bit-twiddling helper does not brand the helper allocating.
func (sc *sumCtx) allocates() (bool, bool) {
	cold := coldCalls(sc.info, sc.f.Decl.Body)
	ever, inLoop := false, false
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
			ast.Inspect(body(n), walk)
			depth--
			return false
		case *ast.CompositeLit:
			ever = true
			if depth > 0 {
				inLoop = true
			}
		case *ast.FuncLit:
			ever = true
			if depth > 0 {
				inLoop = true
			}
		case *ast.CallExpr:
			if cold[n] {
				return false // exemption covers the argument subtree
			}
			switch {
			case isBuiltin(sc.info, n, "make") || isBuiltin(sc.info, n, "new"):
				ever = true
				if depth > 0 {
					inLoop = true
				}
			case isPkgCall(sc.info, n, "fmt"):
				ever = true
				if depth > 0 {
					inLoop = true
				}
			default:
				if callee := sc.mod.CalleeOf(sc.info, n); callee != nil {
					if callee.Sum.AllocatesInLoop {
						ever, inLoop = true, true
					} else if callee.Sum.AllocatesEver {
						ever = true
						if depth > 0 {
							inLoop = true
						}
					}
				}
			}
		}
		return true
	}
	ast.Inspect(sc.f.Decl.Body, walk)
	return ever, inLoop
}

// coldCalls collects the calls on sanctioned cold paths: fmt calls appearing
// as immediate return-statement arguments and panic calls. Shared between the
// summary engine and hotalloc's intraprocedural walk so both draw the same
// line.
func coldCalls(info *types.Info, block *ast.BlockStmt) map[*ast.CallExpr]bool {
	cold := map[*ast.CallExpr]bool{}
	ast.Inspect(block, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isPkgCall(info, call, "fmt") {
					cold[call] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				cold[n] = true
			}
		}
		return true
	})
	return cold
}

func body(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// iteratesMap reports a direct map range anywhere in the body.
func iteratesMap(info *types.Info, block *ast.BlockStmt) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok {
			if _, isMap := typeOf(info, rng.X).(*types.Map); isMap {
				found = true
			}
		}
		return !found
	})
	return found
}

// --- small shared helpers ---

func flag(bits []bool, i int) bool { return i >= 0 && i < len(bits) && bits[i] }

// paramIndex maps argument position j at a call with nargs arguments onto the
// callee's parameter index, folding variadic tails onto the last parameter.
func paramIndex(callee *Func, j, nargs int) int {
	np := 0
	if callee.Decl.Type.Params != nil {
		for _, f := range callee.Decl.Type.Params.List {
			if len(f.Names) == 0 {
				np++
			}
			np += len(f.Names)
		}
	}
	if np == 0 {
		return -1
	}
	if j >= np {
		return np - 1 // variadic tail
	}
	return j
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// typeRetainsMemory reports whether values of t can carry references to
// other memory (so copying one preserves aliasing). Strings are immutable
// and excluded on purpose.
func typeRetainsMemory(t types.Type) bool {
	seen := map[types.Type]bool{}
	var rec func(t types.Type) bool
	rec = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
			*types.Signature, *types.Interface:
			return true
		case *types.Basic:
			return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if rec(u.Field(i).Type()) {
					return true
				}
			}
			return false
		case *types.Array:
			return rec(u.Elem())
		case *types.TypeParam:
			return true // unknown instantiation: assume reference-carrying
		}
		return false
	}
	return rec(t)
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin || info.Uses[id] == nil
}

// isPkgCall reports a call to any function in the named package (selector
// form pkg.F).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == pkgName
}

func declaredIn(obj types.Object, decl *ast.FuncDecl) bool {
	pos := obj.Pos()
	return pos != token.NoPos && pos >= decl.Pos() && pos < decl.End()
}
