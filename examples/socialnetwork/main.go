// Social-network analytics on a skewed graph (the paper's SN regime):
// influencer detection with betweenness centrality, community seeds with a
// maximal independent set, cohesion via triangle counting and k-core
// decomposition — the workload mix the paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"sort"

	"flash"
	"flash/algo"
	"flash/graph"
)

func main() {
	g := graph.GenRMAT(4096, 60000, 11)
	fmt.Println("social network:", g)
	opts := []flash.Option{flash.WithWorkers(4), flash.WithThreads(2)}

	// Influencers: highest betweenness-centrality dependency scores from a
	// hub seed.
	hub, deg := g.MaxOutDegree()
	fmt.Printf("hub vertex %d (degree %d)\n", hub, deg)
	bc, err := algo.BC(g, hub, opts...)
	if err != nil {
		log.Fatal(err)
	}
	type vs struct {
		v graph.VID
		s float64
	}
	top := make([]vs, 0, len(bc))
	for v, s := range bc {
		top = append(top, vs{graph.VID(v), s})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].s > top[j].s })
	fmt.Println("top influencers by betweenness:")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %-6d score %.1f\n", t.v, t.s)
	}

	// Community seeds: a maximal independent set gives well-spread anchors.
	mis, err := algo.MIS(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	seeds := 0
	for _, in := range mis {
		if in {
			seeds++
		}
	}
	fmt.Printf("independent seed set: %d vertices\n", seeds)

	// Cohesion: triangles and the densest core.
	tc, err := algo.TC(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	cores, err := algo.KCOpt(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	maxCore := int32(0)
	for _, c := range cores {
		if c > maxCore {
			maxCore = c
		}
	}
	inCore := 0
	for _, c := range cores {
		if c == maxCore {
			inCore++
		}
	}
	fmt.Printf("triangles: %d; degeneracy: %d (%d vertices in the densest core)\n",
		tc, maxCore, inCore)
}
