// Test files are never analyzed: map-keyed subtest tables are idiomatic and
// harmless there. The fixture runner skips _test.go, mirroring the real
// loader, so the map range below must produce no diagnostic.
package detorder

func tableDriven() int {
	cases := map[string]int{"a": 1, "b": 2}
	t := 0
	for _, v := range cases {
		t += v
	}
	return t
}
