package core

import (
	"fmt"
	"sort"

	"flash/graph"
	"flash/internal/bitset"
	"flash/internal/partition"
)

// Subset is the paper's vertexSubset: a distributed set of vertex ids. Each
// worker holds the members among its masters as a bitset over local indices
// (§IV-A, "a worker simply maintains a set of vertex ids, representing the
// master vertices in the set that locate on it").
type Subset struct {
	owner anyEngine
	local []*bitset.Bitset
	count int
	// epoch is the membership epoch the per-worker bitsets are laid out
	// under. A subset held across an Engine.Resize goes stale; checkSubset
	// remaps it into the current epoch before any primitive touches it.
	epoch int
}

// anyEngine lets Subset validate that handles are not mixed across engines
// without making Subset generic.
type anyEngine interface{ engineTag() }

func (e *Engine[V]) engineTag() {}

func (e *Engine[V]) newSubset() *Subset {
	s := &Subset{owner: e, local: make([]*bitset.Bitset, e.cfg.Workers), epoch: e.memberEpoch}
	for w := 0; w < e.cfg.Workers; w++ {
		s.local[w] = bitset.New(e.place.LocalCount(w))
	}
	return s
}

// checkSubset asserts s belongs to this engine and remaps it if worker
// membership changed since it was built.
//
//flash:amortized remap allocates only on the rare epoch change
func (e *Engine[V]) checkSubset(s *Subset) {
	if s.owner != anyEngine(e) {
		panic("core: vertexSubset used with a different engine")
	}
	if s.epoch != e.memberEpoch {
		e.remapSubset(s)
	}
}

// remapSubset rewrites a stale subset's per-worker bitsets from the placement
// it was built under into the current one: each member decodes to its global
// id through the recorded epoch's placement and re-encodes through the
// current Owner/LocalIndex. Membership (and therefore count) is unchanged —
// only the distribution of the bits over workers moves.
func (e *Engine[V]) remapSubset(s *Subset) {
	oldPlace := e.placeHist[s.epoch]
	local := make([]*bitset.Bitset, e.cfg.Workers)
	for w := range local {
		local[w] = bitset.New(e.place.LocalCount(w))
	}
	for w := range s.local {
		w := w
		s.local[w].Range(func(l int) bool {
			gid := oldPlace.GlobalID(w, l)
			local[e.place.Owner(gid)].Set(e.place.LocalIndex(gid))
			return true
		})
	}
	s.local = local
	s.epoch = e.memberEpoch
}

// recount refreshes the cached cardinality.
func (s *Subset) recount() {
	c := 0
	for _, b := range s.local {
		c += b.Count()
	}
	s.count = c
}

// Size returns |U| (the paper's SIZE primitive).
func (s *Subset) Size() int { return s.count }

// Contains reports membership of v.
func (e *Engine[V]) Contains(s *Subset, v graph.VID) bool {
	e.checkSubset(s)
	e.checkVertex(v)
	w := e.place.Owner(v)
	return s.local[w].Test(e.place.LocalIndex(v))
}

// Add inserts v (the paper's ADD auxiliary operator).
func (e *Engine[V]) Add(s *Subset, v graph.VID) {
	e.checkSubset(s)
	e.checkVertex(v)
	w := e.place.Owner(v)
	if !s.local[w].TestAndSet(e.place.LocalIndex(v)) {
		s.count++
	}
}

func (e *Engine[V]) checkVertex(v graph.VID) {
	if int(v) >= e.g.NumVertices() {
		panic(fmt.Sprintf("core: vertex %d out of range [0,%d)", v, e.g.NumVertices()))
	}
}

// All returns the subset containing every vertex.
func (e *Engine[V]) All() *Subset {
	s := e.newSubset()
	for _, b := range s.local {
		b.Fill()
	}
	s.count = e.g.NumVertices()
	return s
}

// Empty returns the empty subset.
func (e *Engine[V]) Empty() *Subset { return e.newSubset() }

// FromIDs builds a subset from explicit ids.
func (e *Engine[V]) FromIDs(ids ...graph.VID) *Subset {
	s := e.newSubset()
	for _, v := range ids {
		e.Add(s, v)
	}
	return s
}

// Union returns a ∪ b (paper's UNION).
func (e *Engine[V]) Union(a, b *Subset) *Subset {
	e.checkSubset(a)
	e.checkSubset(b)
	out := e.newSubset()
	for w := range out.local {
		out.local[w].CopyFrom(a.local[w])
		out.local[w].Union(b.local[w])
	}
	out.recount()
	return out
}

// Minus returns a \ b (paper's MINUS).
func (e *Engine[V]) Minus(a, b *Subset) *Subset {
	e.checkSubset(a)
	e.checkSubset(b)
	out := e.newSubset()
	for w := range out.local {
		out.local[w].CopyFrom(a.local[w])
		out.local[w].Minus(b.local[w])
	}
	out.recount()
	return out
}

// Intersect returns a ∩ b (paper's INTERSACT).
func (e *Engine[V]) Intersect(a, b *Subset) *Subset {
	e.checkSubset(a)
	e.checkSubset(b)
	out := e.newSubset()
	for w := range out.local {
		out.local[w].CopyFrom(a.local[w])
		out.local[w].Intersect(b.local[w])
	}
	out.recount()
	return out
}

// IDs returns all member ids in ascending order (driver-side; intended for
// result extraction and tests). It walks the per-worker membership bitsets —
// O(members + bitmap words) — instead of probing every vertex through
// Owner/LocalIndex. Range placement concatenates in worker order (already
// ascending by gid); other placements collect and sort.
func (e *Engine[V]) IDs(s *Subset) []graph.VID {
	e.checkSubset(s)
	out := make([]graph.VID, 0, s.count)
	for w := range s.local {
		w := w
		s.local[w].Range(func(l int) bool {
			out = append(out, e.place.GlobalID(w, l))
			return true
		})
	}
	if _, ranged := e.place.(*partition.RangePlacement); !ranged {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}
