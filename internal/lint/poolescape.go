package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape enforces the PR-2 frame-pool ownership contract: a frame slice
// delivered to a Transport.Drain handler is recycled into the pool the
// moment the handler returns, so the handler must treat it as borrowed.
//
// The analyzer inspects every function literal passed as an argument to a
// call of a method named Drain and taints the literal's []byte parameters
// (plus locals assigned from them, including via re-slicing). A tainted
// value may be read, indexed, sliced, and passed to ordinary synchronous
// calls (decoders copy out of it), but it must not outlive the handler:
//
//   - returned from the handler;
//   - sent on a channel;
//   - assigned through a selector, an index expression, a dereference, or
//     any variable not declared inside the handler (captured or global);
//   - handed to a goroutine via go or deferred with defer;
//   - passed to a module function whose dataflow summary says it retains
//     its argument (flashvet v2: the intraprocedural version trusted every
//     synchronous call, so a helper that stashes the frame one package away
//     was invisible).
//
// Taint also survives module calls that flow a parameter back out (the
// FlowsToRet summary): d := reframe(data) keeps d tainted when reframe
// returns a re-slice of its argument.
//
// Each of those is a use-after-recycle: the pool will hand the same backing
// array to the next encoder and the retained alias silently mutates.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "pooled frames delivered to Drain handlers must not escape",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Drain" {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkDrainHandler(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

func checkDrainHandler(pass *Pass, lit *ast.FuncLit) {
	tainted := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		if !isByteSlice(pass, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	if len(tainted) == 0 {
		return
	}

	// Propagate taint through local aliases: d := data, d := data[1:].
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil || tainted[obj] {
					continue
				}
				if taintedAlias(pass, as.Rhs[i], tainted) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	async := map[*ast.CallExpr]bool{} // go/defer calls get their own message
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if referencesTainted(pass, res, tainted) {
					pass.Reportf(res.Pos(), "pooled frame escapes its Drain handler via return; it is recycled when the handler returns")
				}
			}
		case *ast.SendStmt:
			if referencesTainted(pass, n.Value, tainted) {
				pass.Reportf(n.Value.Pos(), "pooled frame escapes its Drain handler via channel send; copy it first")
			}
		case *ast.GoStmt:
			async[n.Call] = true
			if callReferencesTainted(pass, n.Call, tainted) {
				pass.Reportf(n.Call.Pos(), "pooled frame handed to a goroutine outlives its Drain handler; copy it first")
			}
		case *ast.DeferStmt:
			async[n.Call] = true
			if callReferencesTainted(pass, n.Call, tainted) {
				pass.Reportf(n.Call.Pos(), "pooled frame captured by defer may be read after recycling; copy it first")
			}
		case *ast.CallExpr:
			// Synchronous call to a module function that retains its
			// argument: the frame outlives the handler through the callee.
			if async[n] {
				break
			}
			callee := pass.Mod.CalleeOf(pass.Info, n)
			if callee == nil {
				break
			}
			for j, arg := range n.Args {
				if flag(callee.Sum.RetainsParam, paramIndex(callee, j, len(n.Args))) &&
					taintedAlias(pass, arg, tainted) {
					pass.Reportf(n.Pos(), "pooled frame passed to %s, which retains it past the handler; copy the bytes instead", callee.Name())
				}
			}
		case *ast.AssignStmt:
			checkHandlerAssign(pass, lit, n, tainted)
		}
		return true
	})
}

// checkHandlerAssign flags stores of tainted values into locations that
// outlive the handler.
func checkHandlerAssign(pass *Pass, lit *ast.FuncLit, as *ast.AssignStmt, tainted map[types.Object]bool) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		switch {
		case len(as.Lhs) == len(as.Rhs):
			rhs = as.Rhs[i]
		case len(as.Rhs) == 1:
			rhs = as.Rhs[0]
		default:
			continue
		}
		if !referencesTainted(pass, rhs, tainted) {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[l]
			if obj == nil {
				obj = pass.Info.Uses[l]
			}
			if obj == nil {
				continue
			}
			if declaredWithin(obj, lit) {
				continue // local alias: tracked by the taint pass
			}
			pass.Reportf(lhs.Pos(), "pooled frame stored in %s, which outlives its Drain handler; copy the bytes instead", l.Name)
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			pass.Reportf(lhs.Pos(), "pooled frame stored through %s escapes its Drain handler; copy the bytes instead", types.ExprString(lhs))
		}
	}
}

func declaredWithin(obj types.Object, lit *ast.FuncLit) bool {
	pos := obj.Pos()
	return pos != token.NoPos && pos >= lit.Pos() && pos < lit.End()
}

// taintedAlias reports whether expr is a direct alias of a tainted slice:
// the ident itself, a re-slice of it (both share the backing array), or the
// result of a module call whose summary flows the tainted argument back out.
func taintedAlias(pass *Pass, expr ast.Expr, tainted map[types.Object]bool) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return tainted[pass.Info.Uses[e]]
	case *ast.SliceExpr:
		return taintedAlias(pass, e.X, tainted)
	case *ast.CallExpr:
		if callee := pass.Mod.CalleeOf(pass.Info, e); callee != nil {
			for j, a := range e.Args {
				if flag(callee.Sum.FlowsToRet, paramIndex(callee, j, len(e.Args))) &&
					taintedAlias(pass, a, tainted) {
					return true
				}
			}
		}
	}
	return false
}

// referencesTainted reports whether expr is (or re-slices) a tainted value,
// or is an append/composite literal carrying one (a store that keeps the
// alias alive). Indexing (data[i]) and ordinary calls (decode(data)) do not
// escape and are not counted.
func referencesTainted(pass *Pass, expr ast.Expr, tainted map[types.Object]bool) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		if calleeName(e) == "append" {
			for i, arg := range e.Args[1:] {
				if e.Ellipsis != token.NoPos && i == len(e.Args)-2 {
					continue // append(dst, data...) copies the bytes out
				}
				if taintedAlias(pass, arg, tainted) {
					return true
				}
			}
		}
		return false
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if taintedAlias(pass, elt, tainted) {
				return true
			}
		}
		return false
	}
	return taintedAlias(pass, expr, tainted)
}

// callReferencesTainted reports whether any argument of call aliases a
// tainted frame.
func callReferencesTainted(pass *Pass, call *ast.CallExpr, tainted map[types.Object]bool) bool {
	for _, arg := range call.Args {
		if taintedAlias(pass, arg, tainted) {
			return true
		}
	}
	return false
}

func isByteSlice(pass *Pass, typeExpr ast.Expr) bool {
	tv, ok := pass.Info.Types[typeExpr]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}
