package algo

import (
	"math"

	"flash"
	"flash/graph"
)

type assortProps struct {
	SumNbrDeg int64 // sum of neighbor degrees (for the local average)
}

// AssortativityResult holds the degree-mixing statistics.
type AssortativityResult struct {
	// Coefficient is the degree assortativity (Pearson correlation of
	// degrees across edges), in [-1, 1].
	Coefficient float64
	// AvgNeighborDegree[v] is the mean degree of v's neighbors (0 for
	// isolated vertices), the standard k_nn statistic.
	AvgNeighborDegree []float64
}

// Assortativity computes degree assortativity — the first analytics family
// the paper's introduction lists. Neighbor-degree sums are gathered with
// one EdgeMap; the Pearson correlation folds over edges on the driver.
func Assortativity(g *graph.Graph, opts ...flash.Option) (AssortativityResult, error) {
	e, err := newEngine[assortProps](g, opts)
	if err != nil {
		return AssortativityResult{}, err
	}
	defer e.Close()

	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[assortProps]) assortProps {
		return assortProps{}
	})
	e.EdgeMap(u, e.E(),
		nil,
		func(s, d flash.Vertex[assortProps]) assortProps {
			nv := *d.Val
			nv.SumNbrDeg += int64(s.Deg)
			return nv
		},
		nil,
		func(t, cur assortProps) assortProps {
			cur.SumNbrDeg += t.SumNbrDeg
			return cur
		},
		flash.NoSync()) // extracted driver-side

	res := AssortativityResult{AvgNeighborDegree: make([]float64, g.NumVertices())}
	e.Gather(func(v graph.VID, val *assortProps) {
		if d := g.OutDegree(v); d > 0 {
			res.AvgNeighborDegree[v] = float64(val.SumNbrDeg) / float64(d)
		}
	})

	// Pearson correlation of (deg(u), deg(v)) over directed edge instances.
	var n, sx, sy, sxx, syy, sxy float64
	g.Edges(func(a, b graph.VID, _ float32) bool {
		x, y := float64(g.OutDegree(a)), float64(g.OutDegree(b))
		n++
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
		return true
	})
	if n > 0 {
		num := sxy/n - (sx/n)*(sy/n)
		den := math.Sqrt(sxx/n-(sx/n)*(sx/n)) * math.Sqrt(syy/n-(sy/n)*(sy/n))
		if den > 0 {
			res.Coefficient = num / den
		}
	}
	return res, nil
}
