package comm

import (
	"errors"
	"testing"
	"time"
)

// TestMemResizeExchange grows and shrinks a Mem transport and verifies the
// full exchange contract holds at every membership size.
func TestMemResizeExchange(t *testing.T) {
	tr := NewMem(2)
	runRounds(t, tr, 2, 2)
	if err := tr.Resize(5); err != nil {
		t.Fatal(err)
	}
	runRounds(t, tr, 5, 2)
	if err := tr.Resize(3); err != nil {
		t.Fatal(err)
	}
	runRounds(t, tr, 3, 2)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPResizeExchange does the same over the loopback mesh: old sockets are
// torn down, the mesh is re-dialed at the new size, and rounds keep working.
func TestTCPResizeExchange(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	runRounds(t, tr, 2, 2)
	if err := tr.Resize(4); err != nil {
		t.Fatal(err)
	}
	runRounds(t, tr, 4, 2)
	if err := tr.Resize(3); err != nil {
		t.Fatal(err)
	}
	runRounds(t, tr, 3, 2)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeRejectsNonPositive(t *testing.T) {
	tr := NewMem(2)
	defer tr.Close()
	if err := tr.Resize(0); err == nil {
		t.Fatal("Mem.Resize(0) succeeded")
	}
	tcp, err := NewTCP(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	if err := tcp.Resize(0); err == nil {
		t.Fatal("TCP.Resize(0) succeeded")
	}
}

// TestMemResizeClearsAbortPoison: a resize starts a fresh membership epoch,
// so abort poison from the old membership must not leak into it.
func TestMemResizeClearsAbortPoison(t *testing.T) {
	tr := NewMem(2)
	defer tr.Close()
	tr.Abort(errors.New("boom"))
	if err := tr.EndRound(0); err == nil {
		t.Fatal("EndRound after Abort succeeded")
	}
	if err := tr.Resize(3); err != nil {
		t.Fatal(err)
	}
	runRounds(t, tr, 3, 1)
}

// TestFaultyResizeKillFiresOnlyInItsPhase: a ResizeKill must stay dormant
// outside migration windows, fire exactly once inside its scripted phase,
// and stay consumed for the retry phase.
func TestFaultyResizeKillFiresOnlyInItsPhase(t *testing.T) {
	tr := NewFaulty(NewMem(3), FaultPlan{ResizeKills: []ResizeKill{{Worker: 1, Phase: 0}}})
	defer tr.Close()
	// Outside any migration window the kill is dormant.
	if err := tr.Send(1, 0, []byte("x")); err != nil {
		t.Fatalf("send outside resize window: %v", err)
	}
	tr.ResizePhase(true) // phase 0 arms
	var ke *KillError
	if err := tr.Send(1, 0, []byte("x")); !errors.As(err, &ke) || ke.Worker != 1 {
		t.Fatalf("send in phase 0: err=%v, want KillError{Worker: 1}", err)
	}
	// Dead stays dead within the window.
	if err := tr.EndRound(1); !errors.As(err, &ke) {
		t.Fatalf("endround after kill: %v", err)
	}
	tr.ResizePhase(false)
	tr.Revive(1)
	tr.Reset()
	tr.ResizePhase(true) // phase 1: script consumed, retry must run clean
	if err := tr.Send(1, 0, []byte("x")); err != nil {
		t.Fatalf("send in retry phase: %v", err)
	}
	tr.ResizePhase(false)
	if c := tr.Counts(); c.Kills != 1 {
		t.Fatalf("kills=%d want 1", c.Kills)
	}
}

// TestFaultyResizeCorruptFlipsMigrationFrame: the scripted flip must hit a
// frame sent inside the migration window and leave later phases clean.
func TestFaultyResizeCorruptFlipsMigrationFrame(t *testing.T) {
	tr := NewFaulty(NewMem(2), FaultPlan{Seed: 11, ResizeCorrupts: []ResizeFrameCorrupt{{From: 0, To: 1, Phase: 0}}})
	defer tr.Close()
	orig := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	tr.ResizePhase(true)
	payload := append([]byte(nil), orig...)
	if err := tr.Send(0, 1, payload); err != nil {
		t.Fatal(err)
	}
	tr.ResizePhase(false)
	tr.EndRound(0)
	tr.EndRound(1)
	var got []byte
	tr.Drain(1, func(from int, data []byte) { got = append([]byte(nil), data...) })
	tr.Drain(0, func(int, []byte) {})
	diff := 0
	for i := range orig {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt frame differs in %d bytes, want exactly 1 (got=%x orig=%x)", diff, got, orig)
	}
	if c := tr.Counts(); c.Corrupts != 1 {
		t.Fatalf("corrupts=%d want 1", c.Corrupts)
	}
}

// TestFaultyResizeDelayHoldsUntilEndRound: delayed migration frames must
// still arrive within the round (flushed before the end-of-round marker).
func TestFaultyResizeDelayHoldsUntilEndRound(t *testing.T) {
	tr := NewFaulty(NewMem(2), FaultPlan{ResizeDelays: []ResizeFrameDelay{{Worker: 0, Phase: 0}}})
	defer tr.Close()
	tr.ResizePhase(true)
	for i := 0; i < 3; i++ {
		if err := tr.Send(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.EndRound(0); err != nil {
		t.Fatal(err)
	}
	tr.ResizePhase(false)
	if err := tr.EndRound(1); err != nil {
		t.Fatal(err)
	}
	seen := map[byte]bool{}
	if err := tr.Drain(1, func(from int, data []byte) { seen[data[0]] = true }); err != nil {
		t.Fatal(err)
	}
	tr.Drain(0, func(int, []byte) {})
	if len(seen) != 3 {
		t.Fatalf("got %d distinct frames, want 3", len(seen))
	}
	if c := tr.Counts(); c.Delays != 3 {
		t.Fatalf("delays=%d want 3", c.Delays)
	}
}

// TestFaultyResizeGrowsFaultState: after Faulty.Resize the wrapper's
// per-worker state covers the new members and survivors keep their flags.
func TestFaultyResizeGrowsFaultState(t *testing.T) {
	tr := NewFaulty(NewMem(2), FaultPlan{Kills: []WorkerKill{{Worker: 1, Round: 0}}})
	defer tr.Close()
	var ke *KillError
	if err := tr.Send(1, 0, []byte("x")); !errors.As(err, &ke) {
		t.Fatalf("scripted kill did not fire: %v", err)
	}
	if err := tr.Resize(4); err != nil {
		t.Fatal(err)
	}
	// Worker 1's death survives the resize; new workers are alive.
	if err := tr.Send(1, 0, []byte("x")); !errors.As(err, &ke) {
		t.Fatalf("killed flag lost across resize: %v", err)
	}
	if err := tr.Send(3, 2, []byte("x")); err != nil {
		t.Fatalf("new worker send: %v", err)
	}
	tr.Revive(1)
	tr.Reset()
	runRounds(t, tr, 4, 1)
}

// TestFaultyResizeUnsupportedInner: a wrapped transport without Resize
// support must surface a terminal error, not panic.
func TestFaultyResizeUnsupportedInner(t *testing.T) {
	tr := NewFaulty(fixedTransport{NewMem(2)}, FaultPlan{})
	if err := tr.Resize(3); err == nil {
		t.Fatal("Resize over non-Resizer inner succeeded")
	}
}

// fixedTransport hides Mem's Resize method, modeling a transport that cannot
// change membership.
type fixedTransport struct{ m *Mem }

func (f fixedTransport) Workers() int                                 { return f.m.Workers() }
func (f fixedTransport) Send(from, to int, data []byte) error         { return f.m.Send(from, to, data) }
func (f fixedTransport) EndRound(from int) error                      { return f.m.EndRound(from) }
func (f fixedTransport) Drain(to int, h func(int, []byte)) error      { return f.m.Drain(to, h) }
func (f fixedTransport) Heartbeat(from int) error                     { return f.m.Heartbeat(from) }
func (f fixedTransport) Abort(err error)                              { f.m.Abort(err) }
func (f fixedTransport) Reset()                                       { f.m.Reset() }
func (f fixedTransport) SetDrainTimeout(d time.Duration)              { f.m.SetDrainTimeout(d) }
func (f fixedTransport) Stats() Stats                                 { return f.m.Stats() }
func (f fixedTransport) Close() error                                 { return f.m.Close() }
