package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flash"
	"flash/internal/comm"
	"flash/internal/serve"
)

// workerConfig is the parsed flag set of one `flashd worker` process.
type workerConfig struct {
	worker          int
	workers         int
	epoch           uint
	listen          string
	graphJSON       string
	algo            string
	paramsJSON      string
	storeDir        string
	checkpointEvery int
	connectTimeout  time.Duration
	drainTimeout    time.Duration
	heartbeatEvery  time.Duration
}

// WorkerMain is the entry point of the `flashd worker` subcommand: one
// resident worker of a multi-process cluster job. It builds the same graph
// as every peer (the spec is deterministic), listens on a cluster mesh
// endpoint, registers with the coordinator over stdout, waits for the start
// message carrying the full peer address list and the resume sequence,
// connects the mesh, and runs the algorithm under the SPMD cluster engine.
// The return value is the process exit code (see the Exit* constants).
func WorkerMain(args []string) int {
	fs := flag.NewFlagSet("flashd worker", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	cfg := workerConfig{}
	fs.IntVar(&cfg.worker, "worker", -1, "resident worker id in [0,workers)")
	fs.IntVar(&cfg.workers, "workers", 0, "total cluster worker count")
	fs.UintVar(&cfg.epoch, "epoch", 1, "membership epoch stamped on handshake frames")
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:0", "mesh listen address")
	fs.StringVar(&cfg.graphJSON, "graph", "", "graph spec (serve.GraphSpec JSON)")
	fs.StringVar(&cfg.algo, "algo", "", "algorithm name (must be cluster-safe)")
	fs.StringVar(&cfg.paramsJSON, "params", "{}", "algorithm params (serve.JobParams JSON)")
	fs.StringVar(&cfg.storeDir, "store", "", "durable worker-store root directory")
	fs.IntVar(&cfg.checkpointEvery, "checkpoint-every", 0, "checkpoint cadence in supersteps (0 = off)")
	fs.DurationVar(&cfg.connectTimeout, "connect-timeout", 10*time.Second, "mesh connect deadline")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 5*time.Second, "engine drain timeout and SIGTERM drain budget")
	fs.DurationVar(&cfg.heartbeatEvery, "heartbeat-every", 0, "engine heartbeat interval (0 = engine default)")
	if err := fs.Parse(args); err != nil {
		return ExitConfig
	}
	return runWorker(cfg, os.Stdin, os.Stdout)
}

// runWorker is WorkerMain minus the flag parsing, with the control streams
// injected so tests can drive a worker in-process.
func runWorker(cfg workerConfig, ctrlIn *os.File, ctrlOut *os.File) int {
	fail := func(code int, format string, a ...any) int {
		msg := fmt.Sprintf(format, a...)
		fmt.Fprintf(os.Stderr, "flashd worker: %s\n", msg)
		emit(ctrlOut, &Message{Type: MsgFail, Worker: cfg.worker, Error: msg})
		return code
	}
	if cfg.workers < 2 {
		return fail(ExitConfig, "-workers must be >= 2, got %d", cfg.workers)
	}
	if cfg.worker < 0 || cfg.worker >= cfg.workers {
		return fail(ExitConfig, "-worker %d out of range [0,%d)", cfg.worker, cfg.workers)
	}
	if !serve.ClusterSafe(cfg.algo) {
		return fail(ExitConfig, "algo %q is not cluster-safe (allowed: %v)", cfg.algo, serve.ClusterAlgos())
	}
	var spec serve.GraphSpec
	if err := json.Unmarshal([]byte(cfg.graphJSON), &spec); err != nil {
		return fail(ExitConfig, "-graph: %v", err)
	}
	var params serve.JobParams
	if err := json.Unmarshal([]byte(cfg.paramsJSON), &params); err != nil {
		return fail(ExitConfig, "-params: %v", err)
	}
	// Topology is owned by the cluster, not the job request: scrub any
	// engine-shape params so a stray field cannot desynchronize the fleet.
	params.Workers, params.TCP, params.ResizeAt, params.ResizeTo = nil, nil, nil, nil

	g, err := serve.BuildGraph(spec)
	if err != nil {
		return fail(ExitConfig, "build graph: %v", err)
	}

	var store *flash.WorkerStore
	if cfg.storeDir != "" {
		store, err = flash.OpenWorkerStore(cfg.storeDir, cfg.worker)
		if err != nil {
			return fail(ExitConfig, "open worker store: %v", err)
		}
		defer store.Close()
	}

	ep, err := comm.ListenTCPCluster(comm.ClusterConfig{
		Workers: cfg.workers, Self: cfg.worker, Listen: cfg.listen, Epoch: uint32(cfg.epoch),
	})
	if err != nil {
		return fail(ExitConfig, "listen mesh: %v", err)
	}
	defer ep.Close()

	reg := &Message{Type: MsgRegister, Worker: cfg.worker, Epoch: uint32(cfg.epoch), Addr: ep.Addr()}
	if store != nil {
		reg.LatestSeq = store.LatestSeq()
	}
	if err := emit(ctrlOut, reg); err != nil {
		return ExitProtocol
	}

	// Control reader: one goroutine owns stdin for the process lifetime.
	// The channel closes on EOF — mid-run that means the coordinator died.
	ctrl := make(chan *Message, 4)
	go func() {
		defer close(ctrl)
		sc := bufio.NewScanner(ctrlIn)
		sc.Buffer(make([]byte, 64*1024), maxControlLine)
		for sc.Scan() {
			m, err := ParseMessage(sc.Bytes())
			if err != nil {
				continue // a malformed control line is logged by the sender, not fatal here
			}
			ctrl <- m
		}
	}()

	var start *Message
	select {
	case m, ok := <-ctrl:
		if !ok {
			return fail(ExitProtocol, "control channel closed before start")
		}
		if m.Type != MsgStart {
			return fail(ExitProtocol, "expected start message, got %q", m.Type)
		}
		start = m
	case <-time.After(cfg.connectTimeout):
		return fail(ExitProtocol, "no start message within %v", cfg.connectTimeout)
	}
	if len(start.Peers) != cfg.workers {
		return fail(ExitProtocol, "start lists %d peers, want %d", len(start.Peers), cfg.workers)
	}
	if start.ResumeSeq > 0 && store == nil {
		return fail(ExitConfig, "start requests resume from seq %d but no -store was given", start.ResumeSeq)
	}

	if err := ep.ConnectPeers(start.Peers, cfg.connectTimeout); err != nil {
		return fail(ExitProtocol, "connect mesh: %v", err)
	}

	opts := []flash.Option{
		flash.WithWorkers(cfg.workers),
		flash.WithTransport(ep),
		flash.WithCluster(flash.ClusterSpec{Resident: cfg.worker, Store: store, ResumeSeq: start.ResumeSeq}),
		flash.WithDrainTimeout(cfg.drainTimeout),
	}
	if cfg.checkpointEvery > 0 {
		opts = append(opts, flash.WithCheckpointEvery(cfg.checkpointEvery))
	}
	if cfg.heartbeatEvery > 0 {
		opts = append(opts, flash.WithHeartbeatEvery(cfg.heartbeatEvery))
	}

	type outcome struct {
		payload []byte
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		payload, err := serve.RunAlgo(cfg.algo, g, params, opts...)
		done <- outcome{payload, err}
	}()

	sigterm := make(chan os.Signal, 1)
	signal.Notify(sigterm, syscall.SIGTERM)
	defer signal.Stop(sigterm)

	for {
		select {
		case out := <-done:
			if out.err != nil {
				return fail(exitForRunError(out.err), "run: %v", out.err)
			}
			if err := emit(ctrlOut, &Message{Type: MsgResult, Worker: cfg.worker, Result: out.payload}); err != nil {
				return ExitProtocol
			}
			return ExitOK
		case m, ok := <-ctrl:
			if !ok {
				// Coordinator gone mid-run: shut the mesh so peers unblock
				// fast instead of waiting out their drain timeouts.
				ep.Close()
				return fail(ExitProtocol, "control channel closed mid-run")
			}
			if m.Type == MsgChaos && m.Fault == "partition" {
				ep.DropPeers()
			}
		case <-sigterm:
			// Graceful drain: give the in-flight run one drain budget to
			// finish, then stop regardless. The exit code tells the
			// coordinator this was a requested shutdown either way.
			select {
			case <-done:
			case <-time.After(cfg.drainTimeout):
				ep.Close()
			}
			return ExitDrained
		}
	}
}

// exitForRunError maps an engine failure onto the worker exit-code
// vocabulary: mesh liveness verdicts keep their identity so the coordinator
// can distinguish "my peer died" (retryable) from "the algorithm is broken"
// (permanent).
func exitForRunError(err error) int {
	switch {
	case errors.Is(err, comm.ErrPeerDead):
		return ExitPeerDead
	case errors.Is(err, comm.ErrPeerStalled):
		return ExitPeerStalled
	default:
		return ExitRunError
	}
}

// emit writes one control message as a single line on w.
func emit(w *os.File, m *Message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
