package algo

import (
	"sort"

	"flash"
	"flash/graph"
)

type rcProps struct {
	Count int64
	Out   []uint32 // all neighbors, sorted
	OutL  []uint32 // neighbors with larger id, sorted
}

// RC counts rectangles (4-cycles) with the two-hop intersection algorithm
// (paper Algorithm 22): after materializing neighbor lists, every two-hop
// pair (s, d) with s.id < d.id counts its common neighbors larger than s
// and adds C(t, 2); the id ordering makes every rectangle counted exactly
// once, at the diagonal containing its minimum vertex. The two-hop edge set
// join(E, E) is a virtual set, so this algorithm needs (and enables)
// full mirroring — which is why no neighborhood-bound framework provides RC.
func RC(g *graph.Graph, opts ...flash.Option) (int64, error) {
	e, err := newEngine[rcProps](g, opts, flash.WithFullMirrors())
	if err != nil {
		return 0, err
	}
	defer e.Close()

	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[rcProps]) rcProps { return rcProps{} })
	// Materialize neighbor lists.
	e.EdgeMap(u, e.E(),
		nil,
		func(s, d flash.Vertex[rcProps]) rcProps {
			nv := *d.Val
			nv.Out = append(append([]uint32(nil), nv.Out...), uint32(s.ID))
			if s.ID > d.ID {
				nv.OutL = append(append([]uint32(nil), nv.OutL...), uint32(s.ID))
			}
			return nv
		},
		nil,
		func(t, cur rcProps) rcProps {
			cur.Out = append(cur.Out, t.Out...)
			cur.OutL = append(cur.OutL, t.OutL...)
			return cur
		})
	e.VertexMap(u, nil, func(v flash.Vertex[rcProps]) rcProps {
		nv := *v.Val
		sort.Slice(nv.Out, func(i, j int) bool { return nv.Out[i] < nv.Out[j] })
		sort.Slice(nv.OutL, func(i, j int) bool { return nv.OutL[i] < nv.OutL[j] })
		return nv
	})
	// Count over distinct two-hop pairs.
	e.EdgeMap(u, flash.JoinEE(e.E(), e.E()),
		func(s, d flash.Vertex[rcProps]) bool { return s.ID < d.ID },
		func(s, d flash.Vertex[rcProps]) rcProps {
			nv := *d.Val
			t := intersectCount(s.Val.OutL, d.Val.Out)
			nv.Count += t * (t - 1) / 2
			return nv
		},
		nil,
		func(t, cur rcProps) rcProps {
			cur.Count += t.Count
			return cur
		},
		flash.NoSync()) // Count is extracted driver-side

	return e.SumInt64(func(_ graph.VID, val *rcProps) int64 { return val.Count }), nil
}
