package lint

import (
	"go/ast"
	"go/types"
)

// DetOrder enforces the PR-2/PR-3 determinism contract: the bytes a worker
// ships must be a deterministic function of engine state, because the golden
// matrix asserts byte-identical message streams across runs and the replay
// recovery path re-executes supersteps expecting identical frames. Go
// randomizes map iteration order, so a single `range m` over a map anywhere
// in the frame-encode or ship-order path silently breaks both.
//
// Functions whose doc comment carries //flash:deterministic are roots. Since
// flashvet v2 the analyzer walks the *module-wide* call graph (Pass.Mod), so
// an unannotated helper in another package reached from a deterministic root
// is checked too — the intraprocedural version went blind at the package
// boundary and cross-package encode helpers had to carry their own marker.
// References (not just direct calls) over-approximate reachability, which is
// the safe direction: a function value handed to parfor or Range is still
// executed on the path.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "no map iteration reachable from //flash:deterministic encode/ship-order code",
	Run:  runDetOrder,
}

func runDetOrder(pass *Pass) error {
	reach := pass.Mod.deterministicReach()
	if len(reach) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			f := pass.Mod.FuncOf(pass.Info.Defs[fn.Name])
			if f == nil || !reach[f] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := typeOf(pass.Info, rng.X).(*types.Map); isMap {
					pass.Reportf(rng.Pos(),
						"map iteration in %s is reachable from //flash:deterministic code; iterate a sorted slice instead (map order is randomized)",
						fn.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}

// deterministicReach memoizes the set of module functions reachable from any
// //flash:deterministic root over the module call graph.
func (m *Module) deterministicReach() map[*Func]bool {
	if m.detReach != nil {
		return m.detReach
	}
	reach := map[*Func]bool{}
	var queue []*Func
	for _, key := range sortedKeys(m.Funcs) {
		if f := m.Funcs[key]; HasMarker(f.Decl, "deterministic") {
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if reach[f] {
			continue
		}
		reach[f] = true
		for _, e := range f.Calls {
			queue = append(queue, e.To)
		}
	}
	m.detReach = reach
	return reach
}
