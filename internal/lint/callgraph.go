package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the interprocedural layer under flashvet: a module-wide static
// call graph over every loaded package, condensed into strongly connected
// components and traversed bottom-up to compute one dataflow Summary per
// function (see summary.go). Analyzers consult it through Pass.Mod.
//
// Identity across packages is the crux: when package A is type-checked from
// source, a reference to B.F resolves to a types.Object materialized from B's
// compiler export data — a different pointer than the object B's own
// source-checked pass defines. FuncKey canonicalizes both to the same string
// ("pkgpath.Recv.Name"), which is what Module.Funcs is keyed by.

// A Func is one declared function or method in the analyzed module.
type Func struct {
	Key  string
	Obj  types.Object
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls holds one edge per (callee, position): every module function this
	// one references — direct calls, method calls, and function values handed
	// to higher-order code. References over-approximate calls, which is the
	// safe direction for reachability contracts (detorder, phaseorder).
	Calls []CallEdge

	// Sum is the bottom-up dataflow summary (see summary.go).
	Sum Summary

	// Phases holds the //flash:phase(...) legality set, nil when unannotated;
	// phaseMask is its bitmask form (see phaseorder.go).
	Phases    []string
	phaseMask uint8

	// tarjan scratch
	index, lowlink int
	onStack        bool
}

// Name returns a compact human-readable name ("(*Partitioned).Rebuild").
func (f *Func) Name() string {
	if f.Decl.Recv != nil && len(f.Decl.Recv.List) > 0 {
		return "(" + types.ExprString(f.Decl.Recv.List[0].Type) + ")." + f.Decl.Name.Name
	}
	return f.Decl.Name.Name
}

// A CallEdge is one static reference from a function to a module function.
type CallEdge struct {
	To  *Func
	Pos token.Pos
}

// Module is the interprocedural view over one RunAnalyzers invocation: every
// loaded package, the module-wide call graph, and per-function summaries.
type Module struct {
	Pkgs  []*Package
	Funcs map[string]*Func

	// immutableTypes holds "pkgpath.TypeName" for every type declaration
	// marked //flash:immutable (consumed by sharedmut).
	immutableTypes map[string]bool

	// memoized analyses shared by the per-package passes
	detReach   map[*Func]bool // reachable from a //flash:deterministic root
	phaseDiags []rawPhaseDiag
	phaseOnce  bool
}

// FuncKey canonicalizes a function object to its cross-package identity, or
// "" when obj is not a declared function (builtins, interface methods resolve
// to a key too, but never match a declaration). Generic instantiations fold
// onto their origin declaration.
func FuncKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	fn = fn.Origin()
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		name := "?"
		switch t := rt.(type) {
		case *types.Named:
			name = t.Obj().Name()
		case *types.Interface:
			return "" // interface method: no body to analyze
		}
		return pkg.Path() + "." + name + "." + fn.Name()
	}
	return pkg.Path() + "." + fn.Name()
}

// BuildModule constructs the call graph and computes every summary bottom-up
// over the SCC condensation.
func BuildModule(pkgs []*Package) *Module {
	mod := &Module{Pkgs: pkgs, Funcs: map[string]*Func{}, immutableTypes: map[string]bool{}}
	// Pass 1: register declarations and immutable-marked types.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					obj := pkg.Info.Defs[d.Name]
					key := FuncKey(obj)
					if key == "" {
						continue
					}
					f := &Func{Key: key, Obj: obj, Decl: d, Pkg: pkg}
					if args, ok := MarkerArgs(d.Doc, "phase"); ok {
						f.Phases = args
					}
					mod.Funcs[key] = f
				case *ast.GenDecl:
					mod.registerImmutable(pkg, d)
				}
			}
		}
	}
	// Pass 2: reference edges.
	for _, f := range mod.Funcs {
		f.Calls = mod.collectEdges(f)
	}
	// Pass 3: bottom-up summaries over the SCC condensation. Tarjan emits
	// each component only after every component it can reach, so callee
	// summaries are final (up to in-SCC fixpoint) when a caller is analyzed.
	for _, scc := range mod.sccs() {
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				old := f.Sum
				f.Sum = computeSummary(mod, f)
				if !old.equal(&f.Sum) {
					changed = true
				}
			}
		}
	}
	return mod
}

// registerImmutable records type specs whose doc or line comment carries
// //flash:immutable.
func (m *Module) registerImmutable(pkg *Package, d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		if commentGroupHasMarker(d.Doc, "immutable") ||
			commentGroupHasMarker(ts.Doc, "immutable") ||
			commentGroupHasMarker(ts.Comment, "immutable") {
			m.immutableTypes[pkg.Types.Path()+"."+ts.Name.Name] = true
		}
	}
}

// IsImmutableType reports whether t (after pointer stripping) is a named type
// marked //flash:immutable anywhere in the module.
func (m *Module) IsImmutableType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return false
	}
	return m.immutableTypes[obj.Pkg().Path()+"."+obj.Name()]
}

// FuncOf resolves a referenced object to its module declaration, folding
// generic instantiations and export-data objects onto the source Func.
func (m *Module) FuncOf(obj types.Object) *Func {
	if obj == nil {
		return nil
	}
	return m.Funcs[FuncKey(obj)]
}

// CalleeOf resolves the module function a call expression invokes (direct
// calls and method calls; nil for interface calls, func values, builtins, and
// out-of-module callees).
func (m *Module) CalleeOf(info *types.Info, call *ast.CallExpr) *Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return m.FuncOf(info.Uses[fun])
	case *ast.SelectorExpr:
		return m.FuncOf(info.Uses[fun.Sel])
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return m.FuncOf(info.Uses[id])
		}
	}
	return nil
}

// collectEdges walks f's body and resolves every referenced function object
// to a module declaration.
func (m *Module) collectEdges(f *Func) []CallEdge {
	var edges []CallEdge
	seen := map[*Func]bool{}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		used := f.Pkg.Info.Uses[id]
		if used == nil {
			return true
		}
		target := m.FuncOf(used)
		if target == nil || target == f {
			return true
		}
		if !seen[target] {
			seen[target] = true
			edges = append(edges, CallEdge{To: target, Pos: id.Pos()})
		}
		return true
	})
	return edges
}

// sccs returns the strongly connected components of the call graph in
// bottom-up (callee-first) order.
func (m *Module) sccs() [][]*Func {
	var (
		stack []*Func
		out   [][]*Func
		next  = 1
	)
	for _, f := range m.Funcs {
		f.index = 0
	}
	var strongconnect func(f *Func)
	strongconnect = func(f *Func) {
		f.index, f.lowlink = next, next
		next++
		stack = append(stack, f)
		f.onStack = true
		for _, e := range f.Calls {
			w := e.To
			if w.index == 0 {
				strongconnect(w)
				if w.lowlink < f.lowlink {
					f.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < f.lowlink {
				f.lowlink = w.index
			}
		}
		if f.lowlink == f.index {
			var scc []*Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				scc = append(scc, w)
				if w == f {
					break
				}
			}
			out = append(out, scc)
		}
	}
	// Deterministic iteration keeps diagnostics and timings stable.
	for _, key := range sortedKeys(m.Funcs) {
		if f := m.Funcs[key]; f.index == 0 {
			strongconnect(f)
		}
	}
	return out
}

func sortedKeys(m map[string]*Func) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort: module has a few thousand functions at most
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// HasFuncMarker reports whether f's doc comment carries //flash:<name>.
func (f *Func) HasFuncMarker(name string) bool {
	return commentGroupHasMarker(f.Decl.Doc, name)
}

// MarkerArgs finds //flash:<name> or //flash:<name>(a,b,...) in doc and
// returns the parenthesized arguments (nil for the bare form).
func MarkerArgs(doc *ast.CommentGroup, name string) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		body, ok := strings.CutPrefix(c.Text, "//flash:")
		if !ok {
			continue
		}
		body = strings.TrimSpace(body)
		if body == name {
			return nil, true
		}
		rest, ok := strings.CutPrefix(body, name+"(")
		if !ok {
			continue
		}
		rest, ok = strings.CutSuffix(strings.TrimSpace(rest), ")")
		if !ok {
			continue
		}
		var args []string
		for _, a := range strings.Split(rest, ",") {
			if a = strings.TrimSpace(a); a != "" {
				args = append(args, a)
			}
		}
		return args, true
	}
	return nil, false
}
