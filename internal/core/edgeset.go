package core

import "flash/graph"

// EdgeSet is the paper's H parameter of EDGEMAP: the edge set to conduct
// updates over. Besides the graph's own edges it may be a derived set
// (reverse, target-filtered, two-hop) or an arbitrary *virtual* edge set
// computed from vertex properties at runtime, which is the paper's
// "communication beyond neighborhood" extension (§III-C).
type EdgeSet[V any] interface {
	// Out iterates the H-out-edges of u; yield returns false to stop.
	Out(c *Ctx[V], u graph.VID, yield func(d graph.VID, w float32) bool)
	// In iterates the H-in-edges of d. Only called when SupportsIn is true.
	In(c *Ctx[V], d graph.VID, yield func(s graph.VID, w float32) bool)
	// SupportsIn reports whether the pull kernel may be used.
	SupportsIn() bool
	// SupportsOut reports whether the push kernel may be used.
	SupportsOut() bool
	// Physical reports whether every edge of the set is an edge of G. Only
	// physical sets allow the necessary-mirrors optimization; virtual sets
	// force broadcast synchronization (§IV-C) and require FullMirrors.
	Physical() bool
	// OutDegreeHint estimates |Out(u)| for the density rule.
	OutDegreeHint(c *Ctx[V], u graph.VID) int
}

// baseEdges is E itself.
type baseEdges[V any] struct{}

// BaseE returns the edge set E of the engine's graph.
func BaseE[V any]() EdgeSet[V] { return baseEdges[V]{} }

func (baseEdges[V]) Out(c *Ctx[V], u graph.VID, yield func(graph.VID, float32) bool) {
	adj := c.G.OutNeighbors(u)
	ws := c.G.OutWeights(u)
	for i, d := range adj {
		var w float32
		if ws != nil {
			w = ws[i]
		}
		if !yield(d, w) {
			return
		}
	}
}

func (baseEdges[V]) In(c *Ctx[V], d graph.VID, yield func(graph.VID, float32) bool) {
	adj := c.G.InNeighbors(d)
	ws := c.G.InWeights(d)
	for i, s := range adj {
		var w float32
		if ws != nil {
			w = ws[i]
		}
		if !yield(s, w) {
			return
		}
	}
}

func (baseEdges[V]) SupportsIn() bool  { return true }
func (baseEdges[V]) SupportsOut() bool { return true }
func (baseEdges[V]) Physical() bool    { return true }
func (baseEdges[V]) OutDegreeHint(c *Ctx[V], u graph.VID) int {
	return c.G.OutDegree(u)
}

// reverseEdges flips an inner set (paper's reverse(E)).
type reverseEdges[V any] struct{ inner EdgeSet[V] }

// ReverseE returns the reversal of h. Pull support requires h to support
// Out (always true) and push support requires h.In; both directions swap.
func ReverseE[V any](h EdgeSet[V]) EdgeSet[V] { return reverseEdges[V]{inner: h} }

func (r reverseEdges[V]) Out(c *Ctx[V], u graph.VID, yield func(graph.VID, float32) bool) {
	r.inner.In(c, u, yield)
}

func (r reverseEdges[V]) In(c *Ctx[V], d graph.VID, yield func(graph.VID, float32) bool) {
	r.inner.Out(c, d, yield)
}

func (r reverseEdges[V]) SupportsIn() bool  { return r.inner.SupportsOut() }
func (r reverseEdges[V]) SupportsOut() bool { return r.inner.SupportsIn() }
func (r reverseEdges[V]) Physical() bool    { return r.inner.Physical() }
func (r reverseEdges[V]) OutDegreeHint(c *Ctx[V], u graph.VID) int {
	return c.G.InDegree(u)
}

// joinEU restricts an inner set to edges whose target lies in a subset
// (paper's join(E, U)).
type joinEU[V any] struct {
	inner  EdgeSet[V]
	member func(graph.VID) bool
}

// JoinEU returns h restricted to targets for which member returns true. The
// membership function must be safe for concurrent use and stable within a
// superstep.
func JoinEU[V any](h EdgeSet[V], member func(graph.VID) bool) EdgeSet[V] {
	return joinEU[V]{inner: h, member: member}
}

func (j joinEU[V]) Out(c *Ctx[V], u graph.VID, yield func(graph.VID, float32) bool) {
	j.inner.Out(c, u, func(d graph.VID, w float32) bool {
		if !j.member(d) {
			return true
		}
		return yield(d, w)
	})
}

func (j joinEU[V]) In(c *Ctx[V], d graph.VID, yield func(graph.VID, float32) bool) {
	if !j.member(d) {
		return
	}
	j.inner.In(c, d, yield)
}

func (j joinEU[V]) SupportsIn() bool  { return j.inner.SupportsIn() }
func (j joinEU[V]) SupportsOut() bool { return j.inner.SupportsOut() }
func (j joinEU[V]) Physical() bool    { return j.inner.Physical() }
func (j joinEU[V]) OutDegreeHint(c *Ctx[V], u graph.VID) int {
	return j.inner.OutDegreeHint(c, u)
}

// joinEE composes two sets: u ->(a) x ->(b) d (paper's join(E, E), two-hop
// neighbors).
type joinEE[V any] struct{ a, b EdgeSet[V] }

// JoinEE returns the composition a∘b: an edge u->d exists when some x has
// u->x in a and x->d in b. Each distinct (u,d) pair is yielded exactly once
// regardless of how many witnesses x connect them — EDGEMAP's active edge
// set is a set, not a multiset.
func JoinEE[V any](a, b EdgeSet[V]) EdgeSet[V] { return joinEE[V]{a: a, b: b} }

func (j joinEE[V]) Out(c *Ctx[V], u graph.VID, yield func(graph.VID, float32) bool) {
	seen := make(map[graph.VID]struct{})
	j.a.Out(c, u, func(x graph.VID, _ float32) bool {
		stop := false
		j.b.Out(c, x, func(d graph.VID, w float32) bool {
			if _, dup := seen[d]; dup {
				return true
			}
			seen[d] = struct{}{}
			if !yield(d, w) {
				stop = true
				return false
			}
			return true
		})
		return !stop
	})
}

func (j joinEE[V]) In(c *Ctx[V], d graph.VID, yield func(graph.VID, float32) bool) {
	seen := make(map[graph.VID]struct{})
	j.b.In(c, d, func(x graph.VID, _ float32) bool {
		stop := false
		j.a.In(c, x, func(s graph.VID, w float32) bool {
			if _, dup := seen[s]; dup {
				return true
			}
			seen[s] = struct{}{}
			if !yield(s, w) {
				stop = true
				return false
			}
			return true
		})
		return !stop
	})
}

func (j joinEE[V]) SupportsIn() bool  { return j.a.SupportsIn() && j.b.SupportsIn() }
func (j joinEE[V]) SupportsOut() bool { return j.a.SupportsOut() && j.b.SupportsOut() }

// Physical is false: two-hop pairs are generally not edges of G, so syncs
// must broadcast and reads may touch arbitrary vertices.
func (j joinEE[V]) Physical() bool { return false }

func (j joinEE[V]) OutDegreeHint(c *Ctx[V], u graph.VID) int {
	// Cheap upper estimate: deg(u) * avg degree.
	avg := 1
	if n := c.G.NumVertices(); n > 0 {
		avg = c.G.NumEdges()/n + 1
	}
	return j.a.OutDegreeHint(c, u) * avg
}

// outFunc is a virtual edge set defined by a per-source target list, e.g.
// the paper's join(U, p): edges from each u to u.p.
type outFunc[V any] struct {
	targets func(c *Ctx[V], u graph.VID) []graph.VID
	hint    int
}

// OutFunc builds a virtual edge set from a function mapping a source vertex
// to its targets (which may be computed from properties via c.Get). Pull
// mode is unavailable; the engine will run such maps in push mode.
func OutFunc[V any](targets func(c *Ctx[V], u graph.VID) []graph.VID) EdgeSet[V] {
	return outFunc[V]{targets: targets, hint: 1}
}

func (o outFunc[V]) Out(c *Ctx[V], u graph.VID, yield func(graph.VID, float32) bool) {
	for _, d := range o.targets(c, u) {
		if !yield(d, 0) {
			return
		}
	}
}

func (o outFunc[V]) In(*Ctx[V], graph.VID, func(graph.VID, float32) bool) {
	panic("core: OutFunc edge set does not support pull mode")
}

func (o outFunc[V]) SupportsIn() bool                     { return false }
func (o outFunc[V]) SupportsOut() bool                    { return true }
func (o outFunc[V]) Physical() bool                       { return false }
func (o outFunc[V]) OutDegreeHint(*Ctx[V], graph.VID) int { return o.hint }

// inFunc is a virtual edge set defined by a per-target source list, e.g.
// the paper's join(p, U): an edge from v.p to each v.
type inFunc[V any] struct {
	sources func(c *Ctx[V], d graph.VID) []graph.VID
	hint    int
}

// InFunc builds a virtual edge set from a function mapping a target vertex
// to its sources. Push mode is unavailable; the engine will run such maps in
// pull mode.
func InFunc[V any](sources func(c *Ctx[V], d graph.VID) []graph.VID) EdgeSet[V] {
	return inFunc[V]{sources: sources, hint: 1}
}

func (i inFunc[V]) Out(*Ctx[V], graph.VID, func(graph.VID, float32) bool) {
	panic("core: InFunc edge set does not support push mode")
}

func (i inFunc[V]) In(c *Ctx[V], d graph.VID, yield func(graph.VID, float32) bool) {
	for _, s := range i.sources(c, d) {
		if !yield(s, 0) {
			return
		}
	}
}

func (i inFunc[V]) SupportsIn() bool                     { return true }
func (i inFunc[V]) SupportsOut() bool                    { return false }
func (i inFunc[V]) Physical() bool                       { return false }
func (i inFunc[V]) OutDegreeHint(*Ctx[V], graph.VID) int { return i.hint }
