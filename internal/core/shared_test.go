package core

import (
	"errors"
	"sync"
	"testing"

	"flash/graph"
)

// TestSharedPartitionPointerIdentity pins the engine split's core guarantee:
// two engines borrowing the same SharedGraph at the same configuration hold
// the very same partition object and slot tables — no per-job copy of any
// graph-derived immutable state.
func TestSharedPartitionPointerIdentity(t *testing.T) {
	g := graph.GenRMAT(512, 2048, 11)
	sh := NewSharedGraph(g)
	e1 := mustEngine(t, g, Config{Workers: 4, Shared: sh})
	e2 := mustEngine(t, g, Config{Workers: 4, Shared: sh})
	if e1.part != e2.part {
		t.Fatal("engines at the same configuration do not share the partition")
	}
	for w := range e1.workers {
		if e1.workers[w].st != e2.workers[w].st {
			t.Fatalf("worker %d slot tables are distinct objects", w)
		}
	}
	if sh.Partitions() != 1 {
		t.Fatalf("cache holds %d partitions, want 1", sh.Partitions())
	}
	// A different worker count is a different immutable layout: new cache
	// entry, still shared by later engines asking for it.
	e3 := mustEngine(t, g, Config{Workers: 2, Shared: sh})
	e4 := mustEngine(t, g, Config{Workers: 2, Shared: sh})
	if e3.part == e1.part {
		t.Fatal("w=2 engine reuses the w=4 partition")
	}
	if e3.part != e4.part {
		t.Fatal("w=2 engines do not share their partition")
	}
	if sh.Partitions() != 2 {
		t.Fatalf("cache holds %d partitions, want 2", sh.Partitions())
	}
	if sh.SharedBytes() == 0 {
		t.Fatal("SharedBytes reports zero for a populated cache")
	}
}

// TestSharedPartitionConcurrentBuild races many engines into a cold cache:
// exactly one partition must be built and everyone must share it.
func TestSharedPartitionConcurrentBuild(t *testing.T) {
	g := graph.GenErdosRenyi(256, 1024, 7)
	sh := NewSharedGraph(g)
	const n = 8
	engines := make([]*Engine[bfsProps], n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := NewEngine[bfsProps](g, Config{Workers: 3, Shared: sh})
			if err != nil {
				t.Error(err)
				return
			}
			engines[i] = e
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if engines[i] == nil || engines[0] == nil {
			t.Fatal("engine construction failed")
		}
		if engines[i].part != engines[0].part {
			t.Fatalf("engine %d built a private partition despite the shared cache", i)
		}
	}
	for _, e := range engines {
		if e != nil {
			e.Close()
		}
	}
	if sh.Partitions() != 1 {
		t.Fatalf("cache holds %d partitions, want 1", sh.Partitions())
	}
}

// TestSharedEnginesRunIndependently runs BFS concurrently on engines sharing
// one partition and checks results match a private-partition run — shared
// immutable state, fully isolated mutable state.
func TestSharedEnginesRunIndependently(t *testing.T) {
	g := graph.GenRMAT(512, 2048, 13)
	want := seqBFS(g, 0)
	sh := NewSharedGraph(g)
	const jobs = 6
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := NewEngine[bfsProps](g, Config{Workers: 4, Threads: 2, Shared: sh})
			if err != nil {
				t.Error(err)
				return
			}
			defer e.Close()
			got := runBFS(e, 0, Auto)
			for v := range want {
				if got[v] != want[v] {
					t.Errorf("dist[%d]=%d want %d", v, got[v], want[v])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPrivatizePartForks pins the copy-on-write contract: a rebuild inside
// one engine (cold restart, resize rollback) must not replace any Part the
// shared cache hands to other engines.
func TestPrivatizePartForks(t *testing.T) {
	g := graph.GenErdosRenyi(128, 512, 5)
	sh := NewSharedGraph(g)
	e := mustEngine(t, g, Config{Workers: 3, Shared: sh})
	shared := sh.Partition(3, false)
	if e.part != shared {
		t.Fatal("engine did not borrow the cached partition")
	}
	before := shared.Parts[1]
	e.privatizePart()
	if e.partShared {
		t.Fatal("partShared still set after privatizePart")
	}
	if e.part == shared {
		t.Fatal("privatizePart did not fork")
	}
	e.part.Rebuild(1)
	if shared.Parts[1] != before {
		t.Fatal("rebuild through the fork reached the shared partition")
	}
	if e.part.Parts[1] == before {
		t.Fatal("fork still aliases the rebuilt entry")
	}
	// The rebuilt view must be equivalent — Rebuild is a pure function.
	if err := e.part.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// privatizePart is idempotent.
	forked := e.part
	e.privatizePart()
	if e.part != forked {
		t.Fatal("second privatizePart forked again")
	}
}

// TestSharedMismatchedGraph: the handle must wrap the engine's graph.
func TestSharedMismatchedGraph(t *testing.T) {
	g1 := graph.GenPath(10)
	g2 := graph.GenPath(10)
	sh := NewSharedGraph(g1)
	_, err := NewEngine[bfsProps](g2, Config{Workers: 2, Shared: sh})
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want ConfigError", err)
	}
	if ce.Field != "Shared" {
		t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, "Shared")
	}
}
