package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedMut enforces the PR 7 immutable-after-publish contract behind
// core.SharedGraph: a type marked //flash:immutable (partition.Partitioned,
// partition.Part, partition.SlotTable, graph.Graph) is shared read-only
// between concurrent jobs once published, so nothing may write through it.
//
// Sanctioned escapes, in the order a sharing bug is actually fixed:
//
//   - construction: writes whose root holds locally constructed memory
//     (composite literal, new, or a fresh-returning call such as
//     partition.New / Shell / Fork) are private until published;
//   - //flash:mutator functions own their writes (Rebuild repopulates one
//     worker's Part in place); call *sites* of a mutator are then checked
//     against the same sanction rules — this is where the interprocedural
//     summaries bite, because the mutation is visible across packages;
//   - a //flash:privatizes call (core's privatizePart, which Forks the
//     copy-on-write partition) earlier in the body sanctions later mutator
//     calls rooted at the same object.
//
// This is GraphLab's consistency-model enforcement done statically: the
// engine never takes a lock on topology because the analyzer proves nobody
// writes it.
var SharedMut = &Analyzer{
	Name: "sharedmut",
	Doc:  "no writes through //flash:immutable types after publish; Fork (COW) is the sanctioned escape",
	Run:  runSharedMut,
}

func runSharedMut(p *Pass) error {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			f := p.Mod.FuncOf(p.Info.Defs[fd.Name])
			if f == nil {
				continue
			}
			if f.HasFuncMarker("mutator") || f.HasFuncMarker("privatizes") {
				continue // sanctioned implementation; its call sites are checked
			}
			checkSharedMut(p, f)
		}
	}
	return nil
}

func checkSharedMut(p *Pass, f *Func) {
	fresh := freshLocals(p.Mod, f)

	// privatized[obj] = position of the earliest //flash:privatizes call
	// rooted at obj (e.privatizePart() sanctions a later e.part.Rebuild(w)).
	privatized := map[types.Object]token.Pos{}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.Mod.CalleeOf(p.Info, call)
		if callee == nil || !callee.HasFuncMarker("privatizes") {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := chainRootObj(p.Info, sel.X); obj != nil {
				if old, seen := privatized[obj]; !seen || call.Pos() < old {
					privatized[obj] = call.Pos()
				}
			}
		}
		return true
	})

	sanctioned := func(root ast.Expr, at token.Pos) bool {
		obj := chainRootObj(p.Info, root)
		if obj == nil {
			return false
		}
		if fresh[obj] {
			return true
		}
		pos, ok := privatized[obj]
		return ok && pos < at
	}

	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if t, ok := writtenImmutable(p, lhs); ok && !sanctioned(lhs, n.Pos()) {
					p.Reportf(n.Pos(), "write through //flash:immutable %s after publish; Fork a private copy (partition.Fork / //flash:privatizes) or mark the owner //flash:mutator",
						immutableTypeName(t))
				}
			}
		case *ast.IncDecStmt:
			if t, ok := writtenImmutable(p, n.X); ok && !sanctioned(n.X, n.Pos()) {
				p.Reportf(n.Pos(), "write through //flash:immutable %s after publish; Fork a private copy (partition.Fork / //flash:privatizes) or mark the owner //flash:mutator",
					immutableTypeName(t))
			}
		case *ast.CallExpr:
			callee := p.Mod.CalleeOf(p.Info, n)
			if callee == nil || !callee.HasFuncMarker("mutator") {
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if t := typeOfExpr(p.Info, sel.X); p.Mod.IsImmutableType(t) && !sanctioned(sel.X, n.Pos()) {
					p.Reportf(n.Pos(), "call to //flash:mutator %s mutates shared //flash:immutable %s; fork first (partition.Fork / //flash:privatizes)",
						callee.Name(), immutableTypeName(t))
				}
			}
			for _, a := range n.Args {
				if t := typeOfExpr(p.Info, a); p.Mod.IsImmutableType(t) && !sanctioned(a, n.Pos()) {
					p.Reportf(n.Pos(), "passing shared //flash:immutable %s to //flash:mutator %s; fork first (partition.Fork / //flash:privatizes)",
						immutableTypeName(t), callee.Name())
				}
			}
		}
		return true
	})
}

// writtenImmutable reports whether lhs writes through a value of an
// //flash:immutable type, returning the first such type on the access chain
// (p.Parts[w].Slots = s is a write through *Partitioned and through Part).
func writtenImmutable(p *Pass, lhs ast.Expr) (types.Type, bool) {
	for {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if t := typeOfExpr(p.Info, l.X); p.Mod.IsImmutableType(t) {
				return t, true
			}
			lhs = l.X
		case *ast.IndexExpr:
			if t := typeOfExpr(p.Info, l.X); p.Mod.IsImmutableType(t) {
				return t, true
			}
			lhs = l.X
		case *ast.StarExpr:
			if t := typeOfExpr(p.Info, l.X); p.Mod.IsImmutableType(t) {
				return t, true
			}
			lhs = l.X
		default:
			return nil, false
		}
	}
}

// chainRootObj strips selectors, indexes, derefs, and slices off expr and
// resolves the root identifier's object.
func chainRootObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if obj := info.Defs[e]; obj != nil {
				return obj
			}
			return info.Uses[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func immutableTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
