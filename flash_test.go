package flash

import (
	"testing"
	"testing/quick"

	"flash/graph"
)

type dis struct {
	D int32
}

const inf = int32(1 << 30)

func bfs(t *testing.T, g *graph.Graph, root VID, opts ...Option) []int32 {
	t.Helper()
	e, err := NewEngine[dis](g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.VertexMap(e.All(), nil, func(v Vertex[dis]) dis {
		if v.ID == root {
			return dis{0}
		}
		return dis{inf}
	})
	u := e.VertexMap(e.All(), func(v Vertex[dis]) bool { return v.ID == root }, nil)
	for u.Size() != 0 {
		u = e.EdgeMap(u, e.E(), nil,
			func(s, d Vertex[dis]) dis { return dis{s.Val.D + 1} },
			func(d Vertex[dis]) bool { return d.Val.D == inf },
			func(tv, cur dis) dis { return tv })
	}
	out := make([]int32, g.NumVertices())
	e.Gather(func(v VID, val *dis) { out[v] = val.D })
	return out
}

func TestPublicBFS(t *testing.T) {
	g := graph.GenErdosRenyi(120, 500, 11)
	got := bfs(t, g, 0, WithWorkers(3), WithThreads(2))
	// Reference via path property: dist of neighbor differs by at most 1.
	if got[0] != 0 {
		t.Fatal("root distance not 0")
	}
	g.Edges(func(u, v VID, _ float32) bool {
		du, dv := got[u], got[v]
		if du != inf && dv != inf {
			diff := du - dv
			if diff < -1 || diff > 1 {
				t.Fatalf("edge (%d,%d): dist %d vs %d", u, v, du, dv)
			}
		}
		if (du == inf) != (dv == inf) {
			t.Fatalf("edge (%d,%d): one endpoint unreachable", u, v)
		}
		return true
	})
}

func TestOptionsApplied(t *testing.T) {
	g := graph.GenPath(10)
	e, err := NewEngine[dis](g,
		WithWorkers(2), WithThreads(2), WithMode(Push), WithDenseThreshold(5),
		WithHashPlacement(), WithBatchBytes(128), WithoutNecessaryMirrors())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Workers() != 2 || e.NumVertices() != 10 {
		t.Fatal("accessor mismatch")
	}
}

func TestStepOptions(t *testing.T) {
	g := graph.GenPath(6)
	e, err := NewEngine[dis](g, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// ForceMode(Pull) on a sparse-looking frontier must still be correct.
	e.VertexMap(e.All(), nil, func(v Vertex[dis]) dis { return dis{inf} })
	e.Set(0, dis{0})
	u := e.FromIDs(0)
	for u.Size() > 0 {
		u = e.EdgeMap(u, e.E(), nil,
			func(s, d Vertex[dis]) dis { return dis{s.Val.D + 1} },
			func(d Vertex[dis]) bool { return d.Val.D == inf },
			func(tv, cur dis) dis { return tv },
			ForceMode(Pull))
	}
	if e.Get(5).D != 5 {
		t.Fatalf("dist(5) = %d", e.Get(5).D)
	}
}

func TestSetOpsAndAggregates(t *testing.T) {
	g := graph.GenPath(10)
	e, err := NewEngine[dis](g, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	a := e.FromIDs(1, 2, 3)
	b := e.FromIDs(3, 4)
	if e.Size(e.Union(a, b)) != 4 || e.Size(e.Minus(a, b)) != 2 || e.Size(e.Intersect(a, b)) != 1 {
		t.Fatal("set ops wrong")
	}
	if !e.Contain(a, 2) || e.Contain(a, 4) {
		t.Fatal("Contain wrong")
	}
	e.Add(a, 9)
	if ids := e.IDs(a); len(ids) != 4 || ids[3] != 9 {
		t.Fatalf("IDs = %v", ids)
	}
	if e.Size(e.None()) != 0 {
		t.Fatal("None not empty")
	}

	e.VertexMap(e.All(), nil, func(v Vertex[dis]) dis { return dis{int32(v.ID)} })
	if s := e.SumInt64(func(_ VID, val *dis) int64 { return int64(val.D) }); s != 45 {
		t.Fatalf("SumInt64 = %d", s)
	}
	if s := e.SumFloat64(func(_ VID, val *dis) float64 { return float64(val.D) }); s != 45 {
		t.Fatalf("SumFloat64 = %g", s)
	}
	if c := e.CountIf(func(_ VID, val *dis) bool { return val.D >= 5 }); c != 5 {
		t.Fatalf("CountIf = %d", c)
	}
}

type wprops struct {
	D float32
}

// TestWeightedEdgeMap runs a Bellman-Ford style SSSP over EdgeMapW and
// checks against a sequential reference.
func TestWeightedEdgeMap(t *testing.T) {
	g := graph.WithRandomWeights(graph.GenErdosRenyi(60, 220, 5), 1)
	e, err := NewEngine[wprops](g, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const winf = float32(1e30)
	e.VertexMap(e.All(), nil, func(v Vertex[wprops]) wprops {
		if v.ID == 0 {
			return wprops{0}
		}
		return wprops{winf}
	})
	u := e.FromIDs(0)
	for u.Size() > 0 {
		u = e.EdgeMapW(u, e.E(),
			func(s, d Vertex[wprops], w float32) bool { return s.Val.D+w < d.Val.D },
			func(s, d Vertex[wprops], w float32) wprops { return wprops{s.Val.D + w} },
			nil,
			func(tv, cur wprops) wprops {
				if tv.D < cur.D {
					return tv
				}
				return cur
			})
	}
	// Sequential Bellman-Ford.
	ref := make([]float32, g.NumVertices())
	for i := range ref {
		ref[i] = winf
	}
	ref[0] = 0
	for it := 0; it < g.NumVertices(); it++ {
		changed := false
		g.Edges(func(a, b VID, w float32) bool {
			if ref[a]+w < ref[b] {
				ref[b] = ref[a] + w
				changed = true
			}
			return true
		})
		if !changed {
			break
		}
	}
	e.Gather(func(v VID, val *wprops) {
		diff := val.D - ref[v]
		if diff < -1e-4 || diff > 1e-4 {
			t.Fatalf("sssp dist[%d] = %g, ref %g", v, val.D, ref[v])
		}
	})
}

func TestDSU(t *testing.T) {
	d := NewDSU(6)
	if d.Sets() != 6 || d.Len() != 6 {
		t.Fatal("init wrong")
	}
	if !d.Union(0, 1) || !d.Union(2, 3) || !d.Union(1, 2) {
		t.Fatal("union returned false on distinct sets")
	}
	if d.Union(0, 3) {
		t.Fatal("union returned true on same set")
	}
	if !d.Same(0, 3) || d.Same(0, 4) {
		t.Fatal("Same wrong")
	}
	if d.Sets() != 3 {
		t.Fatalf("Sets = %d", d.Sets())
	}
}

// Property: DSU agrees with a naive component labelling under random unions.
func TestQuickDSU(t *testing.T) {
	f := func(pairs []uint8) bool {
		const n = 16
		d := NewDSU(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for _, p := range pairs {
			a, b := VID(p%n), VID((p/n)%n)
			d.Union(a, b)
			if label[a] != label[b] {
				relabel(label[a], label[b])
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d.Same(VID(i), VID(j)) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinEUPublic(t *testing.T) {
	g := graph.GenStar(8)
	e, err := NewEngine[dis](g, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	targets := e.FromIDs(2, 5)
	out := e.EdgeMapSparse(e.FromIDs(0), e.JoinEU(e.E(), targets), nil,
		func(s, d Vertex[dis]) dis { return dis{1} }, nil,
		func(tv, cur dis) dis { return tv })
	if ids := e.IDs(out); len(ids) != 2 || ids[0] != 2 || ids[1] != 5 {
		t.Fatalf("JoinEU out = %v", ids)
	}
}

func TestWithTCPOption(t *testing.T) {
	g := graph.GenPath(16)
	got := bfs(t, g, 0, WithWorkers(2), WithTCP())
	for v, d := range got {
		if d != int32(v) {
			t.Fatalf("tcp bfs dist[%d]=%d", v, d)
		}
	}
}
