//go:build flashdebug

package core

import (
	"bytes"
	"fmt"
)

// debugChecks enables the post-sync mirror-coherence spot check (and any
// other flashdebug-only engine assertions).
const debugChecks = true

// debugCheckMirrorSamples verifies, for a sample of the mirror slots this
// worker just wrote in syncMasters' drain, that the stored value is
// byte-identical (under the engine codec) to the owning worker's master
// value. A mismatch means a slot-aliasing or codec round-trip bug.
//
// Safe to run concurrently with the other workers finishing their own
// syncMasters: drainKV returning means every peer passed EndRound, and a
// peer's master region is final by then — during the sync round peers write
// only their mirror slots (a master's owner never receives its own gid), and
// syncMasters is the last statement of every phase closure, so no master
// mutates again until parallelWorkers joins.
func (w *worker[V]) debugCheckMirrorSamples(samples []debugSample) {
	e := w.eng
	if e.resident >= 0 {
		// Cluster mode: the masters live in peer processes, so there is no
		// local truth to compare the just-synced mirrors against.
		return
	}
	var mine, theirs []byte
	for _, s := range samples {
		owner := e.place.Owner(s.gid)
		if owner == w.id {
			panic(fmt.Sprintf("flashdebug: worker %d received its own master %d in a sync round", w.id, s.gid))
		}
		peer := e.workers[owner]
		mine = e.codec.Append(mine[:0], &w.cur[s.slot])
		theirs = e.codec.Append(theirs[:0], &peer.cur[peer.st.Slot(s.gid)])
		if !bytes.Equal(mine, theirs) {
			panic(fmt.Sprintf(
				"flashdebug: mirror incoherent after sync: vertex %d on worker %d (slot %d) encodes %x, master on worker %d encodes %x",
				s.gid, w.id, s.slot, mine, owner, theirs))
		}
	}
}
