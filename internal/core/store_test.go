package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testImage() *CheckpointImage {
	return &CheckpointImage{
		Seq: 42,
		Sections: [][]byte{
			{1, 2, 3, 4, 5},
			{},
			bytes.Repeat([]byte{0xAB}, 300),
		},
	}
}

func imagesEqual(a, b *CheckpointImage) bool {
	if a.Seq != b.Seq || len(a.Sections) != len(b.Sections) {
		return false
	}
	for i := range a.Sections {
		if !bytes.Equal(a.Sections[i], b.Sections[i]) {
			return false
		}
	}
	return true
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	img := testImage()
	got, err := DecodeCheckpointFile(EncodeCheckpointFile(img))
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(img, got) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, img)
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	if img, err := s.Load(); err != nil || img != nil {
		t.Fatalf("empty store Load = %v, %v; want nil, nil", img, err)
	}
	want := testImage()
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil || !imagesEqual(want, got) {
		t.Fatalf("Load = %+v, %v", got, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if img, _ := s.Load(); img != nil {
		t.Fatal("Close did not drop the image")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.flash")
	s, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if img, err := s.Load(); err != nil || img != nil {
		t.Fatalf("missing file Load = %v, %v; want nil, nil", img, err)
	}
	want := testImage()
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil || !imagesEqual(want, got) {
		t.Fatalf("Load = %+v, %v", got, err)
	}
	// Overwrite with a newer image; only the newest survives.
	want2 := &CheckpointImage{Seq: 43, Sections: [][]byte{{9, 9}}}
	if err := s.Save(want2); err != nil {
		t.Fatal(err)
	}
	got2, err := s.Load()
	if err != nil || !imagesEqual(want2, got2) {
		t.Fatalf("Load after overwrite = %+v, %v", got2, err)
	}
	// The atomic write leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestNewFileStoreEmptyPath(t *testing.T) {
	if _, err := NewFileStore(""); err == nil {
		t.Fatal("empty path accepted")
	}
}

// TestDecodeCheckpointRejectsDamage feeds the decoder every damage class the
// durable store must survive: each must return an error — never a panic,
// never a partial image.
func TestDecodeCheckpointRejectsDamage(t *testing.T) {
	valid := EncodeCheckpointFile(testImage())
	cases := map[string][]byte{
		"empty":             {},
		"short header":      valid[:10],
		"bad magic":         append([]byte("NOTFLASH"), valid[8:]...),
		"truncated table":   valid[:ckptHdrSize+3],
		"truncated payload": valid[:len(valid)-1],
		"trailing garbage":  append(append([]byte(nil), valid...), 0xFF),
	}
	wrongVer := append([]byte(nil), valid...)
	wrongVer[8] = 99
	cases["wrong version"] = wrongVer
	hugeSects := append([]byte(nil), valid...)
	hugeSects[18], hugeSects[19], hugeSects[20], hugeSects[21] = 0xFF, 0xFF, 0xFF, 0xFF
	cases["absurd section count"] = hugeSects
	for name, data := range cases {
		if img, err := DecodeCheckpointFile(data); err == nil {
			t.Errorf("%s: decoded without error: %+v", name, img)
		}
	}
	// Every single-bit flip anywhere in the file must either be rejected or
	// leave the section payloads untouched (the seq field carries no CRC of
	// its own, so a flip there is visible in Seq but never in state bytes).
	want := testImage()
	for i := 0; i < len(valid)*8; i++ {
		flipped := append([]byte(nil), valid...)
		flipped[i/8] ^= 1 << (i % 8)
		img, err := DecodeCheckpointFile(flipped)
		if err != nil {
			continue
		}
		if len(img.Sections) != len(want.Sections) {
			t.Fatalf("bit flip at %d changed the section count undetected", i)
		}
		for s := range img.Sections {
			if !bytes.Equal(img.Sections[s], want.Sections[s]) {
				t.Fatalf("bit flip at %d silently altered section %d", i, s)
			}
		}
	}
}

// TestFileStoreLoadRejectsCorruptFile verifies a damaged file on disk
// surfaces as a Load error, not a bad restore.
func TestFileStoreLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.flash")
	s, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(testImage()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if img, err := s.Load(); err == nil {
		t.Fatalf("corrupt file loaded without error: %+v", img)
	}
}

// FuzzCheckpointFileDecode hammers the durable-store decoder with arbitrary
// bytes: it must never panic and never hand back an image that does not
// fully validate. Valid inputs must re-encode to an image equal to what was
// decoded (self-consistency).
func FuzzCheckpointFileDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FLASHCKP"))
	f.Add(EncodeCheckpointFile(testImage()))
	f.Add(EncodeCheckpointFile(&CheckpointImage{Seq: 0, Sections: nil}))
	trunc := EncodeCheckpointFile(testImage())
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodeCheckpointFile(data)
		if err != nil {
			if img != nil {
				t.Fatal("error with non-nil image (partial restore)")
			}
			return
		}
		// A decoded image must survive a re-encode/re-decode round trip.
		img2, err := DecodeCheckpointFile(EncodeCheckpointFile(img))
		if err != nil {
			t.Fatalf("re-decode of accepted image failed: %v", err)
		}
		if !imagesEqual(img, img2) {
			t.Fatal("accepted image not self-consistent")
		}
	})
}
