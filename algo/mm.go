package algo

import (
	"flash"
	"flash/graph"
)

type mmProps struct {
	S int32 // matched partner id, -1 while unmatched
	P int32 // temporary proposal: best (max-id) proposing neighbor
}

// MM computes a maximal matching with the greedy propose-and-marry
// algorithm (paper Algorithm 11): every unmatched vertex proposes to its
// unmatched neighbors, each target keeps the proposer with the largest id
// (the paper's tie breaking), and mutual proposals become matches. Returns
// the partner id per vertex (-1 for unmatched).
func MM(g *graph.Graph, opts ...flash.Option) ([]int32, error) {
	e, err := newEngine[mmProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[mmProps]) mmProps {
		return mmProps{S: none, P: none}
	})
	runBasicMMTraced(e, u, nil)

	out := make([]int32, g.NumVertices())
	e.Gather(func(v graph.VID, val *mmProps) { out[v] = val.S })
	return out, nil
}

// MMActiveTrace runs MM while recording the frontier size (the set of
// unmatched vertices recomputed) entering every round; Fig. 4(a) compares
// this trace against MMOpt's.
func MMActiveTrace(g *graph.Graph, opts ...flash.Option) ([]int, error) {
	e, err := newEngine[mmProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[mmProps]) mmProps {
		return mmProps{S: none, P: none}
	})
	var trace []int
	runBasicMMTraced(e, u, func(active int) { trace = append(trace, active) })
	return trace, nil
}

// runBasicMM drives propose-and-marry rounds from frontier u until no
// unmatched vertex receives a proposal.
func runBasicMM(e *flash.Engine[mmProps], u *flash.VertexSubset) {
	runBasicMMTraced(e, u, nil)
}

func runBasicMMTraced(e *flash.Engine[mmProps], u *flash.VertexSubset, trace func(int)) {
	for u.Size() != 0 {
		// Reset the proposals of the still-unmatched frontier.
		u = e.VertexMap(u,
			func(v flash.Vertex[mmProps]) bool { return v.Val.S == none },
			func(v flash.Vertex[mmProps]) mmProps { return mmProps{S: v.Val.S, P: none} })
		if trace != nil {
			trace(u.Size())
		}
		// Propose: unmatched targets keep their largest-id unmatched suitor.
		u = e.EdgeMap(u, e.E(),
			nil,
			func(s, d flash.Vertex[mmProps]) mmProps {
				nv := *d.Val
				if int32(s.ID) > nv.P {
					nv.P = int32(s.ID)
				}
				return nv
			},
			func(d flash.Vertex[mmProps]) bool { return d.Val.S == none },
			func(t, cur mmProps) mmProps {
				if t.P > cur.P {
					cur.P = t.P
				}
				return cur
			})
		// Marry mutual proposals.
		e.EdgeMap(u, e.E(),
			func(s, d flash.Vertex[mmProps]) bool {
				return s.Val.P == int32(d.ID) && d.Val.P == int32(s.ID)
			},
			func(s, d flash.Vertex[mmProps]) mmProps {
				nv := *d.Val
				nv.S = int32(s.ID)
				return nv
			},
			func(d flash.Vertex[mmProps]) bool { return d.Val.S == none },
			func(t, cur mmProps) mmProps { return t })
	}
}
