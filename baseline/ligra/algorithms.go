package ligra

import (
	"sort"
	"sync/atomic"

	"flash/graph"
)

// The seven Table V applications Ligra supports: BFS, CC, BC, MIS, MM, KC
// and TC. GC needs variable-length color sets (unsupported in Ligra per the
// paper's Table I) and the Table VI applications need distribution or
// beyond-neighborhood edges.

const none = int32(-1)

// BFS computes hop distances from root.
func BFS(g *graph.Graph, root graph.VID, cfg Config) []int32 {
	e := New(g, cfg)
	dis := make([]int32, g.NumVertices())
	for i := range dis {
		dis[i] = none
	}
	dis[root] = 0
	u := e.FromIDs(root)
	level := int32(0)
	for u.Size() > 0 {
		level++
		lv := level
		u = e.EdgeMap(u,
			func(_, d graph.VID) bool {
				if dis[d] == none {
					dis[d] = lv
					return true
				}
				return false
			},
			func(d graph.VID) bool { return dis[d] == none })
	}
	return dis
}

// CC computes connected components by min-label propagation, using the
// atomic writeMin idiom Ligra programs use: a round may read a neighbor's
// label concurrently with its owner's update.
func CC(g *graph.Graph, cfg Config) []uint32 {
	e := New(g, cfg)
	label := make([]uint32, g.NumVertices())
	for i := range label {
		label[i] = uint32(i)
	}
	u := e.All()
	for u.Size() > 0 {
		u = e.EdgeMap(u,
			func(s, d graph.VID) bool {
				l := atomic.LoadUint32(&label[s])
				if l < atomic.LoadUint32(&label[d]) {
					atomic.StoreUint32(&label[d], l)
					return true
				}
				return false
			}, nil)
	}
	return label
}

// BC computes Brandes dependency scores from root, recording every frontier.
func BC(g *graph.Graph, root graph.VID, cfg Config) []float64 {
	e := New(g, cfg)
	n := g.NumVertices()
	level := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range level {
		level[i] = none
	}
	level[root] = 0
	sigma[root] = 1
	u := e.FromIDs(root)
	frontiers := []*Subset{u}
	cur := int32(0)
	for u.Size() > 0 {
		cur++
		lv := cur
		u = e.EdgeMap(u,
			func(s, d graph.VID) bool {
				first := level[d] == none
				if first || level[d] == lv {
					level[d] = lv
					sigma[d] += sigma[s]
				}
				return first
			},
			func(d graph.VID) bool { return level[d] == none || level[d] == lv })
		if u.Size() > 0 {
			frontiers = append(frontiers, u)
		}
	}
	for i := len(frontiers) - 1; i >= 1; i-- {
		lv := int32(i)
		e.EdgeMap(frontiers[i],
			func(s, d graph.VID) bool {
				if level[d] == lv-1 {
					delta[d] += sigma[d] / sigma[s] * (1 + delta[s])
				}
				return false
			}, nil)
	}
	return delta
}

// MIS computes a maximal independent set with degree-based priorities.
func MIS(g *graph.Graph, cfg Config) []bool {
	e := New(g, cfg)
	n := g.NumVertices()
	r := make([]uint64, n)
	in := make([]bool, n)
	out := make([]bool, n)
	blocked := make([]bool, n)
	for i := range r {
		r[i] = uint64(g.OutDegree(graph.VID(i)))*uint64(n) + uint64(i)
	}
	active := e.All()
	for active.Size() > 0 {
		for i := range blocked {
			blocked[i] = false
		}
		e.EdgeMap(active, func(s, d graph.VID) bool {
			if !in[s] && !out[s] && !in[d] && !out[d] && r[s] < r[d] {
				blocked[d] = true
			}
			return false
		}, nil)
		joined := e.VertexMap(active, func(v graph.VID) bool {
			if !in[v] && !out[v] && !blocked[v] {
				in[v] = true
				return true
			}
			return false
		})
		e.EdgeMap(joined, func(s, d graph.VID) bool {
			if in[s] && !in[d] {
				out[d] = true
			}
			return false
		}, nil)
		active = e.VertexMap(active, func(v graph.VID) bool { return !in[v] && !out[v] })
	}
	return in
}

// MM computes a maximal matching by propose-and-marry rounds.
func MM(g *graph.Graph, cfg Config) []int32 {
	e := New(g, cfg)
	n := g.NumVertices()
	s := make([]int32, n)
	p := make([]int32, n)
	for i := range s {
		s[i] = none
	}
	active := e.All()
	for active.Size() > 0 {
		active = e.VertexMap(active, func(v graph.VID) bool {
			if s[v] == none {
				p[v] = none
				return true
			}
			return false
		})
		received := e.EdgeMap(active,
			func(src, d graph.VID) bool {
				if s[d] == none && int32(src) > p[d] {
					p[d] = int32(src)
					return true
				}
				return false
			},
			func(d graph.VID) bool { return s[d] == none })
		e.EdgeMap(received,
			func(src, d graph.VID) bool {
				if s[d] == none && p[src] == int32(d) && p[d] == int32(src) {
					s[d] = int32(src)
				}
				return false
			},
			func(d graph.VID) bool { return s[d] == none })
		active = received
	}
	return s
}

// KC computes the k-core decomposition by peeling, Ligra's algorithm from
// the paper.
func KC(g *graph.Graph, cfg Config) []int32 {
	e := New(g, cfg)
	n := g.NumVertices()
	deg := make([]int32, n)
	core := make([]int32, n)
	for i := range deg {
		deg[i] = int32(g.OutDegree(graph.VID(i)))
	}
	u := e.All()
	_, maxDeg := g.MaxOutDegree()
	for k := int32(1); k <= int32(maxDeg)+1 && u.Size() > 0; k++ {
		for {
			removed := e.VertexMap(u, func(v graph.VID) bool {
				if deg[v] < k {
					core[v] = k - 1
					return true
				}
				return false
			})
			if removed.Size() == 0 {
				break
			}
			u = e.Minus(u, removed)
			e.EdgeMapSparse(removed, func(_, d graph.VID) bool {
				deg[d]--
				return false
			}, nil)
		}
	}
	return core
}

// TC counts triangles with ranked sorted adjacency intersections.
func TC(g *graph.Graph, cfg Config) int64 {
	e := New(g, cfg)
	n := g.NumVertices()
	outs := make([][]uint32, n)
	rank := func(a, b graph.VID) bool {
		da, db := g.OutDegree(a), g.OutDegree(b)
		return da > db || (da == db && a > b)
	}
	e.VertexMap(e.All(), func(v graph.VID) bool {
		for _, d := range g.OutNeighbors(v) {
			if rank(d, v) {
				outs[v] = append(outs[v], uint32(d))
			}
		}
		sort.Slice(outs[v], func(i, j int) bool { return outs[v][i] < outs[v][j] })
		return false
	})
	counts := make([]int64, n)
	e.EdgeMapSparse(e.All(), func(s, d graph.VID) bool {
		if s < d {
			counts[d] += sortedIntersect(outs[s], outs[d])
		}
		return false
	}, nil)
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

func sortedIntersect(a, b []uint32) int64 {
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
