package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Transport moves byte frames between workers in bulk-synchronous rounds.
//
// Protocol: within a round, a worker calls Send any number of times, then
// EndRound exactly once, then Drain exactly once. Drain blocks until the
// end-of-round marker has arrived from every peer (including the worker
// itself) and delivers every data frame of that round, per-sender in send
// order. All workers must execute the same number of rounds.
//
// Frames carry a round number so that a fast worker may run ahead into the
// next round without corrupting a slow receiver's current round (its early
// frames are stashed).
//
// Failure surface: Send, EndRound and Drain return an error instead of
// panicking. Errors wrapped in TransientError are worth retrying with
// backoff; everything else aborts the round. Abort unblocks every worker
// stuck in a transport call; Reset restores the transport to a pristine
// between-rounds state so a recovered run can replay from a checkpoint.
//
// Liveness: Heartbeat is an out-of-band control signal ("worker `from` is
// alive right now") that never counts toward a round. Once a worker has
// heartbeat at least once, a Drain that times out waiting for that worker's
// end-of-round marker classifies it: heartbeats still arriving means the
// peer is slow (ErrPeerStalled, retry-worthy); heartbeats silent beyond the
// drain-timeout window means the peer is presumed lost and the drain fails
// with a WorkerError wrapping ErrPeerDead naming it.
//
// Epochs: every frame is tagged with the transport's membership epoch, and
// Reset bumps it. Frames from a pre-Reset incarnation that surface later
// (wire buffers, a killed worker's stale sends) are silently discarded by
// Drain instead of corrupting the replayed rounds.
type Transport interface {
	// Workers returns the number of workers m.
	Workers() int
	// Send enqueues a data frame for `to`. The transport takes ownership of
	// data. Safe for concurrent use by threads of the same worker.
	Send(from, to int, data []byte) error
	// EndRound marks `from` as finished sending for its current round.
	EndRound(from int) error
	// Drain delivers all data frames of `to`'s current round and advances
	// the round. h must not retain data beyond the call: delivered frames
	// are recycled into the frame pool (PutBuf) after h returns, so a Send
	// caller must hold no references either — a buffer shipped to several
	// destinations must be cloned per destination. Drain fails with
	// ErrPeerStalled when no frame arrives within the drain timeout (or a
	// WorkerError wrapping ErrPeerDead when the missing peer's heartbeats
	// have also gone silent), and with the abort error after Abort.
	Drain(to int, h func(from int, data []byte)) error
	// Heartbeat announces that worker `from` is alive, outside any round.
	// Cheap enough to call on a tens-of-milliseconds ticker. Safe for
	// concurrent use with the same worker's Send/EndRound/Drain.
	Heartbeat(from int) error
	// Abort poisons the transport with err: every blocked or future
	// Send/EndRound/Drain returns it until Reset. Safe to call from any
	// goroutine, repeatedly (the first error wins).
	Abort(err error)
	// Reset clears all queued frames, stashes, round counters and any abort
	// error, returning the transport to its initial round state. The caller
	// must guarantee no worker is inside a transport call.
	Reset()
	// SetDrainTimeout bounds how long one Drain waits for the *next* frame
	// before failing with ErrPeerStalled (0 = wait forever).
	SetDrainTimeout(d time.Duration)
	// Stats returns cumulative transfer statistics.
	Stats() Stats
	// Close releases transport resources. No calls may follow Close.
	Close() error
}

// Stats are cumulative counters for a transport.
type Stats struct {
	FramesSent uint64
	BytesSent  uint64
	// Reconnects counts connections that were re-established after a drop
	// (loopback-TCP transport only).
	Reconnects uint64
}

type frame struct {
	from  int
	round uint32
	epoch uint32 // membership epoch the frame was sent under
	data  []byte // nil means end-of-round marker
}

// mailbox is an unbounded FIFO with blocking receive, per-receive timeout
// and poisoning. There is exactly one consumer per mailbox.
type mailbox struct {
	mu    sync.Mutex
	queue []frame
	err   error
	sig   chan struct{} // capacity 1: "state changed" wakeup
}

func newMailbox() *mailbox {
	return &mailbox{sig: make(chan struct{}, 1)}
}

func (m *mailbox) wake() {
	select {
	case m.sig <- struct{}{}:
	default:
	}
}

func (m *mailbox) push(f frame) {
	m.mu.Lock()
	m.queue = append(m.queue, f)
	m.mu.Unlock()
	m.wake()
}

// poison makes every pending and future pop return err (first error wins).
func (m *mailbox) poison(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.wake()
}

// reset clears the queue and the poison error.
func (m *mailbox) reset() {
	m.mu.Lock()
	m.queue = nil
	m.err = nil
	m.mu.Unlock()
	// Drop a stale wakeup so a future pop doesn't spin once for nothing.
	select {
	case <-m.sig:
	default:
	}
}

// pop dequeues the next frame, waiting up to timeout for one to arrive
// (timeout 0 waits forever). Poisoning takes precedence over queued frames.
func (m *mailbox) pop(timeout time.Duration) (frame, error) {
	var timer *time.Timer
	var timeC <-chan time.Time
	for {
		m.mu.Lock()
		if m.err != nil {
			err := m.err
			m.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return frame{}, err
		}
		if len(m.queue) > 0 {
			f := m.queue[0]
			m.queue = m.queue[1:]
			m.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return f, nil
		}
		m.mu.Unlock()
		if timeC == nil && timeout > 0 {
			timer = time.NewTimer(timeout)
			timeC = timer.C
		}
		select {
		case <-m.sig:
		case <-timeC:
			return frame{}, ErrPeerStalled
		}
	}
}

// Mem is the default in-process transport: per-worker mailboxes. It models
// the MPI wire with zero copies beyond the frame slices themselves.
type Mem struct {
	m      int
	boxes  []*mailbox
	rounds []atomic.Uint32 // per-sender current round
	recvRd []uint32        // per-receiver current round (single-threaded use)
	stash  [][]frame       // per-receiver frames for future rounds
	marks  [][]bool        // per-receiver scratch: marker seen per peer this round
	frames atomic.Uint64
	bytes  atomic.Uint64

	timeout atomic.Int64  // drain stall timeout in nanoseconds; 0 = forever
	epoch   atomic.Uint32 // membership epoch; bumped by Reset

	// Liveness: alive[w] is the UnixNano of w's last heartbeat; hbOn[w]
	// arms dead-vs-stalled classification for w once it has heartbeat at
	// least once (so engines that never heartbeat keep the plain
	// ErrPeerStalled behavior).
	alive []atomic.Int64
	hbOn  []atomic.Bool

	abortMu  sync.Mutex
	abortErr error
}

// NewMem creates an in-memory transport for m workers.
func NewMem(m int) *Mem {
	t := &Mem{
		m:      m,
		boxes:  make([]*mailbox, m),
		rounds: make([]atomic.Uint32, m),
		recvRd: make([]uint32, m),
		stash:  make([][]frame, m),
		marks:  make([][]bool, m),
		alive:  make([]atomic.Int64, m),
		hbOn:   make([]atomic.Bool, m),
	}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
		t.marks[i] = make([]bool, m)
	}
	return t
}

func (t *Mem) Workers() int { return t.m }

func (t *Mem) aborted() error {
	t.abortMu.Lock()
	defer t.abortMu.Unlock()
	return t.abortErr
}

func (t *Mem) Send(from, to int, data []byte) error {
	if err := t.aborted(); err != nil {
		return err
	}
	if data == nil {
		data = []byte{} // nil is reserved for end-of-round markers
	}
	t.frames.Add(1)
	t.bytes.Add(uint64(len(data)))
	t.boxes[to].push(frame{from: from, round: t.rounds[from].Load(), epoch: t.epoch.Load(), data: data})
	return nil
}

func (t *Mem) EndRound(from int) error {
	if err := t.aborted(); err != nil {
		return err
	}
	r := t.rounds[from].Load()
	ep := t.epoch.Load()
	for to := 0; to < t.m; to++ {
		t.boxes[to].push(frame{from: from, round: r, epoch: ep, data: nil})
	}
	t.rounds[from].Store(r + 1)
	return nil
}

// Heartbeat stamps `from`'s liveness clock and arms dead-peer classification
// for it. Out-of-band: no round or epoch interaction.
func (t *Mem) Heartbeat(from int) error {
	if err := t.aborted(); err != nil {
		return err
	}
	t.markAlive(from)
	return nil
}

func (t *Mem) markAlive(w int) {
	t.alive[w].Store(time.Now().UnixNano())
	t.hbOn[w].Store(true)
}

// classifyStall upgrades a drain timeout to ErrPeerDead when a peer whose
// end-of-round marker is still missing has also been heartbeat-silent for
// longer than the timeout window. Peers that never heartbeat (liveness
// disabled) and peers still beating stay ErrPeerStalled.
func (t *Mem) classifyStall(marks []bool) error {
	now := time.Now().UnixNano()
	for p, seen := range marks {
		if seen || !t.hbOn[p].Load() {
			continue
		}
		if now-t.alive[p].Load() > t.timeout.Load() {
			return &WorkerError{Worker: p, Err: ErrPeerDead}
		}
	}
	return ErrPeerStalled
}

func (t *Mem) Drain(to int, h func(from int, data []byte)) error {
	if err := t.aborted(); err != nil {
		return err
	}
	r := t.recvRd[to]
	ep := t.epoch.Load()
	pending := t.m // end-of-round markers still expected
	marks := t.marks[to]
	for i := range marks {
		marks[i] = false
	}

	// First serve stashed frames from earlier overruns. Frames from a stale
	// epoch (a pre-Reset incarnation) are discarded, payloads recycled.
	if st := t.stash[to]; len(st) > 0 {
		keep := st[:0]
		for _, f := range st {
			switch {
			case f.epoch != ep:
				PutBuf(f.data)
			case f.round == r:
				if f.data == nil {
					pending--
					marks[f.from] = true
				} else {
					h(f.from, f.data)
					PutBuf(f.data) // delivered exactly once: recycle
				}
			default:
				keep = append(keep, f)
			}
		}
		t.stash[to] = keep
	}
	timeout := time.Duration(t.timeout.Load())
	for pending > 0 {
		f, err := t.boxes[to].pop(timeout)
		if err != nil {
			if errors.Is(err, ErrPeerStalled) {
				return t.classifyStall(marks)
			}
			return err
		}
		if f.epoch != ep {
			PutBuf(f.data) // stale incarnation: drop
			continue
		}
		if f.round != r {
			t.stash[to] = append(t.stash[to], f)
			continue
		}
		if f.data == nil {
			pending--
			marks[f.from] = true
		} else {
			h(f.from, f.data)
			PutBuf(f.data)
		}
	}
	t.recvRd[to] = r + 1
	return nil
}

// CloseEndpoint hard-closes worker w's receive endpoint: pending and future
// receives fail with err until Reset re-registers the mailbox. This is the
// mem-transport analog of a dead process's sockets going away.
func (t *Mem) CloseEndpoint(w int, err error) {
	t.boxes[w].poison(err)
}

func (t *Mem) Abort(err error) {
	if err == nil {
		err = ErrAborted
	}
	t.abortMu.Lock()
	if t.abortErr == nil {
		t.abortErr = err
	}
	// Poison under abortMu: Abort is the one call allowed to race a
	// concurrent Resize (Engine.Close fires it while a membership change is
	// reconfiguring the mailbox slices), so both serialize on abortMu.
	for _, b := range t.boxes {
		b.poison(err)
	}
	t.abortMu.Unlock()
}

func (t *Mem) Reset() {
	t.abortMu.Lock()
	t.abortErr = nil
	t.abortMu.Unlock()
	// New membership epoch: any frame of the old incarnation that surfaces
	// after this point is discarded by Drain.
	t.epoch.Add(1)
	now := time.Now().UnixNano()
	for i, b := range t.boxes {
		b.reset()
		t.rounds[i].Store(0)
		t.recvRd[i] = 0
		t.stash[i] = nil
		// Fresh liveness slate: a just-revived worker gets a full timeout
		// window before it can be declared dead again.
		t.alive[i].Store(now)
	}
}

// Resize reconfigures the transport for n workers: a fresh membership epoch,
// fresh mailboxes, stashes and round counters sized for the new worker set,
// and a clean abort/liveness slate. The caller must guarantee no worker is
// inside a transport call (quiesced at a barrier); any in-flight frame of the
// old membership that surfaces later is discarded by Drain's epoch check.
// Cumulative Stats counters survive.
func (t *Mem) Resize(n int) error {
	if n < 1 {
		return fmt.Errorf("comm: resize to %d workers", n)
	}
	// The whole reconfiguration runs under abortMu: every other transport
	// call is quiesced by contract, but an asynchronous Abort (Engine.Close)
	// may land mid-resize and must see either the old or the new mailbox set,
	// never a half-swapped one.
	t.abortMu.Lock()
	defer t.abortMu.Unlock()
	t.abortErr = nil
	t.epoch.Add(1)
	now := time.Now().UnixNano()
	old := t.m
	t.m = n
	t.boxes = make([]*mailbox, n)
	t.rounds = make([]atomic.Uint32, n)
	t.recvRd = make([]uint32, n)
	t.stash = make([][]frame, n)
	t.marks = make([][]bool, n)
	alive := make([]atomic.Int64, n)
	hbOn := make([]atomic.Bool, n)
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
		t.marks[i] = make([]bool, n)
		// Fresh liveness slate: every member of the new set gets a full
		// timeout window before it can be declared dead.
		alive[i].Store(now)
		// Heartbeat arming carries over for surviving workers (like Reset):
		// a worker that announced liveness in the old epoch and then falls
		// silent in the new one must still be classifiable as dead, even if
		// it dies before its first heartbeat of the new epoch.
		if i < old {
			hbOn[i].Store(t.hbOn[i].Load())
		}
	}
	t.alive = alive
	t.hbOn = hbOn
	return nil
}

func (t *Mem) SetDrainTimeout(d time.Duration) { t.timeout.Store(int64(d)) }

func (t *Mem) Stats() Stats {
	return Stats{FramesSent: t.frames.Load(), BytesSent: t.bytes.Load()}
}

func (t *Mem) Close() error { return nil }
