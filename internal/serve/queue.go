package serve

import (
	"fmt"
	"sync"
	"time"
)

// SchedulerConfig bounds the scheduler. Zero values select the defaults.
type SchedulerConfig struct {
	// MaxConcurrent is the number of jobs allowed to execute at once
	// (default 4). Additional admitted jobs wait in the pending queue.
	MaxConcurrent int
	// QueueDepth bounds the pending queue (default 16). Submissions arriving
	// with all execution slots busy and the queue full get QueueFullError.
	QueueDepth int
	// TenantQuota caps one tenant's queued+running jobs (default 0 =
	// unlimited). Exceeding it gets QuotaError.
	TenantQuota int
	// Workers and Threads are the engine defaults for jobs that do not set
	// them in params (defaults 4 and 1).
	Workers int
	Threads int
}

func (c *SchedulerConfig) applyDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
}

// Scheduler admits, queues, and executes jobs against a catalog. Admission
// is strict and synchronous: a Submit either returns an admitted *Job (its
// graph handle resolved, so a later eviction cannot fail it) or a typed
// rejection. Execution is bounded by MaxConcurrent; overflow waits FIFO in
// a bounded pending queue.
type Scheduler struct {
	cfg SchedulerConfig
	cat *Catalog
	met *Metrics

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string // submission order, for List
	pending   []*Job
	running   int
	perTenant map[string]int
	nextID    int
	closed    bool
	idle      sync.WaitGroup // one unit per admitted, unfinished job
}

// NewScheduler returns a scheduler over cat. met may be nil.
func NewScheduler(cfg SchedulerConfig, cat *Catalog, met *Metrics) *Scheduler {
	cfg.applyDefaults()
	if met == nil {
		met = NewMetrics()
	}
	return &Scheduler{
		cfg:       cfg,
		cat:       cat,
		met:       met,
		jobs:      make(map[string]*Job),
		perTenant: make(map[string]int),
	}
}

// Submit admits req or rejects it with a typed error. On admission the job
// is queued (or started immediately if a slot is free) and its *Job returned.
func (s *Scheduler) Submit(req *JobRequest) (*Job, error) {
	// Resolve the graph before taking the scheduler lock: catalog misses and
	// graph-dependent validation are rejections, not admissions.
	h, err := s.cat.Get(req.Graph)
	if err != nil {
		s.met.reject(err)
		return nil, err
	}
	if err := validateAgainstGraph(req, h.Graph()); err != nil {
		s.met.reject(err)
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.met.reject(ErrServerClosed)
		return nil, ErrServerClosed
	}
	if s.cfg.TenantQuota > 0 && s.perTenant[req.Tenant] >= s.cfg.TenantQuota {
		err := &QuotaError{Tenant: req.Tenant, Limit: s.cfg.TenantQuota, InFlight: s.perTenant[req.Tenant]}
		s.mu.Unlock()
		s.met.reject(err)
		return nil, err
	}
	if s.running >= s.cfg.MaxConcurrent && len(s.pending) >= s.cfg.QueueDepth {
		err := &QueueFullError{Depth: s.cfg.QueueDepth}
		s.mu.Unlock()
		s.met.reject(err)
		return nil, err
	}

	s.nextID++
	job := &Job{
		ID:       fmt.Sprintf("job-%d", s.nextID),
		Tenant:   req.Tenant,
		Req:      *req,
		Enqueued: time.Now(),
		handle:   h,
		state:    JobQueued,
		done:     make(chan struct{}),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.perTenant[req.Tenant]++
	s.idle.Add(1)
	if s.running < s.cfg.MaxConcurrent {
		s.running++
		go s.run(job)
	} else {
		s.pending = append(s.pending, job)
	}
	s.mu.Unlock()
	s.met.submitted()
	return job, nil
}

// run executes job, records its outcome, then keeps the slot busy draining
// the pending queue until it is empty.
func (s *Scheduler) run(job *Job) {
	for job != nil {
		job.setRunning()
		start := time.Now()
		res, err := job.execute(s.cfg.Workers, s.cfg.Threads)
		job.finish(res, err)
		s.met.finished(err == nil, time.Since(start))

		s.mu.Lock()
		s.perTenant[job.Tenant]--
		if s.perTenant[job.Tenant] == 0 {
			delete(s.perTenant, job.Tenant)
		}
		var next *Job
		if len(s.pending) > 0 {
			next = s.pending[0]
			s.pending = s.pending[1:]
		} else {
			s.running--
		}
		s.mu.Unlock()
		s.idle.Done()
		job = next
	}
}

// Get returns the job with the given id.
func (s *Scheduler) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, &UnknownJobError{ID: id}
	}
	return job, nil
}

// List returns all known jobs in submission order.
func (s *Scheduler) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Depth reports the scheduler's instantaneous load: running jobs and queued
// jobs waiting for a slot.
func (s *Scheduler) Depth() (running, queued int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running, len(s.pending)
}

// Close stops admission and drains: every already-admitted job (running or
// queued) completes before Close returns.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.idle.Wait()
}
