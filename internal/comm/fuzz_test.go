package comm

import (
	"bytes"
	"testing"
)

// FuzzReflectCodecDecode throws arbitrary bytes at the decoder: it must
// never panic or over-read, and any successfully decoded value must survive
// a canonical re-encode/decode round trip (arbitrary input may use
// non-canonical uvarint/bool encodings, so byte-level equality is only
// required after one canonicalization).
func FuzzReflectCodecDecode(f *testing.F) {
	c := NewReflectCodec[sliceProps]()
	good := sliceProps{Out: []uint32{1, 2, 3}, Count: -9, Name: "x", Pair: [2]float32{1, 2}, Nest: []inner{{5, true}}}
	f.Add(c.Append(nil, &good))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var v1 sliceProps
		n, err := c.Decode(data, &v1)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		canon := c.Append(nil, &v1)
		var v2 sliceProps
		k, err := c.Decode(canon, &v2)
		if err != nil || k != len(canon) {
			t.Fatalf("canonical decode failed: n=%d err=%v", k, err)
		}
		re := c.Append(nil, &v2)
		if !bytes.Equal(re, canon) {
			t.Fatalf("canonical round trip unstable:\n in %x\nout %x", canon, re)
		}
	})
}
