// Package ligra is a miniature Ligra engine (Shun & Blelloch, PPoPP'13):
// shared-memory vertexSubsets with EdgeMap/VertexMap and the dense/sparse
// dual traversal. It is the model FLASH extends; the differences exercised
// by the benchmarks are that Ligra has no distribution (single worker, no
// serialization or mirror synchronization — which is why it wins when
// communication dominates) and no beyond-neighborhood edge sets.
//
// Update functions run under per-target lock stripes, standing in for the
// compare-and-swap idiom Ligra programs use.
package ligra

import (
	"sync"

	"flash/graph"
	"flash/internal/bitset"
)

// Config parameterizes the engine.
type Config struct {
	// Threads is the parallelism degree (default 4).
	Threads int
	// DenseThreshold is the density denominator (default 20, Ligra's |E|/20).
	DenseThreshold int
}

func (c *Config) fill() {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.DenseThreshold == 0 {
		c.DenseThreshold = 20
	}
}

// Engine wraps a graph.
type Engine struct {
	g       *graph.Graph
	cfg     Config
	stripes [256]sync.Mutex
}

// New creates an engine over g.
func New(g *graph.Graph, cfg Config) *Engine {
	cfg.fill()
	return &Engine{g: g, cfg: cfg}
}

// Graph returns the topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Subset is Ligra's vertexSubset.
type Subset struct {
	bits  *bitset.Bitset
	count int
}

// NewSubset returns an empty subset.
func (e *Engine) NewSubset() *Subset { return &Subset{bits: bitset.New(e.g.NumVertices())} }

// All returns the subset of every vertex.
func (e *Engine) All() *Subset {
	s := e.NewSubset()
	s.bits.Fill()
	s.count = e.g.NumVertices()
	return s
}

// FromIDs builds a subset from ids.
func (e *Engine) FromIDs(ids ...graph.VID) *Subset {
	s := e.NewSubset()
	for _, v := range ids {
		s.Add(v)
	}
	return s
}

// Add inserts v.
func (s *Subset) Add(v graph.VID) {
	if !s.bits.TestAndSet(int(v)) {
		s.count++
	}
}

// Has reports membership.
func (s *Subset) Has(v graph.VID) bool { return s.bits.Test(int(v)) }

// Size returns |U|.
func (s *Subset) Size() int { return s.count }

// Minus removes members of o, returning a new subset.
func (e *Engine) Minus(a, b *Subset) *Subset {
	out := e.NewSubset()
	out.bits.CopyFrom(a.bits)
	out.bits.Minus(b.bits)
	out.count = out.bits.Count()
	return out
}

func (e *Engine) parfor(n int, f func(lo, hi int)) {
	t := e.cfg.Threads
	if t == 1 || n < 256 {
		f(0, n)
		return
	}
	chunk := ((n+t-1)/t + 63) &^ 63
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// EdgeMap applies update to edges (s, d) with s ∈ u and cond(d), returning
// the subset of targets for which update returned true. Mode is chosen by
// Ligra's density rule; update runs under a per-target stripe in sparse
// mode and target-exclusively in dense mode.
func (e *Engine) EdgeMap(u *Subset, update func(s, d graph.VID) bool, cond func(d graph.VID) bool) *Subset {
	degSum := 0
	u.bits.Range(func(v int) bool {
		degSum += e.g.OutDegree(graph.VID(v))
		return true
	})
	if u.count+degSum > e.g.NumEdges()/e.cfg.DenseThreshold {
		return e.EdgeMapDense(u, update, cond)
	}
	return e.EdgeMapSparse(u, update, cond)
}

// EdgeMapDense is the pull kernel: scan every vertex's in-edges until cond
// fails.
func (e *Engine) EdgeMapDense(u *Subset, update func(s, d graph.VID) bool, cond func(d graph.VID) bool) *Subset {
	out := e.NewSubset()
	e.parfor(e.g.NumVertices(), func(lo, hi int) {
		for d := lo; d < hi; d++ {
			dst := graph.VID(d)
			for _, s := range e.g.InNeighbors(dst) {
				if cond != nil && !cond(dst) {
					break
				}
				if u.bits.Test(int(s)) && update(s, dst) {
					out.bits.Set(d)
				}
			}
		}
	})
	out.count = out.bits.Count()
	return out
}

// EdgeMapSparse is the push kernel: scan active vertices' out-edges.
func (e *Engine) EdgeMapSparse(u *Subset, update func(s, d graph.VID) bool, cond func(d graph.VID) bool) *Subset {
	out := e.NewSubset()
	e.parfor(e.g.NumVertices(), func(lo, hi int) {
		for s := lo; s < hi; s++ {
			if !u.bits.Test(s) {
				continue
			}
			src := graph.VID(s)
			for _, d := range e.g.OutNeighbors(src) {
				// cond reads the target's state, so it must run under the
				// same stripe that serializes updates to that target.
				stripe := &e.stripes[(int(d)>>6)&255]
				stripe.Lock()
				if (cond == nil || cond(d)) && update(src, d) {
					out.bits.Set(int(d))
				}
				stripe.Unlock()
			}
		}
	})
	out.count = out.bits.Count()
	return out
}

// VertexMap applies f to every member and returns those for which f was
// true.
func (e *Engine) VertexMap(u *Subset, f func(v graph.VID) bool) *Subset {
	out := e.NewSubset()
	e.parfor(e.g.NumVertices(), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if u.bits.Test(v) && f(graph.VID(v)) {
				out.bits.Set(v)
			}
		}
	})
	out.count = out.bits.Count()
	return out
}
