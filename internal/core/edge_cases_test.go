package core

import (
	"testing"

	"flash/graph"
)

// Edge-case coverage for the FLASHWARE kernels: trivial graphs, empty
// frontiers, early-exit conditions, and the context-passing VertexMapC.

func TestEmptyFrontierEdgeMap(t *testing.T) {
	g := graph.GenPath(8)
	e := mustEngine(t, g, Config{Workers: 2})
	out := e.EdgeMapSparse(e.Empty(), BaseE[bfsProps](), nil,
		func(s, d Vtx[bfsProps], _ float32) bfsProps { return *d.Val },
		nil,
		func(t, cur bfsProps) bfsProps { return t }, StepOpts{})
	if out.Size() != 0 {
		t.Fatalf("empty frontier produced %d outputs", out.Size())
	}
	out = e.EdgeMapDense(e.Empty(), BaseE[bfsProps](), nil,
		func(s, d Vtx[bfsProps], _ float32) bfsProps { return *d.Val },
		nil, StepOpts{})
	if out.Size() != 0 {
		t.Fatalf("empty dense frontier produced %d outputs", out.Size())
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := graph.GenPath(1)
	e := mustEngine(t, g, Config{Workers: 3}) // more workers than vertices
	u := e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: 5} }, StepOpts{})
	if u.Size() != 1 || e.Get(0).Dis != 5 {
		t.Fatal("single vertex update failed")
	}
	out := e.EdgeMap(u, BaseE[bfsProps](), nil,
		func(s, d Vtx[bfsProps], _ float32) bfsProps { return *d.Val },
		nil,
		func(t, cur bfsProps) bfsProps { return t }, StepOpts{})
	if out.Size() != 0 {
		t.Fatal("edgeless vertex produced edge-map output")
	}
}

func TestIsolatedVerticesUntouched(t *testing.T) {
	// Vertices 4..7 isolated: a full BFS must not touch them.
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3)
	g := b.Build()
	e := mustEngine(t, g, Config{Workers: 2})
	got := runBFS(e, 0, Auto)
	for v := 4; v < 8; v++ {
		if got[v] != inf {
			t.Fatalf("isolated vertex %d got distance %d", v, got[v])
		}
	}
}

func TestDenseEarlyExitCond(t *testing.T) {
	// C returning false must stop the in-edge scan: with C == "Dis still
	// inf", the working copy is written at most once per vertex.
	g := graph.GenComplete(12)
	e := mustEngine(t, g, Config{Workers: 2})
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: inf} }, StepOpts{})
	e.Set(0, bfsProps{Dis: 0})
	applications := make([]int32, g.NumVertices()) // dense: one goroutine per target
	e.EdgeMapDense(e.All(), BaseE[bfsProps](), nil,
		func(s, d Vtx[bfsProps], _ float32) bfsProps {
			applications[d.ID]++
			return bfsProps{Dis: s.Val.Dis + 1}
		},
		func(d Vtx[bfsProps]) bool { return d.Val.Dis == inf },
		StepOpts{})
	for v, c := range applications {
		if c > 1 {
			t.Fatalf("vertex %d updated %d times despite C", v, c)
		}
	}
}

func TestVertexMapCReadsOtherVertices(t *testing.T) {
	// Each vertex sums its neighbors' ids through ctx.Get: mirror reads
	// must see the initial superstep values even while masters update.
	g := graph.GenCycle(30)
	e := mustEngine(t, g, Config{Workers: 3, Threads: 2})
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps {
		return bfsProps{Dis: int32(v.ID)}
	}, StepOpts{})
	e.VertexMapC(e.All(), nil, func(c *Ctx[bfsProps], v Vtx[bfsProps]) bfsProps {
		sum := int32(0)
		for _, nb := range e.Graph().OutNeighbors(v.ID) {
			sum += c.Get(nb).Dis
		}
		return bfsProps{Dis: sum}
	}, StepOpts{})
	n := int32(30)
	e.Gather(func(v graph.VID, val *bfsProps) {
		prev, next := (int32(v)+n-1)%n, (int32(v)+1)%n
		if val.Dis != prev+next {
			t.Fatalf("vertex %d: sum=%d want %d", v, val.Dis, prev+next)
		}
	})
}

func TestVertexMapCDeferredVisibility(t *testing.T) {
	// Within one VertexMapC superstep, reads must observe *old* values even
	// for already-processed vertices of the same worker (BSP semantics).
	g := graph.GenPath(16)
	e := mustEngine(t, g, Config{Workers: 1})
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: 1} }, StepOpts{})
	e.VertexMapC(e.All(), nil, func(c *Ctx[bfsProps], v Vtx[bfsProps]) bfsProps {
		// Read the previous vertex; if in-place writes leaked, vertex 1
		// would see vertex 0's new value (2) instead of 1.
		if v.ID > 0 {
			return bfsProps{Dis: c.Get(v.ID-1).Dis + 1}
		}
		return bfsProps{Dis: 2}
	}, StepOpts{})
	e.Gather(func(v graph.VID, val *bfsProps) {
		if v > 0 && val.Dis != 2 {
			t.Fatalf("vertex %d saw a current-superstep write: %d", v, val.Dis)
		}
	})
}

func TestFullMirrorsConsistencyAfterEveryStep(t *testing.T) {
	g := graph.GenErdosRenyi(60, 240, 8)
	e, err := NewEngine[bfsProps](g, Config{Workers: 3, FullMirrors: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	runBFS(e, 0, Auto)
	// With FullMirrors every worker must agree on every vertex.
	for v := 0; v < g.NumVertices(); v++ {
		want := e.Get(graph.VID(v))
		for _, w := range e.workers {
			if w.cur[w.st.Slot(graph.VID(v))] != want {
				t.Fatalf("worker %d disagrees on vertex %d", w.id, v)
			}
		}
	}
}

func TestWeightsReachCallbacks(t *testing.T) {
	g := graph.NewBuilder(3).Weighted(true).AddEdgeW(0, 1, 2.5).AddEdgeW(1, 2, 4).Build()
	// One worker: the callback appends to a shared slice.
	e, err := NewEngine[bfsProps](g, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var seen []float32
	e.EdgeMapSparse(e.All(), BaseE[bfsProps](), nil,
		func(s, d Vtx[bfsProps], w float32) bfsProps {
			if s.ID < d.ID {
				seen = append(seen, w)
			}
			return *d.Val
		}, nil,
		func(t, cur bfsProps) bfsProps { return t }, StepOpts{})
	if len(seen) != 2 {
		t.Fatalf("saw %d weights", len(seen))
	}
	sum := seen[0] + seen[1]
	if sum != 6.5 {
		t.Fatalf("weights %v", seen)
	}
}

func TestDegreesInVertexView(t *testing.T) {
	g := graph.GenStar(5)
	e := mustEngine(t, g, Config{Workers: 2})
	e.VertexMap(e.All(), func(v Vtx[bfsProps]) bool {
		if v.ID == 0 && (v.Deg != 4 || v.InDeg != 4) {
			t.Errorf("center degrees %d/%d", v.Deg, v.InDeg)
		}
		if v.ID != 0 && v.Deg != 1 {
			t.Errorf("leaf %d degree %d", v.ID, v.Deg)
		}
		return false
	}, nil, StepOpts{})
}
