//go:build !flashdebug

package core

// debugChecks is off in release builds: the sampling in syncMasters and the
// coherence check compile away.
const debugChecks = false

func (w *worker[V]) debugCheckMirrorSamples([]debugSample) {}
