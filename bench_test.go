// Benchmarks regenerating every table and figure of the paper at bench
// scale. `go test -bench=. -benchmem` runs them all; cmd/flashbench prints
// the full paper-shaped tables. One top-level benchmark exists per table /
// figure, with sub-benchmarks per (application, system) or parameter point.
package flash_test

import (
	"io"
	"strconv"
	"sync"
	"testing"

	"flash"
	"flash/algo"
	"flash/bench"
	"flash/graph"
	"flash/metrics"
)

// benchGraphs caches the dataset analogs across benchmarks.
var (
	benchOnce   sync.Once
	benchGraphs map[string]*graph.Graph
)

func getGraph(b *testing.B, abbr string) *graph.Graph {
	b.Helper()
	benchOnce.Do(func() {
		benchGraphs = map[string]*graph.Graph{}
		for _, abbr := range []string{"OR", "TW", "US", "EU", "UK", "SK"} {
			d, _ := bench.DatasetByAbbr(abbr)
			benchGraphs[abbr] = d.Build(1)
		}
		// A smaller social graph for the slow baseline paths.
		benchGraphs["OR-small"] = graph.GenRMAT(1024, 12288, 101)
	})
	return benchGraphs[abbr]
}

// BenchmarkTableV measures the eight core applications across all five
// systems on the OR analog (cmd/flashbench -exp tableV covers all six
// datasets).
func BenchmarkTableV(b *testing.B) {
	rc := bench.RunConfig{Workers: 4, LPAIter: 10, CLK: 4}
	for _, app := range bench.TableVApps {
		for _, sys := range bench.Systems {
			if !bench.Supports(sys, app) {
				continue
			}
			abbr := "OR"
			if sys != bench.Flash && (app == bench.AppKC || app == bench.AppTC || app == bench.AppBC) {
				abbr = "OR-small" // message-heavy baseline paths
			}
			g := getGraph(b, abbr)
			b.Run(string(app)+"/"+string(sys), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := bench.RunApp(sys, app, g, rc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTableVI measures the six advanced applications (FLASH vs the one
// baseline that expresses each, per the paper).
func BenchmarkTableVI(b *testing.B) {
	rc := bench.RunConfig{Workers: 4, LPAIter: 10, CLK: 4}
	for _, app := range bench.TableVIApps {
		for _, sys := range bench.Systems {
			if !bench.Supports(sys, app) {
				continue
			}
			abbr := "OR"
			if sys != bench.Flash {
				abbr = "OR-small"
			}
			g := getGraph(b, abbr)
			b.Run(string(app)+"/"+string(sys), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := bench.RunApp(sys, app, g, rc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig1 exercises the heat-map derivation (the data comes from the
// Table V cells; this measures the fastest-vs-FLASH pair on one cell).
func BenchmarkFig1(b *testing.B) {
	g := getGraph(b, "US")
	for _, sys := range []bench.System{bench.Flash, bench.LigraSM} {
		b.Run("BFS/"+string(sys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := bench.RunApp(sys, bench.AppBFS, g, bench.RunConfig{Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3_BFSModes measures BFS under forced sparse, forced dense and
// the adaptive dual mode on the Fig. 3 datasets.
func BenchmarkFig3_BFSModes(b *testing.B) {
	for _, abbr := range []string{"TW", "US", "UK"} {
		g := getGraph(b, abbr)
		for _, m := range []struct {
			name string
			mode flash.Mode
		}{{"sparse", flash.Push}, {"dense", flash.Pull}, {"dual", flash.Auto}} {
			b.Run(abbr+"/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := algo.BFS(g, 0, flash.WithWorkers(4), flash.WithMode(m.mode)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig4a_MM measures MM-basic vs MM-opt on the TW analog (the
// frontier traces behind Fig. 4(a) print via cmd/flashbench -exp fig4a).
func BenchmarkFig4a_MM(b *testing.B) {
	g := getGraph(b, "TW")
	b.Run("MM-basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algo.MM(g, flash.WithWorkers(4)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MM-opt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algo.MMOpt(g, flash.WithWorkers(4)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig4b_TCCores measures TC with varying intra-worker threads.
func BenchmarkFig4b_TCCores(b *testing.B) {
	g := getGraph(b, "TW")
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(benchName("threads", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algo.TC(g, flash.WithWorkers(1), flash.WithThreads(threads)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4cd_Workers measures TC on TW and CL on UK with varying
// worker counts (the inter-node scaling experiment).
func BenchmarkFig4cd_Workers(b *testing.B) {
	gTW := getGraph(b, "TW")
	gUK := getGraph(b, "UK")
	for _, workers := range []int{1, 2, 4} {
		b.Run("TC-TW/"+benchName("w", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algo.TC(gTW, flash.WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("CL-UK/"+benchName("w", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algo.CL(gUK, 4, flash.WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTimeBreakdown measures CC-opt while collecting the §V-E
// computation/communication/serialization split (reported by flashbench).
func BenchmarkTimeBreakdown(b *testing.B) {
	g := getGraph(b, "TW")
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchName("w", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				col := metrics.New()
				if _, err := algo.CCOpt(g, flash.WithWorkers(workers), flash.WithCollector(col)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation measures the §IV-C optimization toggles on CC.
func BenchmarkAblation(b *testing.B) {
	g := getGraph(b, "OR")
	cases := []struct {
		name string
		opts []flash.Option
	}{
		{"baseline", []flash.Option{flash.WithBatchBytes(1 << 16)}},
		{"broadcast-sync", []flash.Option{flash.WithBatchBytes(1 << 16), flash.WithoutNecessaryMirrors()}},
		{"no-overlap", nil},
		{"hash-placement", []flash.Option{flash.WithBatchBytes(1 << 16), flash.WithHashPlacement()}},
	}
	for _, c := range cases {
		opts := append([]flash.Option{flash.WithWorkers(4)}, c.opts...)
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algo.CC(g, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableI_LLoC measures the Table I generation itself (parsing and
// counting every algorithm implementation).
func BenchmarkTableI_LLoC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.TableI(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCCOptRounds measures the Appendix B comparison on the
// large-diameter US analog: CC-basic vs CC-opt end to end.
func BenchmarkCCOptRounds(b *testing.B) {
	g := getGraph(b, "US")
	b.Run("CC-basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algo.CC(g, flash.WithWorkers(4)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CC-opt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algo.CCOpt(g, flash.WithWorkers(4)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(prefix string, n int) string {
	return prefix + "=" + strconv.Itoa(n)
}
