package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"flash/graph"
	"flash/internal/bitset"
	"flash/metrics"
)

// syncScope selects how far a master update propagates.
type syncScope int

const (
	// scopeNone skips synchronization entirely (non-critical updates).
	scopeNone syncScope = iota
	// scopeNecessary sends to the precomputed mirror-holder workers only.
	scopeNecessary
	// scopeBroadcast sends to every other worker (virtual edge sets /
	// FullMirrors / ablation).
	scopeBroadcast
)

// scopeFor picks the sync scope for a step over edge set physicality.
func (e *Engine[V]) scopeFor(physical bool, noSync bool) syncScope {
	switch {
	case noSync:
		return scopeNone
	case e.cfg.FullMirrors, e.cfg.DisableNecessaryMirrors, !physical:
		return scopeBroadcast
	default:
		return scopeNecessary
	}
}

// appendKV encodes (gid, *val) into the buffer for `to`, flushing eagerly
// when BatchBytes is exceeded so transfer overlaps remaining work.
func (w *worker[V]) appendKV(to int, gid graph.VID, val *V) error {
	buf := w.outBufs[to]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(gid))
	buf = w.eng.codec.Append(buf, val)
	if bb := w.eng.cfg.BatchBytes; bb > 0 && len(buf) >= bb {
		if err := w.send(to, buf); err != nil {
			w.outBufs[to] = nil
			return err
		}
		buf = nil
	}
	w.outBufs[to] = buf
	return nil
}

// flushAll sends every non-empty buffer.
func (w *worker[V]) flushAll() error {
	for to, buf := range w.outBufs {
		if len(buf) > 0 {
			w.outBufs[to] = nil
			if err := w.send(to, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// drainKV completes the current exchange round, decoding (gid, value) pairs
// and handing them to apply. Wall time waiting on peers is recorded as
// communication; decode time as serialization. A truncated or corrupt frame
// is a superstep failure, not a panic: the remaining frames are still
// drained to keep the round consistent, and the first decode error is
// returned alongside transport failures (stall, abort).
func (w *worker[V]) drainKV(apply func(gid graph.VID, val V)) error {
	var decode time.Duration
	var decodeErr error
	start := time.Now()
	drainErr := w.eng.tr.Drain(w.id, func(_ int, data []byte) {
		dstart := time.Now()
		defer func() { decode += time.Since(dstart) }()
		off := 0
		for off < len(data) {
			if len(data)-off < 4 {
				if decodeErr == nil {
					decodeErr = fmt.Errorf("core: truncated sync frame header (%d trailing bytes)", len(data)-off)
				}
				return
			}
			gid := graph.VID(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			var val V
			n, err := w.eng.codec.Decode(data[off:], &val)
			if err != nil {
				if decodeErr == nil {
					decodeErr = fmt.Errorf("core: corrupt sync frame: %w", err)
				}
				return
			}
			off += n
			apply(gid, val)
		}
	})
	w.met.Add(metrics.Communication, time.Since(start)-decode)
	w.met.Add(metrics.Serialization, decode)
	if drainErr != nil {
		return drainErr
	}
	return decodeErr
}

// syncMasters pushes the new values of the updated local masters to the
// workers holding their mirrors (one exchange round), and applies incoming
// values from other masters to local mirrors. Must be called by every worker
// of the engine with the same scope, even when a worker updated nothing.
func (w *worker[V]) syncMasters(updated *bitset.Bitset, scope syncScope) error {
	e := w.eng
	if scope != scopeNone {
		sstart := time.Now()
		msgs := 0
		var sendErr error
		updated.Range(func(l int) bool {
			gid := e.place.GlobalID(w.id, l)
			if scope == scopeBroadcast {
				for to := 0; to < e.cfg.Workers; to++ {
					if to != w.id {
						if sendErr = w.appendKV(to, gid, &w.cur[gid]); sendErr != nil {
							return false
						}
						msgs++
					}
				}
			} else {
				for _, to := range w.part.MirrorWorkers[l] {
					if sendErr = w.appendKV(to, gid, &w.cur[gid]); sendErr != nil {
						return false
					}
					msgs++
				}
			}
			return true
		})
		w.met.Add(metrics.Serialization, time.Since(sstart))
		w.met.AddTraffic(uint64(msgs), 0)
		if sendErr != nil {
			return sendErr
		}
	}
	if err := w.flushAll(); err != nil {
		return err
	}
	if err := e.tr.EndRound(w.id); err != nil {
		return err
	}
	return w.drainKV(func(gid graph.VID, val V) {
		w.cur[gid] = val
	})
}
