// Package graph provides the immutable property-graph topology used by every
// engine in this repository: a compressed-sparse-row (CSR) representation
// with both out- and in-adjacency, optional edge weights, loaders for
// edge-list files, and deterministic synthetic generators standing in for the
// paper's datasets.
//
// Following the paper (§II, "Graph algorithms"), edges are immutable; all
// mutable algorithm state lives in per-vertex properties owned by the
// engines, not here.
package graph

import "fmt"

// VID identifies a vertex. Vertex ids are dense: a graph with n vertices uses
// ids 0..n-1.
type VID uint32

// NoVertex is a sentinel VID meaning "no vertex" (used for parent pointers
// and similar properties).
const NoVertex = VID(^uint32(0))

// Graph is an immutable directed graph in CSR form. For undirected inputs
// each edge is stored in both directions (see Builder.Undirected), which is
// the convention every algorithm in this repository assumes.
//
//flash:immutable
type Graph struct {
	n int // number of vertices
	m int // number of directed edges stored

	// Out-adjacency: out-neighbors of u are outAdj[outOff[u]:outOff[u+1]].
	outOff []int64
	outAdj []VID

	// In-adjacency: in-neighbors of v are inAdj[inOff[v]:inOff[v+1]].
	inOff []int64
	inAdj []VID

	// Optional weights aligned with outAdj and inAdj; nil for unweighted.
	outW []float32
	inW  []float32

	directed bool
	name     string

	// oocWeighted marks a skeleton of an out-of-core BlockGraph whose edge
	// weights live on disk: Weighted() must report true even though the
	// in-memory weight arrays are nil.
	oocWeighted bool
}

// Skeleton reports whether g is the in-memory skeleton of an out-of-core
// BlockGraph: degrees and offsets are resident but the adjacency is not, and
// edge access must go through the block backend.
func (g *Graph) Skeleton() bool { return g.outAdj == nil && g.m > 0 }

// skeletonPanic fails loudly when code reaches for adjacency that only
// exists on disk.
func skeletonPanic() {
	panic("graph: skeleton of an out-of-core block graph has no in-memory adjacency; edge access must go through the block backend")
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of stored directed edges. For a graph built
// with Undirected(true) this counts each undirected edge twice.
func (g *Graph) NumEdges() int { return g.m }

// Directed reports whether the graph was built as directed.
func (g *Graph) Directed() bool { return g.directed }

// Weighted reports whether edge weights are present (on disk, for the
// skeleton of an out-of-core block graph).
func (g *Graph) Weighted() bool { return g.outW != nil || g.oocWeighted }

// Name returns the dataset name given at build time (may be empty).
func (g *Graph) Name() string { return g.name }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u VID) int { return int(g.outOff[u+1] - g.outOff[u]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VID) int { return int(g.inOff[v+1] - g.inOff[v]) }

// OutNeighbors returns the out-neighbor slice of u. Callers must not modify
// the returned slice. Panics on the skeleton of an out-of-core block graph.
func (g *Graph) OutNeighbors(u VID) []VID {
	if g.outAdj == nil && g.m > 0 {
		skeletonPanic()
	}
	return g.outAdj[g.outOff[u]:g.outOff[u+1]]
}

// InNeighbors returns the in-neighbor slice of v. Callers must not modify
// the returned slice. Panics on the skeleton of an out-of-core block graph.
func (g *Graph) InNeighbors(v VID) []VID {
	if g.inAdj == nil && g.m > 0 {
		skeletonPanic()
	}
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutWeights returns weights aligned with OutNeighbors(u), or nil if the
// graph is unweighted.
func (g *Graph) OutWeights(u VID) []float32 {
	if g.outW == nil {
		return nil
	}
	return g.outW[g.outOff[u]:g.outOff[u+1]]
}

// InWeights returns weights aligned with InNeighbors(v), or nil if the graph
// is unweighted.
func (g *Graph) InWeights(v VID) []float32 {
	if g.inW == nil {
		return nil
	}
	return g.inW[g.inOff[v]:g.inOff[v+1]]
}

// HasEdge reports whether the directed edge u->v is present, using binary
// search over the sorted adjacency list.
func (g *Graph) HasEdge(u, v VID) bool {
	adj := g.OutNeighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// Edges calls f for every stored directed edge (u, v, w); w is 0 for
// unweighted graphs. Iteration stops early if f returns false. Panics on the
// skeleton of an out-of-core block graph.
func (g *Graph) Edges(f func(u, v VID, w float32) bool) {
	if g.Skeleton() {
		skeletonPanic()
	}
	for u := 0; u < g.n; u++ {
		lo, hi := g.outOff[u], g.outOff[u+1]
		for i := lo; i < hi; i++ {
			var w float32
			if g.outW != nil {
				w = g.outW[i]
			}
			if !f(VID(u), g.outAdj[i], w) {
				return
			}
		}
	}
}

// MemBytes returns the resident footprint of the CSR arrays (offsets,
// adjacency, and weights for both directions). A graph catalog serving many
// concurrent jobs over one immutable topology pays this once; per-job engine
// state is accounted separately by the engines.
func (g *Graph) MemBytes() uint64 {
	var total uint64
	total += uint64(cap(g.outOff)+cap(g.inOff)) * 8
	total += uint64(cap(g.outAdj)+cap(g.inAdj)) * 4
	total += uint64(cap(g.outW)+cap(g.inW)) * 4
	return total
}

// MaxOutDegree returns the largest out-degree and a vertex achieving it.
func (g *Graph) MaxOutDegree() (VID, int) {
	best, bestV := -1, VID(0)
	for u := 0; u < g.n; u++ {
		if d := g.OutDegree(VID(u)); d > best {
			best, bestV = d, VID(u)
		}
	}
	return bestV, best
}

// String summarizes the graph for logging.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	w := ""
	if g.Weighted() {
		w = ", weighted"
	}
	return fmt.Sprintf("graph %q: |V|=%d |E|=%d (%s%s)", g.name, g.n, g.m, kind, w)
}

// Stats holds summary statistics computed by ComputeStats.
type Stats struct {
	NumVertices int
	NumEdges    int
	MaxDegree   int
	AvgDegree   float64
	Isolated    int // vertices with no in or out edges
}

// ComputeStats scans the graph once and returns summary statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{NumVertices: g.n, NumEdges: g.m}
	for u := 0; u < g.n; u++ {
		d := g.OutDegree(VID(u))
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 && g.InDegree(VID(u)) == 0 {
			s.Isolated++
		}
	}
	if g.n > 0 {
		s.AvgDegree = float64(g.m) / float64(g.n)
	}
	return s
}
