package serve

import (
	"sync"
	"time"
)

// Metrics is the service-level counter set behind GET /v1/metrics. It counts
// admissions and outcomes; engine-level counters stay per-job in JobResult.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	submit    uint64
	done      uint64
	failed    uint64
	rejected  map[string]uint64 // ErrorCode → count
	busyNanos int64             // summed job wall time
}

// NewMetrics returns an empty metrics set with the uptime clock started.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), rejected: make(map[string]uint64)}
}

func (m *Metrics) submitted() {
	m.mu.Lock()
	m.submit++
	m.mu.Unlock()
}

func (m *Metrics) finished(ok bool, elapsed time.Duration) {
	m.mu.Lock()
	if ok {
		m.done++
	} else {
		m.failed++
	}
	m.busyNanos += elapsed.Nanoseconds()
	m.mu.Unlock()
}

func (m *Metrics) reject(err error) {
	m.mu.Lock()
	m.rejected[ErrorCode(err)]++
	m.mu.Unlock()
}

// MetricsSnapshot is the JSON shape of GET /v1/metrics. JobsPerSec is
// completed jobs over uptime — the number the bench-smoke serve section
// records.
type MetricsSnapshot struct {
	UptimeNs   int64             `json:"uptime_ns"`
	Submitted  uint64            `json:"submitted"`
	Completed  uint64            `json:"completed"`
	Failed     uint64            `json:"failed"`
	Rejected   map[string]uint64 `json:"rejected,omitempty"`
	JobsPerSec float64           `json:"jobs_per_sec"`
	BusyNs     int64             `json:"busy_ns"`
	Running    int               `json:"running"`
	Queued     int               `json:"queued"`
	// Catalog-side accounting: immutable bytes paid once per graph.
	Graphs          int    `json:"graphs"`
	GraphBytes      uint64 `json:"graph_bytes"`
	SharedPartBytes uint64 `json:"shared_part_bytes"`
}

// Snapshot captures the counters; running/queued/catalog fields are filled
// by the server, which owns those components.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	up := time.Since(m.start)
	snap := MetricsSnapshot{
		UptimeNs:  up.Nanoseconds(),
		Submitted: m.submit,
		Completed: m.done,
		Failed:    m.failed,
		BusyNs:    m.busyNanos,
	}
	if len(m.rejected) > 0 {
		snap.Rejected = make(map[string]uint64, len(m.rejected))
		for code, n := range m.rejected {
			snap.Rejected[code] = n
		}
	}
	if secs := up.Seconds(); secs > 0 {
		snap.JobsPerSec = float64(m.done) / secs
	}
	return snap
}
