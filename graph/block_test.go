package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flash/internal/bitset"
)

// blockTestGraphs builds the directed×weighted matrix of small graphs used by
// the roundtrip tests.
func blockTestGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	undirW := NewBuilder(64).Weighted(true).Name("undir-w")
	for v := 0; v < 63; v++ {
		undirW.AddEdgeW(VID(v), VID(v+1), float32(v)+0.5)
		undirW.AddEdgeW(VID(v), VID((v*7+3)%64), float32(v)*0.25)
	}
	return map[string]*Graph{
		"undirected":          GenRMAT(200, 1200, 7),
		"directed":            GenRandomDirected(300, 2400, 3),
		"directed-weighted":   WithRandomWeights(GenRandomDirected(150, 900, 5), 11),
		"undirected-weighted": undirW.Build(),
		"empty":               NewBuilder(0).Build(),
		"isolated":            NewBuilder(5).AddEdge(0, 4).Build(),
	}
}

// openBlockBytes encodes g and reopens it from the in-memory image.
func openBlockBytes(t *testing.T, g *Graph, blockSize int) *BlockGraph {
	t.Helper()
	buf := EncodeBlockFile(g, blockSize)
	bg, err := OpenBlockReader(bytes.NewReader(buf), int64(len(buf)))
	if err != nil {
		t.Fatalf("OpenBlockReader: %v", err)
	}
	return bg
}

// assertSameTopology checks bg against g vertex by vertex through both the
// sequential accessors and direct block reads.
func assertSameTopology(t *testing.T, g *Graph, bg *BlockGraph) {
	t.Helper()
	if bg.NumVertices() != g.NumVertices() || bg.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: got %d/%d want %d/%d",
			bg.NumVertices(), bg.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if bg.Directed() != g.Directed() || bg.Weighted() != g.Weighted() || bg.Name() != g.Name() {
		t.Fatalf("attrs mismatch: %v/%v/%q vs %v/%v/%q",
			bg.Directed(), bg.Weighted(), bg.Name(), g.Directed(), g.Weighted(), g.Name())
	}
	for v := 0; v < g.NumVertices(); v++ {
		u := VID(v)
		wantOut, wantIn := g.OutNeighbors(u), g.InNeighbors(u)
		if got := bg.OutNeighbors(u); !equalVIDs(got, wantOut) {
			t.Fatalf("out(%d): got %v want %v", v, got, wantOut)
		}
		if got := bg.InNeighbors(u); !equalVIDs(got, wantIn) {
			t.Fatalf("in(%d): got %v want %v", v, got, wantIn)
		}
		dec, err := bg.ReadBlock(BlockOut, bg.OutBlockOf(u))
		if err != nil {
			t.Fatalf("ReadBlock out of %d: %v", v, err)
		}
		adj, ws := dec.Adj(u)
		if !equalVIDs(adj, wantOut) {
			t.Fatalf("block out(%d): got %v want %v", v, adj, wantOut)
		}
		if g.Weighted() {
			wantW := g.OutWeights(u)
			if len(ws) != len(wantW) {
				t.Fatalf("weights(%d): got %d want %d", v, len(ws), len(wantW))
			}
			for i := range ws {
				if ws[i] != wantW[i] {
					t.Fatalf("weight(%d)[%d]: got %v want %v", v, i, ws[i], wantW[i])
				}
			}
		} else if ws != nil {
			t.Fatalf("unexpected weights for unweighted graph")
		}
	}
}

func equalVIDs(a, b []VID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBlockRoundtrip(t *testing.T) {
	for name, g := range blockTestGraphs(t) {
		for _, bs := range []int{0, 256, 1} {
			t.Run(name, func(t *testing.T) {
				bg := openBlockBytes(t, g, bs)
				assertSameTopology(t, g, bg)
				if bs == 1 && g.NumVertices() > 100 && bg.NumBlocks(BlockOut) < 10 {
					t.Fatalf("block size 1 produced only %d blocks", bg.NumBlocks(BlockOut))
				}
			})
		}
	}
}

func TestBlockFileWriteOpen(t *testing.T) {
	g := WithRandomWeights(GenRMAT(128, 700, 9), 4)
	path := filepath.Join(t.TempDir(), "g.blk")
	if err := WriteBlockFile(g, path, 512); err != nil {
		t.Fatalf("WriteBlockFile: %v", err)
	}
	if !IsBlockFile(path) {
		t.Fatalf("IsBlockFile = false for a fresh block file")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind")
	}
	bg, err := OpenBlockFile(path)
	if err != nil {
		t.Fatalf("OpenBlockFile: %v", err)
	}
	defer bg.Close()
	assertSameTopology(t, g, bg)

	// Alignment: every block offset is blkAlign-aligned (the decoder enforces
	// this; double-check the writer actually aligned rather than zeroed).
	for d := range bg.blocks {
		for _, mt := range bg.blocks[d] {
			if mt.off%blkAlign != 0 {
				t.Fatalf("unaligned block at payload offset %d", mt.off)
			}
		}
	}
}

func TestBlockFileRejectsCorruption(t *testing.T) {
	g := GenRMAT(100, 600, 13)
	buf := EncodeBlockFile(g, 256)

	open := func(b []byte) (*BlockGraph, error) {
		return OpenBlockReader(bytes.NewReader(b), int64(len(b)))
	}

	if _, err := open(buf[:len(buf)-3]); err == nil {
		t.Fatalf("truncated file accepted")
	}
	if _, err := open(buf[:blkHdrSize-1]); err == nil {
		t.Fatalf("header-only prefix accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xff
	if _, err := open(bad); err == nil {
		t.Fatalf("bad magic accepted")
	}
	bad = append([]byte(nil), buf...)
	bad[8] ^= 0xff // version
	if _, err := open(bad); err == nil {
		t.Fatalf("bad version accepted")
	}

	// Payload bit flip: header and tables still parse, the damaged block must
	// fail its CRC at read time.
	bg, err := open(buf)
	if err != nil {
		t.Fatalf("pristine open: %v", err)
	}
	bad = append([]byte(nil), buf...)
	bad[int(bg.payloadStart)+2] ^= 0x01
	bg2, err := open(bad)
	if err != nil {
		t.Fatalf("payload-flipped open: %v", err)
	}
	if _, err := bg2.ReadBlock(BlockOut, 0); err == nil {
		t.Fatalf("bit-flipped block passed CRC")
	}
}

func TestSkeletonPanicsOnAdjacency(t *testing.T) {
	bg := openBlockBytes(t, GenRMAT(50, 200, 1), 0)
	sk := bg.Skeleton()
	if sk.NumVertices() != 50 || sk.NumEdges() != bg.NumEdges() {
		t.Fatalf("skeleton shape wrong")
	}
	if !sk.Skeleton() {
		t.Fatalf("Skeleton() = false for a block skeleton")
	}
	if sk.OutDegree(3) != int(bg.outOff[4]-bg.outOff[3]) {
		t.Fatalf("skeleton degree wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("skeleton adjacency access did not panic")
		}
	}()
	sk.OutNeighbors(3)
}

func TestBlockCacheEviction(t *testing.T) {
	g := GenRMAT(512, 4096, 21)
	bg := openBlockBytes(t, g, 512) // many small blocks
	nb := bg.NumBlocks(BlockOut)
	if nb < 8 {
		t.Fatalf("want many blocks, got %d", nb)
	}

	one, err := bg.ReadBlock(BlockOut, 0)
	if err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	// Budget for about three blocks: a full scan must evict.
	c := NewBlockCache(bg, 3*one.Bytes())
	c.BeginDense()
	for i := 0; i < nb; i++ {
		dec, err := c.Get(BlockOut, i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if !dec.Contains(dec.First()) {
			t.Fatalf("bad block %d", i)
		}
	}
	st := c.Stats()
	if st.Misses != uint64(nb) || st.Hits != 0 {
		t.Fatalf("cold scan: hits=%d misses=%d want 0/%d", st.Hits, st.Misses, nb)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 3-block budget across %d blocks", nb)
	}
	if st.BytesDense == 0 || st.BytesSparse != 0 {
		t.Fatalf("dense-mode byte accounting wrong: %+v", st)
	}
	if c.Bytes() > c.Budget() {
		t.Fatalf("resident %d exceeds budget %d", c.Bytes(), c.Budget())
	}

	// Unbounded-enough budget: a second scan is all hits.
	c2 := NewBlockCache(bg, int64(bg.EdgeBytes())*4+int64(nb)*128)
	c2.BeginDense()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < nb; i++ {
			if _, err := c2.Get(BlockOut, i); err != nil {
				t.Fatalf("Get: %v", err)
			}
		}
	}
	st2 := c2.Stats()
	if st2.Hits != uint64(nb) || st2.Misses != uint64(nb) || st2.Evictions != 0 {
		t.Fatalf("warm scan: %+v", st2)
	}
}

func TestBlockCacheSparsePlan(t *testing.T) {
	g := GenRMAT(512, 4096, 22)
	bg := openBlockBytes(t, g, 512)
	nb := bg.NumBlocks(BlockOut)
	c := NewBlockCache(bg, 1<<20)

	plan := bitset.New(nb)
	plan.Set(0)
	c.BeginSparse(plan, nil)
	if _, err := c.Get(BlockOut, 0); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, err := c.Get(BlockOut, nb-1); err != nil {
		t.Fatalf("Get: %v", err)
	}
	st := c.Stats()
	if st.BytesSparse == 0 || st.BytesDense != 0 {
		t.Fatalf("sparse byte accounting wrong: %+v", st)
	}
	if st.Unplanned != 1 {
		t.Fatalf("unplanned = %d, want 1 (block %d was outside the plan)", st.Unplanned, nb-1)
	}

	d := c.TakeDelta()
	if d.Misses != 2 {
		t.Fatalf("TakeDelta misses = %d, want 2", d.Misses)
	}
	if d2 := c.TakeDelta(); d2.Misses != 0 || d2.Hits != 0 {
		t.Fatalf("second TakeDelta not empty: %+v", d2)
	}
}

func TestBlockCacheOversizeBlockCachedAlone(t *testing.T) {
	// One hub vertex with a huge list: with a tiny target every vertex gets
	// its own block and the hub's block exceeds any small budget. Residency
	// is minimum-one-block, so the oversize block evicts everything else and
	// stays resident alone — a rescan must hit, not re-decode.
	b := NewBuilder(1000).Directed(true)
	for v := 1; v < 1000; v++ {
		b.AddEdge(0, VID(v))
	}
	bg := openBlockBytes(t, b.Build(), 1)
	hub, err := bg.ReadBlock(BlockOut, bg.OutBlockOf(0))
	if err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	c := NewBlockCache(bg, hub.Bytes()/2)
	c.BeginDense()
	if _, err := c.Get(BlockOut, 1); err != nil { // a small resident victim
		t.Fatalf("Get: %v", err)
	}
	if _, err := c.Get(BlockOut, bg.OutBlockOf(0)); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if c.Bytes() != hub.Bytes() {
		t.Fatalf("oversize block not resident alone: %d bytes, want %d", c.Bytes(), hub.Bytes())
	}
	dec, err := c.Get(BlockOut, bg.OutBlockOf(0))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if adj, _ := dec.Adj(0); len(adj) != 999 {
		t.Fatalf("hub degree %d, want 999", len(adj))
	}
	if st := c.Stats(); st.Hits != 1 || st.Evictions != 1 {
		t.Fatalf("oversize residency stats: %+v (want 1 hit, 1 eviction)", st)
	}
}

func TestBlockGraphFootprint(t *testing.T) {
	g := GenRMAT(256, 2000, 5)
	bg := openBlockBytes(t, g, 0)
	if bg.EdgeBytes() != uint64(g.NumEdges())*4 {
		t.Fatalf("EdgeBytes = %d, want %d (undirected stores one direction)",
			bg.EdgeBytes(), g.NumEdges()*4)
	}
	if bg.IndexBytes() == 0 {
		t.Fatalf("IndexBytes = 0")
	}
	dg := WithRandomWeights(GenRandomDirected(100, 500, 2), 3)
	dbg := openBlockBytes(t, dg, 0)
	if dbg.EdgeBytes() != uint64(dg.NumEdges())*8*2 {
		t.Fatalf("directed weighted EdgeBytes = %d, want %d", dbg.EdgeBytes(), dg.NumEdges()*8*2)
	}
}
