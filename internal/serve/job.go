package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"flash"
	"flash/algo"
	"flash/graph"
	"flash/metrics"
)

// JobParams carries the per-algorithm and per-run knobs of a job request.
// Optional fields are pointers so "absent" and "zero" stay distinguishable,
// letting the parser reject explicit bad values while defaulting silently.
type JobParams struct {
	Root     *uint64  `json:"root,omitempty"`      // bfs, sssp, bc source vertex
	MaxIters *int     `json:"max_iters,omitempty"` // pagerank, lpa
	Eps      *float64 `json:"eps,omitempty"`       // pagerank convergence bound
	Workers  *int     `json:"workers,omitempty"`   // engine worker count
	Threads  *int     `json:"threads,omitempty"`   // intra-worker threads
	TCP      *bool    `json:"tcp,omitempty"`       // loopback TCP transport
	ResizeAt *int     `json:"resize_at,omitempty"` // superstep to resize after
	ResizeTo *int     `json:"resize_to,omitempty"` // target worker count
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	Graph  string    `json:"graph"`
	Algo   string    `json:"algo"`
	Tenant string    `json:"tenant,omitempty"`
	Params JobParams `json:"params"`
}

// maxRoot bounds source vertex ids at parse time; graph.VID is uint32, so
// anything above it can never name a vertex.
const maxRoot = math.MaxUint32

// ParseJobRequest decodes and validates a job request body. It is strict:
// unknown fields, trailing data, non-finite floats, and out-of-range values
// are all typed RequestErrors — this is the fuzz target, so every rejection
// path must be a clean error, never a panic. Graph existence and root-vs-size
// checks need the catalog and happen at submission.
func ParseJobRequest(body []byte) (*JobRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, &RequestError{Field: "body", Reason: err.Error()}
	}
	// Reject trailing payload after the request object ("{}garbage").
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, &RequestError{Field: "body", Reason: "trailing data after request object"}
	}
	if req.Graph == "" {
		return nil, &RequestError{Field: "graph", Reason: "missing"}
	}
	if req.Algo == "" {
		return nil, &RequestError{Field: "algo", Reason: "missing"}
	}
	spec, ok := algoRegistry[req.Algo]
	if !ok {
		return nil, &UnknownAlgoError{Algo: req.Algo}
	}
	p := req.Params
	if p.Root != nil && *p.Root > maxRoot {
		return nil, &RequestError{Field: "root", Reason: fmt.Sprintf("%d exceeds max vertex id %d", *p.Root, uint64(maxRoot))}
	}
	if spec.needsRoot && p.Root == nil {
		return nil, &RequestError{Field: "root", Reason: fmt.Sprintf("required by algo %q", req.Algo)}
	}
	if p.MaxIters != nil && *p.MaxIters <= 0 {
		return nil, &RequestError{Field: "max_iters", Reason: fmt.Sprintf("must be positive, got %d", *p.MaxIters)}
	}
	if p.Eps != nil && (math.IsNaN(*p.Eps) || math.IsInf(*p.Eps, 0) || *p.Eps < 0) {
		return nil, &RequestError{Field: "eps", Reason: "must be finite and non-negative"}
	}
	if p.Workers != nil && (*p.Workers < 1 || *p.Workers > 256) {
		return nil, &RequestError{Field: "workers", Reason: fmt.Sprintf("must be in [1,256], got %d", *p.Workers)}
	}
	if p.Threads != nil && (*p.Threads < 1 || *p.Threads > 256) {
		return nil, &RequestError{Field: "threads", Reason: fmt.Sprintf("must be in [1,256], got %d", *p.Threads)}
	}
	if (p.ResizeAt == nil) != (p.ResizeTo == nil) {
		return nil, &RequestError{Field: "resize_at", Reason: "resize_at and resize_to must be set together"}
	}
	if p.ResizeAt != nil && *p.ResizeAt < 1 {
		return nil, &RequestError{Field: "resize_at", Reason: "must be a superstep >= 1"}
	}
	if p.ResizeTo != nil && (*p.ResizeTo < 1 || *p.ResizeTo > 256) {
		return nil, &RequestError{Field: "resize_to", Reason: fmt.Sprintf("must be in [1,256], got %d", *p.ResizeTo)}
	}
	return &req, nil
}

// algoSpec describes one servable algorithm: its parameter needs and the
// adapter that invokes the algo package with the job's engine options. The
// adapter returns a JSON-marshalable value (the service result payload).
type algoSpec struct {
	needsRoot bool // requires params.root
	weighted  bool // requires a weighted catalog graph
	run       func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error)
}

// Defaults applied when optional params are absent.
const (
	defaultPageRankIters = 20
	defaultPageRankEps   = 1e-4
	defaultLPAIters      = 10
)

// algoRegistry maps the service's algorithm names onto the algo package.
// Every adapter threads opts through unchanged, so the scheduler's
// WithGraphHandle/WithRunStats/WithCollector options reach the engine.
var algoRegistry = map[string]algoSpec{
	"bfs": {needsRoot: true, run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		return algo.BFS(g, graph.VID(*p.Root), opts...)
	}},
	"cc": {run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		return algo.CC(g, opts...)
	}},
	"ccopt": {run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		return algo.CCOpt(g, opts...)
	}},
	"pagerank": {run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		iters, eps := defaultPageRankIters, defaultPageRankEps
		if p.MaxIters != nil {
			iters = *p.MaxIters
		}
		if p.Eps != nil {
			eps = *p.Eps
		}
		return algo.PageRank(g, iters, eps, opts...)
	}},
	"sssp": {needsRoot: true, weighted: true, run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		dist, err := algo.SSSP(g, graph.VID(*p.Root), opts...)
		if err != nil {
			return nil, err
		}
		return ssspJSON(dist), nil
	}},
	"kcore": {run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		return algo.KC(g, opts...)
	}},
	"gc": {run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		return algo.GC(g, opts...)
	}},
	"mis": {run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		return algo.MIS(g, opts...)
	}},
	"lpa": {run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		iters := defaultLPAIters
		if p.MaxIters != nil {
			iters = *p.MaxIters
		}
		return algo.LPA(g, iters, opts...)
	}},
	"tc": {run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		return algo.TC(g, opts...)
	}},
	"scc": {run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		return algo.SCC(g, opts...)
	}},
}

// Algos returns the names the registry serves, for diagnostics.
func Algos() []string {
	names := make([]string, 0, len(algoRegistry))
	for name := range algoRegistry {
		names = append(names, name)
	}
	return names
}

// ssspJSON maps SSSP's +Inf unreachable sentinel to -1: JSON has no Inf, and
// a negative distance is unambiguous since edge weights are non-negative.
func ssspJSON(dist []float32) []float32 {
	out := make([]float32, len(dist))
	for i, d := range dist {
		if math.IsInf(float64(d), 1) {
			out[i] = -1
		} else {
			out[i] = d
		}
	}
	return out
}

// JobState is a job's position in its lifecycle.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobResult is the payload of a finished job: the algorithm's output plus
// the run accounting that makes the shared/private memory split observable
// per job (StateBytes is this job's private mutable state only — the graph
// and partition it borrowed are accounted on the catalog side).
type JobResult struct {
	Values     any    `json:"values"`
	Supersteps int    `json:"supersteps"`
	StateBytes uint64 `json:"state_bytes"`
	Workers    int    `json:"workers"`
	Resizes    uint64 `json:"resizes"`
	ElapsedNs  int64  `json:"elapsed_ns"`
}

// Job is one admitted request moving through the scheduler. The graph handle
// is resolved at admission, so an eviction after admission cannot fail the
// job. Done closes when the job reaches a terminal state.
type Job struct {
	ID       string     `json:"id"`
	Tenant   string     `json:"tenant,omitempty"`
	Req      JobRequest `json:"request"`
	Enqueued time.Time  `json:"enqueued"`

	handle *flash.GraphHandle

	mu     sync.Mutex
	state  JobState
	result *JobResult
	err    error
	done   chan struct{}
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job finishes or fails.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's result and error once terminal (nil, nil while
// queued or running).
func (j *Job) Result() (*JobResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// setRunning flips the job to running (scheduler only).
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

// finish records the terminal state and wakes waiters (scheduler only).
func (j *Job) finish(res *JobResult, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = JobFailed
		j.err = err
	} else {
		j.state = JobDone
		j.result = res
	}
	j.mu.Unlock()
	close(j.done)
}

// execute runs the job's algorithm over its resolved handle: borrow the
// shared immutable state, collect per-run stats, honor a scripted mid-run
// resize. defaultWorkers/defaultThreads come from the server config.
func (j *Job) execute(defaultWorkers, defaultThreads int) (*JobResult, error) {
	spec := algoRegistry[j.Req.Algo] // validated at parse time
	g := j.handle.Graph()
	p := j.Req.Params

	workers, threads := defaultWorkers, defaultThreads
	if p.Workers != nil {
		workers = *p.Workers
	}
	if p.Threads != nil {
		threads = *p.Threads
	}

	var stats flash.RunStats
	col := metrics.New()
	opts := []flash.Option{
		flash.WithGraphHandle(j.handle),
		flash.WithWorkers(workers),
		flash.WithThreads(threads),
		flash.WithRunStats(func(s flash.RunStats) { stats = s }),
		flash.WithCollector(col),
	}
	if p.TCP != nil && *p.TCP {
		opts = append(opts, flash.WithTCP())
	}
	if p.ResizeAt != nil {
		opts = append(opts, flash.WithResizePolicy(
			flash.SchedulePolicy(map[int]int{*p.ResizeAt: *p.ResizeTo})))
	}

	start := time.Now()
	values, err := spec.run(g, p, opts)
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Values:     values,
		Supersteps: stats.Result.Supersteps,
		StateBytes: stats.StateBytes,
		Workers:    stats.Workers,
		Resizes:    col.Resizes,
		ElapsedNs:  time.Since(start).Nanoseconds(),
	}, nil
}

// validateAgainstGraph applies the checks that need the resolved graph:
// root in range, weighted requirement.
func validateAgainstGraph(req *JobRequest, g *graph.Graph) error {
	spec := algoRegistry[req.Algo]
	if spec.needsRoot && req.Params.Root != nil && *req.Params.Root >= uint64(g.NumVertices()) {
		return &RequestError{Field: "root", Reason: fmt.Sprintf("%d out of range for graph with %d vertices", *req.Params.Root, g.NumVertices())}
	}
	if spec.weighted && !g.Weighted() {
		return &RequestError{Field: "algo", Reason: fmt.Sprintf("%s requires a weighted graph", req.Algo)}
	}
	return nil
}
