package pregel

import (
	"sort"

	"flash/graph"
)

// The algorithm implementations below follow the standard Pregel-style
// formulations (as in Pregel+): single-phased value propagation where
// possible, explicit phase fields and chained programs where the model
// forces decomposition (BC, SCC, BCC).

const none = int32(-1)

// BFS computes hop distances from root (-1 when unreachable).
func BFS(g *graph.Graph, root graph.VID, cfg Config) ([]int32, error) {
	type v struct{ Dis int32 }
	prog := Program[v, int32]{
		Init: func(id graph.VID, _ int) v { return v{Dis: none} },
		Compute: func(ctx *Context[v, int32], val *v, msgs []int32) {
			if ctx.Superstep() == 0 {
				if ctx.Self() == root {
					val.Dis = 0
					ctx.SendToNeighbors(1)
				}
				ctx.VoteToHalt()
				return
			}
			if val.Dis == none && len(msgs) > 0 {
				val.Dis = msgs[0]
				ctx.SendToNeighbors(val.Dis + 1)
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(res.Values))
	for i, x := range res.Values {
		out[i] = x.Dis
	}
	return out, nil
}

// CC computes connected components by min-label propagation.
func CC(g *graph.Graph, cfg Config) ([]uint32, error) {
	type v struct{ CC uint32 }
	prog := Program[v, uint32]{
		Init: func(id graph.VID, _ int) v { return v{CC: uint32(id)} },
		Compute: func(ctx *Context[v, uint32], val *v, msgs []uint32) {
			changed := ctx.Superstep() == 0
			for _, m := range msgs {
				if m < val.CC {
					val.CC = m
					changed = true
				}
			}
			if changed {
				ctx.SendToNeighbors(val.CC)
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b uint32) uint32 {
			if a < b {
				return a
			}
			return b
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, len(res.Values))
	for i, x := range res.Values {
		out[i] = x.CC
	}
	return out, nil
}

// SSSP computes weighted shortest paths from root.
func SSSP(g *graph.Graph, root graph.VID, cfg Config) ([]float32, error) {
	type v struct{ Dis float32 }
	const winf = float32(1e30)
	prog := Program[v, float32]{
		Init: func(id graph.VID, _ int) v { return v{Dis: winf} },
		Compute: func(ctx *Context[v, float32], val *v, msgs []float32) {
			best := val.Dis
			if ctx.Superstep() == 0 && ctx.Self() == root {
				best = 0
			}
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			if best < val.Dis || (ctx.Superstep() == 0 && ctx.Self() == root) {
				val.Dis = best
				ctx.SendToNeighborsW(func(_ graph.VID, w float32) float32 { return best + w })
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b float32) float32 {
			if a < b {
				return a
			}
			return b
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(res.Values))
	for i, x := range res.Values {
		out[i] = x.Dis
	}
	return out, nil
}

// BC computes Brandes dependency scores from root. The Pregel model has no
// global frontier stack, so the program stores per-vertex levels in a first
// chained sub-program, then runs one backward sub-program per BFS level —
// the decomposition overhead the paper attributes to Pregel+.
func BC(g *graph.Graph, root graph.VID, cfg Config) ([]float64, error) {
	type fv struct {
		Level int32
		Sigma float64
	}
	fwd := Program[fv, float64]{
		Init: func(id graph.VID, _ int) fv { return fv{Level: none} },
		Compute: func(ctx *Context[fv, float64], val *fv, msgs []float64) {
			if ctx.Superstep() == 0 {
				if ctx.Self() == root {
					val.Level = 0
					val.Sigma = 1
					ctx.SendToNeighbors(1)
				}
				ctx.VoteToHalt()
				return
			}
			if val.Level == none && len(msgs) > 0 {
				val.Level = int32(ctx.Superstep())
				for _, m := range msgs {
					val.Sigma += m
				}
				ctx.SendToNeighbors(val.Sigma)
			}
			ctx.VoteToHalt()
		},
	}
	fres, err := Run(g, fwd, cfg)
	if err != nil {
		return nil, err
	}
	levels := make([]int32, len(fres.Values))
	sigma := make([]float64, len(fres.Values))
	maxLevel := int32(0)
	for i, x := range fres.Values {
		levels[i] = x.Level
		sigma[i] = x.Sigma
		if x.Level > maxLevel {
			maxLevel = x.Level
		}
	}

	// One backward sub-program per level: vertices at `lev` send their
	// accumulated dependency down to level-1 parents.
	delta := make([]float64, len(levels))
	for lev := maxLevel; lev >= 1; lev-- {
		type bv struct{ Delta float64 }
		lev := lev
		back := Program[bv, float64]{
			Init: func(id graph.VID, _ int) bv { return bv{Delta: delta[id]} },
			Compute: func(ctx *Context[bv, float64], val *bv, msgs []float64) {
				switch ctx.Superstep() {
				case 0:
					if levels[ctx.Self()] == lev {
						contrib := (1 + val.Delta) / sigma[ctx.Self()]
						for _, d := range ctx.OutNeighbors() {
							if levels[d] == lev-1 {
								ctx.Send(d, contrib)
							}
						}
					}
					ctx.VoteToHalt()
				default:
					for _, m := range msgs {
						val.Delta += m * sigma[ctx.Self()]
					}
					ctx.VoteToHalt()
				}
			},
		}
		bres, err := Run(g, back, cfg)
		if err != nil {
			return nil, err
		}
		for i, x := range bres.Values {
			delta[i] = x.Delta
		}
	}
	return delta, nil
}

// MIS computes a maximal independent set with Luby's algorithm using the
// same degree-based priorities as the FLASH version.
func MIS(g *graph.Graph, cfg Config) ([]bool, error) {
	type v struct {
		R      uint64
		In     bool // selected into the MIS
		Out    bool // dominated
		MinNbr uint64
	}
	type msg struct {
		R    uint64
		Kind uint8 // 0: priority advertisement, 1: "I'm in, you're out"
	}
	n := uint64(g.NumVertices())
	prog := Program[v, msg]{
		Init: func(id graph.VID, deg int) v {
			return v{R: uint64(deg)*n + uint64(id), MinNbr: ^uint64(0)}
		},
		Compute: func(ctx *Context[v, msg], val *v, msgs []msg) {
			if val.In || val.Out {
				ctx.VoteToHalt()
				return
			}
			phase := ctx.Superstep() % 2
			if phase == 0 {
				// Receive knockouts from the previous round first.
				for _, m := range msgs {
					if m.Kind == 1 {
						val.Out = true
						ctx.VoteToHalt()
						return
					}
				}
				ctx.SendToNeighbors(msg{R: val.R})
				return // stay active for the decision phase
			}
			val.MinNbr = ^uint64(0)
			for _, m := range msgs {
				if m.Kind == 0 && m.R < val.MinNbr {
					val.MinNbr = m.R
				}
			}
			if val.R < val.MinNbr {
				val.In = true
				ctx.SendToNeighbors(msg{Kind: 1})
				ctx.VoteToHalt()
			}
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(res.Values))
	for i, x := range res.Values {
		out[i] = x.In
	}
	return out, nil
}

// MM computes a maximal matching by propose-and-marry rounds.
func MM(g *graph.Graph, cfg Config) ([]int32, error) {
	type v struct {
		S int32 // partner
		P int32 // best proposal received
	}
	type msg struct {
		From int32
		Kind uint8 // 0: proposal, 1: acceptance
	}
	prog := Program[v, msg]{
		Init: func(id graph.VID, _ int) v { return v{S: none, P: none} },
		Compute: func(ctx *Context[v, msg], val *v, msgs []msg) {
			if val.S != none {
				ctx.VoteToHalt()
				return
			}
			switch ctx.Superstep() % 3 {
			case 0: // propose to all neighbors
				val.P = none
				ctx.SendToNeighbors(msg{From: int32(ctx.Self()), Kind: 0})
			case 1: // pick best proposal and answer it
				for _, m := range msgs {
					if m.Kind == 0 && m.From > val.P {
						val.P = m.From
					}
				}
				if val.P != none {
					ctx.Send(graph.VID(val.P), msg{From: int32(ctx.Self()), Kind: 1})
				}
			case 2: // mutual acceptance marries
				for _, m := range msgs {
					if m.Kind == 1 && m.From == val.P {
						val.S = m.From
						break
					}
				}
				if val.S != none || val.P == none {
					// Married, or nobody proposed (all neighbors matched):
					// sleep until a future proposal wakes us.
					ctx.VoteToHalt()
				}
			}
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(res.Values))
	for i, x := range res.Values {
		out[i] = x.S
	}
	return out, nil
}

// KC computes the k-core decomposition the way Pregel+ does: one vertex
// program per peel sweep, replayed until a sweep removes nothing.
func KC(g *graph.Graph, cfg Config) ([]int32, error) {
	return kcIterative(g, cfg)
}

// kcIterative runs one Pregel program per peel round, the way Pregel+
// implements KC: each round removes every vertex with induced degree < k
// and replays until a full sweep removes nothing.
func kcIterative(g *graph.Graph, cfg Config) ([]int32, error) {
	n := g.NumVertices()
	deg := make([]int32, n)
	removed := make([]bool, n)
	core := make([]int32, n)
	for i := 0; i < n; i++ {
		deg[i] = int32(g.OutDegree(graph.VID(i)))
	}
	_, maxDeg := g.MaxOutDegree()
	for k := int32(1); k <= int32(maxDeg)+1; k++ {
		for {
			type v struct{ Gone bool }
			prog := Program[v, int32]{
				Init: func(id graph.VID, _ int) v { return v{} },
				Compute: func(ctx *Context[v, int32], val *v, msgs []int32) {
					id := ctx.Self()
					for _, m := range msgs {
						deg[id] -= m // safe: one worker owns each vertex
					}
					if ctx.Superstep() == 0 && !removed[id] && deg[id] < k {
						val.Gone = true
						removed[id] = true
						core[id] = k - 1
						ctx.SendToNeighbors(1)
					}
					ctx.VoteToHalt()
				},
			}
			res, err := Run(g, prog, cfg)
			if err != nil {
				return nil, err
			}
			any := false
			for _, x := range res.Values {
				if x.Gone {
					any = true
					break
				}
			}
			if !any {
				break
			}
		}
		allGone := true
		for i := 0; i < n; i++ {
			if !removed[i] {
				allGone = false
				break
			}
		}
		if allGone {
			break
		}
	}
	return core, nil
}

// TC counts triangles by exchanging full neighbor lists, the heavyweight
// pattern the paper notes PowerGraph/Pregel must use.
func TC(g *graph.Graph, cfg Config) (int64, error) {
	type v struct {
		Count int64
		Out   []uint32
	}
	type msg struct {
		From uint32
		List []uint32
	}
	rank := func(a, b graph.VID) bool { // a outranks b
		da, db := g.OutDegree(a), g.OutDegree(b)
		return da > db || (da == db && a > b)
	}
	prog := Program[v, msg]{
		Init: func(id graph.VID, _ int) v { return v{} },
		Compute: func(ctx *Context[v, msg], val *v, msgs []msg) {
			switch ctx.Superstep() {
			case 0: // build ranked out-lists locally
				for _, d := range ctx.OutNeighbors() {
					if rank(d, ctx.Self()) {
						val.Out = append(val.Out, uint32(d))
					}
				}
				sort.Slice(val.Out, func(i, j int) bool { return val.Out[i] < val.Out[j] })
			case 1: // ship the list to every larger-id neighbor
				for _, d := range ctx.OutNeighbors() {
					if ctx.Self() < d {
						ctx.Send(d, msg{From: uint32(ctx.Self()), List: val.Out})
					}
				}
			case 2: // intersect received lists with own
				for _, m := range msgs {
					val.Count += sortedIntersect(m.List, val.Out)
				}
			}
			if ctx.Superstep() >= 2 {
				ctx.VoteToHalt()
			}
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, x := range res.Values {
		total += x.Count
	}
	return total, nil
}

func sortedIntersect(a, b []uint32) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// GC computes a greedy coloring: higher-ranked vertices announce their
// colors to lower-ranked neighbors, every vertex remembers the last color
// announced by each higher neighbor, and repeatedly moves to the smallest
// color not in that memory until the whole graph is stable.
func GC(g *graph.Graph, cfg Config) ([]int32, error) {
	type v struct {
		C     int32
		Dirty bool
		Known map[uint32]int32 // higher neighbor -> its last announced color
	}
	type msg struct {
		From  uint32
		Color int32
	}
	rank := func(a, b graph.VID) bool {
		da, db := g.OutDegree(a), g.OutDegree(b)
		return da > db || (da == db && a > b)
	}
	prog := Program[v, msg]{
		Init: func(id graph.VID, _ int) v { return v{Dirty: true, Known: map[uint32]int32{}} },
		Compute: func(ctx *Context[v, msg], val *v, msgs []msg) {
			if ctx.Superstep()%2 == 0 {
				// Announce phase: changed vertices tell lower-ranked
				// neighbors their color.
				if val.Dirty {
					val.Dirty = false
					for _, d := range ctx.OutNeighbors() {
						if rank(ctx.Self(), d) {
							ctx.Send(d, msg{From: uint32(ctx.Self()), Color: val.C})
						}
					}
				}
				return // stay active for the decision phase
			}
			for _, m := range msgs {
				val.Known[m.From] = m.Color
			}
			used := make(map[int32]bool, len(val.Known))
			for _, c := range val.Known {
				used[c] = true
			}
			c := int32(0)
			for used[c] {
				c++
			}
			if c != val.C {
				val.C = c
				val.Dirty = true
			} else {
				ctx.VoteToHalt()
			}
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(res.Values))
	for i, x := range res.Values {
		out[i] = x.C
	}
	return out, nil
}

// LPA runs synchronous label propagation for maxIters rounds.
func LPA(g *graph.Graph, maxIters int, cfg Config) ([]int32, error) {
	type v struct{ C int32 }
	prog := Program[v, int32]{
		Init: func(id graph.VID, _ int) v { return v{C: int32(id)} },
		Compute: func(ctx *Context[v, int32], val *v, msgs []int32) {
			if ctx.Superstep() > 0 && len(msgs) > 0 {
				count := make(map[int32]int, len(msgs))
				best, bestN := val.C, 0
				for _, m := range msgs {
					count[m]++
					if count[m] > bestN || (count[m] == bestN && m < best) {
						best, bestN = m, count[m]
					}
				}
				val.C = best
			}
			if ctx.Superstep() < maxIters {
				ctx.SendToNeighbors(val.C)
			}
			ctx.VoteToHalt()
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(res.Values))
	for i, x := range res.Values {
		out[i] = x.C
	}
	return out, nil
}
