// Command flashrun executes one FLASH algorithm on a graph from a file or a
// named generator and prints a result summary plus the runtime metrics
// breakdown.
//
// Usage:
//
//	flashrun -algo bfs -gen rmat -n 10000 -m 80000 [-workers 4] [-root 0]
//	flashrun -algo cc -input edges.txt
//	flashrun -algo cc -gen rmat -workers 2 -resize-at 3 -resize-to 8
//
// Algorithms: bfs, cc, ccopt, bc, mis, mm, mmopt, kc, kcopt, tc, gc, scc,
// bcc, lpa, msf, rc, cl, sssp, pagerank.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flash"
	"flash/algo"
	"flash/graph"
	"flash/metrics"
)

func main() {
	var (
		algoName = flag.String("algo", "bfs", "algorithm to run")
		input    = flag.String("input", "", "edge-list file (overrides -gen)")
		gen      = flag.String("gen", "rmat", "generator: rmat, grid, web, er, path, cycle, star, tree")
		n        = flag.Int("n", 10000, "vertices for the generator")
		m        = flag.Int("m", 80000, "edges for the generator")
		rows     = flag.Int("rows", 100, "grid rows")
		cols     = flag.Int("cols", 100, "grid cols")
		seed     = flag.Int64("seed", 42, "generator seed")
		workers  = flag.Int("workers", 4, "workers")
		threads  = flag.Int("threads", 1, "threads per worker")
		root     = flag.Uint("root", 0, "root vertex for bfs/bc/sssp")
		k        = flag.Int("k", 4, "k for cl")
		iters    = flag.Int("iters", 10, "iterations for lpa/pagerank")
		directed = flag.Bool("directed", false, "treat input edge list as directed")
		tcp      = flag.Bool("tcp", false, "use the loopback TCP transport")

		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint all worker state every n supersteps (0 disables recovery)")
		ckptFile     = flag.String("ckpt-file", "", "durable checkpoint file (default: in-memory store)")
		drainTimeout = flag.Duration("drain-timeout", 0, "per-round peer stall timeout (0 selects the 30s default, negative waits forever)")
		hbEvery      = flag.Duration("heartbeat-every", 0, "liveness heartbeat interval (0 disables heartbeats; required to classify a dead peer)")
		maxRecover   = flag.Int("max-recoveries", 0, "rollback/restart budget (0 keeps the default)")
		sendRetries  = flag.Int("send-retries", 0, "transient send retries (0 keeps the default of 4)")
		chaos        = flag.Bool("chaos", false, "inject seeded transport faults (send failures, delays, reordering)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "fault-injection seed")
		failProb     = flag.Float64("send-fail-prob", 0.01, "chaos: per-frame transient send-failure probability")
		delayProb    = flag.Float64("delay-prob", 0.05, "chaos: per-frame delay-to-end-of-round probability")
		killWorker   = flag.Int("kill-worker", -1, "hard-kill this worker permanently mid-run (cold restart needs -checkpoint-every and -heartbeat-every)")
		killRound    = flag.Int("kill-round", 3, "transport round at which -kill-worker dies")
		resizeAt     = flag.Int("resize-at", 0, "superstep after which the engine resizes to -resize-to workers (0 disables)")
		resizeTo     = flag.Int("resize-to", 0, "target worker count for -resize-at")
	)
	flag.Parse()

	g, err := buildGraph(*input, *gen, *n, *m, *rows, *cols, *seed, *directed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flashrun:", err)
		os.Exit(1)
	}
	fmt.Println(g)

	col := metrics.New()
	opts := []flash.Option{
		flash.WithWorkers(*workers),
		flash.WithThreads(*threads),
		flash.WithCollector(col),
	}
	if *tcp {
		opts = append(opts, flash.WithTCP())
	}
	if *ckptEvery > 0 {
		opts = append(opts, flash.WithCheckpointEvery(*ckptEvery))
	}
	if *ckptFile != "" {
		store, err := flash.NewFileCheckpointStore(*ckptFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flashrun:", err)
			os.Exit(1)
		}
		opts = append(opts, flash.WithCheckpointStore(store))
	}
	if *drainTimeout != 0 {
		opts = append(opts, flash.WithDrainTimeout(*drainTimeout))
	}
	if *hbEvery > 0 {
		opts = append(opts, flash.WithHeartbeatEvery(*hbEvery))
	}
	if *maxRecover > 0 {
		opts = append(opts, flash.WithMaxRecoveries(*maxRecover))
	}
	if *sendRetries != 0 {
		opts = append(opts, flash.WithSendRetries(*sendRetries))
	}
	plan := flash.FaultPlan{Seed: *chaosSeed}
	usePlan := false
	if *chaos {
		plan.SendFailProb = *failProb
		plan.DelayProb = *delayProb
		plan.Reorder = true
		usePlan = true
	}
	if *killWorker >= 0 {
		plan.Kills = []flash.WorkerKill{{Worker: *killWorker, Round: uint32(*killRound)}}
		usePlan = true
	}
	if usePlan {
		opts = append(opts, flash.WithFaultPlan(plan))
	}
	if *resizeAt > 0 {
		if *resizeTo < 1 {
			fmt.Fprintln(os.Stderr, "flashrun: -resize-at needs -resize-to >= 1")
			os.Exit(1)
		}
		opts = append(opts, flash.WithResizePolicy(
			flash.SchedulePolicy(map[int]int{*resizeAt: *resizeTo})))
	}

	start := time.Now()
	summary, err := runAlgo(*algoName, g, graph.VID(*root), *k, *iters, *seed, opts)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flashrun:", err)
		os.Exit(1)
	}
	fmt.Println(summary)
	fmt.Printf("elapsed: %v\n", elapsed.Round(time.Microsecond))
	fmt.Printf("metrics: %v\n", col)
	bd := col.Breakdown()
	fmt.Printf("breakdown: computation %.0f%%, communication %.0f%%, serialization %.0f%%, other %.0f%%\n",
		bd[metrics.Compute]*100, bd[metrics.Communication]*100, bd[metrics.Serialization]*100, bd[metrics.Other]*100)
}

func buildGraph(input, gen string, n, m, rows, cols int, seed int64, directed bool) (*graph.Graph, error) {
	if input != "" {
		return graph.LoadEdgeListFile(input, graph.LoadOptions{Directed: directed})
	}
	switch gen {
	case "rmat":
		return graph.GenRMAT(n, m, seed), nil
	case "grid":
		return graph.GenGrid(rows, cols, 0, seed), nil
	case "web":
		return graph.GenWeb(n, m/n+1, 32, seed), nil
	case "er":
		return graph.GenErdosRenyi(n, m, seed), nil
	case "path":
		return graph.GenPath(n), nil
	case "cycle":
		return graph.GenCycle(n), nil
	case "star":
		return graph.GenStar(n), nil
	case "tree":
		return graph.GenTree(n, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func runAlgo(name string, g *graph.Graph, root graph.VID, k, iters int, seed int64, opts []flash.Option) (string, error) {
	switch name {
	case "bfs":
		dis, err := algo.BFS(g, root, opts...)
		if err != nil {
			return "", err
		}
		reached, far := 0, int32(0)
		for _, d := range dis {
			if d >= 0 {
				reached++
				if d > far {
					far = d
				}
			}
		}
		return fmt.Sprintf("bfs: reached %d vertices, eccentricity %d", reached, far), nil
	case "cc":
		labels, err := algo.CC(g, opts...)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("cc: %d components", algo.CountComponents(labels)), nil
	case "ccopt":
		res, err := algo.CCOpt(g, opts...)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("cc-opt: %d components in %d rounds",
			algo.CountComponents(res.Labels), res.Rounds), nil
	case "bc":
		scores, err := algo.BC(g, root, opts...)
		if err != nil {
			return "", err
		}
		best, bestV := -1.0, graph.VID(0)
		for v, s := range scores {
			if s > best {
				best, bestV = s, graph.VID(v)
			}
		}
		return fmt.Sprintf("bc: max dependency %.2f at vertex %d", best, bestV), nil
	case "mis":
		in, err := algo.MIS(g, opts...)
		if err != nil {
			return "", err
		}
		c := 0
		for _, x := range in {
			if x {
				c++
			}
		}
		return fmt.Sprintf("mis: %d members", c), nil
	case "mm", "mmopt":
		f := algo.MM
		if name == "mmopt" {
			f = algo.MMOpt
		}
		match, err := f(g, opts...)
		if err != nil {
			return "", err
		}
		c := 0
		for _, p := range match {
			if p != -1 {
				c++
			}
		}
		return fmt.Sprintf("%s: %d matched pairs", name, c/2), nil
	case "kc", "kcopt":
		f := algo.KC
		if name == "kcopt" {
			f = algo.KCOpt
		}
		core, err := f(g, opts...)
		if err != nil {
			return "", err
		}
		maxc := int32(0)
		for _, c := range core {
			if c > maxc {
				maxc = c
			}
		}
		return fmt.Sprintf("%s: degeneracy %d", name, maxc), nil
	case "tc":
		c, err := algo.TC(g, opts...)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("tc: %d triangles", c), nil
	case "gc":
		colors, err := algo.GC(g, opts...)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("gc: %d colors", algo.CountColors(colors)), nil
	case "scc":
		labels, err := algo.SCC(g, opts...)
		if err != nil {
			return "", err
		}
		seen := map[int32]bool{}
		for _, l := range labels {
			seen[l] = true
		}
		return fmt.Sprintf("scc: %d strongly connected components", len(seen)), nil
	case "bcc":
		res, err := algo.BCC(g, opts...)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("bcc: %d biconnected components", algo.CountBCCs(res)), nil
	case "lpa":
		labels, err := algo.LPA(g, iters, opts...)
		if err != nil {
			return "", err
		}
		seen := map[int32]bool{}
		for _, l := range labels {
			seen[l] = true
		}
		return fmt.Sprintf("lpa: %d communities after %d iterations", len(seen), iters), nil
	case "msf":
		wg := g
		if !wg.Weighted() {
			wg = graph.WithRandomWeights(g, seed)
		}
		res, err := algo.MSF(wg, opts...)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("msf: %d edges, total weight %.3f", len(res.Edges), res.Weight), nil
	case "rc":
		c, err := algo.RC(g, opts...)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("rc: %d rectangles", c), nil
	case "cl":
		c, err := algo.CL(g, k, opts...)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("cl: %d %d-cliques", c, k), nil
	case "sssp":
		wg := g
		if !wg.Weighted() {
			wg = graph.WithRandomWeights(g, seed)
		}
		dis, err := algo.SSSP(wg, root, opts...)
		if err != nil {
			return "", err
		}
		reached := 0
		for _, d := range dis {
			if d < 1e29 {
				reached++
			}
		}
		return fmt.Sprintf("sssp: reached %d vertices", reached), nil
	case "pagerank":
		pr, err := algo.PageRank(g, iters, 1e-9, opts...)
		if err != nil {
			return "", err
		}
		best, bestV := -1.0, graph.VID(0)
		for v, r := range pr {
			if r > best {
				best, bestV = r, graph.VID(v)
			}
		}
		return fmt.Sprintf("pagerank: top vertex %d (rank %.5f)", bestV, best), nil
	default:
		return "", fmt.Errorf("unknown algorithm %q", name)
	}
}
