// Fixture for the commerr analyzer: fault-surface errors (transport
// Send/EndRound/Drain, Engine.Run, checkpoint-store Save/Load) must be
// checked or explicitly waived with //flash:ignore-err <reason>.
package commerr

import "commerr/graph"

type Transport struct{}

func (t *Transport) Send(from, to int, data []byte) error    { return nil }
func (t *Transport) EndRound(from int) error                 { return nil }
func (t *Transport) Drain(to int, h func(int, []byte)) error { return nil }

type Engine struct{}

func (e *Engine) Run(p func() error) (int, error) { return 0, nil }
func (e *Engine) Resize(n int) error              { return nil }

// Resizer stands in for comm.Resizer, the membership-change fault surface.
type Resizer interface {
	Resize(n int) error
}

// Image stands in for core.CheckpointImage; the store stubs mirror the
// runtime's CheckpointStore fault surface.
type Image struct{}

type FileStore struct{}

func (s *FileStore) Save(img *Image) error { return nil }
func (s *FileStore) Load() (*Image, error) { return nil, nil }

type MemStore struct{}

func (s *MemStore) Save(img *Image) error { return nil }
func (s *MemStore) Load() (*Image, error) { return nil, nil }

func bad(tr *Transport, e *Engine, fs *FileStore, ms *MemStore) {
	tr.Send(0, 1, nil)    // want `Transport.Send error discarded`
	_ = tr.EndRound(0)    // want `Transport.EndRound error assigned to _`
	tr.Drain(0, nil)      // want `Transport.Drain error discarded`
	e.Run(nil)            // want `Engine.Run error discarded`
	go tr.Send(1, 0, nil) // want `Transport.Send error discarded by go statement`
	defer tr.EndRound(0)  // want `Transport.EndRound error discarded by defer`
	fs.Save(nil)          // want `FileStore.Save error discarded`
	_, _ = fs.Load()      // want `FileStore.Load error assigned to _`
	ms.Save(nil)          // want `MemStore.Save error discarded`
	defer fs.Save(nil)    // want `FileStore.Save error discarded by defer`
}

func badResize(e *Engine, rz Resizer) {
	e.Resize(8)      // want `Engine.Resize error discarded`
	_ = rz.Resize(4) // want `Resizer.Resize error assigned to _`
	go e.Resize(2)   // want `Engine.Resize error discarded by go statement`
}

func goodResize(e *Engine, rz Resizer) error {
	if err := rz.Resize(8); err != nil {
		return err
	}
	e.Resize(4) //flash:ignore-err shrink back is best-effort during shutdown
	return e.Resize(2)
}

func good(tr *Transport, e *Engine, fs *FileStore, ms *MemStore) error {
	if err := tr.Send(0, 1, nil); err != nil {
		return err
	}
	tr.EndRound(0) //flash:ignore-err round already aborted, EndRound error duplicates it
	//flash:ignore-err draining a closed transport cannot fail
	_ = tr.Drain(0, nil)
	if err := fs.Save(nil); err != nil {
		return err
	}
	if _, err := ms.Load(); err != nil {
		return err
	}
	fs.Save(nil) //flash:ignore-err best-effort final snapshot during shutdown
	_, err := e.Run(nil)
	return err
}

// NotATransport shares a method name but not the fault-surface shape: its
// Send returns nothing, so there is no error to drop.
type NotATransport struct{}

func (n *NotATransport) Send(x int) {}

// Sender is a differently-named type with an error-returning Send; commerr
// matches the runtime's transport type names only, so this stays silent.
type Sender struct{}

func (s *Sender) Send(from, to int, data []byte) error { return nil }

func others(n *NotATransport, s *Sender) {
	n.Send(1)         // no diagnostic: no error result
	s.Send(0, 1, nil) // no diagnostic: not a guarded receiver type
}

// The serve-layer stubs mirror flashd's admission and catalog fault
// surfaces: a dropped Submit error loses a typed rejection (queue full,
// quota, unknown graph), a dropped Load/Evict error desynchronizes the
// catalog the jobs resolve against.
type GraphSpec struct{}

type Handle struct{}

type Job struct{}

type Catalog struct{}

func (c *Catalog) Load(spec GraphSpec) (*Handle, error) { return nil, nil }
func (c *Catalog) Evict(name string) error              { return nil }

type Server struct{}

func (s *Server) Submit(body []byte) (*Job, error) { return nil, nil }

type Scheduler struct{}

func (s *Scheduler) Submit(req *GraphSpec) (*Job, error) { return nil, nil }

func badServe(c *Catalog, srv *Server, sch *Scheduler) {
	c.Load(GraphSpec{})        // want `Catalog.Load error discarded`
	_, _ = c.Load(GraphSpec{}) // want `Catalog.Load error assigned to _`
	c.Evict("g")               // want `Catalog.Evict error discarded`
	srv.Submit(nil)            // want `Server.Submit error discarded`
	sch.Submit(nil)            // want `Scheduler.Submit error discarded`
	defer c.Evict("g")         // want `Catalog.Evict error discarded by defer`
}

func goodServe(c *Catalog, srv *Server) error {
	if _, err := c.Load(GraphSpec{}); err != nil {
		return err
	}
	c.Evict("g") //flash:ignore-err eviction during shutdown is best-effort
	_, err := srv.Submit(nil)
	return err
}

// BlockGraph stands in for graph.BlockGraph (the out-of-core read surface);
// Catalog for serve.Catalog (the graph registration surface). WriteBlockFile
// is a package-level function, matched by (package name, function name).
type BlockGraph struct{}

func (g *BlockGraph) ReadBlock(d, idx int) ([]byte, error) { return nil, nil }

func (c *Catalog) Add(name string, g *BlockGraph) error { return nil }

func badBlockIO(bg *BlockGraph, cat *Catalog) {
	bg.ReadBlock(0, 1)                    // want `BlockGraph.ReadBlock error discarded`
	_, _ = bg.ReadBlock(0, 2)             // want `BlockGraph.ReadBlock error assigned to _`
	cat.Add("g", bg)                      // want `Catalog.Add error discarded`
	graph.WriteBlockFile("p.blk", nil)    // want `graph.WriteBlockFile error discarded`
	go graph.WriteBlockFile("q.blk", nil) // want `graph.WriteBlockFile error discarded by go statement`
}

func goodBlockIO(bg *BlockGraph, cat *Catalog) error {
	blk, err := bg.ReadBlock(0, 1)
	if err != nil {
		return err
	}
	_ = blk
	if err := graph.WriteBlockFile("p.blk", nil); err != nil {
		return err
	}
	cat.Add("tmp", bg) //flash:ignore-err registration retried on next request
	return cat.Add("g", bg)
}

// TCP stands in for comm.TCP in cluster mode (ConnectPeers forms the
// cross-process mesh); Coordinator for cluster.Coordinator (Run returns the
// job verdict, Interrupt delivers a drain signal to one worker).
type TCP struct{}

func (t *TCP) ConnectPeers(addrs []string, timeoutNs int64) error { return nil }

type Coordinator struct{}

func (c *Coordinator) Run() ([]byte, error)  { return nil, nil }
func (c *Coordinator) Interrupt(w int) error { return nil }
func (c *Coordinator) Restarts() int         { return 0 }

func badCluster(ep *TCP, co *Coordinator) {
	ep.ConnectPeers(nil, 0)     // want `TCP.ConnectPeers error discarded`
	_ = ep.ConnectPeers(nil, 1) // want `TCP.ConnectPeers error assigned to _`
	co.Run()                    // want `Coordinator.Run error discarded`
	_, _ = co.Run()             // want `Coordinator.Run error assigned to _`
	co.Interrupt(1)             // want `Coordinator.Interrupt error discarded`
	go co.Run()                 // want `Coordinator.Run error discarded by go statement`
}

func goodCluster(ep *TCP, co *Coordinator) ([]byte, error) {
	if err := ep.ConnectPeers(nil, 0); err != nil {
		return nil, err
	}
	_ = co.Restarts() // not a fault surface: plain counter read
	co.Interrupt(0)   //flash:ignore-err drain signal to an already-dead worker is fine
	return co.Run()
}
