package flash

import (
	"flash/graph"
	"flash/internal/core"
)

// StepOption tunes a single primitive call without disturbing the
// paper-shaped positional signature.
type StepOption func(*core.StepOpts)

// NoSync marks a step's updates as master-local: the Table II analysis
// found no critical property, so mirror synchronization is skipped.
func NoSync() StepOption { return func(o *core.StepOpts) { o.NoSync = true } }

// ForceMode overrides the propagation mode for one EdgeMap.
func ForceMode(m Mode) StepOption { return func(o *core.StepOpts) { o.Mode = m } }

func stepOpts(opts []StepOption) core.StepOpts {
	var o core.StepOpts
	for _, f := range opts {
		f(&o)
	}
	return o
}

// ---- vertexSubset constructors and auxiliary set operators (§III-A) ----

// All returns the subset containing every vertex (the paper's V).
func (e *Engine[V]) All() *VertexSubset { return e.c.All() }

// None returns the empty subset.
func (e *Engine[V]) None() *VertexSubset { return e.c.Empty() }

// FromIDs builds a subset from explicit vertex ids.
func (e *Engine[V]) FromIDs(ids ...VID) *VertexSubset { return e.c.FromIDs(ids...) }

// Size returns |U| (the SIZE primitive; also available as U.Size()).
func (e *Engine[V]) Size(U *VertexSubset) int { return U.Size() }

// Union returns a ∪ b.
func (e *Engine[V]) Union(a, b *VertexSubset) *VertexSubset { return e.c.Union(a, b) }

// Minus returns a \ b.
func (e *Engine[V]) Minus(a, b *VertexSubset) *VertexSubset { return e.c.Minus(a, b) }

// Intersect returns a ∩ b (the paper's INTERSACT).
func (e *Engine[V]) Intersect(a, b *VertexSubset) *VertexSubset { return e.c.Intersect(a, b) }

// Contain reports membership of v in U (the paper's CONTAIN).
func (e *Engine[V]) Contain(U *VertexSubset, v VID) bool { return e.c.Contains(U, v) }

// Add inserts v into U.
func (e *Engine[V]) Add(U *VertexSubset, v VID) { e.c.Add(U, v) }

// IDs returns U's members in ascending order (result extraction).
func (e *Engine[V]) IDs(U *VertexSubset) []VID { return e.c.IDs(U) }

// ---- edge sets ----

// E returns the graph's own edge set: the in-memory CSR iterator, or the
// block-backed iterator when the engine was configured with an out-of-core
// backend (WithBlockBackend / a block-graph handle).
func (e *Engine[V]) E() EdgeSet[V] { return e.c.E() }

// Reverse returns the reversal of h (the paper's reverse(E)).
func Reverse[V any](h EdgeSet[V]) EdgeSet[V] { return core.ReverseE(h) }

// JoinEU restricts h to edges whose target is in U (the paper's join(E,U)).
func (e *Engine[V]) JoinEU(h EdgeSet[V], U *VertexSubset) EdgeSet[V] {
	return core.JoinEU(h, func(d graph.VID) bool { return e.c.Contains(U, d) })
}

// JoinEE composes two edge sets into two-hop edges (the paper's join(E,E)).
func JoinEE[V any](a, b EdgeSet[V]) EdgeSet[V] { return core.JoinEE(a, b) }

// OutEdges builds a virtual edge set from a per-source target function, e.g.
// the paper's join(U, p) with targets(u) = {u.p}. Push-mode only; requires
// WithFullMirrors.
func OutEdges[V any](targets func(c *Ctx[V], u VID) []VID) EdgeSet[V] {
	return core.OutFunc(targets)
}

// InEdges builds a virtual edge set from a per-target source function, e.g.
// the paper's join(p, U) with sources(v) = {v.p}. Pull-mode only; requires
// WithFullMirrors.
func InEdges[V any](sources func(c *Ctx[V], d VID) []VID) EdgeSet[V] {
	return core.InFunc(sources)
}

// ---- primitives ----

// VertexMap applies M to every vertex of U passing F and returns the subset
// of vertices passing F. A nil F is CTRUE; a nil M keeps values unchanged
// (filter semantics). One superstep.
func (e *Engine[V]) VertexMap(U *VertexSubset, F func(Vertex[V]) bool, M func(Vertex[V]) V, opts ...StepOption) *VertexSubset {
	return e.c.VertexMap(U, F, M, stepOpts(opts))
}

// EdgeMap applies M over the active edges {(s,d) ∈ H | s ∈ U ∧ C(d)} passing
// F and returns the subset of updated targets, choosing push or pull by the
// density rule. R must be associative and commutative; a nil R forces pull
// mode. Nil F and C mean CTRUE.
func (e *Engine[V]) EdgeMap(U *VertexSubset, H EdgeSet[V],
	F func(s, d Vertex[V]) bool, M func(s, d Vertex[V]) V,
	C func(d Vertex[V]) bool, R func(t, cur V) V, opts ...StepOption) *VertexSubset {
	return e.c.EdgeMap(U, H, unweightedF(F), unweightedM(M), C, R, stepOpts(opts))
}

// EdgeMapDense forces the pull kernel (paper Algorithm 5).
func (e *Engine[V]) EdgeMapDense(U *VertexSubset, H EdgeSet[V],
	F func(s, d Vertex[V]) bool, M func(s, d Vertex[V]) V,
	C func(d Vertex[V]) bool, opts ...StepOption) *VertexSubset {
	return e.c.EdgeMapDense(U, H, unweightedF(F), unweightedM(M), C, stepOpts(opts))
}

// EdgeMapSparse forces the push kernel (paper Algorithm 6).
func (e *Engine[V]) EdgeMapSparse(U *VertexSubset, H EdgeSet[V],
	F func(s, d Vertex[V]) bool, M func(s, d Vertex[V]) V,
	C func(d Vertex[V]) bool, R func(t, cur V) V, opts ...StepOption) *VertexSubset {
	return e.c.EdgeMapSparse(U, H, unweightedF(F), unweightedM(M), C, R, stepOpts(opts))
}

// EdgeMapW is EdgeMap with edge weights passed to F and M (weighted graphs;
// unweighted graphs pass 0).
func (e *Engine[V]) EdgeMapW(U *VertexSubset, H EdgeSet[V],
	F func(s, d Vertex[V], w float32) bool, M func(s, d Vertex[V], w float32) V,
	C func(d Vertex[V]) bool, R func(t, cur V) V, opts ...StepOption) *VertexSubset {
	return e.c.EdgeMap(U, H, F, M, C, R, stepOpts(opts))
}

// EdgeMapDenseW is EdgeMapDense with edge weights.
func (e *Engine[V]) EdgeMapDenseW(U *VertexSubset, H EdgeSet[V],
	F func(s, d Vertex[V], w float32) bool, M func(s, d Vertex[V], w float32) V,
	C func(d Vertex[V]) bool, opts ...StepOption) *VertexSubset {
	return e.c.EdgeMapDense(U, H, F, M, C, stepOpts(opts))
}

// EdgeMapSparseW is EdgeMapSparse with edge weights.
func (e *Engine[V]) EdgeMapSparseW(U *VertexSubset, H EdgeSet[V],
	F func(s, d Vertex[V], w float32) bool, M func(s, d Vertex[V], w float32) V,
	C func(d Vertex[V]) bool, R func(t, cur V) V, opts ...StepOption) *VertexSubset {
	return e.c.EdgeMapSparse(U, H, F, M, C, R, stepOpts(opts))
}

func unweightedF[V any](f func(s, d Vertex[V]) bool) core.EdgeF[V] {
	if f == nil {
		return nil
	}
	return func(s, d Vertex[V], _ float32) bool { return f(s, d) }
}

func unweightedM[V any](m func(s, d Vertex[V]) V) core.EdgeM[V] {
	if m == nil {
		return nil
	}
	return func(s, d Vertex[V], _ float32) V { return m(s, d) }
}

// ---- driver-side state access and aggregation ----

// Get returns v's current state (driver-side, always exact).
func (e *Engine[V]) Get(v VID) V { return e.c.Get(v) }

// Set overwrites v's state on its master and mirrors (driver-side seeding).
func (e *Engine[V]) Set(v VID, val V) { e.c.Set(v, val) }

// Gather calls f for every vertex in ascending order with the master state.
func (e *Engine[V]) Gather(f func(v VID, val *V)) { e.c.Gather(f) }

// Fold reduces over all vertices' master states on the driver.
func Fold[V, T any](e *Engine[V], init T, f func(acc T, v VID, val *V) T) T {
	return core.Fold(e.c, init, f)
}

// SumInt64 folds an int64 projection over all vertices.
func (e *Engine[V]) SumInt64(f func(v VID, val *V) int64) int64 {
	return Fold(e, int64(0), func(acc int64, v VID, val *V) int64 { return acc + f(v, val) })
}

// SumFloat64 folds a float64 projection over all vertices.
func (e *Engine[V]) SumFloat64(f func(v VID, val *V) float64) float64 {
	return Fold(e, float64(0), func(acc float64, v VID, val *V) float64 { return acc + f(v, val) })
}

// CountIf counts vertices whose state satisfies pred.
func (e *Engine[V]) CountIf(pred func(v VID, val *V) bool) int {
	return Fold(e, 0, func(acc int, v VID, val *V) int {
		if pred(v, val) {
			return acc + 1
		}
		return acc
	})
}

// VertexMapC is VertexMap with context-passing callbacks that may read
// arbitrary vertices through c.Get (reliable under WithFullMirrors); the
// paper's CL uses it to intersect remote neighbor lists.
func (e *Engine[V]) VertexMapC(U *VertexSubset, F func(c *Ctx[V], v Vertex[V]) bool, M func(c *Ctx[V], v Vertex[V]) V, opts ...StepOption) *VertexSubset {
	return e.c.VertexMapC(U, F, M, stepOpts(opts))
}
