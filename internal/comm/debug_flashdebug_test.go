//go:build flashdebug

package comm

import "testing"

// TestPutBufPoisons verifies the flashdebug recycle poisoning: an alias
// retained past PutBuf must observe PoisonByte, not the old payload.
func TestPutBufPoisons(t *testing.T) {
	b := GetBuf()
	for i := 0; i < MinPooledCap; i++ {
		b = append(b, byte(i))
	}
	alias := b[:MinPooledCap]
	PutBuf(b)
	for i, got := range alias {
		if got != PoisonByte {
			t.Fatalf("alias[%d] = %#x after PutBuf, want poison %#x", i, got, PoisonByte)
		}
	}
}
