//go:build flashdebug

package comm

// debugPoison enables frame poisoning: every buffer returned to the pool is
// overwritten with PoisonByte first, so a handler that retained an alias past
// recycling (the poolescape contract) reads garbage immediately instead of
// silently observing the next round's bytes.
const debugPoison = true

// PoisonByte is the fill value stamped over recycled frames under flashdebug.
const PoisonByte = 0xDD

func poisonFrame(b []byte) {
	for i := range b {
		b[i] = PoisonByte
	}
}
