package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps harness tests fast: a fraction of the default scale is
// impossible (scale is integral), so shrink via dataset subset + budget.
func tinyOptions() Options {
	return Options{
		Scale:    1,
		Budget:   30 * time.Second,
		Run:      RunConfig{Workers: 2, Threads: 1, LPAIter: 3, CLK: 3},
		Datasets: []string{"OR"},
	}
}

func TestDatasetsBuild(t *testing.T) {
	for _, d := range Datasets {
		g := d.Build(1)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", d.Abbr)
		}
	}
	if _, ok := DatasetByAbbr("OR"); !ok {
		t.Fatal("OR missing")
	}
	if _, ok := DatasetByAbbr("ZZ"); ok {
		t.Fatal("phantom dataset")
	}
}

func TestDatasetRegimes(t *testing.T) {
	// The three structural regimes of Table III must hold: social graphs
	// are skewed, road graphs have tiny max degree, web graphs in between.
	or, _ := DatasetByAbbr("OR")
	us, _ := DatasetByAbbr("US")
	gOR, gUS := or.Build(1), us.Build(1)
	_, maxOR := gOR.MaxOutDegree()
	_, maxUS := gUS.MaxOutDegree()
	avgOR := float64(gOR.NumEdges()) / float64(gOR.NumVertices())
	if float64(maxOR) < 5*avgOR {
		t.Errorf("OR not skewed: max %d avg %.1f", maxOR, avgOR)
	}
	if maxUS > 10 {
		t.Errorf("US max degree %d too high for a road network", maxUS)
	}
}

func TestRunAppAllSupportedOnTinyGraph(t *testing.T) {
	d, _ := DatasetByAbbr("OR")
	g := d.Build(1)
	rc := RunConfig{Workers: 2, LPAIter: 2, CLK: 3}
	for _, sys := range Systems {
		for _, app := range append(append([]App{}, TableVApps...), TableVIApps...) {
			if !Supports(sys, app) {
				if err := RunApp(sys, app, g, rc); err == nil {
					t.Errorf("%s/%s: unsupported combination ran", sys, app)
				}
				continue
			}
			if sys != Flash && (app == AppKC || app == AppTC || app == AppBC || app == AppSCC || app == AppBCC || app == AppMSF) {
				continue // slow baseline paths are covered by their own tests
			}
			if err := RunApp(sys, app, g, rc); err != nil {
				t.Errorf("%s/%s: %v", sys, app, err)
			}
		}
	}
}

func TestGridAndFig1(t *testing.T) {
	grid := RunGrid([]App{AppBFS, AppCC}, tinyOptions())
	var buf bytes.Buffer
	grid.Print(&buf)
	out := buf.String()
	for _, want := range []string{"BFS", "CC", "OR", "FLASH", "Pregel+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("grid output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	Fig1(grid, &buf)
	if !strings.Contains(buf.String(), "x") {
		t.Fatalf("fig1 output lacks slowdowns:\n%s", buf.String())
	}
	wins, close2 := WinRate(grid)
	if wins < 0 || wins > 1 || close2 < wins {
		t.Fatalf("win rates out of range: %g %g", wins, close2)
	}
}

func TestTableIII(t *testing.T) {
	var buf bytes.Buffer
	TableIII(&buf, 1)
	if !strings.Contains(buf.String(), "road-usa-sim") {
		t.Fatalf("table III:\n%s", buf.String())
	}
}

func TestTableI(t *testing.T) {
	var buf bytes.Buffer
	if err := TableI(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CC-opt", "MM-opt", "RC", "CL", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table I missing %q:\n%s", want, out)
		}
	}
	// Productivity shape: FLASH's BFS must be among the shortest.
	t.Log("\n" + out)
}

func TestFiguresRun(t *testing.T) {
	opt := tinyOptions()
	var buf bytes.Buffer
	Fig3(&buf, opt)
	if !strings.Contains(buf.String(), "dual(auto)") {
		t.Fatalf("fig3:\n%s", buf.String())
	}
	buf.Reset()
	if err := Fig4a(&buf, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MM-opt") {
		t.Fatalf("fig4a:\n%s", buf.String())
	}
	buf.Reset()
	if err := Breakdown(&buf, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "communication") {
		t.Fatalf("breakdown:\n%s", buf.String())
	}
	buf.Reset()
	if err := Ablation(&buf, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "broadcast sync") {
		t.Fatalf("ablation:\n%s", buf.String())
	}
	buf.Reset()
	if err := CCOptRounds(&buf, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CC-opt rounds") {
		t.Fatalf("ccopt:\n%s", buf.String())
	}
}

func TestTimedCell(t *testing.T) {
	c := timedCell(time.Second, func() error { return nil })
	if c.Status != "" || c.Seconds < 0 {
		t.Fatalf("cell %+v", c)
	}
	c = timedCell(10*time.Millisecond, func() error {
		time.Sleep(time.Second)
		return nil
	})
	if c.Status != "OT" {
		t.Fatalf("timeout cell %+v", c)
	}
	c = timedCell(time.Second, func() error { return errUnsupported })
	if c.Status != "ERR" {
		t.Fatalf("error cell %+v", c)
	}
}
