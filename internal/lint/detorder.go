package lint

import (
	"go/ast"
	"go/types"
)

// DetOrder enforces the PR-2/PR-3 determinism contract: the bytes a worker
// ships must be a deterministic function of engine state, because the golden
// matrix asserts byte-identical message streams across runs and the replay
// recovery path re-executes supersteps expecting identical frames. Go
// randomizes map iteration order, so a single `range m` over a map anywhere
// in the frame-encode or ship-order path silently breaks both.
//
// Functions whose doc comment carries //flash:deterministic are roots;
// the analyzer walks the package-local static call graph (direct calls and
// function-value references) and flags every map range statement inside a
// root or anything reachable from one. Cross-package encode helpers carry
// their own //flash:deterministic marker in their home package. Test files
// are never analyzed, so map-keyed subtest tables stay exempt.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "no map iteration reachable from //flash:deterministic encode/ship-order code",
	Run:  runDetOrder,
}

func runDetOrder(pass *Pass) error {
	// Collect every function declaration and its object.
	decls := map[types.Object]*ast.FuncDecl{}
	var roots []types.Object
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fn
			if HasMarker(fn, "deterministic") {
				roots = append(roots, obj)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Build the reference graph: fn → package-local functions it mentions.
	// References (not just direct calls) over-approximate reachability, which
	// is the safe direction for a determinism contract: a function value
	// handed to parfor or Range is still executed on the path.
	refs := map[types.Object][]types.Object{}
	for obj, fn := range decls {
		seen := map[types.Object]bool{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			used := pass.Info.Uses[id]
			if used == nil || seen[used] {
				return true
			}
			if _, isFn := decls[used]; isFn {
				seen[used] = true
				refs[obj] = append(refs[obj], used)
			}
			return true
		})
	}

	// BFS from the roots.
	reachable := map[types.Object]bool{}
	queue := append([]types.Object(nil), roots...)
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		if reachable[obj] {
			continue
		}
		reachable[obj] = true
		queue = append(queue, refs[obj]...)
	}

	for obj := range reachable {
		fn := decls[obj]
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(rng.Pos(),
					"map iteration in %s is reachable from //flash:deterministic code; iterate a sorted slice instead (map order is randomized)",
					fn.Name.Name)
			}
			return true
		})
	}
	return nil
}
