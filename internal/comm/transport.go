package comm

import (
	"sync"
	"sync/atomic"
)

// Transport moves byte frames between workers in bulk-synchronous rounds.
//
// Protocol: within a round, a worker calls Send any number of times, then
// EndRound exactly once, then Drain exactly once. Drain blocks until the
// end-of-round marker has arrived from every peer (including the worker
// itself) and delivers every data frame of that round, per-sender in send
// order. All workers must execute the same number of rounds.
//
// Frames carry a round number so that a fast worker may run ahead into the
// next round without corrupting a slow receiver's current round (its early
// frames are stashed).
type Transport interface {
	// Workers returns the number of workers m.
	Workers() int
	// Send enqueues a data frame for `to`. The transport takes ownership of
	// data. Safe for concurrent use by threads of the same worker.
	Send(from, to int, data []byte)
	// EndRound marks `from` as finished sending for its current round.
	EndRound(from int)
	// Drain delivers all data frames of `to`'s current round and advances
	// the round. h must not retain data beyond the call.
	Drain(to int, h func(from int, data []byte))
	// Stats returns cumulative transfer statistics.
	Stats() Stats
	// Close releases transport resources. No calls may follow Close.
	Close() error
}

// Stats are cumulative counters for a transport.
type Stats struct {
	FramesSent uint64
	BytesSent  uint64
}

type frame struct {
	from  int
	round uint32
	data  []byte // nil means end-of-round marker
}

// mailbox is an unbounded FIFO with blocking receive.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []frame
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(f frame) {
	m.mu.Lock()
	m.queue = append(m.queue, f)
	m.mu.Unlock()
	m.cond.Signal()
}

func (m *mailbox) pop() frame {
	m.mu.Lock()
	for len(m.queue) == 0 {
		m.cond.Wait()
	}
	f := m.queue[0]
	m.queue = m.queue[1:]
	m.mu.Unlock()
	return f
}

// Mem is the default in-process transport: per-worker mailboxes. It models
// the MPI wire with zero copies beyond the frame slices themselves.
type Mem struct {
	m      int
	boxes  []*mailbox
	rounds []atomic.Uint32 // per-sender current round
	recvRd []uint32        // per-receiver current round (single-threaded use)
	stash  [][]frame       // per-receiver frames for future rounds
	frames atomic.Uint64
	bytes  atomic.Uint64
}

// NewMem creates an in-memory transport for m workers.
func NewMem(m int) *Mem {
	t := &Mem{
		m:      m,
		boxes:  make([]*mailbox, m),
		rounds: make([]atomic.Uint32, m),
		recvRd: make([]uint32, m),
		stash:  make([][]frame, m),
	}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	return t
}

func (t *Mem) Workers() int { return t.m }

func (t *Mem) Send(from, to int, data []byte) {
	if data == nil {
		data = []byte{} // nil is reserved for end-of-round markers
	}
	t.frames.Add(1)
	t.bytes.Add(uint64(len(data)))
	t.boxes[to].push(frame{from: from, round: t.rounds[from].Load(), data: data})
}

func (t *Mem) EndRound(from int) {
	r := t.rounds[from].Load()
	for to := 0; to < t.m; to++ {
		t.boxes[to].push(frame{from: from, round: r, data: nil})
	}
	t.rounds[from].Store(r + 1)
}

func (t *Mem) Drain(to int, h func(from int, data []byte)) {
	r := t.recvRd[to]
	pending := t.m // end-of-round markers still expected

	// First serve stashed frames from earlier overruns.
	if st := t.stash[to]; len(st) > 0 {
		keep := st[:0]
		for _, f := range st {
			if f.round == r {
				if f.data == nil {
					pending--
				} else {
					h(f.from, f.data)
				}
			} else {
				keep = append(keep, f)
			}
		}
		t.stash[to] = keep
	}
	for pending > 0 {
		f := t.boxes[to].pop()
		if f.round != r {
			t.stash[to] = append(t.stash[to], f)
			continue
		}
		if f.data == nil {
			pending--
		} else {
			h(f.from, f.data)
		}
	}
	t.recvRd[to] = r + 1
}

func (t *Mem) Stats() Stats {
	return Stats{FramesSent: t.frames.Load(), BytesSent: t.bytes.Load()}
}

func (t *Mem) Close() error { return nil }
