package graph

import (
	"strings"
	"testing"
)

// FuzzLoadEdgeList throws arbitrary text at the edge-list parser: it must
// never panic, and on success the loaded graph must satisfy the CSR
// invariants (degree sums equal edge counts, adjacency sorted).
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n", true)
	f.Add("# comment\n3 4 0.5\n", false)
	f.Add("x y\n", false)
	f.Fuzz(func(t *testing.T, text string, directed bool) {
		if len(text) > 1<<12 {
			return
		}
		g, err := LoadEdgeList(strings.NewReader(text), LoadOptions{Directed: directed, Weighted: true, MaxVertices: 1 << 16})
		if err != nil {
			return
		}
		sum := 0
		for v := 0; v < g.NumVertices(); v++ {
			adj := g.OutNeighbors(VID(v))
			sum += len(adj)
			for i := 1; i < len(adj); i++ {
				if adj[i-1] > adj[i] {
					t.Fatalf("unsorted adjacency of %d: %v", v, adj)
				}
			}
		}
		if sum != g.NumEdges() {
			t.Fatalf("degree sum %d != m %d", sum, g.NumEdges())
		}
	})
}
