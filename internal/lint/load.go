package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	Standard     bool
	Error        *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data produced by
// `go list -export` — no network, no source re-type-checking of
// dependencies. Only the package under analysis is parsed from source.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// LoadConfig selects what LoadWith analyzes beyond the default (non-test
// files under the default build tags).
type LoadConfig struct {
	// Tests includes _test.go files: in-package test files are type-checked
	// together with their package (mirroring how the compiler builds the test
	// binary), and external test packages (package foo_test) are loaded as
	// separate packages named "<path>_test", importing the test-augmented
	// export of the package under test.
	Tests bool
	// Tags is a comma-separated build tag list handed to `go list -tags`, so
	// tag-gated files (e.g. flashdebug) are part of the analyzed source.
	Tags string
}

// Load lists the packages matching patterns under dir (a directory inside
// the target module), type-checks each from source against export data for
// its dependencies, and returns them ready for RunAnalyzers. Test files are
// not analyzed: the invariants guard the shipped runtime, and test-only
// constructs (map-keyed subtest tables, ad-hoc allocation) are exempt by
// design. Use LoadWith to widen the net.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadWith(LoadConfig{}, dir, patterns...)
}

// LoadWith is Load with explicit test/tag selection.
func LoadWith(cfg LoadConfig, dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tagArgs []string
	if cfg.Tags != "" {
		tagArgs = []string{"-tags", cfg.Tags}
	}

	depArgs := append(append([]string{}, tagArgs...), "-deps", "-export")
	if cfg.Tests {
		depArgs = append(depArgs, "-test")
	}
	depArgs = append(depArgs, "-json=ImportPath,Export,Standard")
	deps, err := goList(dir, append(depArgs, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	// testExports maps "q" to the export of the test-augmented variant
	// "q [q.test]" — what an external test package importing q must see.
	testExports := map[string]string{}
	for _, p := range deps {
		if p.Export == "" {
			continue
		}
		if i := strings.IndexByte(p.ImportPath, ' '); i >= 0 {
			base := p.ImportPath[:i] // "q [q.test]" → "q"
			if _, dup := testExports[base]; !dup {
				testExports[base] = p.Export
			}
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test-main package
		}
		exports[p.ImportPath] = p.Export
	}

	targetArgs := append(append([]string{}, tagArgs...),
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Standard")
	targets, err := goList(dir, append(targetArgs, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Standard {
			continue
		}
		srcs := joinDir(t.Dir, t.GoFiles)
		if cfg.Tests {
			srcs = append(srcs, joinDir(t.Dir, t.TestGoFiles)...)
		}
		if len(srcs) > 0 {
			pkg, err := checkPackage(fset, imp, t.ImportPath, srcs)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if cfg.Tests && len(t.XTestGoFiles) > 0 {
			// The external test package sees the test-augmented export of the
			// package under test; a fresh importer keeps its cache separate.
			xexports := make(map[string]string, len(exports)+1)
			for k, v := range exports {
				xexports[k] = v
			}
			if te, ok := testExports[t.ImportPath]; ok {
				xexports[t.ImportPath] = te
			}
			ximp := exportImporter(fset, xexports)
			pkg, err := checkPackage(fset, ximp, t.ImportPath+"_test", joinDir(t.Dir, t.XTestGoFiles))
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func joinDir(dir string, names []string) []string {
	var out []string
	for _, n := range names {
		out = append(out, filepath.Join(dir, n))
	}
	return out
}

// LoadDir type-checks a standalone fixture directory (non-test files only)
// as a single package, resolving its imports through export data obtained
// from `go list` run inside moduleDir. Used by the analysistest-style
// fixture runner.
func LoadDir(moduleDir, fixtureDir string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var srcs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		srcs = append(srcs, filepath.Join(fixtureDir, name))
	}
	sort.Strings(srcs)
	if len(srcs) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", fixtureDir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, src := range srcs {
		f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		args := []string{"-deps", "-export", "-json=ImportPath,Export,Standard"}
		for path := range importSet {
			args = append(args, path)
		}
		deps, err := goList(moduleDir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	return checkPackageFiles(fset, imp, "fixture/"+filepath.Base(fixtureDir), files)
}

// treeImporter resolves fixture-local import paths to already-checked local
// packages and everything else through export data.
type treeImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (ti *treeImporter) Import(path string) (*types.Package, error) {
	if p, ok := ti.local[path]; ok {
		return p, nil
	}
	return ti.fallback.Import(path)
}

// LoadTree type-checks a fixture directory together with its immediate
// subdirectories as a small multi-package module: a subdirectory sub/ of
// fixture dir f/ is importable as "<base(f)>/sub". Subpackages are checked
// before the root (in name order — cross-subpackage imports must respect
// it), which is how fixtures model cross-package dataflow without living
// inside the real module. Non-fixture imports resolve through `go list`
// export data obtained from moduleDir, so fixtures may also import real
// module packages.
func LoadTree(moduleDir, fixtureDir string) ([]*Package, error) {
	base := filepath.Base(fixtureDir)
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	type rawPkg struct {
		path string
		dir  string
	}
	pkgDirs := []rawPkg{}
	for _, e := range entries {
		if e.IsDir() {
			pkgDirs = append(pkgDirs, rawPkg{path: base + "/" + e.Name(), dir: filepath.Join(fixtureDir, e.Name())})
		}
	}
	sort.Slice(pkgDirs, func(i, j int) bool { return pkgDirs[i].path < pkgDirs[j].path })
	pkgDirs = append(pkgDirs, rawPkg{path: base, dir: fixtureDir}) // root last

	fset := token.NewFileSet()
	localPaths := map[string]bool{}
	for _, pd := range pkgDirs {
		localPaths[pd.path] = true
	}
	parsed := make([][]*ast.File, len(pkgDirs))
	importSet := map[string]bool{}
	for i, pd := range pkgDirs {
		dirEntries, err := os.ReadDir(pd.dir)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range dirEntries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(pd.dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			parsed[i] = append(parsed[i], f)
			for _, imp := range f.Imports {
				if path := strings.Trim(imp.Path.Value, `"`); !localPaths[path] {
					importSet[path] = true
				}
			}
		}
	}
	if len(parsed[len(parsed)-1]) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", fixtureDir)
	}

	exports := map[string]string{}
	if len(importSet) > 0 {
		args := []string{"-deps", "-export", "-json=ImportPath,Export,Standard"}
		for path := range importSet {
			args = append(args, path)
		}
		deps, err := goList(moduleDir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	ti := &treeImporter{local: map[string]*types.Package{}, fallback: exportImporter(fset, exports)}
	var pkgs []*Package
	for i, pd := range pkgDirs {
		if len(parsed[i]) == 0 {
			continue
		}
		pkg, err := checkPackageFiles(fset, ti, pd.path, parsed[i])
		if err != nil {
			return nil, err
		}
		ti.local[pd.path] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, path string, srcs []string) (*Package, error) {
	var files []*ast.File
	for _, src := range srcs {
		f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return checkPackageFiles(fset, imp, path, files)
}

func checkPackageFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
