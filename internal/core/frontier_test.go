package core

import (
	"math/rand"
	"testing"

	"flash/graph"
)

// encodeDecodeRoundTrip pushes a bit pattern through the frontier codec and
// returns the decoded words.
func frontierRoundTrip(t *testing.T, words []uint64) []uint64 {
	t.Helper()
	lo, hi := 0, len(words)
	for lo < hi && words[lo] == 0 {
		lo++
	}
	for hi > lo && words[hi-1] == 0 {
		hi--
	}
	got := make([]uint64, len(words))
	if hi == lo {
		return got
	}
	frame := encodeFrontier(nil, words, lo, hi)
	if err := decodeFrontier(frame, got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestFrontierCodecRoundTrip(t *testing.T) {
	cases := map[string][]uint64{
		"empty":      make([]uint64, 8),
		"single":     {0, 1 << 17, 0, 0},
		"full":       {^uint64(0), ^uint64(0), ^uint64(0)},
		"sparse":     {1, 0, 0, 0, 0, 0, 0, 1 << 63},
		"span_start": {^uint64(0), 0, 0, 0},
		"span_end":   {0, 0, 0, ^uint64(0)},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		words := make([]uint64, 16)
		for j := 0; j < 1+i*10; j++ {
			words[rng.Intn(len(words))] |= 1 << uint(rng.Intn(64))
		}
		cases[string(rune('a'+i))+"_random"] = words
	}
	for name, words := range cases {
		got := frontierRoundTrip(t, words)
		for i := range words {
			if got[i] != words[i] {
				t.Fatalf("%s: word %d = %#x, want %#x", name, i, got[i], words[i])
			}
		}
	}
}

func TestFrontierCodecPicksSmaller(t *testing.T) {
	// A lone member in a wide span must be shipped as a sparse list...
	words := make([]uint64, 64)
	words[0], words[63] = 1, 1<<63
	frame := encodeFrontier(nil, words, 0, 64)
	if frame[0] != frontierSparse {
		t.Fatalf("2 members over 64 words encoded dense (%d bytes)", len(frame))
	}
	if len(frame) >= 5+8*64 {
		t.Fatalf("sparse frame not smaller than dense: %d bytes", len(frame))
	}
	// ...and a saturated span must stay dense.
	for i := range words {
		words[i] = ^uint64(0)
	}
	frame = encodeFrontier(nil, words, 0, 64)
	if frame[0] != frontierDense {
		t.Fatal("full bitmap encoded sparse")
	}
	if len(frame) != 5+8*64 {
		t.Fatalf("dense frame is %d bytes, want %d", len(frame), 5+8*64)
	}
}

func TestFrontierDecodeRejectsCorruptFrames(t *testing.T) {
	// Decode may OR bits in before detecting later corruption — the superstep
	// fails wholesale on error — so only the error itself is asserted here.
	for name, frame := range map[string][]byte{
		"empty":            {},
		"unknown_tag":      {0x7f, 1, 2, 3},
		"dense_truncated":  {frontierDense, 1, 0},
		"dense_misaligned": {frontierDense, 0, 0, 0, 0, 1, 2, 3},
		"dense_oob_offset": {frontierDense, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8},
		"sparse_truncated": {frontierSparse, 3, 5},
		"sparse_oob_vid":   {frontierSparse, 1, 0xff, 0xff, 0x7f},
		"sparse_trailing":  {frontierSparse, 1, 5, 9, 9},
		"sparse_bad_count": {frontierSparse, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	} {
		if err := decodeFrontier(frame, make([]uint64, 4)); err == nil {
			t.Errorf("%s: corrupt frame decoded without error", name)
		}
	}
}

func FuzzFrontierDecode(f *testing.F) {
	full := make([]uint64, 4)
	full[1] = 0xdeadbeef
	f.Add(encodeFrontier(nil, full, 1, 2))
	f.Add([]byte{frontierSparse, 3, 1, 1, 1})
	f.Add([]byte{frontierDense, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		words := make([]uint64, 8)
		// Must never panic or write out of bounds, whatever the input.
		_ = decodeFrontier(data, words)
	})
}

// TestSparseFrontierPullStep drives a real pull superstep over a tiny
// frontier across workers, covering the sparse frame path end-to-end (every
// worker decodes the others' sparse lists into its global bitmap).
func TestSparseFrontierPullStep(t *testing.T) {
	g := graph.GenErdosRenyi(256, 1024, 3)
	for _, workers := range []int{2, 4} {
		e := mustEngine(t, g, Config{Workers: workers})
		e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps {
			if v.ID == 0 {
				return bfsProps{}
			}
			return bfsProps{Dis: inf}
		}, StepOpts{})
		u := e.FromIDs(0)
		// R == nil forces pull mode regardless of |U|: a one-vertex frontier
		// ships as a sparse vid list.
		u = e.EdgeMap(u, BaseE[bfsProps](),
			func(s, d Vtx[bfsProps], _ float32) bool { return d.Val.Dis > s.Val.Dis+1 },
			func(s, d Vtx[bfsProps], _ float32) bfsProps { return bfsProps{Dis: s.Val.Dis + 1} },
			nil, nil, StepOpts{})
		for _, v := range e.IDs(u) {
			if e.Get(v).Dis != 1 {
				t.Fatalf("w=%d: vertex %d at distance %d after one pull step", workers, v, e.Get(v).Dis)
			}
		}
		e.Close()
	}
}
