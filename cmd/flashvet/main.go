// Command flashvet is the module's invariant checker: a multichecker of the
// custom analyzers in internal/lint, run the way `go vet` would be:
//
//	go run ./cmd/flashvet ./...
//
// It loads the packages matching the given patterns (default ./...) from
// source against compiler export data, builds the module-wide call graph and
// per-function dataflow summaries, applies every analyzer, prints one line
// per finding, and exits non-zero if anything was reported.
//
//	-tests  also analyze _test.go files (in-package and external test packages)
//	-tags   comma-separated build tags (e.g. flashdebug) for the load
//	-time   print per-analyzer wall time (the summary engine is "summaries")
//
// Diagnostics can be suppressed at the offending line with
// //flash:allow <analyzer> <reason>; commerr additionally honors
// //flash:ignore-err <reason>. Both demand a written reason so the waiver
// argument lives next to the code it excuses.
package main

import (
	"flag"
	"fmt"
	"os"

	"flash/internal/lint"
)

func main() {
	listOnly := flag.Bool("list", false, "list the registered analyzers and exit")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	tags := flag.String("tags", "", "comma-separated build tags for the load")
	timing := flag.Bool("time", false, "print per-analyzer wall time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: flashvet [-list] [-tests] [-tags taglist] [-time] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadWith(lint.LoadConfig{Tests: *tests, Tags: *tags}, ".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		os.Exit(2)
	}
	diags, timings, err := lint.RunAnalyzersTimed(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		os.Exit(2)
	}
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "flashvet: %-12s %8.1fms\n", tm.Name, float64(tm.Elapsed.Microseconds())/1000)
		}
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "flashvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
