package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP is a loopback-socket transport: every worker pair is connected with a
// real TCP connection and frames are length-prefixed on the wire. It is the
// closest in-process analog of the paper's MPI runtime and exists to make
// the serialization and network path genuine; the Mem transport is the
// default for benchmarks.
//
// Wire format per frame: round uint32 | flag byte (0 data, 1 end-of-round) |
// length uint32 | payload. The sender id is implicit per connection.
type TCP struct {
	m     int
	hub   *Mem // mailboxes, stash and drain logic are shared with Mem
	conns [][]*tcpConn
	lns   []net.Listener

	closeOnce sync.Once
	closeErr  error
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

func (tc *tcpConn) writeFrame(round uint32, flag byte, data []byte) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], round)
	hdr[4] = flag
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(data)))
	if _, err := tc.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := tc.w.Write(data); err != nil {
		return err
	}
	if flag == 1 {
		return tc.w.Flush() // round boundaries always flush
	}
	return nil
}

// NewTCP builds a full mesh of loopback connections among m workers.
func NewTCP(m int) (*TCP, error) {
	t := &TCP{m: m, hub: NewMem(m)}
	t.conns = make([][]*tcpConn, m)
	for i := range t.conns {
		t.conns[i] = make([]*tcpConn, m)
	}
	t.lns = make([]net.Listener, m)
	for i := 0; i < m; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("comm: listen for worker %d: %w", i, err)
		}
		t.lns[i] = ln
	}
	// Accept in background; worker j dials workers i < j.
	var wg sync.WaitGroup
	errs := make(chan error, m*m)
	for i := 0; i < m; i++ {
		i := i
		expect := m - 1 - i // peers j > i dial us
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < expect; k++ {
				c, err := t.lns[i].Accept()
				if err != nil {
					errs <- err
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(c, hello[:]); err != nil {
					errs <- err
					return
				}
				j := int(binary.LittleEndian.Uint32(hello[:]))
				t.conns[i][j] = &tcpConn{c: c, w: bufio.NewWriterSize(c, 1<<16)}
			}
		}()
	}
	for j := 0; j < m; j++ {
		for i := 0; i < j; i++ {
			c, err := net.Dial("tcp", t.lns[i].Addr().String())
			if err != nil {
				errs <- err
				continue
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(j))
			if _, err := c.Write(hello[:]); err != nil {
				errs <- err
				continue
			}
			t.conns[j][i] = &tcpConn{c: c, w: bufio.NewWriterSize(c, 1<<16)}
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Close()
		return nil, fmt.Errorf("comm: tcp mesh setup: %w", err)
	default:
	}
	// Start one reader per incoming connection direction.
	for me := 0; me < m; me++ {
		for peer := 0; peer < m; peer++ {
			if peer == me || t.conns[me][peer] == nil {
				continue
			}
			go t.readLoop(me, peer, t.conns[me][peer].c)
		}
	}
	return t, nil
}

func (t *TCP) readLoop(me, peer int, c net.Conn) {
	r := bufio.NewReaderSize(c, 1<<16)
	var hdr [9]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return // connection closed
		}
		round := binary.LittleEndian.Uint32(hdr[0:4])
		flag := hdr[4]
		n := binary.LittleEndian.Uint32(hdr[5:9])
		var data []byte
		if n > 0 {
			data = make([]byte, n)
			if _, err := io.ReadFull(r, data); err != nil {
				return
			}
		}
		if flag == 1 {
			data = nil
		} else if data == nil {
			data = []byte{}
		}
		t.hub.boxes[me].push(frame{from: peer, round: round, data: data})
	}
}

func (t *TCP) Workers() int { return t.m }

func (t *TCP) Send(from, to int, data []byte) {
	t.hub.frames.Add(1)
	t.hub.bytes.Add(uint64(len(data)))
	round := t.hub.rounds[from].Load()
	if from == to {
		if data == nil {
			data = []byte{}
		}
		t.hub.boxes[to].push(frame{from: from, round: round, data: data})
		return
	}
	if err := t.conns[from][to].writeFrame(round, 0, data); err != nil {
		panic(fmt.Sprintf("comm: tcp send %d->%d: %v", from, to, err))
	}
}

func (t *TCP) EndRound(from int) {
	r := t.hub.rounds[from].Load()
	for to := 0; to < t.m; to++ {
		if to == from {
			t.hub.boxes[to].push(frame{from: from, round: r, data: nil})
			continue
		}
		if err := t.conns[from][to].writeFrame(r, 1, nil); err != nil {
			panic(fmt.Sprintf("comm: tcp end-round %d->%d: %v", from, to, err))
		}
	}
	t.hub.rounds[from].Store(r + 1)
}

func (t *TCP) Drain(to int, h func(from int, data []byte)) { t.hub.Drain(to, h) }

func (t *TCP) Stats() Stats { return t.hub.Stats() }

func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		for _, ln := range t.lns {
			if ln != nil {
				if err := ln.Close(); err != nil && t.closeErr == nil {
					t.closeErr = err
				}
			}
		}
		for _, row := range t.conns {
			for _, c := range row {
				if c != nil {
					if err := c.c.Close(); err != nil && t.closeErr == nil {
						t.closeErr = err
					}
				}
			}
		}
	})
	return t.closeErr
}
