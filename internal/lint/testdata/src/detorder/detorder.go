// Fixture for the detorder analyzer: no map iteration in (or reachable
// from) //flash:deterministic frame-encode / ship-order code.
package detorder

import "detorder/detdep"

type VID uint32

func appendRecord(dst []byte, v VID, s int) []byte { return dst }
func routingTable() map[int]bool                   { return nil }

//flash:deterministic
func encodeStates(states map[VID]int, dst []byte) []byte {
	for v, s := range states { // want `map iteration in encodeStates`
		dst = appendRecord(dst, v, s)
	}
	return shipAll(dst)
}

// shipAll is not itself annotated, but it is reachable from encodeStates.
func shipAll(dst []byte) []byte {
	order := routingTable()
	for to := range order { // want `map iteration in shipAll`
		_ = to
	}
	return dst
}

// helperUnreached is never called from a deterministic root, so its map
// iteration is fine.
func helperUnreached(m map[int]int) int {
	t := 0
	for _, v := range m { // no diagnostic: unreachable from any root
		t += v
	}
	return t
}

//flash:deterministic
func encodeSorted(keys []VID, dst []byte) []byte {
	for _, k := range keys { // no diagnostic: slice iteration is ordered
		dst = appendRecord(dst, k, 0)
	}
	return dst
}

// Block-path pattern, modeled on the FLASHBLK writer: blocks must land in
// the file in ascending first-vertex order, so packing from a residency map
// would make the encoded image depend on map hash order and break the
// byte-identical re-encode guarantee.

//flash:deterministic
func packResidentBlocks(resident map[VID][]byte, dst []byte) []byte {
	for _, enc := range resident { // want `map iteration in packResidentBlocks`
		dst = append(dst, enc...)
	}
	return dst
}

//flash:deterministic
func packBlocksInOrder(blocks [][]byte, dst []byte) []byte {
	for _, enc := range blocks { // no diagnostic: slice order is the file order
		dst = append(dst, enc...)
	}
	return dst
}

// Cross-package reachability: the map iteration is in detorder/detdep, two
// call hops away. flashvet v1 analyzed one package at a time and missed it.
//
//flash:deterministic
func encodeCross(dst []byte) []byte {
	return detdep.ShipRouted(detdep.ShipSorted(dst))
}
