package comm

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

type flatProps struct {
	Dis   int32
	Num   uint64
	B     float64
	Seen  bool
	Level int16
	Small uint8
	F     float32
	N     int
}

type sliceProps struct {
	Out   []uint32
	Count int64
	Name  string
	Pair  [2]float32
	Nest  []inner
}

type inner struct {
	A int32
	B bool
}

func roundTrip[V any](t *testing.T, c Codec[V], v V) V {
	t.Helper()
	buf := c.Append(nil, &v)
	var got V
	n, err := c.Decode(buf, &got)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
	}
	return got
}

func TestReflectCodecFlat(t *testing.T) {
	c := NewReflectCodec[flatProps]()
	v := flatProps{Dis: -7, Num: math.MaxUint64, B: 3.14, Seen: true, Level: -300, Small: 255, F: -2.5, N: -1 << 40}
	got := roundTrip(t, c, v)
	if got != v {
		t.Fatalf("round trip: got %+v want %+v", got, v)
	}
}

func TestReflectCodecSlices(t *testing.T) {
	c := NewReflectCodec[sliceProps]()
	v := sliceProps{
		Out:   []uint32{1, 99, 1 << 30},
		Count: -5,
		Name:  "héllo",
		Pair:  [2]float32{1.5, -0.25},
		Nest:  []inner{{1, true}, {-2, false}},
	}
	got := roundTrip(t, c, v)
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip: got %+v want %+v", got, v)
	}
}

func TestReflectCodecEmptySlices(t *testing.T) {
	c := NewReflectCodec[sliceProps]()
	got := roundTrip(t, c, sliceProps{})
	if len(got.Out) != 0 || got.Name != "" {
		t.Fatalf("empty round trip: %+v", got)
	}
}

func TestCodecConcatenatedValues(t *testing.T) {
	// Frames hold many values back to back; decode must be self-delimiting.
	c := NewReflectCodec[sliceProps]()
	a := sliceProps{Out: []uint32{1, 2}, Name: "a"}
	b := sliceProps{Count: 9, Nest: []inner{{5, true}}}
	buf := c.Append(nil, &a)
	buf = c.Append(buf, &b)
	var ga, gb sliceProps
	n1, err := c.Decode(buf, &ga)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := c.Decode(buf[n1:], &gb)
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("consumed %d+%d of %d", n1, n2, len(buf))
	}
	if !reflect.DeepEqual(ga, a) || !reflect.DeepEqual(gb, b) {
		t.Fatalf("got %+v / %+v", ga, gb)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	c := NewReflectCodec[flatProps]()
	v := flatProps{Dis: 1}
	buf := c.Append(nil, &v)
	for cut := 0; cut < len(buf); cut++ {
		var got flatProps
		if _, err := c.Decode(buf[:cut], &got); err == nil {
			t.Fatalf("no error on truncation at %d", cut)
		}
	}
}

func TestUnsupportedKindsPanic(t *testing.T) {
	type withMap struct{ M map[int]int }
	type withPtr struct{ P *int }
	type withUnexported struct{ x int } //nolint:unused
	for name, f := range map[string]func(){
		"map":        func() { NewReflectCodec[withMap]() },
		"ptr":        func() { NewReflectCodec[withPtr]() },
		"unexported": func() { NewReflectCodec[withUnexported]() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

type customVal struct {
	X uint32
}

func (c *customVal) AppendBinary(dst []byte) []byte {
	return append(dst, byte(c.X), byte(c.X>>8), byte(c.X>>16), byte(c.X>>24))
}

func (c *customVal) DecodeBinary(src []byte) (int, error) {
	if len(src) < 4 {
		return 0, errShort
	}
	c.X = uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24
	return 4, nil
}

func TestCodecForPrefersMarshaler(t *testing.T) {
	c := CodecFor[customVal]()
	if _, ok := c.(marshalerCodec[customVal]); !ok {
		t.Fatalf("CodecFor returned %T, want marshalerCodec", c)
	}
	got := roundTrip[customVal](t, c, customVal{X: 0xDEADBEEF})
	if got.X != 0xDEADBEEF {
		t.Fatalf("got %x", got.X)
	}
	if _, ok := CodecFor[flatProps]().(*FixedCodec[flatProps]); !ok {
		t.Fatal("CodecFor for flat struct should use the fixed codec")
	}
	if _, ok := CodecFor[sliceProps]().(*ReflectCodec[sliceProps]); !ok {
		t.Fatal("CodecFor for slice-bearing struct should use reflection codec")
	}
}

// Property: arbitrary values survive a round trip.
func TestQuickRoundTrip(t *testing.T) {
	c := NewReflectCodec[sliceProps]()
	f := func(out []uint32, count int64, name string, p0, p1 float32, as []int32, bs []bool) bool {
		n := len(as)
		if len(bs) < n {
			n = len(bs)
		}
		nest := make([]inner, n)
		for i := 0; i < n; i++ {
			nest[i] = inner{as[i], bs[i]}
		}
		v := sliceProps{Out: out, Count: count, Name: name, Pair: [2]float32{p0, p1}, Nest: nest}
		buf := c.Append(nil, &v)
		var got sliceProps
		k, err := c.Decode(buf, &got)
		if err != nil || k != len(buf) {
			return false
		}
		if v.Out == nil {
			v.Out = []uint32{}
		}
		if got.Out == nil {
			got.Out = []uint32{}
		}
		if got.Nest == nil {
			got.Nest = []inner{}
		}
		if v.Nest == nil {
			v.Nest = []inner{}
		}
		return reflect.DeepEqual(v, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReflectCodecFlat(b *testing.B) {
	c := NewReflectCodec[flatProps]()
	v := flatProps{Dis: 42, Num: 7, B: 1.0}
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0], &v)
		var got flatProps
		if _, err := c.Decode(buf, &got); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalerCodec(b *testing.B) {
	c := CodecFor[customVal]()
	v := customVal{X: 7}
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0], &v)
		var got customVal
		if _, err := c.Decode(buf, &got); err != nil {
			b.Fatal(err)
		}
	}
}
