package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadOptions control edge-list parsing.
type LoadOptions struct {
	Directed bool
	Weighted bool // third column parsed as float weight when present
	Name     string
	// MaxVertices rejects inputs whose largest vertex id reaches this bound
	// (0 = unlimited). Set it when parsing untrusted input: vertex storage
	// is proportional to the largest id, not to the edge count.
	MaxVertices int
}

// LoadEdgeList parses a whitespace-separated edge list ("u v" or "u v w" per
// line; '#' and '%' lines are comments). The vertex count is one plus the
// largest id seen.
func LoadEdgeList(r io.Reader, opt LoadOptions) (*Graph, error) {
	type rawEdge struct {
		u, v VID
		w    float32
	}
	var edges []rawEdge
	maxID := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %w", line, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %w", line, fields[1], err)
		}
		w := float32(1)
		if opt.Weighted && len(fields) >= 3 {
			wf, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %w", line, fields[2], err)
			}
			w = float32(wf)
		}
		if opt.MaxVertices > 0 && (u >= uint64(opt.MaxVertices) || v >= uint64(opt.MaxVertices)) {
			return nil, fmt.Errorf("graph: line %d: vertex id beyond MaxVertices=%d", line, opt.MaxVertices)
		}
		edges = append(edges, rawEdge{VID(u), VID(v), w})
		if int(u) > maxID {
			maxID = int(u)
		}
		if int(v) > maxID {
			maxID = int(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b := NewBuilder(maxID + 1).Directed(opt.Directed).Weighted(opt.Weighted).Name(opt.Name)
	for _, e := range edges {
		b.AddEdgeW(e.u, e.v, e.w)
	}
	return b.Build(), nil
}

// LoadEdgeListFile opens path and parses it with LoadEdgeList. The dataset
// name defaults to the path when opt.Name is empty.
func LoadEdgeListFile(path string, opt LoadOptions) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	if opt.Name == "" {
		opt.Name = path
	}
	return LoadEdgeList(f, opt)
}

// WriteEdgeList writes the graph as a parseable edge list. Undirected graphs
// emit each edge once (u <= v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s\n", g.String()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v VID, wt float32) bool {
		if !g.Directed() && u > v {
			return true
		}
		if g.Weighted() {
			_, werr = fmt.Fprintf(bw, "%d %d %g\n", u, v, wt)
		} else {
			_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
