package gemini

import (
	"math"
	"testing"

	"flash/graph"
)

var cfg = Config{Threads: 3}

func TestBFS(t *testing.T) {
	for _, g := range []*graph.Graph{graph.GenPath(30), graph.GenErdosRenyi(90, 360, 1), graph.GenStar(15)} {
		got := BFS(g, 0, cfg)
		want := refBFS(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: dist[%d]=%d want %d", g.Name(), v, got[v], want[v])
			}
		}
	}
}

func refBFS(g *graph.Graph, root graph.VID) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	q := []graph.VID{root}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
		}
	}
	return dist
}

func TestCC(t *testing.T) {
	g := graph.GenErdosRenyi(80, 150, 2)
	got := CC(g, cfg)
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if got[u] != got[v] {
			t.Fatalf("edge (%d,%d) labels differ", u, v)
		}
		return true
	})
	for v, l := range got {
		if l > uint32(v) {
			t.Fatalf("label %d above member %d", l, v)
		}
	}
}

func TestBC(t *testing.T) {
	g := graph.GenErdosRenyi(50, 180, 3)
	got := BC(g, 0, cfg)
	// Compare against the sequential Brandes in the pregel tests' style.
	n := g.NumVertices()
	delta := make([]float64, n)
	sigma := make([]float64, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma[0] = 1
	dist[0] = 0
	var order []graph.VID
	q := []graph.VID{0}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		order = append(order, u)
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, v := range g.OutNeighbors(w) {
			if dist[v] == dist[w]+1 {
				delta[w] += sigma[w] / sigma[v] * (1 + delta[v])
			}
		}
	}
	for v := range delta {
		if math.Abs(got[v]-delta[v]) > 1e-6 {
			t.Fatalf("bc[%d]=%g want %g", v, got[v], delta[v])
		}
	}
}

func TestMIS(t *testing.T) {
	g := graph.GenErdosRenyi(70, 250, 4)
	in := MIS(g, cfg)
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if in[u] && in[v] {
			t.Fatalf("adjacent %d,%d in MIS", u, v)
		}
		return true
	})
	for v := 0; v < g.NumVertices(); v++ {
		if in[v] {
			continue
		}
		ok := false
		for _, u := range g.OutNeighbors(graph.VID(v)) {
			if in[u] {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("%d uncovered", v)
		}
	}
}

func TestMM(t *testing.T) {
	for _, g := range []*graph.Graph{graph.GenPath(9), graph.GenErdosRenyi(60, 200, 5)} {
		match := MM(g, cfg)
		for v := 0; v < g.NumVertices(); v++ {
			if p := match[v]; p != -1 && (match[p] != int32(v) || !g.HasEdge(graph.VID(v), graph.VID(p))) {
				t.Fatalf("%s: bad match %d<->%d", g.Name(), v, p)
			}
		}
		g.Edges(func(u, v graph.VID, _ float32) bool {
			if match[u] == -1 && match[v] == -1 {
				t.Fatalf("%s: not maximal at (%d,%d)", g.Name(), u, v)
			}
			return true
		})
	}
}

func TestFrontierOps(t *testing.T) {
	e := New(graph.GenPath(10), cfg)
	f := e.NewFrontier()
	f.Add(3)
	f.Add(3)
	if f.Count() != 1 || !f.Has(3) || f.Has(2) {
		t.Fatal("frontier ops wrong")
	}
	if e.Full().Count() != 10 {
		t.Fatal("full frontier wrong")
	}
}
