package partition

import (
	"reflect"
	"testing"

	"flash/graph"
)

// TestRebuildMatchesNew verifies cold restart's foundation: Rebuild(w) must
// reproduce exactly the Part that New computed, for every worker, on both
// placements, across random graphs — mirror set, mirror-worker lists (same
// order), and slot table.
func TestRebuildMatchesNew(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := graph.GenErdosRenyi(80, 300, seed)
		for _, m := range []int{1, 2, 3, 5} {
			for _, place := range []Placement{
				NewRange(g.NumVertices(), m),
				NewHash(g.NumVertices(), m),
			} {
				want := New(g, place)
				got := New(g, place)
				for w := 0; w < m; w++ {
					got.Rebuild(w)
				}
				if err := got.CheckInvariants(); err != nil {
					t.Fatalf("seed %d m=%d %T: rebuilt partition invalid: %v", seed, m, place, err)
				}
				for w := 0; w < m; w++ {
					a, b := want.Parts[w], got.Parts[w]
					if !a.Mirrors.Equal(b.Mirrors) {
						t.Fatalf("seed %d m=%d %T worker %d: mirror sets differ", seed, m, place, w)
					}
					if len(a.MirrorWorkers) != len(b.MirrorWorkers) {
						t.Fatalf("seed %d m=%d worker %d: mirror-worker list length differs", seed, m, w)
					}
					for l := range a.MirrorWorkers {
						aw, bw := a.MirrorWorkers[l], b.MirrorWorkers[l]
						if len(aw) == 0 && len(bw) == 0 {
							continue
						}
						if !reflect.DeepEqual(aw, bw) {
							t.Fatalf("seed %d m=%d worker %d master %d: mirror workers %v != %v",
								seed, m, w, l, bw, aw)
						}
					}
					if a.Slots.SlotCount() != b.Slots.SlotCount() {
						t.Fatalf("seed %d m=%d worker %d: slot count differs", seed, m, w)
					}
					for s := 0; s < a.Slots.SlotCount(); s++ {
						if a.Slots.GID(s) != b.Slots.GID(s) {
							t.Fatalf("seed %d m=%d worker %d slot %d: gid %d != %d",
								seed, m, w, s, b.Slots.GID(s), a.Slots.GID(s))
						}
					}
				}
			}
		}
	}
}
