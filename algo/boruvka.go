package algo

import (
	"fmt"
	"math"

	"flash"
	"flash/graph"
)

type boruvkaProps struct {
	P      uint32  // component parent pointer (root after jumping)
	BW     float32 // best crossing edge: weight, canonical endpoints
	BU     uint32
	BV     uint32
	Has    bool
	TR     uint32 // target root the component wants to hook onto
	HasTR  bool
	Chosen bool // this root picked its best edge into the forest this round
}

// MSFBoruvka computes a minimum spanning forest with fully-distributed
// Borůvka rounds expressed in FLASH: every vertex finds its lightest
// crossing edge, pushes it to its component root along the virtual edge
// v -> p(v), roots hook onto the neighboring component (with a mutual-hook
// tie-break), and pointer jumping re-flattens the forest — the same
// beyond-neighborhood machinery as the optimized CC. It complements the
// paper's Kruskal-reduce MSF (Algorithm 21) as an ablation: all work stays
// in EdgeMap/VertexMap supersteps instead of a driver-side sort.
func MSFBoruvka(g *graph.Graph, opts ...flash.Option) (MSFResult, error) {
	if !g.Weighted() {
		return MSFResult{}, fmt.Errorf("algo: MSFBoruvka requires a weighted graph")
	}
	e, err := newEngine[boruvkaProps](g, opts, flash.WithFullMirrors())
	if err != nil {
		return MSFResult{}, err
	}
	defer e.Close()

	jump := flash.InEdges(func(c *flash.Ctx[boruvkaProps], d graph.VID) []graph.VID {
		return []graph.VID{graph.VID(c.Get(d).P)}
	})
	toRoot := flash.OutEdges(func(c *flash.Ctx[boruvkaProps], u graph.VID) []graph.VID {
		return []graph.VID{graph.VID(c.Get(u).P)}
	})

	// less orders candidate edges by (weight, canonical endpoints) so every
	// component picks a globally consistent minimum and hooking cannot cycle
	// through ties.
	less := func(aw float32, au, av uint32, bw float32, bu, bv uint32) bool {
		if aw != bw {
			return aw < bw
		}
		if au != bu {
			return au < bu
		}
		return av < bv
	}

	e.VertexMap(e.All(), nil, func(v flash.Vertex[boruvkaProps]) boruvkaProps {
		return boruvkaProps{P: uint32(v.ID)}
	})

	var res MSFResult
	for round := 0; round < 64; round++ {
		// Flatten: pointer jump until every P is a root.
		for {
			changed := e.EdgeMapDense(e.All(), jump,
				func(s, d flash.Vertex[boruvkaProps]) bool { return s.Val.P != d.Val.P },
				func(s, d flash.Vertex[boruvkaProps]) boruvkaProps {
					nv := *d.Val
					nv.P = s.Val.P
					return nv
				}, nil)
			if changed.Size() == 0 {
				break
			}
		}
		// Each vertex proposes its lightest crossing edge.
		e.VertexMapC(e.All(), nil, func(c *flash.Ctx[boruvkaProps], v flash.Vertex[boruvkaProps]) boruvkaProps {
			nv := *v.Val
			nv.Has = false
			nv.HasTR = false
			nv.Chosen = false
			nv.BW = float32(math.Inf(1))
			adj := c.G.OutNeighbors(v.ID)
			ws := c.G.OutWeights(v.ID)
			for i, u := range adj {
				if c.Get(u).P == nv.P {
					continue
				}
				cu, cv := uint32(v.ID), uint32(u)
				if cu > cv {
					cu, cv = cv, cu
				}
				if !nv.Has || less(ws[i], cu, cv, nv.BW, nv.BU, nv.BV) {
					nv.BW, nv.BU, nv.BV, nv.Has = ws[i], cu, cv, true
				}
			}
			return nv
		})
		// Reduce each component's minimum at its root over v -> p(v).
		e.EdgeMapSparse(e.All(), toRoot,
			func(s, d flash.Vertex[boruvkaProps]) bool { return s.Val.Has },
			func(s, d flash.Vertex[boruvkaProps]) boruvkaProps {
				nv := *d.Val
				if !nv.Has || less(s.Val.BW, s.Val.BU, s.Val.BV, nv.BW, nv.BU, nv.BV) {
					nv.BW, nv.BU, nv.BV, nv.Has = s.Val.BW, s.Val.BU, s.Val.BV, true
				}
				return nv
			},
			nil,
			func(t, cur boruvkaProps) boruvkaProps {
				if t.Has && (!cur.Has || less(t.BW, t.BU, t.BV, cur.BW, cur.BU, cur.BV)) {
					cur.BW, cur.BU, cur.BV, cur.Has = t.BW, t.BU, t.BV, true
				}
				return cur
			})
		// Roots resolve the neighboring component their best edge reaches.
		roots := e.VertexMapC(e.All(),
			func(c *flash.Ctx[boruvkaProps], v flash.Vertex[boruvkaProps]) bool {
				return v.Val.P == uint32(v.ID) && v.Val.Has
			},
			func(c *flash.Ctx[boruvkaProps], v flash.Vertex[boruvkaProps]) boruvkaProps {
				nv := *v.Val
				tr := c.Get(graph.VID(nv.BU)).P
				if tr == nv.P {
					tr = c.Get(graph.VID(nv.BV)).P
				}
				nv.TR = tr
				nv.HasTR = tr != nv.P
				return nv
			})
		if roots.Size() == 0 {
			break
		}
		// Hook: a root joins its target component unless the hook is mutual
		// and it has the smaller id (exactly one side of a mutual pair
		// hooks, so the contraction forest stays acyclic).
		e.VertexMapC(e.All(),
			func(c *flash.Ctx[boruvkaProps], v flash.Vertex[boruvkaProps]) bool {
				if v.Val.P != uint32(v.ID) || !v.Val.HasTR {
					return false
				}
				t := c.Get(graph.VID(v.Val.TR))
				mutual := t.HasTR && t.TR == uint32(v.ID)
				return !(mutual && uint32(v.ID) < v.Val.TR)
			},
			func(c *flash.Ctx[boruvkaProps], v flash.Vertex[boruvkaProps]) boruvkaProps {
				nv := *v.Val
				nv.P = nv.TR
				nv.Chosen = true
				return nv
			})
		// Harvest the chosen edges on the driver.
		picked := 0
		e.Gather(func(v graph.VID, val *boruvkaProps) {
			if val.Chosen {
				res.Edges = append(res.Edges, MSFEdge{U: graph.VID(val.BU), V: graph.VID(val.BV), W: val.BW})
				res.Weight += float64(val.BW)
				picked++
			}
		})
		if picked == 0 {
			break
		}
	}
	return res, nil
}
