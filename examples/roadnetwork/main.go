// Road-network analysis on a huge-diameter grid (the paper's RN regime).
// This is where the optimized connected-components algorithm shines: label
// propagation needs O(diameter) supersteps while tree hooking + pointer
// jumping over virtual edges converges in O(log n) rounds (paper App. B:
// 7 rounds vs 6262 iterations on road-USA).
package main

import (
	"fmt"
	"log"

	"flash"
	"flash/algo"
	"flash/graph"
	"flash/metrics"
)

func main() {
	g := graph.GenGrid(400, 25, 6, 21) // long thin road grid, diameter ~425
	fmt.Println("road network:", g)
	opts := []flash.Option{flash.WithWorkers(4)}

	// CC-basic vs CC-opt iteration counts.
	col := metrics.New()
	labels, err := algo.CC(g, append(opts, flash.WithCollector(col))...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := algo.CCOpt(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components: %d\n", algo.CountComponents(labels))
	fmt.Printf("CC-basic: %d supersteps;  CC-opt: %d rounds\n", col.Supersteps, res.Rounds)

	// Shortest routes from a depot over random travel times.
	wg := graph.WithRandomWeights(g, 5)
	dist, err := algo.SSSP(wg, 0, opts...)
	if err != nil {
		log.Fatal(err)
	}
	far, farV := float32(0), graph.VID(0)
	for v, d := range dist {
		if d < 1e29 && d > far {
			far, farV = d, graph.VID(v)
		}
	}
	fmt.Printf("farthest reachable point from depot: vertex %d at cost %.2f\n", farV, far)

	// Cheapest maintenance backbone: minimum spanning forest.
	msf, err := algo.MSF(wg, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanning backbone: %d road segments, total cost %.2f\n",
		len(msf.Edges), msf.Weight)
}
