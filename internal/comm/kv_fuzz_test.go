package comm

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// kvRec mirrors one fuzz-derived record. Values are compared through their
// encoded bit patterns so NaN payloads round-trip exactly.
type kvRec struct {
	vid uint32
	val kvVal
}

// parseRecs derives a record batch from raw fuzz bytes: 15 bytes per record
// (vid, A, B bits, C, D), any order and any duplicates of vids allowed — the
// KV layer itself has no sortedness requirement, only the engine's routing
// does.
func parseRecs(raw []byte) []kvRec {
	var recs []kvRec
	for len(raw) >= 15 && len(recs) < 1024 {
		recs = append(recs, kvRec{
			vid: binary.LittleEndian.Uint32(raw[0:4]),
			val: kvVal{
				A: int32(binary.LittleEndian.Uint32(raw[4:8])),
				B: math.Float32frombits(binary.LittleEndian.Uint32(raw[8:12])),
				C: binary.LittleEndian.Uint16(raw[12:14]),
				D: raw[14]&1 == 1,
			},
		})
		raw = raw[15:]
	}
	return recs
}

func sameVal(a, b kvVal) bool {
	return a.A == b.A && math.Float32bits(a.B) == math.Float32bits(b.B) &&
		a.C == b.C && a.D == b.D
}

// FuzzKVRoundTrip drives the pooled KV codec with arbitrary (vid, value)
// batches: encode/decode must round-trip exactly, re-encoding must be
// byte-for-byte stable, and a taken frame must stay intact while the writer
// keeps encoding through recycled pool buffers (no aliasing).
func FuzzKVRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 15))
	f.Add(bytes.Repeat([]byte{0xFF}, 45))
	seed := make([]byte, 0, 60)
	for i := 0; i < 4; i++ {
		var r [15]byte
		binary.LittleEndian.PutUint32(r[0:4], uint32(i*64+i)) // ascending run
		r[4] = byte(i)
		seed = append(seed, r[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs := parseRecs(raw)
		c := CodecFor[kvVal]()

		var kw KVWriter[kvVal]
		kw.Init(c)
		for i := range recs {
			kw.Append(recs[i].vid, &recs[i].val)
		}
		frame := kw.Take()
		if len(recs) == 0 {
			if frame != nil {
				t.Fatalf("empty batch produced a %d-byte frame", len(frame))
			}
			return
		}
		snapshot := append([]byte(nil), frame...)

		// Round trip.
		var got []kvRec
		if err := DecodeKV(c, frame, func(vid uint32, v *kvVal) {
			got = append(got, kvRec{vid: vid, val: *v})
		}); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(recs) {
			t.Fatalf("decoded %d records, want %d", len(got), len(recs))
		}
		for i := range recs {
			if got[i].vid != recs[i].vid || !sameVal(got[i].val, recs[i].val) {
				t.Fatalf("record %d: got (%d, %+v), want (%d, %+v)",
					i, got[i].vid, got[i].val, recs[i].vid, recs[i].val)
			}
		}

		// Byte-for-byte stability: the same batch encodes identically.
		var kw2 KVWriter[kvVal]
		kw2.Init(c)
		for i := range recs {
			kw2.Append(recs[i].vid, &recs[i].val)
		}
		frame2 := kw2.Take()
		if !bytes.Equal(frame, frame2) {
			t.Fatalf("unstable encoding:\n %x\n %x", frame, frame2)
		}

		// No aliasing: keep encoding through the writer (which draws fresh
		// pool buffers) after recycling the second frame; the first frame
		// must not change.
		PutBuf(frame2)
		for i := range recs {
			kw2.Append(^recs[i].vid, &recs[i].val)
		}
		PutBuf(kw2.Take())
		if !bytes.Equal(frame, snapshot) {
			t.Fatal("taken frame mutated by later encodes through the pool")
		}

		// Decoded copies must survive the frame's recycling.
		PutBuf(frame)
		scribble := GetBufN(len(snapshot) + MinPooledCap)
		for i := range scribble {
			scribble[i] = 0xAA
		}
		for i := range recs {
			if !sameVal(got[i].val, recs[i].val) {
				t.Fatalf("decoded record %d aliased the recycled frame", i)
			}
		}
		PutBuf(scribble)
	})
}
