package algo

import (
	"math"
	"testing"
	"testing/quick"

	"flash"
	"flash/graph"
)

// testGraphs are the undirected graphs most algorithm tests run over.
func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":     graph.GenPath(40),
		"cycle":    graph.GenCycle(31),
		"star":     graph.GenStar(25),
		"grid":     graph.GenGrid(6, 7, 2, 1),
		"er":       graph.GenErdosRenyi(90, 360, 3),
		"rmat":     graph.GenRMAT(64, 300, 4),
		"complete": graph.GenComplete(9),
		"tree":     graph.GenTree(50, 5),
	}
}

var workerCounts = []int{1, 3}

func forAll(t *testing.T, f func(t *testing.T, name string, g *graph.Graph, opts []flash.Option)) {
	t.Helper()
	for name, g := range testGraphs() {
		for _, w := range workerCounts {
			opts := []flash.Option{flash.WithWorkers(w)}
			t.Run(name+"/w"+string(rune('0'+w)), func(t *testing.T) {
				f(t, name, g, opts)
			})
		}
	}
}

func TestBFSMatchesReference(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		got, err := BFS(g, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := refBFS(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
			}
		}
	})
}

func TestCCMatchesReference(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		got, err := CC(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := refComponents(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("cc[%d] = %d, want %d", v, got[v], want[v])
			}
		}
	})
}

func TestCCOptMatchesCC(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		res, err := CCOpt(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := refComponents(g)
		if !samePartition(res.Labels, want) {
			t.Fatalf("CCOpt partition differs from reference")
		}
	})
}

// TestCCOptFastOnLargeDiameter reproduces the paper's Appendix B claim in
// shape: on a large-diameter graph, CC-opt needs exponentially fewer rounds
// than label propagation needs iterations.
func TestCCOptFastOnLargeDiameter(t *testing.T) {
	g := graph.GenPath(512)
	col := newTraceCollector()
	if _, err := CC(g, flash.WithWorkers(2), flash.WithCollector(col)); err != nil {
		t.Fatal(err)
	}
	basicSteps := col.Supersteps
	res, err := CCOpt(g, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds >= basicSteps/8 {
		t.Fatalf("CC-opt rounds %d not far below CC steps %d", res.Rounds, basicSteps)
	}
	if res.Rounds > 2+2*int(math.Log2(512)) {
		t.Fatalf("CC-opt rounds %d exceeds O(log n) bound", res.Rounds)
	}
}

func TestBCMatchesReference(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		got, err := BC(g, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := refBC(g, 0)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-6 {
				t.Fatalf("bc[%d] = %g, want %g", v, got[v], want[v])
			}
		}
	})
}

func TestMISIsIndependentAndMaximal(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		in, err := MIS(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		g.Edges(func(u, v graph.VID, _ float32) bool {
			if in[u] && in[v] {
				t.Fatalf("adjacent vertices %d,%d both in MIS", u, v)
			}
			return true
		})
		for v := 0; v < g.NumVertices(); v++ {
			if in[v] {
				continue
			}
			covered := false
			for _, u := range g.OutNeighbors(graph.VID(v)) {
				if in[u] {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("vertex %d outside MIS with no MIS neighbor", v)
			}
		}
	})
}

func checkMatching(t *testing.T, g *graph.Graph, match []int32) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		p := match[v]
		if p == -1 {
			continue
		}
		if match[p] != int32(v) {
			t.Fatalf("asymmetric match: %d->%d but %d->%d", v, p, p, match[p])
		}
		if !g.HasEdge(graph.VID(v), graph.VID(p)) {
			t.Fatalf("matched pair (%d,%d) not an edge", v, p)
		}
	}
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if match[u] == -1 && match[v] == -1 {
			t.Fatalf("edge (%d,%d) with both endpoints unmatched: not maximal", u, v)
		}
		return true
	})
}

func TestMMIsMaximalMatching(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		match, err := MM(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		checkMatching(t, g, match)
	})
}

func TestMMOptIsMaximalMatching(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		match, err := MMOpt(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		checkMatching(t, g, match)
	})
}

func TestKCMatchesReference(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		want := refCore(g)
		got, err := KC(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("core[%d] = %d, want %d", v, got[v], want[v])
			}
		}
	})
}

func TestKCOptMatchesReference(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		want := refCore(g)
		got, err := KCOpt(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("core[%d] = %d, want %d", v, got[v], want[v])
			}
		}
	})
}

func TestTCMatchesReference(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		got, err := TC(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if want := refTC(g); got != want {
			t.Fatalf("triangles = %d, want %d", got, want)
		}
	})
}

func TestTCKnownCounts(t *testing.T) {
	for _, tc := range []struct {
		g    *graph.Graph
		want int64
	}{
		{graph.GenComplete(4), 4},
		{graph.GenComplete(5), 10},
		{graph.GenPath(10), 0},
		{graph.GenCycle(3), 1},
		{graph.GenStar(10), 0},
	} {
		got, err := TC(tc.g, flash.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("%s: triangles = %d, want %d", tc.g.Name(), got, tc.want)
		}
	}
}

func TestGCIsProperColoring(t *testing.T) {
	forAll(t, func(t *testing.T, name string, g *graph.Graph, opts []flash.Option) {
		colors, err := GC(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		g.Edges(func(u, v graph.VID, _ float32) bool {
			if u != v && colors[u] == colors[v] {
				t.Fatalf("edge (%d,%d) same color %d", u, v, colors[u])
			}
			return true
		})
		_, maxDeg := g.MaxOutDegree()
		if nc := CountColors(colors); nc > maxDeg+1 {
			t.Fatalf("%d colors exceeds maxdeg+1 = %d", nc, maxDeg+1)
		}
	})
}

func TestSCCMatchesReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"randdir": graph.GenRandomDirected(60, 200, 7),
		"cycle":   graph.FromEdges(5, true, [][2]graph.VID{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}}),
		"dag":     graph.FromEdges(6, true, [][2]graph.VID{{0, 1}, {1, 2}, {0, 3}, {3, 4}, {4, 5}}),
		"two-scc": graph.FromEdges(6, true, [][2]graph.VID{{0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 2}, {1, 2}}),
	}
	for name, g := range graphs {
		for _, w := range workerCounts {
			got, err := SCC(g, flash.WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			want := refSCC(g)
			if !samePartition(got, want) {
				t.Fatalf("%s w=%d: SCC partition mismatch\n got=%v\nwant=%v", name, w, got, want)
			}
		}
	}
}

func TestBCCCounts(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"triangle":      graph.GenCycle(3),
		"two-triangles": graph.FromEdges(5, false, [][2]graph.VID{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}}),
		"bridge":        graph.FromEdges(6, false, [][2]graph.VID{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}}),
		"path":          graph.GenPath(8),
		"cycle":         graph.GenCycle(9),
		"grid":          graph.GenGrid(4, 5, 0, 1),
		"er":            graph.GenErdosRenyi(40, 90, 9),
		"tree":          graph.GenTree(30, 3),
	}
	for name, g := range graphs {
		for _, w := range workerCounts {
			res, err := BCC(g, flash.WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := CountBCCs(res), refBCCCount(g); got != want {
				t.Fatalf("%s w=%d: %d BCCs, want %d", name, w, got, want)
			}
		}
	}
}

func TestBCCSharedCycleSameLabel(t *testing.T) {
	// In the bridge graph, vertices 1,2 (triangle side) must share a label;
	// 4,5 (other cycle) must share a label distinct from the triangle's.
	g := graph.FromEdges(6, false, [][2]graph.VID{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}})
	res, err := BCC(g, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[1] != res.Labels[2] {
		t.Fatalf("triangle labels differ: %v", res.Labels)
	}
	if res.Labels[4] != res.Labels[5] {
		t.Fatalf("cycle labels differ: %v", res.Labels)
	}
	if res.Labels[1] == res.Labels[4] {
		t.Fatalf("distinct BCCs share a label: %v", res.Labels)
	}
}

func TestLPAFindsCommunities(t *testing.T) {
	// Two K6 cliques joined by one edge: LPA must give each clique one
	// label and the labels must differ.
	b := graph.NewBuilder(12)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(graph.VID(i), graph.VID(j))
			b.AddEdge(graph.VID(i+6), graph.VID(j+6))
		}
	}
	b.AddEdge(0, 6)
	g := b.Build()
	for _, w := range workerCounts {
		labels, err := LPA(g, 30, flash.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v < 6; v++ {
			if labels[v] != labels[1] {
				t.Fatalf("w=%d: clique 1 fragmented: %v", w, labels)
			}
			if labels[v+6] != labels[7] {
				t.Fatalf("w=%d: clique 2 fragmented: %v", w, labels)
			}
		}
	}
}

func TestMSFMatchesKruskal(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := graph.WithRandomWeights(graph.GenErdosRenyi(70, 240, seed), seed)
		for _, w := range workerCounts {
			res, err := MSF(g, flash.WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			// Sequential reference over all edges.
			var all []MSFEdge
			g.Edges(func(u, v graph.VID, wt float32) bool {
				if u < v {
					all = append(all, MSFEdge{U: u, V: v, W: wt})
				}
				return true
			})
			ref := kruskal(g.NumVertices(), all)
			var refW float64
			for _, e := range ref {
				refW += float64(e.W)
			}
			if len(res.Edges) != len(ref) {
				t.Fatalf("seed=%d w=%d: %d forest edges, want %d", seed, w, len(res.Edges), len(ref))
			}
			if math.Abs(res.Weight-refW) > 1e-4 {
				t.Fatalf("seed=%d w=%d: weight %g, want %g", seed, w, res.Weight, refW)
			}
		}
	}
	if _, err := MSF(graph.GenPath(4)); err == nil {
		t.Fatal("MSF on unweighted graph should error")
	}
}

func TestRCMatchesReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"square":   graph.GenCycle(4),
		"k4":       graph.GenComplete(4),
		"k5":       graph.GenComplete(5),
		"grid":     graph.GenGrid(4, 4, 0, 1),
		"er-small": graph.GenErdosRenyi(24, 70, 5),
		"star":     graph.GenStar(8),
	}
	for name, g := range graphs {
		for _, w := range workerCounts {
			got, err := RC(g, flash.WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			if want := refRC(g); got != want {
				t.Fatalf("%s w=%d: rectangles = %d, want %d", name, w, got, want)
			}
		}
	}
}

func TestCLMatchesReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"k5":       graph.GenComplete(5),
		"k6":       graph.GenComplete(6),
		"er-small": graph.GenErdosRenyi(22, 80, 6),
		"grid":     graph.GenGrid(4, 4, 0, 1),
	}
	for name, g := range graphs {
		for _, k := range []int{3, 4, 5} {
			got, err := CL(g, k, flash.WithWorkers(2))
			if err != nil {
				t.Fatal(err)
			}
			if want := refCL(g, k); got != want {
				t.Fatalf("%s k=%d: cliques = %d, want %d", name, k, got, want)
			}
		}
	}
	// CL(k=3) must agree with TC.
	g := graph.GenErdosRenyi(30, 120, 8)
	cl3, err := CL(g, 3, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	tc, err := TC(g, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if cl3 != tc {
		t.Fatalf("CL(3)=%d != TC=%d", cl3, tc)
	}
	// Trivial k values.
	if c, _ := CL(g, 1, flash.WithWorkers(1)); c != int64(g.NumVertices()) {
		t.Fatalf("CL(1) = %d", c)
	}
	if c, _ := CL(g, 0, flash.WithWorkers(1)); c != 0 {
		t.Fatalf("CL(0) = %d", c)
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	g := graph.WithRandomWeights(graph.GenErdosRenyi(80, 320, 4), 9)
	for _, w := range workerCounts {
		got, err := SSSP(g, 0, flash.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		want := refDijkstra(g, 0)
		for v := range want {
			if math.Abs(float64(got[v]-want[v])) > 1e-4 {
				t.Fatalf("w=%d: dist[%d] = %g, want %g", w, v, got[v], want[v])
			}
		}
	}
}

func TestPageRankProperties(t *testing.T) {
	// Ranks sum to 1 and are uniform on a cycle.
	g := graph.GenCycle(20)
	pr, err := PageRank(g, 50, 1e-10, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range pr {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %g", sum)
	}
	for v := 1; v < 20; v++ {
		if math.Abs(pr[v]-pr[0]) > 1e-9 {
			t.Fatalf("cycle ranks not uniform: %g vs %g", pr[v], pr[0])
		}
	}
	// Star center dominates.
	s := graph.GenStar(30)
	pr, err = PageRank(s, 50, 1e-12, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 30; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("star center rank %g not above leaf %g", pr[0], pr[v])
		}
	}
}

// TestQuickManyAlgorithmsOnRandomGraphs cross-validates several algorithms
// on random graphs with random worker counts.
func TestQuickManyAlgorithmsOnRandomGraphs(t *testing.T) {
	f := func(seed int64, nn, mm, ww uint8) bool {
		n := int(nn)%40 + 4
		m := int(mm) % 150
		w := int(ww)%3 + 1
		g := graph.GenErdosRenyi(n, m, seed)
		opts := []flash.Option{flash.WithWorkers(w)}

		got, err := BFS(g, 0, opts...)
		if err != nil {
			return false
		}
		want := refBFS(g, 0)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}

		cc, err := CC(g, opts...)
		if err != nil {
			return false
		}
		refCC := refComponents(g)
		for v := range refCC {
			if cc[v] != refCC[v] {
				return false
			}
		}

		tc, err := TC(g, opts...)
		if err != nil {
			return false
		}
		if tc != refTC(g) {
			return false
		}

		mis, err := MIS(g, opts...)
		if err != nil {
			return false
		}
		ok := true
		g.Edges(func(u, v graph.VID, _ float32) bool {
			if mis[u] && mis[v] {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// refDijkstra is a simple O(n^2) Dijkstra for the SSSP test.
func refDijkstra(g *graph.Graph, root graph.VID) []float32 {
	n := g.NumVertices()
	dist := make([]float32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = float32(math.Inf(1))
	}
	dist[root] = 0
	for {
		u, best := -1, float32(math.Inf(1))
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u == -1 {
			break
		}
		done[u] = true
		ws := g.OutWeights(graph.VID(u))
		for i, v := range g.OutNeighbors(graph.VID(u)) {
			if nd := dist[u] + ws[i]; nd < dist[v] {
				dist[v] = nd
			}
		}
	}
	return dist
}

func TestClusteringCoefficient(t *testing.T) {
	// Complete graph: every local coefficient is 1 and so is the global.
	res, err := ClusteringCoefficient(graph.GenComplete(6), flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res.Local {
		if math.Abs(c-1) > 1e-9 {
			t.Fatalf("K6 local cc[%d] = %g", v, c)
		}
	}
	if math.Abs(res.Global-1) > 1e-9 {
		t.Fatalf("K6 global cc = %g", res.Global)
	}
	// Star: no triangles anywhere.
	res, err = ClusteringCoefficient(graph.GenStar(10), flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Global != 0 || res.Local[0] != 0 {
		t.Fatalf("star cc: %+v", res)
	}
	// Triangle with a pendant: vertex 0 has coefficient 1/3.
	g := graph.FromEdges(4, false, [][2]graph.VID{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	res, err = ClusteringCoefficient(g, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Local[0]-1.0/3) > 1e-9 || math.Abs(res.Local[1]-1) > 1e-9 {
		t.Fatalf("pendant cc: %+v", res.Local)
	}
}

func TestKTruss(t *testing.T) {
	// K5 is a 5-truss: every edge survives k=3..5, nothing survives k=6.
	k5 := graph.GenComplete(5)
	for _, k := range []int{3, 4, 5} {
		edges, err := KTruss(k5, k, flash.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) != 10 {
			t.Fatalf("K5 truss k=%d: %d edges, want 10", k, len(edges))
		}
	}
	edges, err := KTruss(k5, 6, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 0 {
		t.Fatalf("K5 truss k=6: %d edges, want 0", len(edges))
	}
	// Triangle with pendant: the pendant edge is never in a 3-truss.
	g := graph.FromEdges(4, false, [][2]graph.VID{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	edges, err = KTruss(g, 3, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 {
		t.Fatalf("triangle+pendant truss: %v", edges)
	}
	for _, e := range edges {
		if e[0] == 3 || e[1] == 3 {
			t.Fatalf("pendant edge survived: %v", edges)
		}
	}
}

func TestDiameterEstimate(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int32
	}{
		{graph.GenPath(50), 49},
		{graph.GenCycle(10), 5},
		{graph.GenStar(9), 2},
		{graph.GenComplete(5), 1},
	}
	for _, tc := range cases {
		got, err := DiameterEstimate(tc.g, flash.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("%s: diameter %d, want %d", tc.g.Name(), got, tc.want)
		}
	}
	// Grid diameter = rows+cols-2 (double sweep is exact here).
	g := graph.GenGrid(7, 11, 0, 1)
	got, err := DiameterEstimate(g, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Fatalf("grid diameter %d, want 16", got)
	}
}

func TestBipartite(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want bool
	}{
		{graph.GenPath(10), true},
		{graph.GenCycle(8), true},
		{graph.GenCycle(7), false},
		{graph.GenStar(9), true},
		{graph.GenComplete(3), false},
		{graph.GenGrid(5, 6, 0, 1), true},
		{graph.GenTree(40, 2), true},
	}
	for _, tc := range cases {
		res, err := Bipartite(tc.g, flash.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if res.IsBipartite != tc.want {
			t.Fatalf("%s: bipartite=%v want %v", tc.g.Name(), res.IsBipartite, tc.want)
		}
		if res.IsBipartite {
			tc.g.Edges(func(u, v graph.VID, _ float32) bool {
				if res.Side[u] == res.Side[v] {
					t.Fatalf("%s: edge (%d,%d) same side", tc.g.Name(), u, v)
				}
				return true
			})
		}
	}
	// Disconnected: one even cycle + one odd cycle => not bipartite.
	b := graph.NewBuilder(7)
	b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 0) // C4
	b.AddEdge(4, 5).AddEdge(5, 6).AddEdge(6, 4)               // C3
	res, err := Bipartite(b.Build(), flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.IsBipartite {
		t.Fatal("odd component missed")
	}
}

func TestMultiBFS(t *testing.T) {
	g := graph.GenPath(11)
	dis, err := MultiBFS(g, []graph.VID{0, 10}, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v <= 10; v++ {
		want := int32(v)
		if int32(10-v) < want {
			want = int32(10 - v)
		}
		if dis[v] != want {
			t.Fatalf("dist[%d]=%d want %d", v, dis[v], want)
		}
	}
	// Unreachable vertices report -1.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	dis, err = MultiBFS(b.Build(), []graph.VID{0}, flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if dis[2] != -1 || dis[3] != -1 || dis[1] != 1 {
		t.Fatalf("multibfs: %v", dis)
	}
}

func TestMSFBoruvkaMatchesKruskal(t *testing.T) {
	for _, seed := range []int64{1, 2, 5} {
		g := graph.WithRandomWeights(graph.GenErdosRenyi(60, 200, seed), seed)
		for _, w := range workerCounts {
			want, err := MSF(g, flash.WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			got, err := MSFBoruvka(g, flash.WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Edges) != len(want.Edges) {
				t.Fatalf("seed=%d w=%d: %d edges, want %d", seed, w, len(got.Edges), len(want.Edges))
			}
			if math.Abs(got.Weight-want.Weight) > 1e-3 {
				t.Fatalf("seed=%d w=%d: weight %g want %g", seed, w, got.Weight, want.Weight)
			}
		}
	}
	if _, err := MSFBoruvka(graph.GenPath(4)); err == nil {
		t.Fatal("unweighted graph accepted")
	}
}

func TestAssortativity(t *testing.T) {
	// A k-regular graph has undefined Pearson denominator -> 0 by
	// convention; avg neighbor degree equals k.
	res, err := Assortativity(graph.GenCycle(12), flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for v, a := range res.AvgNeighborDegree {
		if a != 2 {
			t.Fatalf("cycle knn[%d]=%g", v, a)
		}
	}
	if res.Coefficient != 0 {
		t.Fatalf("regular graph coefficient %g", res.Coefficient)
	}
	// A star is maximally disassortative: coefficient -1.
	res, err = Assortativity(graph.GenStar(12), flash.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Coefficient-(-1)) > 1e-9 {
		t.Fatalf("star coefficient %g, want -1", res.Coefficient)
	}
	if res.AvgNeighborDegree[0] != 1 || res.AvgNeighborDegree[1] != 11 {
		t.Fatalf("star knn: %v", res.AvgNeighborDegree[:3])
	}
}
