// The immutable half of the engine split.
//
// An Engine used to own everything it touched: topology, partition, slot
// tables, and the per-run property state. That model is fine for "load one
// graph, run one algorithm, exit", but a long-lived service runs many
// concurrent jobs over one graph, and rebuilding the partition (mirror
// discovery is O(|E|), slot tables O(masters+mirrors)) per job — let alone
// copying the CSR — would dominate short queries and multiply resident
// memory by the job count.
//
// SharedGraph is the read-only bundle a catalog holds instead: the graph
// plus a concurrency-safe cache of partitions keyed by (worker count,
// placement flavor). Engines constructed with Config.Shared borrow the
// cached *partition.Partitioned instead of building their own, so N
// concurrent jobs over one graph share one CSR and one partition; everything
// mutable (cur/next/pendVal/accumulator shards/checkpoints) stays per-engine.
//
// Mutation discipline: a shared partition is read-only to every borrower.
// The only writes the runtime ever performs on a Partitioned are
// Rebuild calls during cold restart and resize rollback; engines with a
// borrowed partition fork it first (copy-on-write, see privatizePart), so
// one job's recovery can never race another job's reads.
package core

import (
	"sync"

	"flash/graph"
	"flash/internal/partition"
)

// partKey identifies one cached partition: the worker count and placement
// flavor fully determine the partition of a fixed graph.
type partKey struct {
	workers int
	hash    bool
}

// SharedGraph is an immutable graph plus its partition cache, shared by all
// engines running jobs over the graph. Safe for concurrent use.
type SharedGraph struct {
	g  *graph.Graph
	bg *graph.BlockGraph // non-nil when the graph is an out-of-core backend

	mu    sync.Mutex
	parts map[partKey]*partition.Partitioned
}

// NewSharedGraph wraps g for sharing across engines. The graph must not be
// mutated afterwards (graph.Graph is immutable by construction).
func NewSharedGraph(g *graph.Graph) *SharedGraph {
	return &SharedGraph{g: g, parts: make(map[partKey]*partition.Partitioned)}
}

// NewSharedBlockGraph wraps an out-of-core FLASHBLK block graph for sharing:
// the skeleton is the shared topology, partitions are discovered by streaming
// the block file, and engines borrowing the share adopt the block backend
// automatically (NewEngine copies it into Config.BlockGraph).
func NewSharedBlockGraph(bg *graph.BlockGraph) *SharedGraph {
	return &SharedGraph{g: bg.Skeleton(), bg: bg, parts: make(map[partKey]*partition.Partitioned)}
}

// Graph returns the shared topology (the skeleton, for a block-backed share).
func (s *SharedGraph) Graph() *graph.Graph { return s.g }

// Block returns the shared out-of-core backend, or nil for an in-memory
// share.
func (s *SharedGraph) Block() *graph.BlockGraph { return s.bg }

// Partition returns the cached partition for the given membership, building
// it on first use. Concurrent callers asking for the same key block on the
// single build and then share the one result; the returned value must be
// treated as read-only (fork before any Rebuild).
func (s *SharedGraph) Partition(workers int, hashPlacement bool) *partition.Partitioned {
	key := partKey{workers: workers, hash: hashPlacement}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.parts[key]; ok {
		return p
	}
	var place partition.Placement
	if hashPlacement {
		place = partition.NewHash(s.g.NumVertices(), workers)
	} else {
		place = partition.NewRange(s.g.NumVertices(), workers)
	}
	var topo partition.Adjacency = s.g
	if s.bg != nil {
		topo = s.bg
	}
	p := partition.New(topo, place)
	s.parts[key] = p
	return p
}

// Partitions returns the number of distinct partitions currently cached.
func (s *SharedGraph) Partitions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.parts)
}

// privatizePart forks a catalog-shared partition into an engine-private copy
// before the engine's first in-place mutation (Rebuild during cold restart or
// resize rollback). The fork is shallow — the surviving workers' *Part
// entries stay shared — but replacing the rebuilt entry no longer reaches
// other engines borrowing the same partition. No-op for engines that built
// their partition privately.
//
//flash:privatizes
func (e *Engine[V]) privatizePart() {
	if e.partShared {
		e.part = e.part.Fork()
		e.partShared = false
	}
}

// SharedBytes returns the resident footprint of every cached partition's
// derived structures. Together with Graph().MemBytes() this is the memory a
// catalog pays once per graph, independent of how many jobs run over it.
func (s *SharedGraph) SharedBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, p := range s.parts {
		total += p.SharedBytes()
	}
	return total
}
