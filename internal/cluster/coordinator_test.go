package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"flash"
	"flash/internal/serve"
)

// binPath is the flashd binary every test spawns, built once in TestMain.
var binPath string

func TestMain(m *testing.M) {
	os.Exit(func() int {
		dir, err := os.MkdirTemp("", "flashd-bin-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer os.RemoveAll(dir)
		binPath = filepath.Join(dir, "flashd")
		out, err := exec.Command("go", "build", "-o", binPath, "flash/cmd/flashd").CombinedOutput()
		if err != nil {
			fmt.Fprintf(os.Stderr, "build flashd: %v\n%s", err, out)
			return 1
		}
		return m.Run()
	}())
}

// testGraph is the deterministic spec every test fleet rebuilds.
var testGraph = serve.GraphSpec{Name: "er", Gen: "er", N: 300, M: 1500, Seed: 7}

func uptr(v uint64) *uint64   { return &v }
func iptr(v int) *int         { return &v }
func fptr(v float64) *float64 { return &v }

// golden runs the same job in-process with the same worker count, which is
// the determinism contract: the cluster fleet must produce byte-identical
// JSON.
func golden(t *testing.T, spec serve.GraphSpec, algo string, p serve.JobParams, workers int) []byte {
	t.Helper()
	g, err := serve.BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := serve.RunAlgo(algo, g, p, flash.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestCoordinatorHappyPath(t *testing.T) {
	params := serve.JobParams{Root: uptr(0)}
	c, err := New(Config{
		BinPath: binPath, Workers: 2, Graph: testGraph, Algo: "bfs", Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := golden(t, testGraph, "bfs", params, 2); !bytes.Equal(payload, want) {
		t.Fatalf("cluster result differs from in-process golden:\n got %.120s\nwant %.120s", payload, want)
	}
	if c.Restarts() != 0 {
		t.Fatalf("fault-free run took %d restarts", c.Restarts())
	}
}

func TestCoordinatorKillRestartResume(t *testing.T) {
	// PageRank with a fixed iteration budget: ~120 supersteps, long enough
	// that the SIGKILL lands mid-run, after the victim's third checkpoint.
	spec := serve.GraphSpec{Name: "er", Gen: "er", N: 1000, M: 8000, Seed: 7}
	params := serve.JobParams{MaxIters: iptr(30), Eps: fptr(0)}
	c, err := New(Config{
		BinPath: binPath, Workers: 2, Graph: spec, Algo: "pagerank", Params: params,
		StoreDir: t.TempDir(), CheckpointEvery: 5, MaxRestarts: 3,
		Chaos: &ChaosPlan{Worker: 1, Kind: FaultKill, AwaitSeq: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := golden(t, spec, "pagerank", params, 2); !bytes.Equal(payload, want) {
		t.Fatalf("post-kill result differs from golden")
	}
	if c.Restarts() < 1 {
		t.Fatalf("SIGKILL chaos caused %d restarts, want >= 1", c.Restarts())
	}
}

func TestCoordinatorStopDrains(t *testing.T) {
	// A long PageRank so Stop lands mid-run: eps 0 disables convergence
	// exit, so only the iteration budget ends it.
	params := serve.JobParams{MaxIters: iptr(500), Eps: fptr(0)}
	c, err := New(Config{
		BinPath: binPath, Workers: 2,
		Graph:  serve.GraphSpec{Name: "er", Gen: "er", N: 2000, M: 16000, Seed: 11},
		Algo:   "pagerank",
		Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var payload []byte
	go func() {
		var rerr error
		payload, rerr = c.Run()
		done <- rerr
	}()
	time.Sleep(500 * time.Millisecond)
	c.Stop()
	select {
	case rerr := <-done:
		if rerr == nil {
			// The job won the race against the drain; that is a legal
			// outcome, just not the one this test is about.
			if payload == nil {
				t.Fatal("nil error and nil payload")
			}
			t.Skip("job finished before the drain landed")
		}
		var we *WorkerError
		if !errors.As(rerr, &we) {
			t.Fatalf("Run error %T %v, want *WorkerError", rerr, rerr)
		}
		if we.Verdict != VerdictDrained {
			t.Fatalf("verdict %q (exit %d), want %q", we.Verdict, we.ExitCode, VerdictDrained)
		}
		if we.ExitCode != ExitDrained {
			t.Fatalf("exit code %d, want %d", we.ExitCode, ExitDrained)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
}

func TestCoordinatorConfigRejections(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no binary", Config{Workers: 2, Algo: "bfs"}},
		{"one worker", Config{BinPath: binPath, Workers: 1, Algo: "bfs"}},
		{"unsafe algo", Config{BinPath: binPath, Workers: 2, Algo: "lpa"}},
		{"chaos victim range", Config{BinPath: binPath, Workers: 2, Algo: "bfs",
			Chaos: &ChaosPlan{Worker: 5, Kind: FaultKill}}},
		{"chaos await without store", Config{BinPath: binPath, Workers: 2, Algo: "bfs",
			Chaos: &ChaosPlan{Worker: 0, Kind: FaultKill, AwaitSeq: 1}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
}

// TestWorkerExitCodes pins the `flashd worker` exit-code vocabulary the
// coordinator's verdicts (and the README table) are built on.
func TestWorkerExitCodes(t *testing.T) {
	graphJSON := `{"name":"er","gen":"er","n":64,"m":256,"seed":1}`
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no flags", nil, ExitConfig},
		{"worker out of range", []string{"-worker", "7", "-workers", "2", "-graph", graphJSON, "-algo", "bfs"}, ExitConfig},
		{"unsafe algo", []string{"-worker", "0", "-workers", "2", "-graph", graphJSON, "-algo", "lpa"}, ExitConfig},
		{"bad graph spec", []string{"-worker", "0", "-workers", "2", "-graph", "{", "-algo", "bfs"}, ExitConfig},
		{"no start message", []string{"-worker", "0", "-workers", "2", "-graph", graphJSON, "-algo", "bfs",
			"-params", `{"root":0}`, "-connect-timeout", "200ms"}, ExitProtocol},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(binPath, append([]string{"worker"}, tc.args...)...)
			cmd.Stdin = bytes.NewReader(nil) // immediate EOF on the control channel
			err := cmd.Run()
			code := 0
			var xe *exec.ExitError
			if errors.As(err, &xe) {
				code = xe.ExitCode()
			} else if err != nil {
				t.Fatal(err)
			}
			if code != tc.want {
				t.Fatalf("exit code %d, want %d", code, tc.want)
			}
		})
	}
}
