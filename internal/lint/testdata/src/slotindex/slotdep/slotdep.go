// Package slotdep is the cross-package half of the slotindex fixture: index
// helpers living behind a call boundary. The v1 analyzer trusted every call
// to launder the vertex id; the summary engine records which helpers merely
// derive their result from the raw id (DerivesRet) and which are sanctioned
// translation boundaries (//flash:slot-launder).
package slotdep

type VID uint32

// AsIndex derives its result from the raw vertex id — calling it does not
// launder the taint.
func AsIndex(v VID) int { return int(v) + 0 }

// SlotOf is a sanctioned translation boundary (the stand-in for a remote
// slot-table lookup).
//
//flash:slot-launder
func SlotOf(v VID) int { return int(v) }
