package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"flash/internal/serve"
)

// ServeStat is one flashd throughput entry in BENCH_flash.json's serve
// section: a fixed mixed job batch pushed through the service scheduler at a
// given concurrency, with the catalog's once-paid immutable footprint
// alongside so memory sharing stays visible in the baseline.
type ServeStat struct {
	Jobs        int     `json:"jobs"`
	Concurrency int     `json:"concurrency"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	GraphBytes  uint64  `json:"graph_bytes"`
	SharedBytes uint64  `json:"shared_bytes"`
	// GoMaxProcs is the parallelism the batch actually ran at. Concurrent
	// scheduling cannot beat serial on one OS thread, so the harness raises
	// GOMAXPROCS to at least serveMinProcs for the measurement and records
	// the value here — a c4-vs-c1 comparison is only meaningful at >= 4.
	GoMaxProcs int `json:"go_maxprocs"`
}

// serveMinProcs is the floor MeasureServe enforces: the c4 cell needs at
// least 4 schedulable threads before concurrent jobs can overlap at all.
const serveMinProcs = 4

// MeasureServe runs the fixed flashd smoke batch: one shared catalog graph,
// a BFS/CC/PageRank/SSSP job mix submitted all at once, maxConcurrent
// execution slots. Returns batch wall time and jobs/sec.
func MeasureServe(maxConcurrent int) (ServeStat, error) {
	const jobs = 24
	if prev := runtime.GOMAXPROCS(0); prev < serveMinProcs {
		runtime.GOMAXPROCS(serveMinProcs)
		defer runtime.GOMAXPROCS(prev)
	}
	srv, err := serve.NewServer(serve.ServerConfig{
		Scheduler: serve.SchedulerConfig{
			MaxConcurrent: maxConcurrent,
			QueueDepth:    jobs,
			Workers:       4,
		},
		Preload: []serve.GraphSpec{
			{Name: "g", Gen: "rmat", N: 4096, M: 4096 * 12, Seed: 101, Weighted: true},
		},
	})
	if err != nil {
		return ServeStat{}, err
	}
	defer srv.Close()
	// Warm the partition cache so the measured batch prices job execution,
	// not the one-time partitioning.
	h, err := srv.Catalog().Get("g")
	if err != nil {
		return ServeStat{}, err
	}
	h.Prewarm(4)

	reqs := make([]*serve.JobRequest, jobs)
	for i := range reqs {
		req := &serve.JobRequest{Graph: "g"}
		switch i % 4 {
		case 0:
			root := uint64(i)
			req.Algo = "bfs"
			req.Params = serve.JobParams{Root: &root}
		case 1:
			req.Algo = "cc"
		case 2:
			iters, eps := 5, 0.0
			req.Algo = "pagerank"
			req.Params = serve.JobParams{MaxIters: &iters, Eps: &eps}
		case 3:
			root := uint64(i)
			req.Algo = "sssp"
			req.Params = serve.JobParams{Root: &root}
		}
		reqs[i] = req
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req *serve.JobRequest) {
			defer wg.Done()
			job, err := srv.SubmitRequest(req)
			if err != nil {
				errs[i] = err
				return
			}
			<-job.Done()
			_, errs[i] = job.Result()
		}(i, req)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return ServeStat{}, fmt.Errorf("job %d (%s): %w", i, reqs[i].Algo, err)
		}
	}

	gb, sb := srv.Catalog().Bytes()
	return ServeStat{
		Jobs:        jobs,
		Concurrency: maxConcurrent,
		ElapsedNs:   elapsed.Nanoseconds(),
		JobsPerSec:  float64(jobs) / elapsed.Seconds(),
		GraphBytes:  gb,
		SharedBytes: sb,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}, nil
}
