package algo

import (
	"flash"
	"flash/graph"
)

type bfsProps struct {
	Dis int32
}

// BFS computes hop distances from root (paper Algorithm 2) and returns them;
// unreachable vertices get -1.
func BFS(g *graph.Graph, root graph.VID, opts ...flash.Option) ([]int32, error) {
	e, err := newEngine[bfsProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	out := make([]int32, g.NumVertices())
	if _, err := e.Run(func() error { return bfsProgram(e, root, out) }); err != nil {
		return nil, err
	}
	return out, nil
}

// bfsProgram is the FLASH driver program proper, run under Engine.Run so
// transport failures surface as errors (and recovery can replay it).
func bfsProgram(e *flash.Engine[bfsProps], root graph.VID, out []int32) error {
	e.VertexMap(e.All(), nil, func(v flash.Vertex[bfsProps]) bfsProps {
		if v.ID == root {
			return bfsProps{Dis: 0}
		}
		return bfsProps{Dis: inf32}
	})
	u := e.VertexMap(e.All(), func(v flash.Vertex[bfsProps]) bool { return v.ID == root }, nil)
	for u.Size() != 0 {
		u = e.EdgeMap(u, e.E(),
			nil, // CTRUE
			func(s, d flash.Vertex[bfsProps]) bfsProps { return bfsProps{Dis: s.Val.Dis + 1} },
			func(d flash.Vertex[bfsProps]) bool { return d.Val.Dis == inf32 },
			func(t, cur bfsProps) bfsProps { return t })
	}
	e.Gather(func(v graph.VID, val *bfsProps) {
		if val.Dis == inf32 {
			out[v] = -1
		} else {
			out[v] = val.Dis
		}
	})
	return nil
}
