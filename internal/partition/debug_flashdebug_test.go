//go:build flashdebug

package partition

import (
	"testing"

	"flash/graph"
	"flash/internal/bitset"
)

// TestSlotAssertsResidency verifies the flashdebug residency assertion:
// Slot on a non-resident vertex must panic instead of silently aliasing
// another slot.
func TestSlotAssertsResidency(t *testing.T) {
	const n, workers = 64, 4
	place := NewRange(n, workers)
	mirrors := bitset.New(n)
	mirrors.Set(40) // one mirror owned by another worker
	st := NewSlotTable(place, 0, mirrors)

	if got := st.Slot(graph.VID(40)); got != st.MasterCount() {
		t.Fatalf("mirror slot = %d, want %d", got, st.MasterCount())
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("Slot on a non-resident vertex did not panic under flashdebug")
		}
	}()
	st.Slot(graph.VID(50)) // owned by worker 3, not mirrored here
}
