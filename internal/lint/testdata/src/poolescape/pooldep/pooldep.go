// Package pooldep is the cross-package half of the poolescape fixture: the
// retention happens here, behind a call boundary the v1 intraprocedural
// analyzer could not see through. The dataflow summaries connect the Drain
// handler's frame to Stash's package-state append.
package pooldep

var stash [][]byte

// Stash retains its argument in package state.
func Stash(b []byte) { stash = append(stash, b) }

// Checksum only reads its argument — the pinned negative: summary-driven
// call checks must not flag synchronous read-only callees.
func Checksum(b []byte) int {
	t := 0
	for _, x := range b {
		t += int(x)
	}
	return t
}
