package partition

import (
	"testing"
	"testing/quick"

	"flash/graph"
)

func TestRangePlacementBijective(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{10, 3}, {7, 7}, {5, 8}, {0, 2}, {100, 1}} {
		p := NewRange(tc.n, tc.m)
		total := 0
		for w := 0; w < tc.m; w++ {
			total += p.LocalCount(w)
		}
		if total != tc.n {
			t.Fatalf("n=%d m=%d: LocalCount sum = %d", tc.n, tc.m, total)
		}
		for v := 0; v < tc.n; v++ {
			w := p.Owner(graph.VID(v))
			l := p.LocalIndex(graph.VID(v))
			if got := p.GlobalID(w, l); got != graph.VID(v) {
				t.Fatalf("n=%d m=%d v=%d: roundtrip gave %d", tc.n, tc.m, v, got)
			}
			if l < 0 || l >= p.LocalCount(w) {
				t.Fatalf("local index %d out of range", l)
			}
		}
	}
}

func TestRangeBalance(t *testing.T) {
	p := NewRange(10, 4)
	counts := []int{p.LocalCount(0), p.LocalCount(1), p.LocalCount(2), p.LocalCount(3)}
	for _, c := range counts {
		if c < 2 || c > 3 {
			t.Fatalf("unbalanced: %v", counts)
		}
	}
}

func TestHashPlacementBijective(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{10, 3}, {7, 7}, {5, 8}, {100, 1}} {
		p := NewHash(tc.n, tc.m)
		for v := 0; v < tc.n; v++ {
			w := p.Owner(graph.VID(v))
			l := p.LocalIndex(graph.VID(v))
			if got := p.GlobalID(w, l); got != graph.VID(v) {
				t.Fatalf("v=%d roundtrip %d", v, got)
			}
		}
		total := 0
		for w := 0; w < tc.m; w++ {
			total += p.LocalCount(w)
		}
		if total != tc.n {
			t.Fatalf("count sum %d != %d", total, tc.n)
		}
	}
}

func TestMirrorDiscovery(t *testing.T) {
	// Path 0-1-2-3 over 2 workers: worker0 owns {0,1}, worker1 owns {2,3}.
	g := graph.GenPath(4)
	p := New(g, NewRange(4, 2))
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Worker 0 must mirror vertex 2 (neighbor of 1); worker 1 must mirror 1.
	if !p.Parts[0].Mirrors.Test(2) {
		t.Error("worker 0 missing mirror of 2")
	}
	if !p.Parts[1].Mirrors.Test(1) {
		t.Error("worker 1 missing mirror of 1")
	}
	if p.Parts[0].Mirrors.Test(3) {
		t.Error("worker 0 should not mirror 3")
	}
	// Master 1 (worker 0, local 1) must list worker 1 as mirror holder.
	mw := p.Parts[0].MirrorWorkers[1]
	if len(mw) != 1 || mw[0] != 1 {
		t.Errorf("mirror workers of vertex 1 = %v", mw)
	}
	// Vertex 0's only neighbor is local, so no mirrors.
	if len(p.Parts[0].MirrorWorkers[0]) != 0 {
		t.Errorf("vertex 0 should have no mirrors, got %v", p.Parts[0].MirrorWorkers[0])
	}
}

func TestReplicationFactor(t *testing.T) {
	g := graph.GenComplete(8)
	p1 := New(g, NewRange(8, 1))
	if rf := p1.ReplicationFactor(); rf != 1 {
		t.Fatalf("single worker RF = %g", rf)
	}
	p4 := New(g, NewRange(8, 4))
	// Complete graph: every vertex mirrored on all other 3 workers -> RF 4.
	if rf := p4.ReplicationFactor(); rf != 4 {
		t.Fatalf("K8/4 workers RF = %g, want 4", rf)
	}
}

func TestDirectedMirrorsBothDirections(t *testing.T) {
	// Directed edge 0 -> 3 over 2 workers: each side mirrors the other
	// endpoint (pull reads sources, push writes targets).
	g := graph.FromEdges(4, true, [][2]graph.VID{{0, 3}})
	p := New(g, NewRange(4, 2))
	if !p.Parts[0].Mirrors.Test(3) {
		t.Error("source worker must mirror target")
	}
	if !p.Parts[1].Mirrors.Test(0) {
		t.Error("target worker must mirror source")
	}
}

func TestQuickInvariantsRandomGraphs(t *testing.T) {
	f := func(seed int64, nn, mm, ww uint8) bool {
		n := int(nn)%60 + 2
		m := int(mm) * 3
		w := int(ww)%6 + 1
		g := graph.GenErdosRenyi(n, m, seed)
		for _, place := range []Placement{NewRange(n, w), NewHash(n, w)} {
			if err := New(g, place).CheckInvariants(); err != nil {
				t.Logf("n=%d m=%d w=%d: %v", n, m, w, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRange(10, 0)
}
