package comm

import (
	"fmt"
	"net"
	"time"
)

// ClusterConfig configures one endpoint of a cross-process TCP mesh.
type ClusterConfig struct {
	// Workers is the total mesh size m.
	Workers int
	// Self is the resident worker id this process computes for.
	Self int
	// Listen is the address to bind the endpoint's listener on
	// (e.g. "127.0.0.1:0"); the bound address is advertised to peers by the
	// coordinator.
	Listen string
	// Epoch is the coordinator-assigned membership epoch. It is stamped into
	// every handshake and data frame; peers from a previous incarnation are
	// rejected at handshake, and their in-flight frames are discarded by
	// Drain's epoch check.
	Epoch uint32
}

// ListenTCPCluster opens one endpoint of a cross-process worker mesh: it
// binds the listener and starts accepting peer connections, but does not
// dial anyone. The mesh becomes usable after ConnectPeers completes the
// pairwise handshakes. Unlike NewTCP's in-process full mesh, the transport
// owns only the resident worker's row of sockets; Send/EndRound/Drain must
// be called with from == to == cfg.Self (other rows have no endpoint here —
// they live in the peer processes).
func ListenTCPCluster(cfg ClusterConfig) (*TCP, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("comm: cluster of %d workers", cfg.Workers)
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Workers {
		return nil, fmt.Errorf("comm: cluster self %d out of range [0,%d)", cfg.Self, cfg.Workers)
	}
	t := &TCP{
		m:         cfg.Workers,
		self:      cfg.Self,
		hub:       NewMem(cfg.Workers),
		errs:      make(chan error, 64),
		meshPeers: make(chan int, 4*cfg.Workers),
	}
	t.dial.Store(&defaultDial)
	t.hub.epoch.Store(cfg.Epoch)
	t.helloEpoch.Store(cfg.Epoch)
	t.conns = make([][]*tcpConn, cfg.Workers)
	t.conns[cfg.Self] = make([]*tcpConn, cfg.Workers)
	for p := 0; p < cfg.Workers; p++ {
		if p != cfg.Self {
			t.conns[cfg.Self][p] = &tcpConn{}
		}
	}
	t.lns = make([]net.Listener, cfg.Workers)
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("comm: cluster listen %s: %w", cfg.Listen, err)
	}
	t.lns[cfg.Self] = ln
	t.ioWG.Add(1)
	go func() {
		defer t.ioWG.Done()
		t.acceptLoop(cfg.Self, nil)
	}()
	return t, nil
}

// Addr returns the endpoint's bound listen address ("" for an in-process
// transport).
func (t *TCP) Addr() string {
	if t.self >= 0 && t.lns[t.self] != nil {
		return t.lns[t.self].Addr().String()
	}
	return ""
}

// Self returns the resident worker id, or -1 for an in-process full mesh.
func (t *TCP) Self() int { return t.self }

// ConnectPeers completes the cluster mesh. addrs[i] is peer i's advertised
// listen address (addrs[self] is ignored). Following the same pairing rule
// as the in-process mesh — the higher id dials the lower — the endpoint
// dials every peer below self with retry/backoff until the deadline, and
// waits for every peer above self to dial in. Hostile or stale connections
// arriving meanwhile are rejected by the handshake without failing the wait.
func (t *TCP) ConnectPeers(addrs []string, timeout time.Duration) error {
	if t.self < 0 {
		return fmt.Errorf("comm: ConnectPeers on an in-process transport")
	}
	if len(addrs) != t.m {
		return fmt.Errorf("comm: ConnectPeers got %d addresses for a mesh of %d", len(addrs), t.m)
	}
	deadline := time.Now().Add(timeout)
	for p := 0; p < t.m; p++ {
		if p != t.self {
			t.conns[t.self][p].addr = addrs[p]
		}
	}
	for p := 0; p < t.self; p++ {
		if err := t.clusterDial(p, deadline); err != nil {
			return err
		}
	}
	want := t.m - t.self - 1
	seen := make(map[int]bool, want)
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for len(seen) < want {
		select {
		case p := <-t.meshPeers:
			if p > t.self {
				seen[p] = true
			}
		case <-timer.C:
			return fmt.Errorf("comm: cluster handshake timeout: %d/%d upper peers connected to worker %d", len(seen), want, t.self)
		}
	}
	t.setupDone.Store(true)
	return nil
}

// clusterDial establishes the socket to peer p (p < self) with capped
// exponential backoff: peers are spawned concurrently and p's listener may
// not be up yet on the first attempts.
func (t *TCP) clusterDial(p int, deadline time.Time) error {
	tc := t.conns[t.self][p]
	backoff := tcpBackoffBase
	for {
		c, err := t.dialPeer(tc.addr)
		if err == nil {
			if _, werr := c.Write(t.hello(t.self)); werr != nil {
				c.Close()
				err = werr
			}
		}
		if err == nil {
			tc.replace(c)
			t.startReadLoop(t.self, p, c)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("comm: cluster dial worker %d (%s): %w", p, tc.addr, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > tcpBackoffCap {
			backoff = tcpBackoffCap
		}
	}
}

// DropPeers severs every live peer socket without closing the transport or
// the listener — the process-level network-partition fault. Writes fail with
// ErrConnDropped until the retry path redials (lower peers) or the peer
// redials our listener (upper peers), so the partition heals through the
// same reconnect machinery a genuine network flap would exercise.
func (t *TCP) DropPeers() {
	if t.self < 0 {
		return
	}
	for _, tc := range t.conns[t.self] {
		if tc != nil {
			tc.drop()
		}
	}
}
