package algo

import (
	"sort"

	"flash"
	"flash/graph"
)

type tcProps struct {
	Count int64
	Out   []uint32 // higher-ranked neighbors, sorted
}

// TC counts triangles with the ranked edge-iterator algorithm (paper
// Algorithm 14): each vertex first materializes its higher-ranked neighbor
// list, then every edge (s, d) with s.id < d.id intersects the two lists;
// the ranking ensures each triangle is counted exactly once, at the edge
// joining its two lowest-ranked corners.
func TC(g *graph.Graph, opts ...flash.Option) (int64, error) {
	e, err := newEngine[tcProps](g, opts)
	if err != nil {
		return 0, err
	}
	defer e.Close()

	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[tcProps]) tcProps {
		return tcProps{}
	})
	// Build the ranked out-lists.
	e.EdgeMap(u, e.E(),
		func(s, d flash.Vertex[tcProps]) bool { return rankAbove(s, d) },
		func(s, d flash.Vertex[tcProps]) tcProps {
			nv := *d.Val
			nv.Out = append(append([]uint32(nil), nv.Out...), uint32(s.ID))
			return nv
		},
		nil,
		func(t, cur tcProps) tcProps {
			cur.Out = append(cur.Out, t.Out...)
			return cur
		})
	e.VertexMap(u, nil, func(v flash.Vertex[tcProps]) tcProps {
		nv := *v.Val
		sort.Slice(nv.Out, func(i, j int) bool { return nv.Out[i] < nv.Out[j] })
		return nv
	})
	// Intersect along each undirected edge once (s.id < d.id).
	e.EdgeMap(u, e.E(),
		func(s, d flash.Vertex[tcProps]) bool { return s.ID < d.ID },
		func(s, d flash.Vertex[tcProps]) tcProps {
			nv := *d.Val
			nv.Count += intersectCount(s.Val.Out, d.Val.Out)
			return nv
		},
		nil,
		func(t, cur tcProps) tcProps {
			cur.Count += t.Count
			return cur
		},
		flash.NoSync()) // Count is extracted driver-side, never read remotely

	return e.SumInt64(func(_ graph.VID, val *tcProps) int64 { return val.Count }), nil
}

// intersectCount returns |a ∩ b| for sorted slices.
func intersectCount(a, b []uint32) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
