// FLASHBLK: the block-oriented on-disk edge backend.
//
// A Graph keeps the whole CSR resident, so every engine run is bounded by
// heap size, not by the algorithm. Following M-Flash's block processing model
// and FlashGraph's SSD-backed adjacency lists, a BlockGraph keeps only the
// O(|V|) degree/offset arrays and a small block index in memory; the
// adjacency itself lives in fixed-target-size compressed blocks on disk,
// varint-delta encoded (the KV frame codec's discipline applied to edges) and
// individually CRC-protected, so a worker reads exactly the blocks a
// superstep touches.
//
// File layout (little-endian), same header/checksum/atomic-rename discipline
// as the FLASHCKP checkpoint store:
//
//	magic     [8]byte "FLASHBLK"
//	version   u16 (currently 1)
//	flags     u16 (bit0 weighted, bit1 directed)
//	blockSize u32 (target encoded block size the writer used)
//	n, m      u64
//	nameLen   u32
//	degOutLen u32 | degOutCRC u32
//	degInLen  u32 | degInCRC u32   (directed only; 0 otherwise)
//	nOut      u32 | nIn u32
//	reserved  u32
//	payloadLen u64
//	name bytes, degOut bytes, degIn bytes
//	out table: nOut × (first u32 | nv u32 | edges u32 | off u64 | encLen u32 | crc u32), then table CRC u32
//	in  table: likewise
//	padding to 64
//	payload: blocks, each 64-byte aligned (mmap/pread friendly), offsets
//	         relative to the payload start
//
// Every vertex's adjacency lives entirely inside one block (a vertex whose
// list exceeds the target size gets an oversize block of its own), so one
// block read answers any Out(u)/In(v) query. Degree sections are uvarint
// streams; block payloads encode each vertex's sorted neighbor list as an
// absolute uvarint followed by uvarint gaps, then the raw float32 weights
// when the graph is weighted. An undirected graph stores only the out
// direction — its in-adjacency is identical by symmetry — halving the file
// and letting one cached block serve both kernels.
//
// The decoder validates everything before trusting it: magic, version, flag
// bits, section lengths against the file size, degree sums against m, block
// tables for contiguous vertex coverage and offset bounds, and a CRC32-C
// (Castagnoli) per block at read time. A truncated, bit-flipped, or hostile
// file fails loudly instead of decoding garbage topology.
package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
)

// Block directions for BlockGraph.ReadBlock and BlockCache.Get.
const (
	BlockOut = 0
	BlockIn  = 1
)

// DefaultBlockSize is the writer's default target encoded block size.
const DefaultBlockSize = 64 << 10

const (
	blkMagic     = "FLASHBLK"
	blkVersion   = 1
	blkHdrSize   = 72
	blkAlign     = 64
	blkEntrySize = 28
	blkFlagW     = 1 << 0
	blkFlagDir   = 1 << 1
	blkMaxName   = 1 << 16
	blkMaxBlocks = 1 << 24
	blkMaxEnc    = 1 << 30
)

var blkCRCTable = crc32.MakeTable(crc32.Castagnoli)

// blockMeta is one decoded block-table entry: the contiguous vertex range the
// block covers, its edge count, and where its encoded bytes live.
type blockMeta struct {
	first  VID
	nv     uint32
	edges  uint32
	off    uint64 // payload-relative, blkAlign-aligned
	encLen uint32
	crc    uint32
}

// DecodedBlock is one block's adjacency decoded into CSR form, the unit the
// block cache holds: neighbor slices for every vertex in [First, First+nv).
type DecodedBlock struct {
	first VID
	nv    int
	base  int64   // global edge offset of the block's first edge
	off   []int64 // global offsets, off[i] is vertex first+i (len nv+1)
	adj   []VID
	ws    []float32 // nil when unweighted
	enc   int       // encoded size on disk (stats)
}

// First returns the first vertex the block covers.
func (b *DecodedBlock) First() VID { return b.first }

// Contains reports whether v's adjacency lives in this block.
func (b *DecodedBlock) Contains(v VID) bool {
	return v >= b.first && int(v-b.first) < b.nv
}

// Adj returns v's neighbor slice and aligned weights (nil when unweighted).
// v must be inside the block. Callers must not modify the slices.
//
//flash:hotpath
func (b *DecodedBlock) Adj(v VID) ([]VID, []float32) {
	i := int(v - b.first)
	lo, hi := b.off[i]-b.base, b.off[i+1]-b.base
	if b.ws == nil {
		return b.adj[lo:hi], nil
	}
	return b.adj[lo:hi], b.ws[lo:hi]
}

// Bytes returns the decoded resident footprint, the unit of cache accounting.
func (b *DecodedBlock) Bytes() int64 {
	return int64(cap(b.adj))*4 + int64(cap(b.ws))*4 + 64
}

// EncLen returns the block's encoded size on disk.
func (b *DecodedBlock) EncLen() int { return b.enc }

// BlockGraph is an out-of-core graph: the topology skeleton (degrees and
// offsets) in memory, the adjacency in FLASHBLK blocks behind an io.ReaderAt.
// Block reads are safe for concurrent use; the sequential-scan accessors
// (OutNeighbors/InNeighbors) serialize on an internal one-block MRU and exist
// for whole-graph passes such as partition construction.
type BlockGraph struct {
	r      io.ReaderAt
	closer io.Closer // nil for in-memory readers

	n, m      int
	directed  bool
	weighted  bool
	name      string
	blockSize int

	outOff, inOff []int64 // inOff aliases outOff when undirected
	blocks        [2][]blockMeta
	payloadStart  int64

	mu   sync.Mutex
	skel *Graph
	seq  [2]*DecodedBlock // per-direction MRU for sequential scans
}

// NumVertices returns |V|.
func (bg *BlockGraph) NumVertices() int { return bg.n }

// NumEdges returns the number of stored directed edges (undirected edges
// count twice, matching Graph.NumEdges).
func (bg *BlockGraph) NumEdges() int { return bg.m }

// Directed reports whether the graph was built as directed.
func (bg *BlockGraph) Directed() bool { return bg.directed }

// Weighted reports whether edge weights are stored.
func (bg *BlockGraph) Weighted() bool { return bg.weighted }

// Name returns the dataset name recorded at write time.
func (bg *BlockGraph) Name() string { return bg.name }

// mapDir folds the logical direction onto the stored one: an undirected
// graph stores only out-blocks and serves in-queries from them by symmetry.
func (bg *BlockGraph) mapDir(dir int) int {
	if !bg.directed {
		return BlockOut
	}
	return dir
}

// NumBlocks returns the number of blocks serving the given direction.
func (bg *BlockGraph) NumBlocks(dir int) int { return len(bg.blocks[bg.mapDir(dir)]) }

// blockOf locates the block covering v in the (mapped) direction by binary
// search over the contiguous first-vertex ranges.
//
//flash:hotpath
func (bg *BlockGraph) blockOf(d int, v VID) int {
	ms := bg.blocks[d]
	lo, hi := 0, len(ms)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ms[mid].first <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// OutBlockOf returns the index of the block holding u's out-adjacency.
//
//flash:hotpath
func (bg *BlockGraph) OutBlockOf(u VID) int { return bg.blockOf(BlockOut, u) }

// InBlockOf returns the index of the block holding v's in-adjacency.
//
//flash:hotpath
func (bg *BlockGraph) InBlockOf(v VID) int { return bg.blockOf(bg.mapDir(BlockIn), v) }

// dirOff returns the stored direction's offset array.
func (bg *BlockGraph) dirOff(d int) []int64 {
	if d == BlockOut {
		return bg.outOff
	}
	return bg.inOff
}

// ReadBlock reads, CRC-verifies, and decodes one block. Every call allocates
// a fresh DecodedBlock; callers wanting reuse go through a BlockCache.
func (bg *BlockGraph) ReadBlock(dir, idx int) (*DecodedBlock, error) {
	d := bg.mapDir(dir)
	if idx < 0 || idx >= len(bg.blocks[d]) {
		return nil, fmt.Errorf("graph: block %d/%d out of range", d, idx)
	}
	mt := bg.blocks[d][idx]
	buf := make([]byte, mt.encLen)
	if _, err := bg.r.ReadAt(buf, bg.payloadStart+int64(mt.off)); err != nil {
		return nil, fmt.Errorf("graph: block %d/%d read: %w", d, idx, err)
	}
	if crc32.Checksum(buf, blkCRCTable) != mt.crc {
		return nil, fmt.Errorf("graph: block %d/%d crc mismatch", d, idx)
	}
	return bg.decodeBlock(d, mt, buf)
}

// decodeBlock expands one verified block payload into CSR form, validating
// varint framing, vid bounds, and the exact byte budget.
func (bg *BlockGraph) decodeBlock(d int, mt blockMeta, data []byte) (*DecodedBlock, error) {
	off := bg.dirOff(d)
	adj := make([]VID, mt.edges)
	var ws []float32
	if bg.weighted {
		ws = make([]float32, mt.edges)
	}
	pos, k := 0, 0
	for v := int(mt.first); v < int(mt.first)+int(mt.nv); v++ {
		deg := int(off[v+1] - off[v])
		prev := uint64(0)
		for i := 0; i < deg; i++ {
			x, sz := binary.Uvarint(data[pos:])
			if sz <= 0 {
				return nil, fmt.Errorf("graph: block truncated decoding vertex %d", v)
			}
			pos += sz
			if i == 0 {
				prev = x
			} else {
				prev += x
			}
			if prev >= uint64(bg.n) {
				return nil, fmt.Errorf("graph: block vid %d out of range at vertex %d", prev, v)
			}
			adj[k] = VID(prev)
			k++
		}
		if bg.weighted {
			need := 4 * deg
			if pos+need > len(data) {
				return nil, fmt.Errorf("graph: block truncated in weights of vertex %d", v)
			}
			for i := 0; i < deg; i++ {
				ws[k-deg+i] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos+4*i:]))
			}
			pos += need
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("graph: %d trailing bytes in block", len(data)-pos)
	}
	return &DecodedBlock{
		first: mt.first,
		nv:    int(mt.nv),
		base:  off[mt.first],
		off:   off[mt.first : int(mt.first)+int(mt.nv)+1],
		adj:   adj,
		ws:    ws,
		enc:   len(data),
	}, nil
}

// seqAdj serves the sequential-scan accessors through a one-block-per-
// direction MRU: an ascending-vertex pass (partition construction, stats)
// decodes each block exactly once. I/O or corruption errors panic — these
// accessors mirror Graph's infallible signatures and a block file that fails
// mid-scan is unusable anyway.
//
//flash:blockowner the MRU slot is the sanctioned one-block residency
func (bg *BlockGraph) seqAdj(dir int, v VID) []VID {
	d := bg.mapDir(dir)
	bg.mu.Lock()
	defer bg.mu.Unlock()
	b := bg.seq[d]
	if b == nil || !b.Contains(v) {
		dec, err := bg.ReadBlock(d, bg.blockOf(d, v))
		if err != nil {
			panic(fmt.Sprintf("graph: block scan: %v", err))
		}
		bg.seq[d] = dec
		b = dec
	}
	adj, _ := b.Adj(v)
	return adj
}

// OutNeighbors returns u's out-neighbors via the sequential-scan MRU. It
// implements the partitioner's adjacency interface; engine hot paths use a
// BlockCache instead.
func (bg *BlockGraph) OutNeighbors(u VID) []VID { return bg.seqAdj(BlockOut, u) }

// InNeighbors returns v's in-neighbors via the sequential-scan MRU.
func (bg *BlockGraph) InNeighbors(v VID) []VID { return bg.seqAdj(BlockIn, v) }

// Skeleton returns the in-memory topology skeleton: a *Graph with real
// degrees and offsets but no adjacency arrays. Engines run over the skeleton
// (degree hints, density rule, subset sizing all work unchanged) while edge
// iteration goes through the block backend; touching the skeleton's
// adjacency directly panics with a descriptive message. The same pointer is
// returned on every call, so engine configuration can verify identity.
func (bg *BlockGraph) Skeleton() *Graph {
	bg.mu.Lock()
	defer bg.mu.Unlock()
	if bg.skel == nil {
		bg.skel = &Graph{
			n:           bg.n,
			m:           bg.m,
			outOff:      bg.outOff,
			inOff:       bg.inOff,
			directed:    bg.directed,
			name:        bg.name,
			oocWeighted: bg.weighted,
		}
	}
	return bg.skel
}

// EdgeBytes returns the total decoded adjacency payload the file represents:
// the bytes a full in-memory CSR of the stored directions would hold. Cache
// budgets are naturally expressed as a fraction of this.
func (bg *BlockGraph) EdgeBytes() uint64 {
	per := uint64(4)
	if bg.weighted {
		per += 4
	}
	dirs := uint64(1)
	if bg.directed {
		dirs = 2
	}
	return uint64(bg.m) * per * dirs
}

// IndexBytes returns the resident footprint of the in-memory index: offset
// arrays and block tables. Together with a cache budget this is what an
// out-of-core graph costs in RAM.
func (bg *BlockGraph) IndexBytes() uint64 {
	total := uint64(cap(bg.outOff)) * 8
	if bg.directed {
		total += uint64(cap(bg.inOff)) * 8
	}
	for d := range bg.blocks {
		total += uint64(cap(bg.blocks[d])) * blkEntrySize
	}
	return total
}

// Close releases the underlying file (no-op for in-memory readers).
func (bg *BlockGraph) Close() error {
	if bg.closer != nil {
		return bg.closer.Close()
	}
	return nil
}

// ---- writer ----

// appendVertexAdj appends one vertex's sorted adjacency as an absolute
// uvarint plus uvarint gaps, then its raw little-endian float32 weights.
func appendVertexAdj(buf []byte, adj []VID, ws []float32) []byte {
	prev := VID(0)
	for i, d := range adj {
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(d))
		} else {
			buf = binary.AppendUvarint(buf, uint64(d-prev))
		}
		prev = d
	}
	for _, w := range ws {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(w))
	}
	return buf
}

// padTo zero-pads buf to the next multiple of align.
func padTo(buf []byte, align int) []byte {
	for len(buf)%align != 0 {
		buf = append(buf, 0)
	}
	return buf
}

// packBlocks greedily packs vertices 0..n-1 into blocks of at least target
// encoded bytes (except the last), returning the table entries and the
// payload extended with the new, 64-byte-aligned blocks. A single vertex
// whose list exceeds the target gets an oversize block of its own; every
// vertex's adjacency stays within one block.
//
//flash:deterministic
func packBlocks(n, target int, payload []byte, adjOf func(VID) []VID, wOf func(VID) []float32) ([]blockMeta, []byte) {
	var metas []blockMeta
	if n == 0 {
		return metas, payload
	}
	payload = padTo(payload, blkAlign)
	start, first, edges := len(payload), 0, 0
	seal := func(next int) {
		enc := payload[start:]
		metas = append(metas, blockMeta{
			first:  VID(first),
			nv:     uint32(next - first),
			edges:  uint32(edges),
			off:    uint64(start),
			encLen: uint32(len(enc)),
			crc:    crc32.Checksum(enc, blkCRCTable),
		})
	}
	for v := 0; v < n; v++ {
		if len(payload)-start >= target && v > first {
			seal(v)
			payload = padTo(payload, blkAlign)
			start, first, edges = len(payload), v, 0
		}
		adj := adjOf(VID(v))
		payload = appendVertexAdj(payload, adj, wOf(VID(v)))
		edges += len(adj)
	}
	seal(n)
	return metas, payload
}

// appendDegrees appends n uvarint degrees derived from an offset array.
func appendDegrees(buf []byte, off []int64, n int) []byte {
	for v := 0; v < n; v++ {
		buf = binary.AppendUvarint(buf, uint64(off[v+1]-off[v]))
	}
	return buf
}

func appendBlockTable(buf []byte, metas []blockMeta) []byte {
	start := len(buf)
	for _, mt := range metas {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(mt.first))
		buf = binary.LittleEndian.AppendUint32(buf, mt.nv)
		buf = binary.LittleEndian.AppendUint32(buf, mt.edges)
		buf = binary.LittleEndian.AppendUint64(buf, mt.off)
		buf = binary.LittleEndian.AppendUint32(buf, mt.encLen)
		buf = binary.LittleEndian.AppendUint32(buf, mt.crc)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], blkCRCTable))
}

// EncodeBlockFile serializes g into the FLASHBLK format with the given
// target block size (<= 0 selects DefaultBlockSize).
//
//flash:deterministic
func EncodeBlockFile(g *Graph, blockSize int) []byte {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	name := g.name
	if len(name) >= blkMaxName {
		name = name[:blkMaxName-1]
	}

	var payload []byte
	outMetas, payload := packBlocks(g.n, blockSize, payload,
		func(u VID) []VID { return g.OutNeighbors(u) },
		func(u VID) []float32 { return g.OutWeights(u) })
	var inMetas []blockMeta
	if g.directed {
		inMetas, payload = packBlocks(g.n, blockSize, payload,
			func(v VID) []VID { return g.InNeighbors(v) },
			func(v VID) []float32 { return g.InWeights(v) })
	}
	payload = padTo(payload, blkAlign)

	var meta []byte
	meta = append(meta, name...)
	degStart := len(meta)
	meta = appendDegrees(meta, g.outOff, g.n)
	degOut := meta[degStart:]
	degOutLen, degOutCRC := uint32(len(degOut)), crc32.Checksum(degOut, blkCRCTable)
	degStart = len(meta)
	if g.directed {
		meta = appendDegrees(meta, g.inOff, g.n)
	}
	degIn := meta[degStart:]
	degInLen, degInCRC := uint32(len(degIn)), crc32.Checksum(degIn, blkCRCTable)
	meta = appendBlockTable(meta, outMetas)
	meta = appendBlockTable(meta, inMetas)

	var flags uint16
	if g.Weighted() {
		flags |= blkFlagW
	}
	if g.directed {
		flags |= blkFlagDir
	}
	hdr := make([]byte, 0, blkHdrSize)
	hdr = append(hdr, blkMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, blkVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, flags)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(blockSize))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(g.n))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(g.m))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(name)))
	hdr = binary.LittleEndian.AppendUint32(hdr, degOutLen)
	hdr = binary.LittleEndian.AppendUint32(hdr, degOutCRC)
	hdr = binary.LittleEndian.AppendUint32(hdr, degInLen)
	hdr = binary.LittleEndian.AppendUint32(hdr, degInCRC)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(outMetas)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(inMetas)))
	hdr = binary.LittleEndian.AppendUint32(hdr, 0) // reserved
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(payload)))

	file := append(hdr, meta...)
	file = padTo(file, blkAlign)
	return append(file, payload...)
}

// WriteBlockFile encodes g and writes it atomically: temp file in the target
// directory, sync, rename — a crash mid-write never leaves a torn file
// visible (the FLASHCKP FileStore discipline).
func WriteBlockFile(g *Graph, path string, blockSize int) error {
	buf := EncodeBlockFile(g, blockSize)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("graph: block file write: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("graph: block file write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("graph: block file write: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("graph: block file write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("graph: block file write: %w", err)
	}
	return nil
}

// ---- reader ----

// IsBlockFile reports whether the file at path starts with the FLASHBLK
// magic (catalog loaders use it to dispatch between edge lists and block
// graphs).
func IsBlockFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == blkMagic
}

// OpenBlockFile opens and validates a FLASHBLK file. The returned BlockGraph
// holds the file open until Close.
func OpenBlockFile(path string) (*BlockGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: block file open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("graph: block file open: %w", err)
	}
	bg, err := OpenBlockReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	bg.closer = f
	return bg, nil
}

// decodeDegreeOffsets turns a uvarint degree section into a prefix-sum
// offset array, validating the exact byte budget and the edge-count sum.
func decodeDegreeOffsets(data []byte, n int, m uint64, what string) ([]int64, error) {
	off := make([]int64, n+1)
	pos := 0
	var sum uint64
	for v := 0; v < n; v++ {
		d, sz := binary.Uvarint(data[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("graph: block file %s degrees truncated at vertex %d", what, v)
		}
		pos += sz
		sum += d
		if sum > m {
			return nil, fmt.Errorf("graph: block file %s degrees exceed edge count", what)
		}
		off[v+1] = off[v] + int64(d)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("graph: %d trailing bytes in block file %s degrees", len(data)-pos, what)
	}
	if sum != m {
		return nil, fmt.Errorf("graph: block file %s degrees sum to %d, header says %d", what, sum, m)
	}
	return off, nil
}

// decodeBlockTable parses and validates one direction's block table: CRC,
// contiguous vertex coverage, edge counts consistent with the offsets, and
// aligned in-bounds payload ranges.
func decodeBlockTable(data []byte, nb, n int, off []int64, payloadLen uint64, what string) ([]blockMeta, error) {
	if crc32.Checksum(data[:nb*blkEntrySize], blkCRCTable) != binary.LittleEndian.Uint32(data[nb*blkEntrySize:]) {
		return nil, fmt.Errorf("graph: block file %s table crc mismatch", what)
	}
	metas := make([]blockMeta, nb)
	next := VID(0)
	prevEnd := uint64(0)
	for i := 0; i < nb; i++ {
		e := data[i*blkEntrySize:]
		mt := blockMeta{
			first:  VID(binary.LittleEndian.Uint32(e)),
			nv:     binary.LittleEndian.Uint32(e[4:]),
			edges:  binary.LittleEndian.Uint32(e[8:]),
			off:    binary.LittleEndian.Uint64(e[12:]),
			encLen: binary.LittleEndian.Uint32(e[20:]),
			crc:    binary.LittleEndian.Uint32(e[24:]),
		}
		if mt.first != next || mt.nv == 0 || uint64(mt.first)+uint64(mt.nv) > uint64(n) {
			return nil, fmt.Errorf("graph: block file %s table entry %d breaks vertex coverage", what, i)
		}
		next = mt.first + VID(mt.nv)
		if span := off[int(mt.first)+int(mt.nv)] - off[mt.first]; span != int64(mt.edges) {
			return nil, fmt.Errorf("graph: block file %s table entry %d edge count %d != offset span %d", what, i, mt.edges, span)
		}
		if mt.off%blkAlign != 0 || mt.off < prevEnd || mt.encLen > blkMaxEnc ||
			mt.off+uint64(mt.encLen) > payloadLen {
			return nil, fmt.Errorf("graph: block file %s table entry %d has bad payload range", what, i)
		}
		prevEnd = mt.off + uint64(mt.encLen)
		metas[i] = mt
	}
	if int(next) != n {
		return nil, fmt.Errorf("graph: block file %s table covers %d of %d vertices", what, next, n)
	}
	return metas, nil
}

// OpenBlockReader validates a FLASHBLK image behind any io.ReaderAt (a file,
// or bytes for tests and the fuzz target). Only the header, degree sections,
// and block tables are read eagerly; block payloads are verified against
// their CRCs lazily at ReadBlock time.
func OpenBlockReader(r io.ReaderAt, size int64) (*BlockGraph, error) {
	if size < blkHdrSize {
		return nil, fmt.Errorf("graph: block file truncated: %d bytes", size)
	}
	hdr := make([]byte, blkHdrSize)
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("graph: block file header: %w", err)
	}
	if string(hdr[:8]) != blkMagic {
		return nil, fmt.Errorf("graph: not a block file (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != blkVersion {
		return nil, fmt.Errorf("graph: unsupported block file version %d (want %d)", v, blkVersion)
	}
	flags := binary.LittleEndian.Uint16(hdr[10:])
	if flags&^uint16(blkFlagW|blkFlagDir) != 0 {
		return nil, fmt.Errorf("graph: unknown block file flags %#x", flags)
	}
	blockSize := binary.LittleEndian.Uint32(hdr[12:])
	n64 := binary.LittleEndian.Uint64(hdr[16:])
	m64 := binary.LittleEndian.Uint64(hdr[24:])
	nameLen := binary.LittleEndian.Uint32(hdr[32:])
	degOutLen := binary.LittleEndian.Uint32(hdr[36:])
	degOutCRC := binary.LittleEndian.Uint32(hdr[40:])
	degInLen := binary.LittleEndian.Uint32(hdr[44:])
	degInCRC := binary.LittleEndian.Uint32(hdr[48:])
	nOut := binary.LittleEndian.Uint32(hdr[52:])
	nIn := binary.LittleEndian.Uint32(hdr[56:])
	payloadLen := binary.LittleEndian.Uint64(hdr[64:])

	directed := flags&blkFlagDir != 0
	weighted := flags&blkFlagW != 0
	if n64 > uint64(size) || (n64 > 0 && n64 > uint64(degOutLen)) {
		// Each vertex's degree costs at least one uvarint byte, so a header
		// claiming more vertices than degree bytes is hostile or corrupt.
		return nil, fmt.Errorf("graph: block file vertex count %d inconsistent with degree section", n64)
	}
	if m64 > payloadLen || payloadLen > uint64(size) {
		return nil, fmt.Errorf("graph: block file edge count %d inconsistent with payload", m64)
	}
	n, m := int(n64), int(m64)
	if nameLen >= blkMaxName || nOut > blkMaxBlocks || nIn > blkMaxBlocks ||
		int(nOut) > n+1 || int(nIn) > n+1 {
		return nil, fmt.Errorf("graph: block file header out of bounds")
	}
	if !directed && (degInLen != 0 || nIn != 0) {
		return nil, fmt.Errorf("graph: undirected block file carries an in direction")
	}
	if directed && n > 0 && n64 > uint64(degInLen) {
		return nil, fmt.Errorf("graph: block file in-degree section too short")
	}
	if (n > 0) != (nOut > 0) || (directed && (n > 0) != (nIn > 0)) {
		return nil, fmt.Errorf("graph: block file block count inconsistent with vertex count")
	}

	metaLen := int64(nameLen) + int64(degOutLen) + int64(degInLen) +
		int64(nOut)*blkEntrySize + 4 + int64(nIn)*blkEntrySize + 4
	payloadStart := (blkHdrSize + metaLen + blkAlign - 1) / blkAlign * blkAlign
	if payloadStart+int64(payloadLen) != size {
		return nil, fmt.Errorf("graph: block file size %d, want %d meta + %d payload",
			size, payloadStart, payloadLen)
	}
	meta := make([]byte, metaLen)
	if _, err := r.ReadAt(meta, blkHdrSize); err != nil {
		return nil, fmt.Errorf("graph: block file metadata: %w", err)
	}
	name := string(meta[:nameLen])
	meta = meta[nameLen:]
	degOut := meta[:degOutLen]
	meta = meta[degOutLen:]
	degIn := meta[:degInLen]
	meta = meta[degInLen:]
	if crc32.Checksum(degOut, blkCRCTable) != degOutCRC {
		return nil, fmt.Errorf("graph: block file out-degree crc mismatch")
	}
	if crc32.Checksum(degIn, blkCRCTable) != degInCRC {
		return nil, fmt.Errorf("graph: block file in-degree crc mismatch")
	}
	outOff, err := decodeDegreeOffsets(degOut, n, m64, "out")
	if err != nil {
		return nil, err
	}
	inOff := outOff
	if directed {
		if inOff, err = decodeDegreeOffsets(degIn, n, m64, "in"); err != nil {
			return nil, err
		}
	}
	outTable := meta[:int(nOut)*blkEntrySize+4]
	inTable := meta[int(nOut)*blkEntrySize+4:]
	outMetas, err := decodeBlockTable(outTable, int(nOut), n, outOff, payloadLen, "out")
	if err != nil {
		return nil, err
	}
	var inMetas []blockMeta
	if directed {
		if inMetas, err = decodeBlockTable(inTable, int(nIn), n, inOff, payloadLen, "in"); err != nil {
			return nil, err
		}
	}
	return &BlockGraph{
		r:            r,
		n:            n,
		m:            m,
		directed:     directed,
		weighted:     weighted,
		name:         name,
		blockSize:    int(blockSize),
		outOff:       outOff,
		inOff:        inOff,
		blocks:       [2][]blockMeta{outMetas, inMetas},
		payloadStart: payloadStart,
	}, nil
}
