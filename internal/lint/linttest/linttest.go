// Package linttest is a dependency-free analogue of
// golang.org/x/tools/go/analysis/analysistest: it type-checks a fixture
// directory, runs one analyzer over it, and compares the diagnostics against
// `// want "regexp"` comments in the fixture source.
//
// Expectation syntax, on the line the diagnostic is expected:
//
//	x := f() // want "part of the message" "second diagnostic on this line"
//
// Quoted strings are regular expressions matched against the diagnostic
// message. Every diagnostic must match a want on its line and every want
// must be matched by a diagnostic — both directions fail the test.
// Fixture files ending in _test.go are not analyzed (mirroring the real
// loader), which is how test-only negative cases are expressed.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"flash/internal/lint"
)

// expectation is one want clause.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads fixtureDir — plus any immediate subdirectories, importable as
// "<fixture>/<sub>", so fixtures can model cross-package dataflow — and
// checks analyzer's diagnostics against the want comments in every loaded
// file.
func Run(t *testing.T, fixtureDir string, analyzer *lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.LoadTree(fixtureDir, fixtureDir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s: %v", analyzer.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	for _, d := range diags {
		if !consumeWant(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

var wantClause = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantClause.FindAllStringSubmatch(text[len("want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

func consumeWant(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// Describe returns a short human-readable summary of the diagnostics, used
// by debugging helpers.
func Describe(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s\n", d)
	}
	return b.String()
}
