// Chaos soak test: the full public stack (algo → flash → core → comm) run
// under a seeded Faulty transport with connection drops, worker stalls,
// probabilistic send failures and frame delay/reordering. The runtime must
// absorb every injected fault through retry and checkpoint recovery and
// produce results identical to the fault-free run.
package flash_test

import (
	"fmt"
	"testing"
	"time"

	"flash"
	"flash/algo"
	"flash/graph"
	"flash/metrics"
)

// chaosPlan scripts, for a w-worker engine, at least one transient connection
// drop and one worker stall (the acceptance scenario) plus background
// probabilistic faults, all seeded for reproducibility.
func chaosPlan(seed int64, w int) flash.FaultPlan {
	p := flash.FaultPlan{
		Seed:         seed,
		SendFailProb: 0.02,
		MaxSendFails: 10,
		DelayProb:    0.2,
		Reorder:      true,
	}
	if w >= 2 {
		p.Drops = []flash.ConnDrop{{From: 1, To: 0, Round: 2, Count: 2}}
		p.Stalls = []flash.WorkerStall{{Worker: w - 1, Round: 3, Delay: 250 * time.Millisecond}}
		p.Crashes = []flash.WorkerCrash{{Worker: 0, Round: 6}}
	}
	return p
}

// chaosOpts arms recovery: frequent checkpoints and a drain timeout that
// turns the scripted stall into a detectable failure.
func chaosOpts(w int, seed int64, col *metrics.Collector) []flash.Option {
	return []flash.Option{
		flash.WithWorkers(w),
		flash.WithCollector(col),
		flash.WithCheckpointEvery(2),
		flash.WithDrainTimeout(80 * time.Millisecond),
		flash.WithFaultPlan(chaosPlan(seed, w)),
	}
}

func TestChaosBFSAndCCMatchFaultFree(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":   graph.GenErdosRenyi(200, 900, 5),
		"rmat": graph.GenRMAT(256, 1024, 6),
	}
	for name, g := range graphs {
		wantDis, err := algo.BFS(g, 0, flash.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		wantCC, err := algo.CC(g, flash.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		// testing/quick-style iteration: every (workers, seed) cell runs the
		// same scripted faults with a different probabilistic-fault stream.
		for _, w := range []int{1, 2, 3, 4, 8} {
			for seed := int64(0); seed < 3; seed++ {
				t.Run(fmt.Sprintf("%s/w%d/seed%d", name, w, seed), func(t *testing.T) {
					col := metrics.New()
					gotDis, err := algo.BFS(g, 0, chaosOpts(w, seed, col)...)
					if err != nil {
						t.Fatalf("bfs under chaos: %v", err)
					}
					for v := range wantDis {
						if gotDis[v] != wantDis[v] {
							t.Fatalf("bfs dist[%d]=%d want %d", v, gotDis[v], wantDis[v])
						}
					}
					gotCC, err := algo.CC(g, chaosOpts(w, seed+100, col)...)
					if err != nil {
						t.Fatalf("cc under chaos: %v", err)
					}
					for v := range wantCC {
						if gotCC[v] != wantCC[v] {
							t.Fatalf("cc label[%d]=%d want %d", v, gotCC[v], wantCC[v])
						}
					}
					if w >= 2 {
						// The scripted drop must have been absorbed by send
						// retries and the scripted stall/crash by checkpoint
						// recovery.
						if col.Retries == 0 {
							t.Errorf("no send retries recorded under chaos (%v)", col)
						}
						if col.Recoveries == 0 {
							t.Errorf("no checkpoint recoveries recorded under chaos (%v)", col)
						}
					}
				})
			}
		}
	}
}

// TestChaosPageRankBitIdentical verifies float results survive recovery
// bit-for-bit. Bounded to <=2 workers: with at most one remote partial per
// target the floating-point reduction order is deterministic, so exact
// equality is the correct assertion (beyond that, reduction order — not
// fault handling — perturbs last-bit rounding).
func TestChaosPageRankBitIdentical(t *testing.T) {
	g := graph.GenRMAT(200, 800, 9)
	for _, w := range []int{1, 2} {
		want, err := algo.PageRank(g, 15, 0, flash.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		col := metrics.New()
		got, err := algo.PageRank(g, 15, 0, chaosOpts(w, 4, col)...)
		if err != nil {
			t.Fatalf("pagerank under chaos (w=%d): %v", w, err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("w=%d: rank[%d]=%v want %v (not bit-identical)", w, v, got[v], want[v])
			}
		}
	}
}
