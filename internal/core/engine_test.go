package core

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"flash/graph"
	"flash/internal/comm"
)

// bfsProps is the BFS property struct used across engine tests.
type bfsProps struct {
	Dis int32
}

const inf = int32(1 << 30)

// runBFS runs the paper's Algorithm 2 on e and returns the distance array.
func runBFS(e *Engine[bfsProps], root graph.VID, mode Mode) []int32 {
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps {
		if v.ID == root {
			return bfsProps{Dis: 0}
		}
		return bfsProps{Dis: inf}
	}, StepOpts{})
	u := e.FromIDs(root)
	for u.Size() != 0 {
		u = e.EdgeMap(u, BaseE[bfsProps](),
			nil,
			func(s, d Vtx[bfsProps], _ float32) bfsProps {
				return bfsProps{Dis: s.Val.Dis + 1}
			},
			func(d Vtx[bfsProps]) bool { return d.Val.Dis == inf },
			func(t, cur bfsProps) bfsProps { return t },
			StepOpts{Mode: mode})
	}
	out := make([]int32, e.Graph().NumVertices())
	e.Gather(func(v graph.VID, val *bfsProps) { out[v] = val.Dis })
	return out
}

// seqBFS is the sequential reference.
func seqBFS(g *graph.Graph, root graph.VID) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	queue := []graph.VID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func mustEngine(t testing.TB, g *graph.Graph, cfg Config) *Engine[bfsProps] {
	t.Helper()
	e, err := NewEngine[bfsProps](g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestBFSAllConfigurations(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":  graph.GenPath(37),
		"star":  graph.GenStar(23),
		"er":    graph.GenErdosRenyi(150, 700, 3),
		"rmat":  graph.GenRMAT(128, 512, 4),
		"grid":  graph.GenGrid(8, 9, 0, 1),
		"singl": graph.GenPath(1),
	}
	for name, g := range graphs {
		want := seqBFS(g, 0)
		for _, workers := range []int{1, 2, 3} {
			for _, threads := range []int{1, 2} {
				for _, mode := range []Mode{Push, Pull, Auto} {
					for _, hash := range []bool{false, true} {
						cfg := Config{Workers: workers, Threads: threads, UseHashPlacement: hash}
						e := mustEngine(t, g, cfg)
						got := runBFS(e, 0, mode)
						for v := range want {
							if got[v] != want[v] {
								t.Fatalf("%s w=%d t=%d mode=%v hash=%v: dist[%d]=%d want %d",
									name, workers, threads, mode, hash, v, got[v], want[v])
							}
						}
						if err := e.CheckMirrorCoherence(func(a, b bfsProps) bool { return a == b }); err != nil {
							t.Fatalf("%s w=%d mode=%v: %v", name, workers, mode, err)
						}
					}
				}
			}
		}
	}
}

func TestBFSOverTCP(t *testing.T) {
	g := graph.GenErdosRenyi(80, 300, 9)
	tr, err := comm.NewTCP(3)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, g, Config{Workers: 3, Transport: tr})
	got := runBFS(e, 0, Auto)
	want := seqBFS(g, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("tcp: dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
	if e.Metrics().Supersteps == 0 {
		t.Fatal("no supersteps recorded")
	}
}

func TestVertexMapFilterAndUpdate(t *testing.T) {
	g := graph.GenPath(10)
	e := mustEngine(t, g, Config{Workers: 2})
	all := e.All()
	if all.Size() != 10 {
		t.Fatalf("All size %d", all.Size())
	}
	// Filter evens without a map function.
	evens := e.VertexMap(all, func(v Vtx[bfsProps]) bool { return v.ID%2 == 0 }, nil, StepOpts{})
	if evens.Size() != 5 {
		t.Fatalf("evens size %d", evens.Size())
	}
	// Update only the filtered ones.
	e.VertexMap(evens, nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: 7} }, StepOpts{})
	e.Gather(func(v graph.VID, val *bfsProps) {
		want := int32(0)
		if v%2 == 0 {
			want = 7
		}
		if val.Dis != want {
			t.Fatalf("vertex %d: dis=%d want %d", v, val.Dis, want)
		}
	})
}

func TestSubsetOps(t *testing.T) {
	g := graph.GenPath(12)
	e := mustEngine(t, g, Config{Workers: 3})
	a := e.FromIDs(0, 1, 2, 3)
	b := e.FromIDs(2, 3, 4, 5)
	if u := e.Union(a, b); u.Size() != 6 {
		t.Fatalf("union size %d", u.Size())
	}
	if m := e.Minus(a, b); m.Size() != 2 || !e.Contains(m, 0) || e.Contains(m, 2) {
		t.Fatalf("minus wrong: %v", e.IDs(m))
	}
	if i := e.Intersect(a, b); i.Size() != 2 || !e.Contains(i, 2) {
		t.Fatalf("intersect wrong: %v", e.IDs(i))
	}
	e.Add(a, 11)
	if !e.Contains(a, 11) || a.Size() != 5 {
		t.Fatal("Add failed")
	}
	e.Add(a, 11) // idempotent
	if a.Size() != 5 {
		t.Fatal("Add not idempotent")
	}
	ids := e.IDs(b)
	if len(ids) != 4 || ids[0] != 2 || ids[3] != 5 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestGetSetGatherFold(t *testing.T) {
	g := graph.GenPath(8)
	e := mustEngine(t, g, Config{Workers: 2})
	e.Set(3, bfsProps{Dis: 42})
	if got := e.Get(3); got.Dis != 42 {
		t.Fatalf("Get(3) = %+v", got)
	}
	sum := Fold(e, int32(0), func(acc int32, _ graph.VID, val *bfsProps) int32 {
		return acc + val.Dis
	})
	if sum != 42 {
		t.Fatalf("Fold sum = %d", sum)
	}
	// Set must reach mirrors so a following dense read sees it.
	if err := e.CheckMirrorCoherence(func(a, b bfsProps) bool { return a == b }); err != nil {
		t.Fatal(err)
	}
}

// pjProps exercises virtual edge sets via pointer jumping: p(v) = p(p(v)).
type pjProps struct {
	P uint32
}

func TestVirtualEdgeSetPointerJumping(t *testing.T) {
	// Build a path where each vertex points to its predecessor; jumping
	// should converge everything to 0 in O(log n) rounds.
	const n = 33
	g := graph.GenPath(n)
	e, err := NewEngine[pjProps](g, Config{Workers: 3, FullMirrors: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.VertexMap(e.All(), nil, func(v Vtx[pjProps]) pjProps {
		if v.ID == 0 {
			return pjProps{P: 0}
		}
		return pjProps{P: uint32(v.ID) - 1}
	}, StepOpts{})

	// join(p, V): edge from v.p to v — an InFunc virtual set (pull mode).
	jp := InFunc(func(c *Ctx[pjProps], d graph.VID) []graph.VID {
		return []graph.VID{graph.VID(c.Get(d).P)}
	})
	for round := 0; round < 10; round++ {
		e.EdgeMapDense(e.All(), jp, nil,
			func(s, d Vtx[pjProps], _ float32) pjProps {
				return pjProps{P: s.Val.P}
			}, nil, StepOpts{})
	}
	e.Gather(func(v graph.VID, val *pjProps) {
		if val.P != 0 {
			t.Fatalf("vertex %d not converged: p=%d", v, val.P)
		}
	})
}

func TestVirtualEdgeSetOutFunc(t *testing.T) {
	// join(U, p) as OutFunc: each vertex pushes its id to its parent; the
	// parent keeps the max (push mode with explicit reduce).
	const n = 20
	g := graph.GenPath(n)
	e, err := NewEngine[pjProps](g, Config{Workers: 2, FullMirrors: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.VertexMap(e.All(), nil, func(v Vtx[pjProps]) pjProps {
		p := uint32(0)
		if v.ID > 0 {
			p = uint32(v.ID) - 1
		}
		return pjProps{P: p}
	}, StepOpts{})
	parentEdges := OutFunc(func(c *Ctx[pjProps], u graph.VID) []graph.VID {
		return []graph.VID{graph.VID(c.Get(u).P)}
	})
	out := e.EdgeMapSparse(e.All(), parentEdges, nil,
		func(s, d Vtx[pjProps], _ float32) pjProps {
			return pjProps{P: uint32(s.ID)}
		}, nil,
		func(t, cur pjProps) pjProps {
			if t.P > cur.P {
				return t
			}
			return cur
		}, StepOpts{})
	// Every vertex 0..n-2 is some vertex's parent; vertex 0 is its own.
	if out.Size() != n-1 {
		t.Fatalf("out size = %d, want %d", out.Size(), n-1)
	}
	// Vertex k should now hold max(child id pushed) = k+1.
	e.Gather(func(v graph.VID, val *pjProps) {
		if int(v) < n-1 && val.P != uint32(v)+1 {
			t.Fatalf("vertex %d: p=%d want %d", v, val.P, v+1)
		}
	})
}

func TestPanicsOnMisuse(t *testing.T) {
	g := graph.GenPath(6)
	e := mustEngine(t, g, Config{Workers: 2})
	e2 := mustEngine(t, g, Config{Workers: 2})
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("foreign subset", func() { e.VertexMap(e2.All(), nil, nil, StepOpts{}) })
	expectPanic("nil reduce sparse", func() {
		e.EdgeMapSparse(e.All(), BaseE[bfsProps](), nil,
			func(s, d Vtx[bfsProps], _ float32) bfsProps { return *d.Val }, nil, nil, StepOpts{})
	})
	expectPanic("oob vertex", func() { e.Get(100) })
	expectPanic("virtual without FullMirrors", func() {
		vf := OutFunc(func(c *Ctx[bfsProps], u graph.VID) []graph.VID { return nil })
		e.EdgeMapSparse(e.All(), vf, nil,
			func(s, d Vtx[bfsProps], _ float32) bfsProps { return *d.Val }, nil,
			func(t, cur bfsProps) bfsProps { return t }, StepOpts{})
	})
	expectPanic("pull on OutFunc", func() {
		vf := OutFunc(func(c *Ctx[bfsProps], u graph.VID) []graph.VID { return nil })
		e.EdgeMapDense(e.All(), vf, nil,
			func(s, d Vtx[bfsProps], _ float32) bfsProps { return *d.Val }, nil, StepOpts{})
	})
}

func TestConfigValidation(t *testing.T) {
	g := graph.GenPath(4)
	bad := []struct {
		cfg   Config
		field string
	}{
		{Config{Workers: -1}, "Workers"},
		{Config{Threads: -2}, "Threads"},
		{Config{DenseThreshold: -5}, "DenseThreshold"},
		{Config{BatchBytes: -1}, "BatchBytes"},
		{Config{Workers: 2, Transport: comm.NewMem(3)}, "Transport"},
		{Config{CheckpointEvery: -1}, "CheckpointEvery"},
		{Config{HeartbeatEvery: -time.Millisecond}, "HeartbeatEvery"},
		// A heartbeat interval at or beyond the drain deadline would make
		// every live peer look heartbeat-silent.
		{Config{HeartbeatEvery: 200 * time.Millisecond, DrainTimeout: 200 * time.Millisecond}, "HeartbeatEvery"},
		{Config{HeartbeatEvery: time.Second, DrainTimeout: 100 * time.Millisecond}, "HeartbeatEvery"},
	}
	for i, tc := range bad {
		_, err := NewEngine[bfsProps](g, tc.cfg)
		if err == nil {
			t.Errorf("config %d accepted: %+v", i, tc.cfg)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("config %d: error %v is not a *ConfigError", i, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("config %d: blamed field %q, want %q", i, ce.Field, tc.field)
		}
	}
	// A valid config with liveness enabled must pass.
	if _, err := NewEngine[bfsProps](g, Config{
		Workers: 2, HeartbeatEvery: 10 * time.Millisecond, DrainTimeout: 150 * time.Millisecond,
	}); err != nil {
		t.Fatalf("valid liveness config rejected: %v", err)
	}
}

func TestNoSyncSkipsMirrors(t *testing.T) {
	g := graph.GenPath(6)
	e := mustEngine(t, g, Config{Workers: 2})
	// Sync normally first so mirrors hold Dis=1.
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: 1} }, StepOpts{})
	// Then update masters without sync: mirrors must keep the old value.
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: 2} }, StepOpts{NoSync: true})
	if err := e.CheckMirrorCoherence(func(a, b bfsProps) bool { return a == b }); err == nil {
		t.Fatal("NoSync step still synchronized mirrors")
	}
	if e.Get(0).Dis != 2 {
		t.Fatal("master not updated")
	}
}

func TestEdgeMapOutSetSemantics(t *testing.T) {
	// On a star with center 0, pushing from the center must activate all
	// leaves; pulling from leaves must activate only the center.
	g := graph.GenStar(9)
	e := mustEngine(t, g, Config{Workers: 2})
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: inf} }, StepOpts{})
	e.Set(0, bfsProps{Dis: 0})
	m := func(s, d Vtx[bfsProps], _ float32) bfsProps { return bfsProps{Dis: s.Val.Dis + 1} }
	c := func(d Vtx[bfsProps]) bool { return d.Val.Dis == inf }
	r := func(t, cur bfsProps) bfsProps { return t }

	out := e.EdgeMapSparse(e.FromIDs(0), BaseE[bfsProps](), nil, m, c, r, StepOpts{})
	if out.Size() != 8 || e.Contains(out, 0) {
		t.Fatalf("push out = %v", e.IDs(out))
	}

	// Reset and pull.
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: inf} }, StepOpts{})
	e.Set(5, bfsProps{Dis: 0})
	out = e.EdgeMapDense(e.FromIDs(5), BaseE[bfsProps](), nil, m, c, StepOpts{})
	if out.Size() != 1 || !e.Contains(out, 0) {
		t.Fatalf("pull out = %v", e.IDs(out))
	}
}

func TestReverseEdgeSet(t *testing.T) {
	// Directed path 0->1->2->3; pushing over Reverse(E) from 3 reaches 2.
	g := graph.FromEdges(4, true, [][2]graph.VID{{0, 1}, {1, 2}, {2, 3}})
	e := mustEngine(t, g, Config{Workers: 2})
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: inf} }, StepOpts{})
	e.Set(3, bfsProps{Dis: 0})
	m := func(s, d Vtx[bfsProps], _ float32) bfsProps { return bfsProps{Dis: s.Val.Dis + 1} }
	r := func(t, cur bfsProps) bfsProps { return t }
	u := e.FromIDs(3)
	for u.Size() > 0 {
		u = e.EdgeMap(u, ReverseE(BaseE[bfsProps]()), nil, m,
			func(d Vtx[bfsProps]) bool { return d.Val.Dis == inf }, r, StepOpts{})
	}
	for v := 0; v < 4; v++ {
		if got := e.Get(graph.VID(v)).Dis; got != int32(3-v) {
			t.Fatalf("reverse dist[%d] = %d", v, got)
		}
	}
}

func TestJoinEURestrictsTargets(t *testing.T) {
	g := graph.GenStar(10) // center 0
	e := mustEngine(t, g, Config{Workers: 2})
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: 0} }, StepOpts{})
	allowed := map[graph.VID]bool{3: true, 4: true}
	h := JoinEU(BaseE[bfsProps](), func(d graph.VID) bool { return allowed[d] })
	out := e.EdgeMapSparse(e.FromIDs(0), h, nil,
		func(s, d Vtx[bfsProps], _ float32) bfsProps { return bfsProps{Dis: 1} }, nil,
		func(t, cur bfsProps) bfsProps { return t }, StepOpts{})
	ids := e.IDs(out)
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Fatalf("joinEU out = %v", ids)
	}
}

// ccProps for the label-propagation property test.
type ccProps struct {
	CC uint32
}

// TestQuickCCMatchesUnionFind runs label-propagation CC on random graphs
// across worker counts and compares component partitions with a union-find
// reference.
func TestQuickCCMatchesUnionFind(t *testing.T) {
	f := func(seed int64, nn, mm uint8, ww uint8) bool {
		n := int(nn)%50 + 2
		m := int(mm) % 120
		workers := int(ww)%4 + 1
		g := graph.GenErdosRenyi(n, m, seed)
		e, err := NewEngine[ccProps](g, Config{Workers: workers})
		if err != nil {
			return false
		}
		defer e.Close()
		u := e.VertexMap(e.All(), nil, func(v Vtx[ccProps]) ccProps {
			return ccProps{CC: uint32(v.ID)}
		}, StepOpts{})
		for u.Size() > 0 {
			u = e.EdgeMap(u, BaseE[ccProps](),
				func(s, d Vtx[ccProps], _ float32) bool { return s.Val.CC < d.Val.CC },
				func(s, d Vtx[ccProps], _ float32) ccProps {
					cc := d.Val.CC
					if s.Val.CC < cc {
						cc = s.Val.CC
					}
					return ccProps{CC: cc}
				},
				nil,
				func(tv, cur ccProps) ccProps {
					if tv.CC < cur.CC {
						return tv
					}
					return cur
				}, StepOpts{})
		}
		// Union-find reference.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		g.Edges(func(a, b graph.VID, _ float32) bool {
			ra, rb := find(int(a)), find(int(b))
			if ra != rb {
				parent[ra] = rb
			}
			return true
		})
		// Same partition: labels equal iff same root.
		for v := 0; v < n; v++ {
			for x := v + 1; x < n; x++ {
				same := find(v) == find(x)
				lsame := e.Get(graph.VID(v)).CC == e.Get(graph.VID(x)).CC
				if same != lsame {
					t.Logf("seed=%d n=%d m=%d w=%d: vertices %d,%d same=%v labels=%v",
						seed, n, m, workers, v, x, same, lsame)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsRecorded(t *testing.T) {
	g := graph.GenErdosRenyi(60, 240, 2)
	e := mustEngine(t, g, Config{Workers: 2})
	runBFS(e, 0, Auto)
	m := e.Metrics()
	if m.Supersteps < 2 {
		t.Fatalf("supersteps = %d", m.Supersteps)
	}
	if m.Total() == 0 {
		t.Fatal("no time recorded")
	}
	if len(m.Frontier) != m.Supersteps {
		t.Fatalf("frontier trace %d entries, %d steps", len(m.Frontier), m.Supersteps)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Auto: "auto", Push: "push", Pull: "pull", Mode(9): "mode(9)"} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q", int(m), m.String())
		}
	}
}

func TestBatchBytesOverlap(t *testing.T) {
	// Functional check: eager flushing must not change results.
	g := graph.GenErdosRenyi(100, 500, 5)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, Config{Workers: 3, BatchBytes: 64})
	got := runBFS(e, 0, Auto)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("overlap: dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestDisableNecessaryMirrors(t *testing.T) {
	g := graph.GenErdosRenyi(100, 500, 6)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, Config{Workers: 3, DisableNecessaryMirrors: true})
	got := runBFS(e, 0, Auto)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("broadcast sync: dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestNecessaryMirrorsSendFewerMessages(t *testing.T) {
	g := graph.GenErdosRenyi(200, 600, 7)
	run := func(disable bool) uint64 {
		tr := comm.NewMem(4)
		e, err := NewEngine[bfsProps](g, Config{Workers: 4, Transport: tr, DisableNecessaryMirrors: disable})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		runBFS(e, 0, Auto)
		return tr.Stats().BytesSent
	}
	nec, bcast := run(false), run(true)
	if nec >= bcast {
		t.Fatalf("necessary-mirrors bytes %d >= broadcast bytes %d", nec, bcast)
	}
}

func TestEngineAccessors(t *testing.T) {
	g := graph.GenPath(5)
	e := mustEngine(t, g, Config{Workers: 2})
	if e.Graph() != g || e.Workers() != 2 {
		t.Fatal("accessors wrong")
	}
	if rf := e.ReplicationFactor(); rf < 1 {
		t.Fatalf("replication factor %g", rf)
	}
	if e.Config().Workers != 2 {
		t.Fatal("config accessor")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func BenchmarkEdgeMapSparseBFSStep(b *testing.B) {
	g := graph.GenRMAT(1<<12, 1<<15, 1)
	e, err := NewEngine[bfsProps](g, Config{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: inf} }, StepOpts{})
		e.Set(0, bfsProps{Dis: 0})
		u := e.FromIDs(0)
		b.StartTimer()
		e.EdgeMapSparse(u, BaseE[bfsProps](), nil,
			func(s, d Vtx[bfsProps], _ float32) bfsProps { return bfsProps{Dis: s.Val.Dis + 1} },
			func(d Vtx[bfsProps]) bool { return d.Val.Dis == inf },
			func(t, cur bfsProps) bfsProps { return t }, StepOpts{})
	}
}

func ExampleEngine_VertexMap() {
	g := graph.GenPath(4)
	e, _ := NewEngine[bfsProps](g, Config{Workers: 2})
	defer e.Close()
	out := e.VertexMap(e.All(), func(v Vtx[bfsProps]) bool { return v.ID < 2 }, nil, StepOpts{})
	fmt.Println(out.Size())
	// Output: 2
}
