// Command flashvet is the module's invariant checker: a multichecker of the
// five custom analyzers in internal/lint, run the way `go vet` would be:
//
//	go run ./cmd/flashvet ./...
//
// It loads the packages matching the given patterns (default ./...) from
// source against compiler export data, applies every analyzer, prints one
// line per finding, and exits non-zero if anything was reported.
//
// Diagnostics can be suppressed at the offending line with
// //flash:allow <analyzer> <reason>; commerr additionally honors
// //flash:ignore-err <reason>. Both demand a written reason so the waiver
// argument lives next to the code it excuses.
package main

import (
	"flag"
	"fmt"
	"os"

	"flash/internal/lint"
)

func main() {
	listOnly := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: flashvet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "flashvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
