// Package graph mirrors the flash/graph block-file surface for the commerr
// fixture: WriteBlockFile writes the on-disk image the whole out-of-core
// path trusts, so a dropped error corrupts every later run over the file.
package graph

type Block struct{}

func WriteBlockFile(path string, blocks []Block) error { return nil }
