package comm

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultPlan scripts deterministic fault injection for a Faulty transport.
// Probabilistic faults draw from per-sender PRNGs seeded with Seed+sender,
// so a plan replays identically for a fixed per-worker send sequence no
// matter how worker goroutines interleave. Scripted events (Drops, Stalls,
// Crashes) are one-shot: once fired they are consumed, which is what makes
// faults *transient* — a retry or a checkpoint replay runs fault-free.
type FaultPlan struct {
	// Seed seeds the per-sender PRNGs for probabilistic faults.
	Seed int64
	// SendFailProb is the per-frame probability of a transient send failure
	// on cross-worker frames (the frame is not delivered; the caller should
	// retry).
	SendFailProb float64
	// MaxSendFails caps the total number of injected probabilistic send
	// failures (0 = unlimited).
	MaxSendFails int
	// DelayProb is the per-frame probability that a cross-worker frame is
	// held back and delivered at the sender's EndRound instead — delaying it
	// to the end of the round without violating BSP round boundaries.
	DelayProb float64
	// Reorder shuffles the delivery order of held-back frames within each
	// (sender, round) batch. BSP rounds are order-insensitive across a round,
	// so a correct engine must tolerate this.
	Reorder bool
	// Drops injects transient connection drops: sends on the given edge fail
	// with ErrConnDropped until Count failures have been served.
	Drops []ConnDrop
	// Stalls makes a worker sleep inside EndRound of the given round,
	// exercising peers' drain-timeout stall detection.
	Stalls []WorkerStall
	// Crashes makes a worker's EndRound (or Send) of the given round fail
	// with CrashError, simulating a mid-superstep worker failure.
	Crashes []WorkerCrash
	// Kills hard-kills a worker at its first transport operation (Send,
	// EndRound or Heartbeat) at or after the given round: its receive
	// endpoint is closed for real and every transport call it makes fails
	// with KillError until Revive. Unlike Crashes, the death is permanent —
	// the engine must detect the loss through the liveness layer and
	// cold-restart the worker from a durable checkpoint.
	Kills []WorkerKill
	// Corrupts scripts single-bit payload flips (seeded position) on the
	// given edge, exercising the receive-side integrity/decode hardening.
	Corrupts []FrameCorrupt
	// CorruptProb is the per-frame probability that a cross-worker payload
	// gets one seeded bit flip before delivery.
	CorruptProb float64
	// MaxCorrupts caps the probabilistic corruptions (0 = unlimited).
	MaxCorrupts int
	// ResizeKills hard-kills workers during a membership-resize migration
	// phase (the engine brackets each migration exchange with ResizePhase),
	// exercising mid-migration rollback to the pre-resize image.
	ResizeKills []ResizeKill
	// ResizeCorrupts flips one seeded bit in a migration frame, exercising
	// the FLASHCKP container's CRC rejection on the receive side.
	ResizeCorrupts []ResizeFrameCorrupt
	// ResizeDelays holds a worker's migration frames back until its
	// end-of-round marker, delivering them late (and reordered under
	// Reorder) without violating the round boundary.
	ResizeDelays []ResizeFrameDelay
}

// ConnDrop scripts a transient drop of the From→To direction starting at the
// sender's round Round; the next Count sends fail (Count 0 means 1).
type ConnDrop struct {
	From, To int
	Round    uint32
	Count    int
}

// WorkerStall scripts worker Worker sleeping Delay inside EndRound of round
// Round.
type WorkerStall struct {
	Worker int
	Round  uint32
	Delay  time.Duration
}

// WorkerCrash scripts worker Worker failing at round Round.
type WorkerCrash struct {
	Worker int
	Round  uint32
}

// WorkerKill scripts the permanent death of worker Worker at its first
// transport operation at or after round Round (rounds are counted on the
// current incarnation: Reset restarts the counter, so a Kill scripted after
// a recovery fires against the replayed rounds).
type WorkerKill struct {
	Worker int
	Round  uint32
}

// FrameCorrupt scripts one single-bit flip in the next cross-worker payload
// on the From→To edge at or after the sender's round Round.
type FrameCorrupt struct {
	From, To int
	Round    uint32
}

// ResizeKill scripts the permanent death of worker Worker at its first
// transport operation (send, end-of-round or heartbeat) inside the Phase-th
// migration window (0-indexed). Each ResizePhase(true) bracket counts as one
// phase, so a resize retried after a rollback advances the ordinal — the
// one-shot script does not re-fire against the retry.
type ResizeKill struct {
	Worker int
	Phase  int
}

// ResizeFrameCorrupt scripts one single-bit flip in the next migration frame
// sent From→To inside the Phase-th migration window.
type ResizeFrameCorrupt struct {
	From, To int
	Phase    int
}

// ResizeFrameDelay holds every migration frame Worker sends inside the
// Phase-th migration window back until its end-of-round marker.
type ResizeFrameDelay struct {
	Worker int
	Phase  int
}

// FaultCounts reports how many faults a Faulty transport has injected.
type FaultCounts struct {
	SendFails int
	Delays    int
	Drops     int
	Stalls    int
	Crashes   int
	Kills     int
	Corrupts  int
}

// Faulty wraps any Transport and injects the faults of a FaultPlan. It is
// the runtime's test double for a lossy, laggy, crashy wire: every
// robustness behavior (retry, stall detection, checkpoint recovery) can be
// exercised deterministically in-process.
type Faulty struct {
	inner Transport
	plan  FaultPlan

	mu       sync.Mutex
	rng      []*rand.Rand
	round    []uint32      // per-sender round counter, mirrors inner's rounds
	held     [][]heldFrame // per-sender frames delayed to EndRound
	drops    []ConnDrop
	stalls   []WorkerStall
	crashes  []WorkerCrash
	kills    []WorkerKill
	corrupts []FrameCorrupt
	killed   []bool // permanent death flags; survive Reset, cleared by Revive
	counts   FaultCounts

	// Resize-scoped fault state: inResize is armed by ResizePhase and
	// resizePhase counts the migration windows seen so far (-1 before the
	// first), keying the one-shot resize scripts.
	inResize       bool
	resizePhase    int
	resizeKills    []ResizeKill
	resizeCorrupts []ResizeFrameCorrupt
	resizeDelays   []ResizeFrameDelay
}

// heldFrame is a delayed frame awaiting delivery at its sender's EndRound.
type heldFrame struct {
	to   int
	data []byte
}

// NewFaulty wraps inner with the given fault plan.
func NewFaulty(inner Transport, plan FaultPlan) *Faulty {
	m := inner.Workers()
	f := &Faulty{
		inner: inner,
		plan:  plan,
		rng:   make([]*rand.Rand, m),
		round: make([]uint32, m),
		held:  make([][]heldFrame, m),
	}
	for i := range f.rng {
		f.rng[i] = rand.New(rand.NewSource(plan.Seed + int64(i)))
	}
	f.drops = append([]ConnDrop(nil), plan.Drops...)
	for i := range f.drops {
		if f.drops[i].Count == 0 {
			f.drops[i].Count = 1
		}
	}
	f.stalls = append([]WorkerStall(nil), plan.Stalls...)
	f.crashes = append([]WorkerCrash(nil), plan.Crashes...)
	f.kills = append([]WorkerKill(nil), plan.Kills...)
	f.corrupts = append([]FrameCorrupt(nil), plan.Corrupts...)
	f.killed = make([]bool, m)
	f.resizePhase = -1
	f.resizeKills = append([]ResizeKill(nil), plan.ResizeKills...)
	f.resizeCorrupts = append([]ResizeFrameCorrupt(nil), plan.ResizeCorrupts...)
	f.resizeDelays = append([]ResizeFrameDelay(nil), plan.ResizeDelays...)
	return f
}

// Counts returns the faults injected so far.
func (f *Faulty) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

func (f *Faulty) Workers() int { return f.inner.Workers() }

// crashLocked consumes a pending crash for (from, round) if one is scripted.
func (f *Faulty) crashLocked(from int, r uint32) error {
	for i, c := range f.crashes {
		if c.Worker == from && c.Round == r {
			f.crashes = append(f.crashes[:i], f.crashes[i+1:]...)
			f.counts.Crashes++
			return &CrashError{Worker: from}
		}
	}
	return nil
}

// killLocked enforces permanent deaths: a dead worker's transport calls fail
// with KillError, and a pending scripted kill for (from, round>=Round) fires
// here — tearing the victim's receive endpoint down for real when the inner
// transport supports it, so the victim's mailbox state is genuinely gone.
func (f *Faulty) killLocked(from int, r uint32) error {
	if f.killed[from] {
		return &KillError{Worker: from}
	}
	for i, k := range f.kills {
		if k.Worker == from && r >= k.Round {
			f.kills = append(f.kills[:i], f.kills[i+1:]...)
			return f.fireKillLocked(from)
		}
	}
	if f.inResize {
		for i, k := range f.resizeKills {
			if k.Worker == from && k.Phase == f.resizePhase {
				f.resizeKills = append(f.resizeKills[:i], f.resizeKills[i+1:]...)
				return f.fireKillLocked(from)
			}
		}
	}
	return nil
}

// fireKillLocked marks from permanently dead and tears its receive endpoint
// down for real when the inner transport supports it.
func (f *Faulty) fireKillLocked(from int) error {
	f.killed[from] = true
	f.counts.Kills++
	if ec, ok := f.inner.(EndpointCloser); ok {
		ec.CloseEndpoint(from, &KillError{Worker: from})
	}
	return &KillError{Worker: from}
}

// corruptLocked applies a scripted or probabilistic single-bit flip to data.
func (f *Faulty) corruptLocked(from, to int, r uint32, data []byte) {
	if len(data) == 0 {
		return
	}
	hit := false
	for i, c := range f.corrupts {
		if c.From == from && c.To == to && r >= c.Round {
			f.corrupts = append(f.corrupts[:i], f.corrupts[i+1:]...)
			hit = true
			break
		}
	}
	if !hit && f.inResize {
		for i, c := range f.resizeCorrupts {
			if c.From == from && c.To == to && c.Phase == f.resizePhase {
				f.resizeCorrupts = append(f.resizeCorrupts[:i], f.resizeCorrupts[i+1:]...)
				hit = true
				break
			}
		}
	}
	if !hit && f.plan.CorruptProb > 0 &&
		(f.plan.MaxCorrupts == 0 || f.counts.Corrupts < f.plan.MaxCorrupts) {
		hit = f.rng[from].Float64() < f.plan.CorruptProb
	}
	if !hit {
		return
	}
	rng := f.rng[from]
	data[rng.Intn(len(data))] ^= 1 << rng.Intn(8)
	f.counts.Corrupts++
}

func (f *Faulty) Send(from, to int, data []byte) error {
	f.mu.Lock()
	r := f.round[from]
	if err := f.killLocked(from, r); err != nil {
		f.mu.Unlock()
		return err
	}
	if from == to {
		f.mu.Unlock()
		return f.inner.Send(from, to, data)
	}
	if err := f.crashLocked(from, r); err != nil {
		f.mu.Unlock()
		return err
	}
	for i := range f.drops {
		d := &f.drops[i]
		if d.From == from && d.To == to && r >= d.Round && d.Count > 0 {
			d.Count--
			f.counts.Drops++
			f.mu.Unlock()
			return Transient(ErrConnDropped)
		}
	}
	rng := f.rng[from]
	if p := f.plan.SendFailProb; p > 0 && rng.Float64() < p &&
		(f.plan.MaxSendFails == 0 || f.counts.SendFails < f.plan.MaxSendFails) {
		f.counts.SendFails++
		f.mu.Unlock()
		return Transient(ErrConnDropped)
	}
	f.corruptLocked(from, to, r, data)
	if f.inResize {
		for _, d := range f.resizeDelays {
			if d.Worker == from && d.Phase == f.resizePhase {
				f.counts.Delays++
				f.held[from] = append(f.held[from], heldFrame{to: to, data: data})
				f.mu.Unlock()
				return nil // delivered at EndRound
			}
		}
	}
	if p := f.plan.DelayProb; p > 0 && rng.Float64() < p {
		f.counts.Delays++
		f.held[from] = append(f.held[from], heldFrame{to: to, data: data})
		f.mu.Unlock()
		return nil // delivered at EndRound
	}
	f.mu.Unlock()
	return f.inner.Send(from, to, data)
}

func (f *Faulty) EndRound(from int) error {
	f.mu.Lock()
	r := f.round[from]
	if err := f.killLocked(from, r); err != nil {
		f.mu.Unlock()
		return err
	}
	if err := f.crashLocked(from, r); err != nil {
		f.mu.Unlock()
		return err
	}
	held := f.held[from]
	f.held[from] = nil
	if f.plan.Reorder && len(held) > 1 {
		f.rng[from].Shuffle(len(held), func(i, j int) { held[i], held[j] = held[j], held[i] })
	}
	var stall time.Duration
	for i, s := range f.stalls {
		if s.Worker == from && s.Round == r {
			stall = s.Delay
			f.stalls = append(f.stalls[:i], f.stalls[i+1:]...)
			f.counts.Stalls++
			break
		}
	}
	f.round[from] = r + 1
	f.mu.Unlock()

	if stall > 0 {
		time.Sleep(stall)
	}
	// Flush held frames before the marker so the round stays complete.
	for _, h := range held {
		if err := f.inner.Send(from, h.to, h.data); err != nil {
			return err
		}
	}
	return f.inner.EndRound(from)
}

func (f *Faulty) Drain(to int, h func(from int, data []byte)) error {
	return f.inner.Drain(to, h)
}

// Heartbeat intercepts the liveness path: a dead worker's heartbeats stop
// (its heartbeater sees KillError and exits), which is exactly the signal
// peers' drain classification turns into ErrPeerDead. A scripted kill can
// also fire here, so a worker idling between supersteps still dies on time.
func (f *Faulty) Heartbeat(from int) error {
	f.mu.Lock()
	if err := f.killLocked(from, f.round[from]); err != nil {
		f.mu.Unlock()
		return err
	}
	f.mu.Unlock()
	return f.inner.Heartbeat(from)
}

// Revive clears worker w's killed flag so a cold-restarted incarnation can
// use the transport again (the poisoned mailbox is cleared by the Reset that
// follows restart).
func (f *Faulty) Revive(w int) {
	f.mu.Lock()
	f.killed[w] = false
	f.mu.Unlock()
}

// ResizePhase brackets a membership-resize migration exchange. Arming a
// window advances the phase ordinal the resize-scoped scripts key on, so a
// retried resize runs under the next ordinal and a consumed one-shot fault
// cannot re-fire against the retry.
func (f *Faulty) ResizePhase(active bool) {
	f.mu.Lock()
	if active && !f.inResize {
		f.resizePhase++
	}
	f.inResize = active
	f.mu.Unlock()
	if rp, ok := f.inner.(ResizePhaser); ok {
		rp.ResizePhase(active)
	}
}

// Resize grows or shrinks the wrapper's per-worker fault state alongside the
// inner transport. Joining workers get fresh PRNGs seeded Seed+i, so fault
// schedules stay deterministic across membership changes; surviving workers'
// killed flags persist (only Revive clears a death) and round counters
// restart at 0, mirroring the inner transport's fresh epoch.
func (f *Faulty) Resize(n int) error {
	rz, ok := f.inner.(Resizer)
	if !ok {
		return fmt.Errorf("comm: wrapped transport %T does not support resize", f.inner)
	}
	f.mu.Lock()
	old := len(f.rng)
	rng := make([]*rand.Rand, n)
	killed := make([]bool, n)
	for i := 0; i < n; i++ {
		if i < old {
			rng[i], killed[i] = f.rng[i], f.killed[i]
		} else {
			rng[i] = rand.New(rand.NewSource(f.plan.Seed + int64(i)))
		}
	}
	f.rng, f.killed = rng, killed
	f.round = make([]uint32, n)
	f.held = make([][]heldFrame, n)
	f.mu.Unlock()
	return rz.Resize(n)
}

func (f *Faulty) Abort(err error) { f.inner.Abort(err) }

func (f *Faulty) Reset() {
	f.mu.Lock()
	for i := range f.round {
		f.round[i] = 0
		f.held[i] = nil
	}
	// Scripted events stay consumed and PRNG state advances monotonically:
	// a post-recovery replay must not re-fire the fault that triggered it.
	f.mu.Unlock()
	f.inner.Reset()
}

func (f *Faulty) SetDrainTimeout(d time.Duration) { f.inner.SetDrainTimeout(d) }

func (f *Faulty) Stats() Stats { return f.inner.Stats() }

func (f *Faulty) Close() error { return f.inner.Close() }
