// Fixture for the phaseorder analyzer: //flash:phase(p1,...) declares the
// superstep phases (compute → ship → sync → barrier) a function may run in;
// every call chain — through any number of unannotated helpers — must stay
// inside the callee's declared phases.
package phaseorder

// send mirrors the engine's transport push: legal while shipping frontier
// values and while masters pull mirror deltas, never from a vertex program.
//
//flash:phase(ship,sync)
func send(to int, data []byte) error { return nil }

// syncMirrors runs in the sync phase only; sync ⊆ {ship,sync}, so its send
// is legal.
//
//flash:phase(sync)
func syncMirrors(data []byte) error {
	return send(0, data) // no diagnostic: sync is within the callee's phases
}

// A vertex program calling the transport directly: the paper's §IV-B
// ordering contract broken — compute-phase code must not ship.
//
//flash:phase(compute)
func gatherBad(data []byte) {
	_ = send(1, data) // want `call into //flash:phase\(ship,sync\) send from code running in phase\(s\) compute; compute is illegal there`
}

// shipThrough is unannotated: it runs in whatever phase its caller runs in,
// so the walk threads each caller's mask through it. The barrier-phase
// caller below makes the send here illegal; the ship-phase caller does not.
func shipThrough(data []byte) {
	_ = send(2, data) // want `call into //flash:phase\(ship,sync\) send from code running in phase\(s\) barrier; barrier is illegal there`
}

//flash:phase(ship)
func broadcast(data []byte) {
	shipThrough(data) // no diagnostic: ship reaches send legally
}

//flash:phase(barrier)
func checkpointBad(data []byte) {
	shipThrough(data) // the violation is reported inside shipThrough, above
}

// vertexCompute is legal compute-phase work: annotated compute callee.
//
//flash:phase(compute)
func applyDelta(v int) {}

//flash:phase(compute)
func vertexProgram(v int) {
	applyDelta(v) // no diagnostic: compute ⊆ compute
}

// A typo'd phase name is itself a diagnostic, caught at the declaration.
//
//flash:phase(compute,refine)
func typoPhase() {} // want `unknown phase "refine" in //flash:phase on typoPhase`
