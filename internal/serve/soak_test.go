package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// soakSpec is the one shared graph every soak job runs over. Weighted so the
// mix can include SSSP; weights are ignored by the unweighted algorithms.
func soakSpec() GraphSpec {
	return GraphSpec{Name: "shared", Gen: "er", N: 300, M: 1200, Seed: 9, Weighted: true}
}

// soakRequests is the concurrent job mix: ≥16 jobs cycling through
// BFS/CC/PageRank/SSSP with varying parameters, every fourth job carrying a
// scripted mid-run resize (PageRank, whose fixed iteration count guarantees
// the resize superstep is reached).
func soakRequests() []*JobRequest {
	const jobs = 20
	reqs := make([]*JobRequest, 0, jobs)
	for i := 0; i < jobs; i++ {
		req := &JobRequest{Graph: "shared", Tenant: fmt.Sprintf("t%d", i%3)}
		switch i % 4 {
		case 0:
			root := uint64(i % 7)
			req.Algo = "bfs"
			req.Params = JobParams{Root: &root}
		case 1:
			req.Algo = "cc"
		case 2:
			iters, eps := 6, 0.0
			at, to := 3, 5
			req.Algo = "pagerank"
			req.Params = JobParams{MaxIters: &iters, Eps: &eps, ResizeAt: &at, ResizeTo: &to}
		case 3:
			root := uint64(i % 11)
			req.Algo = "sssp"
			req.Params = JobParams{Root: &root}
		}
		reqs = append(reqs, req)
	}
	return reqs
}

// TestConcurrentJobsSoak runs the full mix concurrently over one shared
// catalog graph — interleaved with catalog load/evict churn — and asserts
// complete isolation: every job succeeds, pays its own StateBytes, and
// produces output byte-identical to the same request run serially on a
// one-slot server. Run under -race in CI, this is the cross-job state-bleed
// detector for the shared-immutable/private-mutable engine split.
func TestConcurrentJobsSoak(t *testing.T) {
	reqs := soakRequests()

	// Serial baseline: one slot, so jobs cannot overlap.
	serial, err := NewServer(ServerConfig{
		Scheduler: SchedulerConfig{MaxConcurrent: 1, QueueDepth: len(reqs), Workers: 3},
		Preload:   []GraphSpec{soakSpec()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	want := make([][]byte, len(reqs))
	for i, req := range reqs {
		r := *req
		job, err := serial.SubmitRequest(&r)
		if err != nil {
			t.Fatalf("serial submit %d: %v", i, err)
		}
		<-job.Done()
		res, err := job.Result()
		if err != nil {
			t.Fatalf("serial job %d (%s): %v", i, req.Algo, err)
		}
		want[i], err = json.Marshal(res.Values)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent run: 8 slots, all jobs submitted at once from goroutines.
	srv, err := NewServer(ServerConfig{
		Scheduler: SchedulerConfig{MaxConcurrent: 8, QueueDepth: len(reqs), Workers: 3},
		Preload:   []GraphSpec{soakSpec()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sharedHandle, err := srv.Catalog().Get("shared")
	if err != nil {
		t.Fatal(err)
	}

	jobs := make([]*Job, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req JobRequest) {
			defer wg.Done()
			job, err := srv.SubmitRequest(&req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = job
		}(i, *req)
	}

	// Catalog churn while the soak jobs run: load a scratch graph, run a
	// quick job on it, evict it mid-flight. The job's handle was resolved at
	// admission, so eviction must never fail it.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for round := 0; round < 6; round++ {
			name := fmt.Sprintf("scratch-%d", round)
			if _, err := srv.Catalog().Load(GraphSpec{Name: name, Gen: "path", N: 64}); err != nil {
				t.Errorf("churn load %s: %v", name, err)
				return
			}
			job, err := srv.SubmitRequest(&JobRequest{Graph: name, Algo: "cc"})
			if err != nil {
				t.Errorf("churn submit on %s: %v", name, err)
				return
			}
			if err := srv.Catalog().Evict(name); err != nil {
				t.Errorf("churn evict %s: %v", name, err)
				return
			}
			<-job.Done()
			if _, err := job.Result(); err != nil {
				t.Errorf("churn job on evicted %s failed: %v", name, err)
				return
			}
		}
	}()

	wg.Wait()
	<-churnDone
	if t.Failed() {
		t.FailNow()
	}

	for i, job := range jobs {
		<-job.Done()
		res, err := job.Result()
		if err != nil {
			t.Fatalf("job %d (%s): %v", i, reqs[i].Algo, err)
		}
		// Each job pays for its own private mutable state...
		if res.StateBytes == 0 {
			t.Errorf("job %d (%s): zero StateBytes", i, reqs[i].Algo)
		}
		// ...and scripted resizes happened inside the jobs that asked.
		if reqs[i].Params.ResizeAt != nil && res.Resizes == 0 {
			t.Errorf("job %d (%s): scripted resize never fired", i, reqs[i].Algo)
		}
		got, err := json.Marshal(res.Values)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("job %d (%s): concurrent output differs from serial run\nconcurrent: %.160s\nserial:     %.160s",
				i, reqs[i].Algo, got, want[i])
		}
	}

	// All non-resized jobs borrowed the one cached partition (workers=3);
	// resizes build private partitions and must not pollute the cache.
	if n := sharedHandle.Partitions(); n != 1 {
		t.Errorf("shared graph caches %d partitions, want 1", n)
	}
}
