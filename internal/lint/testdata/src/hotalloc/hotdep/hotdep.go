// Package hotdep is the cross-package half of the hotalloc fixture: the
// allocations happen here, inside callees a //flash:hotpath caller reaches
// across the package boundary. The v1 analyzer only saw allocation syntax in
// the hot function's own body; the dataflow summaries carry AllocatesEver /
// AllocatesInLoop to the call site.
package hotdep

// FillBuckets allocates inside its own loop: one call from a hot path is a
// hidden per-element allocation storm.
func FillBuckets(n int) [][]int {
	var out [][]int
	for i := 0; i < n; i++ {
		out = append(out, make([]int, 8))
	}
	return out
}

// Scratch allocates once per call.
func Scratch(n int) []int { return make([]int, n) }

// Reuse writes into a caller-provided buffer and allocates nothing — the
// pinned negative for the summary-driven callee check.
func Reuse(dst []int, v int) []int {
	if len(dst) > 0 {
		dst[0] = v
	}
	return dst
}

// Table allocates, but by declaration only once per superstep.
//
//flash:amortized one table per superstep, reused across elements
func Table(n int) []int { return make([]int, n) }
