package comm

import (
	"encoding/binary"
	"reflect"
	"unsafe"
)

// FixedCodec encodes flat fixed-width property types (bools, sized ints and
// floats, nested structs and arrays thereof) through precomputed unsafe field
// offsets — no reflect.Value boxing per record, which is what made the
// reflection codec allocate on every decode of the hot exchange path. The
// wire format is byte-identical to ReflectCodec's for the supported kinds
// (little-endian fixed width, declaration order, no padding), so the two
// codecs interoperate and tests can cross-check them.
type FixedCodec[V any] struct {
	fields []fixedField
	wire   int // total encoded size
}

type fixedKind uint8

const (
	fxBool fixedKind = iota
	fx8
	fx16
	fx32
	fx64
	fxInt  // platform int, 8 bytes on the wire
	fxUint // platform uint, 8 bytes on the wire
)

type fixedField struct {
	off  uintptr
	kind fixedKind
}

// NewFixedCodec builds a FixedCodec for V, reporting ok=false when V contains
// variable-length or reference kinds (strings, slices, maps, pointers) that
// need ReflectCodec.
func NewFixedCodec[V any]() (*FixedCodec[V], bool) {
	var v V
	t := reflect.TypeOf(v)
	if t == nil {
		return nil, false
	}
	c := &FixedCodec[V]{}
	if !c.plan(t, 0) {
		return nil, false
	}
	return c, true
}

// plan flattens t (rooted at byte offset off within V) into the field list,
// returning false on an unsupported kind.
func (c *FixedCodec[V]) plan(t reflect.Type, off uintptr) bool {
	add := func(k fixedKind, size int) bool {
		c.fields = append(c.fields, fixedField{off: off, kind: k})
		c.wire += size
		return true
	}
	switch t.Kind() {
	case reflect.Bool:
		return add(fxBool, 1)
	case reflect.Int8, reflect.Uint8:
		return add(fx8, 1)
	case reflect.Int16, reflect.Uint16:
		return add(fx16, 2)
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return add(fx32, 4)
	case reflect.Int64, reflect.Uint64, reflect.Float64:
		return add(fx64, 8)
	case reflect.Int:
		return add(fxInt, 8)
	case reflect.Uint:
		return add(fxUint, 8)
	case reflect.Array:
		es := t.Elem().Size()
		for i := 0; i < t.Len(); i++ {
			if !c.plan(t.Elem(), off+uintptr(i)*es) {
				return false
			}
		}
		return true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				return false // unexported: let ReflectCodec produce its panic
			}
			if !c.plan(f.Type, off+f.Offset) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// WireSize returns the fixed encoded size of one value.
func (c *FixedCodec[V]) WireSize() int { return c.wire }

//flash:hotpath
func (c *FixedCodec[V]) Append(dst []byte, v *V) []byte {
	p := unsafe.Pointer(v)
	for i := range c.fields {
		f := &c.fields[i]
		q := unsafe.Add(p, f.off)
		switch f.kind {
		case fxBool:
			b := byte(0)
			if *(*bool)(q) {
				b = 1
			}
			dst = append(dst, b)
		case fx8:
			dst = append(dst, *(*byte)(q))
		case fx16:
			dst = binary.LittleEndian.AppendUint16(dst, *(*uint16)(q))
		case fx32:
			dst = binary.LittleEndian.AppendUint32(dst, *(*uint32)(q))
		case fx64:
			dst = binary.LittleEndian.AppendUint64(dst, *(*uint64)(q))
		case fxInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(*(*int)(q))))
		case fxUint:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(*(*uint)(q)))
		}
	}
	return dst
}

//flash:hotpath
func (c *FixedCodec[V]) Decode(src []byte, v *V) (int, error) {
	if len(src) < c.wire {
		return 0, errShort
	}
	p := unsafe.Pointer(v)
	off := 0
	for i := range c.fields {
		f := &c.fields[i]
		q := unsafe.Add(p, f.off)
		switch f.kind {
		case fxBool:
			*(*bool)(q) = src[off] != 0
			off++
		case fx8:
			*(*byte)(q) = src[off]
			off++
		case fx16:
			*(*uint16)(q) = binary.LittleEndian.Uint16(src[off:])
			off += 2
		case fx32:
			*(*uint32)(q) = binary.LittleEndian.Uint32(src[off:])
			off += 4
		case fx64:
			*(*uint64)(q) = binary.LittleEndian.Uint64(src[off:])
			off += 8
		case fxInt:
			*(*int)(q) = int(int64(binary.LittleEndian.Uint64(src[off:])))
			off += 8
		case fxUint:
			*(*uint)(q) = uint(binary.LittleEndian.Uint64(src[off:]))
			off += 8
		}
	}
	return off, nil
}
