// Package bench regenerates every table and figure of the paper's
// evaluation (§V) at laptop scale: the dataset analogs of Table III, the
// cross-system timing grids of Tables V and VI, the slowdown heat map of
// Fig. 1, the propagation-mode comparison of Fig. 3, the active-vertex and
// scalability plots of Fig. 4, the §V-E time breakdown, the §IV-C
// optimization ablations, and the Table I LLoC comparison.
package bench

import (
	"fmt"
	"time"

	"flash/graph"
)

// Dataset is one paper-analog graph generator (see DESIGN.md §1 for the
// substitution rationale). Scale 1 is the default benchmark size; larger
// scales multiply the vertex count.
type Dataset struct {
	Abbr   string
	Name   string
	Domain string // SN, RN, WG (Table III)
	Build  func(scale int) *graph.Graph
}

// Datasets mirrors Table III: two social networks, two road networks, two
// web graphs, ordered as the paper orders them.
var Datasets = []Dataset{
	{
		Abbr: "OR", Name: "soc-orkut-sim", Domain: "SN",
		Build: func(s int) *graph.Graph {
			n := 4096 * s
			return graph.GenRMAT(n, n*12, 101)
		},
	},
	{
		Abbr: "TW", Name: "soc-twitter-sim", Domain: "SN",
		Build: func(s int) *graph.Graph {
			n := 8192 * s
			return graph.GenRMAT(n, n*14, 202)
		},
	},
	{
		Abbr: "US", Name: "road-usa-sim", Domain: "RN",
		Build: func(s int) *graph.Graph {
			return graph.GenGrid(160*s, 40, 12, 303)
		},
	},
	{
		Abbr: "EU", Name: "europe-osm-sim", Domain: "RN",
		Build: func(s int) *graph.Graph {
			return graph.GenGrid(240*s, 48, 16, 404)
		},
	},
	{
		Abbr: "UK", Name: "uk-2002-sim", Domain: "WG",
		Build: func(s int) *graph.Graph {
			n := 6144 * s
			return graph.GenWeb(n, 12, 32, 505)
		},
	},
	{
		Abbr: "SK", Name: "sk-2005-sim", Domain: "WG",
		Build: func(s int) *graph.Graph {
			n := 10240 * s
			return graph.GenWeb(n, 16, 48, 606)
		},
	},
}

// DatasetByAbbr returns the dataset with the given abbreviation.
func DatasetByAbbr(abbr string) (Dataset, bool) {
	for _, d := range Datasets {
		if d.Abbr == abbr {
			return d, true
		}
	}
	return Dataset{}, false
}

// Cell is one measurement of a (system, app, dataset) combination.
type Cell struct {
	Seconds float64
	Status  string // "" ok; "-" unsupported; "OT" over time budget; "ERR"
}

// String renders the cell the way the paper's tables do.
func (c Cell) String() string {
	if c.Status != "" {
		return c.Status
	}
	switch {
	case c.Seconds >= 100:
		return fmt.Sprintf("%.1f", c.Seconds)
	case c.Seconds >= 1:
		return fmt.Sprintf("%.2f", c.Seconds)
	default:
		return fmt.Sprintf("%.4f", c.Seconds)
	}
}

// Unsupported is the cell for an inexpressible combination.
var Unsupported = Cell{Status: "-"}

// timedCell runs f under a wall-clock budget; on timeout it reports "OT"
// (the runaway goroutine is abandoned, acceptable for a benchmark CLI).
func timedCell(budget time.Duration, f func() error) Cell {
	type outcome struct {
		d   time.Duration
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		start := time.Now()
		err := f()
		ch <- outcome{time.Since(start), err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			return Cell{Status: "ERR"}
		}
		return Cell{Seconds: o.d.Seconds()}
	case <-time.After(budget):
		return Cell{Status: "OT"}
	}
}
