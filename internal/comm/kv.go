package comm

import (
	"encoding/binary"
	"fmt"
)

// KV frame wire format
//
// A KV frame is a run of (vid, value) records:
//
//	record := vid-delta (zigzag uvarint) | value (Codec encoding)
//
// The vid is delta-encoded against the previous record's vid of the same
// frame, starting from 0, with the signed difference zigzag-mapped to a
// uvarint. The engine routes vids in ascending order, so consecutive deltas
// are small and positive and most vids cost one byte instead of four. Every
// frame restarts at base 0 and is therefore self-contained: frames may be
// dropped, retried, or reordered (chaos transport) without corrupting
// neighbors.

// zigzag maps a signed delta to an unsigned value with small absolute values
// staying small: 0,-1,1,-2,2 ... -> 0,1,2,3,4 ...
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendVIDDelta appends cur delta-encoded against prev.
//flash:hotpath
func AppendVIDDelta(dst []byte, prev, cur uint32) []byte {
	return binary.AppendUvarint(dst, zigzag(int64(cur)-int64(prev)))
}

// ReadVIDDelta decodes the next vid given the previous one, returning the vid
// and the bytes consumed.
//flash:hotpath
func ReadVIDDelta(src []byte, prev uint32) (uint32, int, error) {
	u, k := binary.Uvarint(src)
	if k <= 0 {
		return 0, 0, errShort
	}
	v := int64(prev) + unzigzag(u)
	if v < 0 || v > 1<<32-1 {
		return 0, 0, fmt.Errorf("comm: vid delta out of range (prev %d)", prev)
	}
	return uint32(v), k, nil
}

// KVWriter encodes a stream of (vid, value) records into a pooled frame
// buffer. The zero value is unusable; call Init first. Take hands the encoded
// frame to the caller (who passes it to Transport.Send, transferring
// ownership to the receiver's drain) and resets the writer for the next
// frame.
type KVWriter[V any] struct {
	codec Codec[V]
	buf   []byte
	prev  uint32
}

// Init binds the writer to a codec.
func (kw *KVWriter[V]) Init(c Codec[V]) { kw.codec = c }

// Append encodes one record.
//flash:hotpath
//flash:deterministic
func (kw *KVWriter[V]) Append(vid uint32, v *V) {
	if kw.buf == nil {
		kw.buf = GetBuf()
		kw.prev = 0
	}
	kw.buf = AppendVIDDelta(kw.buf, kw.prev, vid)
	kw.prev = vid
	kw.buf = kw.codec.Append(kw.buf, v)
}

// Len returns the encoded size of the pending frame.
func (kw *KVWriter[V]) Len() int { return len(kw.buf) }

// Take returns the pending frame and resets the writer. The returned buffer
// is pool-backed: whoever consumes it releases it with PutBuf (the transports
// do this for delivered frames).
//flash:hotpath
func (kw *KVWriter[V]) Take() []byte {
	b := kw.buf
	kw.buf = nil
	kw.prev = 0
	return b
}

// Discard drops the pending frame back into the pool (checkpoint rollback).
//flash:hotpath
func (kw *KVWriter[V]) Discard() {
	if kw.buf != nil {
		PutBuf(kw.buf)
		kw.buf = nil
		kw.prev = 0
	}
}

// DecodeKV decodes every record of one KV frame, handing each (vid, value)
// pair to apply. The value pointer is only valid during the call: apply must
// copy the value (not the pointer) if it outlives the callback, which makes
// the decode allocation-free for fixed-width property types.
//flash:hotpath
func DecodeKV[V any](c Codec[V], data []byte, apply func(vid uint32, v *V)) error {
	var val V
	prev := uint32(0)
	off := 0
	for off < len(data) {
		vid, k, err := ReadVIDDelta(data[off:], prev)
		if err != nil {
			return fmt.Errorf("%w: kv frame vid at offset %d: %v", ErrCorrupt, off, err)
		}
		prev = vid
		off += k
		n, err := c.Decode(data[off:], &val)
		if err != nil {
			return fmt.Errorf("%w: kv frame value at offset %d: %v", ErrCorrupt, off, err)
		}
		off += n
		apply(vid, &val)
	}
	return nil
}
