package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flash"
	"flash/graph"
	"flash/metrics"
)

func TestBuildGraphGenerators(t *testing.T) {
	for _, gen := range []string{"rmat", "grid", "web", "er", "path", "cycle", "star", "tree"} {
		g, err := buildGraph("", gen, 100, 300, 10, 10, 1, false)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s: empty graph", gen)
		}
	}
	if _, err := buildGraph("", "nope", 10, 10, 1, 1, 1, false); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestBuildGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := buildGraph(path, "", 0, 0, 0, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if _, err := buildGraph(filepath.Join(dir, "missing.txt"), "", 0, 0, 0, 0, 0, false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunAlgoAll(t *testing.T) {
	g := graph.GenErdosRenyi(80, 320, 3)
	opts := []flash.Option{flash.WithWorkers(2), flash.WithCollector(metrics.New())}
	for algoName, wantPrefix := range map[string]string{
		"bfs":      "bfs: reached",
		"cc":       "cc: ",
		"ccopt":    "cc-opt: ",
		"bc":       "bc: max dependency",
		"mis":      "mis: ",
		"mm":       "mm: ",
		"mmopt":    "mmopt: ",
		"kc":       "kc: degeneracy",
		"kcopt":    "kcopt: degeneracy",
		"tc":       "tc: ",
		"gc":       "gc: ",
		"scc":      "scc: ",
		"bcc":      "bcc: ",
		"lpa":      "lpa: ",
		"msf":      "msf: ",
		"rc":       "rc: ",
		"cl":       "cl: ",
		"sssp":     "sssp: reached",
		"pagerank": "pagerank: top vertex",
	} {
		summary, err := runAlgo(algoName, g, 0, 3, 3, 1, opts)
		if err != nil {
			t.Fatalf("%s: %v", algoName, err)
		}
		if !strings.HasPrefix(summary, wantPrefix) {
			t.Fatalf("%s: summary %q", algoName, summary)
		}
	}
	if _, err := runAlgo("nope", g, 0, 3, 3, 1, opts); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
