package algo

import (
	"sort"

	"flash"
	"flash/graph"
)

type clusteringProps struct {
	Tri int64    // triangles through this vertex
	Out []uint32 // sorted neighbor list
}

// ClusteringResult holds local clustering coefficients and the global
// (transitivity) coefficient.
type ClusteringResult struct {
	Local  []float64
	Global float64
}

// ClusteringCoefficient computes the local clustering coefficient of every
// vertex (triangles through v over deg(v) choose 2) and the global
// transitivity (3·triangles / open wedges). The paper's introduction names
// clustering coefficient among the algorithms vertex-centric frameworks
// struggle with, since it needs full neighbor-list exchange.
func ClusteringCoefficient(g *graph.Graph, opts ...flash.Option) (ClusteringResult, error) {
	e, err := newEngine[clusteringProps](g, opts)
	if err != nil {
		return ClusteringResult{}, err
	}
	defer e.Close()

	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[clusteringProps]) clusteringProps {
		return clusteringProps{}
	})
	// Materialize sorted neighbor lists.
	e.EdgeMap(u, e.E(),
		nil,
		func(s, d flash.Vertex[clusteringProps]) clusteringProps {
			nv := *d.Val
			nv.Out = append(append([]uint32(nil), nv.Out...), uint32(s.ID))
			return nv
		},
		nil,
		func(t, cur clusteringProps) clusteringProps {
			cur.Out = append(cur.Out, t.Out...)
			return cur
		})
	e.VertexMap(u, nil, func(v flash.Vertex[clusteringProps]) clusteringProps {
		nv := *v.Val
		sort.Slice(nv.Out, func(i, j int) bool { return nv.Out[i] < nv.Out[j] })
		return nv
	})
	// Per-edge intersection: every common neighbor of (s, d) witnesses a
	// triangle through d. Each triangle contributes 2 per corner (once per
	// incident edge direction pair), so halve at extraction.
	e.EdgeMap(u, e.E(),
		nil,
		func(s, d flash.Vertex[clusteringProps]) clusteringProps {
			nv := *d.Val
			nv.Tri += intersectCount(s.Val.Out, d.Val.Out)
			return nv
		},
		nil,
		func(t, cur clusteringProps) clusteringProps {
			cur.Tri += t.Tri
			return cur
		},
		flash.NoSync()) // Tri is extracted driver-side

	res := ClusteringResult{Local: make([]float64, g.NumVertices())}
	var closed, wedges float64
	e.Gather(func(v graph.VID, val *clusteringProps) {
		deg := float64(g.OutDegree(v))
		tri := float64(val.Tri) / 2 // each triangle counted via both incident edges
		if deg >= 2 {
			res.Local[v] = tri / (deg * (deg - 1) / 2)
			wedges += deg * (deg - 1) / 2
		}
		closed += tri
	})
	if wedges > 0 {
		res.Global = closed / wedges
	}
	return res, nil
}
