//go:build race

package bench

// raceEnabled gates allocation-sensitive tests: the race detector
// instruments allocations and would trip the regression thresholds.
const raceEnabled = true
