// Durable checkpoint storage.
//
// A checkpoint used to live only in driver memory — useless against the loss
// of the process holding it. CheckpointStore externalizes the snapshot as an
// encoded image (GraphFlash-style state externalization): the engine encodes
// every worker's section at the barrier and hands the image to the store, and
// cold restart rehydrates a rebuilt worker from the bytes the store returns.
// MemStore keeps the old in-memory behavior behind the same interface;
// FileStore makes the image durable with a versioned header, a CRC32-C per
// section, and an atomic write-then-rename, so a torn or bit-flipped file is
// detected at Load instead of restoring garbage state.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// CheckpointImage is one consistent snapshot, fully encoded: Sections[i]
// holds worker i's state (current values plus frontier bitmap) in the wire
// codec's encoding, and Seq increases with every snapshot taken. Images are
// immutable once handed to a store.
type CheckpointImage struct {
	Seq      uint64
	Sections [][]byte
}

// CheckpointStore persists checkpoint images. Save must be atomic: a Load
// after a failed or torn Save returns the previous image (or an error), never
// a partial mix. Load returns nil (no error) when nothing has been saved.
// Implementations must be safe for use from a single engine goroutine;
// stores shared across engines need their own synchronization.
type CheckpointStore interface {
	Save(img *CheckpointImage) error
	Load() (*CheckpointImage, error)
	Close() error
}

// MemStore is the in-memory CheckpointStore: the pre-durability snapshot
// behavior behind the store interface. It survives superstep failures but
// not the loss of the process holding it.
type MemStore struct {
	mu  sync.Mutex
	img *CheckpointImage
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save retains img (taking ownership; the engine never mutates a saved
// image).
func (s *MemStore) Save(img *CheckpointImage) error {
	s.mu.Lock()
	s.img = img
	s.mu.Unlock()
	return nil
}

// Load returns the last saved image, or nil when none exists.
func (s *MemStore) Load() (*CheckpointImage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.img, nil
}

// Close drops the retained image.
func (s *MemStore) Close() error {
	s.mu.Lock()
	s.img = nil
	s.mu.Unlock()
	return nil
}

// Checkpoint file format (little-endian):
//
//	magic   [8]byte "FLASHCKP"
//	version u16     (currently 1)
//	seq     u64
//	nsect   u32
//	table   nsect × (length u32 | crc32c u32)
//	payload sections concatenated, in table order
//
// The per-section CRC32-C (Castagnoli, matching the TCP frame checksum)
// catches bit rot and torn writes; the version gate rejects images written
// by a different layout; and the decoder validates the byte budget exactly,
// so a truncated or padded file fails loudly instead of shifting sections.
const (
	ckptMagic    = "FLASHCKP"
	ckptVersion  = 1
	ckptHdrSize  = 8 + 2 + 8 + 4
	ckptMaxSects = 1 << 16 // worker count bound; rejects absurd headers
)

var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeCheckpointFile serializes img into the checkpoint file format.
func EncodeCheckpointFile(img *CheckpointImage) []byte {
	size := ckptHdrSize + 8*len(img.Sections)
	for _, s := range img.Sections {
		size += len(s)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint64(buf, img.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(img.Sections)))
	for _, s := range img.Sections {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(s, ckptCRCTable))
	}
	for _, s := range img.Sections {
		buf = append(buf, s...)
	}
	return buf
}

// DecodeCheckpointFile parses and verifies a checkpoint file. It returns an
// error — never panics, never a partial image — for truncated, bit-flipped,
// wrong-version or trailing-garbage input: the image is handed back only
// after every section's length and CRC check out.
func DecodeCheckpointFile(data []byte) (*CheckpointImage, error) {
	if len(data) < ckptHdrSize {
		return nil, fmt.Errorf("core: checkpoint file truncated: %d bytes", len(data))
	}
	if string(data[:8]) != ckptMagic {
		return nil, fmt.Errorf("core: not a checkpoint file (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(data[8:10]); v != ckptVersion {
		return nil, fmt.Errorf("core: unsupported checkpoint version %d (want %d)", v, ckptVersion)
	}
	seq := binary.LittleEndian.Uint64(data[10:18])
	nsect := binary.LittleEndian.Uint32(data[18:22])
	if nsect > ckptMaxSects {
		return nil, fmt.Errorf("core: checkpoint section count %d exceeds limit", nsect)
	}
	rest := data[ckptHdrSize:]
	if uint64(len(rest)) < 8*uint64(nsect) {
		return nil, fmt.Errorf("core: checkpoint file truncated in section table")
	}
	table, payload := rest[:8*nsect], rest[8*nsect:]
	img := &CheckpointImage{Seq: seq, Sections: make([][]byte, nsect)}
	off := 0
	for i := 0; i < int(nsect); i++ {
		n := int(binary.LittleEndian.Uint32(table[8*i:]))
		want := binary.LittleEndian.Uint32(table[8*i+4:])
		if n < 0 || off+n > len(payload) || off+n < off {
			return nil, fmt.Errorf("core: checkpoint section %d truncated (%d bytes past end)", i, n)
		}
		sect := payload[off : off+n]
		if crc32.Checksum(sect, ckptCRCTable) != want {
			return nil, fmt.Errorf("core: checkpoint section %d crc mismatch", i)
		}
		img.Sections[i] = sect
		off += n
	}
	if off != len(payload) {
		return nil, fmt.Errorf("core: %d trailing bytes after checkpoint sections", len(payload)-off)
	}
	return img, nil
}

// FileStore is the durable CheckpointStore: one file holding the latest
// image. Save writes a temp file in the same directory, syncs it, and
// renames it over the target, so the visible file is always a complete,
// verifiable image — a crash mid-save leaves the previous checkpoint intact.
type FileStore struct {
	path string
}

// NewFileStore creates a file-backed store at path. The file need not exist
// yet; its directory must.
func NewFileStore(path string) (*FileStore, error) {
	if path == "" {
		return nil, fmt.Errorf("core: checkpoint store path must not be empty")
	}
	return &FileStore{path: path}, nil
}

// Path returns the backing file's path.
func (s *FileStore) Path() string { return s.path }

// Save atomically replaces the stored image.
func (s *FileStore) Save(img *CheckpointImage) error {
	buf := EncodeCheckpointFile(img)
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: checkpoint save: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint save: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint save: %w", err)
	}
	return nil
}

// Load reads and verifies the stored image; nil when no file exists yet.
func (s *FileStore) Load() (*CheckpointImage, error) {
	data, err := os.ReadFile(s.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint load: %w", err)
	}
	img, err := DecodeCheckpointFile(data)
	if err != nil {
		return nil, err
	}
	return img, nil
}

// Close is a no-op: every Save already leaves a complete file behind.
func (s *FileStore) Close() error { return nil }
