// Package gemini is a miniature Gemini-style engine (Zhu et al., OSDI'16):
// a computation-centric design with flat pre-allocated property arrays,
// chunked multi-threaded edge processing, and adaptive push (sparse) / pull
// (dense) switching. Its model restrictions from the paper hold here:
// communication strictly along edges, per-edge updates must be
// associative+commutative, and vertex properties are fixed-size flat arrays
// — which is why TC, GC and LPA (variable-length neighbor/label sets) are
// not expressible and are absent from this package.
package gemini

import (
	"sync"

	"flash/graph"
	"flash/internal/bitset"
)

// Config parameterizes the engine.
type Config struct {
	// Threads is the parallelism degree (default 4).
	Threads int
	// DenseThreshold is the Ligra-style density denominator (default 20).
	DenseThreshold int
}

func (c *Config) fill() {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.DenseThreshold == 0 {
		c.DenseThreshold = 20
	}
}

// Engine wraps a graph with a frontier and lock stripes for push updates.
type Engine struct {
	g       *graph.Graph
	cfg     Config
	stripes [256]sync.Mutex
}

// New creates an engine over g.
func New(g *graph.Graph, cfg Config) *Engine {
	cfg.fill()
	return &Engine{g: g, cfg: cfg}
}

// Graph returns the topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Frontier is a bitset of active vertices.
type Frontier struct {
	bits  *bitset.Bitset
	count int
}

// NewFrontier returns an empty frontier.
func (e *Engine) NewFrontier() *Frontier {
	return &Frontier{bits: bitset.New(e.g.NumVertices())}
}

// Full returns a frontier containing every vertex.
func (e *Engine) Full() *Frontier {
	f := e.NewFrontier()
	f.bits.Fill()
	f.count = e.g.NumVertices()
	return f
}

// Add activates v.
func (f *Frontier) Add(v graph.VID) {
	if !f.bits.TestAndSet(int(v)) {
		f.count++
	}
}

// Has reports whether v is active.
func (f *Frontier) Has(v graph.VID) bool { return f.bits.Test(int(v)) }

// Count returns the number of active vertices.
func (f *Frontier) Count() int { return f.count }

// parfor runs f over [0,n) chunks on cfg.Threads goroutines; chunk bounds
// are 64-aligned so bitset writes on disjoint chunks never share a word.
func (e *Engine) parfor(n int, f func(lo, hi int)) {
	t := e.cfg.Threads
	if t == 1 || n < 256 {
		f(0, n)
		return
	}
	chunk := ((n+t-1)/t + 63) &^ 63
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ProcessEdges runs one round over the active edges. In push (sparse) mode,
// pushF runs for every out-edge of an active source under a per-target lock
// stripe and returns whether the target became active. In pull (dense) mode,
// pullF runs for every in-edge of every vertex whose source is active,
// without locking (one goroutine owns each target). Both callbacks must
// perform the same update so the mode switch is transparent, exactly as
// Gemini requires of its sparse/dense signal-slot pairs.
func (e *Engine) ProcessEdges(u *Frontier,
	pushF func(src, dst graph.VID, w float32) bool,
	pullF func(dst, src graph.VID, w float32) bool,
) *Frontier {
	out := e.NewFrontier()
	n := e.g.NumVertices()

	degSum := 0
	u.bits.Range(func(v int) bool {
		degSum += e.g.OutDegree(graph.VID(v))
		return true
	})
	dense := u.count+degSum > e.g.NumEdges()/e.cfg.DenseThreshold

	if dense && pullF != nil {
		e.parfor(n, func(lo, hi int) {
			for d := lo; d < hi; d++ {
				dst := graph.VID(d)
				adj := e.g.InNeighbors(dst)
				ws := e.g.InWeights(dst)
				activated := false
				for i, s := range adj {
					if !u.bits.Test(int(s)) {
						continue
					}
					var w float32
					if ws != nil {
						w = ws[i]
					}
					if pullF(dst, s, w) {
						activated = true
					}
				}
				if activated {
					out.bits.Set(d)
				}
			}
		})
	} else {
		e.parfor(n, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				if !u.bits.Test(s) {
					continue
				}
				src := graph.VID(s)
				adj := e.g.OutNeighbors(src)
				ws := e.g.OutWeights(src)
				for i, d := range adj {
					var w float32
					if ws != nil {
						w = ws[i]
					}
					stripe := &e.stripes[(int(d)>>6)&255]
					stripe.Lock()
					if pushF(src, d, w) {
						out.bits.Set(int(d))
					}
					stripe.Unlock()
				}
			}
		})
	}
	out.count = out.bits.Count()
	return out
}

// ProcessVertices applies f to every active vertex in parallel and returns
// the activated subset.
func (e *Engine) ProcessVertices(u *Frontier, f func(v graph.VID) bool) *Frontier {
	out := e.NewFrontier()
	e.parfor(e.g.NumVertices(), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if u.bits.Test(v) && f(graph.VID(v)) {
				out.bits.Set(v)
			}
		}
	})
	out.count = out.bits.Count()
	return out
}
