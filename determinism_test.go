// Message-byte determinism: phase-2 partials and mirror syncs are routed in
// ascending vid order (sequential bit-walks, or 64-aligned chunks shipped in
// fixed (destination, thread) order), so for a fixed configuration the exact
// byte stream each worker sends to each peer is identical across runs. The
// chaos tests' byte-identical fault-injection guarantee rests on this.
package flash_test

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"

	"flash"
	"flash/graph"
	"flash/internal/comm"

	"flash/algo"
)

// recordingTransport wraps a Transport and logs a hash of every data frame
// per (from, to) edge in send order.
type recordingTransport struct {
	comm.Transport
	mu  sync.Mutex
	log map[[2]int][][32]byte
}

func newRecorder(inner comm.Transport) *recordingTransport {
	return &recordingTransport{Transport: inner, log: make(map[[2]int][][32]byte)}
}

func (r *recordingTransport) Send(from, to int, data []byte) error {
	r.mu.Lock()
	k := [2]int{from, to}
	r.log[k] = append(r.log[k], sha256.Sum256(data))
	r.mu.Unlock()
	return r.Transport.Send(from, to, data)
}

// frameLog runs one BFS+CC over the recorder and returns the per-edge frame
// hash sequences.
func frameLog(t *testing.T, g *graph.Graph, workers, threads int) map[[2]int][][32]byte {
	t.Helper()
	rec := newRecorder(comm.NewMem(workers))
	opts := []flash.Option{
		flash.WithWorkers(workers),
		flash.WithThreads(threads),
		flash.WithTransport(rec),
	}
	if _, err := algo.BFS(g, 3, opts...); err != nil {
		t.Fatal(err)
	}
	// A second algorithm needs a fresh round-aligned transport.
	rec2 := newRecorder(comm.NewMem(workers))
	opts[2] = flash.WithTransport(rec2)
	if _, err := algo.CC(g, opts...); err != nil {
		t.Fatal(err)
	}
	for k, v := range rec2.log {
		rec.log[k] = append(rec.log[k], v...)
	}
	return rec.log
}

func TestMessageBytesDeterministic(t *testing.T) {
	g := graph.GenRMAT(600, 4200, 23)
	for _, c := range []struct{ workers, threads int }{
		{3, 1}, {3, 2}, {4, 4},
	} {
		t.Run(fmt.Sprintf("w%dt%d", c.workers, c.threads), func(t *testing.T) {
			a := frameLog(t, g, c.workers, c.threads)
			b := frameLog(t, g, c.workers, c.threads)
			if len(a) != len(b) {
				t.Fatalf("edge sets differ: %d vs %d sending pairs", len(a), len(b))
			}
			for k, fa := range a {
				fb := b[k]
				if len(fa) != len(fb) {
					t.Fatalf("worker %d->%d: %d frames vs %d frames", k[0], k[1], len(fa), len(fb))
				}
				for i := range fa {
					if fa[i] != fb[i] {
						t.Fatalf("worker %d->%d: frame %d bytes differ between runs", k[0], k[1], i)
					}
				}
			}
		})
	}
}
