// Superstep checkpoint/recovery (fault tolerance).
//
// Following Distributed GraphLab's observation that BSP engines get cheap
// fault tolerance from snapshotting at superstep boundaries, the engine can
// snapshot every worker's state at the barrier — where it is consistent by
// BSP construction — every CheckpointEvery successful supersteps. When a
// superstep fails (transport error, stalled peer, injected worker crash),
// the engine rolls back to the last checkpoint, replays the supersteps since
// then (FLASH steps are deterministic functions of engine state, so replay
// reproduces the exact pre-failure state and the exact subsets the driver
// already holds), and re-executes the failed superstep. Scripted faults are
// one-shot, and real-world transients are by definition unlikely to repeat,
// so replay normally succeeds; a recovery budget stops a persistent fault
// from looping forever.
package core

import (
	"errors"
	"fmt"
	"time"

	"flash/internal/bitset"
	"flash/metrics"
)

// replayStep re-executes one superstep for its state effects, writing the
// output subset into a throwaway.
type replayStep[V any] func(out *Subset) error

// checkpoint is a consistent snapshot of all worker state plus optional
// driver-side state (e.g. a DSU) captured through the OnCheckpoint hook.
type checkpoint[V any] struct {
	cur      [][]V
	frontier []*bitset.Bitset
	driver   any
	hasDrv   bool
}

// runtimeFailure carries an unrecovered superstep error up to Run through
// the paper-shaped, error-free primitive signatures.
type runtimeFailure struct{ err error }

func (r runtimeFailure) Error() string { return r.err.Error() }

// RunResult summarizes a completed (or failed) run. Counters are cumulative
// for the engine's collector.
type RunResult struct {
	Supersteps  int
	Checkpoints uint64
	Recoveries  uint64
	Retries     uint64
	Reconnects  uint64
}

// Run executes a FLASH driver program with the engine's fault-tolerance
// machinery engaged: a superstep that fails beyond what retry and
// checkpoint recovery can absorb surfaces here as an error instead of a
// panic, with every worker goroutine already joined and the transport
// aborted cleanly. Structural misuse of the primitives (wrong engine's
// subset, nil reduce in push mode, ...) still panics: those are programming
// errors, not runtime conditions.
func (e *Engine[V]) Run(program func() error) (res RunResult, err error) {
	if e.failed != nil {
		return e.runResult(), e.failed
	}
	defer func() {
		res = e.runResult()
		if r := recover(); r != nil {
			rf, ok := r.(runtimeFailure)
			if !ok {
				panic(r)
			}
			err = rf.err
		}
	}()
	err = program()
	return
}

// runResult snapshots the run counters from the collector and transport.
func (e *Engine[V]) runResult() RunResult {
	stats := e.tr.Stats()
	return RunResult{
		Supersteps:  e.met.Supersteps,
		Checkpoints: e.met.Checkpoints,
		Recoveries:  e.met.Recoveries,
		Retries:     e.met.Retries,
		Reconnects:  e.met.Reconnects + stats.Reconnects,
	}
}

// OnCheckpoint registers driver-side state hooks: save is called when a
// checkpoint is taken and its value is handed back to restore on rollback.
// Algorithms that keep state outside the engine between supersteps (the
// paper's driver-side DSU in BCC/MSF, iteration-scoped accumulators, ...)
// register here so recovery rewinds that state too.
func (e *Engine[V]) OnCheckpoint(save func() any, restore func(any)) {
	e.ckptSave = save
	e.ckptRestore = restore
}

// Err returns the first unrecovered superstep failure, or nil.
func (e *Engine[V]) Err() error { return e.failed }

// execStep runs one superstep with failure handling. exec must be a
// deterministic function of engine state that fills out and performs this
// worker-parallel superstep's exchange rounds. On failure the engine rolls
// back to the last checkpoint, replays the logged supersteps and re-executes
// exec, up to the recovery budget; an unrecovered error marks the engine
// failed and unwinds to Run.
func (e *Engine[V]) execStep(frontier int, exec replayStep[V]) *Subset {
	if e.failed != nil {
		panic(runtimeFailure{fmt.Errorf("core: engine already failed: %w", e.failed)})
	}
	ckptOn := e.cfg.CheckpointEvery > 0
	if ckptOn && e.ckpt == nil {
		// The initial checkpoint, taken lazily so driver-side seeding
		// (Engine.Set) before the first superstep is captured.
		e.takeCheckpoint()
	}
	e.met.Step(frontier)
	out := e.newSubset()
	err := exec(out)
	for err != nil {
		if !e.canRecover(err) {
			e.failed = err
			panic(runtimeFailure{err})
		}
		e.recoveries++
		e.met.AddRecoveries(1)
		out = e.newSubset()
		err = e.rollbackReplay(exec, out)
	}
	out.recount()
	if ckptOn {
		e.replayLog = append(e.replayLog, exec)
		e.stepsSince++
		if e.stepsSince >= e.cfg.CheckpointEvery {
			e.takeCheckpoint()
		}
	}
	return out
}

// canRecover reports whether err is worth a rollback: checkpointing must be
// on with a snapshot in hand, the recovery budget must not be exhausted, and
// the failure must not be a worker panic (deterministic: it would fire again
// on replay).
func (e *Engine[V]) canRecover(err error) bool {
	var wp *workerPanic
	if errors.As(err, &wp) {
		return false
	}
	return e.cfg.CheckpointEvery > 0 && e.ckpt != nil && e.recoveries < e.cfg.MaxRecoveries
}

// rollbackReplay restores the last checkpoint, replays the supersteps logged
// since then for their state effects, and re-executes the failed superstep
// into out.
func (e *Engine[V]) rollbackReplay(failed replayStep[V], out *Subset) error {
	start := time.Now()
	e.tr.Reset()
	e.restoreCheckpoint()
	for _, step := range e.replayLog {
		if err := step(e.newSubset()); err != nil {
			e.met.Add(metrics.Other, time.Since(start))
			return err
		}
	}
	err := failed(out)
	e.met.Add(metrics.Other, time.Since(start))
	return err
}

// takeCheckpoint snapshots every worker's cur array and frontier bitmap plus
// the driver hook state, then truncates the replay log: everything before
// the snapshot can never be replayed again.
func (e *Engine[V]) takeCheckpoint() {
	ck := &checkpoint[V]{
		cur:      make([][]V, len(e.workers)),
		frontier: make([]*bitset.Bitset, len(e.workers)),
	}
	for i, w := range e.workers {
		ck.cur[i] = append([]V(nil), w.cur...)
		ck.frontier[i] = w.frontier.Clone()
	}
	if e.ckptSave != nil {
		ck.driver = e.ckptSave()
		ck.hasDrv = true
	}
	e.ckpt = ck
	e.replayLog = e.replayLog[:0]
	e.stepsSince = 0
	e.met.AddCheckpoints(1)
}

// restoreCheckpoint copies the snapshot back and clears per-superstep
// scratch state so replay starts from a barrier-clean slate.
func (e *Engine[V]) restoreCheckpoint() {
	for i, w := range e.workers {
		copy(w.cur, e.ckpt.cur[i])
		w.frontier.CopyFrom(e.ckpt.frontier[i])
		w.nextSet.Reset()
		for t := range w.acc {
			if w.acc[t].set != nil {
				w.acc[t].set.Reset()
			}
		}
		w.pendSet.Reset()
		w.discardEnc() // unshipped frames back to the pool, delta bases reset
	}
	if e.ckpt.hasDrv && e.ckptRestore != nil {
		e.ckptRestore(e.ckpt.driver)
	}
}
