package gemini

import (
	"sync/atomic"

	"flash/graph"
)

// Gemini supports the five Table V applications whose properties are
// fixed-size: BFS, CC, BC, MIS and MM. The property arrays live outside the
// engine (Gemini's flat-array style); push and pull callbacks perform the
// same update.

const none = int32(-1)

// BFS computes hop distances from root.
func BFS(g *graph.Graph, root graph.VID, cfg Config) []int32 {
	e := New(g, cfg)
	dis := make([]int32, g.NumVertices())
	for i := range dis {
		dis[i] = none
	}
	dis[root] = 0
	u := e.NewFrontier()
	u.Add(root)
	level := int32(0)
	for u.Count() > 0 {
		level++
		lv := level
		u = e.ProcessEdges(u,
			func(_, dst graph.VID, _ float32) bool {
				if dis[dst] == none {
					dis[dst] = lv
					return true
				}
				return false
			},
			func(dst, _ graph.VID, _ float32) bool {
				if dis[dst] == none {
					dis[dst] = lv
					return true
				}
				return false
			})
	}
	return dis
}

// CC computes connected components by min-label propagation. Labels are
// accessed atomically: like real Ligra/Gemini programs, a round may read a
// neighbor's label while its owner updates it, which is safe for monotone
// minima but needs atomic word access.
func CC(g *graph.Graph, cfg Config) []uint32 {
	e := New(g, cfg)
	label := make([]uint32, g.NumVertices())
	for i := range label {
		label[i] = uint32(i)
	}
	relax := func(dst, src graph.VID) bool {
		l := atomic.LoadUint32(&label[src])
		if l < atomic.LoadUint32(&label[dst]) {
			atomic.StoreUint32(&label[dst], l)
			return true
		}
		return false
	}
	u := e.Full()
	for u.Count() > 0 {
		u = e.ProcessEdges(u,
			func(src, dst graph.VID, _ float32) bool { return relax(dst, src) },
			func(dst, src graph.VID, _ float32) bool { return relax(dst, src) })
	}
	return label
}

// BC computes Brandes dependency scores from root.
func BC(g *graph.Graph, root graph.VID, cfg Config) []float64 {
	e := New(g, cfg)
	n := g.NumVertices()
	level := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range level {
		level[i] = none
	}
	level[root] = 0
	sigma[root] = 1
	u := e.NewFrontier()
	u.Add(root)
	frontiers := []*Frontier{u}
	cur := int32(0)
	for u.Count() > 0 {
		cur++
		lv := cur
		u = e.ProcessEdges(u,
			func(src, dst graph.VID, _ float32) bool {
				if level[dst] == none || level[dst] == lv {
					first := level[dst] == none
					level[dst] = lv
					sigma[dst] += sigma[src]
					return first
				}
				return false
			},
			func(dst, src graph.VID, _ float32) bool {
				if level[src] == lv-1 && (level[dst] == none || level[dst] == lv) {
					first := level[dst] == none
					level[dst] = lv
					sigma[dst] += sigma[src]
					return first
				}
				return false
			})
		if u.Count() > 0 {
			frontiers = append(frontiers, u)
		}
	}
	for i := len(frontiers) - 1; i >= 1; i-- {
		lv := int32(i)
		e.ProcessEdges(frontiers[i],
			func(src, dst graph.VID, _ float32) bool {
				if level[dst] == lv-1 {
					delta[dst] += sigma[dst] / sigma[src] * (1 + delta[src])
				}
				return false
			},
			func(dst, src graph.VID, _ float32) bool {
				if level[dst] == lv-1 {
					delta[dst] += sigma[dst] / sigma[src] * (1 + delta[src])
				}
				return false
			})
	}
	return delta
}

// MIS computes a maximal independent set with degree-based priorities.
func MIS(g *graph.Graph, cfg Config) []bool {
	e := New(g, cfg)
	n := g.NumVertices()
	r := make([]uint64, n)
	in := make([]bool, n)
	out := make([]bool, n)
	blocked := make([]bool, n)
	for i := range r {
		r[i] = uint64(g.OutDegree(graph.VID(i)))*uint64(n) + uint64(i)
	}
	active := e.Full()
	for active.Count() > 0 {
		for i := range blocked {
			blocked[i] = false
		}
		// Mark candidates with a smaller undecided neighbor.
		e.ProcessEdges(active,
			func(src, dst graph.VID, _ float32) bool {
				if !in[src] && !out[src] && !in[dst] && !out[dst] && r[src] < r[dst] {
					blocked[dst] = true
				}
				return false
			},
			func(dst, src graph.VID, _ float32) bool {
				if !in[src] && !out[src] && !in[dst] && !out[dst] && r[src] < r[dst] {
					blocked[dst] = true
				}
				return false
			})
		// Unblocked undecided vertices join; then dominate neighbors.
		joined := e.ProcessVertices(active, func(v graph.VID) bool {
			if !in[v] && !out[v] && !blocked[v] {
				in[v] = true
				return true
			}
			return false
		})
		e.ProcessEdges(joined,
			func(_, dst graph.VID, _ float32) bool {
				if !in[dst] {
					out[dst] = true
				}
				return false
			},
			func(dst, src graph.VID, _ float32) bool {
				if in[src] && !in[dst] {
					out[dst] = true
				}
				return false
			})
		active = e.ProcessVertices(active, func(v graph.VID) bool {
			return !in[v] && !out[v]
		})
	}
	return in
}

// MM computes a maximal matching by propose-and-marry rounds.
func MM(g *graph.Graph, cfg Config) []int32 {
	e := New(g, cfg)
	n := g.NumVertices()
	s := make([]int32, n)
	p := make([]int32, n)
	for i := range s {
		s[i] = none
	}
	active := e.Full()
	for active.Count() > 0 {
		active = e.ProcessVertices(active, func(v graph.VID) bool {
			if s[v] == none {
				p[v] = none
				return true
			}
			return false
		})
		// Propose: targets keep their best unmatched suitor.
		received := e.ProcessEdges(active,
			func(src, dst graph.VID, _ float32) bool {
				if s[dst] == none && int32(src) > p[dst] {
					p[dst] = int32(src)
					return true
				}
				return false
			},
			func(dst, src graph.VID, _ float32) bool {
				if s[dst] == none && int32(src) > p[dst] {
					p[dst] = int32(src)
					return true
				}
				return false
			})
		// Marry mutual proposals.
		e.ProcessEdges(received,
			func(src, dst graph.VID, _ float32) bool {
				if s[dst] == none && p[src] == int32(dst) && p[dst] == int32(src) {
					s[dst] = int32(src)
				}
				return false
			},
			func(dst, src graph.VID, _ float32) bool {
				if s[dst] == none && p[src] == int32(dst) && p[dst] == int32(src) {
					s[dst] = int32(src)
				}
				return false
			})
		active = received
	}
	return s
}
