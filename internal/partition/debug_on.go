//go:build flashdebug

package partition

import (
	"fmt"

	"flash/graph"
)

// DebugAssertions reports whether this binary was built with the flashdebug
// tag (runtime invariant assertions enabled).
const DebugAssertions = true

// assertResident panics when v has no slot on this worker. Slot's contract
// says "v must be resident"; in release builds a violation silently aliases
// another vertex's slot, which is exactly the bug class this assertion makes
// loud. Lookup is the sanctioned path when residency is uncertain.
func (s *SlotTable) assertResident(v graph.VID) {
	if _, ok := s.Lookup(v); !ok {
		panic(fmt.Sprintf(
			"partition: Slot(%d) on worker %d: vertex is not resident (not a local master or mirror); use Lookup",
			v, s.worker))
	}
}
