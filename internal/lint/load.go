package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data produced by
// `go list -export` — no network, no source re-type-checking of
// dependencies. Only the package under analysis is parsed from source.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Load lists the packages matching patterns under dir (a directory inside
// the target module), type-checks each from source against export data for
// its dependencies, and returns them ready for RunAnalyzers. Test files are
// not analyzed: the invariants guard the shipped runtime, and test-only
// constructs (map-keyed subtest tables, ad-hoc allocation) are exempt by
// design.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	deps, err := goList(dir, append([]string{"-deps", "-export",
		"-json=ImportPath,Export,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	targets, err := goList(dir, append([]string{
		"-json=ImportPath,Dir,GoFiles,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		var srcs []string
		for _, gf := range t.GoFiles {
			srcs = append(srcs, filepath.Join(t.Dir, gf))
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, srcs)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir type-checks a standalone fixture directory (non-test files only)
// as a single package, resolving its imports through export data obtained
// from `go list` run inside moduleDir. Used by the analysistest-style
// fixture runner.
func LoadDir(moduleDir, fixtureDir string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var srcs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		srcs = append(srcs, filepath.Join(fixtureDir, name))
	}
	sort.Strings(srcs)
	if len(srcs) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", fixtureDir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, src := range srcs {
		f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		args := []string{"-deps", "-export", "-json=ImportPath,Export,Standard"}
		for path := range importSet {
			args = append(args, path)
		}
		deps, err := goList(moduleDir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	return checkPackageFiles(fset, imp, "fixture/"+filepath.Base(fixtureDir), files)
}

func checkPackage(fset *token.FileSet, imp types.Importer, path string, srcs []string) (*Package, error) {
	var files []*ast.File
	for _, src := range srcs {
		f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return checkPackageFiles(fset, imp, path, files)
}

func checkPackageFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
