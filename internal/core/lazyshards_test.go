package core

import (
	"testing"

	"flash/graph"
)

// shardsMaterialized reports how many workers have any lazy accumulator
// shard (index >= 1) materialized.
func shardsMaterialized[V any](e *Engine[V]) int {
	n := 0
	for _, w := range e.workers {
		for t := 1; t < len(w.acc); t++ {
			if w.acc[t].val != nil {
				n++
				break
			}
		}
	}
	return n
}

// TestLazyShardsStayNilForSmallFrontiers pins the memory contract behind the
// compact layout: a push step whose edge work is below the per-worker slot
// count must run phase 1 sequentially on shard 0 and never materialize the
// per-thread shards.
func TestLazyShardsStayNilForSmallFrontiers(t *testing.T) {
	g := graph.GenErdosRenyi(400, 1600, 11)
	e := mustEngine(t, g, Config{Workers: 2, Threads: 4})
	want := seqBFS(g, 0)
	got := runBFS(e, 0, Auto)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
	if n := shardsMaterialized(e); n != 0 {
		t.Fatalf("auto-mode BFS materialized lazy shards on %d workers", n)
	}
}

// TestParallelSparsePhaseUsesShards forces a push step over the full vertex
// set of a dense graph — edge work far above the slot-count floor — and
// checks the parallel phase 1 engages (shards materialize) and still reduces
// to the right answer.
func TestParallelSparsePhaseUsesShards(t *testing.T) {
	g := graph.GenRMAT(1024, 1024*16, 3)
	e := mustEngine(t, g, Config{Workers: 2, Threads: 4})
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps { return bfsProps{Dis: inf} }, StepOpts{})
	e.Set(0, bfsProps{Dis: 0})
	// min-reduce of source ids over every edge: each target ends up with the
	// smallest in-neighbor id, checkable against the graph directly.
	out := e.EdgeMapSparse(e.All(), BaseE[bfsProps](), nil,
		func(s, d Vtx[bfsProps], _ float32) bfsProps { return bfsProps{Dis: int32(s.ID)} },
		nil,
		func(tv, cur bfsProps) bfsProps {
			if tv.Dis < cur.Dis {
				return tv
			}
			return cur
		}, StepOpts{Mode: Push})
	if n := shardsMaterialized(e); n != e.cfg.Workers {
		t.Fatalf("full-frontier push materialized shards on %d of %d workers", n, e.cfg.Workers)
	}
	minIn := make([]int32, g.NumVertices())
	for i := range minIn {
		minIn[i] = inf
	}
	g.Edges(func(s, d graph.VID, _ float32) bool {
		if int32(s) < minIn[d] {
			minIn[d] = int32(s)
		}
		return true
	})
	e.Gather(func(v graph.VID, val *bfsProps) {
		want := minIn[v]
		if v == 0 && want > 0 {
			want = 0 // vertex 0 keeps its seeded value unless beaten
		}
		if val.Dis != want {
			t.Fatalf("vertex %d: min in-neighbor %d, want %d", v, val.Dis, want)
		}
	})
	if out.Size() == 0 {
		t.Fatal("full-frontier push activated nothing")
	}
	if err := e.CheckMirrorCoherence(func(a, b bfsProps) bool { return a == b }); err != nil {
		t.Fatal(err)
	}
}
