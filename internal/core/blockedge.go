// The out-of-core base edge set: E over a FLASHBLK block graph.
//
// blockEdges makes the engine's kernels storage-oblivious — EdgeMapSparse and
// EdgeMapDense call the same Out/In iterator interface, but each call resolves
// the vertex's block and serves the adjacency from the worker's bounded block
// cache instead of an in-memory CSR row. The bimodal scheduling of M-Flash
// falls out of the engine's existing Ligra density switch:
//
//   - Dense supersteps pull over every local master in ascending gid order,
//     which under range placement is a sequential stream over the worker's
//     partition of the block file — each block is read once per superstep no
//     matter how small the cache is.
//   - Sparse supersteps push only from active sources, so before phase 1 the
//     worker computes the per-block frontier-residency bitmap (which blocks
//     contain at least one active source) and hands it to the cache as the
//     step's plan; only those blocks are read.
package core

import (
	"fmt"

	"flash/graph"
	"flash/internal/bitset"
	"flash/internal/partition"
)

// blockEdges is E served from the FLASHBLK backend. Zero-sized: all state
// lives on the worker (cache) and the engine config (block graph).
type blockEdges[V any] struct{}

// getBlock fetches a decoded block through the worker's cache; an I/O or
// corruption error panics, which parallelWorkers converts into a clean
// non-recoverable superstep failure (replaying a read against a corrupt file
// would fail identically).
//
//flash:hotpath
func getBlock[V any](c *Ctx[V], dir, idx int) *graph.DecodedBlock {
	dec, err := c.w.bcache.Get(dir, idx)
	if err != nil {
		panic(fmt.Errorf("core: out-of-core edge read: %w", err))
	}
	return dec
}

//flash:hotpath
func (blockEdges[V]) Out(c *Ctx[V], u graph.VID, yield func(graph.VID, float32) bool) {
	bg := c.w.eng.cfg.BlockGraph
	dec := getBlock(c, graph.BlockOut, bg.OutBlockOf(u))
	adj, ws := dec.Adj(u)
	for i, d := range adj {
		var w float32
		if ws != nil {
			w = ws[i]
		}
		if !yield(d, w) {
			return
		}
	}
}

//flash:hotpath
func (blockEdges[V]) In(c *Ctx[V], d graph.VID, yield func(graph.VID, float32) bool) {
	bg := c.w.eng.cfg.BlockGraph
	dec := getBlock(c, graph.BlockIn, bg.InBlockOf(d))
	adj, ws := dec.Adj(d)
	for i, s := range adj {
		var w float32
		if ws != nil {
			w = ws[i]
		}
		if !yield(s, w) {
			return
		}
	}
}

func (blockEdges[V]) SupportsIn() bool  { return true }
func (blockEdges[V]) SupportsOut() bool { return true }
func (blockEdges[V]) Physical() bool    { return true }

// OutDegreeHint reads the skeleton's resident offset array — no I/O, so the
// density rule stays as cheap as in-memory.
func (blockEdges[V]) OutDegreeHint(c *Ctx[V], u graph.VID) int {
	return c.G.OutDegree(u)
}

// E returns the engine's base edge set: the block-backed iterator when the
// engine runs out-of-core, the in-memory CSR iterator otherwise. Derived
// sets (ReverseE, JoinEU, ...) compose over either transparently.
func (e *Engine[V]) E() EdgeSet[V] {
	if e.cfg.BlockGraph != nil {
		return blockEdges[V]{}
	}
	return BaseE[V]()
}

// topo returns the adjacency source partition construction reads: the block
// graph when the engine is out-of-core, else the in-memory CSR.
func (e *Engine[V]) topo() partition.Adjacency {
	if e.cfg.BlockGraph != nil {
		return e.cfg.BlockGraph
	}
	return e.g
}

// beginDenseBlocks switches the worker's cache to dense accounting: the pull
// kernel is about to stream every block its masters' in-edges live in.
func (w *worker[V]) beginDenseBlocks() {
	if w.bcache != nil {
		w.bcache.BeginDense()
	}
}

// planSparseBlocks builds the per-block frontier-residency bitmap for a
// sparse superstep — the blocks (both directions) containing at least one
// active source — and installs it as the cache's plan. With the physical base
// edge set every push-phase read is in the plan by construction (each active
// source's out-block is marked); the cache's Unplanned counter asserts this.
// Derived and virtual edge sets may read beyond the plan (e.g. a two-hop join
// reading another source's block), which is counted, not an error.
//
//flash:hotpath
func (w *worker[V]) planSparseBlocks(membership *bitset.Bitset) {
	if w.bcache == nil {
		return
	}
	bg := w.eng.cfg.BlockGraph
	place := w.eng.place
	w.resOut.Reset()
	w.resIn.Reset()
	membership.Range(func(l int) bool {
		gid := place.GlobalID(w.id, l)
		w.resOut.Set(bg.OutBlockOf(gid))
		w.resIn.Set(bg.InBlockOf(gid))
		return true
	})
	w.bcache.BeginSparse(w.resOut, w.resIn)
}

// flushBlockStats drains the cache's counter delta into the worker's metric
// shard; parallelWorkers folds the shards into the engine collector at the
// superstep barrier, so RunResult and the bench suite see per-step-accurate
// totals.
func (w *worker[V]) flushBlockStats() {
	if w.bcache == nil {
		return
	}
	d := w.bcache.TakeDelta()
	w.met.AddBlockCache(d.Hits, d.Misses, d.Evictions, d.BytesDense, d.BytesSparse)
}
