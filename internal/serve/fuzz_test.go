package serve

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzParseJobRequest hammers the job-request parser: whatever the bytes,
// it must return either a fully-validated request or a typed error — never
// panic, never an "internal" classification. Accepted requests must survive
// a marshal→reparse round trip unchanged (the HTTP layer re-encodes job
// requests into status payloads).
func FuzzParseJobRequest(f *testing.F) {
	// The corpus under testdata/fuzz/FuzzParseJobRequest mirrors these seeds;
	// both feed the same generator.
	f.Add([]byte(`{"graph":"g","algo":"bfs","params":{"root":0}}`))
	f.Add([]byte(`{"graph":"g","algo":"quantum"}`))
	f.Add([]byte(`{"graph":"g","algo":"pagerank","params":{"eps":NaN}}`))
	f.Add([]byte(`{"graph":"g","algo":"bfs","params":{"root":18446744073709551615}}`))
	f.Add([]byte(`{"graph":"g","algo":`))
	f.Add([]byte(`{"graph":"g","algo":"sssp","params":{"root":7,"tcp":true,"workers":2}}`))
	f.Add([]byte(`{"graph":"g","algo":"cc","params":{"resize_at":2,"resize_to":5}}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := ParseJobRequest(body)
		if err != nil {
			if req != nil {
				t.Fatal("non-nil request returned alongside an error")
			}
			var re *RequestError
			var ua *UnknownAlgoError
			if !errors.As(err, &re) && !errors.As(err, &ua) {
				t.Fatalf("untyped parser error: %T %v", err, err)
			}
			if code := ErrorCode(err); code == "internal" {
				t.Fatalf("parser rejection classified internal: %v", err)
			}
			return
		}
		if req.Graph == "" || req.Algo == "" {
			t.Fatalf("accepted request with empty identity: %+v", req)
		}
		spec, ok := algoRegistry[req.Algo]
		if !ok {
			t.Fatalf("accepted unknown algo %q", req.Algo)
		}
		if req.Params.Root != nil && *req.Params.Root > maxRoot {
			t.Fatalf("accepted out-of-range root %d", *req.Params.Root)
		}
		if spec.needsRoot && req.Params.Root == nil {
			t.Fatalf("accepted %q without its required root", req.Algo)
		}
		if (req.Params.ResizeAt == nil) != (req.Params.ResizeTo == nil) {
			t.Fatal("accepted half-specified resize")
		}
		// Round trip: re-encode and re-parse; the result must be identical.
		again, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
		req2, err := ParseJobRequest(again)
		if err != nil {
			t.Fatalf("re-parse of accepted request failed: %v\nbody: %s", err, again)
		}
		b1, _ := json.Marshal(req)
		b2, _ := json.Marshal(req2)
		if string(b1) != string(b2) {
			t.Fatalf("round trip changed the request:\n%s\n%s", b1, b2)
		}
	})
}
