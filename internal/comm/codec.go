// Package comm provides the message-passing substrate the engines run on:
// binary codecs for vertex property values and round-oriented transports
// (in-memory mailboxes and loopback TCP) that model the paper's MPI runtime.
package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// Codec serializes vertex property values for the wire. Append must write a
// self-delimiting encoding; Decode must consume exactly the bytes Append
// produced and return how many it consumed.
type Codec[V any] interface {
	Append(dst []byte, v *V) []byte
	Decode(src []byte, v *V) (int, error)
}

// Marshaler may be implemented by a property type (on its pointer receiver)
// to bypass the reflection codec with a hand-written encoding.
type Marshaler interface {
	AppendBinary(dst []byte) []byte
	DecodeBinary(src []byte) (int, error)
}

// CodecFor returns the best codec for V: a wrapper around V's Marshaler
// implementation when present, otherwise the allocation-free FixedCodec for
// flat fixed-width types, otherwise a reflection-built binary codec. Fixed
// and reflect codecs share one wire format, so the choice is invisible on the
// wire.
func CodecFor[V any]() Codec[V] {
	var v V
	if _, ok := any(&v).(Marshaler); ok {
		return marshalerCodec[V]{}
	}
	if fc, ok := NewFixedCodec[V](); ok {
		return fc
	}
	return NewReflectCodec[V]()
}

type marshalerCodec[V any] struct{}

func (marshalerCodec[V]) Append(dst []byte, v *V) []byte {
	return any(v).(Marshaler).AppendBinary(dst)
}

func (marshalerCodec[V]) Decode(src []byte, v *V) (int, error) {
	return any(v).(Marshaler).DecodeBinary(src)
}

// ReflectCodec encodes flat structs (and slices/arrays of them) using
// reflection over a precomputed field plan: little-endian fixed-width
// integers and floats, 1-byte bools, uvarint-length-prefixed slices and
// strings. It supports the property types every algorithm in this repository
// uses without per-type boilerplate.
type ReflectCodec[V any] struct {
	root *fieldPlan
}

// NewReflectCodec builds the encode/decode plan for V once. It panics if V
// contains unsupported kinds (maps, funcs, channels, pointers): property
// structs must be value types, which the engine requires anyway for
// copy-on-write next-state semantics.
func NewReflectCodec[V any]() *ReflectCodec[V] {
	var v V
	t := reflect.TypeOf(v)
	if t == nil {
		panic("comm: cannot build codec for interface type")
	}
	return &ReflectCodec[V]{root: planFor(t)}
}

type fieldPlan struct {
	kind   reflect.Kind
	size   int          // for fixed-width numerics
	elem   *fieldPlan   // for slices/arrays
	fields []*fieldPlan // for structs
	typ    reflect.Type
}

func planFor(t reflect.Type) *fieldPlan {
	p := &fieldPlan{kind: t.Kind(), typ: t}
	switch t.Kind() {
	case reflect.Bool:
		p.size = 1
	case reflect.Int8, reflect.Uint8:
		p.size = 1
	case reflect.Int16, reflect.Uint16:
		p.size = 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		p.size = 4
	case reflect.Int64, reflect.Uint64, reflect.Float64, reflect.Int, reflect.Uint:
		p.size = 8
	case reflect.String:
		// length-prefixed bytes
	case reflect.Slice, reflect.Array:
		p.elem = planFor(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				panic(fmt.Sprintf("comm: unexported field %s.%s not supported", t, f.Name))
			}
			p.fields = append(p.fields, planFor(f.Type))
		}
	default:
		panic(fmt.Sprintf("comm: unsupported kind %s in property type %s", t.Kind(), t))
	}
	return p
}

func (c *ReflectCodec[V]) Append(dst []byte, v *V) []byte {
	return appendValue(dst, c.root, reflect.ValueOf(v).Elem())
}

func appendValue(dst []byte, p *fieldPlan, v reflect.Value) []byte {
	switch p.kind {
	case reflect.Bool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		return append(dst, b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return appendUint(dst, uint64(v.Int()), p.size)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return appendUint(dst, v.Uint(), p.size)
	case reflect.Float32:
		return appendUint(dst, uint64(math.Float32bits(float32(v.Float()))), 4)
	case reflect.Float64:
		return appendUint(dst, math.Float64bits(v.Float()), 8)
	case reflect.String:
		s := v.String()
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	case reflect.Slice:
		n := v.Len()
		dst = binary.AppendUvarint(dst, uint64(n))
		for i := 0; i < n; i++ {
			dst = appendValue(dst, p.elem, v.Index(i))
		}
		return dst
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			dst = appendValue(dst, p.elem, v.Index(i))
		}
		return dst
	case reflect.Struct:
		for i, fp := range p.fields {
			dst = appendValue(dst, fp, v.Field(i))
		}
		return dst
	}
	panic("comm: unreachable kind " + p.kind.String())
}

func appendUint(dst []byte, u uint64, size int) []byte {
	switch size {
	case 1:
		return append(dst, byte(u))
	case 2:
		return binary.LittleEndian.AppendUint16(dst, uint16(u))
	case 4:
		return binary.LittleEndian.AppendUint32(dst, uint32(u))
	default:
		return binary.LittleEndian.AppendUint64(dst, u)
	}
}

func (c *ReflectCodec[V]) Decode(src []byte, v *V) (int, error) {
	return decodeValue(src, c.root, reflect.ValueOf(v).Elem())
}

var errShort = fmt.Errorf("comm: short buffer")

func decodeValue(src []byte, p *fieldPlan, v reflect.Value) (int, error) {
	switch p.kind {
	case reflect.Bool:
		if len(src) < 1 {
			return 0, errShort
		}
		v.SetBool(src[0] != 0)
		return 1, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		u, err := readUint(src, p.size)
		if err != nil {
			return 0, err
		}
		// Sign-extend from the encoded width.
		shift := uint(64 - 8*p.size)
		v.SetInt(int64(u<<shift) >> shift)
		return p.size, nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u, err := readUint(src, p.size)
		if err != nil {
			return 0, err
		}
		v.SetUint(u)
		return p.size, nil
	case reflect.Float32:
		u, err := readUint(src, 4)
		if err != nil {
			return 0, err
		}
		v.SetFloat(float64(math.Float32frombits(uint32(u))))
		return 4, nil
	case reflect.Float64:
		u, err := readUint(src, 8)
		if err != nil {
			return 0, err
		}
		v.SetFloat(math.Float64frombits(u))
		return 8, nil
	case reflect.String:
		n, k := binary.Uvarint(src)
		if k <= 0 || uint64(len(src)-k) < n {
			return 0, errShort
		}
		v.SetString(string(src[k : k+int(n)]))
		return k + int(n), nil
	case reflect.Slice:
		n, k := binary.Uvarint(src)
		if k <= 0 {
			return 0, errShort
		}
		// Every element occupies at least one byte, so a length prefix
		// larger than the remaining buffer is corrupt — reject it before
		// allocating (a hostile prefix must not drive MakeSlice to OOM).
		if n > uint64(len(src)-k) {
			return 0, errShort
		}
		if n == 0 {
			v.Set(reflect.Zero(p.typ)) // empty decodes as nil: simpler equality
			return k, nil
		}
		off := k
		s := reflect.MakeSlice(p.typ, int(n), int(n))
		for i := 0; i < int(n); i++ {
			c, err := decodeValue(src[off:], p.elem, s.Index(i))
			if err != nil {
				return 0, err
			}
			off += c
		}
		v.Set(s)
		return off, nil
	case reflect.Array:
		off := 0
		for i := 0; i < v.Len(); i++ {
			c, err := decodeValue(src[off:], p.elem, v.Index(i))
			if err != nil {
				return 0, err
			}
			off += c
		}
		return off, nil
	case reflect.Struct:
		off := 0
		for i, fp := range p.fields {
			c, err := decodeValue(src[off:], fp, v.Field(i))
			if err != nil {
				return 0, err
			}
			off += c
		}
		return off, nil
	}
	panic("comm: unreachable kind " + p.kind.String())
}

func readUint(src []byte, size int) (uint64, error) {
	if len(src) < size {
		return 0, errShort
	}
	switch size {
	case 1:
		return uint64(src[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(src)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(src)), nil
	default:
		return binary.LittleEndian.Uint64(src), nil
	}
}
