package algo

import (
	"flash"
	"flash/graph"
)

type bcProps struct {
	Level int32
	Num   float64 // σ: number of shortest paths from the root
	B     float64 // δ: dependency score
}

// BC computes betweenness-centrality dependency scores from a single root
// using Brandes' algorithm (paper Algorithm 3): a forward BFS phase counts
// shortest paths level by level while recording every frontier, then a
// backward phase over reverse(E) accumulates dependencies from the deepest
// level up. The per-level frontiers are exactly what a vertexSubset makes
// expressible; the recursion mirrors the paper's BC(S, curLevel).
func BC(g *graph.Graph, root graph.VID, opts ...flash.Option) ([]float64, error) {
	e, err := newEngine[bcProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	e.VertexMap(e.All(), nil, func(v flash.Vertex[bcProps]) bcProps {
		if v.ID == root {
			return bcProps{Level: 0, Num: 1}
		}
		return bcProps{Level: -1}
	})
	u := e.VertexMap(e.All(), func(v flash.Vertex[bcProps]) bool { return v.ID == root }, nil)

	var bc func(s *flash.VertexSubset, curLevel int32)
	bc = func(s *flash.VertexSubset, curLevel int32) {
		if s.Size() == 0 {
			return
		}
		// Forward: accumulate path counts into the next level. Num starts 0
		// on unvisited vertices, so the sum reduce is exact.
		a := e.EdgeMap(s, e.E(),
			nil,
			func(src, d flash.Vertex[bcProps]) bcProps {
				nv := *d.Val
				nv.Num += src.Val.Num
				return nv
			},
			func(d flash.Vertex[bcProps]) bool { return d.Val.Level == -1 },
			func(t, cur bcProps) bcProps {
				cur.Num += t.Num
				return cur
			})
		a = e.VertexMap(a, nil, func(v flash.Vertex[bcProps]) bcProps {
			nv := *v.Val
			nv.Level = curLevel
			return nv
		})
		bc(a, curLevel+1)
		// Backward: children (level ℓ) push dependencies to parents (ℓ-1)
		// over reversed edges. B starts 0 on the parents' level.
		e.EdgeMap(s, flash.Reverse(e.E()),
			func(src, d flash.Vertex[bcProps]) bool { return d.Val.Level == src.Val.Level-1 },
			func(src, d flash.Vertex[bcProps]) bcProps {
				nv := *d.Val
				nv.B += nv.Num / src.Val.Num * (1 + src.Val.B)
				return nv
			},
			nil,
			func(t, cur bcProps) bcProps {
				cur.B += t.B
				return cur
			})
	}
	bc(u, 1)

	out := make([]float64, g.NumVertices())
	e.Gather(func(v graph.VID, val *bcProps) { out[v] = val.B })
	return out, nil
}
