package algo

import (
	"testing"

	"flash"
	"flash/graph"
)

// TestGoldenMirrorCoherence re-runs BFS and CC driver programs over the
// golden matrix (graphs x workers {1,2,4} x mem/tcp transports) and asserts
// the §IV-A master–mirror consistency invariant after every superstep. This
// pins the compact slot layout: masters and mirrors live at different slots
// now, and any slot-translation bug in sync or gather shows up here as a
// divergent mirror rather than a silently wrong distance.
func TestGoldenMirrorCoherence(t *testing.T) {
	eq := func(a, b bfsProps) bool { return a == b }
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		e, err := newEngine[bfsProps](g, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		check := func(step string) {
			t.Helper()
			if err := e.CheckMirrorCoherence(eq); err != nil {
				t.Fatalf("after %s: %v", step, err)
			}
		}
		e.VertexMap(e.All(), nil, func(v flash.Vertex[bfsProps]) bfsProps {
			if v.ID == 0 {
				return bfsProps{Dis: 0}
			}
			return bfsProps{Dis: inf32}
		})
		check("init")
		u := e.VertexMap(e.All(), func(v flash.Vertex[bfsProps]) bool { return v.ID == 0 }, nil)
		for step := 0; u.Size() != 0; step++ {
			u = e.EdgeMap(u, e.E(),
				nil,
				func(s, d flash.Vertex[bfsProps]) bfsProps { return bfsProps{Dis: s.Val.Dis + 1} },
				func(d flash.Vertex[bfsProps]) bool { return d.Val.Dis == inf32 },
				func(t, cur bfsProps) bfsProps { return t })
			check("edgemap")
		}
	})
}

func TestGoldenMirrorCoherenceCC(t *testing.T) {
	eq := func(a, b ccProps) bool { return a == b }
	forGolden(t, goldenGraphs(), func(t *testing.T, g *graph.Graph, opts []flash.Option) {
		e, err := newEngine[ccProps](g, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		u := e.VertexMap(e.All(), nil, func(v flash.Vertex[ccProps]) ccProps {
			return ccProps{CC: uint32(v.ID)}
		})
		for u.Size() != 0 {
			u = e.EdgeMap(u, e.E(),
				func(s, d flash.Vertex[ccProps]) bool { return s.Val.CC < d.Val.CC },
				func(s, d flash.Vertex[ccProps]) ccProps {
					if s.Val.CC < d.Val.CC {
						return ccProps{CC: s.Val.CC}
					}
					return *d.Val
				},
				nil,
				func(tv, cur ccProps) ccProps {
					if tv.CC < cur.CC {
						return tv
					}
					return cur
				})
			if err := e.CheckMirrorCoherence(eq); err != nil {
				t.Fatalf("after edgemap: %v", err)
			}
		}
	})
}
