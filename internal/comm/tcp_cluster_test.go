package comm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// mkCluster builds m cluster endpoints on loopback and completes the mesh.
func mkCluster(t *testing.T, m int, epoch uint32) []*TCP {
	t.Helper()
	eps := make([]*TCP, m)
	addrs := make([]string, m)
	for i := 0; i < m; i++ {
		ep, err := ListenTCPCluster(ClusterConfig{Workers: m, Self: i, Listen: "127.0.0.1:0", Epoch: epoch})
		if err != nil {
			t.Fatalf("listen endpoint %d: %v", i, err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
		t.Cleanup(func() { ep.Close() })
	}
	var wg sync.WaitGroup
	errs := make(chan error, m)
	for i := 0; i < m; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := eps[i].ConnectPeers(addrs, 10*time.Second); err != nil {
				errs <- fmt.Errorf("endpoint %d: %w", i, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return eps
}

// clusterRounds drives each endpoint through `rounds` full send/drain rounds
// from its resident worker, verifying every peer's frame arrives.
func clusterRounds(t *testing.T, eps []*TCP, rounds int) {
	t.Helper()
	clusterRoundsChecked(t, eps, rounds, true)
}

// clusterRoundsChecked is clusterRounds with optional delivery verification.
// check=false is the healing mode right after a partition: frames buffered
// into a severed socket are lost by design (the engine's checkpoint layer
// owns exactly-once), so only transport errors are fatal and the round
// merely re-synchronizes the mesh.
func clusterRoundsChecked(t *testing.T, eps []*TCP, rounds int, check bool) {
	t.Helper()
	m := len(eps)
	var wg sync.WaitGroup
	errs := make(chan error, m)
	for _, ep := range eps {
		ep := ep
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := ep.Self()
			for r := 0; r < rounds; r++ {
				for to := 0; to < m; to++ {
					if err := ep.Send(w, to, []byte(fmt.Sprintf("r%d:w%d", r, w))); err != nil {
						errs <- fmt.Errorf("worker %d send: %w", w, err)
						return
					}
				}
				if err := ep.EndRound(w); err != nil {
					errs <- fmt.Errorf("worker %d endround: %w", w, err)
					return
				}
				got := map[string]int{}
				if err := ep.Drain(w, func(from int, data []byte) {
					got[string(data)]++
				}); err != nil {
					errs <- fmt.Errorf("worker %d drain: %w", w, err)
					return
				}
				if !check {
					continue
				}
				for from := 0; from < m; from++ {
					key := fmt.Sprintf("r%d:w%d", r, from)
					if got[key] != 1 {
						errs <- fmt.Errorf("worker %d round %d: frame %q count %d (have %v)", w, r, key, got[key], got)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestClusterMeshRounds verifies three cross-endpoint transports form a mesh
// and complete bulk-synchronous rounds with per-peer delivery.
func TestClusterMeshRounds(t *testing.T) {
	eps := mkCluster(t, 3, 7)
	for _, ep := range eps {
		ep.SetDrainTimeout(10 * time.Second)
	}
	clusterRounds(t, eps, 3)
}

// TestClusterStaleEpochRejected verifies a peer handshaking with an old
// membership epoch is rejected with a typed HandshakeError and cannot join
// the mesh, while a fresh-epoch connection on the same listener succeeds.
func TestClusterStaleEpochRejected(t *testing.T) {
	ep, err := ListenTCPCluster(ClusterConfig{Workers: 2, Self: 0, Listen: "127.0.0.1:0", Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	stale, err := net.Dial("tcp", ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	if _, err := stale.Write(EncodeHello(1, 2)); err != nil { // epoch 2 < 3
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	var diag error
	select {
	case diag = <-ep.Err():
	case <-deadline:
		t.Fatal("no rejection diagnostic for stale epoch")
	}
	var he *HandshakeError
	if !errors.As(diag, &he) {
		t.Fatalf("diagnostic %v, want HandshakeError", diag)
	}
	if he.Worker != 1 || he.Epoch != 2 {
		t.Fatalf("HandshakeError{Worker:%d, Epoch:%d}, want {1, 2}", he.Worker, he.Epoch)
	}

	// A garbage hello is also rejected without panicking the accept loop.
	junk, err := net.Dial("tcp", ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer junk.Close()
	if _, err := junk.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	select {
	case diag = <-ep.Err():
	case <-time.After(5 * time.Second):
		t.Fatal("no rejection diagnostic for garbage hello")
	}
	if !errors.As(diag, &he) {
		t.Fatalf("diagnostic %v, want HandshakeError", diag)
	}

	// The genuine peer still joins.
	peer, err := ListenTCPCluster(ClusterConfig{Workers: 2, Self: 1, Listen: "127.0.0.1:0", Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	addrs := []string{ep.Addr(), peer.Addr()}
	done := make(chan error, 2)
	go func() { done <- ep.ConnectPeers(addrs, 10*time.Second) }()
	go func() { done <- peer.ConnectPeers(addrs, 10*time.Second) }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("ConnectPeers: %v", err)
		}
	}
	clusterRounds(t, []*TCP{ep, peer}, 1)
}

// waitConn polls a pair socket until its liveness matches want (the accept
// and read loops install/drop sockets asynchronously).
func waitConn(t *testing.T, tc *tcpConn, want bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tc.mu.Lock()
		live := tc.c != nil
		tc.mu.Unlock()
		if live == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pair socket live=%v, want %v", live, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterDropPeersHeals partitions one endpoint mid-run (every peer
// socket severed) and verifies the next round completes through the redial
// path. The heal order is pinned — the partitioned side redials first, the
// remote side waits for the accept-side reinstall — because concurrent
// redials from both ends can cross and need a second heal cycle, which the
// engine rides out with its drain timeout but would flake a bounded test.
func TestClusterDropPeersHeals(t *testing.T) {
	eps := mkCluster(t, 2, 1)
	for _, ep := range eps {
		ep.SetDrainTimeout(10 * time.Second)
	}
	clusterRounds(t, eps, 1)
	eps[1].DropPeers()
	// The victim's socket close reaches endpoint 0's read loop as an EOF,
	// which drops the paired write side so it cannot silently write into a
	// FIN'd socket.
	waitConn(t, eps[0].conns[0][1], false)
	// Worker 1's sends discover the cut and redial through the retry path.
	if err := eps[1].Send(1, 0, []byte("h:w1")); err != nil {
		t.Fatalf("victim send after partition: %v", err)
	}
	if err := eps[1].EndRound(1); err != nil {
		t.Fatalf("victim endround after partition: %v", err)
	}
	// Endpoint 0's accept loop installs the healed socket; only then does
	// worker 0 write, so its frames ride the fresh connection.
	waitConn(t, eps[0].conns[0][1], true)
	if err := eps[0].Send(0, 1, []byte("h:w0")); err != nil {
		t.Fatalf("remote send after heal: %v", err)
	}
	if err := eps[0].EndRound(0); err != nil {
		t.Fatalf("remote endround after heal: %v", err)
	}
	for i, ep := range eps {
		want := fmt.Sprintf("h:w%d", 1-i)
		seen := false
		if err := ep.Drain(i, func(from int, data []byte) {
			if string(data) == want {
				seen = true
			}
		}); err != nil {
			t.Fatalf("worker %d drain after heal: %v", i, err)
		}
		if !seen {
			t.Fatalf("worker %d: frame %q not delivered after heal", i, want)
		}
	}
	clusterRounds(t, eps, 1) // fully clean concurrent round again
	if rc := eps[0].Stats().Reconnects + eps[1].Stats().Reconnects; rc < 1 {
		t.Fatalf("reconnects=%d, want >=1 after partition", rc)
	}
}

// TestClusterDialInjection verifies the per-endpoint dialer hook: with dials
// failing, ConnectPeers reports the failure instead of hanging.
func TestClusterDialInjection(t *testing.T) {
	lower, err := ListenTCPCluster(ClusterConfig{Workers: 2, Self: 0, Listen: "127.0.0.1:0", Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lower.Close()
	upper, err := ListenTCPCluster(ClusterConfig{Workers: 2, Self: 1, Listen: "127.0.0.1:0", Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer upper.Close()
	upper.SetDial(func(network, addr string) (net.Conn, error) {
		return nil, fmt.Errorf("injected dial failure")
	})
	err = upper.ConnectPeers([]string{lower.Addr(), upper.Addr()}, 300*time.Millisecond)
	if err == nil {
		t.Fatal("ConnectPeers succeeded despite failing dialer")
	}
}
