package flash_test

import (
	"fmt"

	"flash"
	"flash/graph"
)

// Example shows the paper's BFS (Algorithm 2) end to end.
func Example() {
	type props struct{ Dis int32 }
	const inf = int32(1 << 30)

	g := graph.GenPath(5) // 0-1-2-3-4
	e, err := flash.NewEngine[props](g, flash.WithWorkers(2))
	if err != nil {
		panic(err)
	}
	defer e.Close()

	e.VertexMap(e.All(), nil, func(v flash.Vertex[props]) props {
		if v.ID == 0 {
			return props{0}
		}
		return props{inf}
	})
	u := e.VertexMap(e.All(), func(v flash.Vertex[props]) bool { return v.ID == 0 }, nil)
	for u.Size() != 0 {
		u = e.EdgeMap(u, e.E(),
			nil,
			func(s, d flash.Vertex[props]) props { return props{s.Val.Dis + 1} },
			func(d flash.Vertex[props]) bool { return d.Val.Dis == inf },
			func(t, cur props) props { return t })
	}
	e.Gather(func(v flash.VID, val *props) { fmt.Printf("dist(%d)=%d\n", v, val.Dis) })
	// Output:
	// dist(0)=0
	// dist(1)=1
	// dist(2)=2
	// dist(3)=3
	// dist(4)=4
}

// ExampleEngine_VertexMap demonstrates filter semantics (nil map function).
func ExampleEngine_VertexMap() {
	type props struct{ X int32 }
	g := graph.GenCycle(6)
	e, _ := flash.NewEngine[props](g, flash.WithWorkers(2))
	defer e.Close()

	evens := e.VertexMap(e.All(), func(v flash.Vertex[props]) bool { return v.ID%2 == 0 }, nil)
	fmt.Println(evens.Size(), e.IDs(evens))
	// Output: 3 [0 2 4]
}

// ExampleOutEdges shows a virtual edge set: every vertex messages the vertex
// stored in its property — communication beyond the neighborhood.
func ExampleOutEdges() {
	type props struct {
		Target uint32
		Hits   int32
	}
	g := graph.GenPath(4)
	e, _ := flash.NewEngine[props](g, flash.WithWorkers(2), flash.WithFullMirrors())
	defer e.Close()

	// Everyone targets vertex 3, which no one is adjacent to except 2.
	e.VertexMap(e.All(), nil, func(v flash.Vertex[props]) props { return props{Target: 3} })
	virtual := flash.OutEdges(func(c *flash.Ctx[props], u flash.VID) []flash.VID {
		return []flash.VID{flash.VID(c.Get(u).Target)}
	})
	e.EdgeMapSparse(e.All(), virtual,
		func(s, d flash.Vertex[props]) bool { return s.ID != d.ID },
		func(s, d flash.Vertex[props]) props {
			nv := *d.Val
			nv.Hits++
			return nv
		},
		nil,
		func(t, cur props) props {
			cur.Hits += t.Hits
			return cur
		})
	fmt.Println(e.Get(3).Hits)
	// Output: 3
}

// ExampleDSU shows the paper's pre-defined disjoint-set helper.
func ExampleDSU() {
	d := flash.NewDSU(5)
	d.Union(0, 1)
	d.Union(3, 4)
	fmt.Println(d.Same(0, 1), d.Same(1, 3), d.Sets())
	// Output: true false 3
}
