package graph

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasicUndirected(t *testing.T) {
	g := FromEdges(4, false, [][2]VID{{0, 1}, {1, 2}, {2, 3}, {0, 1}}) // dup dropped
	if g.NumVertices() != 4 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 6 { // 3 undirected edges stored twice
		t.Fatalf("m = %d, want 6", g.NumEdges())
	}
	if d := g.OutDegree(1); d != 2 {
		t.Fatalf("deg(1) = %d", d)
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Fatal("undirected edge missing a direction")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("phantom edge")
	}
}

func TestBuilderDirected(t *testing.T) {
	g := FromEdges(3, true, [][2]VID{{0, 1}, {1, 2}})
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if g.HasEdge(1, 0) {
		t.Fatal("reverse edge present in directed graph")
	}
	if g.InDegree(2) != 1 || g.OutDegree(2) != 0 {
		t.Fatal("in/out degree wrong")
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	g := FromEdges(2, false, [][2]VID{{0, 0}, {0, 1}})
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 (self loop dropped)", g.NumEdges())
	}
	kept := NewBuilder(2).KeepSelfLoops(true).AddEdge(0, 0).Build()
	if kept.NumEdges() != 1 {
		t.Fatalf("self loop not kept: m=%d", kept.NumEdges())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := FromEdges(6, true, [][2]VID{{0, 5}, {0, 2}, {0, 4}, {0, 1}})
	adj := g.OutNeighbors(0)
	if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		t.Fatalf("out-neighbors not sorted: %v", adj)
	}
}

func TestWeights(t *testing.T) {
	g := NewBuilder(3).Weighted(true).AddEdgeW(0, 1, 2.5).AddEdgeW(1, 2, 0.5).Build()
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	ws := g.OutWeights(0)
	if len(ws) != 2 { // undirected: 0->1 and (mirror of nothing) -- 0 has nbrs {1}
		// out-neighbors of 0: only vertex 1
		t.Logf("neighbors(0)=%v", g.OutNeighbors(0))
	}
	found := false
	g.Edges(func(u, v VID, w float32) bool {
		if u == 0 && v == 1 && w == 2.5 {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("weight 2.5 not found on edge (0,1)")
	}
}

func TestDedupKeepsSmallestWeight(t *testing.T) {
	g := NewBuilder(2).Directed(true).Weighted(true).
		AddEdgeW(0, 1, 5).AddEdgeW(0, 1, 2).Build()
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d", g.NumEdges())
	}
	if w := g.OutWeights(0)[0]; w != 2 {
		t.Fatalf("kept weight %g, want 2", w)
	}
}

func TestReverse(t *testing.T) {
	g := FromEdges(3, true, [][2]VID{{0, 1}, {1, 2}})
	r := Reverse(g)
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Fatal("reverse edges wrong")
	}
	u := FromEdges(3, false, [][2]VID{{0, 1}})
	ru := Reverse(u)
	if ru.NumEdges() != u.NumEdges() {
		t.Fatal("undirected reverse changed edge count")
	}
}

func TestInOutConsistency(t *testing.T) {
	g := GenErdosRenyi(200, 800, 1)
	totalIn, totalOut := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		totalIn += g.InDegree(VID(v))
		totalOut += g.OutDegree(VID(v))
	}
	if totalIn != g.NumEdges() || totalOut != g.NumEdges() {
		t.Fatalf("degree sums in=%d out=%d m=%d", totalIn, totalOut, g.NumEdges())
	}
	// every out edge must appear as an in edge
	g.Edges(func(u, v VID, _ float32) bool {
		for _, s := range g.InNeighbors(v) {
			if s == u {
				return true
			}
		}
		t.Fatalf("edge %d->%d missing from in-adjacency of %d", u, v, v)
		return false
	})
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := GenErdosRenyi(50, 120, 7)
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(strings.NewReader(sb.String()), LoadOptions{Directed: false, Name: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip m: %d != %d", g2.NumEdges(), g.NumEdges())
	}
	g.Edges(func(u, v VID, _ float32) bool {
		if !g2.HasEdge(u, v) {
			t.Fatalf("edge %d->%d lost in round trip", u, v)
		}
		return true
	})
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"short line":  "1\n",
		"bad src":     "x 1\n",
		"bad dst":     "1 y\n",
		"bad weight":  "1 2 zz\n",
		"neg src":     "-1 2\n",
		"overflow id": "99999999999 2\n",
	}
	for name, in := range cases {
		opt := LoadOptions{Weighted: strings.Contains(in, "zz")}
		if _, err := LoadEdgeList(strings.NewReader(in), opt); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Comments and blanks are fine.
	g, err := LoadEdgeList(strings.NewReader("# c\n% c\n\n0 1\n"), LoadOptions{})
	if err != nil || g.NumVertices() != 2 {
		t.Fatalf("comment handling: g=%v err=%v", g, err)
	}
}

func TestGenerators(t *testing.T) {
	t.Run("rmat-skew", func(t *testing.T) {
		g := GenRMAT(1024, 8192, 42)
		_, maxd := g.MaxOutDegree()
		avg := float64(g.NumEdges()) / float64(g.NumVertices())
		if float64(maxd) < 4*avg {
			t.Errorf("RMAT not skewed: max=%d avg=%.1f", maxd, avg)
		}
	})
	t.Run("grid-shape", func(t *testing.T) {
		g := GenGrid(10, 20, 0, 1)
		if g.NumVertices() != 200 {
			t.Fatalf("n=%d", g.NumVertices())
		}
		// interior degree 4, corner degree 2
		if d := g.OutDegree(0); d != 2 {
			t.Errorf("corner degree %d", d)
		}
		if d := g.OutDegree(VID(1*20 + 1)); d != 4 {
			t.Errorf("interior degree %d", d)
		}
	})
	t.Run("web-connected", func(t *testing.T) {
		g := GenWeb(500, 10, 8, 3)
		if cc := countComponents(g); cc != 1 {
			t.Errorf("web graph has %d components, want 1", cc)
		}
	})
	t.Run("rmat-connected", func(t *testing.T) {
		g := GenRMAT(300, 900, 5)
		if cc := countComponents(g); cc != 1 {
			t.Errorf("rmat graph has %d components, want 1", cc)
		}
	})
	t.Run("deterministic", func(t *testing.T) {
		a, b := GenRMAT(256, 1024, 9), GenRMAT(256, 1024, 9)
		if a.NumEdges() != b.NumEdges() {
			t.Fatal("same seed produced different graphs")
		}
	})
	t.Run("tree", func(t *testing.T) {
		g := GenTree(100, 2)
		if g.NumEdges() != 198 {
			t.Errorf("tree m=%d want 198", g.NumEdges())
		}
		if countComponents(g) != 1 {
			t.Error("tree disconnected")
		}
	})
	t.Run("complete", func(t *testing.T) {
		g := GenComplete(6)
		if g.NumEdges() != 30 {
			t.Errorf("K6 m=%d want 30", g.NumEdges())
		}
	})
}

// countComponents does a simple sequential union-find over stored edges.
func countComponents(g *Graph) int {
	parent := make([]int, g.NumVertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	g.Edges(func(u, v VID, _ float32) bool {
		ru, rv := find(int(u)), find(int(v))
		if ru != rv {
			parent[ru] = rv
		}
		return true
	})
	comps := map[int]bool{}
	for i := range parent {
		comps[find(i)] = true
	}
	return len(comps)
}

func TestWithRandomWeights(t *testing.T) {
	g := GenErdosRenyi(40, 100, 11)
	wg := WithRandomWeights(g, 1)
	if !wg.Weighted() {
		t.Fatal("not weighted")
	}
	if wg.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d != %d", wg.NumEdges(), g.NumEdges())
	}
	// symmetric weights
	wg.Edges(func(u, v VID, w float32) bool {
		adj, ws := wg.OutNeighbors(v), wg.OutWeights(v)
		for i, x := range adj {
			if x == u && ws[i] != w {
				t.Fatalf("asymmetric weight on (%d,%d): %g vs %g", u, v, w, ws[i])
			}
		}
		if w <= 0 || w > 1.001 {
			t.Fatalf("weight out of range: %g", w)
		}
		return true
	})
}

// Property: builder output is independent of edge insertion order.
func TestQuickBuildOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		var edges [][2]VID
		for i := 0; i < 60; i++ {
			edges = append(edges, [2]VID{VID(rng.Intn(n)), VID(rng.Intn(n))})
		}
		g1 := FromEdges(n, true, edges)
		shuf := append([][2]VID(nil), edges...)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		g2 := FromEdges(n, true, shuf)
		if g1.NumEdges() != g2.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a, b := g1.OutNeighbors(VID(v)), g2.OutNeighbors(VID(v))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of out-degrees equals NumEdges for arbitrary generated graphs.
func TestQuickDegreeSum(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		n := int(nn)%100 + 2
		m := int(mm) * 4
		g := GenErdosRenyi(n, m, seed)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.OutDegree(VID(v))
		}
		return sum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndString(t *testing.T) {
	g := GenStar(10)
	s := g.ComputeStats()
	if s.MaxDegree != 9 || s.Isolated != 0 {
		t.Fatalf("stats %+v", s)
	}
	iso := NewBuilder(3).AddEdge(0, 1).Build()
	if iso.ComputeStats().Isolated != 1 {
		t.Fatal("isolated count wrong")
	}
	if !strings.Contains(g.String(), "|V|=10") {
		t.Fatalf("String() = %q", g.String())
	}
}

func TestLoadEdgeListMaxVertices(t *testing.T) {
	if _, err := LoadEdgeList(strings.NewReader("0 999999\n"), LoadOptions{MaxVertices: 100}); err == nil {
		t.Fatal("oversized id accepted")
	}
	g, err := LoadEdgeList(strings.NewReader("0 99\n"), LoadOptions{MaxVertices: 100})
	if err != nil || g.NumVertices() != 100 {
		t.Fatalf("g=%v err=%v", g, err)
	}
}
