package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CommErr enforces the PR-1 error-propagation contract: every error returned
// by the fault-surface methods — Transport.Send / EndRound / Drain (on the
// interface or any concrete transport) and Engine.Run — must be checked.
//
// A call whose result is dropped (expression statement) or assigned only to
// blank identifiers is flagged unless the line (or the line above) carries
// an explicit //flash:ignore-err <reason> marker. PR 1 made every one of
// these paths return an error precisely because a swallowed transport
// failure turns into a hung barrier or silently wrong results; the marker
// forces the "this cannot fail here" argument into the source.
//
// _test.go files are exempt: the invariant is about runtime error loss, and
// tests routinely drive the fault surface while asserting through other
// channels. The remaining analyzers do check test files in the self-check.
var CommErr = &Analyzer{
	Name: "commerr",
	Doc:  "transport Send/EndRound/Drain/Resize/ConnectPeers, Engine.Run/Resize, Coordinator.Run/Interrupt, serve Submit/Load/Add/Evict, and block I/O (ReadBlock/WriteBlockFile) errors must be checked or //flash:ignore-err annotated",
	Run:  runCommErr,
}

// commErrReceivers are the named types whose fault-surface methods are
// guarded. Matching is by type name so analysistest fixtures can declare
// local stubs; the shipped runtime's transports and engines all use these
// names.
var commErrReceivers = map[string]bool{
	"Transport":       true, // comm.Transport interface
	"Mem":             true, // comm.Mem
	"TCP":             true, // comm.TCP
	"Faulty":          true, // comm.Faulty chaos wrapper
	"Engine":          true, // core.Engine / flash.Engine
	"CheckpointStore": true, // core.CheckpointStore interface
	"MemStore":        true, // core.MemStore
	"FileStore":       true, // core.FileStore
	"Resizer":         true, // comm.Resizer interface (membership changes)
	"Catalog":         true, // serve.Catalog (graph load/evict surface)
	"Server":          true, // serve.Server (job admission surface)
	"Scheduler":       true, // serve.Scheduler (job admission surface)
	"BlockGraph":      true, // graph.BlockGraph (out-of-core read surface)
	"Coordinator":     true, // cluster.Coordinator (multi-process job surface)
}

var commErrMethods = map[string]bool{
	"Send":      true,
	"EndRound":  true,
	"Drain":     true,
	"Run":       true,
	"Save":      true, // a dropped Save error silently loses checkpoint durability
	"Load":      true, // a dropped Load error restores from a phantom image
	"Resize":    true, // a dropped Resize error leaves membership half-changed
	"Submit":    true, // a dropped Submit error loses a typed admission rejection
	"Evict":     true, // a dropped Evict error hides a stale catalog entry
	"Add":       true, // a dropped Add error serves jobs from a graph that was never registered
	"ReadBlock": true, // a dropped ReadBlock error computes over a phantom (zero) block
	// Cluster mode (multi-process fleets): a dropped ConnectPeers error runs
	// a job over a half-connected mesh that deadlocks at the first barrier;
	// a dropped Coordinator.Run error loses the worker verdict (which worker
	// died, why, and whether the restart budget ran out) along with the job
	// result; a dropped Interrupt error leaves a worker the test believed it
	// had drained still computing.
	"ConnectPeers": true,
	"Interrupt":    true,
}

// commErrPkgFuncs are package-level fault-surface functions, matched by
// package name and function name (graph.WriteBlockFile writes the on-disk
// image the whole out-of-core path trusts).
var commErrPkgFuncs = map[[2]string]bool{
	{"graph", "WriteBlockFile"}: true,
}

func runCommErr(pass *Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkCommCall(pass, call, "discarded")
				}
			case *ast.AssignStmt:
				if !allBlank(n.Lhs) {
					return true
				}
				for _, rhs := range n.Rhs {
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
						checkCommCall(pass, call, "assigned to _")
					}
				}
			case *ast.GoStmt:
				checkCommCall(pass, n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				checkCommCall(pass, n.Call, "discarded by defer")
			}
			return true
		})
	}
	return nil
}

func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

func checkCommCall(pass *Pass, call *ast.CallExpr, how string) {
	typeName, methodName := receiverTypeName(pass.Info, call)
	if typeName == "" {
		typeName, methodName = pkgFuncName(pass.Info, call)
		if !commErrPkgFuncs[[2]string{typeName, methodName}] {
			return
		}
	} else if !commErrReceivers[typeName] || !commErrMethods[methodName] {
		return
	}
	// Only error-returning fault-surface methods count (a fixture stub whose
	// Send returns nothing is not a transport).
	if !lastResultIsError(pass, call) {
		return
	}
	if hasIgnoreErr(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s.%s error %s: check it or annotate with //flash:ignore-err <reason>",
		typeName, methodName, how)
}

// pkgFuncName resolves a pkg.F call to its (package name, function name)
// pair, or ("", "") for anything else.
func pkgFuncName(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pkg.Imported().Name(), sel.Sel.Name
}

func lastResultIsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if isErrorType(tv.Type) {
		return true
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok && tuple.Len() > 0 {
		return isErrorType(tuple.At(tuple.Len() - 1).Type())
	}
	return false
}

func hasIgnoreErr(pass *Pass, call *ast.CallExpr) bool {
	pos := pass.Fset.Position(call.Pos())
	for _, m := range pass.markersAt(pos.Filename, pos.Line) {
		if len(m) > len("ignore-err ") && m[:len("ignore-err ")] == "ignore-err " {
			return true // marker with a non-empty reason
		}
	}
	return false
}
