package graph

import "math/rand"

// The generators below are deterministic for a given seed and stand in for
// the paper's real-world datasets (see DESIGN.md §1). Three structural
// regimes matter for the evaluation:
//
//   - social networks: heavy degree skew, tiny diameter (GenRMAT)
//   - road networks:   near-constant low degree, huge diameter (GenGrid)
//   - web graphs:      hubs + communities, mid diameter (GenWeb)

// GenRMAT generates a skewed "social network"-like undirected graph with n
// vertices (rounded up to a power of two internally, then trimmed) and
// approximately m undirected edges using the recursive-matrix model with the
// classic (0.57, 0.19, 0.19, 0.05) partition.
func GenRMAT(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	levels := 0
	for 1<<levels < n {
		levels++
	}
	size := 1 << levels
	b := NewBuilder(n).Name("rmat")
	const a, bb, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for l, step := 0, size/2; l < levels; l, step = l+1, step/2 {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant: no change
			case r < a+bb:
				v += step
			case r < a+bb+c:
				u += step
			default:
				u += step
				v += step
			}
		}
		u %= n
		v %= n
		if u == v {
			continue
		}
		b.AddEdge(VID(u), VID(v))
	}
	// Chain a random permutation so the graph has a single giant component,
	// as real social graphs do; CC/BFS then touch every vertex.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(VID(perm[i-1]), VID(perm[i]))
	}
	return b.Build()
}

// GenGrid generates a rows x cols 2D grid (road-network analog): undirected,
// degree <= 4, diameter rows+cols-2. A small fraction of random "highway"
// chords can be added with chords > 0.
func GenGrid(rows, cols, chords int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	b := NewBuilder(n).Name("grid")
	id := func(r, c int) VID { return VID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	for i := 0; i < chords; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(VID(u), VID(v))
		}
	}
	return b.Build()
}

// GenWeb generates a "web graph"-like undirected graph: k communities of
// roughly equal size with dense intra-community preferential attachment, a
// few hub vertices per community, and sparse inter-community links.
func GenWeb(n, avgDeg, communities int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	if communities < 1 {
		communities = 1
	}
	b := NewBuilder(n).Name("web")
	commOf := func(v int) int { return v * communities / n }
	commStart := func(c int) int { return (c*n + communities - 1) / communities }
	commEnd := func(c int) int { return ((c+1)*n + communities - 1) / communities }
	targets := n * avgDeg / 2
	for i := 0; i < targets; i++ {
		u := rng.Intn(n)
		c := commOf(u)
		lo, hi := commStart(c), commEnd(c)
		var v int
		switch {
		case rng.Float64() < 0.05 && communities > 1:
			v = rng.Intn(n) // cross-community link
		case rng.Float64() < 0.5:
			// preferential-ish: hubs are the first few ids of the community
			span := hi - lo
			hub := lo + rng.Intn(1+span/16)
			v = hub
		default:
			v = lo + rng.Intn(hi-lo)
		}
		if u != v {
			b.AddEdge(VID(u), VID(v))
		}
	}
	// Spanning chain for connectivity.
	for i := 1; i < n; i++ {
		if rng.Intn(8) == 0 {
			b.AddEdge(VID(i-1), VID(i))
		}
	}
	b.AddEdge(0, VID(n-1))
	for c := 1; c < communities; c++ {
		b.AddEdge(VID(commStart(c-1)), VID(commStart(c)))
	}
	return b.Build()
}

// GenErdosRenyi generates a G(n, m)-style random graph (m undirected edge
// attempts), used mainly by tests.
func GenErdosRenyi(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n).Name("er")
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(VID(u), VID(v))
		}
	}
	return b.Build()
}

// GenRandomDirected generates a directed random graph; used for SCC tests.
func GenRandomDirected(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n).Directed(true).Name("randdir")
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(VID(u), VID(v))
		}
	}
	return b.Build()
}

// GenPath generates the path 0-1-2-...-(n-1).
func GenPath(n int) *Graph {
	b := NewBuilder(n).Name("path")
	for i := 1; i < n; i++ {
		b.AddEdge(VID(i-1), VID(i))
	}
	return b.Build()
}

// GenCycle generates the n-cycle.
func GenCycle(n int) *Graph {
	b := NewBuilder(n).Name("cycle")
	for i := 0; i < n; i++ {
		b.AddEdge(VID(i), VID((i+1)%n))
	}
	return b.Build()
}

// GenStar generates a star with center 0 and n-1 leaves.
func GenStar(n int) *Graph {
	b := NewBuilder(n).Name("star")
	for i := 1; i < n; i++ {
		b.AddEdge(0, VID(i))
	}
	return b.Build()
}

// GenComplete generates the complete graph K_n.
func GenComplete(n int) *Graph {
	b := NewBuilder(n).Name("complete")
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(VID(i), VID(j))
		}
	}
	return b.Build()
}

// GenTree generates a random tree on n vertices (each vertex i>0 attaches to
// a uniformly random earlier vertex).
func GenTree(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n).Name("tree")
	for i := 1; i < n; i++ {
		b.AddEdge(VID(rng.Intn(i)), VID(i))
	}
	return b.Build()
}

// WithRandomWeights returns a weighted copy of g with uniform weights in
// (0, 1], mirroring the paper's "random weights are added" setup for
// unweighted inputs. Both directions of an undirected edge get equal weight.
func WithRandomWeights(g *Graph, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(g.n).Directed(true).Weighted(true).Name(g.name + "-w")
	type key struct{ u, v VID }
	seen := make(map[key]float32)
	g.Edges(func(u, v VID, _ float32) bool {
		a, z := u, v
		if !g.Directed() && a > z {
			a, z = z, a
		}
		w, ok := seen[key{a, z}]
		if !ok {
			w = float32(rng.Float64()*0.999) + 0.001
			seen[key{a, z}] = w
		}
		b.AddEdgeW(u, v, w)
		return true
	})
	wg := b.Build()
	wg.directed = g.directed
	return wg
}
