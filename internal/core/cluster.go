// Cluster (multi-process SPMD) execution.
//
// In cluster mode every worker process runs the *same* driver program over
// the same deterministically-built graph and partition, but computes only
// its resident worker; the other workers are shells (placement metadata
// only). Correctness rests on two invariants the in-process engine already
// has and this file extends across processes:
//
//  1. Replicated driver decisions. The driver branches only on subset sizes
//     and Gather/Fold results. Subset sizes are made identical everywhere by
//     a per-superstep control round that broadcasts each resident's output
//     bits (shareStepOutput); Gather runs as a live allgather of master
//     values applied in ascending vertex order, so folds are byte-identical
//     regardless of placement.
//
//  2. Deterministic replay. Both outcomes — the merged output subset of
//     each superstep and the value array of each Gather — are appended to
//     the WorkerStore's log, so a respawned process fast-forwards through
//     the driver by popping records instead of recomputing, then goes live
//     exactly at the frontier, with its transport round counter at zero just
//     like every surviving peer after the coordinator's restart-all.
//
// In-process rollback recovery is disabled (canRecover is false in cluster
// mode): a failed superstep unwinds out of Run, the process exits with a
// classification code, and the coordinator restarts the fleet under a fresh
// membership epoch resuming from min(latest checkpoint).
package core

import (
	"encoding/binary"
	"fmt"

	"flash/graph"
	"flash/internal/comm"
)

// ClusterSpec switches an Engine into cluster mode.
type ClusterSpec struct {
	// Resident is the worker this process computes. Workers other than
	// Resident are shells: they hold the shared partition metadata but no
	// property state, and their supersteps run in peer processes.
	Resident int
	// Store is the process's durable checkpoint-plus-log store. nil runs
	// without durability (a restarted fleet recomputes from scratch).
	Store *WorkerStore
	// ResumeSeq is the checkpoint sequence to fast-forward from; 0 starts
	// fresh. The coordinator picks min over the fleet's registered latest
	// sequences so every process resumes from the same synchronization
	// point.
	ResumeSeq uint64
}

// clusterMeta is the second section of a cluster checkpoint image: enough to
// validate the image against the live configuration and to locate the log
// prefix the image corresponds to.
type clusterMeta struct {
	workers  int
	resident int
	records  uint64 // log records at the instant the image was taken
}

func encodeClusterMeta(m clusterMeta) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(m.workers))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(m.resident))
	binary.LittleEndian.PutUint64(buf[8:16], m.records)
	return buf
}

func decodeClusterMeta(b []byte) (clusterMeta, error) {
	if len(b) != 16 {
		return clusterMeta{}, fmt.Errorf("core: cluster checkpoint meta is %d bytes, want 16", len(b))
	}
	return clusterMeta{
		workers:  int(binary.LittleEndian.Uint32(b[0:4])),
		resident: int(binary.LittleEndian.Uint32(b[4:8])),
		records:  binary.LittleEndian.Uint64(b[8:16]),
	}, nil
}

// initCluster prepares the durable side of cluster mode after the workers
// are built: a fresh run clears stale state from a previous incarnation, a
// resume loads the image, truncates the log to the image's record count, and
// arms fast-forward replay.
func (e *Engine[V]) initCluster() error {
	spec := e.cfg.Cluster
	e.cstore = spec.Store
	if e.cstore == nil {
		return nil
	}
	if spec.ResumeSeq == 0 {
		return e.cstore.reset()
	}
	img, err := e.cstore.loadImage(spec.ResumeSeq)
	if err != nil {
		return err
	}
	if len(img.Sections) != 2 {
		return fmt.Errorf("core: cluster checkpoint %d has %d sections, want 2", spec.ResumeSeq, len(img.Sections))
	}
	meta, err := decodeClusterMeta(img.Sections[1])
	if err != nil {
		return err
	}
	if meta.workers != e.cfg.Workers || meta.resident != e.resident {
		return fmt.Errorf("core: cluster checkpoint %d was taken by worker %d of %d; this process is worker %d of %d",
			spec.ResumeSeq, meta.resident, meta.workers, e.resident, e.cfg.Workers)
	}
	recs, err := e.cstore.replay(meta.records)
	if err != nil {
		return err
	}
	// Install the image's values now: fast-forward never executes supersteps
	// (so nothing reads them early), and once the replayed records run out
	// the state is exactly the live frontier's.
	if err := e.decodeWorkerSection(e.workers[e.resident], img.Sections[0]); err != nil {
		return err
	}
	e.ffRecs = recs
	e.ckptSeq = spec.ResumeSeq
	e.hasCkpt = true
	return nil
}

// clusterFail marks the engine failed and unwinds to Run. Cluster failures
// are never recovered in-process; the exit code tells the coordinator what
// to do.
func (e *Engine[V]) clusterFail(err error) {
	e.failed = err
	panic(runtimeFailure{err})
}

// execStepCluster is execStep for cluster mode: fast-forward from the log
// when resuming, otherwise execute the resident's share, replicate the
// output subset with a control round, log the outcome, and checkpoint on
// the shared deterministic cadence.
func (e *Engine[V]) execStepCluster(frontier int, exec replayStep[V]) *Subset {
	if e.failed != nil {
		panic(runtimeFailure{fmt.Errorf("core: engine already failed: %w", e.failed)})
	}
	if e.isClosed() {
		e.failed = ErrEngineClosed
		panic(runtimeFailure{ErrEngineClosed})
	}
	if e.ffPos < len(e.ffRecs) {
		rec := e.ffRecs[e.ffPos]
		e.ffPos++
		if rec.kind != logKindStep {
			e.clusterFail(fmt.Errorf("core: cluster log diverged: record %d is kind %d, want step", e.ffPos-1, rec.kind))
		}
		out := e.newSubset()
		if err := e.decodeStepRecord(rec.payload, out); err != nil {
			e.clusterFail(err)
		}
		e.met.Step(frontier)
		out.recount()
		return out
	}
	if e.cstore != nil && !e.hasCkpt {
		// The initial checkpoint, taken lazily so driver-side seeding before
		// the first superstep is captured. Its record count is zero: resuming
		// from it replays the whole log... which is empty.
		if err := e.takeClusterCheckpoint(); err != nil {
			e.clusterFail(err)
		}
	}
	e.met.Step(frontier)
	out := e.newSubset()
	err := exec(out)
	if err == nil {
		err = e.shareStepOutput(out)
	}
	if err != nil {
		e.clusterFail(err)
	}
	out.recount()
	if e.cstore != nil {
		if err := e.cstore.appendRecord(logKindStep, e.encodeStepRecord(out)); err != nil {
			e.clusterFail(err)
		}
		e.stepsSince++
		if e.cfg.CheckpointEvery > 0 && e.stepsSince >= e.cfg.CheckpointEvery {
			if err := e.takeClusterCheckpoint(); err != nil {
				e.clusterFail(err)
			}
		}
	}
	return out
}

// shareStepOutput is the control round that replicates the superstep's
// output subset across the fleet: each process broadcasts its resident's
// bits as one frontier frame and ORs the peers' frames in, so every process
// ends the superstep with the identical subset (sizes, densities and
// termination tests then agree everywhere).
func (e *Engine[V]) shareStepOutput(out *Subset) error {
	if e.cfg.Workers == 1 {
		return nil
	}
	w := e.workers[e.resident]
	words := out.local[e.resident].Words()
	lo, hi := 0, len(words)
	for lo < hi && words[lo] == 0 {
		lo++
	}
	for hi > lo && words[hi-1] == 0 {
		hi--
	}
	if hi > lo {
		w.fenc = encodeFrontier(w.fenc, words, lo, hi)
		for to := 0; to < e.cfg.Workers; to++ {
			if to == e.resident {
				continue
			}
			payload := comm.GetBufN(len(w.fenc))
			copy(payload, w.fenc)
			if err := w.send(to, payload); err != nil {
				return err
			}
		}
	}
	if err := e.tr.EndRound(w.id); err != nil {
		return err
	}
	var frameErr error
	drainErr := e.tr.Drain(w.id, func(from int, data []byte) {
		if from == w.id || frameErr != nil {
			return
		}
		if err := decodeFrontier(data, out.local[from].Words()); err != nil {
			frameErr = err
		}
	})
	e.met.Merge(w.met)
	w.met.Reset()
	if drainErr != nil {
		return drainErr
	}
	return frameErr
}

// Step record layout: per worker, uvarint frame length followed by that many
// frontier-frame bytes; length 0 encodes an empty per-worker subset.

// encodeStepRecord serializes the fully-replicated output subset.
func (e *Engine[V]) encodeStepRecord(out *Subset) []byte {
	var buf []byte
	var scratch []byte
	for wi := 0; wi < e.cfg.Workers; wi++ {
		words := out.local[wi].Words()
		lo, hi := 0, len(words)
		for lo < hi && words[lo] == 0 {
			lo++
		}
		for hi > lo && words[hi-1] == 0 {
			hi--
		}
		if hi == lo {
			buf = binary.AppendUvarint(buf, 0)
			continue
		}
		scratch = encodeFrontier(scratch, words, lo, hi)
		buf = binary.AppendUvarint(buf, uint64(len(scratch)))
		buf = append(buf, scratch...)
	}
	return buf
}

// decodeStepRecord rehydrates a logged output subset (out must be freshly
// allocated: frames are OR'd in).
func (e *Engine[V]) decodeStepRecord(payload []byte, out *Subset) error {
	off := 0
	for wi := 0; wi < e.cfg.Workers; wi++ {
		n, k := binary.Uvarint(payload[off:])
		if k <= 0 || off+k+int(n) > len(payload) {
			return fmt.Errorf("core: cluster step record truncated at worker %d", wi)
		}
		off += k
		if n == 0 {
			continue
		}
		if err := decodeFrontier(payload[off:off+int(n)], out.local[wi].Words()); err != nil {
			return fmt.Errorf("core: cluster step record, worker %d: %w", wi, err)
		}
		off += int(n)
	}
	if off != len(payload) {
		return fmt.Errorf("core: cluster step record has %d trailing bytes", len(payload)-off)
	}
	return nil
}

// gatherCluster is driver-side Gather in cluster mode: a live allgather of
// master values. Every process sends its resident's masters to every peer in
// ascending local order, rebuilds the full value array, and applies f in
// ascending vertex order — so a Fold computes the identical byte-for-byte
// result in every process regardless of which vertices it masters. The
// outcome is logged for fast-forward, exactly like a superstep's subset.
func (e *Engine[V]) gatherCluster(f func(v graph.VID, val *V)) {
	n := e.g.NumVertices()
	if e.ffPos < len(e.ffRecs) {
		rec := e.ffRecs[e.ffPos]
		e.ffPos++
		if rec.kind != logKindGather {
			e.clusterFail(fmt.Errorf("core: cluster log diverged: record %d is kind %d, want gather", e.ffPos-1, rec.kind))
		}
		off := 0
		var val V
		for v := 0; v < n; v++ {
			k, err := e.codec.Decode(rec.payload[off:], &val)
			if err != nil {
				e.clusterFail(fmt.Errorf("core: cluster gather record, vertex %d: %w", v, err))
			}
			off += k
			f(graph.VID(v), &val)
		}
		if off != len(rec.payload) {
			e.clusterFail(fmt.Errorf("core: cluster gather record has %d trailing bytes", len(rec.payload)-off))
		}
		return
	}
	w := e.workers[e.resident]
	masters := e.place.LocalCount(e.resident)
	vals := make([]V, n)
	if e.cfg.Workers > 1 {
		var sendErr error
		for l := 0; l < masters && sendErr == nil; l++ {
			gid := e.place.GlobalID(e.resident, l)
			for to := 0; to < e.cfg.Workers; to++ {
				if to == e.resident {
					continue
				}
				if sendErr = w.appendKV(to, gid, &w.cur[l]); sendErr != nil {
					break
				}
			}
		}
		if sendErr == nil {
			sendErr = w.flushAll()
		}
		if sendErr == nil {
			sendErr = e.tr.EndRound(w.id)
		}
		if sendErr != nil {
			e.clusterFail(sendErr)
		}
		got := 0
		var badErr error
		drainErr := w.drainKV(func(gid graph.VID, val *V) {
			if int(gid) >= n {
				if badErr == nil {
					badErr = fmt.Errorf("core: cluster gather received vertex %d of %d", gid, n)
				}
				return
			}
			vals[gid] = *val
			got++
		})
		e.met.Merge(w.met)
		w.met.Reset()
		if drainErr != nil {
			e.clusterFail(drainErr)
		}
		if badErr != nil {
			e.clusterFail(badErr)
		}
		if got != n-masters {
			e.clusterFail(fmt.Errorf("core: cluster gather received %d of %d remote masters", got, n-masters))
		}
	}
	for l := 0; l < masters; l++ {
		vals[e.place.GlobalID(e.resident, l)] = w.cur[l]
	}
	for v := 0; v < n; v++ {
		f(graph.VID(v), &vals[v])
	}
	if e.cstore != nil {
		buf := make([]byte, 0, n*8)
		for v := range vals {
			buf = e.codec.Append(buf, &vals[v])
		}
		if err := e.cstore.appendRecord(logKindGather, buf); err != nil {
			e.clusterFail(err)
		}
	}
}

// takeClusterCheckpoint saves the resident's section plus the metadata that
// pins the image to its log prefix. The cadence (CheckpointEvery successful
// supersteps, counted identically by the deterministic driver in every
// process) guarantees every worker's image at sequence S freezes the same
// record count, which is what makes min(latest) a consistent resume point.
func (e *Engine[V]) takeClusterCheckpoint() error {
	w := e.workers[e.resident]
	sect := e.encodeWorkerSection(w)
	meta := encodeClusterMeta(clusterMeta{
		workers:  e.cfg.Workers,
		resident: e.resident,
		records:  e.cstore.records(),
	})
	e.ckptSeq++
	img := &CheckpointImage{Seq: e.ckptSeq, Sections: [][]byte{sect, meta}}
	if err := e.cstore.saveImage(img); err != nil {
		e.ckptSeq--
		return fmt.Errorf("core: cluster checkpoint: %w", err)
	}
	e.hasCkpt = true
	e.stepsSince = 0
	e.met.AddCheckpoints(1)
	e.met.AddCheckpointBytes(uint64(len(sect) + len(meta)))
	return nil
}
