// Command graphgen emits the synthetic dataset analogs (or any generator)
// as edge-list files loadable by flashrun and graph.LoadEdgeListFile.
//
// Usage:
//
//	graphgen -dataset TW -scale 2 -out tw.txt
//	graphgen -gen grid -rows 300 -cols 50 -out road.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"flash/bench"
	"flash/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "paper dataset analog: OR, TW, US, EU, UK, SK")
		gen     = flag.String("gen", "rmat", "generator when -dataset is empty")
		n       = flag.Int("n", 10000, "vertices")
		m       = flag.Int("m", 80000, "edges")
		rows    = flag.Int("rows", 100, "grid rows")
		cols    = flag.Int("cols", 100, "grid cols")
		scale   = flag.Int("scale", 1, "dataset scale factor")
		seed    = flag.Int64("seed", 42, "seed")
		weights = flag.Bool("weights", false, "attach random weights")
		out     = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	if *dataset != "" {
		d, ok := bench.DatasetByAbbr(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "graphgen: unknown dataset %q\n", *dataset)
			os.Exit(1)
		}
		g = d.Build(*scale)
	} else {
		switch *gen {
		case "rmat":
			g = graph.GenRMAT(*n, *m, *seed)
		case "grid":
			g = graph.GenGrid(*rows, *cols, 0, *seed)
		case "web":
			g = graph.GenWeb(*n, *m / *n + 1, 32, *seed)
		case "er":
			g = graph.GenErdosRenyi(*n, *m, *seed)
		default:
			fmt.Fprintf(os.Stderr, "graphgen: unknown generator %q\n", *gen)
			os.Exit(1)
		}
	}
	if *weights {
		g = graph.WithRandomWeights(g, *seed)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, g)
}
