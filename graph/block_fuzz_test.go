package graph

import (
	"bytes"
	"testing"
)

// fuzzSeedImage builds the valid FLASHBLK image the seed corpus variants are
// derived from: small, directed, weighted, multi-block.
func fuzzSeedImage() []byte {
	b := NewBuilder(24).Directed(true).Weighted(true).Name("fuzz")
	for v := 0; v < 23; v++ {
		b.AddEdgeW(VID(v), VID(v+1), float32(v))
		b.AddEdgeW(VID(v), VID((v*5+2)%24), 0.5)
	}
	return EncodeBlockFile(b.Build(), 64)
}

// fuzzOversizeImage packs a hub vertex whose adjacency exceeds the one-byte
// target block size, exercising the oversize single-vertex block path.
func fuzzOversizeImage() []byte {
	b := NewBuilder(64).Directed(true)
	for v := 1; v < 64; v++ {
		b.AddEdge(0, VID(v))
	}
	return EncodeBlockFile(b.Build(), 1)
}

// FuzzDecodeBlockFile throws arbitrary bytes at the FLASHBLK reader: opening
// must never panic or over-allocate, and any image the reader accepts must
// decode every block without a panic — either a valid CSR fragment or a clean
// error. The checked-in corpus under testdata/fuzz seeds the interesting
// regions: a pristine file, a truncated tail, a bit-flipped block CRC, and an
// oversize single-vertex block.
func FuzzDecodeBlockFile(f *testing.F) {
	valid := fuzzSeedImage()
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x10
	f.Add(flipped)
	f.Add(fuzzOversizeImage())

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		bg, err := OpenBlockReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		for _, dir := range []int{BlockOut, BlockIn} {
			for i := 0; i < bg.NumBlocks(dir); i++ {
				dec, err := bg.ReadBlock(dir, i)
				if err != nil {
					continue // CRC or framing damage, rejected cleanly
				}
				for v := dec.First(); dec.Contains(v); v++ {
					adj, ws := dec.Adj(v)
					for _, d := range adj {
						if int(d) >= bg.NumVertices() {
							t.Fatalf("decoded vid %d out of range", d)
						}
					}
					if bg.Weighted() != (ws != nil) && len(adj) > 0 {
						t.Fatalf("weight slice presence disagrees with header flag")
					}
				}
			}
		}
	})
}
