// Cold worker restart and the liveness heartbeat loop.
//
// A transient fault (dropped frame, crash mid-superstep) is handled by
// rollback+replay alone: the worker's in-memory state survives and the
// checkpoint merely rewinds it. A *permanent* loss is different — the
// worker's slot state is gone and its transport endpoint is dead, so before
// replay can run the engine must rebuild the worker from first principles:
// recompute its partition view from the graph (partition.Rebuild), allocate
// a fresh worker with zeroed state (newWorker), revive its transport
// endpoint, and let restoreCheckpoint rehydrate the state from the durable
// image. Peers learn about the death through the liveness layer: each worker
// runs a background heartbeater, and a drain deadline that expires while a
// peer's heartbeat clock is stale classifies the peer as dead
// (comm.ErrPeerDead) instead of merely stalled.
package core

import (
	"errors"
	"time"

	"flash/internal/comm"
)

// killedWorker extracts the identity of a permanently lost worker from a
// superstep error: either the victim's own comm.KillError (its goroutine
// observed its death directly) or a peer's comm.ErrPeerDead verdict from the
// liveness layer.
func killedWorker(err error) (int, bool) {
	var ke *comm.KillError
	if errors.As(err, &ke) {
		return ke.Worker, true
	}
	var we *comm.WorkerError
	if errors.As(err, &we) && errors.Is(we.Err, comm.ErrPeerDead) {
		return we.Worker, true
	}
	return 0, false
}

// coldRestart rebuilds permanently lost worker victim from scratch. On
// return the victim has a fresh zeroed worker whose layout matches the
// pre-death one (the partition is a pure function of graph and placement),
// its transport endpoint is revived, and its heartbeater is running again;
// the caller's rollbackReplay then rehydrates the state from the stored
// checkpoint image. Restarts share the recovery budget with ordinary
// rollbacks and back off exponentially like send retries, so a worker that
// keeps dying does not hot-loop.
func (e *Engine[V]) coldRestart(victim int) {
	if backoff := e.restartBackoff(); backoff > 0 {
		time.Sleep(backoff)
	}
	e.stopHeartbeater(victim)
	old := e.workers[victim]
	if old != nil && old.pool != nil {
		old.pool.stop()
	}
	e.privatizePart()
	e.part.Rebuild(victim)
	e.workers[victim] = e.newWorker(victim)
	if rv, ok := e.tr.(comm.Reviver); ok {
		rv.Revive(victim)
	}
	e.startHeartbeater(victim)
	e.met.AddRestarts(1)
}

// restartBackoff scales the configured retry backoff exponentially with the
// recovery count (the first restart is immediate), capped like send retry.
func (e *Engine[V]) restartBackoff() time.Duration {
	if e.recoveries <= 1 {
		return 0
	}
	backoff := e.cfg.RetryBackoff
	for i := 2; i < e.recoveries && backoff < 100*e.cfg.RetryBackoff; i++ {
		backoff *= 2
	}
	if backoff > 100*e.cfg.RetryBackoff {
		backoff = 100 * e.cfg.RetryBackoff
	}
	return backoff
}

// startHeartbeaters launches one background heartbeater per worker when
// HeartbeatEvery is configured.
func (e *Engine[V]) startHeartbeaters() {
	e.startHeartbeatersN(len(e.workers))
}

// startHeartbeatersN launches heartbeaters for workers [0, n). Resize uses an
// explicit n because migration runs with the transport grown to
// max(old, new) workers while e.workers still holds the old membership —
// every endpoint that participates in a round must announce liveness, or the
// drain deadline would misclassify a joining worker as dead.
func (e *Engine[V]) startHeartbeatersN(n int) {
	if e.cfg.HeartbeatEvery <= 0 {
		return
	}
	e.hbStop = make([]chan struct{}, n)
	e.hbDone = make([]chan struct{}, n)
	for w := 0; w < n; w++ {
		if e.resident >= 0 && w != e.resident {
			continue // cluster shell: the owning process heartbeats for it
		}
		e.startHeartbeater(w)
	}
}

// startHeartbeater runs worker w's liveness loop: a ticker that stamps w's
// heartbeat clock on every peer through the transport. The loop exits when
// stopped, when the transport reports w's permanent death (KillError — the
// silence is the signal peers classify as ErrPeerDead), or when the
// transport is closed.
func (e *Engine[V]) startHeartbeater(w int) {
	if e.cfg.HeartbeatEvery <= 0 || e.hbStop == nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	e.hbStop[w] = stop
	e.hbDone[w] = done
	go func() {
		defer close(done)
		// Announce liveness immediately: arming the peer-side classification
		// clock must not wait for the first tick, or a worker that dies
		// within the first interval could never be told apart from a stall.
		if err := e.tr.Heartbeat(w); err != nil {
			var ke *comm.KillError
			if errors.As(err, &ke) {
				return
			}
		}
		ticker := time.NewTicker(e.cfg.HeartbeatEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				err := e.tr.Heartbeat(w)
				var ke *comm.KillError
				if errors.As(err, &ke) {
					return
				}
			}
		}
	}()
}

// stopHeartbeater stops and joins worker w's heartbeater, if running.
func (e *Engine[V]) stopHeartbeater(w int) {
	if e.hbStop == nil || e.hbStop[w] == nil {
		return
	}
	close(e.hbStop[w])
	<-e.hbDone[w]
	e.hbStop[w], e.hbDone[w] = nil, nil
}

// stopHeartbeaters stops every running heartbeater (Engine.Close).
func (e *Engine[V]) stopHeartbeaters() {
	if e.hbStop == nil {
		return
	}
	for w := range e.hbStop {
		e.stopHeartbeater(w)
	}
}
