package partition

import (
	"testing"

	"flash/graph"
	"flash/internal/bitset"
)

// slotPlacements builds both placement kinds for the slot-table tests.
func slotPlacements(n, m int) map[string]Placement {
	return map[string]Placement{
		"range": NewRange(n, m),
		"hash":  NewHash(n, m),
	}
}

func TestSlotTableLayout(t *testing.T) {
	g := graph.GenRMAT(512, 512*8, 7)
	n := g.NumVertices()
	for name, place := range slotPlacements(n, 4) {
		t.Run(name, func(t *testing.T) {
			p := New(g, place)
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for w, part := range p.Parts {
				st := part.Slots
				if st.MasterCount() != place.LocalCount(w) {
					t.Fatalf("worker %d: %d masters, want %d", w, st.MasterCount(), place.LocalCount(w))
				}
				if st.SlotCount() != st.MasterCount()+part.Mirrors.Count() {
					t.Fatalf("worker %d: %d slots, want %d masters + %d mirrors",
						w, st.SlotCount(), st.MasterCount(), part.Mirrors.Count())
				}
				// Masters occupy slots [0, MasterCount) at their local index.
				for l := 0; l < st.MasterCount(); l++ {
					gid := place.GlobalID(w, l)
					if got := st.Slot(gid); got != l {
						t.Fatalf("worker %d: master %d at slot %d, want %d", w, gid, got, l)
					}
				}
				// Mirrors follow, sorted by ascending gid, and round-trip.
				prevSlot, prevGid := st.MasterCount()-1, graph.VID(0)
				seen := 0
				st.RangeMirrors(func(slot int, gid graph.VID) bool {
					if slot != prevSlot+1 {
						t.Fatalf("worker %d: mirror slot %d not contiguous after %d", w, slot, prevSlot)
					}
					if seen > 0 && gid <= prevGid {
						t.Fatalf("worker %d: mirror gids not ascending (%d after %d)", w, gid, prevGid)
					}
					if !part.Mirrors.Test(int(gid)) {
						t.Fatalf("worker %d: slot %d gid %d is not a mirror", w, slot, gid)
					}
					prevSlot, prevGid = slot, gid
					seen++
					return true
				})
				if seen != st.MirrorCount() {
					t.Fatalf("worker %d: RangeMirrors visited %d of %d mirrors", w, seen, st.MirrorCount())
				}
				// Full gid↔slot round-trip through both directions.
				for slot := 0; slot < st.SlotCount(); slot++ {
					gid := st.GID(slot)
					if got := st.Slot(gid); got != slot {
						t.Fatalf("worker %d: Slot(GID(%d)) = %d", w, slot, got)
					}
					if got, ok := st.Lookup(gid); !ok || got != slot {
						t.Fatalf("worker %d: Lookup(GID(%d)) = %d,%v", w, slot, got, ok)
					}
				}
				// Non-resident vertices must fail Lookup.
				for v := 0; v < n; v++ {
					gid := graph.VID(v)
					resident := place.Owner(gid) == w || part.Mirrors.Test(v)
					if _, ok := st.Lookup(gid); ok != resident {
						t.Fatalf("worker %d: Lookup(%d) = %v, resident %v", w, gid, ok, resident)
					}
				}
			}
		})
	}
}

func TestFullSlotTable(t *testing.T) {
	const n, m = 130, 3
	for name, place := range slotPlacements(n, m) {
		t.Run(name, func(t *testing.T) {
			for w := 0; w < m; w++ {
				st := FullSlotTable(place, w, n)
				if st.SlotCount() != n {
					t.Fatalf("worker %d: %d slots, want %d", w, st.SlotCount(), n)
				}
				if st.MirrorCount() != n-place.LocalCount(w) {
					t.Fatalf("worker %d: %d mirrors", w, st.MirrorCount())
				}
				for v := 0; v < n; v++ {
					slot, ok := st.Lookup(graph.VID(v))
					if !ok {
						t.Fatalf("worker %d: vertex %d not resident under full replication", w, v)
					}
					if st.GID(slot) != graph.VID(v) {
						t.Fatalf("worker %d: GID(Slot(%d)) = %d", w, v, st.GID(slot))
					}
				}
			}
		})
	}
}

func TestSlotTableEmptyMirrors(t *testing.T) {
	place := NewRange(64, 1)
	st := NewSlotTable(place, 0, bitset.New(64))
	if st.SlotCount() != 64 || st.MirrorCount() != 0 {
		t.Fatalf("single-worker table: %d slots, %d mirrors", st.SlotCount(), st.MirrorCount())
	}
	st.RangeMirrors(func(int, graph.VID) bool {
		t.Fatal("RangeMirrors visited a slot with no mirrors")
		return false
	})
}
