// Elastic worker membership: the planned membership-change protocol.
//
// Resize(n) changes the worker count of a live engine at a superstep barrier.
// The protocol is built from PR 5's fault-tolerance primitives and keeps the
// run byte-identical to one that used the final membership from the start:
//
//  1. Quiesce. Resize only runs between supersteps (the driver thread owns
//     the barrier), so no worker holds an exchange round open.
//  2. Durable pre-resize image. With checkpointing on, a fresh checkpoint is
//     taken first; it is the rollback target if the resize itself fails.
//  3. Union transport. The transport grows to max(old, new) workers under a
//     fresh membership epoch, so every sender and receiver of the migration
//     round has a live endpoint (and a heartbeater announcing liveness).
//  4. New membership build. The new placement, partition (partition.Shell +
//     Rebuild per worker — the cold-restart path) and zeroed workers are
//     constructed beside the old ones; nothing is installed yet.
//  5. Migration round. Every old worker walks its masters in ascending local
//     order, packs (gid, value) runs per destination, and ships each as a
//     FLASHCKP checkpoint container — CRC-protected, so a corrupt migration
//     frame is detected at decode, not applied. Receivers validate ownership
//     and count: a lost frame surfaces as a count mismatch, never a hang.
//     The round is bracketed with comm.ResizePhase so scripted mid-migration
//     faults (kills, corruption, delays) fire exactly in this window.
//  6. Install + resync. The transport shrinks to the final membership, the
//     new placement/partition/workers are installed under a new subset
//     epoch, and one broadcast-style sync round rebuilds every mirror from
//     the migrated masters. Old workers' thread pools are joined.
//  7. Post-resize image. A fresh checkpoint captures the new layout and
//     truncates the replay log: recovery never replays across a membership
//     change.
//
// Failure at any point before the final install rolls back: the old
// membership objects (still intact) are reinstalled, a permanently killed
// worker is revived and cold-rebuilt, the transport returns to the old size,
// and state is restored from the pre-resize image. Retries share
// MaxRecoveries with ordinary rollback recovery, so a persistent fault
// cannot loop a resize forever.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"flash/graph"
	"flash/internal/bitset"
	"flash/internal/comm"
	"flash/internal/partition"
)

// membership is a snapshot of the engine fields a resize replaces, kept for
// rollback.
type membership[V any] struct {
	workers    int
	place      partition.Placement
	part       *partition.Partitioned
	partShared bool
	ws         []*worker[V]
}

func (e *Engine[V]) membership() membership[V] {
	return membership[V]{workers: e.cfg.Workers, place: e.place, part: e.part,
		partShared: e.partShared, ws: e.workers}
}

// Resize changes the engine's worker count to n at the current superstep
// barrier, migrating master state between the old and new partitions. The
// transport must implement comm.Resizer. With checkpointing enabled the
// resize is crash-safe: a failure mid-migration (including a permanent
// worker kill) rolls back to the pre-resize image and retries under the
// shared MaxRecoveries budget. Without checkpointing a failed resize marks
// the engine failed.
func (e *Engine[V]) Resize(n int) error {
	if err := e.beginOp(); err != nil {
		return err
	}
	defer e.endOp()
	if e.failed != nil {
		return e.failed
	}
	if n < 1 {
		return &ConfigError{"Workers", fmt.Sprintf("must be >= 1, got %d (Resize)", n)}
	}
	if e.resident >= 0 {
		// Cluster membership is the coordinator's to change: it respawns the
		// fleet under a fresh epoch instead of migrating state in place.
		return &ConfigError{"Workers", "resize unsupported in cluster mode"}
	}
	if n == e.cfg.Workers {
		return nil
	}
	if _, ok := e.tr.(comm.Resizer); !ok {
		// Terminal, not recoverable: retrying cannot make the transport grow
		// the capability.
		err := fmt.Errorf("core: transport %T does not support membership resize", e.tr)
		e.failed = err
		return err
	}
	start := time.Now()
	ckptOn := e.cfg.CheckpointEvery > 0
	if ckptOn {
		// The durable rollback target: state as of this barrier.
		if err := e.takeCheckpoint(); err != nil {
			e.failed = err
			return err
		}
	}
	old := e.membership()
	for {
		err := e.doResize(n)
		if err == nil {
			break
		}
		if !e.canRecover(err) {
			e.failed = fmt.Errorf("core: resize to %d workers failed: %w", n, err)
			return e.failed
		}
		e.recoveries++
		e.met.AddRecoveries(1)
		rstart := time.Now()
		rbErr := e.rollbackResize(old, err)
		e.met.AddRecoveryTime(time.Since(rstart))
		if rbErr != nil {
			e.failed = fmt.Errorf("core: resize rollback failed: %w", rbErr)
			return e.failed
		}
	}
	e.met.AddResizes(1)
	e.met.AddResizeTime(time.Since(start))
	if ckptOn {
		// Capture the new layout; everything before the membership change
		// leaves the replay log, so recovery never replays across epochs.
		if err := e.takeCheckpoint(); err != nil {
			e.failed = err
			return err
		}
	}
	return nil
}

// doResize performs one resize attempt. On error the engine's installed
// membership may be partially replaced; rollbackResize repairs it.
func (e *Engine[V]) doResize(n int) error {
	oldN := e.cfg.Workers
	maxN := oldN
	if n > maxN {
		maxN = n
	}
	rz := e.tr.(comm.Resizer)

	// Union membership: both the leaving senders and the joining receivers
	// need live endpoints (and heartbeaters) for the migration round.
	e.stopHeartbeaters()
	if err := rz.Resize(maxN); err != nil {
		e.startHeartbeatersN(oldN)
		return err
	}
	e.startHeartbeatersN(maxN)

	newPlace := e.makePlacement(n)
	newPart := partition.Shell(e.topo(), newPlace)
	for w := 0; w < n; w++ {
		newPart.Rebuild(w)
	}
	newWorkers := make([]*worker[V], n)
	for w := 0; w < n; w++ {
		newWorkers[w] = e.newWorkerAt(w, newPart, newPlace, n)
	}

	if rp, ok := e.tr.(comm.ResizePhaser); ok {
		rp.ResizePhase(true)
	}
	err := e.migrate(oldN, n, maxN, newPlace, newWorkers)
	if rp, ok := e.tr.(comm.ResizePhaser); ok {
		rp.ResizePhase(false)
	}
	if err != nil {
		stopPools(newWorkers)
		return err
	}

	if n < maxN {
		// Shrink to the final membership; retired endpoints disappear.
		e.stopHeartbeaters()
		if err := rz.Resize(n); err != nil {
			e.startHeartbeatersN(oldN)
			stopPools(newWorkers)
			return err
		}
		e.startHeartbeatersN(n)
	}

	// Install the new membership and open a fresh subset epoch. The new
	// partition was built privately (Shell + Rebuild), so a previously
	// catalog-shared engine owns its partition from here on.
	oldWorkers := e.workers
	e.cfg.Workers = n
	e.part = newPart
	e.partShared = false
	e.workers = newWorkers
	e.pushEpoch(newPlace)

	// Mirrors start zeroed on every new worker; one broadcast-shaped sync of
	// all masters rebuilds them from the migrated values.
	if err := e.resyncMirrors(); err != nil {
		return err
	}
	stopPools(oldWorkers)
	return nil
}

// migrate runs the migration exchange round over the union membership:
// participants [0, oldN) send their masters to the new owners, participants
// [0, newN) receive theirs; everyone marks end-of-round so the barrier
// closes. Error propagation mirrors parallelWorkers: the first failure
// aborts the transport so blocked peers unwind, a killed participant dies
// silently (the liveness layer reports it), and the returned error is the
// root cause.
func (e *Engine[V]) migrate(oldN, newN, maxN int, newPlace partition.Placement, newWorkers []*worker[V]) error {
	errs := make([]error, maxN)
	var migrated atomic.Uint64
	var wg sync.WaitGroup
	for p := 0; p < maxN; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[p] = &workerPanic{worker: p, value: r, stack: debug.Stack()}
					e.tr.Abort(comm.ErrAborted)
				}
			}()
			if err := e.migrateWorker(p, oldN, newN, newPlace, newWorkers, &migrated); err != nil {
				errs[p] = err
				var ke *comm.KillError
				if errors.As(err, &ke) && ke.Worker == p {
					return // silent death; peers detect it through liveness
				}
				e.tr.Abort(comm.ErrAborted)
			}
		}()
	}
	wg.Wait()
	e.met.AddMigratedBytes(migrated.Load())
	// Senders counted their migration traffic (and retries) into the old
	// workers' metric shards, which are discarded on success — fold them now.
	for p := 0; p < oldN; p++ {
		e.met.Merge(e.workers[p].met)
		e.workers[p].met.Reset()
	}
	var secondary error
	for p, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, comm.ErrAborted) {
			return fmt.Errorf("core: migration participant %d: %w", p, err)
		}
		if secondary == nil {
			secondary = fmt.Errorf("core: migration participant %d: %w", p, err)
		}
	}
	return secondary
}

// migrateWorker is one participant's half-rounds of the migration exchange.
// Senders walk their masters in ascending local order and pack one
// FLASHCKP-framed section per destination — (gid uvarint, codec value) runs
// — so the payload is CRC-protected end to end and byte-deterministic.
// Receivers validate every master against the new placement and fail on a
// count mismatch instead of hanging a barrier.
func (e *Engine[V]) migrateWorker(p, oldN, newN int, newPlace partition.Placement, newWorkers []*worker[V], migrated *atomic.Uint64) error {
	if p < oldN {
		w := e.workers[p]
		secs := make([][]byte, newN)
		for l := 0; l < e.place.LocalCount(p); l++ {
			gid := e.place.GlobalID(p, l)
			dst := newPlace.Owner(gid)
			secs[dst] = binary.AppendUvarint(secs[dst], uint64(gid))
			secs[dst] = e.codec.Append(secs[dst], &w.cur[l])
		}
		for dst, sect := range secs {
			if sect == nil {
				continue
			}
			frame := EncodeCheckpointFile(&CheckpointImage{Seq: uint64(p), Sections: [][]byte{sect}})
			if err := w.send(dst, frame); err != nil {
				return err
			}
			migrated.Add(uint64(len(frame)))
		}
	}
	if err := e.tr.EndRound(p); err != nil {
		return err
	}
	if p >= newN {
		// A leaving worker has nothing to receive; its endpoint is retired by
		// the post-migration shrink.
		return nil
	}
	nw := newWorkers[p]
	want := newPlace.LocalCount(p)
	got := 0
	var decodeErr error
	drainErr := e.tr.Drain(p, func(from int, data []byte) {
		if decodeErr != nil {
			return
		}
		img, err := DecodeCheckpointFile(data)
		if err != nil {
			decodeErr = fmt.Errorf("core: migration frame from worker %d: %w", from, err)
			return
		}
		for _, sect := range img.Sections {
			for len(sect) > 0 {
				gid64, k := binary.Uvarint(sect)
				if k <= 0 {
					decodeErr = fmt.Errorf("core: migration frame from worker %d: bad master id", from)
					return
				}
				sect = sect[k:]
				gid := graph.VID(gid64)
				if int(gid64) >= e.g.NumVertices() || newPlace.Owner(gid) != p {
					decodeErr = fmt.Errorf("core: migrated master %d does not belong to worker %d", gid64, p)
					return
				}
				nb, err := e.codec.Decode(sect, &nw.cur[newPlace.LocalIndex(gid)])
				if err != nil {
					decodeErr = fmt.Errorf("core: migration frame from worker %d: master %d: %w", from, gid64, err)
					return
				}
				sect = sect[nb:]
				got++
			}
		}
	})
	if drainErr != nil {
		return drainErr
	}
	if decodeErr != nil {
		return decodeErr
	}
	if got != want {
		return fmt.Errorf("core: worker %d received %d migrated masters, want %d", p, got, want)
	}
	return nil
}

// resyncMirrors rebuilds every mirror on the freshly installed membership by
// syncing all masters in one round. Mirror slots are the only state the
// migration round does not carry (they are derivable), so this single
// exchange completes the new workers' views.
func (e *Engine[V]) resyncMirrors() error {
	scope := e.scopeFor(true, false)
	return e.parallelWorkers(func(w *worker[V]) error {
		all := bitset.New(e.place.LocalCount(w.id))
		all.Fill()
		return w.syncMasters(all, scope)
	})
}

// rollbackResize reinstalls the old membership after a failed resize attempt
// and restores worker state from the pre-resize image: the inverse of
// whatever prefix of doResize ran. A permanently killed worker is revived
// and rebuilt through the cold-restart path before the restore.
func (e *Engine[V]) rollbackResize(old membership[V], cause error) error {
	e.stopHeartbeaters()
	if !sameWorkers(e.workers, old.ws) {
		// The failure hit after install: the new workers own started pools.
		stopPools(e.workers)
	}
	e.cfg.Workers = old.workers
	e.part = old.part
	e.partShared = old.partShared
	e.workers = old.ws
	if e.place != old.place {
		// Reinstalled under a fresh epoch so subsets stamped with the aborted
		// epoch still remap forward through the history.
		e.pushEpoch(old.place)
	}
	rz := e.tr.(comm.Resizer)
	if err := rz.Resize(old.workers); err != nil {
		return err
	}
	if victim, lost := killedWorker(cause); lost && victim < old.workers {
		e.privatizePart()
		e.part.Rebuild(victim)
		e.workers[victim] = e.newWorker(victim)
		if rv, ok := e.tr.(comm.Reviver); ok {
			rv.Revive(victim)
		}
		e.met.AddRestarts(1)
	}
	if err := e.restoreCheckpoint(); err != nil {
		return err
	}
	e.startHeartbeatersN(old.workers)
	return nil
}

// pushEpoch installs place as the current placement under a new membership
// epoch. The history only grows, so any live subset's stamp stays
// resolvable.
func (e *Engine[V]) pushEpoch(place partition.Placement) {
	e.placeHist = append(e.placeHist, place)
	e.memberEpoch = len(e.placeHist) - 1
	e.place = place
}

// makePlacement builds the engine's configured placement flavor for n
// workers.
func (e *Engine[V]) makePlacement(n int) partition.Placement {
	if e.cfg.UseHashPlacement {
		return partition.NewHash(e.g.NumVertices(), n)
	}
	return partition.NewRange(e.g.NumVertices(), n)
}

// stopPools joins and clears the parfor pools of ws. A stopped pool must
// never be reused (parforT would send on a closed channel), so the field is
// nilled.
func stopPools[V any](ws []*worker[V]) {
	for _, w := range ws {
		if w != nil && w.pool != nil {
			w.pool.stop()
			w.pool = nil
		}
	}
}

// sameWorkers reports whether a and b are the same worker slice (rollback
// uses it to tell pre-install from post-install failures).
func sameWorkers[V any](a, b []*worker[V]) bool {
	return len(a) == len(b) && (len(a) == 0 || a[0] == b[0])
}
