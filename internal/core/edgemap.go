package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"time"

	"flash/graph"
	"flash/internal/comm"
	"flash/metrics"
)

// Callback types for EdgeMap, mirroring the paper's signatures with the edge
// weight added (unweighted graphs pass 0):
//
//	F(s, d, w) bool — edge guard, checked per active edge
//	M(s, d, w) V    — returns the tentative new value of the target d
//	C(d) bool       — target pre-condition ("update at most once" helper)
//	R(t, cur) V     — associative+commutative reduction of a tentative value
//	                  into the target's accumulated value (push mode only)
type (
	EdgeF[V any] func(s, d Vtx[V], w float32) bool
	EdgeM[V any] func(s, d Vtx[V], w float32) V
	EdgeC[V any] func(d Vtx[V]) bool
	EdgeR[V any] func(t V, cur V) V
)

// EdgeMap is the paper's EDGEMAP: it applies M over the active edges
// {(s,d) ∈ H | s ∈ U ∧ C(d)} that pass F and returns the subset of updated
// targets. The propagation mode is chosen by the density rule unless forced
// by opts.Mode or the engine configuration; a nil R forces pull mode
// (§III-A).
func (e *Engine[V]) EdgeMap(U *Subset, H EdgeSet[V], F EdgeF[V], M EdgeM[V], C EdgeC[V], R EdgeR[V], opts StepOpts) *Subset {
	e.checkSubset(U)
	mode := opts.Mode
	if mode == Auto {
		mode = e.cfg.Mode
	}
	if mode == Auto {
		switch {
		case R == nil:
			mode = Pull
		case !H.SupportsIn():
			mode = Push
		case !H.SupportsOut():
			mode = Pull
		default:
			if e.isDense(U, H) {
				mode = Pull
			} else {
				mode = Push
			}
		}
	}
	if mode == Pull {
		return e.EdgeMapDense(U, H, F, M, C, opts)
	}
	return e.EdgeMapSparse(U, H, F, M, C, R, opts)
}

// isDense applies Ligra's density rule: |U| + outDegree(U) > |E|/threshold.
// The degree sum runs driver-side and early-exits the moment the running sum
// crosses the budget: small frontiers cost O(|U|) O(1) hint calls and no
// worker fan-out, and even the worst case stops after at most budget+1 hint
// visits instead of always touching every member on every Auto-mode EdgeMap.
func (e *Engine[V]) isDense(U *Subset, H EdgeSet[V]) bool {
	budget := e.g.NumEdges() / e.cfg.DenseThreshold
	if U.Size() > budget {
		return true
	}
	sum := U.Size()
	for _, w := range e.workers {
		w := w
		U.local[w.id].Range(func(l int) bool {
			sum += H.OutDegreeHint(&w.ctx, e.place.GlobalID(w.id, l))
			return sum <= budget
		})
		if sum > budget {
			return true
		}
	}
	return false
}

// EdgeMapSparse is the push kernel (paper Algorithm 6 + §IV-A's three-phase
// distributed procedure): active masters push tentative values along their
// H-out-edges; per-target partials are reduced locally, shipped to the
// target's master, reduced again with the current value, applied, and the
// final values are synchronized back to mirrors. Two exchange rounds.
//
//flash:hotpath
//flash:deterministic
func (e *Engine[V]) EdgeMapSparse(U *Subset, H EdgeSet[V], F EdgeF[V], M EdgeM[V], C EdgeC[V], R EdgeR[V], opts StepOpts) *Subset {
	e.checkSubset(U)
	if R == nil {
		panic("core: EdgeMapSparse requires a reduce function R")
	}
	if !H.SupportsOut() {
		panic("core: edge set does not support push mode")
	}
	if !H.Physical() && !e.cfg.FullMirrors {
		panic("core: virtual edge sets require Config.FullMirrors (communication beyond neighborhood)")
	}
	if e.cfg.BlockGraph != nil {
		e.met.AddBlockSteps(0, 1)
	}
	return e.execStep(U.Size(), func(out *Subset) error {
		scope := e.scopeFor(H.Physical(), opts.NoSync)
		return e.parallelWorkers(func(w *worker[V]) error {
			membership := U.local[w.id]
			// Out-of-core: plan the sparse superstep's block working set from
			// the frontier before any edge is touched, and flush the cache
			// counters into the metric shard however the step ends.
			w.planSparseBlocks(membership)
			defer w.flushBlockStats()

			// Phase 1: push along out-edges, accumulating per-target partials
			// into per-thread shards indexed by slot (every push target of a
			// physical set is a local master or mirror; virtual sets run
			// under FullMirrors where every vertex is resident) — no locks on
			// the per-edge path. The push closure is hoisted out of the
			// source loop (one allocation per chunk, not per source).
			w.acc[0].set.Reset()
			w.timeBlock(metrics.Compute, func() {
				visitor := func(a *accShard[V]) func(l int) {
					var uv Vtx[V]
					push := func(d graph.VID, wt float32) bool {
						ds := w.st.Slot(d)
						dv := w.vtxAt(d, &w.cur[ds])
						if C != nil && !C(dv) {
							return true
						}
						if F != nil && !F(uv, dv, wt) {
							return true
						}
						t := M(uv, dv, wt)
						if a.set.TestAndSet(ds) {
							a.val[ds] = R(t, a.val[ds])
						} else {
							a.val[ds] = t
						}
						return true
					}
					return func(l int) {
						u := e.place.GlobalID(w.id, l)
						uv = w.vtxMaster(u, l)
						H.Out(&w.ctx, u, push)
					}
				}
				// Density rule as in forEachMember, plus an edge-work floor:
				// the parallel path materializes Threads-1 slot-sized shards
				// and pays an O(SlotCount) merge scan per shard, so it only
				// engages when this worker's pushed-edge work amortizes that
				// cost. Auto-mode sparse frontiers carry at most
				// |E|/DenseThreshold edges (bigger ones go dense), so on most
				// graphs only forced-push workloads ever materialize the
				// extra shards.
				parallel := false
				if e.cfg.Threads > 1 && U.Size()*16 >= membership.Cap() {
					floor := w.st.SlotCount()
					work := 0
					membership.Range(func(l int) bool {
						work += H.OutDegreeHint(&w.ctx, e.place.GlobalID(w.id, l))
						return work < floor
					})
					parallel = work >= floor
				}
				if !parallel {
					f := visitor(&w.acc[0])
					membership.Range(func(l int) bool {
						f(l)
						return true
					})
				} else {
					w.ensureAccShards()
					w.parforT(membership.Cap(), func(t, lo, hi int) {
						f := visitor(&w.acc[t])
						for l := lo; l < hi; l++ {
							if membership.Test(l) {
								f(l)
							}
						}
					})
					w.mergeAcc(R)
				}
			})

			// Phase 2: route partials to target masters (exchange round 1).
			// The master region of the slot space folds locally (slot ==
			// local index); the mirror region walks the mirror bitmap in
			// ascending gid order, so every destination's frame carries
			// sorted vids: message bytes are deterministic and the delta
			// encoding stays tight.
			w.pendSet.Reset()
			sstart := time.Now()
			msgs := 0
			var sendErr error
			acc := &w.acc[0]
			masters := w.st.MasterCount()
			accWords := acc.set.Words()
			foldWord := func(word uint64, base int) {
				for word != 0 {
					l := base + bits.TrailingZeros64(word)
					word &= word - 1
					w.foldPend(l, &acc.val[l], R)
				}
			}
			for wi := 0; wi < masters>>6; wi++ {
				foldWord(accWords[wi], wi<<6)
			}
			if rem := masters & 63; rem != 0 {
				foldWord(accWords[masters>>6]&(1<<rem-1), masters&^63)
			}
			w.st.RangeMirrors(func(ds int, gid graph.VID) bool {
				if !acc.set.Test(ds) {
					return true
				}
				if sendErr = w.appendKV(e.place.Owner(gid), gid, &acc.val[ds]); sendErr != nil {
					return false
				}
				msgs++
				return true
			})
			w.met.Add(metrics.Serialization, time.Since(sstart))
			w.met.AddTraffic(uint64(msgs), 0)
			if sendErr != nil {
				return sendErr
			}
			if err := w.flushAll(); err != nil {
				return err
			}
			if err := e.tr.EndRound(w.id); err != nil {
				return err
			}
			if err := w.drainKV(func(gid graph.VID, val *V) {
				w.foldPend(e.place.LocalIndex(gid), val, R)
			}); err != nil {
				return err
			}

			// Phase 3: masters apply the reduction against current values,
			// in parallel over 64-aligned chunks (distinct local indices map
			// to distinct masters, so cur writes never collide).
			outBits := out.local[w.id]
			w.timeBlock(metrics.Compute, func() {
				pendWords := w.pendSet.Words()
				w.parfor(w.pendSet.Cap(), func(lo, hi int) {
					for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
						word := pendWords[wi]
						base := wi << 6
						for word != 0 {
							l := base + bits.TrailingZeros64(word)
							word &= word - 1
							w.cur[l] = R(w.pendVal[l], w.cur[l])
							outBits.Set(l)
						}
					}
				})
			})

			// Exchange round 2: broadcast finals to mirrors.
			if scope != scopeNone {
				return w.syncMasters(w.pendSet, scope)
			}
			return nil
		})
	})
}

// mergeAcc folds the phase-1 shards of threads 1.. into shard 0, parallel
// over 64-aligned chunks of the slot space (concurrent bitset writes stay
// word-disjoint). Shard words are consumed (zeroed) as they merge, so only
// shard 0 needs resetting next superstep. The fold visits threads in
// ascending order, keeping the reduction order deterministic for a fixed
// Threads setting.
//
//flash:hotpath
//flash:phase(compute)
func (w *worker[V]) mergeAcc(R EdgeR[V]) {
	a0 := &w.acc[0]
	w.parfor(a0.set.Cap(), func(lo, hi int) {
		for t := 1; t < len(w.acc); t++ {
			a := &w.acc[t]
			if a.val == nil {
				continue
			}
			words := a.set.Words()
			for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
				word := words[wi]
				if word == 0 {
					continue
				}
				words[wi] = 0
				base := wi << 6
				for word != 0 {
					d := base + bits.TrailingZeros64(word)
					word &= word - 1
					if a0.set.TestAndSet(d) {
						a0.val[d] = R(a.val[d], a0.val[d])
					} else {
						a0.val[d] = a.val[d]
					}
				}
			}
		}
	})
}

// foldPend merges an incoming partial for local master l. It copies the
// value, so callers may pass pointers into decode scratch or accumulators.
//
//flash:hotpath
//flash:phase(compute)
func (w *worker[V]) foldPend(l int, val *V, R EdgeR[V]) {
	if w.pendSet.TestAndSet(l) {
		w.pendVal[l] = R(*val, w.pendVal[l])
	} else {
		w.pendVal[l] = *val
	}
}

// EdgeMapDense is the pull kernel (paper Algorithm 5): after broadcasting
// the frontier bitmap, every worker scans its own masters' H-in-edges,
// sequentially applying M for in-neighbors in U until C fails, then
// synchronizes updated masters. One value-exchange round plus the frontier
// round.
//
//flash:hotpath
func (e *Engine[V]) EdgeMapDense(U *Subset, H EdgeSet[V], F EdgeF[V], M EdgeM[V], C EdgeC[V], opts StepOpts) *Subset {
	e.checkSubset(U)
	if !H.SupportsIn() {
		panic("core: edge set does not support pull mode")
	}
	if !H.Physical() && !e.cfg.FullMirrors {
		panic("core: virtual edge sets require Config.FullMirrors (communication beyond neighborhood)")
	}
	if e.cfg.BlockGraph != nil {
		e.met.AddBlockSteps(1, 0)
	}
	return e.execStep(U.Size(), func(out *Subset) error {
		scope := e.scopeFor(H.Physical(), opts.NoSync)
		return e.parallelWorkers(func(w *worker[V]) error {
			// Out-of-core: the pull phase streams every block the worker's
			// masters touch; switch the cache to dense (sequential) accounting.
			w.beginDenseBlocks()
			defer w.flushBlockStats()
			if err := w.broadcastFrontier(U); err != nil {
				return err
			}

			outBits := out.local[w.id]
			updated := w.nextSet
			updated.Reset()
			w.timeBlock(metrics.Compute, func() {
				w.parfor(e.place.LocalCount(w.id), func(lo, hi int) {
					// The pull closure is hoisted out of the target loop and
					// mutates chunk-local state: one allocation per chunk
					// instead of one per local master.
					var work V
					var dv Vtx[V]
					applied := false
					pull := func(s graph.VID, wt float32) bool {
						if C != nil && !C(dv) {
							return false
						}
						if !w.frontier.Test(int(s)) {
							return true
						}
						sv := w.vtx(s)
						if F != nil && !F(sv, dv, wt) {
							return true
						}
						work = M(sv, dv, wt)
						applied = true
						return true
					}
					for l := lo; l < hi; l++ {
						gid := e.place.GlobalID(w.id, l)
						work = w.cur[l]
						dv = w.vtxAt(gid, &work)
						applied = false
						H.In(&w.ctx, gid, pull)
						if applied {
							w.next[l] = work
							updated.Set(l)
							outBits.Set(l)
						}
					}
				})
				w.publishNext(updated)
			})
			if scope != scopeNone {
				return w.syncMasters(updated, scope)
			}
			return nil
		})
	})
}

// Frontier frame tags: the first payload byte selects the encoding.
const (
	frontierDense  = 0x00 // u32 word offset + raw 64-bit words
	frontierSparse = 0x01 // uvarint count + uvarint first vid + uvarint gaps
)

// encodeFrontier serializes the non-zero word span [lo, hi) of a frontier
// bitmap into scratch, choosing between the dense word-span layout and a
// sparse ascending vid list — whichever frame is smaller. A pull step forced
// over a tiny frontier (R == nil) used to ship the full word span; the sparse
// layout makes that broadcast O(|U|) bytes instead. The sparse attempt aborts
// as soon as it reaches the dense size, so encoding never costs more than
// O(min(|U|, span)) work.
//
//flash:hotpath
//flash:deterministic
func encodeFrontier(scratch []byte, words []uint64, lo, hi int) []byte {
	denseSize := 5 + 8*(hi-lo)
	cnt := 0
	for _, wd := range words[lo:hi] {
		cnt += bits.OnesCount64(wd)
	}
	scratch = append(scratch[:0], frontierSparse)
	scratch = binary.AppendUvarint(scratch, uint64(cnt))
	prev := -1
	left := cnt
	for wi := lo; wi < hi && len(scratch) < denseSize; wi++ {
		word := words[wi]
		base := wi << 6
		for word != 0 && len(scratch) < denseSize {
			v := base + bits.TrailingZeros64(word)
			word &= word - 1
			if prev < 0 {
				scratch = binary.AppendUvarint(scratch, uint64(v))
			} else {
				scratch = binary.AppendUvarint(scratch, uint64(v-prev))
			}
			prev = v
			left--
		}
	}
	if left == 0 && len(scratch) < denseSize {
		return scratch
	}
	scratch = append(scratch[:0], frontierDense, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(scratch[1:], uint32(lo))
	for _, wd := range words[lo:hi] {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], wd)
		scratch = append(scratch, b[:]...)
	}
	return scratch
}

// decodeFrontier ORs one frontier frame into the global bitmap words. It
// validates bounds and varint framing so a corrupt frame fails the superstep
// instead of corrupting memory.
//
//flash:hotpath
func decodeFrontier(data []byte, words []uint64) error {
	if len(data) == 0 {
		return fmt.Errorf("core: empty frontier frame")
	}
	body := data[1:]
	switch data[0] {
	case frontierDense:
		if len(body) < 4 || (len(body)-4)%8 != 0 {
			return fmt.Errorf("core: bad dense frontier frame of %d bytes", len(data))
		}
		off := int(binary.LittleEndian.Uint32(body))
		nw := (len(body) - 4) / 8
		if off < 0 || off+nw > len(words) {
			return fmt.Errorf("core: dense frontier frame out of range (off=%d words=%d)", off, nw)
		}
		for i := 0; i < nw; i++ {
			words[off+i] |= binary.LittleEndian.Uint64(body[4+8*i:])
		}
		return nil
	case frontierSparse:
		cnt, k := binary.Uvarint(body)
		if k <= 0 || cnt > uint64(len(words))*64 {
			return fmt.Errorf("core: bad sparse frontier count")
		}
		body = body[k:]
		v := uint64(0)
		for i := uint64(0); i < cnt; i++ {
			d, k := binary.Uvarint(body)
			if k <= 0 {
				return fmt.Errorf("core: truncated sparse frontier frame")
			}
			body = body[k:]
			if i == 0 {
				v = d
			} else {
				v += d
			}
			if v >= uint64(len(words))*64 {
				return fmt.Errorf("core: sparse frontier vid %d out of range", v)
			}
			words[v>>6] |= 1 << (v & 63)
		}
		if len(body) != 0 {
			return fmt.Errorf("core: %d trailing bytes in sparse frontier frame", len(body))
		}
		return nil
	default:
		return fmt.Errorf("core: unknown frontier frame tag 0x%02x", data[0])
	}
}

// broadcastFrontier shares the members of U with every worker (one exchange
// round) and materializes them in w.frontier as a global bitmap. Frames carry
// either the word span of the bitmap or a sparse vid list, whichever is
// smaller for this worker's members.
//
//flash:hotpath
//flash:deterministic
//flash:phase(ship)
func (w *worker[V]) broadcastFrontier(U *Subset) error {
	e := w.eng
	sstart := time.Now()
	w.frontier.Reset()
	U.local[w.id].Range(func(l int) bool {
		w.frontier.Set(int(e.place.GlobalID(w.id, l)))
		return true
	})
	words := w.frontier.Words()
	lo, hi := 0, len(words)
	for lo < hi && words[lo] == 0 {
		lo++
	}
	for hi > lo && words[hi-1] == 0 {
		hi--
	}
	if hi > lo && e.cfg.Workers > 1 {
		w.fenc = encodeFrontier(w.fenc, words, lo, hi)
		// One pooled payload per destination: delivered frames are recycled
		// by the receiver's drain, so destinations must not share a buffer.
		for to := 0; to < e.cfg.Workers; to++ {
			if to == w.id {
				continue
			}
			payload := comm.GetBufN(len(w.fenc))
			copy(payload, w.fenc)
			if err := w.send(to, payload); err != nil {
				w.met.Add(metrics.Serialization, time.Since(sstart))
				return err
			}
		}
		w.met.AddTraffic(uint64(e.cfg.Workers-1), 0)
	}
	w.met.Add(metrics.Serialization, time.Since(sstart))
	if err := e.tr.EndRound(w.id); err != nil {
		return err
	}
	cstart := time.Now()
	var frameErr error
	drainErr := e.tr.Drain(w.id, func(_ int, data []byte) {
		if err := decodeFrontier(data, words); err != nil && frameErr == nil {
			frameErr = err
		}
	})
	w.met.Add(metrics.Communication, time.Since(cstart))
	if drainErr != nil {
		return drainErr
	}
	return frameErr
}
