package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"time"

	"flash/graph"
	"flash/internal/comm"
	"flash/metrics"
)

// Callback types for EdgeMap, mirroring the paper's signatures with the edge
// weight added (unweighted graphs pass 0):
//
//	F(s, d, w) bool — edge guard, checked per active edge
//	M(s, d, w) V    — returns the tentative new value of the target d
//	C(d) bool       — target pre-condition ("update at most once" helper)
//	R(t, cur) V     — associative+commutative reduction of a tentative value
//	                  into the target's accumulated value (push mode only)
type (
	EdgeF[V any] func(s, d Vtx[V], w float32) bool
	EdgeM[V any] func(s, d Vtx[V], w float32) V
	EdgeC[V any] func(d Vtx[V]) bool
	EdgeR[V any] func(t V, cur V) V
)

// EdgeMap is the paper's EDGEMAP: it applies M over the active edges
// {(s,d) ∈ H | s ∈ U ∧ C(d)} that pass F and returns the subset of updated
// targets. The propagation mode is chosen by the density rule unless forced
// by opts.Mode or the engine configuration; a nil R forces pull mode
// (§III-A).
func (e *Engine[V]) EdgeMap(U *Subset, H EdgeSet[V], F EdgeF[V], M EdgeM[V], C EdgeC[V], R EdgeR[V], opts StepOpts) *Subset {
	e.checkSubset(U)
	mode := opts.Mode
	if mode == Auto {
		mode = e.cfg.Mode
	}
	if mode == Auto {
		switch {
		case R == nil:
			mode = Pull
		case !H.SupportsIn():
			mode = Push
		case !H.SupportsOut():
			mode = Pull
		default:
			if e.isDense(U, H) {
				mode = Pull
			} else {
				mode = Push
			}
		}
	}
	if mode == Pull {
		return e.EdgeMapDense(U, H, F, M, C, opts)
	}
	return e.EdgeMapSparse(U, H, F, M, C, R, opts)
}

// isDense applies Ligra's density rule: |U| + outDegree(U) > |E|/threshold.
func (e *Engine[V]) isDense(U *Subset, H EdgeSet[V]) bool {
	budget := e.g.NumEdges() / e.cfg.DenseThreshold
	if U.Size() > budget {
		return true
	}
	return U.Size()+e.degreeSum(U, H) > budget
}

// EdgeMapSparse is the push kernel (paper Algorithm 6 + §IV-A's three-phase
// distributed procedure): active masters push tentative values along their
// H-out-edges; per-target partials are reduced locally, shipped to the
// target's master, reduced again with the current value, applied, and the
// final values are synchronized back to mirrors. Two exchange rounds.
func (e *Engine[V]) EdgeMapSparse(U *Subset, H EdgeSet[V], F EdgeF[V], M EdgeM[V], C EdgeC[V], R EdgeR[V], opts StepOpts) *Subset {
	e.checkSubset(U)
	if R == nil {
		panic("core: EdgeMapSparse requires a reduce function R")
	}
	if !H.SupportsOut() {
		panic("core: edge set does not support push mode")
	}
	if !H.Physical() && !e.cfg.FullMirrors {
		panic("core: virtual edge sets require Config.FullMirrors (communication beyond neighborhood)")
	}
	return e.execStep(U.Size(), func(out *Subset) error {
		scope := e.scopeFor(H.Physical(), opts.NoSync)
		return e.parallelWorkers(func(w *worker[V]) error {
			membership := U.local[w.id]

			// Phase 1: push along out-edges, accumulating per-target partials
			// into per-thread shards — no locks on the per-edge path. The
			// push closure is hoisted out of the source loop (one allocation
			// per chunk, not per source).
			w.acc[0].set.Reset()
			w.timeBlock(metrics.Compute, func() {
				visitor := func(a *accShard[V]) func(l int) {
					var uv Vtx[V]
					push := func(d graph.VID, wt float32) bool {
						dv := w.vtx(d)
						if C != nil && !C(dv) {
							return true
						}
						if F != nil && !F(uv, dv, wt) {
							return true
						}
						t := M(uv, dv, wt)
						if a.set.TestAndSet(int(d)) {
							a.val[d] = R(t, a.val[d])
						} else {
							a.val[d] = t
						}
						return true
					}
					return func(l int) {
						u := e.place.GlobalID(w.id, l)
						uv = w.vtx(u)
						H.Out(&w.ctx, u, push)
					}
				}
				// Same density rule as forEachMember: bit-walk sparse
				// frontiers sequentially, scan dense ones across threads.
				if e.cfg.Threads == 1 || U.Size()*16 < membership.Cap() {
					f := visitor(&w.acc[0])
					membership.Range(func(l int) bool {
						f(l)
						return true
					})
				} else {
					w.parforT(membership.Cap(), func(t, lo, hi int) {
						f := visitor(&w.acc[t])
						for l := lo; l < hi; l++ {
							if membership.Test(l) {
								f(l)
							}
						}
					})
					w.mergeAcc(R)
				}
			})

			// Phase 2: route partials to target masters (exchange round 1).
			// The bitset walk is ascending, so every destination's frame
			// carries sorted vids: message bytes are deterministic and the
			// delta encoding stays tight.
			w.pendSet.Reset()
			sstart := time.Now()
			msgs := 0
			var sendErr error
			acc := &w.acc[0]
			acc.set.Range(func(d int) bool {
				gid := graph.VID(d)
				o := e.place.Owner(gid)
				if o == w.id {
					w.foldPend(e.place.LocalIndex(gid), &acc.val[d], R)
				} else {
					if sendErr = w.appendKV(o, gid, &acc.val[d]); sendErr != nil {
						return false
					}
					msgs++
				}
				return true
			})
			w.met.Add(metrics.Serialization, time.Since(sstart))
			w.met.AddTraffic(uint64(msgs), 0)
			if sendErr != nil {
				return sendErr
			}
			if err := w.flushAll(); err != nil {
				return err
			}
			if err := e.tr.EndRound(w.id); err != nil {
				return err
			}
			if err := w.drainKV(func(gid graph.VID, val *V) {
				w.foldPend(e.place.LocalIndex(gid), val, R)
			}); err != nil {
				return err
			}

			// Phase 3: masters apply the reduction against current values,
			// in parallel over 64-aligned chunks (distinct local indices map
			// to distinct masters, so cur writes never collide).
			outBits := out.local[w.id]
			w.timeBlock(metrics.Compute, func() {
				pendWords := w.pendSet.Words()
				w.parfor(w.pendSet.Cap(), func(lo, hi int) {
					for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
						word := pendWords[wi]
						base := wi << 6
						for word != 0 {
							l := base + bits.TrailingZeros64(word)
							word &= word - 1
							gid := e.place.GlobalID(w.id, l)
							w.cur[gid] = R(w.pendVal[l], w.cur[gid])
							outBits.Set(l)
						}
					}
				})
			})

			// Exchange round 2: broadcast finals to mirrors.
			if scope != scopeNone {
				return w.syncMasters(w.pendSet, scope)
			}
			return nil
		})
	})
}

// mergeAcc folds the phase-1 shards of threads 1.. into shard 0, parallel
// over 64-aligned chunks of the global id space (concurrent bitset writes
// stay word-disjoint). Shard words are consumed (zeroed) as they merge, so
// only shard 0 needs resetting next superstep. The fold visits threads in
// ascending order, keeping the reduction order deterministic for a fixed
// Threads setting.
func (w *worker[V]) mergeAcc(R EdgeR[V]) {
	a0 := &w.acc[0]
	w.parfor(a0.set.Cap(), func(lo, hi int) {
		for t := 1; t < len(w.acc); t++ {
			a := &w.acc[t]
			words := a.set.Words()
			for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
				word := words[wi]
				if word == 0 {
					continue
				}
				words[wi] = 0
				base := wi << 6
				for word != 0 {
					d := base + bits.TrailingZeros64(word)
					word &= word - 1
					if a0.set.TestAndSet(d) {
						a0.val[d] = R(a.val[d], a0.val[d])
					} else {
						a0.val[d] = a.val[d]
					}
				}
			}
		}
	})
}

// foldPend merges an incoming partial for local master l. It copies the
// value, so callers may pass pointers into decode scratch or accumulators.
func (w *worker[V]) foldPend(l int, val *V, R EdgeR[V]) {
	if w.pendSet.TestAndSet(l) {
		w.pendVal[l] = R(*val, w.pendVal[l])
	} else {
		w.pendVal[l] = *val
	}
}

// EdgeMapDense is the pull kernel (paper Algorithm 5): after broadcasting
// the frontier bitmap, every worker scans its own masters' H-in-edges,
// sequentially applying M for in-neighbors in U until C fails, then
// synchronizes updated masters. One value-exchange round plus the frontier
// round.
func (e *Engine[V]) EdgeMapDense(U *Subset, H EdgeSet[V], F EdgeF[V], M EdgeM[V], C EdgeC[V], opts StepOpts) *Subset {
	e.checkSubset(U)
	if !H.SupportsIn() {
		panic("core: edge set does not support pull mode")
	}
	if !H.Physical() && !e.cfg.FullMirrors {
		panic("core: virtual edge sets require Config.FullMirrors (communication beyond neighborhood)")
	}
	return e.execStep(U.Size(), func(out *Subset) error {
		scope := e.scopeFor(H.Physical(), opts.NoSync)
		return e.parallelWorkers(func(w *worker[V]) error {
			if err := w.broadcastFrontier(U); err != nil {
				return err
			}

			outBits := out.local[w.id]
			updated := w.nextSet
			updated.Reset()
			w.timeBlock(metrics.Compute, func() {
				w.parfor(e.place.LocalCount(w.id), func(lo, hi int) {
					// The pull closure is hoisted out of the target loop and
					// mutates chunk-local state: one allocation per chunk
					// instead of one per local master.
					var work V
					var dv Vtx[V]
					applied := false
					pull := func(s graph.VID, wt float32) bool {
						if C != nil && !C(dv) {
							return false
						}
						if !w.frontier.Test(int(s)) {
							return true
						}
						sv := w.vtx(s)
						if F != nil && !F(sv, dv, wt) {
							return true
						}
						work = M(sv, dv, wt)
						applied = true
						return true
					}
					for l := lo; l < hi; l++ {
						gid := e.place.GlobalID(w.id, l)
						work = w.cur[gid]
						dv = w.vtxAt(gid, &work)
						applied = false
						H.In(&w.ctx, gid, pull)
						if applied {
							w.next[l] = work
							updated.Set(l)
							outBits.Set(l)
						}
					}
				})
				w.publishNext(updated)
			})
			if scope != scopeNone {
				return w.syncMasters(updated, scope)
			}
			return nil
		})
	})
}

// broadcastFrontier shares the members of U with every worker (one exchange
// round) and materializes them in w.frontier as a global bitmap. Members are
// encoded as word-spans of a global-position bitmap.
func (w *worker[V]) broadcastFrontier(U *Subset) error {
	e := w.eng
	sstart := time.Now()
	w.frontier.Reset()
	U.local[w.id].Range(func(l int) bool {
		w.frontier.Set(int(e.place.GlobalID(w.id, l)))
		return true
	})
	words := w.frontier.Words()
	lo, hi := 0, len(words)
	for lo < hi && words[lo] == 0 {
		lo++
	}
	for hi > lo && words[hi-1] == 0 {
		hi--
	}
	if hi > lo {
		// One pooled payload per destination: delivered frames are recycled
		// by the receiver's drain, so destinations must not share a buffer.
		for to := 0; to < e.cfg.Workers; to++ {
			if to == w.id {
				continue
			}
			payload := comm.GetBufN(4 + 8*(hi-lo))
			binary.LittleEndian.PutUint32(payload, uint32(lo))
			for i, wd := range words[lo:hi] {
				binary.LittleEndian.PutUint64(payload[4+8*i:], wd)
			}
			if err := w.send(to, payload); err != nil {
				w.met.Add(metrics.Serialization, time.Since(sstart))
				return err
			}
		}
		w.met.AddTraffic(uint64(e.cfg.Workers-1), 0)
	}
	w.met.Add(metrics.Serialization, time.Since(sstart))
	if err := e.tr.EndRound(w.id); err != nil {
		return err
	}
	cstart := time.Now()
	var frameErr error
	drainErr := e.tr.Drain(w.id, func(_ int, data []byte) {
		if len(data) < 4 || (len(data)-4)%8 != 0 {
			if frameErr == nil {
				frameErr = fmt.Errorf("core: bad frontier frame of %d bytes", len(data))
			}
			return
		}
		off := int(binary.LittleEndian.Uint32(data))
		for i := 0; i < (len(data)-4)/8; i++ {
			words[off+i] |= binary.LittleEndian.Uint64(data[4+8*i:])
		}
	})
	w.met.Add(metrics.Communication, time.Since(cstart))
	if drainErr != nil {
		return drainErr
	}
	return frameErr
}
