package core

import (
	"errors"
	"testing"
	"time"

	"flash/graph"
	"flash/internal/comm"
)

// resizeBFS runs BFS on e, calling resize(stepsDone) after every EdgeMap
// superstep so tests can reshape the membership mid-traversal.
func resizeBFS(t *testing.T, e *Engine[bfsProps], root graph.VID, resize func(step int)) []int32 {
	t.Helper()
	e.VertexMap(e.All(), nil, func(v Vtx[bfsProps]) bfsProps {
		if v.ID == root {
			return bfsProps{Dis: 0}
		}
		return bfsProps{Dis: inf}
	}, StepOpts{})
	u := e.FromIDs(root)
	step := 0
	for u.Size() != 0 {
		u = e.EdgeMap(u, BaseE[bfsProps](),
			nil,
			func(s, d Vtx[bfsProps], _ float32) bfsProps { return bfsProps{Dis: s.Val.Dis + 1} },
			func(d Vtx[bfsProps]) bool { return d.Val.Dis == inf },
			func(v, cur bfsProps) bfsProps { return v },
			StepOpts{})
		step++
		if resize != nil {
			resize(step)
		}
	}
	out := make([]int32, e.Graph().NumVertices())
	e.Gather(func(v graph.VID, val *bfsProps) { out[v] = val.Dis })
	return out
}

func checkBFS(t *testing.T, got, want []int32, label string) {
	t.Helper()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: dist[%d]=%d want %d", label, v, got[v], want[v])
		}
	}
}

func TestResizeMidRunMatchesFixedMembership(t *testing.T) {
	g := graph.GenErdosRenyi(200, 900, 17)
	want := seqBFS(g, 0)
	for _, hash := range []bool{false, true} {
		e := mustEngine(t, g, Config{Workers: 2, UseHashPlacement: hash, CheckpointEvery: 2})
		got := resizeBFS(t, e, 0, func(step int) {
			var err error
			switch step {
			case 1:
				err = e.Resize(5)
			case 3:
				err = e.Resize(3)
			}
			if err != nil {
				t.Fatalf("hash=%v resize after step %d: %v", hash, step, err)
			}
		})
		checkBFS(t, got, want, "resized run")
		if e.Workers() != 3 {
			t.Fatalf("hash=%v workers=%d want 3", hash, e.Workers())
		}
		if e.Metrics().Resizes != 2 {
			t.Fatalf("hash=%v resizes=%d want 2", hash, e.Metrics().Resizes)
		}
		if e.Metrics().MigratedBytes == 0 {
			t.Fatalf("hash=%v no migrated bytes recorded", hash)
		}
		if err := e.CheckMirrorCoherence(func(a, b bfsProps) bool { return a == b }); err != nil {
			t.Fatalf("hash=%v after resize: %v", hash, err)
		}
	}
}

func TestResizeWithoutCheckpointing(t *testing.T) {
	// Resize does not require checkpointing — it is just not crash-safe
	// without it.
	g := graph.GenPath(40)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, Config{Workers: 3})
	got := resizeBFS(t, e, 0, func(step int) {
		if step == 2 {
			if err := e.Resize(2); err != nil {
				t.Fatal(err)
			}
		}
	})
	checkBFS(t, got, want, "uncheckpointed resize")
}

func TestResizeSubsetsRemapAcrossEpochs(t *testing.T) {
	g := graph.GenErdosRenyi(120, 500, 5)
	e := mustEngine(t, g, Config{Workers: 2})
	s := e.FromIDs(3, 17, 64, 118)
	before := e.IDs(s)
	if err := e.Resize(4); err != nil {
		t.Fatal(err)
	}
	// The stale subset must remap lazily and keep its membership.
	if !e.Contains(s, 17) || e.Contains(s, 18) {
		t.Fatal("membership changed across resize")
	}
	after := e.IDs(s)
	if len(after) != len(before) {
		t.Fatalf("IDs: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("IDs: %v -> %v", before, after)
		}
	}
	if s.Size() != 4 {
		t.Fatalf("size=%d want 4", s.Size())
	}
	// And stay usable as a frontier.
	e.Add(s, 0)
	if s.Size() != 5 {
		t.Fatalf("size=%d want 5 after Add", s.Size())
	}
}

func TestResizeRejectsBadCount(t *testing.T) {
	g := graph.GenPath(8)
	e := mustEngine(t, g, Config{Workers: 2})
	err := e.Resize(0)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("Resize(0): err=%v, want ConfigError", err)
	}
	// Same-count resize is a no-op, not an error.
	if err := e.Resize(2); err != nil {
		t.Fatalf("Resize(same): %v", err)
	}
	if e.Metrics().Resizes != 0 {
		t.Fatal("no-op resize counted")
	}
}

// nonResizer hides the Resize method of a Mem transport.
type nonResizer struct{ m *comm.Mem }

func (f nonResizer) Workers() int                            { return f.m.Workers() }
func (f nonResizer) Send(from, to int, data []byte) error    { return f.m.Send(from, to, data) }
func (f nonResizer) EndRound(from int) error                 { return f.m.EndRound(from) }
func (f nonResizer) Drain(to int, h func(int, []byte)) error { return f.m.Drain(to, h) }
func (f nonResizer) Heartbeat(from int) error                { return f.m.Heartbeat(from) }
func (f nonResizer) Abort(err error)                         { f.m.Abort(err) }
func (f nonResizer) Reset()                                  { f.m.Reset() }
func (f nonResizer) SetDrainTimeout(d time.Duration)         { f.m.SetDrainTimeout(d) }
func (f nonResizer) Stats() comm.Stats                       { return f.m.Stats() }
func (f nonResizer) Close() error                            { return f.m.Close() }

func TestResizeUnsupportedTransportIsTerminal(t *testing.T) {
	g := graph.GenPath(8)
	e := mustEngine(t, g, Config{Workers: 2, Transport: nonResizer{comm.NewMem(2)}})
	if err := e.Resize(3); err == nil {
		t.Fatal("Resize over non-Resizer transport succeeded")
	}
	if e.Err() == nil {
		t.Fatal("unsupported resize did not mark the engine failed")
	}
}

func TestResizePolicyDrivesAutomaticScaling(t *testing.T) {
	g := graph.GenErdosRenyi(150, 600, 23)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, Config{
		Workers:         2,
		CheckpointEvery: 2,
		ResizePolicy: func(s StepInfo) int {
			// Scale out at the third superstep, back in at the fifth.
			switch s.Superstep {
			case 3:
				return 6
			case 5:
				return 3
			}
			return 0
		},
	})
	var got []int32
	if _, err := e.Run(func() error {
		got = resizeBFS(t, e, 0, nil)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkBFS(t, got, want, "policy-resized run")
	if e.Metrics().Resizes != 2 {
		t.Fatalf("resizes=%d want 2", e.Metrics().Resizes)
	}
	if e.Workers() != 3 {
		t.Fatalf("workers=%d want 3", e.Workers())
	}
}

// resizeFaultCfg is the common chaos configuration for mid-migration fault
// tests: short liveness windows so a killed migration participant converts
// to ErrPeerDead quickly, and checkpointing on so rollback has an image.
func resizeFaultCfg(plan comm.FaultPlan) Config {
	return Config{
		Workers:         2,
		CheckpointEvery: 1,
		MaxRecoveries:   4,
		HeartbeatEvery:  10 * time.Millisecond,
		DrainTimeout:    200 * time.Millisecond,
		FaultPlan:       &plan,
	}
}

func TestResizeKilledMidMigrationRollsBackAndRetries(t *testing.T) {
	g := graph.GenErdosRenyi(160, 700, 31)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, resizeFaultCfg(comm.FaultPlan{
		ResizeKills: []comm.ResizeKill{{Worker: 1, Phase: 0}},
	}))
	got := resizeBFS(t, e, 0, func(step int) {
		if step == 2 {
			if err := e.Resize(5); err != nil {
				t.Fatalf("resize: %v", err)
			}
		}
	})
	checkBFS(t, got, want, "kill-during-resize run")
	m := e.Metrics()
	if m.Resizes != 1 || m.Recoveries == 0 || m.Restarts == 0 {
		t.Fatalf("resizes=%d recoveries=%d restarts=%d; want 1/>0/>0",
			m.Resizes, m.Recoveries, m.Restarts)
	}
}

func TestResizeCorruptMigrationFrameRollsBack(t *testing.T) {
	g := graph.GenErdosRenyi(160, 700, 31)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, resizeFaultCfg(comm.FaultPlan{
		Seed:           9,
		ResizeCorrupts: []comm.ResizeFrameCorrupt{{From: 0, To: 1, Phase: 0}},
	}))
	got := resizeBFS(t, e, 0, func(step int) {
		if step == 2 {
			if err := e.Resize(4); err != nil {
				t.Fatalf("resize: %v", err)
			}
		}
	})
	checkBFS(t, got, want, "corrupt-migration run")
	m := e.Metrics()
	if m.Resizes != 1 || m.Recoveries == 0 {
		t.Fatalf("resizes=%d recoveries=%d; want 1/>0", m.Resizes, m.Recoveries)
	}
	if m.Restarts != 0 {
		t.Fatalf("corruption caused %d cold restarts; rollback alone should repair it", m.Restarts)
	}
}

func TestResizeDelayedMigrationFramesStillComplete(t *testing.T) {
	g := graph.GenErdosRenyi(160, 700, 31)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, resizeFaultCfg(comm.FaultPlan{
		ResizeDelays: []comm.ResizeFrameDelay{{Worker: 0, Phase: 0}, {Worker: 1, Phase: 0}},
	}))
	got := resizeBFS(t, e, 0, func(step int) {
		if step == 2 {
			if err := e.Resize(4); err != nil {
				t.Fatalf("resize: %v", err)
			}
		}
	})
	checkBFS(t, got, want, "delayed-migration run")
	m := e.Metrics()
	if m.Resizes != 1 || m.Recoveries != 0 {
		t.Fatalf("resizes=%d recoveries=%d; want 1/0 (delays respect the round boundary)",
			m.Resizes, m.Recoveries)
	}
}

func TestResizeShrinkKillOfLeavingWorker(t *testing.T) {
	// The victim is a worker that would not exist in the new membership: the
	// rollback must still revive it in the old one.
	g := graph.GenErdosRenyi(160, 700, 31)
	want := seqBFS(g, 0)
	plan := comm.FaultPlan{ResizeKills: []comm.ResizeKill{{Worker: 3, Phase: 0}}}
	cfg := resizeFaultCfg(plan)
	cfg.Workers = 4
	e := mustEngine(t, g, cfg)
	got := resizeBFS(t, e, 0, func(step int) {
		if step == 2 {
			if err := e.Resize(2); err != nil {
				t.Fatalf("resize: %v", err)
			}
		}
	})
	checkBFS(t, got, want, "shrink-kill run")
	m := e.Metrics()
	if m.Resizes != 1 || m.Recoveries == 0 || m.Restarts == 0 {
		t.Fatalf("resizes=%d recoveries=%d restarts=%d; want 1/>0/>0",
			m.Resizes, m.Recoveries, m.Restarts)
	}
	if e.Workers() != 2 {
		t.Fatalf("workers=%d want 2", e.Workers())
	}
}

func TestResizeOverTCP(t *testing.T) {
	g := graph.GenErdosRenyi(100, 400, 13)
	want := seqBFS(g, 0)
	tr, err := comm.NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, g, Config{Workers: 2, Transport: tr, CheckpointEvery: 2})
	got := resizeBFS(t, e, 0, func(step int) {
		if step == 1 {
			if err := e.Resize(4); err != nil {
				t.Fatal(err)
			}
		}
	})
	checkBFS(t, got, want, "tcp resize")
	if e.Workers() != 4 {
		t.Fatalf("workers=%d want 4", e.Workers())
	}
}
