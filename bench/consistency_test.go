package bench

import (
	"math"
	"testing"

	"flash"
	"flash/algo"
	"flash/baseline/gas"
	"flash/baseline/gemini"
	"flash/baseline/ligra"
	"flash/baseline/pregel"
	"flash/graph"
)

// The five frameworks implement the same specifications; on any graph their
// results must agree. These cross-system tests are the strongest
// integration check in the repository: a bug in any engine's propagation,
// synchronization or termination logic shows up as a disagreement.

func consistencyGraph() *graph.Graph { return graph.GenRMAT(512, 4096, 77) }

func TestCrossSystemBFS(t *testing.T) {
	g := consistencyGraph()
	want, err := algo.BFS(g, 0, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pregel.BFS(g, 0, pregel.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := gas.BFS(g, 0, gas.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	gm := gemini.BFS(g, 0, gemini.Config{Threads: 3})
	lg := ligra.BFS(g, 0, ligra.Config{Threads: 3})
	for v := range want {
		if pg[v] != want[v] || gg[v] != want[v] || gm[v] != want[v] || lg[v] != want[v] {
			t.Fatalf("dist[%d]: flash=%d pregel=%d gas=%d gemini=%d ligra=%d",
				v, want[v], pg[v], gg[v], gm[v], lg[v])
		}
	}
}

func TestCrossSystemCC(t *testing.T) {
	g := graph.GenErdosRenyi(400, 700, 9) // several components
	want, err := algo.CC(g, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pregel.CC(g, pregel.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := gas.CC(g, gas.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	gm := gemini.CC(g, gemini.Config{Threads: 3})
	lg := ligra.CC(g, ligra.Config{Threads: 3})
	opt, err := algo.CCOpt(g, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if pg[v] != want[v] || gg[v] != want[v] || gm[v] != want[v] || lg[v] != want[v] {
			t.Fatalf("cc[%d] disagreement", v)
		}
	}
	// CC-opt labels the same partition (labels themselves may differ).
	seen := map[uint32]uint32{}
	for v := range want {
		if prev, ok := seen[want[v]]; ok {
			if opt.Labels[v] != prev {
				t.Fatalf("ccopt partition mismatch at %d", v)
			}
		} else {
			seen[want[v]] = opt.Labels[v]
		}
	}
}

func TestCrossSystemBC(t *testing.T) {
	g := graph.GenErdosRenyi(200, 800, 3)
	want, err := algo.BC(g, 0, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pregel.BC(g, 0, pregel.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := gas.BC(g, 0, gas.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	gm := gemini.BC(g, 0, gemini.Config{Threads: 3})
	lg := ligra.BC(g, 0, ligra.Config{Threads: 3})
	for v := range want {
		for name, got := range map[string]float64{"pregel": pg[v], "gas": gg[v], "gemini": gm[v], "ligra": lg[v]} {
			if math.Abs(got-want[v]) > 1e-6 {
				t.Fatalf("bc[%d] %s=%g flash=%g", v, name, got, want[v])
			}
		}
	}
}

func TestCrossSystemTC(t *testing.T) {
	g := consistencyGraph()
	want, err := algo.TC(g, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pregel.TC(g, pregel.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := gas.TC(g, gas.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	lg := ligra.TC(g, ligra.Config{Threads: 3})
	if pg != want || gg != want || lg != want {
		t.Fatalf("triangles: flash=%d pregel=%d gas=%d ligra=%d", want, pg, gg, lg)
	}
}

func TestCrossSystemKC(t *testing.T) {
	g := graph.GenErdosRenyi(200, 900, 5)
	want, err := algo.KCOpt(g, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	basic, err := algo.KC(g, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pregel.KC(g, pregel.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := gas.KC(g, gas.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	lg := ligra.KC(g, ligra.Config{Threads: 3})
	for v := range want {
		if basic[v] != want[v] || pg[v] != want[v] || gg[v] != want[v] || lg[v] != want[v] {
			t.Fatalf("core[%d]: kcopt=%d kc=%d pregel=%d gas=%d ligra=%d",
				v, want[v], basic[v], pg[v], gg[v], lg[v])
		}
	}
}

func TestCrossSystemMSF(t *testing.T) {
	g := graph.WithRandomWeights(graph.GenErdosRenyi(150, 600, 4), 4)
	want, err := algo.MSF(g, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	_, total, err := pregel.MSF(g, pregel.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want.Weight-total) > 1e-3 {
		t.Fatalf("msf weight: flash=%g pregel=%g", want.Weight, total)
	}
}

func TestCrossSystemSCC(t *testing.T) {
	g := graph.GenRandomDirected(120, 400, 6)
	want, err := algo.SCC(g, flash.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pregel.SCC(g, pregel.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Same partition (labels may differ).
	fwd := map[int32]int32{}
	for v := range want {
		if prev, ok := fwd[want[v]]; ok {
			if pg[v] != prev {
				t.Fatalf("scc partition mismatch at %d", v)
			}
		} else {
			fwd[want[v]] = pg[v]
		}
	}
	rev := map[int32]int32{}
	for v := range pg {
		if prev, ok := rev[pg[v]]; ok {
			if want[v] != prev {
				t.Fatalf("scc partition mismatch (reverse) at %d", v)
			}
		} else {
			rev[pg[v]] = want[v]
		}
	}
}
