package serve

import (
	"errors"
	"fmt"
	"net/http"
)

// The service-layer error taxonomy. Every rejection a client can trigger is
// a typed error carrying the fields a caller needs to react (match with
// errors.As), and maps to one HTTP status + stable machine-readable code via
// HTTPStatus/ErrorCode — the same discipline as core.ConfigError, extended to
// the serving surface so tests can assert on fields instead of message text.

// RequestError reports a syntactically or semantically invalid job or graph
// request: malformed JSON, a missing required field, an out-of-range value.
type RequestError struct {
	Field  string // offending field ("body" for envelope-level problems)
	Reason string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("serve: invalid request: %s %s", e.Field, e.Reason)
}

// UnknownGraphError reports a job submitted against a graph that is not in
// the catalog (never loaded, or already evicted).
type UnknownGraphError struct {
	Graph string
}

func (e *UnknownGraphError) Error() string {
	return fmt.Sprintf("serve: graph %q is not in the catalog", e.Graph)
}

// UnknownAlgoError reports a job naming an algorithm the registry does not
// serve.
type UnknownAlgoError struct {
	Algo string
}

func (e *UnknownAlgoError) Error() string {
	return fmt.Sprintf("serve: unknown algorithm %q", e.Algo)
}

// UnknownJobError reports a status query for a job id the server never
// issued.
type UnknownJobError struct {
	ID string
}

func (e *UnknownJobError) Error() string {
	return fmt.Sprintf("serve: unknown job %q", e.ID)
}

// QueueFullError reports an admission rejection: every execution slot is
// busy and the bounded pending queue is at capacity. Back off and retry.
type QueueFullError struct {
	Depth int // the configured queue bound that was hit
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("serve: job queue full (depth %d)", e.Depth)
}

// QuotaError reports a per-tenant admission rejection: the tenant already
// has its full quota of jobs queued or running.
type QuotaError struct {
	Tenant   string
	Limit    int // configured per-tenant quota
	InFlight int // tenant's queued+running jobs at rejection time
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("serve: tenant %q quota exceeded (%d in flight, limit %d)",
		e.Tenant, e.InFlight, e.Limit)
}

// DuplicateGraphError reports a load request for a name already in the
// catalog.
type DuplicateGraphError struct {
	Graph string
}

func (e *DuplicateGraphError) Error() string {
	return fmt.Sprintf("serve: graph %q is already loaded", e.Graph)
}

// ErrServerClosed is returned for submissions racing or following
// Server.Close.
var ErrServerClosed = errors.New("serve: server closed")

// HTTPStatus maps a service error to its HTTP status code; unknown errors
// are internal.
func HTTPStatus(err error) int {
	var (
		re  *RequestError
		ug  *UnknownGraphError
		ua  *UnknownAlgoError
		uj  *UnknownJobError
		qf  *QueueFullError
		qe  *QuotaError
		dup *DuplicateGraphError
	)
	switch {
	case errors.As(err, &re), errors.As(err, &ua):
		return http.StatusBadRequest
	case errors.As(err, &ug), errors.As(err, &uj):
		return http.StatusNotFound
	case errors.As(err, &qf), errors.As(err, &qe):
		return http.StatusTooManyRequests
	case errors.As(err, &dup):
		return http.StatusConflict
	case errors.Is(err, ErrServerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// ErrorCode returns the stable machine-readable code clients switch on.
func ErrorCode(err error) string {
	var (
		re  *RequestError
		ug  *UnknownGraphError
		ua  *UnknownAlgoError
		uj  *UnknownJobError
		qf  *QueueFullError
		qe  *QuotaError
		dup *DuplicateGraphError
	)
	switch {
	case errors.As(err, &re):
		return "bad_request"
	case errors.As(err, &ua):
		return "unknown_algo"
	case errors.As(err, &ug):
		return "unknown_graph"
	case errors.As(err, &uj):
		return "unknown_job"
	case errors.As(err, &qf):
		return "queue_full"
	case errors.As(err, &qe):
		return "quota_exceeded"
	case errors.As(err, &dup):
		return "duplicate_graph"
	case errors.Is(err, ErrServerClosed):
		return "server_closed"
	default:
		return "internal"
	}
}

// errorBody is the JSON error envelope: the code plus the typed error's
// fields, flattened so clients (and the admission tests) can assert on them.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Graph   string `json:"graph,omitempty"`
	Algo    string `json:"algo,omitempty"`
	Job     string `json:"job,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Limit   int    `json:"limit,omitempty"`
	Depth   int    `json:"depth,omitempty"`
}

// errorEnvelope builds the JSON body for err.
func errorEnvelope(err error) errorBody {
	body := errorBody{Code: ErrorCode(err), Message: err.Error()}
	var re *RequestError
	var ug *UnknownGraphError
	var ua *UnknownAlgoError
	var uj *UnknownJobError
	var qf *QueueFullError
	var qe *QuotaError
	var dup *DuplicateGraphError
	switch {
	case errors.As(err, &re):
		body.Field, body.Reason = re.Field, re.Reason
	case errors.As(err, &ug):
		body.Graph = ug.Graph
	case errors.As(err, &ua):
		body.Algo = ua.Algo
	case errors.As(err, &uj):
		body.Job = uj.ID
	case errors.As(err, &qf):
		body.Depth = qf.Depth
	case errors.As(err, &qe):
		body.Tenant, body.Limit = qe.Tenant, qe.Limit
	case errors.As(err, &dup):
		body.Graph = dup.Graph
	}
	return body
}
