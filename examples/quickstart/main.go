// Quickstart: build a graph, write a FLASH program against the public API
// (the paper's Algorithm 2, BFS), and run a canned algorithm from the algo
// package.
package main

import (
	"fmt"
	"log"

	"flash"
	"flash/algo"
	"flash/graph"
)

// props is the per-vertex property struct for our BFS program.
type props struct {
	Dis int32
}

const inf = int32(1 << 30)

func main() {
	// A small social-network-like graph: 2000 vertices, ~16k edges.
	g := graph.GenRMAT(2000, 16000, 7)
	fmt.Println(g)

	// --- Writing a FLASH program by hand (paper Algorithm 2) ---
	e, err := flash.NewEngine[props](g, flash.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	const root = flash.VID(0)
	e.VertexMap(e.All(), nil, func(v flash.Vertex[props]) props {
		if v.ID == root {
			return props{Dis: 0}
		}
		return props{Dis: inf}
	})
	u := e.VertexMap(e.All(), func(v flash.Vertex[props]) bool { return v.ID == root }, nil)
	steps := 0
	for u.Size() != 0 {
		steps++
		u = e.EdgeMap(u, e.E(),
			nil, // CTRUE
			func(s, d flash.Vertex[props]) props { return props{Dis: s.Val.Dis + 1} },
			func(d flash.Vertex[props]) bool { return d.Val.Dis == inf },
			func(t, cur props) props { return t })
	}
	reached := e.CountIf(func(_ flash.VID, val *props) bool { return val.Dis != inf })
	fmt.Printf("hand-written BFS: reached %d/%d vertices in %d supersteps\n",
		reached, g.NumVertices(), steps)

	// --- Using the canned algorithm suite ---
	labels, err := algo.CC(g, flash.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected components: %d\n", algo.CountComponents(labels))

	triangles, err := algo.TC(g, flash.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d\n", triangles)
}
