package bench

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"flash"
	"flash/internal/cluster"
	"flash/internal/serve"
)

// ClusterStat is one multi-process entry in BENCH_flash.json: the same BFS
// job timed in-process over the loopback TCP mesh (every worker a goroutine
// of one process) and cross-process (every worker its own `flashd worker`
// OS process under a supervising coordinator). The delta is the cost of real
// process isolation: per-process graph build, mesh handshakes, and the
// control round that replicates frontier bits across address spaces.
type ClusterStat struct {
	InProcNs int64 `json:"inproc_ns"` // in-process engine, TCP transport
	CrossNs  int64 `json:"cross_ns"`  // spawned fleet, wall time incl. spawn+register
	Workers  int   `json:"workers"`
	Restarts int   `json:"restarts"` // must be 0 in a fault-free benchmark run
}

var (
	benchBinOnce sync.Once
	benchBinPath string
	benchBinErr  error
)

// benchFlashdBin builds the flashd binary once per process, into a temp dir
// that lives for the process lifetime (benchmarks are short-lived tools).
func benchFlashdBin() (string, error) {
	benchBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "flash-bench-bin-")
		if err != nil {
			benchBinErr = err
			return
		}
		benchBinPath = filepath.Join(dir, "flashd")
		out, err := exec.Command("go", "build", "-o", benchBinPath, "flash/cmd/flashd").CombinedOutput()
		if err != nil {
			benchBinErr = fmt.Errorf("build flashd: %v\n%s", err, out)
		}
	})
	return benchBinPath, benchBinErr
}

// MeasureCluster times the fixed-graph BFS at `workers` workers, in-process
// versus cross-process, and reports both wall times. The cross-process run
// includes fleet spawn and registration — that overhead is the honest price
// of process isolation and belongs in the committed number.
func MeasureCluster(workers int) (ClusterStat, error) {
	bin, err := benchFlashdBin()
	if err != nil {
		return ClusterStat{}, err
	}
	spec := serve.GraphSpec{Name: "bench-rmat", Gen: "rmat", N: 4096, M: 4096 * 12, Seed: 101}
	root := uint64(0)
	params := serve.JobParams{Root: &root}

	g, err := serve.BuildGraph(spec)
	if err != nil {
		return ClusterStat{}, err
	}
	start := time.Now()
	inprocPayload, err := serve.RunAlgo("bfs", g, params,
		flash.WithWorkers(workers), flash.WithTCP())
	if err != nil {
		return ClusterStat{}, fmt.Errorf("in-process run: %w", err)
	}
	inproc := time.Since(start)

	coord, err := cluster.New(cluster.Config{
		BinPath: bin, Workers: workers, Graph: spec, Algo: "bfs", Params: params,
	})
	if err != nil {
		return ClusterStat{}, err
	}
	start = time.Now()
	crossPayload, err := coord.Run()
	if err != nil {
		return ClusterStat{}, fmt.Errorf("cross-process run: %w", err)
	}
	cross := time.Since(start)

	// The benchmark doubles as a correctness probe: a perf number for a run
	// that diverged from the in-process result would be meaningless.
	if string(inprocPayload) != string(crossPayload) {
		return ClusterStat{}, fmt.Errorf("cross-process result diverged from in-process result")
	}
	return ClusterStat{
		InProcNs: inproc.Nanoseconds(),
		CrossNs:  cross.Nanoseconds(),
		Workers:  workers,
		Restarts: coord.Restarts(),
	}, nil
}
