package algo

import (
	"flash"
	"flash/graph"
)

type gcProps struct {
	C      int32   // current color
	CC     int32   // candidate color this round
	Colors []int32 // colors reported by higher-ranked neighbors
}

// rankAbove reports whether s outranks d by (degree, id), the ordering the
// paper's GC and TC use for symmetry breaking.
func rankAbove[V any](s, d flash.Vertex[V]) bool {
	return s.Deg > d.Deg || (s.Deg == d.Deg && s.ID > d.ID)
}

// GC computes a greedy vertex coloring (paper Algorithm 15): every round
// each vertex collects the colors of its higher-ranked neighbors and moves
// to the smallest color not among them, until no vertex changes. The result
// is a proper coloring; the number of colors is bounded by degeneracy+1 in
// practice.
func GC(g *graph.Graph, opts ...flash.Option) ([]int32, error) {
	e, err := newEngine[gcProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	e.VertexMap(e.All(), nil, func(v flash.Vertex[gcProps]) gcProps {
		return gcProps{C: 0, CC: 0}
	})
	for {
		// Collect current colors of higher-ranked neighbors (reset first).
		e.VertexMap(e.All(), nil, func(v flash.Vertex[gcProps]) gcProps {
			nv := *v.Val
			nv.Colors = nil
			return nv
		})
		e.EdgeMap(e.All(), e.E(),
			func(s, d flash.Vertex[gcProps]) bool { return rankAbove(s, d) },
			func(s, d flash.Vertex[gcProps]) gcProps {
				nv := *d.Val
				nv.Colors = append(append([]int32(nil), nv.Colors...), s.Val.C)
				return nv
			},
			nil,
			func(t, cur gcProps) gcProps {
				cur.Colors = append(cur.Colors, t.Colors...)
				return cur
			},
			flash.NoSync()) // Colors is master-local (not critical, Table II)
		// Pick the smallest color unused by those neighbors and drop the
		// collected set so later syncs ship only C and CC.
		e.VertexMap(e.All(), nil, func(v flash.Vertex[gcProps]) gcProps {
			nv := *v.Val
			nv.CC = mex(nv.Colors)
			nv.Colors = nil
			return nv
		}, flash.NoSync()) // CC is read only by the master
		changed := e.VertexMap(e.All(),
			func(v flash.Vertex[gcProps]) bool { return v.Val.C != v.Val.CC },
			func(v flash.Vertex[gcProps]) gcProps {
				nv := *v.Val
				nv.C = nv.CC
				return nv
			})
		if changed.Size() == 0 {
			break
		}
	}

	out := make([]int32, g.NumVertices())
	e.Gather(func(v graph.VID, val *gcProps) { out[v] = val.C })
	return out, nil
}

// mex returns the minimum non-negative integer not present in xs.
func mex(xs []int32) int32 {
	used := make(map[int32]bool, len(xs))
	for _, x := range xs {
		used[x] = true
	}
	for c := int32(0); ; c++ {
		if !used[c] {
			return c
		}
	}
}

// CountColors returns the number of distinct colors in a coloring.
func CountColors(colors []int32) int {
	seen := make(map[int32]struct{})
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}
