package flash

import (
	"flash/graph"
	"flash/internal/core"
)

// GraphHandle is the shared, immutable half of an engine: a graph plus a
// concurrency-safe cache of read-only partitions. A catalog (see
// internal/serve and cmd/flashd) holds one handle per loaded graph; every
// job's engine constructed with WithGraphHandle borrows the cached partition
// for its (workers, placement) configuration instead of rebuilding it, so N
// concurrent jobs over one graph share a single CSR and partition. All
// per-run mutable state (current/next values, accumulator shards,
// checkpoints) remains private to each engine — jobs cannot observe each
// other.
type GraphHandle struct {
	s *core.SharedGraph
}

// NewGraphHandle wraps g for sharing across concurrent engines. The graph
// must not change afterwards (graph.Graph is immutable by construction).
func NewGraphHandle(g *graph.Graph) *GraphHandle {
	return &GraphHandle{s: core.NewSharedGraph(g)}
}

// NewBlockGraphHandle wraps an out-of-core FLASHBLK block graph for sharing:
// Graph() returns the in-memory skeleton, partitions are discovered by
// streaming the block file, and every engine constructed with WithGraphHandle
// adopts the block backend automatically — jobs over a catalog-served block
// graph run out-of-core with no per-job plumbing.
func NewBlockGraphHandle(bg *graph.BlockGraph) *GraphHandle {
	return &GraphHandle{s: core.NewSharedBlockGraph(bg)}
}

// Graph returns the shared topology (the skeleton, for a block-backed
// handle).
func (h *GraphHandle) Graph() *graph.Graph { return h.s.Graph() }

// Block returns the out-of-core block graph behind the handle, or nil for an
// in-memory handle.
func (h *GraphHandle) Block() *graph.BlockGraph { return h.s.Block() }

// Prewarm builds and caches the partition for the given worker count and the
// default (range) placement, so the first job at that configuration does not
// pay the partitioning cost. It is safe to call concurrently with jobs.
func (h *GraphHandle) Prewarm(workers int) { h.s.Partition(workers, false) }

// Partitions returns the number of distinct (workers, placement) partitions
// currently cached.
func (h *GraphHandle) Partitions() int { return h.s.Partitions() }

// SharedBytes returns the resident footprint of the cached partitions'
// derived structures (mirror sets, mirror-worker lists, slot-table
// auxiliaries). With GraphBytes this is the memory one catalog graph costs,
// paid once regardless of how many jobs run over it.
func (h *GraphHandle) SharedBytes() uint64 { return h.s.SharedBytes() }

// GraphBytes returns the resident footprint of the shared CSR arrays.
func (h *GraphHandle) GraphBytes() uint64 { return h.s.Graph().MemBytes() }

// WithGraphHandle makes the engine borrow h's graph-derived immutable state
// (partition, slot tables) instead of building its own. The graph passed to
// NewEngine must be h.Graph(). The borrowed partition is copy-on-write: an
// engine that must rebuild a worker's view (cold restart, resize rollback)
// forks it first, so recovery in one job never races another.
func WithGraphHandle(h *GraphHandle) Option {
	return func(c *core.Config) { c.Shared = h.s }
}

// RunStats is the final summary delivered by WithRunStats when the engine
// closes: the cumulative run counters, the final worker count, and
// StateBytes — the job-private mutable state, i.e. what a concurrent job
// costs on top of the shared graph and partition.
type RunStats = core.RunStats

// WithRunStats registers f to receive a RunStats summary when the engine
// closes (algorithms in the algo package close their private engine before
// returning, so by the time an algo call returns the summary has been
// delivered). Serving layers use it to account each job's state footprint
// and supersteps without holding the engine open.
func WithRunStats(f func(RunStats)) Option {
	return func(c *core.Config) { c.RunStats = f }
}
