package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// maxBodyBytes bounds request bodies; a job request is a few hundred bytes.
const maxBodyBytes = 1 << 20

// jobStatus is the JSON view of a job returned by the jobs endpoints.
type jobStatus struct {
	ID     string     `json:"id"`
	Tenant string     `json:"tenant,omitempty"`
	Graph  string     `json:"graph"`
	Algo   string     `json:"algo"`
	State  JobState   `json:"state"`
	Result *JobResult `json:"result,omitempty"`
	Error  *errorBody `json:"error,omitempty"`
}

func statusOf(j *Job) jobStatus {
	st := jobStatus{
		ID:     j.ID,
		Tenant: j.Tenant,
		Graph:  j.Req.Graph,
		Algo:   j.Req.Algo,
		State:  j.State(),
	}
	if res, err := j.Result(); err != nil {
		body := errorEnvelope(err)
		st.Error = &body
	} else if res != nil {
		st.Result = res
	}
	return st
}

// Handler returns the HTTP/JSON API over the server:
//
//	POST   /v1/graphs        load a GraphSpec into the catalog
//	GET    /v1/graphs        list catalog entries with memory accounting
//	DELETE /v1/graphs/{name} evict a graph
//	POST   /v1/jobs          submit a JobRequest (202 + job id)
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     job status; ?wait=30s blocks until terminal
//	GET    /v1/metrics       service metrics snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.handleLoadGraph)
	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleEvictGraph)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, HTTPStatus(err), errorEnvelope(err))
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, &RequestError{Field: "body", Reason: err.Error()})
		return nil, false
	}
	return body, true
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var spec GraphSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, &RequestError{Field: "body", Reason: err.Error()})
		return
	}
	h, err := s.cat.Load(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	g := h.Graph()
	writeJSON(w, http.StatusCreated, GraphInfo{
		Name:        spec.Name,
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		Directed:    g.Directed(),
		Weighted:    g.Weighted(),
		GraphBytes:  h.GraphBytes(),
		SharedBytes: h.SharedBytes(),
		Partitions:  h.Partitions(),
	})
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cat.List())
}

func (s *Server) handleEvictGraph(w http.ResponseWriter, r *http.Request) {
	if err := s.cat.Evict(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	job, err := s.Submit(body)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, statusOf(job))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.List()
	out := make([]jobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = statusOf(j)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.sched.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil {
			writeError(w, &RequestError{Field: "wait", Reason: err.Error()})
			return
		}
		select {
		case <-job.Done():
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, statusOf(job))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
