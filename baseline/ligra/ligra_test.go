package ligra

import (
	"math"
	"testing"

	"flash/graph"
)

var cfg = Config{Threads: 3}

func refBFS(g *graph.Graph, root graph.VID) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	q := []graph.VID{root}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
		}
	}
	return dist
}

func TestBFS(t *testing.T) {
	for _, g := range []*graph.Graph{graph.GenPath(25), graph.GenErdosRenyi(90, 360, 1), graph.GenGrid(6, 6, 0, 1)} {
		got := BFS(g, 0, cfg)
		want := refBFS(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: dist[%d]=%d want %d", g.Name(), v, got[v], want[v])
			}
		}
	}
}

func TestCC(t *testing.T) {
	g := graph.GenErdosRenyi(80, 140, 2)
	got := CC(g, cfg)
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if got[u] != got[v] {
			t.Fatalf("edge (%d,%d) labels differ", u, v)
		}
		return true
	})
}

func TestBC(t *testing.T) {
	g := graph.GenErdosRenyi(50, 200, 3)
	got := BC(g, 0, cfg)
	want := seqBrandes(g, 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6 {
			t.Fatalf("bc[%d]=%g want %g", v, got[v], want[v])
		}
	}
}

func seqBrandes(g *graph.Graph, root graph.VID) []float64 {
	n := g.NumVertices()
	delta := make([]float64, n)
	sigma := make([]float64, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma[root] = 1
	dist[root] = 0
	var order []graph.VID
	q := []graph.VID{root}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		order = append(order, u)
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, v := range g.OutNeighbors(w) {
			if dist[v] == dist[w]+1 {
				delta[w] += sigma[w] / sigma[v] * (1 + delta[v])
			}
		}
	}
	return delta
}

func TestMISAndMM(t *testing.T) {
	g := graph.GenErdosRenyi(70, 240, 4)
	in := MIS(g, cfg)
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if in[u] && in[v] {
			t.Fatalf("adjacent in MIS")
		}
		return true
	})
	for v := 0; v < g.NumVertices(); v++ {
		if in[v] {
			continue
		}
		ok := false
		for _, u := range g.OutNeighbors(graph.VID(v)) {
			if in[u] {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("%d uncovered", v)
		}
	}

	match := MM(g, cfg)
	for v := 0; v < g.NumVertices(); v++ {
		if p := match[v]; p != -1 && (match[p] != int32(v) || !g.HasEdge(graph.VID(v), graph.VID(p))) {
			t.Fatalf("bad match %d<->%d", v, p)
		}
	}
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if match[u] == -1 && match[v] == -1 {
			t.Fatal("not maximal")
		}
		return true
	})
}

func TestKC(t *testing.T) {
	g := graph.GenErdosRenyi(50, 170, 5)
	got := KC(g, cfg)
	// reference peeling
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VID(v))
	}
	want := make([]int32, n)
	removed := make([]bool, n)
	maxSeen := 0
	for i := 0; i < n; i++ {
		bv, bd := -1, 1<<30
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bd {
				bv, bd = v, deg[v]
			}
		}
		if bd > maxSeen {
			maxSeen = bd
		}
		want[bv] = int32(maxSeen)
		removed[bv] = true
		for _, u := range g.OutNeighbors(graph.VID(bv)) {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("core[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestTC(t *testing.T) {
	for _, tc := range []struct {
		g    *graph.Graph
		want int64
	}{
		{graph.GenComplete(5), 10},
		{graph.GenComplete(6), 20},
		{graph.GenCycle(3), 1},
		{graph.GenStar(9), 0},
	} {
		if got := TC(tc.g, cfg); got != tc.want {
			t.Fatalf("%s: %d triangles want %d", tc.g.Name(), got, tc.want)
		}
	}
}

func TestSubsetOps(t *testing.T) {
	e := New(graph.GenPath(10), cfg)
	a := e.FromIDs(1, 2, 3)
	b := e.FromIDs(3, 4)
	if m := e.Minus(a, b); m.Size() != 2 || m.Has(3) {
		t.Fatal("minus wrong")
	}
	if e.All().Size() != 10 {
		t.Fatal("all wrong")
	}
}
