package algo

import (
	"flash"
	"flash/graph"
)

// DiameterEstimate lower-bounds the graph diameter with the classic double
// sweep: BFS from an arbitrary vertex, then BFS again from the farthest
// vertex found; the second eccentricity is the estimate. Exact on trees,
// and a tight lower bound in practice.
func DiameterEstimate(g *graph.Graph, opts ...flash.Option) (int32, error) {
	if g.NumVertices() == 0 {
		return 0, nil
	}
	first, err := BFS(g, 0, opts...)
	if err != nil {
		return 0, err
	}
	far, farV := int32(0), graph.VID(0)
	for v, d := range first {
		if d > far {
			far, farV = d, graph.VID(v)
		}
	}
	second, err := BFS(g, farV, opts...)
	if err != nil {
		return 0, err
	}
	est := int32(0)
	for _, d := range second {
		if d > est {
			est = d
		}
	}
	return est, nil
}
