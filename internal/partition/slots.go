package partition

import (
	"math/bits"
	"sort"

	"flash/graph"
	"flash/internal/bitset"
)

// SlotTable is one worker's compact state layout (the paper's FLASHWARE data
// layout, §IV-A): instead of indexing per-worker property arrays by global
// vertex id — O(|V|) resident values per worker regardless of how little of
// the graph it owns — a worker stores one dense slot per *resident* vertex:
//
//	slots [0, MasterCount)            local masters, slot == local index
//	slots [MasterCount, SlotCount)    mirrors, sorted by ascending global id
//
// Property arrays indexed by slot are therefore O(masters + mirrors), and
// within each region ascending slot order is ascending global-id order, so
// walks over a slot-indexed bitset keep the engine's deterministic
// ascending-vid message streams intact.
//
// gid→slot resolves in O(1): masters by the placement arithmetic, mirrors by
// a popcount-rank structure over the mirror bitmap (one 4-byte prefix count
// per 64-bit word). The inverse slot→gid is the placement arithmetic for
// masters and rank-select over the same bitmap for mirrors — no per-mirror
// gid array, so the table's own footprint stays at one int32 per 64 vertices.
//
// Under Config.FullMirrors every vertex is resident on every worker
// (FullSlotTable marks every non-master a mirror), which keeps
// virtual-edge-set algorithms — arbitrary cross-vertex reads — working
// unchanged while preserving the uniform masters-then-sorted-mirrors shape.
//
//flash:immutable
type SlotTable struct {
	kind    uint8
	worker  int
	masters int
	n       int // global vertex count

	// Master-range arithmetic (kindRange) or modulus (kindHash).
	mlo, mhi int
	mod      int
	place    Placement // kindGeneric fallback only

	// Mirror membership words (shared with Part.Mirrors; never mutated), the
	// per-word prefix popcounts for O(1) rank, and the total mirror count.
	words    []uint64
	rank     []int32
	nmirrors int
}

const (
	kindRange uint8 = iota
	kindHash
	kindGeneric
)

// NewSlotTable builds the compact slot table for worker w over its mirror
// set. The mirror bitset's backing words are retained (not copied) and must
// not be mutated afterwards.
func NewSlotTable(place Placement, w int, mirrors *bitset.Bitset) *SlotTable {
	masters := place.LocalCount(w)
	words := mirrors.Words()
	rank := make([]int32, len(words))
	c := int32(0)
	for i, wd := range words {
		rank[i] = c
		c += int32(bits.OnesCount64(wd))
	}
	st := &SlotTable{
		worker:   w,
		masters:  masters,
		n:        mirrors.Cap(),
		words:    words,
		rank:     rank,
		nmirrors: int(c),
	}
	switch p := place.(type) {
	case *RangePlacement:
		st.kind = kindRange
		st.mlo = p.Start(w)
		st.mhi = st.mlo + masters
	case *HashPlacement:
		st.kind = kindHash
		st.mod = p.Workers()
	default:
		st.kind = kindGeneric
		st.place = place
	}
	return st
}

// FullSlotTable returns the table for a fully-replicated worker
// (Config.FullMirrors): every non-master vertex is a mirror, so every vertex
// is resident and arbitrary cross-vertex reads resolve, while the layout
// keeps the uniform masters-then-sorted-mirrors shape.
func FullSlotTable(place Placement, w, n int) *SlotTable {
	mirrors := bitset.New(n)
	for v := 0; v < n; v++ {
		if place.Owner(graph.VID(v)) != w {
			mirrors.Set(v)
		}
	}
	return NewSlotTable(place, w, mirrors)
}

// SlotCount returns the number of resident vertices (and slots).
func (s *SlotTable) SlotCount() int { return s.masters + s.nmirrors }

// MasterCount returns the number of local masters (slots [0, MasterCount)).
func (s *SlotTable) MasterCount() int { return s.masters }

// MirrorCount returns the number of mirror slots.
func (s *SlotTable) MirrorCount() int { return s.nmirrors }

// Slot returns v's slot. v must be resident (a local master or mirror);
// passing a non-resident vertex silently aliases another slot, exactly as
// meaningless as reading a never-synced global-id entry was in the old
// layout. Use Lookup where residency is not guaranteed.
func (s *SlotTable) Slot(v graph.VID) int {
	s.assertResident(v) // no-op unless built with -tags flashdebug
	switch s.kind {
	case kindRange:
		if iv := int(v); iv >= s.mlo && iv < s.mhi {
			return iv - s.mlo
		}
	case kindHash:
		if iv := int(v); iv%s.mod == s.worker {
			return iv / s.mod
		}
	default:
		if s.place.Owner(v) == s.worker {
			return s.place.LocalIndex(v)
		}
	}
	wi := int(v) >> 6
	return s.masters + int(s.rank[wi]) +
		bits.OnesCount64(s.words[wi]&(1<<(uint(v)&63)-1))
}

// Lookup returns v's slot and whether v is resident at all.
func (s *SlotTable) Lookup(v graph.VID) (int, bool) {
	switch s.kind {
	case kindRange:
		if iv := int(v); iv >= s.mlo && iv < s.mhi {
			return iv - s.mlo, true
		}
	case kindHash:
		if iv := int(v); iv%s.mod == s.worker {
			return iv / s.mod, true
		}
	default:
		if s.place.Owner(v) == s.worker {
			return s.place.LocalIndex(v), true
		}
	}
	wi := int(v) >> 6
	bit := uint64(1) << (uint(v) & 63)
	if s.words[wi]&bit == 0 {
		return 0, false
	}
	return s.masters + int(s.rank[wi]) +
		bits.OnesCount64(s.words[wi]&(bit-1)), true
}

// GID is the inverse of Slot. Master slots resolve by placement arithmetic;
// mirror slots rank-select into the mirror bitmap (O(log words), so hot loops
// over mirrors should use RangeMirrors instead).
func (s *SlotTable) GID(slot int) graph.VID {
	if slot < s.masters {
		switch s.kind {
		case kindRange:
			return graph.VID(s.mlo + slot)
		case kindHash:
			return graph.VID(slot*s.mod + s.worker)
		default:
			return s.place.GlobalID(s.worker, slot)
		}
	}
	idx := slot - s.masters
	// The word holding the (idx+1)-th mirror is the one whose prefix rank
	// last stays <= idx.
	wi := sort.Search(len(s.rank), func(i int) bool { return int(s.rank[i]) > idx }) - 1
	word := s.words[wi]
	for k := idx - int(s.rank[wi]); k > 0; k-- {
		word &= word - 1
	}
	return graph.VID(wi<<6 + bits.TrailingZeros64(word))
}

// RangeMirrors calls f for every mirror slot in ascending slot (and hence
// ascending gid) order, stopping early if f returns false. It walks the
// mirror bitmap with a running slot cursor — O(words + mirrors), no lookups.
func (s *SlotTable) RangeMirrors(f func(slot int, gid graph.VID) bool) {
	slot := s.masters
	for wi, word := range s.words {
		base := wi << 6
		for word != 0 {
			gid := graph.VID(base + bits.TrailingZeros64(word))
			word &= word - 1
			if !f(slot, gid) {
				return
			}
			slot++
		}
	}
}

// AuxBytes returns the memory footprint of the table's auxiliary structures
// (the rank counts; the mirror bitmap words are shared with the Part's
// mirror set, which both the old and new layouts held).
func (s *SlotTable) AuxBytes() uint64 {
	return uint64(cap(s.rank)) * 4
}
