package algo

import (
	"sort"

	"flash"
	"flash/graph"
)

type clProps struct {
	Count int64
	Out   []uint32 // higher-ranked neighbors, sorted
}

// CL counts k-cliques with the ordered recursive algorithm of Shi et al.
// (paper Algorithm 23): after orienting edges from lower to higher rank,
// every vertex recursively extends candidate sets by intersecting with the
// oriented neighbor lists of clique members, reading arbitrary vertices'
// lists through FLASHWARE's get — another beyond-neighborhood access that
// requires full mirroring.
func CL(g *graph.Graph, k int, opts ...flash.Option) (int64, error) {
	if k < 1 {
		return 0, nil
	}
	if k == 1 {
		return int64(g.NumVertices()), nil
	}
	e, err := newEngine[clProps](g, opts, flash.WithFullMirrors())
	if err != nil {
		return 0, err
	}
	defer e.Close()

	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[clProps]) clProps { return clProps{} })
	// Orient: Out = higher-ranked neighbors.
	e.EdgeMap(u, e.E(),
		func(s, d flash.Vertex[clProps]) bool { return rankAbove(s, d) },
		func(s, d flash.Vertex[clProps]) clProps {
			nv := *d.Val
			nv.Out = append(append([]uint32(nil), nv.Out...), uint32(s.ID))
			return nv
		},
		nil,
		func(t, cur clProps) clProps {
			cur.Out = append(cur.Out, t.Out...)
			return cur
		})
	e.VertexMap(u, nil, func(v flash.Vertex[clProps]) clProps {
		nv := *v.Val
		sort.Slice(nv.Out, func(i, j int) bool { return nv.Out[i] < nv.Out[j] })
		return nv
	})
	// Prune vertices that cannot seed a k-clique, then count recursively.
	u = e.VertexMap(u, func(v flash.Vertex[clProps]) bool { return len(v.Val.Out) >= k-1 }, nil)
	e.VertexMapC(u, nil, func(c *flash.Ctx[clProps], v flash.Vertex[clProps]) clProps {
		nv := *v.Val
		nv.Count = countCliques(c, nv.Out, 1, k)
		return nv
	})

	return e.SumInt64(func(_ graph.VID, val *clProps) int64 { return val.Count }), nil
}

// countCliques extends a partial clique of size lev whose common
// higher-ranked candidate set is cand.
func countCliques(c *flash.Ctx[clProps], cand []uint32, lev, k int) int64 {
	if lev == k-1 {
		return int64(len(cand))
	}
	var total int64
	for _, u := range cand {
		next := intersect(cand, c.Get(graph.VID(u)).Out)
		if len(next) >= k-lev-1 {
			total += countCliques(c, next, lev+1, k)
		}
	}
	return total
}

// intersect returns the sorted intersection of two sorted slices.
func intersect(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
