package algo

import (
	"flash"
	"flash/graph"
)

type bccProps struct {
	CID int32 // connected-component label (min id)
	Dis int32 // BFS level within the component
	P   int32 // BFS tree parent
	BCC int32 // biconnected-component label of the tree edge (P, v)
}

// BCCResult labels each non-root vertex v with the biconnected component of
// its BFS tree edge (parent(v), v); roots (one per connected component) get
// label -1. Two tree edges are in the same biconnected component iff their
// lower endpoints share a label.
type BCCResult struct {
	Labels  []int32
	Parents []int32
	Levels  []int32
}

// BCC computes biconnected components with the BFS-tree + disjoint-set
// algorithm the paper implements (Algorithm 19, after Slota et al.): a CC
// pass elects one root per component, a multi-source BFS builds a spanning
// tree, and then every non-tree edge merges the tree edges along the
// fundamental cycle it closes, using the paper's pre-defined dsu helpers on
// the driver. Each vertex represents its parent tree edge, so articulation
// points separate cleanly.
func BCC(g *graph.Graph, opts ...flash.Option) (BCCResult, error) {
	e, err := newEngine[bccProps](g, opts)
	if err != nil {
		return BCCResult{}, err
	}
	defer e.Close()

	// CC round: min-label propagation elects component roots.
	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[bccProps]) bccProps {
		return bccProps{CID: int32(v.ID), Dis: none, P: none, BCC: none}
	})
	for u.Size() != 0 {
		u = e.EdgeMap(u, e.E(),
			func(s, d flash.Vertex[bccProps]) bool { return s.Val.CID < d.Val.CID },
			func(s, d flash.Vertex[bccProps]) bccProps {
				nv := *d.Val
				if s.Val.CID < nv.CID {
					nv.CID = s.Val.CID
				}
				return nv
			},
			nil,
			func(t, cur bccProps) bccProps {
				if t.CID < cur.CID {
					cur.CID = t.CID
				}
				return cur
			})
	}
	// BFS round from every component root simultaneously.
	u = e.VertexMap(e.All(),
		func(v flash.Vertex[bccProps]) bool { return v.Val.CID == int32(v.ID) },
		func(v flash.Vertex[bccProps]) bccProps {
			nv := *v.Val
			nv.Dis = 0
			return nv
		})
	for u.Size() != 0 {
		u = e.EdgeMap(u, e.E(),
			nil,
			func(s, d flash.Vertex[bccProps]) bccProps {
				nv := *d.Val
				nv.Dis = s.Val.Dis + 1
				return nv
			},
			func(d flash.Vertex[bccProps]) bool { return d.Val.Dis == none },
			func(t, cur bccProps) bccProps { return t })
	}
	// Parent assignment: any neighbor one level up.
	e.EdgeMap(e.All(), e.E(),
		func(s, d flash.Vertex[bccProps]) bool { return s.Val.Dis == d.Val.Dis-1 },
		func(s, d flash.Vertex[bccProps]) bccProps {
			nv := *d.Val
			nv.P = int32(s.ID)
			return nv
		},
		func(d flash.Vertex[bccProps]) bool { return d.Val.P == none },
		func(t, cur bccProps) bccProps { return t })

	// Driver side: join non-tree edges with the paper's dsu helpers. Each
	// vertex stands for its parent tree edge; walking the fundamental cycle
	// of every non-tree edge merges its tree edges into one set.
	n := g.NumVertices()
	dis := make([]int32, n)
	par := make([]int32, n)
	e.Gather(func(v graph.VID, val *bccProps) {
		dis[v] = val.Dis
		par[v] = val.P
	})
	f := flash.NewDSU(n)
	g.Edges(func(a, b graph.VID, _ float32) bool {
		if a >= b || par[a] == int32(b) || par[b] == int32(a) {
			return true // one direction only; skip tree edges
		}
		// The fundamental cycle's tree edges are (par[x], x) for every x on
		// the tree paths a..LCA and b..LCA, excluding the LCA itself. Union
		// all their representatives (the lower endpoints). The anchor is the
		// deeper endpoint, which can never be the LCA.
		anchor := a
		if dis[b] > dis[a] {
			anchor = b
		}
		x, y := a, b
		for x != y {
			if dis[x] >= dis[y] {
				f.Union(anchor, x)
				x = graph.VID(par[x])
			} else {
				f.Union(anchor, y)
				y = graph.VID(par[y])
			}
		}
		return true
	})

	res := BCCResult{
		Labels:  make([]int32, n),
		Parents: par,
		Levels:  dis,
	}
	for v := 0; v < n; v++ {
		if par[v] == none {
			res.Labels[v] = -1 // component root: no parent tree edge
		} else {
			res.Labels[v] = int32(f.Find(graph.VID(v)))
		}
	}
	return res, nil
}

// CountBCCs returns the number of biconnected components in a result:
// distinct labels over non-root vertices.
func CountBCCs(r BCCResult) int {
	seen := make(map[int32]struct{})
	for v, l := range r.Labels {
		if r.Parents[v] != none && l != -1 {
			seen[l] = struct{}{}
		}
	}
	return len(seen)
}
