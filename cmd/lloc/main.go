// Command lloc counts logical lines of code per function (the paper's
// Table I methodology) for arbitrary Go files, or regenerates Table I for
// this repository.
//
// Usage:
//
//	lloc -exp tableI
//	lloc algo/bfs.go baseline/pregel/algorithms.go
package main

import (
	"flag"
	"fmt"
	"os"

	"flash/bench"
	"flash/internal/lloc"
)

func main() {
	exp := flag.String("exp", "", "tableI to regenerate the paper's Table I")
	flag.Parse()

	if *exp == "tableI" {
		if err := bench.TableI(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lloc:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "lloc: pass Go files or -exp tableI")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		rep, err := lloc.CountFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lloc:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d logical lines\n", rep.Path, rep.Total)
		for _, f := range rep.Funcs {
			fmt.Printf("  %-30s %d\n", f.Name, f.Lines)
		}
	}
}
