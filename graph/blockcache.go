package graph

import (
	"sync"

	"flash/internal/bitset"
)

// BlockCacheStats is a snapshot of cache activity counters.
type BlockCacheStats struct {
	Hits      uint64 // Get served from a resident block
	Misses    uint64 // Get that read and decoded a block from disk
	Evictions uint64 // blocks dropped to stay under the byte budget

	// Encoded bytes read from disk, split by the scheduling mode the cache
	// was in when the miss happened.
	BytesDense  uint64
	BytesSparse uint64

	// Unplanned counts sparse-mode misses on blocks outside the residency
	// plan. The physical base edge set never produces these (every pushed
	// source was planned); virtual edge sets composed with joins may.
	Unplanned uint64
}

func (s *BlockCacheStats) add(o BlockCacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.BytesDense += o.BytesDense
	s.BytesSparse += o.BytesSparse
	s.Unplanned += o.Unplanned
}

func (s BlockCacheStats) sub(o BlockCacheStats) BlockCacheStats {
	return BlockCacheStats{
		Hits:        s.Hits - o.Hits,
		Misses:      s.Misses - o.Misses,
		Evictions:   s.Evictions - o.Evictions,
		BytesDense:  s.BytesDense - o.BytesDense,
		BytesSparse: s.BytesSparse - o.BytesSparse,
		Unplanned:   s.Unplanned - o.Unplanned,
	}
}

// cacheSlot is one (direction, block) residency slot.
type cacheSlot struct {
	dec *DecodedBlock // nil when not resident
	ref bool          // clock reference bit
}

// clockRef names a resident slot on the clock ring.
type clockRef struct {
	dir uint32
	idx uint32
}

// BlockCache is a bounded cache of decoded FLASHBLK blocks with clock
// (second-chance) eviction. One cache per worker keeps the hot path free of
// cross-worker contention; the internal mutex only arbitrates a worker's own
// Get calls against block I/O finishing on the same worker, so the per-edge
// iteration loop itself never takes a lock.
//
// The cache is bimodal, mirroring the engine's dense/sparse switch:
// BeginDense marks the superstep as a sequential stream of every block the
// worker's masters touch, BeginSparse installs the per-block
// frontier-residency bitmaps so only blocks containing active sources are
// expected — any other sparse read is counted as Unplanned.
type BlockCache struct {
	bg     *BlockGraph
	budget int64

	mu    sync.Mutex
	slots [2][]cacheSlot
	ring  []clockRef
	hand  int
	used  int64

	sparse bool
	plan   [2]*bitset.Bitset // residency plan by logical direction

	stats   BlockCacheStats
	drained BlockCacheStats // portion already handed out by TakeDelta
}

// NewBlockCache returns a cache over bg bounded by budget decoded bytes.
// Residency is minimum-one-block, so Bytes can transiently exceed a budget
// smaller than a single decoded block.
func NewBlockCache(bg *BlockGraph, budget int64) *BlockCache {
	if budget < 0 {
		budget = 0
	}
	c := &BlockCache{bg: bg, budget: budget}
	c.slots[BlockOut] = make([]cacheSlot, len(bg.blocks[BlockOut]))
	c.slots[BlockIn] = make([]cacheSlot, len(bg.blocks[BlockIn]))
	return c
}

// Budget returns the decoded-byte budget.
func (c *BlockCache) Budget() int64 { return c.budget }

// Bytes returns the currently resident decoded bytes.
func (c *BlockCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// BeginDense switches accounting to dense mode: the superstep streams every
// block of the worker's partition sequentially.
func (c *BlockCache) BeginDense() {
	c.mu.Lock()
	c.sparse = false
	c.plan[BlockOut], c.plan[BlockIn] = nil, nil
	c.mu.Unlock()
}

// BeginSparse switches accounting to sparse mode with the given per-block
// frontier-residency plans (indexed by logical direction; either may be nil
// to accept all reads in that direction).
func (c *BlockCache) BeginSparse(planOut, planIn *bitset.Bitset) {
	c.mu.Lock()
	c.sparse = true
	c.plan[BlockOut], c.plan[BlockIn] = planOut, planIn
	c.mu.Unlock()
}

// Get returns the decoded block idx of the given logical direction, reading
// and decoding it (and evicting colder blocks) on a miss. The returned block
// stays valid for the caller even if it is evicted afterwards — eviction
// only drops the cache's reference.
//
//flash:hotpath
func (c *BlockCache) Get(dir, idx int) (*DecodedBlock, error) {
	d := c.bg.mapDir(dir)
	c.mu.Lock()
	slot := &c.slots[d][idx]
	if slot.dec != nil {
		slot.ref = true
		c.stats.Hits++
		dec := slot.dec
		c.mu.Unlock()
		return dec, nil
	}
	c.accountMiss(dir, d, idx)
	c.mu.Unlock()

	dec, err := c.bg.ReadBlock(d, idx)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if slot.dec == nil { // lost/won race only against this worker's own reentry
		c.insert(d, idx, dec)
	}
	c.mu.Unlock()
	return dec, nil
}

// accountMiss records a miss under c.mu: bytes by scheduling mode, and
// whether a sparse read was outside the residency plan.
func (c *BlockCache) accountMiss(dir, d, idx int) {
	c.stats.Misses++
	enc := uint64(c.bg.blocks[d][idx].encLen)
	if c.sparse {
		c.stats.BytesSparse += enc
		if p := c.plan[dir]; p != nil && !p.Test(idx) {
			c.stats.Unplanned++
		}
	} else {
		c.stats.BytesDense += enc
	}
}

// insert makes dec resident under c.mu, evicting via the clock hand until
// the budget holds. Residency is minimum-one-block: a block bigger than the
// whole budget evicts everything else and is cached alone — refusing to cache
// it would turn a sequential scan over such blocks into one disk read and
// full decode per *vertex* instead of per block.
//
//flash:blockowner the cache is the budget-bounded residency authority
func (c *BlockCache) insert(d, idx int, dec *DecodedBlock) {
	sz := dec.Bytes()
	for c.used+sz > c.budget && len(c.ring) > 0 {
		c.evictOne()
	}
	c.slots[d][idx] = cacheSlot{dec: dec, ref: true}
	c.ring = append(c.ring, clockRef{dir: uint32(d), idx: uint32(idx)})
	c.used += sz
}

// evictOne advances the clock hand, granting second chances to referenced
// blocks, and drops the first unreferenced one.
func (c *BlockCache) evictOne() {
	for {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		r := c.ring[c.hand]
		slot := &c.slots[r.dir][r.idx]
		if slot.ref {
			slot.ref = false
			c.hand++
			continue
		}
		c.used -= slot.dec.Bytes()
		slot.dec = nil
		c.ring[c.hand] = c.ring[len(c.ring)-1]
		c.ring = c.ring[:len(c.ring)-1]
		c.stats.Evictions++
		return
	}
}

// Stats returns cumulative counters since the cache was created.
func (c *BlockCache) Stats() BlockCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// TakeDelta returns the counters accumulated since the previous TakeDelta,
// for flushing into a metrics collector once per superstep.
func (c *BlockCache) TakeDelta() BlockCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.stats.sub(c.drained)
	c.drained = c.stats
	return d
}
