package comm

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

type kvVal struct {
	A int32
	B float32
	C uint16
	D bool
}

func encodeBatch(t *testing.T, c Codec[kvVal], recs []struct {
	vid uint32
	val kvVal
}) []byte {
	t.Helper()
	var kw KVWriter[kvVal]
	kw.Init(c)
	for i := range recs {
		kw.Append(recs[i].vid, &recs[i].val)
	}
	return kw.Take()
}

func TestKVRoundTripSorted(t *testing.T) {
	c := CodecFor[kvVal]()
	recs := []struct {
		vid uint32
		val kvVal
	}{
		{0, kvVal{A: -1, B: 0.5, C: 7, D: true}},
		{1, kvVal{A: 42}},
		{63, kvVal{B: float32(math.Inf(1))}},
		{64, kvVal{C: math.MaxUint16}},
		{1 << 30, kvVal{A: math.MinInt32, D: true}},
	}
	frame := encodeBatch(t, c, recs)
	// Sorted ascending vids: every delta after the first fits one byte for
	// adjacent ids, and the frame decodes to exactly the input records.
	var got []struct {
		vid uint32
		val kvVal
	}
	if err := DecodeKV(c, frame, func(vid uint32, v *kvVal) {
		got = append(got, struct {
			vid uint32
			val kvVal
		}{vid, *v})
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestKVWriterFrameSelfContained(t *testing.T) {
	c := CodecFor[kvVal]()
	var kw KVWriter[kvVal]
	kw.Init(c)
	v := kvVal{A: 1}
	kw.Append(1000, &v)
	f1 := kw.Take()
	kw.Append(1000, &v)
	f2 := kw.Take()
	// Take resets the delta base: a vid costs the same in both frames, so
	// frames survive reordering and retry (chaos transport) independently.
	if !bytes.Equal(f1, f2) {
		t.Fatalf("frames differ after Take reset: %x vs %x", f1, f2)
	}
}

func TestKVDecodeRejectsCorrupt(t *testing.T) {
	c := CodecFor[kvVal]()
	v := kvVal{A: 7}
	var kw KVWriter[kvVal]
	kw.Init(c)
	kw.Append(5, &v)
	frame := kw.Take()
	for cut := 1; cut < len(frame); cut++ {
		if err := DecodeKV(c, frame[:cut], func(uint32, *kvVal) {}); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(frame))
		}
	}
	// A delta walking the vid negative must be rejected, not wrapped.
	bad := binary.AppendUvarint(nil, zigzag(-1))
	if err := DecodeKV(c, bad, func(uint32, *kvVal) {}); err == nil {
		t.Fatal("negative vid delta not detected")
	}
}

func TestVIDDeltaZigzag(t *testing.T) {
	for _, c := range []struct{ prev, cur uint32 }{
		{0, 0}, {0, 1}, {1, 0}, {100, 101}, {101, 100},
		{0, math.MaxUint32}, {math.MaxUint32, 0}, {1 << 31, 1<<31 - 1},
	} {
		buf := AppendVIDDelta(nil, c.prev, c.cur)
		got, n, err := ReadVIDDelta(buf, c.prev)
		if err != nil || n != len(buf) || got != c.cur {
			t.Fatalf("delta %d->%d: got %d (n=%d, err=%v)", c.prev, c.cur, got, n, err)
		}
	}
	// Ascending runs of adjacent ids must cost one byte per vid.
	if b := AppendVIDDelta(nil, 1000, 1001); len(b) != 1 {
		t.Fatalf("adjacent ascending delta costs %d bytes, want 1", len(b))
	}
}

func TestPoolGate(t *testing.T) {
	small := make([]byte, 0, 16)
	PutBuf(small) // must be ignored, not pooled
	b := GetBuf()
	if cap(b) < MinPooledCap {
		t.Fatalf("GetBuf returned cap %d < MinPooledCap", cap(b))
	}
	n := MinPooledCap * 3
	bn := GetBufN(n)
	if len(bn) != n {
		t.Fatalf("GetBufN(%d) returned len %d", n, len(bn))
	}
	PutBuf(b)
	PutBuf(bn)
}

// TestFixedCodecMatchesReflect pins the wire compatibility CodecFor relies
// on: for flat fixed-width types the fixed and reflection codecs must emit
// identical bytes and decode each other's output.
func TestFixedCodecMatchesReflect(t *testing.T) {
	type flat struct {
		A int8
		B uint8
		C int16
		D uint32
		E int64
		F float32
		G float64
		H bool
		I [3]int32
		J struct {
			X uint64
			Y int
		}
		K uint
	}
	fc, ok := NewFixedCodec[flat]()
	if !ok {
		t.Fatal("NewFixedCodec rejected a flat struct")
	}
	rc := NewReflectCodec[flat]()
	f := func(a int8, b uint8, c int16, d uint32, e int64, fl float32, g float64, h bool, i0, i1, i2 int32, x uint64, y int, k uint) bool {
		v := flat{A: a, B: b, C: c, D: d, E: e, F: fl, G: g, H: h, I: [3]int32{i0, i1, i2}, K: k}
		v.J.X = x
		v.J.Y = y
		fb := fc.Append(nil, &v)
		rb := rc.Append(nil, &v)
		if !bytes.Equal(fb, rb) {
			t.Logf("fixed %x != reflect %x", fb, rb)
			return false
		}
		var back flat
		n, err := fc.Decode(rb, &back)
		if err != nil || n != len(rb) || back != v {
			t.Logf("fixed decode of reflect bytes: %+v err=%v", back, err)
			return false
		}
		var back2 flat
		if _, err := rc.Decode(fb, &back2); err != nil || back2 != v {
			t.Logf("reflect decode of fixed bytes: %+v err=%v", back2, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedCodecRejectsVariableKinds(t *testing.T) {
	if _, ok := NewFixedCodec[struct{ S []int32 }](); ok {
		t.Fatal("slice field accepted")
	}
	if _, ok := NewFixedCodec[struct{ S string }](); ok {
		t.Fatal("string field accepted")
	}
	if _, ok := NewFixedCodec[struct{ P *int }](); ok {
		t.Fatal("pointer field accepted")
	}
}

func TestFixedCodecShortBuffer(t *testing.T) {
	fc, _ := NewFixedCodec[kvVal]()
	v := kvVal{A: 1, B: 2, C: 3, D: true}
	enc := fc.Append(nil, &v)
	if len(enc) != fc.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(enc), fc.WireSize())
	}
	var back kvVal
	if _, err := fc.Decode(enc[:len(enc)-1], &back); err == nil {
		t.Fatal("short buffer not detected")
	}
}
