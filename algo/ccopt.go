package algo

import (
	"flash"
	"flash/graph"
)

type ccOptProps struct {
	P   uint32 // parent pointer maintaining the hook forest
	Mn  uint32 // min parent label among neighbors this round
	Old uint32 // parent at round start, for change detection
}

// CCOptResult carries the labels and the round count, which the paper's
// Appendix B highlights (7 rounds vs 6262 label-propagation iterations on
// road-USA).
type CCOptResult struct {
	Labels []uint32
	Rounds int
}

// CCOpt computes connected components with the optimized tree-hooking +
// pointer-jumping algorithm of Qin et al. (paper Algorithm 10): each vertex
// keeps a parent pointer p forming a forest; every round hooks trees onto
// smaller-labelled neighbors' trees and then applies pointer jumping
// p(v) = p(p(v)). Messages travel along *virtual* edges (v -> v.p and
// v.p -> v), the paper's communication beyond neighborhood, so the round
// count is O(log n) instead of O(diameter).
//
// The paper's Algorithm 10 pseudocode has unbound variables (A) and
// unbalanced operations; this implementation follows the same
// hook-and-jump structure in its cited source's min-label form.
func CCOpt(g *graph.Graph, opts ...flash.Option) (CCOptResult, error) {
	e, err := newEngine[ccOptProps](g, opts, flash.WithFullMirrors())
	if err != nil {
		return CCOptResult{}, err
	}
	defer e.Close()

	// Virtual edge sets over the parent pointers.
	hookEdges := flash.OutEdges(func(c *flash.Ctx[ccOptProps], u graph.VID) []graph.VID {
		return []graph.VID{graph.VID(c.Get(u).P)} // join(U, p): u -> u.p
	})
	jumpEdges := flash.InEdges(func(c *flash.Ctx[ccOptProps], d graph.VID) []graph.VID {
		return []graph.VID{graph.VID(c.Get(d).P)} // join(p, V): v.p -> v
	})

	e.VertexMap(e.All(), nil, func(v flash.Vertex[ccOptProps]) ccOptProps {
		return ccOptProps{P: uint32(v.ID), Mn: uint32(v.ID), Old: uint32(v.ID)}
	})

	rounds := 0
	for {
		rounds++
		// Snapshot p for change detection and reset the neighbor minimum.
		e.VertexMap(e.All(), nil, func(v flash.Vertex[ccOptProps]) ccOptProps {
			nv := *v.Val
			nv.Old = nv.P
			nv.Mn = nv.P
			return nv
		})
		// Gather the minimum parent label over real neighbors.
		e.EdgeMap(e.All(), e.E(),
			func(s, d flash.Vertex[ccOptProps]) bool { return s.Val.P < d.Val.Mn },
			func(s, d flash.Vertex[ccOptProps]) ccOptProps {
				nv := *d.Val
				nv.Mn = min32(nv.Mn, s.Val.P)
				return nv
			},
			nil,
			func(t, cur ccOptProps) ccOptProps {
				cur.Mn = min32(cur.Mn, t.Mn)
				return cur
			})
		// Hook: each vertex offers its neighbor-minimum to its tree root.
		e.EdgeMapSparse(e.All(), hookEdges,
			func(s, d flash.Vertex[ccOptProps]) bool { return s.Val.Mn < d.Val.P },
			func(s, d flash.Vertex[ccOptProps]) ccOptProps {
				nv := *d.Val
				nv.P = min32(nv.P, s.Val.Mn)
				return nv
			},
			nil,
			func(t, cur ccOptProps) ccOptProps {
				cur.P = min32(cur.P, t.P)
				return cur
			})
		// Pointer jumping (twice): p(v) = p(p(v)).
		for j := 0; j < 2; j++ {
			e.EdgeMapDense(e.All(), jumpEdges, nil,
				func(s, d flash.Vertex[ccOptProps]) ccOptProps {
					nv := *d.Val
					nv.P = s.Val.P
					return nv
				}, nil)
		}
		changed := e.VertexMap(e.All(), func(v flash.Vertex[ccOptProps]) bool {
			return v.Val.P != v.Val.Old
		}, nil)
		if changed.Size() == 0 {
			break
		}
	}

	res := CCOptResult{Labels: make([]uint32, g.NumVertices()), Rounds: rounds}
	e.Gather(func(v graph.VID, val *ccOptProps) { res.Labels[v] = val.P })
	return res, nil
}
