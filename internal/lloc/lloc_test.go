package lloc

import "testing"

func TestCountSource(t *testing.T) {
	src := []byte(`package x

// comment lines don't count
import "fmt"

type S struct{ A int } // data structure definitions don't count

func F(a int) int {
	// a comment
	b := a + 1

	if b > 2 {
		b++
	} else {
		b--
	}
	for i := 0; i < 3; i++ {
		fmt.Println(i)
	}
	switch b {
	case 1:
		b = 0
	default:
		b = 9
	}
	return b
}

func G() {}
`)
	rep, err := CountSource("x.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Funcs) != 2 {
		t.Fatalf("funcs: %+v", rep.Funcs)
	}
	// F: sig(1) + assign(1) + if(1)+inc(1)+dec(1) + for(1)+call(1) +
	// switch(1)+2 cases(2)+2 bodies(2) + return(1) = 13
	var f, g int
	for _, fc := range rep.Funcs {
		switch fc.Name {
		case "F":
			f = fc.Lines
		case "G":
			g = fc.Lines
		}
	}
	if f != 13 {
		t.Fatalf("F lines = %d, want 13", f)
	}
	if g != 1 {
		t.Fatalf("G lines = %d, want 1", g)
	}
	if rep.Total != 14 {
		t.Fatalf("total = %d", rep.Total)
	}
}

func TestCountFileErrors(t *testing.T) {
	if _, err := CountFile("/nonexistent.go"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := CountSource("bad.go", []byte("not go code")); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestCountRealAlgorithm(t *testing.T) {
	rep, err := CountFile("../../algo/bfs.go")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total < 10 || rep.Total > 60 {
		t.Fatalf("BFS LLoC = %d out of plausible range", rep.Total)
	}
}
