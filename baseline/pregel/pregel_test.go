package pregel

import (
	"math"
	"sort"
	"testing"

	"flash/graph"
)

var cfg = Config{Workers: 3}

func refBFS(g *graph.Graph, root graph.VID) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	q := []graph.VID{root}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
		}
	}
	return dist
}

func TestBFS(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.GenPath(30), graph.GenStar(20), graph.GenErdosRenyi(80, 300, 1),
	} {
		got, err := BFS(g, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := refBFS(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: dist[%d]=%d want %d", g.Name(), v, got[v], want[v])
			}
		}
	}
}

func TestCC(t *testing.T) {
	g := graph.GenErdosRenyi(60, 100, 2)
	got, err := CC(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Verify: same label iff connected (check edges + distinct label count
	// equals BFS-component count).
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if got[u] != got[v] {
			t.Fatalf("edge (%d,%d) with labels %d,%d", u, v, got[u], got[v])
		}
		return true
	})
	comps := map[uint32]bool{}
	for _, l := range got {
		comps[l] = true
	}
	// Count components by repeated BFS.
	seen := make([]bool, g.NumVertices())
	want := 0
	for s := 0; s < g.NumVertices(); s++ {
		if seen[s] {
			continue
		}
		want++
		for _, dv := range refBFS(g, graph.VID(s)) {
			_ = dv
		}
		stack := []graph.VID{graph.VID(s)}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.OutNeighbors(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	if len(comps) != want {
		t.Fatalf("%d labels, want %d components", len(comps), want)
	}
}

func TestSSSP(t *testing.T) {
	g := graph.WithRandomWeights(graph.GenErdosRenyi(50, 200, 3), 3)
	got, err := SSSP(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Relaxed check: triangle inequality holds along every edge and root=0.
	if got[0] != 0 {
		t.Fatal("root distance not 0")
	}
	g.Edges(func(u, v graph.VID, w float32) bool {
		if got[u]+w < got[v]-1e-5 {
			t.Fatalf("edge (%d,%d,%g): %g + w < %g", u, v, w, got[u], got[v])
		}
		return true
	})
}

func TestBCAgainstBrandes(t *testing.T) {
	g := graph.GenErdosRenyi(40, 140, 4)
	got, err := BC(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := refBrandes(g, 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6 {
			t.Fatalf("bc[%d]=%g want %g", v, got[v], want[v])
		}
	}
}

func refBrandes(g *graph.Graph, root graph.VID) []float64 {
	n := g.NumVertices()
	delta := make([]float64, n)
	sigma := make([]float64, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma[root] = 1
	dist[root] = 0
	var order []graph.VID
	q := []graph.VID{root}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		order = append(order, u)
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, v := range g.OutNeighbors(w) {
			if dist[v] == dist[w]+1 {
				delta[w] += sigma[w] / sigma[v] * (1 + delta[v])
			}
		}
	}
	return delta
}

func TestMIS(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.GenStar(15), graph.GenCycle(9), graph.GenErdosRenyi(60, 200, 5),
	} {
		in, err := MIS(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g.Edges(func(u, v graph.VID, _ float32) bool {
			if in[u] && in[v] {
				t.Fatalf("%s: adjacent %d,%d in MIS", g.Name(), u, v)
			}
			return true
		})
		for v := 0; v < g.NumVertices(); v++ {
			if in[v] {
				continue
			}
			ok := false
			for _, u := range g.OutNeighbors(graph.VID(v)) {
				if in[u] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("%s: %d uncovered", g.Name(), v)
			}
		}
	}
}

func TestMM(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.GenPath(11), graph.GenStar(8), graph.GenErdosRenyi(50, 160, 6), graph.GenCycle(7),
	} {
		match, err := MM(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if p := match[v]; p != -1 {
				if match[p] != int32(v) || !g.HasEdge(graph.VID(v), graph.VID(p)) {
					t.Fatalf("%s: bad match %d<->%d", g.Name(), v, p)
				}
			}
		}
		g.Edges(func(u, v graph.VID, _ float32) bool {
			if match[u] == -1 && match[v] == -1 {
				t.Fatalf("%s: edge (%d,%d) unmatched on both sides", g.Name(), u, v)
			}
			return true
		})
	}
}

func TestKC(t *testing.T) {
	g := graph.GenErdosRenyi(50, 180, 7)
	got, err := KC(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := refCore(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("core[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func refCore(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VID(v))
	}
	core := make([]int32, n)
	removed := make([]bool, n)
	maxSeen := 0
	for round := 0; round < n; round++ {
		bv, bd := -1, 1<<30
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bd {
				bv, bd = v, deg[v]
			}
		}
		if bd > maxSeen {
			maxSeen = bd
		}
		core[bv] = int32(maxSeen)
		removed[bv] = true
		for _, u := range g.OutNeighbors(graph.VID(bv)) {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	return core
}

func TestTC(t *testing.T) {
	for _, tc := range []struct {
		g    *graph.Graph
		want int64
	}{
		{graph.GenComplete(5), 10},
		{graph.GenComplete(6), 20},
		{graph.GenCycle(3), 1},
		{graph.GenStar(9), 0},
	} {
		got, err := TC(tc.g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("%s: %d triangles, want %d", tc.g.Name(), got, tc.want)
		}
	}
}

func TestGC(t *testing.T) {
	g := graph.GenErdosRenyi(60, 220, 8)
	colors, err := GC(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if colors[u] == colors[v] {
			t.Fatalf("edge (%d,%d) same color", u, v)
		}
		return true
	})
}

func TestLPA(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.VID(i), graph.VID(j))
			b.AddEdge(graph.VID(i+5), graph.VID(j+5))
		}
	}
	b.AddEdge(0, 5)
	g := b.Build()
	labels, err := LPA(g, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 5; v++ {
		if labels[v] != labels[1] || labels[v+5] != labels[6] {
			t.Fatalf("cliques fragmented: %v", labels)
		}
	}
}

func TestSCC(t *testing.T) {
	g := graph.FromEdges(6, true, [][2]graph.VID{{0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 2}, {1, 2}})
	got, err := SCC(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != got[1] || got[2] != got[3] || got[3] != got[4] {
		t.Fatalf("scc grouping wrong: %v", got)
	}
	if got[0] == got[2] || got[5] == got[0] || got[5] == got[2] {
		t.Fatalf("distinct sccs merged: %v", got)
	}
}

func TestBCCCount(t *testing.T) {
	// Two triangles sharing vertex 0 -> 2 BCCs.
	g := graph.FromEdges(5, false, [][2]graph.VID{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}})
	res, err := BCC(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for v, l := range res.Labels {
		if res.Parents[v] != -1 {
			seen[l] = true
		}
	}
	if len(seen) != 2 {
		t.Fatalf("%d BCC labels, want 2 (%v)", len(seen), res.Labels)
	}
}

func TestMSFMatchesKruskal(t *testing.T) {
	g := graph.WithRandomWeights(graph.GenErdosRenyi(60, 200, 9), 9)
	forest, total, err := MSF(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Kruskal reference.
	type edge struct {
		u, v graph.VID
		w    float32
	}
	var all []edge
	g.Edges(func(u, v graph.VID, w float32) bool {
		if u < v {
			all = append(all, edge{u, v, w})
		}
		return true
	})
	sort.Slice(all, func(i, j int) bool { return all[i].w < all[j].w })
	parent := make([]int, g.NumVertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var refTotal float64
	refEdges := 0
	for _, e := range all {
		if find(int(e.u)) != find(int(e.v)) {
			parent[find(int(e.u))] = find(int(e.v))
			refTotal += float64(e.w)
			refEdges++
		}
	}
	if len(forest) != refEdges {
		t.Fatalf("forest has %d edges, want %d", len(forest), refEdges)
	}
	if math.Abs(total-refTotal) > 1e-3 {
		t.Fatalf("forest weight %g, want %g", total, refTotal)
	}
}

func TestRunValidation(t *testing.T) {
	g := graph.GenPath(4)
	if _, err := Run(g, Program[int32, int32]{}, cfg); err == nil {
		t.Fatal("empty program accepted")
	}
	short := Config{Workers: 2, MaxSupersteps: 2}
	prog := Program[int32, int32]{
		Init:    func(graph.VID, int) int32 { return 0 },
		Compute: func(ctx *Context[int32, int32], val *int32, _ []int32) { ctx.SendToNeighbors(1) },
	}
	if _, err := Run(g, prog, short); err == nil {
		t.Fatal("runaway program not aborted")
	}
}
