package comm

import (
	"errors"
	"fmt"
)

// The error taxonomy of the transport layer. Transports never panic on wire
// conditions: every runtime failure is returned (or delivered through Drain)
// as one of the errors below so the engine can retry, recover from a
// checkpoint, or abort the run cleanly.
var (
	// ErrPeerStalled reports that Drain waited longer than the configured
	// drain timeout for the next frame of the current round. It usually means
	// a peer worker is hung (or an injected stall outlived the timeout).
	ErrPeerStalled = errors.New("comm: peer stalled (no frame within drain timeout)")

	// ErrAborted is delivered to workers blocked in transport calls when the
	// round is aborted (another worker failed first). It marks a *secondary*
	// failure: the root cause is the error that triggered the abort.
	ErrAborted = errors.New("comm: round aborted")

	// ErrConnDropped marks a send failure caused by a dropped connection.
	// It is transient: a retry may reconnect.
	ErrConnDropped = errors.New("comm: connection dropped")

	// ErrFrameTooLarge reports a frame whose length prefix exceeds
	// MaxFrameSize; the connection is treated as corrupt.
	ErrFrameTooLarge = errors.New("comm: frame length exceeds MaxFrameSize")

	// ErrTruncated reports a connection torn down in the middle of a frame
	// (as opposed to a clean close at a frame boundary).
	ErrTruncated = errors.New("comm: connection closed mid-frame")

	// ErrPeerDead is the liveness watchdog's verdict: a peer missed both its
	// end-of-round marker and its heartbeat window, so it is presumed
	// permanently lost (as opposed to ErrPeerStalled, where the peer's
	// heartbeats still arrive). Delivered wrapped in a WorkerError naming the
	// dead peer, it is the engine's signal to cold-restart that worker from
	// the durable checkpoint store.
	ErrPeerDead = errors.New("comm: peer dead (no heartbeat within liveness window)")

	// ErrCorrupt reports a frame that failed an integrity check: a CRC
	// mismatch on the TCP wire, or a payload that no longer decodes (injected
	// bit flips, torn writes). Corruption is a round failure, never a panic.
	ErrCorrupt = errors.New("comm: corrupt frame")
)

// TransientError wraps a failure that is worth retrying with backoff.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return "comm: transient: " + e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// Transient marks err as retryable. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err (or anything it wraps) is retryable.
func IsTransient(err error) bool {
	var t *TransientError
	return errors.As(err, &t)
}

// WorkerError attributes a transport failure to one worker.
type WorkerError struct {
	Worker int
	Err    error
}

func (e *WorkerError) Error() string { return fmt.Sprintf("comm: worker %d: %v", e.Worker, e.Err) }
func (e *WorkerError) Unwrap() error { return e.Err }

// HandshakeError rejects a connection whose hello frame failed validation:
// unparseable bytes (a hostile or confused client), an out-of-range worker
// id, or a stale membership epoch (a process from a previous incarnation of
// the cluster dialing a respawned mesh). The socket is closed at handshake
// time, before the peer can inject frames into a live round.
type HandshakeError struct {
	Worker int    // claimed worker id, -1 when the hello did not parse
	Epoch  uint32 // claimed epoch, 0 when the hello did not parse
	Reason string
}

func (e *HandshakeError) Error() string {
	return fmt.Sprintf("comm: handshake rejected (worker %d, epoch %d): %s", e.Worker, e.Epoch, e.Reason)
}

// CrashError is surfaced by the Faulty transport when an injected worker
// failure fires. It is not transient (retrying the send cannot help) but it
// is recoverable: rolling back to a checkpoint and replaying succeeds because
// injected crashes are one-shot.
type CrashError struct{ Worker int }

func (e *CrashError) Error() string {
	return fmt.Sprintf("comm: injected crash of worker %d", e.Worker)
}

// KillError is returned to a hard-killed worker's own transport calls: after
// a KillWorker fault fires, the victim is permanently dead — its mailbox is
// poisoned and every Send/EndRound/Drain/Heartbeat it attempts fails with
// this error until the transport is Revived. Unlike CrashError it models a
// process loss, not a transient hiccup: the worker's in-memory state is gone
// and only a cold restart from a durable checkpoint brings it back.
type KillError struct{ Worker int }

func (e *KillError) Error() string {
	return fmt.Sprintf("comm: worker %d killed (permanent loss)", e.Worker)
}

// EndpointCloser is implemented by transports that can tear down one
// worker's receive endpoint for real (hard-kill support): pending and future
// receives on that worker fail with err until the next Reset re-registers
// the mailbox.
type EndpointCloser interface {
	CloseEndpoint(w int, err error)
}

// Reviver is implemented by transports (the Faulty wrapper) that can clear a
// worker's killed state so a cold-restarted incarnation may use the
// transport again.
type Reviver interface {
	Revive(w int)
}

// Resizer is implemented by transports that support planned membership
// changes. Resize reconfigures the transport for n workers under a fresh
// membership epoch: queues, stashes, round counters and any abort poison are
// reset, and endpoints are created or retired to match the new count. The
// caller must have quiesced every worker first (no transport call in
// flight); stale frames of the old membership that surface later are
// discarded by Drain's epoch check.
type Resizer interface {
	Resize(n int) error
}

// ResizePhaser is implemented by fault-injecting transports (the Faulty
// wrapper): the engine brackets a resize's migration exchange with
// ResizePhase(true)/ResizePhase(false), so resize-scoped faults (kills,
// corrupt or delayed migration frames) fire exactly inside the window they
// script. Each armed window advances the phase ordinal the scripts key on.
type ResizePhaser interface {
	ResizePhase(active bool)
}
