package serve

import (
	"encoding/json"
	"fmt"

	"flash"
	"flash/graph"
)

// clusterAlgos are the algorithms whose drivers are cluster-safe: decisions
// branch only on subset sizes and Gather/Fold results (both replicated
// deterministically across worker processes), no driver-side Get of remote
// masters, no OnCheckpoint hooks, no FullMirrors requirement.
var clusterAlgos = map[string]bool{
	"bfs":      true,
	"cc":       true,
	"pagerank": true,
	"sssp":     true,
}

// ClusterSafe reports whether algo may run as a multi-process cluster job.
func ClusterSafe(algo string) bool { return clusterAlgos[algo] }

// ClusterAlgos lists the cluster-safe algorithm names.
func ClusterAlgos() []string {
	names := make([]string, 0, len(clusterAlgos))
	for name := range clusterAlgos {
		names = append(names, name)
	}
	return names
}

// RunAlgo executes a registered algorithm directly — no server, queue, or
// job machinery — and returns its result as JSON. The encoding is
// deterministic for a deterministic run (slices marshal in order), which is
// what lets the cluster layer compare cross-process results byte-for-byte
// against an in-process golden run.
func RunAlgo(algo string, g *graph.Graph, p JobParams, opts ...flash.Option) ([]byte, error) {
	spec, ok := algoRegistry[algo]
	if !ok {
		return nil, &UnknownAlgoError{Algo: algo}
	}
	if spec.needsRoot && p.Root == nil {
		return nil, &RequestError{Field: "root", Reason: fmt.Sprintf("required by algo %q", algo)}
	}
	if err := validateAgainstGraph(&JobRequest{Algo: algo, Params: p}, g); err != nil {
		return nil, err
	}
	values, err := spec.run(g, p, opts)
	if err != nil {
		return nil, err
	}
	return json.Marshal(values)
}
