package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flash"
	"flash/graph"
)

// registerBlockingAlgo installs a test-only algorithm that parks until
// release is closed, giving admission tests deterministic control over slot
// occupancy. Removed again on test cleanup.
func registerBlockingAlgo(t *testing.T, name string) (release chan struct{}) {
	t.Helper()
	release = make(chan struct{})
	algoRegistry[name] = algoSpec{run: func(g *graph.Graph, p JobParams, opts []flash.Option) (any, error) {
		<-release
		return []int32{}, nil
	}}
	t.Cleanup(func() { delete(algoRegistry, name) })
	return release
}

func admissionServer(t *testing.T, sched SchedulerConfig) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Scheduler: sched,
		Preload:   []GraphSpec{{Name: "g", Gen: "er", N: 64, M: 256, Seed: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestAdmissionQueueFull pins the bounded-queue rejection: one slot, queue
// depth one — the third submission must be a QueueFullError carrying the
// configured depth, and draining must make room again.
func TestAdmissionQueueFull(t *testing.T) {
	release := registerBlockingAlgo(t, "block")
	srv := admissionServer(t, SchedulerConfig{MaxConcurrent: 1, QueueDepth: 1})
	defer func() {
		close(release)
		srv.Close()
	}()

	running, err := srv.SubmitRequest(&JobRequest{Graph: "g", Algo: "block"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.SubmitRequest(&JobRequest{Graph: "g", Algo: "block"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = srv.SubmitRequest(&JobRequest{Graph: "g", Algo: "block"})
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("third submission: got %v, want QueueFullError", err)
	}
	if qf.Depth != 1 {
		t.Fatalf("QueueFullError.Depth = %d, want 1", qf.Depth)
	}
	if HTTPStatus(err) != http.StatusTooManyRequests || ErrorCode(err) != "queue_full" {
		t.Fatalf("mapping = %d/%s", HTTPStatus(err), ErrorCode(err))
	}

	if r, q := srv.Scheduler().Depth(); r != 1 || q != 1 {
		t.Fatalf("Depth() = %d running, %d queued", r, q)
	}
	// The queued→running transition happens on the scheduler goroutine.
	deadline := time.Now().Add(10 * time.Second)
	for running.State() != JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("first job state = %s, never reached running", running.State())
		}
		time.Sleep(time.Millisecond)
	}
	if queued.State() != JobQueued {
		t.Fatalf("second job state = %s, want queued", queued.State())
	}
}

// TestAdmissionTenantQuota pins per-tenant quota rejection with full field
// assertions, and that other tenants are unaffected.
func TestAdmissionTenantQuota(t *testing.T) {
	release := registerBlockingAlgo(t, "block")
	srv := admissionServer(t, SchedulerConfig{MaxConcurrent: 4, QueueDepth: 8, TenantQuota: 2})
	defer func() {
		close(release)
		srv.Close()
	}()

	for i := 0; i < 2; i++ {
		if _, err := srv.SubmitRequest(&JobRequest{Graph: "g", Algo: "block", Tenant: "acme"}); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	_, err := srv.SubmitRequest(&JobRequest{Graph: "g", Algo: "block", Tenant: "acme"})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("got %v, want QuotaError", err)
	}
	if qe.Tenant != "acme" || qe.Limit != 2 || qe.InFlight != 2 {
		t.Fatalf("QuotaError = %+v", qe)
	}
	if HTTPStatus(err) != http.StatusTooManyRequests || ErrorCode(err) != "quota_exceeded" {
		t.Fatalf("mapping = %d/%s", HTTPStatus(err), ErrorCode(err))
	}
	// Another tenant still has room.
	if _, err := srv.SubmitRequest(&JobRequest{Graph: "g", Algo: "block", Tenant: "other"}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

// TestAdmissionEvictedGraph: a job naming an evicted graph is rejected at
// submission with a typed UnknownGraphError.
func TestAdmissionEvictedGraph(t *testing.T) {
	srv := admissionServer(t, SchedulerConfig{})
	defer srv.Close()
	if err := srv.Catalog().Evict("g"); err != nil {
		t.Fatal(err)
	}
	_, err := srv.SubmitRequest(&JobRequest{Graph: "g", Algo: "cc"})
	var ug *UnknownGraphError
	if !errors.As(err, &ug) {
		t.Fatalf("got %v, want UnknownGraphError", err)
	}
	if ug.Graph != "g" {
		t.Fatalf("UnknownGraphError.Graph = %q", ug.Graph)
	}
	if HTTPStatus(err) != http.StatusNotFound || ErrorCode(err) != "unknown_graph" {
		t.Fatalf("mapping = %d/%s", HTTPStatus(err), ErrorCode(err))
	}
}

// TestAdmissionClosedServer: submissions after Close get ErrServerClosed.
func TestAdmissionClosedServer(t *testing.T) {
	srv := admissionServer(t, SchedulerConfig{})
	srv.Close()
	_, err := srv.Submit([]byte(`{"graph":"g","algo":"cc"}`))
	if !errors.Is(err, ErrServerClosed) {
		t.Fatalf("got %v, want ErrServerClosed", err)
	}
	if HTTPStatus(err) != http.StatusServiceUnavailable || ErrorCode(err) != "server_closed" {
		t.Fatalf("mapping = %d/%s", HTTPStatus(err), ErrorCode(err))
	}
}

// TestParseJobRequestRejections pins the parser's typed rejections field by
// field — the same taxonomy the fuzz corpus seeds.
func TestParseJobRequestRejections(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		field string // RequestError.Field, or "" when another type is expected
	}{
		{"malformed json", `{"graph":`, "body"},
		{"trailing data", `{"graph":"g","algo":"cc"}garbage`, "body"},
		{"unknown field", `{"graph":"g","algo":"cc","color":"red"}`, "body"},
		{"missing graph", `{"algo":"cc"}`, "graph"},
		{"missing algo", `{"graph":"g"}`, "algo"},
		{"nan eps", `{"graph":"g","algo":"pagerank","params":{"eps":NaN}}`, "body"},
		{"huge root", `{"graph":"g","algo":"bfs","params":{"root":4294967296}}`, "root"},
		{"missing root", `{"graph":"g","algo":"bfs"}`, "root"},
		{"bad max_iters", `{"graph":"g","algo":"pagerank","params":{"max_iters":0}}`, "max_iters"},
		{"negative eps", `{"graph":"g","algo":"pagerank","params":{"eps":-1}}`, "eps"},
		{"bad workers", `{"graph":"g","algo":"cc","params":{"workers":0}}`, "workers"},
		{"resize half set", `{"graph":"g","algo":"cc","params":{"resize_at":2}}`, "resize_at"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseJobRequest([]byte(tc.body))
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("got %v, want RequestError", err)
			}
			if re.Field != tc.field {
				t.Fatalf("RequestError.Field = %q, want %q", re.Field, tc.field)
			}
			if HTTPStatus(err) != http.StatusBadRequest || ErrorCode(err) != "bad_request" {
				t.Fatalf("mapping = %d/%s", HTTPStatus(err), ErrorCode(err))
			}
		})
	}

	_, err := ParseJobRequest([]byte(`{"graph":"g","algo":"quantum"}`))
	var ua *UnknownAlgoError
	if !errors.As(err, &ua) {
		t.Fatalf("got %v, want UnknownAlgoError", err)
	}
	if ua.Algo != "quantum" {
		t.Fatalf("UnknownAlgoError.Algo = %q", ua.Algo)
	}
	if HTTPStatus(err) != http.StatusBadRequest || ErrorCode(err) != "unknown_algo" {
		t.Fatalf("mapping = %d/%s", HTTPStatus(err), ErrorCode(err))
	}
}

// TestHTTPErrorEnvelopes drives the rejection paths over HTTP and asserts
// status codes and flattened envelope fields.
func TestHTTPErrorEnvelopes(t *testing.T) {
	release := registerBlockingAlgo(t, "block")
	srv := admissionServer(t, SchedulerConfig{MaxConcurrent: 1, QueueDepth: 1, TenantQuota: 1})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		close(release)
		srv.Close()
	}()

	post := func(body string) (int, errorBody) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var env errorBody
		if resp.StatusCode >= 400 {
			if err := json.Unmarshal(data, &env); err != nil {
				t.Fatalf("error body %q: %v", data, err)
			}
		}
		return resp.StatusCode, env
	}

	// Malformed request → 400 bad_request.
	code, env := post(`{"graph":`)
	if code != http.StatusBadRequest || env.Code != "bad_request" || env.Field != "body" {
		t.Fatalf("malformed: %d %+v", code, env)
	}
	// Unknown algo → 400 unknown_algo with the algo named.
	code, env = post(`{"graph":"g","algo":"quantum"}`)
	if code != http.StatusBadRequest || env.Code != "unknown_algo" || env.Algo != "quantum" {
		t.Fatalf("unknown algo: %d %+v", code, env)
	}
	// Unknown graph → 404 unknown_graph.
	code, env = post(`{"graph":"ghost","algo":"cc"}`)
	if code != http.StatusNotFound || env.Code != "unknown_graph" || env.Graph != "ghost" {
		t.Fatalf("unknown graph: %d %+v", code, env)
	}
	// Occupy the slot (tenant a), fill the queue (tenant b), then overflow
	// (tenant c) → 429 queue_full; quota bust for tenant a → 429
	// quota_exceeded.
	if code, env = post(`{"graph":"g","algo":"block","tenant":"a"}`); code != http.StatusAccepted {
		t.Fatalf("occupy: %d %+v", code, env)
	}
	if code, env = post(`{"graph":"g","algo":"block","tenant":"b"}`); code != http.StatusAccepted {
		t.Fatalf("queue: %d %+v", code, env)
	}
	code, env = post(`{"graph":"g","algo":"block","tenant":"c"}`)
	if code != http.StatusTooManyRequests || env.Code != "queue_full" || env.Depth != 1 {
		t.Fatalf("queue full: %d %+v", code, env)
	}
	code, env = post(`{"graph":"g","algo":"block","tenant":"a"}`)
	if code != http.StatusTooManyRequests || env.Code != "quota_exceeded" || env.Tenant != "a" || env.Limit != 1 {
		t.Fatalf("quota: %d %+v", code, env)
	}
	// Duplicate graph load → 409 duplicate_graph.
	resp, err := http.Post(hs.URL+"/v1/graphs", "application/json",
		strings.NewReader(`{"name":"g","gen":"path","n":8}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var dupEnv errorBody
	if err := json.Unmarshal(data, &dupEnv); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict || dupEnv.Code != "duplicate_graph" || dupEnv.Graph != "g" {
		t.Fatalf("duplicate load: %d %+v", resp.StatusCode, dupEnv)
	}
	// Unknown job id → 404 unknown_job.
	gresp, err := http.Get(hs.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(gresp.Body)
	gresp.Body.Close()
	var jobEnv errorBody
	if err := json.Unmarshal(data, &jobEnv); err != nil {
		t.Fatal(err)
	}
	if gresp.StatusCode != http.StatusNotFound || jobEnv.Code != "unknown_job" || jobEnv.Job != "job-999" {
		t.Fatalf("unknown job: %d %+v", gresp.StatusCode, jobEnv)
	}
}
