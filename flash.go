// Package flash is a Go implementation of FLASH, the programming model for
// distributed graph processing algorithms of Li et al. (ICDE 2023).
//
// FLASH extends Ligra's vertexSubset/VertexMap/EdgeMap model to the
// distributed setting: a graph is partitioned over workers with master–mirror
// vertex replication, every primitive is one BSP superstep, EdgeMap switches
// automatically between a dense (pull) and a sparse (push) kernel, and —
// beyond Ligra — messages may travel along arbitrary, even *virtual*, edge
// sets, enabling algorithms such as the optimized connected-components of
// Qin et al. that communicate beyond the neighborhood.
//
// A program is ordinary Go driver code chaining the primitives:
//
//	type props struct{ Dis int32 }
//
//	e, _ := flash.NewEngine[props](g, flash.WithWorkers(4))
//	defer e.Close()
//	U := e.VertexMap(e.All(), nil, func(v flash.Vertex[props]) props {
//	    if v.ID == root { return props{0} }
//	    return props{Dis: 1 << 30}
//	})
//	U = e.VertexMap(e.All(), func(v flash.Vertex[props]) bool { return v.ID == root }, nil)
//	for U.Size() != 0 {
//	    U = e.EdgeMap(U, e.E(), nil, update, cond, reduce)
//	}
//
// The algorithm suite from the paper lives in flash/algo; the runtime
// (FLASHWARE) lives in internal packages.
package flash

import (
	"time"

	"flash/graph"
	"flash/internal/comm"
	"flash/internal/core"
	"flash/metrics"
)

// VID identifies a vertex (dense ids 0..n-1).
type VID = graph.VID

// NoVertex is the "no vertex" sentinel for parent-pointer style properties.
const NoVertex = graph.NoVertex

// Vertex is the view of a vertex passed to user callbacks: id, degrees in
// the base graph, and a pointer to its property value.
type Vertex[V any] = core.Vtx[V]

// VertexSubset is the paper's distributed vertexSubset type.
type VertexSubset = core.Subset

// EdgeSet is the H parameter of EdgeMap; see E, Reverse, JoinEU, JoinEE,
// OutEdges and InEdges.
type EdgeSet[V any] = core.EdgeSet[V]

// Ctx gives edge-set functions read access to current vertex states.
type Ctx[V any] = core.Ctx[V]

// Mode selects an update-propagation kernel.
type Mode = core.Mode

// Propagation modes.
const (
	Auto = core.Auto
	Push = core.Push
	Pull = core.Pull
)

// Option configures an Engine.
type Option func(*core.Config)

// WithWorkers sets the number of simulated workers (default 4).
func WithWorkers(n int) Option { return func(c *core.Config) { c.Workers = n } }

// WithThreads sets the number of threads per worker (default 1).
func WithThreads(n int) Option { return func(c *core.Config) { c.Threads = n } }

// WithTransport supplies a custom transport (e.g. comm.NewTCP).
func WithTransport(t comm.Transport) Option { return func(c *core.Config) { c.Transport = t } }

// WithTCP routes inter-worker frames over real loopback TCP sockets instead
// of in-memory mailboxes, exercising the full serialization and network
// path.
func WithTCP() Option { return func(c *core.Config) { c.UseTCP = true } }

// WithMode forces all EdgeMaps into one propagation mode (for the Fig. 3
// push/pull/dual comparison).
func WithMode(m Mode) Option { return func(c *core.Config) { c.Mode = m } }

// WithDenseThreshold sets the density denominator of the auto switch
// (default 20: dense when |U|+outDeg(U) > |E|/20).
func WithDenseThreshold(k int) Option { return func(c *core.Config) { c.DenseThreshold = k } }

// WithFullMirrors replicates every vertex on every worker. Required by
// algorithms using virtual edge sets or arbitrary cross-vertex reads
// (communication beyond neighborhood).
func WithFullMirrors() Option { return func(c *core.Config) { c.FullMirrors = true } }

// WithHashPlacement assigns vertices to workers by id modulo instead of
// contiguous ranges.
func WithHashPlacement() Option { return func(c *core.Config) { c.UseHashPlacement = true } }

// WithBatchBytes enables eager buffer flushing above the given size so
// communication overlaps computation (0 disables the overlap).
func WithBatchBytes(n int) Option { return func(c *core.Config) { c.BatchBytes = n } }

// WithoutNecessaryMirrors broadcasts every synchronization to all workers
// (ablation of the necessary-mirrors optimization).
func WithoutNecessaryMirrors() Option {
	return func(c *core.Config) { c.DisableNecessaryMirrors = true }
}

// WithCollector directs runtime metrics into col.
func WithCollector(col *metrics.Collector) Option { return func(c *core.Config) { c.Collector = col } }

// ---- out-of-core block backend ----

// WithBlockBackend routes the engine's base edge set E through an
// out-of-core FLASHBLK block graph: edge iteration reads varint-delta
// compressed, CRC-checked blocks through a bounded per-worker cache instead
// of in-memory CSR rows, so graphs larger than RAM run unchanged. The graph
// passed to NewEngine must be bg.Skeleton(). Dense supersteps stream the
// worker's blocks sequentially; sparse supersteps read only blocks containing
// active sources (per-block frontier-residency bitmaps).
func WithBlockBackend(bg *graph.BlockGraph) Option {
	return func(c *core.Config) { c.BlockGraph = bg }
}

// WithBlockCacheBytes bounds the decoded-block cache budget shared evenly by
// the engine's workers (default: 25% of the graph's decoded edge bytes,
// minimum 1 MiB). Only meaningful with WithBlockBackend or a block-graph
// handle.
func WithBlockCacheBytes(n int64) Option {
	return func(c *core.Config) { c.BlockCacheBytes = n }
}

// ---- fault tolerance ----

// FaultPlan scripts deterministic fault injection (chaos testing); see
// WithFaultPlan. Zero value = no faults.
type FaultPlan = comm.FaultPlan

// ConnDrop scripts a transient connection drop in a FaultPlan.
type ConnDrop = comm.ConnDrop

// WorkerStall scripts a worker stall in a FaultPlan.
type WorkerStall = comm.WorkerStall

// WorkerCrash scripts a mid-superstep worker failure in a FaultPlan.
type WorkerCrash = comm.WorkerCrash

// WorkerKill scripts the permanent death of a worker in a FaultPlan: its
// transport endpoint is torn down for real and every call it makes fails
// until the engine cold-restarts it from a checkpoint.
type WorkerKill = comm.WorkerKill

// FrameCorrupt scripts a single-bit payload flip on one edge in a FaultPlan,
// exercising the receive-side frame-integrity path.
type FrameCorrupt = comm.FrameCorrupt

// ResizeKill scripts a permanent worker death inside the Phase-th migration
// window of a membership resize, exercising mid-migration rollback.
type ResizeKill = comm.ResizeKill

// ResizeFrameCorrupt scripts a single-bit flip in a migration frame,
// exercising the FLASHCKP container's CRC rejection during a resize.
type ResizeFrameCorrupt = comm.ResizeFrameCorrupt

// ResizeFrameDelay holds a worker's migration frames back to the end of the
// migration round.
type ResizeFrameDelay = comm.ResizeFrameDelay

// CheckpointStore persists engine checkpoint images; see WithCheckpointStore.
type CheckpointStore = core.CheckpointStore

// CheckpointImage is one encoded engine snapshot as handed to a
// CheckpointStore.
type CheckpointImage = core.CheckpointImage

// Liveness and integrity errors surfaced by failed runs (match with
// errors.Is).
var (
	// ErrPeerStalled: a peer missed the superstep deadline but its
	// heartbeats are current (slow, not dead).
	ErrPeerStalled = comm.ErrPeerStalled
	// ErrPeerDead: a peer missed the superstep deadline and its heartbeats
	// have stopped — the liveness layer declared it permanently lost.
	ErrPeerDead = comm.ErrPeerDead
	// ErrCorrupt: a frame failed its integrity check (CRC mismatch or
	// undecodable payload).
	ErrCorrupt = comm.ErrCorrupt
	// ErrEngineClosed: the operation raced or followed Engine.Close.
	ErrEngineClosed = core.ErrEngineClosed
)

// ConfigError reports an invalid engine option value (returned by NewEngine
// and Resize; match with errors.As).
type ConfigError = core.ConfigError

// NewMemCheckpointStore returns the default in-memory checkpoint store.
func NewMemCheckpointStore() CheckpointStore { return core.NewMemStore() }

// NewFileCheckpointStore returns a durable file-backed checkpoint store at
// path: versioned format, per-section CRC32-C, atomic write-then-rename.
// Checkpoints survive the loss of all in-process worker state, so a
// hard-killed worker can be cold-restarted from the file.
func NewFileCheckpointStore(path string) (CheckpointStore, error) {
	return core.NewFileStore(path)
}

// RunResult summarizes a Run: supersteps executed plus the fault-tolerance
// counters (checkpoints taken, recoveries performed, sends retried,
// connections re-established).
type RunResult = core.RunResult

// WithCheckpointEvery snapshots all worker state every n successful
// supersteps at the BSP barrier and enables rollback+replay recovery from
// transport failures (stalls, drops, injected crashes). 0 (the default)
// disables checkpointing: failures then abort the run.
func WithCheckpointEvery(n int) Option { return func(c *core.Config) { c.CheckpointEvery = n } }

// WithDrainTimeout bounds how long a worker waits for a peer's next frame
// within one exchange round before the superstep fails (stall detection,
// upgraded to ErrPeerDead when the peer's heartbeats have also stopped).
// 0 (the default) selects core.DefaultDrainTimeout (30s); negative waits
// forever.
func WithDrainTimeout(d time.Duration) Option { return func(c *core.Config) { c.DrainTimeout = d } }

// WithHeartbeatEvery runs a background heartbeater per worker at the given
// interval, feeding the transports' liveness clocks so a dead worker is
// classified as ErrPeerDead (triggering cold restart under checkpointing)
// rather than a generic stall. 0 (the default) disables heartbeats.
func WithHeartbeatEvery(d time.Duration) Option {
	return func(c *core.Config) { c.HeartbeatEvery = d }
}

// WithCheckpointStore directs checkpoint images into store — pass
// NewFileCheckpointStore for durability across permanent worker loss. The
// default (with WithCheckpointEvery) is an in-memory store. The engine never
// closes the store.
func WithCheckpointStore(store CheckpointStore) Option {
	return func(c *core.Config) { c.Store = store }
}

// WithMaxRecoveries bounds checkpoint rollbacks per engine (default 3), so a
// persistent fault cannot loop forever.
func WithMaxRecoveries(n int) Option { return func(c *core.Config) { c.MaxRecoveries = n } }

// WithSendRetries sets how many times a transient send failure is retried
// with exponential backoff before the superstep fails (default 4; negative
// disables retries).
func WithSendRetries(n int) Option { return func(c *core.Config) { c.SendRetries = n } }

// WithRetryBackoff sets the initial send-retry backoff (default 500µs),
// doubling per attempt.
func WithRetryBackoff(d time.Duration) Option { return func(c *core.Config) { c.RetryBackoff = d } }

// WithFaultPlan wraps the engine's transport with deterministic seeded fault
// injection: probabilistic send failures and frame delays, within-round
// reordering, and scripted connection drops, worker stalls, and worker
// crashes. Combine with WithCheckpointEvery and WithDrainTimeout to exercise
// the recovery machinery.
func WithFaultPlan(p FaultPlan) Option { return func(c *core.Config) { c.FaultPlan = &p } }

// ---- cluster (multi-process) mode ----

// ClusterSpec switches an engine into multi-process SPMD mode: this process
// computes only Resident's share, peer processes own the other workers, and
// the transport must be a connected comm.ListenTCPCluster endpoint. See
// internal/cluster for the coordinator that spawns and supervises such
// processes.
type ClusterSpec = core.ClusterSpec

// WorkerStore is one worker process's durable state directory: checkpoint
// images plus the superstep log that deterministic fast-forward resume
// replays.
type WorkerStore = core.WorkerStore

// OpenWorkerStore opens (creating if needed) worker w's durable state
// directory under dir.
func OpenWorkerStore(dir string, w int) (*WorkerStore, error) {
	return core.OpenWorkerStore(dir, w)
}

// WithCluster switches the engine into cluster mode with the given spec.
// Incompatible with fault plans, resize policies, shared graphs and the
// block backend; requires WithTransport carrying a cluster endpoint.
func WithCluster(spec ClusterSpec) Option {
	return func(c *core.Config) { c.Cluster = &spec }
}

// ---- elastic membership ----

// StepInfo is the per-superstep snapshot handed to a ResizePolicy: supersteps
// completed, the frontier size the step produced, the current worker count,
// and the graph's vertex count.
type StepInfo = core.StepInfo

// ResizePolicy decides the desired worker count after each superstep;
// returning 0 (or the current count) keeps the membership unchanged. See
// WithResizePolicy, DensityPolicy and SchedulePolicy.
type ResizePolicy = core.ResizePolicy

// WithResizePolicy consults policy after every successful superstep and
// resizes the engine at the barrier when it asks for a different worker
// count. Combine with WithCheckpointEvery so a failed migration rolls back
// to a durable image. The default transports support resize; a custom
// WithTransport must implement comm.Resizer.
func WithResizePolicy(policy ResizePolicy) Option {
	return func(c *core.Config) { c.ResizePolicy = policy }
}

// DensityPolicy returns a frontier-density-driven ResizePolicy: scale out to
// maxWorkers while the frontier is dense (≥ 1/8 of the vertices), scale in
// to minWorkers when it is sparse (≤ 1/64), and keep the current membership
// in between — the hysteresis band stops resize thrash on the way down.
func DensityPolicy(minWorkers, maxWorkers int) ResizePolicy {
	return func(s StepInfo) int {
		switch {
		case s.Frontier*8 >= s.Vertices:
			return maxWorkers
		case s.Frontier*64 <= s.Vertices:
			return minWorkers
		default:
			return 0
		}
	}
}

// SchedulePolicy returns a ResizePolicy driven by an explicit superstep →
// worker-count table (resize after the given superstep count has completed).
// Supersteps absent from the table keep the current membership.
func SchedulePolicy(schedule map[int]int) ResizePolicy {
	return func(s StepInfo) int { return schedule[s.Superstep] }
}

// Engine runs FLASH programs over one property type V (a flat struct; see
// comm.Codec for the supported field kinds).
type Engine[V any] struct {
	c *core.Engine[V]
}

// NewEngine partitions g over the configured workers and allocates the
// per-worker property state.
func NewEngine[V any](g *graph.Graph, opts ...Option) (*Engine[V], error) {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	ce, err := core.NewEngine[V](g, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine[V]{c: ce}, nil
}

// Close releases the engine's transport.
func (e *Engine[V]) Close() error { return e.c.Close() }

// Graph returns the topology the engine runs over.
func (e *Engine[V]) Graph() *graph.Graph { return e.c.Graph() }

// Workers returns the worker count.
func (e *Engine[V]) Workers() int { return e.c.Workers() }

// Resize changes the worker count to n at the current superstep barrier,
// migrating master state between the old and new partitions and rebuilding
// mirrors. Output is byte-identical to a run that used n workers throughout.
// With checkpointing enabled the resize is crash-safe: a failure
// mid-migration rolls back to the pre-resize image and retries under the
// MaxRecoveries budget. VertexSubsets held across a resize remain valid.
func (e *Engine[V]) Resize(n int) error { return e.c.Resize(n) }

// Metrics returns the runtime metrics collector.
func (e *Engine[V]) Metrics() *metrics.Collector { return e.c.Metrics() }

// ReplicationFactor returns the average copies per vertex of the partition.
func (e *Engine[V]) ReplicationFactor() float64 { return e.c.ReplicationFactor() }

// StateBytes returns the resident per-worker property-state footprint summed
// over all workers: slot-indexed current states, next/pending master buffers,
// materialized accumulator shards, per-step bitsets, and slot-table
// auxiliaries. Deterministic for a fixed graph and configuration, so benches
// can guard it against regression.
func (e *Engine[V]) StateBytes() uint64 { return e.c.StateBytes() }

// CheckMirrorCoherence verifies that every mirror equals its master's state
// according to eq — the §IV-A consistency invariant. Driver-side, intended
// for tests.
func (e *Engine[V]) CheckMirrorCoherence(eq func(a, b V) bool) error {
	return e.c.CheckMirrorCoherence(eq)
}

// NumVertices returns |V| of the graph.
func (e *Engine[V]) NumVertices() int { return e.c.Graph().NumVertices() }

// Run executes a FLASH driver program with fault handling engaged: a
// superstep failure that retry and checkpoint recovery cannot absorb is
// returned as an error (with all worker goroutines joined and the transport
// aborted) instead of panicking, along with the run's fault-tolerance
// counters. Programming errors (mixed-engine subsets, nil reduce in push
// mode, ...) still panic.
func (e *Engine[V]) Run(program func() error) (RunResult, error) { return e.c.Run(program) }

// Err returns the first unrecovered superstep failure, or nil. Once failed,
// the engine refuses further supersteps.
func (e *Engine[V]) Err() error { return e.c.Err() }

// OnCheckpoint registers hooks for driver-side state (e.g. a DSU) that must
// be rewound together with engine state on checkpoint recovery: save is
// called at each checkpoint, and its value is handed back to restore on
// rollback.
func (e *Engine[V]) OnCheckpoint(save func() any, restore func(any)) {
	e.c.OnCheckpoint(save, restore)
}
