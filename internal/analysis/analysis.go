// Package analysis reproduces the static analysis the paper's code generator
// performs (§IV-B, Table II): deciding which vertex properties are
// *critical*, i.e. accessed by vertices other than their master and
// therefore in need of mirror synchronization. Non-critical properties are
// kept master-local, cutting network traffic and mirror memory (§IV-C,
// "Synchronize critical properties only").
//
// The C++ FLASH derives access patterns by analyzing generated code; in Go
// the algorithm (or the engine, observing a step's shape) records accesses
// explicitly, and the same Table II rules are applied.
package analysis

// Op is the kind of access performed on a property.
type Op int

const (
	Get Op = iota
	Put
)

// Role says whether the access touched the source or target vertex of an
// edge-map, or the single vertex of a vertex-map.
type Role int

const (
	VertexMapSelf Role = iota
	DenseSource
	DenseTarget
	SparseSource
	SparseTarget
)

// Access is one recorded property access.
type Access struct {
	Property string
	Op       Op
	Role     Role
}

// Critical applies Table II to one access: an access makes a property
// critical iff it is a get of the *source* in EDGEMAPDENSE, or a get/put of
// the *target* in EDGEMAPSPARSE. VertexMap accesses and dense-target /
// sparse-source accesses never force synchronization (the master computes
// them locally).
func Critical(a Access) bool {
	switch a.Role {
	case DenseSource:
		return a.Op == Get
	case SparseTarget:
		return true // both get and put are remote-visible
	default:
		return false
	}
}

// Report summarizes the criticality decision for a set of properties.
type Report struct {
	// CriticalSet maps property name -> whether any recorded access made it
	// critical.
	CriticalSet map[string]bool
}

// Analyze folds a program's recorded accesses into a Report.
func Analyze(accesses []Access) Report {
	r := Report{CriticalSet: make(map[string]bool)}
	for _, a := range accesses {
		if _, ok := r.CriticalSet[a.Property]; !ok {
			r.CriticalSet[a.Property] = false
		}
		if Critical(a) {
			r.CriticalSet[a.Property] = true
		}
	}
	return r
}

// AnyCritical reports whether at least one property in the report is
// critical; when false, an engine may skip mirror synchronization for the
// whole step.
func (r Report) AnyCritical() bool {
	for _, c := range r.CriticalSet {
		if c {
			return true
		}
	}
	return false
}

// StepShape describes an engine step for whole-value synchronization
// decisions when no per-property records exist: the conservative default is
// that the step's updates are critical exactly when a later step could read
// them remotely. The engine uses these helpers to decide sync necessity
// per step kind.
type StepShape int

const (
	StepVertexMap StepShape = iota
	StepEdgeMapDense
	StepEdgeMapSparse
)

// UpdatesVisibleRemotely reports whether a step of this shape produces
// master updates that remote workers may read afterwards, assuming the
// program may run any step next. VertexMap and dense updates are read as
// dense-sources or sparse-targets of later steps, so all shapes answer true;
// the distinction the engine can actually exploit without per-property
// records is the *scope* of synchronization (necessary mirrors vs broadcast),
// not whether to sync.
func UpdatesVisibleRemotely(StepShape) bool { return true }
