package core

import (
	"fmt"

	"flash/graph"
	"flash/internal/bitset"
)

// Subset is the paper's vertexSubset: a distributed set of vertex ids. Each
// worker holds the members among its masters as a bitset over local indices
// (§IV-A, "a worker simply maintains a set of vertex ids, representing the
// master vertices in the set that locate on it").
type Subset struct {
	owner anyEngine
	local []*bitset.Bitset
	count int
}

// anyEngine lets Subset validate that handles are not mixed across engines
// without making Subset generic.
type anyEngine interface{ engineTag() }

func (e *Engine[V]) engineTag() {}

func (e *Engine[V]) newSubset() *Subset {
	s := &Subset{owner: e, local: make([]*bitset.Bitset, e.cfg.Workers)}
	for w := 0; w < e.cfg.Workers; w++ {
		s.local[w] = bitset.New(e.place.LocalCount(w))
	}
	return s
}

func (e *Engine[V]) checkSubset(s *Subset) {
	if s.owner != anyEngine(e) {
		panic("core: vertexSubset used with a different engine")
	}
}

// recount refreshes the cached cardinality.
func (s *Subset) recount() {
	c := 0
	for _, b := range s.local {
		c += b.Count()
	}
	s.count = c
}

// Size returns |U| (the paper's SIZE primitive).
func (s *Subset) Size() int { return s.count }

// Contains reports membership of v.
func (e *Engine[V]) Contains(s *Subset, v graph.VID) bool {
	e.checkSubset(s)
	e.checkVertex(v)
	w := e.place.Owner(v)
	return s.local[w].Test(e.place.LocalIndex(v))
}

// Add inserts v (the paper's ADD auxiliary operator).
func (e *Engine[V]) Add(s *Subset, v graph.VID) {
	e.checkSubset(s)
	e.checkVertex(v)
	w := e.place.Owner(v)
	if !s.local[w].TestAndSet(e.place.LocalIndex(v)) {
		s.count++
	}
}

func (e *Engine[V]) checkVertex(v graph.VID) {
	if int(v) >= e.g.NumVertices() {
		panic(fmt.Sprintf("core: vertex %d out of range [0,%d)", v, e.g.NumVertices()))
	}
}

// All returns the subset containing every vertex.
func (e *Engine[V]) All() *Subset {
	s := e.newSubset()
	for _, b := range s.local {
		b.Fill()
	}
	s.count = e.g.NumVertices()
	return s
}

// Empty returns the empty subset.
func (e *Engine[V]) Empty() *Subset { return e.newSubset() }

// FromIDs builds a subset from explicit ids.
func (e *Engine[V]) FromIDs(ids ...graph.VID) *Subset {
	s := e.newSubset()
	for _, v := range ids {
		e.Add(s, v)
	}
	return s
}

// Union returns a ∪ b (paper's UNION).
func (e *Engine[V]) Union(a, b *Subset) *Subset {
	e.checkSubset(a)
	e.checkSubset(b)
	out := e.newSubset()
	for w := range out.local {
		out.local[w].CopyFrom(a.local[w])
		out.local[w].Union(b.local[w])
	}
	out.recount()
	return out
}

// Minus returns a \ b (paper's MINUS).
func (e *Engine[V]) Minus(a, b *Subset) *Subset {
	e.checkSubset(a)
	e.checkSubset(b)
	out := e.newSubset()
	for w := range out.local {
		out.local[w].CopyFrom(a.local[w])
		out.local[w].Minus(b.local[w])
	}
	out.recount()
	return out
}

// Intersect returns a ∩ b (paper's INTERSACT).
func (e *Engine[V]) Intersect(a, b *Subset) *Subset {
	e.checkSubset(a)
	e.checkSubset(b)
	out := e.newSubset()
	for w := range out.local {
		out.local[w].CopyFrom(a.local[w])
		out.local[w].Intersect(b.local[w])
	}
	out.recount()
	return out
}

// IDs returns all member ids in ascending order (driver-side; intended for
// result extraction and tests).
func (e *Engine[V]) IDs(s *Subset) []graph.VID {
	e.checkSubset(s)
	out := make([]graph.VID, 0, s.count)
	for v := 0; v < e.g.NumVertices(); v++ {
		if e.Contains(s, graph.VID(v)) {
			out = append(out, graph.VID(v))
		}
	}
	return out
}

// degreeSum computes Σ outDegreeHint over the members, used by the density
// rule. Runs worker-parallel.
func (e *Engine[V]) degreeSum(s *Subset, h EdgeSet[V]) int {
	sums := make([]int, e.cfg.Workers)
	// No exchange rounds here: the only possible failures are callback panics,
	// which are non-recoverable, so unwind straight to Run.
	if err := e.parallelWorkers(func(w *worker[V]) error {
		total := 0
		s.local[w.id].Range(func(l int) bool {
			total += h.OutDegreeHint(&w.ctx, e.place.GlobalID(w.id, l))
			return true
		})
		sums[w.id] = total
		return nil
	}); err != nil {
		e.failed = err
		panic(runtimeFailure{err})
	}
	total := 0
	for _, x := range sums {
		total += x
	}
	return total
}
