// Command flashbench regenerates the paper's tables and figures.
//
// Usage:
//
//	flashbench -exp tableV  [-scale N] [-workers N] [-budget 60s] [-datasets OR,TW]
//	flashbench -exp all     # every experiment in sequence
//	flashbench -exp fixed   [-reps 3] [-out BENCH_flash.json]
//
// Experiments: tableI, tableIII, tableV, tableVI, fig1, fig3, fig4a, fig4b,
// fig4cd, breakdown, ablation, ccopt, all, fixed.
//
// "fixed" runs the deterministic perf-regression suite (BFS/CC/PageRank/SSSP
// x mem/tcp x workers {1,2,4} x threads {1,2,4} plus the sparse-EdgeMap
// microbenchmark) and writes BENCH_flash.json, the baseline that
// bench/regress_test.go guards.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flash/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "tableV", "experiment to regenerate")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		workers  = flag.Int("workers", 4, "worker count")
		threads  = flag.Int("threads", 1, "threads per worker (FLASH)")
		budget   = flag.Duration("budget", 60*time.Second, "per-cell time budget")
		datasets = flag.String("datasets", "", "comma-separated dataset abbreviations (default all)")
		lpaIter  = flag.Int("lpa-iters", 10, "LPA iterations")
		clK      = flag.Int("cl-k", 4, "clique size for CL")
		reps     = flag.Int("reps", 3, "timed repetitions per fixed-suite cell (clamped to >= 3; the median is reported)")
		out      = flag.String("out", "BENCH_flash.json", "output path for -exp fixed")
	)
	flag.Parse()

	if *exp == "fixed" {
		suite, err := bench.FixedSuite(*reps)
		if err == nil {
			err = bench.WritePerfJSON(*out, suite)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "flashbench:", err)
			os.Exit(1)
		}
		bench.PrintPerf(os.Stdout, suite)
		fmt.Printf("\nwrote %s\n", *out)
		return
	}

	opt := bench.Options{
		Scale:  *scale,
		Budget: *budget,
		Run:    bench.RunConfig{Workers: *workers, Threads: *threads, LPAIter: *lpaIter, CLK: *clK},
	}
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}

	if err := run(*exp, opt); err != nil {
		fmt.Fprintln(os.Stderr, "flashbench:", err)
		os.Exit(1)
	}
}

func run(exp string, opt bench.Options) error {
	out := os.Stdout
	header := func(title string) { fmt.Fprintf(out, "\n== %s ==\n", title) }
	switch exp {
	case "tableI":
		header("Table I: expressiveness & productivity (LLoC, lower is better; x = inexpressible)")
		return bench.TableI(out)
	case "tableIII":
		header("Table III: dataset analogs")
		bench.TableIII(out, opt.Scale)
		return nil
	case "tableV":
		header("Table V: execution time (seconds) of the first eight applications")
		grid := bench.TableV(opt)
		grid.Print(out)
		wins, close2 := bench.WinRate(grid)
		dwins, dclose2 := bench.WinRateDistributed(grid)
		fmt.Fprintf(out, "\nFLASH vs all systems:        fastest in %.1f%% of cells, within 2x in %.1f%%\n", wins*100, close2*100)
		fmt.Fprintf(out, "FLASH vs distributed systems: fastest in %.1f%% of cells, within 2x in %.1f%%\n", dwins*100, dclose2*100)
		return nil
	case "tableVI":
		header("Table VI: execution time (seconds) of the six advanced applications")
		bench.TableVI(opt).Print(out)
		return nil
	case "fig1":
		header("Fig. 1: slowdown vs fastest framework (heat map values)")
		bench.Fig1(bench.RunGrid(append(append([]bench.App{}, bench.TableVApps...), bench.TableVIApps...), opt), out)
		return nil
	case "fig3":
		header("Fig. 3: BFS under sparse / dense / dual propagation (seconds)")
		bench.Fig3(out, opt)
		return nil
	case "fig4a":
		header("Fig. 4(a): active vertices per iteration, MM-basic vs MM-opt (TW)")
		return bench.Fig4a(out, opt)
	case "fig4b":
		header("Fig. 4(b): TC on TW with varying threads")
		return bench.Fig4b(out, opt)
	case "fig4cd":
		header("Fig. 4(c,d): TC on TW and CL on UK with varying workers")
		return bench.Fig4cd(out, opt)
	case "breakdown":
		header("Sec. V-E: execution-time breakdown of CC-opt on TW")
		return bench.Breakdown(out, opt)
	case "ablation":
		header("Sec. IV-C: optimization ablations on CC (OR)")
		return bench.Ablation(out, opt)
	case "ccopt":
		header("Appendix B: CC-basic supersteps vs CC-opt rounds (US)")
		return bench.CCOptRounds(out, opt)
	case "all":
		for _, e := range []string{"tableIII", "tableI", "tableV", "tableVI", "fig1", "fig3", "fig4a", "fig4b", "fig4cd", "breakdown", "ablation", "ccopt"} {
			if err := run(e, opt); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
