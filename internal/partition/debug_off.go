//go:build !flashdebug

package partition

import "flash/graph"

// DebugAssertions reports whether this binary was built with the flashdebug
// tag (runtime invariant assertions enabled).
const DebugAssertions = false

// assertResident is a no-op in release builds; it compiles away entirely.
func (s *SlotTable) assertResident(graph.VID) {}
