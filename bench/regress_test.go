package bench

import (
	"os"
	"testing"
)

// TestSparseAllocRegression guards the zero-allocation hot path: it loads
// the committed BENCH_flash.json baseline and re-measures the sparse-EdgeMap
// microbenchmark, failing if allocs/op regressed by more than 20% (plus a
// small absolute slack so single-digit baselines don't flake). Skips when no
// baseline is committed and under the race detector, whose instrumentation
// changes allocation counts.
func TestSparseAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	if testing.Short() {
		t.Skip("microbenchmark run skipped in -short mode")
	}
	base, err := ReadPerfJSON("../BENCH_flash.json")
	if os.IsNotExist(err) {
		t.Skip("no committed BENCH_flash.json baseline")
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		key        string
		w, threads int
	}{
		{"edgemap_sparse_w1t1", 1, 1},
		{"edgemap_sparse_w4t1", 4, 1},
	} {
		b, ok := base.Micro[c.key]
		if !ok {
			t.Errorf("%s missing from baseline", c.key)
			continue
		}
		cur := MicroSparse(c.w, c.threads)
		limit := b.AllocsPerOp + b.AllocsPerOp/5 + 8
		if got := cur.AllocsPerOp(); got > limit {
			t.Errorf("%s: %d allocs/op, baseline %d (limit %d): hot-path allocations regressed",
				c.key, got, b.AllocsPerOp, limit)
		} else {
			t.Logf("%s: %d allocs/op (baseline %d, limit %d)", c.key, got, b.AllocsPerOp, limit)
		}
	}
}

// TestStateMemoryRegression guards the compact master+mirror state layout: it
// re-measures per-worker state bytes on the fixed RMAT graph and fails if
// state_bytes_per_vertex grew more than 20% over the committed baseline, or
// if the layout stops beating the legacy O(|V|*Threads) model by at least
// half at Workers=4, Threads=4. StateBytes is computed from slice capacities,
// not the GC heap, so the measurement is deterministic and runs everywhere.
func TestStateMemoryRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("memory measurement skipped in -short mode")
	}
	base, err := ReadPerfJSON("../BENCH_flash.json")
	if os.IsNotExist(err) {
		t.Skip("no committed BENCH_flash.json baseline")
	}
	if err != nil {
		t.Fatal(err)
	}
	cur, err := MeasureStateMemory(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cur.SavingsPct < 50 {
		t.Errorf("w4t4 state memory saves only %.1f%% over the legacy layout, want >= 50%%",
			cur.SavingsPct)
	}
	b, ok := base.Mem["state_w4t4"]
	if !ok {
		t.Skip("baseline predates the state-memory metric")
	}
	limit := b.StateBytesPerVertex * 1.2
	if cur.StateBytesPerVertex > limit {
		t.Errorf("state_bytes_per_vertex = %.2f, baseline %.2f (limit %.2f): state memory regressed",
			cur.StateBytesPerVertex, b.StateBytesPerVertex, limit)
	} else {
		t.Logf("state_bytes_per_vertex = %.2f (baseline %.2f, limit %.2f, savings %.1f%%)",
			cur.StateBytesPerVertex, b.StateBytesPerVertex, limit, cur.SavingsPct)
	}
}
