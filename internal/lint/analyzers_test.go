package lint_test

import (
	"path/filepath"
	"testing"

	"flash/internal/lint"
	"flash/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestHotAlloc(t *testing.T)   { linttest.Run(t, fixture("hotalloc"), lint.HotAlloc) }
func TestPoolEscape(t *testing.T) { linttest.Run(t, fixture("poolescape"), lint.PoolEscape) }
func TestCommErr(t *testing.T)    { linttest.Run(t, fixture("commerr"), lint.CommErr) }
func TestDetOrder(t *testing.T)   { linttest.Run(t, fixture("detorder"), lint.DetOrder) }
func TestSlotIndex(t *testing.T)  { linttest.Run(t, fixture("slotindex"), lint.SlotIndex) }

// TestSelfCheck runs every analyzer over the whole module: the shipped
// runtime must be flashvet-clean. This is the same invocation CI's lint job
// performs via cmd/flashvet.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check shells out to go list; skipped in -short")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
