package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// PhaseOrder verifies the superstep phase state machine over the module call
// graph. Engine operations declare where they are legal with
// //flash:phase(p1,p2,...) using the canonical phases
//
//	compute → ship → sync → barrier
//
// (vertex programs run; frontier values ship to mirrors; masters fold mirror
// deltas; checkpoint/membership barrier). The rule is subset legality: code
// annotated with phases S may reach — through any chain of unannotated
// module functions, across packages — an annotated operation g only when
// S ⊆ phases(g). A compute-phase vertex program calling send (ship/sync
// only), or checkpoint encode mutating sync-phase state, is exactly the
// paper's §IV-B ordering contract broken at compile time instead of as a
// nondeterministic divergence at run time.
//
// Annotated callees are checked and not traversed (their own annotation
// re-roots the walk); unannotated roots are unconstrained.
var PhaseOrder = &Analyzer{
	Name: "phaseorder",
	Doc:  "//flash:phase call edges must respect the compute→ship→sync→barrier superstep machine",
	Run:  runPhaseOrder,
}

var phaseBit = map[string]uint8{
	"compute": 1 << 0,
	"ship":    1 << 1,
	"sync":    1 << 2,
	"barrier": 1 << 3,
}

var phaseNames = []string{"compute", "ship", "sync", "barrier"}

func maskPhases(mask uint8) string {
	var out []string
	for _, name := range phaseNames {
		if mask&phaseBit[name] != 0 {
			out = append(out, name)
		}
	}
	return strings.Join(out, ",")
}

// rawPhaseDiag is a pre-suppression diagnostic from the one-shot module walk,
// tagged with the package that owns the position so each per-package pass
// reports (and can //flash:allow-suppress) only its own findings.
type rawPhaseDiag struct {
	pos     token.Pos
	pkgPath string
	msg     string
}

func runPhaseOrder(p *Pass) error {
	for _, d := range p.Mod.phaseWalk() {
		if d.pkgPath == p.Pkg.Path() {
			p.Reportf(d.pos, "%s", d.msg)
		}
	}
	return nil
}

// phaseWalk runs the module-wide phase check once per Module and memoizes the
// raw diagnostics.
func (m *Module) phaseWalk() []rawPhaseDiag {
	if m.phaseOnce {
		return m.phaseDiags
	}
	m.phaseOnce = true

	keys := sortedKeys(m.Funcs)
	var out []rawPhaseDiag
	for _, key := range keys {
		f := m.Funcs[key]
		if f.Phases == nil {
			continue
		}
		for _, ph := range f.Phases {
			bit, ok := phaseBit[ph]
			if !ok {
				out = append(out, rawPhaseDiag{
					pos:     f.Decl.Pos(),
					pkgPath: f.Pkg.Types.Path(),
					msg:     fmt.Sprintf("unknown phase %q in //flash:phase on %s (canonical: %s)", ph, f.Name(), strings.Join(phaseNames, ", ")),
				})
				continue
			}
			f.phaseMask |= bit
		}
	}

	type visitKey struct {
		f    *Func
		mask uint8
	}
	seen := map[visitKey]bool{}
	reported := map[string]bool{}
	var visit func(f *Func, mask uint8)
	visit = func(f *Func, mask uint8) {
		if seen[visitKey{f, mask}] {
			return
		}
		seen[visitKey{f, mask}] = true
		for _, e := range f.Calls {
			g := e.To
			if g.Phases != nil {
				if mask&^g.phaseMask != 0 {
					dedup := fmt.Sprintf("%d|%s|%d", e.Pos, g.Key, mask)
					if !reported[dedup] {
						reported[dedup] = true
						out = append(out, rawPhaseDiag{
							pos:     e.Pos,
							pkgPath: f.Pkg.Types.Path(),
							msg: fmt.Sprintf("call into //flash:phase(%s) %s from code running in phase(s) %s; %s is illegal there",
								strings.Join(g.Phases, ","), g.Name(), maskPhases(mask), maskPhases(mask&^g.phaseMask)),
						})
					}
				}
				continue
			}
			visit(g, mask)
		}
	}
	for _, key := range keys {
		if f := m.Funcs[key]; f.phaseMask != 0 {
			visit(f, f.phaseMask)
		}
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	m.phaseDiags = out
	return out
}
