package algo

import (
	"sort"

	"flash"
	"flash/graph"
)

type ktProps struct {
	Out  []uint32 // live neighbors, sorted
	Drop []uint32 // neighbors to remove next round
}

// KTruss computes the maximal k-truss: the largest subgraph in which every
// edge participates in at least k-2 triangles. It peels under-supported
// edges iteratively, the natural FLASH formulation with neighbor-list
// properties (inexpressible in fixed-property models). Returns the
// surviving edges as (u, v) pairs with u < v.
func KTruss(g *graph.Graph, k int, opts ...flash.Option) ([][2]graph.VID, error) {
	if k < 3 {
		k = 3
	}
	e, err := newEngine[ktProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[ktProps]) ktProps { return ktProps{} })
	// Materialize sorted live-neighbor lists.
	e.EdgeMap(u, e.E(),
		nil,
		func(s, d flash.Vertex[ktProps]) ktProps {
			nv := *d.Val
			nv.Out = append(append([]uint32(nil), nv.Out...), uint32(s.ID))
			return nv
		},
		nil,
		func(t, cur ktProps) ktProps {
			cur.Out = append(cur.Out, t.Out...)
			return cur
		})
	e.VertexMap(u, nil, func(v flash.Vertex[ktProps]) ktProps {
		nv := *v.Val
		sort.Slice(nv.Out, func(i, j int) bool { return nv.Out[i] < nv.Out[j] })
		return nv
	})

	support := k - 2
	for {
		// Each vertex marks the incident edges with too little support.
		// Neighbor lists of neighbors are available through their mirrors.
		e.VertexMapC(e.All(), nil, func(c *flash.Ctx[ktProps], v flash.Vertex[ktProps]) ktProps {
			nv := *v.Val
			nv.Drop = nil
			for _, w := range nv.Out {
				if uint32(v.ID) < w { // each undirected edge checked once
					common := intersectCount(nv.Out, c.Get(graph.VID(w)).Out)
					if int(common) < support {
						nv.Drop = append(nv.Drop, w)
					}
				}
			}
			return nv
		})
		// Remove the marked edges from both endpoints' lists.
		e.VertexMapC(e.All(),
			nil,
			func(c *flash.Ctx[ktProps], v flash.Vertex[ktProps]) ktProps {
				nv := *v.Val
				var remove []uint32
				remove = append(remove, nv.Drop...)
				// Edges dropped by the *other* endpoint (w < v with v in w.Drop).
				for _, w := range nv.Out {
					if uint32(v.ID) > w {
						for _, x := range c.Get(graph.VID(w)).Drop {
							if x == uint32(v.ID) {
								remove = append(remove, w)
								break
							}
						}
					}
				}
				if len(remove) == 0 {
					return nv
				}
				rm := make(map[uint32]bool, len(remove))
				for _, x := range remove {
					rm[x] = true
				}
				keep := nv.Out[:0:0]
				for _, w := range nv.Out {
					if !rm[w] {
						keep = append(keep, w)
					}
				}
				nv.Out = keep
				return nv
			})
		// Converged when no vertex dropped anything this round.
		drops := e.SumInt64(func(_ graph.VID, val *ktProps) int64 { return int64(len(val.Drop)) })
		if drops == 0 {
			break
		}
	}

	var edges [][2]graph.VID
	e.Gather(func(v graph.VID, val *ktProps) {
		for _, w := range val.Out {
			if uint32(v) < w {
				edges = append(edges, [2]graph.VID{v, graph.VID(w)})
			}
		}
	})
	return edges, nil
}
