// Command flashd is a long-lived graph service: it holds a catalog of loaded
// graphs in memory, shares each graph's immutable CSR and partitions across
// all jobs that run over it, and executes concurrent algorithm jobs behind a
// bounded scheduler with per-tenant quotas. The HTTP/JSON API:
//
//	POST   /v1/graphs        {"name":"g","gen":"rmat","n":4096,"m":16384}
//	GET    /v1/graphs
//	DELETE /v1/graphs/{name}
//	POST   /v1/jobs          {"graph":"g","algo":"bfs","params":{"root":0}}
//	GET    /v1/jobs/{id}     ?wait=30s blocks until the job is terminal
//	GET    /v1/jobs
//	GET    /v1/metrics
//
// Example:
//
//	flashd -addr 127.0.0.1:8080 -preload graphs.json -max-concurrent 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flash/internal/cluster"
	"flash/internal/serve"
)

func main() {
	// `flashd worker ...` is the cluster-mode subprocess entry point: one
	// resident worker of a multi-process job, spawned and supervised by a
	// cluster.Coordinator. Dispatch before flag parsing — the subcommand
	// owns its own flag set.
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		os.Exit(cluster.WorkerMain(os.Args[2:]))
	}
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		maxConc = flag.Int("max-concurrent", 4, "jobs executing at once")
		depth   = flag.Int("queue-depth", 16, "bounded pending-queue capacity")
		quota   = flag.Int("tenant-quota", 0, "max queued+running jobs per tenant (0 = unlimited)")
		workers = flag.Int("workers", 4, "default engine workers per job")
		threads = flag.Int("threads", 1, "default engine threads per worker")
		preload = flag.String("preload", "", "path to a JSON file with an array of graph specs to load at startup")
	)
	flag.Parse()

	cfg := serve.ServerConfig{Scheduler: serve.SchedulerConfig{
		MaxConcurrent: *maxConc,
		QueueDepth:    *depth,
		TenantQuota:   *quota,
		Workers:       *workers,
		Threads:       *threads,
	}}
	if *preload != "" {
		data, err := os.ReadFile(*preload)
		if err != nil {
			log.Fatalf("flashd: preload: %v", err)
		}
		if err := json.Unmarshal(data, &cfg.Preload); err != nil {
			log.Fatalf("flashd: preload %s: %v", *preload, err)
		}
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		log.Fatalf("flashd: %v", err)
	}
	for _, info := range srv.Catalog().List() {
		log.Printf("flashd: loaded graph %q: %d vertices, %d edges, %d graph bytes",
			info.Name, info.Vertices, info.Edges, info.GraphBytes)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("flashd: listen: %v", err)
	}
	// The integration harness parses this line to find a port-0 listener.
	fmt.Printf("flashd listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("flashd: %s: draining", sig)
	case err := <-errc:
		log.Fatalf("flashd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("flashd: shutdown: %v", err)
	}
	srv.Close() // drain admitted jobs
	log.Printf("flashd: stopped")
}
