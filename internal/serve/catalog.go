package serve

import (
	"fmt"
	"sort"
	"sync"

	"flash"
	"flash/graph"
)

// GraphSpec describes one graph to load into the catalog: either an
// edge-list file (Path) or a named deterministic generator. Weighted wraps
// the result with seeded random edge weights so weighted algorithms (sssp,
// msf) can be served over it.
type GraphSpec struct {
	Name     string `json:"name"`
	Path     string `json:"path,omitempty"`
	Gen      string `json:"gen,omitempty"`
	N        int    `json:"n,omitempty"`
	M        int    `json:"m,omitempty"`
	Rows     int    `json:"rows,omitempty"`
	Cols     int    `json:"cols,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Directed bool   `json:"directed,omitempty"`
	Weighted bool   `json:"weighted,omitempty"`
}

// GraphInfo is one catalog listing entry: identity, shape, and the memory
// accounting that makes sharing visible — GraphBytes + SharedBytes are paid
// once per graph, while each job pays only its own engine StateBytes.
type GraphInfo struct {
	Name        string `json:"name"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	Directed    bool   `json:"directed"`
	Weighted    bool   `json:"weighted"`
	GraphBytes  uint64 `json:"graph_bytes"`
	SharedBytes uint64 `json:"shared_bytes"`
	Partitions  int    `json:"partitions"`
	// Ooc marks a graph served out-of-core from a FLASHBLK file: GraphBytes
	// then covers only the resident skeleton, not the on-disk adjacency.
	Ooc bool `json:"ooc,omitempty"`
}

// Catalog is the server's set of loaded graphs: name → shared immutable
// handle. Safe for concurrent use. Evicting a graph removes it from the
// catalog immediately; jobs already admitted keep their handle (and the
// memory) alive until they finish, while new submissions get
// UnknownGraphError.
type Catalog struct {
	mu     sync.Mutex
	graphs map[string]*flash.GraphHandle
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{graphs: make(map[string]*flash.GraphHandle)}
}

// Load builds the graph described by spec and adds it under spec.Name. A
// Path pointing at a FLASHBLK file is served out-of-core: the catalog keeps
// only the topology skeleton and block index resident, and every job over the
// graph adopts the block backend through the shared handle.
func (c *Catalog) Load(spec GraphSpec) (*flash.GraphHandle, error) {
	if spec.Name == "" {
		return nil, &RequestError{Field: "name", Reason: "missing"}
	}
	if spec.Path != "" && graph.IsBlockFile(spec.Path) {
		bg, err := graph.OpenBlockFile(spec.Path)
		if err != nil {
			return nil, &RequestError{Field: "path", Reason: err.Error()}
		}
		if spec.Weighted && !bg.Weighted() {
			bg.Close()
			return nil, &RequestError{Field: "weighted", Reason: "block file stores no weights (re-encode it from a weighted graph)"}
		}
		h, err := c.add(spec.Name, flash.NewBlockGraphHandle(bg))
		if err != nil {
			bg.Close()
		}
		return h, err
	}
	g, err := BuildGraph(spec)
	if err != nil {
		return nil, err
	}
	return c.Add(spec.Name, g)
}

// Add registers an already-built graph under name (embedding callers and
// tests use it directly; Load goes through it too).
func (c *Catalog) Add(name string, g *graph.Graph) (*flash.GraphHandle, error) {
	return c.add(name, flash.NewGraphHandle(g))
}

func (c *Catalog) add(name string, h *flash.GraphHandle) (*flash.GraphHandle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.graphs[name]; ok {
		return nil, &DuplicateGraphError{Graph: name}
	}
	c.graphs[name] = h
	return h, nil
}

// Get returns the handle for name.
func (c *Catalog) Get(name string) (*flash.GraphHandle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.graphs[name]
	if !ok {
		return nil, &UnknownGraphError{Graph: name}
	}
	return h, nil
}

// Evict removes name from the catalog. In-flight jobs holding the handle
// finish normally; the immutable state is reclaimed when the last of them
// completes.
func (c *Catalog) Evict(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.graphs[name]; !ok {
		return &UnknownGraphError{Graph: name}
	}
	delete(c.graphs, name)
	return nil
}

// List returns the catalog entries sorted by name.
func (c *Catalog) List() []GraphInfo {
	c.mu.Lock()
	names := make([]string, 0, len(c.graphs))
	handles := make([]*flash.GraphHandle, 0, len(c.graphs))
	for name, h := range c.graphs {
		names = append(names, name)
		handles = append(handles, h)
	}
	c.mu.Unlock()
	infos := make([]GraphInfo, len(names))
	for i, h := range handles {
		g := h.Graph()
		infos[i] = GraphInfo{
			Name:        names[i],
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			Directed:    g.Directed(),
			Weighted:    g.Weighted(),
			GraphBytes:  h.GraphBytes(),
			SharedBytes: h.SharedBytes(),
			Partitions:  h.Partitions(),
			Ooc:         h.Block() != nil,
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Bytes returns the catalog-wide immutable footprint: total CSR bytes and
// total partition-cache bytes across all loaded graphs. This is the "paid
// once" side of the memory model the catalog accounting test pins down.
func (c *Catalog) Bytes() (graphBytes, sharedBytes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range c.graphs {
		graphBytes += h.GraphBytes()
		sharedBytes += h.SharedBytes()
	}
	return graphBytes, sharedBytes
}

// BuildGraph materializes a GraphSpec, mirroring flashrun's generator set.
// Exported so tests can rebuild the exact graph a server loaded.
func BuildGraph(spec GraphSpec) (*graph.Graph, error) {
	var g *graph.Graph
	switch {
	case spec.Path != "":
		var err error
		g, err = graph.LoadEdgeListFile(spec.Path, graph.LoadOptions{Directed: spec.Directed})
		if err != nil {
			return nil, &RequestError{Field: "path", Reason: err.Error()}
		}
	default:
		n, m := spec.N, spec.M
		if n <= 0 {
			return nil, &RequestError{Field: "n", Reason: fmt.Sprintf("must be positive, got %d", n)}
		}
		switch spec.Gen {
		case "rmat":
			g = graph.GenRMAT(n, m, spec.Seed)
		case "er":
			g = graph.GenErdosRenyi(n, m, spec.Seed)
		case "web":
			g = graph.GenWeb(n, m/n+1, 32, spec.Seed)
		case "grid":
			rows, cols := spec.Rows, spec.Cols
			if rows <= 0 || cols <= 0 {
				return nil, &RequestError{Field: "rows", Reason: "grid needs positive rows and cols"}
			}
			g = graph.GenGrid(rows, cols, 0, spec.Seed)
		case "path":
			g = graph.GenPath(n)
		case "cycle":
			g = graph.GenCycle(n)
		case "star":
			g = graph.GenStar(n)
		case "tree":
			g = graph.GenTree(n, spec.Seed)
		case "randdir":
			g = graph.GenRandomDirected(n, m, spec.Seed)
		case "":
			return nil, &RequestError{Field: "gen", Reason: "missing (or supply path)"}
		default:
			return nil, &RequestError{Field: "gen", Reason: fmt.Sprintf("unknown generator %q", spec.Gen)}
		}
	}
	if spec.Weighted && !g.Weighted() {
		g = graph.WithRandomWeights(g, spec.Seed)
	}
	return g, nil
}
