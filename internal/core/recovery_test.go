package core

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"flash/graph"
	"flash/internal/comm"
)

// runBFSChecked is runBFS under Run, for programs that may fail.
func runBFSChecked(e *Engine[bfsProps], root graph.VID) ([]int32, RunResult, error) {
	var out []int32
	res, err := e.Run(func() error {
		out = runBFS(e, root, Auto)
		return nil
	})
	return out, res, err
}

// TestRunReturnsErrorOnCrash verifies a mid-superstep worker failure without
// checkpointing surfaces as an error from Run — not a panic, not a deadlock —
// and that the engine then refuses further work.
func TestRunReturnsErrorOnCrash(t *testing.T) {
	g := graph.GenPath(40)
	e := mustEngine(t, g, Config{
		Workers:   2,
		FaultPlan: &comm.FaultPlan{Crashes: []comm.WorkerCrash{{Worker: 1, Round: 2}}},
	})
	_, _, err := runBFSChecked(e, 0)
	if err == nil {
		t.Fatal("Run succeeded despite injected crash without checkpointing")
	}
	var ce *comm.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err=%v, want a CrashError in the chain", err)
	}
	if e.Err() == nil {
		t.Fatal("engine not marked failed")
	}
	if _, err2 := e.Run(func() error { return nil }); err2 == nil {
		t.Fatal("failed engine accepted another Run")
	}
}

// TestRunLeaksNoGoroutines runs a failing superstep and verifies every worker
// goroutine is joined: the goroutine count returns to its baseline.
func TestRunLeaksNoGoroutines(t *testing.T) {
	g := graph.GenErdosRenyi(120, 500, 3)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		e, err := NewEngine[bfsProps](g, Config{
			Workers:   3,
			FaultPlan: &comm.FaultPlan{Crashes: []comm.WorkerCrash{{Worker: 2, Round: 1}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := runBFSChecked(e, 0); err == nil {
			t.Fatal("expected failure")
		}
		e.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked: %d -> %d\n%s", before, after, buf[:n])
	}
}

// TestCheckpointRecoveryFromCrash verifies rollback+replay: an injected
// worker crash mid-run is absorbed and the result matches the fault-free
// reference exactly.
func TestCheckpointRecoveryFromCrash(t *testing.T) {
	g := graph.GenPath(40)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, Config{
		Workers:         2,
		CheckpointEvery: 2,
		FaultPlan:       &comm.FaultPlan{Crashes: []comm.WorkerCrash{{Worker: 1, Round: 5}}},
	})
	got, res, err := runBFSChecked(e, 0)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
	if res.Recoveries < 1 {
		t.Fatalf("recoveries=%d, want >=1 (res=%+v)", res.Recoveries, res)
	}
	if res.Checkpoints < 1 {
		t.Fatalf("checkpoints=%d, want >=1", res.Checkpoints)
	}
	if err := e.CheckMirrorCoherence(func(a, b bfsProps) bool { return a == b }); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRecoveryFromStall verifies the stall path: a worker sleeping
// past the drain timeout fails the superstep with ErrPeerStalled, and
// checkpoint recovery completes the run with correct results.
func TestCheckpointRecoveryFromStall(t *testing.T) {
	g := graph.GenErdosRenyi(100, 400, 7)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, Config{
		Workers:         3,
		CheckpointEvery: 2,
		DrainTimeout:    60 * time.Millisecond,
		FaultPlan: &comm.FaultPlan{
			Stalls: []comm.WorkerStall{{Worker: 1, Round: 2, Delay: 300 * time.Millisecond}},
		},
	})
	got, res, err := runBFSChecked(e, 0)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
	if res.Recoveries < 1 {
		t.Fatalf("recoveries=%d, want >=1", res.Recoveries)
	}
}

// TestSendRetryAbsorbsTransientFailures verifies probabilistic transient send
// failures are retried inside the superstep — no recovery needed, results
// exact.
func TestSendRetryAbsorbsTransientFailures(t *testing.T) {
	g := graph.GenErdosRenyi(150, 700, 3)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, Config{
		Workers:   4,
		FaultPlan: &comm.FaultPlan{Seed: 11, SendFailProb: 0.05, MaxSendFails: 25},
	})
	got, res, err := runBFSChecked(e, 0)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
	if res.Retries == 0 {
		t.Fatalf("retries=0, expected injected failures to be retried (res=%+v)", res)
	}
	if res.Recoveries != 0 {
		t.Fatalf("recoveries=%d, want 0 (retries should absorb transients)", res.Recoveries)
	}
}

// TestRecoveryBudgetExhausted verifies a persistent fault stops looping: with
// more scripted crashes than MaxRecoveries, Run returns an error.
func TestRecoveryBudgetExhausted(t *testing.T) {
	crashes := make([]comm.WorkerCrash, 0, 8)
	for r := uint32(2); r < 10; r++ {
		crashes = append(crashes, comm.WorkerCrash{Worker: 0, Round: r})
	}
	g := graph.GenPath(40)
	e := mustEngine(t, g, Config{
		Workers:         2,
		CheckpointEvery: 2,
		MaxRecoveries:   2,
		FaultPlan:       &comm.FaultPlan{Crashes: crashes},
	})
	_, res, err := runBFSChecked(e, 0)
	if err == nil {
		t.Fatal("Run succeeded despite persistent crashes beyond the recovery budget")
	}
	if res.Recoveries != 2 {
		t.Fatalf("recoveries=%d, want exactly MaxRecoveries=2", res.Recoveries)
	}
}

// TestOnCheckpointHook verifies driver-side state is snapshotted at each
// checkpoint and handed back on rollback.
func TestOnCheckpointHook(t *testing.T) {
	g := graph.GenPath(30)
	e := mustEngine(t, g, Config{
		Workers:         2,
		CheckpointEvery: 2,
		FaultPlan:       &comm.FaultPlan{Crashes: []comm.WorkerCrash{{Worker: 0, Round: 4}}},
	})
	saved, restored := 0, 0
	var lastSaved, lastRestored int
	e.OnCheckpoint(
		func() any { saved++; lastSaved = saved; return lastSaved },
		func(s any) { restored++; lastRestored = s.(int) },
	)
	if _, _, err := runBFSChecked(e, 0); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if saved == 0 {
		t.Fatal("save hook never called")
	}
	if restored == 0 {
		t.Fatal("restore hook never called despite a recovery")
	}
	if lastRestored > lastSaved {
		t.Fatalf("restore got value %d never produced by save (last %d)", lastRestored, lastSaved)
	}
}

// TestCheckpointedRunMatchesPlain verifies checkpointing alone (no faults)
// does not perturb results.
func TestCheckpointedRunMatchesPlain(t *testing.T) {
	g := graph.GenRMAT(128, 512, 4)
	want := seqBFS(g, 0)
	e := mustEngine(t, g, Config{Workers: 3, CheckpointEvery: 1})
	got, res, err := runBFSChecked(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
	if res.Checkpoints == 0 {
		t.Fatal("no checkpoints taken with CheckpointEvery=1")
	}
}
