package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SlotIndex enforces the PR-3 compact-layout contract: state slices tagged
// //flash:slot-indexed hold one entry per *resident* vertex and may only be
// indexed by slot values, never by raw global vertex ids. Indexing such a
// slice with a gid compiles fine, stays in bounds for small test graphs, and
// silently reads another vertex's state in production — the nastiest class
// of bug the slot refactor introduced.
//
// The tag goes on the struct field or variable declaration (doc or trailing
// comment). The analyzer then taints every graph.VID-typed value — including
// integer conversions of one (int(gid), uint32(gid)), arithmetic over one,
// and locals assigned from one — and flags any index expression over a
// tagged slice whose index is VID-derived. Values laundered through a
// SlotTable call (st.Slot(v), st.Lookup(v), place.LocalIndex(v)) come back
// as plain ints from an opaque call, which is exactly the sanctioned way to
// turn a gid into an index.
var SlotIndex = &Analyzer{
	Name: "slotindex",
	Doc:  "//flash:slot-indexed slices may only be indexed by slot-table-derived values, not raw gids",
	Run:  runSlotIndex,
}

func runSlotIndex(pass *Pass) error {
	tagged := taggedSlotObjects(pass)
	if len(tagged) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			vidTainted := vidTaintedIdents(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				idx, ok := n.(*ast.IndexExpr)
				if !ok {
					return true
				}
				obj := baseObject(pass, idx.X)
				if obj == nil || !tagged[obj.Pos()] {
					return true
				}
				if isVIDDerived(pass, idx.Index, vidTainted) {
					pass.Reportf(idx.Index.Pos(),
						"%s is //flash:slot-indexed but the index is derived from a raw vertex id; translate through the slot table (st.Slot / st.Lookup / place.LocalIndex) first",
						types.ExprString(idx.X))
				}
				return true
			})
		}
	}
	return nil
}

// taggedSlotObjects finds the declarations that carry //flash:slot-indexed:
// struct fields (doc or line comment) and var specs. The set is keyed by
// declaration position rather than object identity because selecting a field
// of a generic type (worker[V].cur) yields an instantiated field object
// distinct from — but co-located with — the one in Defs.
func taggedSlotObjects(pass *Pass) map[token.Pos]bool {
	tagged := map[token.Pos]bool{}
	mark := func(names []*ast.Ident) {
		for _, name := range names {
			if obj := pass.Info.Defs[name]; obj != nil {
				tagged[obj.Pos()] = true
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if commentGroupHasMarker(n.Doc, "slot-indexed") || commentGroupHasMarker(n.Comment, "slot-indexed") {
					mark(n.Names)
				}
			case *ast.ValueSpec:
				if commentGroupHasMarker(n.Doc, "slot-indexed") || commentGroupHasMarker(n.Comment, "slot-indexed") {
					mark(n.Names)
				}
			}
			return true
		})
	}
	return tagged
}

// baseObject resolves the object an index-expression base refers to: the
// field for w.cur, the variable for cur.
func baseObject(pass *Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.Info.Uses[e]
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	case *ast.IndexExpr:
		return baseObject(pass, e.X) // shard[t].val-style nesting
	}
	return nil
}

// vidTaintedIdents computes, to a fixed point, the local identifiers in fn
// that hold VID-derived values (assigned from a VID, a conversion of one, or
// arithmetic over one).
func vidTaintedIdents(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil || tainted[obj] {
					continue
				}
				if isVIDDerived(pass, as.Rhs[i], tainted) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

// isVIDDerived reports whether expr carries a raw vertex id: its type is a
// named VID type, it converts one, it is arithmetic over one, or it is a
// tainted local. A call launders the chain only when the callee's summary
// says its return is not value-derived from a tainted argument — so a helper
// in another package that does `return int(gid) + off` propagates the taint
// (the intraprocedural version silently trusted every call), while the
// sanctioned slot-table lookups (SlotTable.Slot / Lookup, Placement's
// LocalIndex, and anything marked //flash:slot-launder) stay launder points
// by construction (see isLaunder in summary.go).
func isVIDDerived(pass *Pass, expr ast.Expr, tainted map[types.Object]bool) bool {
	e := ast.Unparen(expr)
	if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil && isVIDType(tv.Type) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		return tainted[pass.Info.Uses[e]]
	case *ast.CallExpr:
		// Conversion int(v) / uint32(v) propagates.
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return isVIDDerived(pass, e.Args[0], tainted)
		}
		// A module callee propagates per its DerivesRet summary.
		if callee := pass.Mod.CalleeOf(pass.Info, e); callee != nil {
			for j, a := range e.Args {
				if flag(callee.Sum.DerivesRet, paramIndex(callee, j, len(e.Args))) &&
					isVIDDerived(pass, a, tainted) {
					return true
				}
			}
		}
		return false
	case *ast.BinaryExpr:
		return isVIDDerived(pass, e.X, tainted) || isVIDDerived(pass, e.Y, tainted)
	case *ast.UnaryExpr:
		return isVIDDerived(pass, e.X, tainted)
	}
	return false
}

func isVIDType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "VID"
}
