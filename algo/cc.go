package algo

import (
	"flash"
	"flash/graph"
)

type ccProps struct {
	CC uint32
}

// CC computes weakly connected components by label propagation (paper
// Algorithm 9): every vertex starts with its own id and repeatedly adopts
// the minimum label among its neighbors. Simple and scalable, but needs
// O(diameter) supersteps. Returns the component label (minimum member id)
// per vertex.
func CC(g *graph.Graph, opts ...flash.Option) ([]uint32, error) {
	e, err := newEngine[ccProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	out := make([]uint32, g.NumVertices())
	if _, err := e.Run(func() error {
		u := e.VertexMap(e.All(), nil, func(v flash.Vertex[ccProps]) ccProps {
			return ccProps{CC: uint32(v.ID)}
		})
		for u.Size() != 0 {
			u = e.EdgeMap(u, e.E(),
				func(s, d flash.Vertex[ccProps]) bool { return s.Val.CC < d.Val.CC },
				func(s, d flash.Vertex[ccProps]) ccProps { return ccProps{CC: min32(s.Val.CC, d.Val.CC)} },
				nil,
				func(t, cur ccProps) ccProps { return ccProps{CC: min32(t.CC, cur.CC)} })
		}
		e.Gather(func(v graph.VID, val *ccProps) { out[v] = val.CC })
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// CountComponents reduces component labels to the number of components.
func CountComponents(labels []uint32) int {
	seen := make(map[uint32]struct{}, 16)
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
