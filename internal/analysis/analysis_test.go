package analysis

import "testing"

// TestTableII encodes the paper's Table II exactly: a property is critical
// iff it is got as the source of EDGEMAPDENSE, or got/put as the target of
// EDGEMAPSPARSE.
func TestTableII(t *testing.T) {
	cases := []struct {
		op   Op
		role Role
		want bool
	}{
		{Get, VertexMapSelf, false},
		{Put, VertexMapSelf, false},
		{Get, DenseSource, true},
		{Get, DenseTarget, false},
		{Put, DenseTarget, false},
		{Get, SparseSource, false},
		{Get, SparseTarget, true},
		{Put, SparseTarget, true},
	}
	for _, c := range cases {
		if got := Critical(Access{Property: "p", Op: c.op, Role: c.role}); got != c.want {
			t.Errorf("Critical(op=%v role=%v) = %v, want %v", c.op, c.role, got, c.want)
		}
	}
}

func TestAnalyze(t *testing.T) {
	r := Analyze([]Access{
		{Property: "dis", Op: Put, Role: VertexMapSelf},
		{Property: "dis", Op: Get, Role: DenseSource},
		{Property: "scratch", Op: Put, Role: VertexMapSelf},
		{Property: "scratch", Op: Get, Role: VertexMapSelf},
	})
	if !r.CriticalSet["dis"] {
		t.Error("dis should be critical (dense source get)")
	}
	if r.CriticalSet["scratch"] {
		t.Error("scratch is master-local, must not be critical")
	}
	if !r.AnyCritical() {
		t.Error("AnyCritical should be true")
	}
	if Analyze(nil).AnyCritical() {
		t.Error("empty analysis should have no critical properties")
	}
}
