// Package metrics collects the runtime measurements the paper's evaluation
// reports: a piecewise breakdown of execution time (computation,
// communication incl. waiting, serialization, other; §V-E), message/byte
// counters, and the per-iteration active-vertex trace used by Fig. 4(a).
package metrics

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Category labels one slice of the execution-time breakdown.
type Category int

const (
	Compute Category = iota
	Communication
	Serialization
	Other
	numCategories
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case Compute:
		return "computation"
	case Communication:
		return "communication"
	case Serialization:
		return "serialization"
	case Other:
		return "other"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Collector accumulates measurements for one run. Worker threads record into
// private shards; Merge folds shards together. The zero value is unusable;
// call New.
type Collector struct {
	mu         sync.Mutex
	durations  [numCategories]time.Duration
	Supersteps int
	Messages   uint64
	Bytes      uint64
	// Frontier[i] is the number of active vertices entering superstep i.
	Frontier []int

	// Robustness counters (fault-tolerant runtime).
	//
	// Retries counts transient send failures that were retried with backoff;
	// Reconnects counts connections re-established after a drop; Recoveries
	// counts checkpoint rollbacks + replays; Checkpoints counts snapshots
	// taken at superstep barriers.
	Retries     uint64
	Reconnects  uint64
	Recoveries  uint64
	Checkpoints uint64
	// Restarts counts cold worker restarts after a permanent worker loss;
	// CheckpointBytes is the total encoded checkpoint payload handed to the
	// store; RecoveryTime is the wall time spent inside recovery (rollback,
	// replay, and cold restarts).
	Restarts        uint64
	CheckpointBytes uint64
	RecoveryTime    time.Duration
	// Elasticity counters: Resizes counts completed membership changes,
	// MigratedBytes the master-state payload shipped between partitions during
	// migration rounds, and ResizeTime the wall time runs spent paused at
	// resize barriers (quiesce through resume, including failed attempts that
	// rolled back).
	Resizes       uint64
	MigratedBytes uint64
	ResizeTime    time.Duration
	// Out-of-core block backend counters: block-cache hits, misses, and
	// evictions; encoded bytes read from disk split by the scheduling mode
	// (dense = sequential stream, sparse = frontier-resident blocks only);
	// and how many EdgeMap supersteps ran in each mode. All zero for
	// in-memory runs.
	BlockHits        uint64
	BlockMisses      uint64
	BlockEvictions   uint64
	BlockBytesDense  uint64
	BlockBytesSparse uint64
	BlockStepsDense  uint64
	BlockStepsSparse uint64
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// Add records d under category c.
func (col *Collector) Add(c Category, d time.Duration) {
	col.mu.Lock()
	col.durations[c] += d
	col.mu.Unlock()
}

// Time runs f and records its wall time under c.
func (col *Collector) Time(c Category, f func()) {
	start := time.Now()
	f()
	col.Add(c, time.Since(start))
}

// AddTraffic records message and byte counts.
func (col *Collector) AddTraffic(messages, bytes uint64) {
	col.mu.Lock()
	col.Messages += messages
	col.Bytes += bytes
	col.mu.Unlock()
}

// AddRetries records n retried transient send failures.
func (col *Collector) AddRetries(n uint64) {
	col.mu.Lock()
	col.Retries += n
	col.mu.Unlock()
}

// AddReconnects records n re-established connections.
func (col *Collector) AddReconnects(n uint64) {
	col.mu.Lock()
	col.Reconnects += n
	col.mu.Unlock()
}

// AddRecoveries records n checkpoint rollback+replay recoveries.
func (col *Collector) AddRecoveries(n uint64) {
	col.mu.Lock()
	col.Recoveries += n
	col.mu.Unlock()
}

// AddCheckpoints records n checkpoint snapshots.
func (col *Collector) AddCheckpoints(n uint64) {
	col.mu.Lock()
	col.Checkpoints += n
	col.mu.Unlock()
}

// AddRestarts records n cold worker restarts.
func (col *Collector) AddRestarts(n uint64) {
	col.mu.Lock()
	col.Restarts += n
	col.mu.Unlock()
}

// AddCheckpointBytes records n bytes of encoded checkpoint payload.
func (col *Collector) AddCheckpointBytes(n uint64) {
	col.mu.Lock()
	col.CheckpointBytes += n
	col.mu.Unlock()
}

// AddRecoveryTime records wall time spent recovering from a failure.
func (col *Collector) AddRecoveryTime(d time.Duration) {
	col.mu.Lock()
	col.RecoveryTime += d
	col.mu.Unlock()
}

// AddResizes records n completed membership changes.
func (col *Collector) AddResizes(n uint64) {
	col.mu.Lock()
	col.Resizes += n
	col.mu.Unlock()
}

// AddMigratedBytes records n bytes of master state shipped during migration.
func (col *Collector) AddMigratedBytes(n uint64) {
	col.mu.Lock()
	col.MigratedBytes += n
	col.mu.Unlock()
}

// AddResizeTime records wall time a run spent paused at a resize barrier.
func (col *Collector) AddResizeTime(d time.Duration) {
	col.mu.Lock()
	col.ResizeTime += d
	col.mu.Unlock()
}

// AddBlockCache records out-of-core block cache activity: hits, misses,
// evictions, and encoded bytes read from disk by scheduling mode.
func (col *Collector) AddBlockCache(hits, misses, evictions, bytesDense, bytesSparse uint64) {
	col.mu.Lock()
	col.BlockHits += hits
	col.BlockMisses += misses
	col.BlockEvictions += evictions
	col.BlockBytesDense += bytesDense
	col.BlockBytesSparse += bytesSparse
	col.mu.Unlock()
}

// AddBlockSteps records EdgeMap supersteps executed against the block
// backend, by scheduling mode.
func (col *Collector) AddBlockSteps(dense, sparse uint64) {
	col.mu.Lock()
	col.BlockStepsDense += dense
	col.BlockStepsSparse += sparse
	col.mu.Unlock()
}

// Step records one superstep with the given entering frontier size.
func (col *Collector) Step(frontier int) {
	col.mu.Lock()
	col.Supersteps++
	col.Frontier = append(col.Frontier, frontier)
	col.mu.Unlock()
}

// Duration returns the accumulated time for c.
func (col *Collector) Duration(c Category) time.Duration {
	col.mu.Lock()
	defer col.mu.Unlock()
	return col.durations[c]
}

// Total returns the sum over all categories.
func (col *Collector) Total() time.Duration {
	col.mu.Lock()
	defer col.mu.Unlock()
	var t time.Duration
	for _, d := range col.durations {
		t += d
	}
	return t
}

// Breakdown returns the per-category shares (0..1). All zeros when nothing
// was recorded.
func (col *Collector) Breakdown() [4]float64 {
	col.mu.Lock()
	defer col.mu.Unlock()
	var total time.Duration
	for _, d := range col.durations {
		total += d
	}
	var out [4]float64
	if total == 0 {
		return out
	}
	for i, d := range col.durations {
		out[i] = float64(d) / float64(total)
	}
	return out
}

// Merge folds other into col.
func (col *Collector) Merge(other *Collector) {
	other.mu.Lock()
	durs := other.durations
	msgs, bytes := other.Messages, other.Bytes
	steps := other.Supersteps
	frontier := append([]int(nil), other.Frontier...)
	retries, reconnects := other.Retries, other.Reconnects
	recoveries, checkpoints := other.Recoveries, other.Checkpoints
	restarts, ckptBytes, recTime := other.Restarts, other.CheckpointBytes, other.RecoveryTime
	resizes, migBytes, rszTime := other.Resizes, other.MigratedBytes, other.ResizeTime
	bHits, bMiss, bEvict := other.BlockHits, other.BlockMisses, other.BlockEvictions
	bDense, bSparse := other.BlockBytesDense, other.BlockBytesSparse
	bStepsD, bStepsS := other.BlockStepsDense, other.BlockStepsSparse
	other.mu.Unlock()

	col.mu.Lock()
	for i := range durs {
		col.durations[i] += durs[i]
	}
	col.Messages += msgs
	col.Bytes += bytes
	col.Supersteps += steps
	col.Frontier = append(col.Frontier, frontier...)
	col.Retries += retries
	col.Reconnects += reconnects
	col.Recoveries += recoveries
	col.Checkpoints += checkpoints
	col.Restarts += restarts
	col.CheckpointBytes += ckptBytes
	col.RecoveryTime += recTime
	col.Resizes += resizes
	col.MigratedBytes += migBytes
	col.ResizeTime += rszTime
	col.BlockHits += bHits
	col.BlockMisses += bMiss
	col.BlockEvictions += bEvict
	col.BlockBytesDense += bDense
	col.BlockBytesSparse += bSparse
	col.BlockStepsDense += bStepsD
	col.BlockStepsSparse += bStepsS
	col.mu.Unlock()
}

// Reset clears all measurements.
func (col *Collector) Reset() {
	col.mu.Lock()
	col.durations = [numCategories]time.Duration{}
	col.Supersteps = 0
	col.Messages = 0
	col.Bytes = 0
	col.Frontier = col.Frontier[:0]
	col.Retries = 0
	col.Reconnects = 0
	col.Recoveries = 0
	col.Checkpoints = 0
	col.Restarts = 0
	col.CheckpointBytes = 0
	col.RecoveryTime = 0
	col.Resizes = 0
	col.MigratedBytes = 0
	col.ResizeTime = 0
	col.BlockHits = 0
	col.BlockMisses = 0
	col.BlockEvictions = 0
	col.BlockBytesDense = 0
	col.BlockBytesSparse = 0
	col.BlockStepsDense = 0
	col.BlockStepsSparse = 0
	col.mu.Unlock()
}

// String formats the collector as a one-line report.
func (col *Collector) String() string {
	col.mu.Lock()
	defer col.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "steps=%d msgs=%d bytes=%d", col.Supersteps, col.Messages, col.Bytes)
	for c := Category(0); c < numCategories; c++ {
		fmt.Fprintf(&sb, " %s=%s", c, col.durations[c].Round(time.Microsecond))
	}
	if col.Retries+col.Reconnects+col.Recoveries+col.Checkpoints > 0 {
		fmt.Fprintf(&sb, " retries=%d reconnects=%d recoveries=%d checkpoints=%d",
			col.Retries, col.Reconnects, col.Recoveries, col.Checkpoints)
	}
	if col.Restarts+col.CheckpointBytes > 0 || col.RecoveryTime > 0 {
		fmt.Fprintf(&sb, " restarts=%d ckpt_bytes=%d recovery_time=%s",
			col.Restarts, col.CheckpointBytes, col.RecoveryTime.Round(time.Microsecond))
	}
	if col.Resizes > 0 {
		fmt.Fprintf(&sb, " resizes=%d migrated_bytes=%d resize_time=%s",
			col.Resizes, col.MigratedBytes, col.ResizeTime.Round(time.Microsecond))
	}
	if col.BlockHits+col.BlockMisses > 0 {
		fmt.Fprintf(&sb, " blk_hits=%d blk_misses=%d blk_evicts=%d blk_bytes_dense=%d blk_bytes_sparse=%d",
			col.BlockHits, col.BlockMisses, col.BlockEvictions, col.BlockBytesDense, col.BlockBytesSparse)
	}
	return sb.String()
}
