// Superstep checkpoint/recovery (fault tolerance).
//
// Following Distributed GraphLab's observation that BSP engines get cheap
// fault tolerance from snapshotting at superstep boundaries, the engine
// snapshots every worker's state at the barrier — where it is consistent by
// BSP construction — every CheckpointEvery successful supersteps. The
// snapshot is encoded into a CheckpointImage and handed to the configured
// CheckpointStore (in-memory by default, file-backed for durability), so the
// bytes that survive are independent of any worker's live state. When a
// superstep fails (transport error, stalled peer, injected worker crash),
// the engine rolls back to the last stored checkpoint, replays the
// supersteps since then (FLASH steps are deterministic functions of engine
// state, so replay reproduces the exact pre-failure state and the exact
// subsets the driver already holds), and re-executes the failed superstep.
// A *permanent* worker loss (comm.KillError from the chaos transport, or a
// peer declared dead by the liveness layer) additionally triggers a cold
// restart: the victim's partition state is rebuilt from the graph, its
// transport endpoint revived, and its state rehydrated from the stored
// image before replay. Scripted faults are one-shot, and real-world
// transients are by definition unlikely to repeat, so replay normally
// succeeds; a recovery budget stops a persistent fault from looping forever.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"flash/metrics"
)

// replayStep re-executes one superstep for its state effects, writing the
// output subset into a throwaway.
type replayStep[V any] func(out *Subset) error

// runtimeFailure carries an unrecovered superstep error up to Run through
// the paper-shaped, error-free primitive signatures.
type runtimeFailure struct{ err error }

func (r runtimeFailure) Error() string { return r.err.Error() }

// RunResult summarizes a completed (or failed) run. Counters are cumulative
// for the engine's collector.
type RunResult struct {
	Supersteps  int
	Checkpoints uint64
	Recoveries  uint64
	Retries     uint64
	Reconnects  uint64
	// Restarts counts cold worker restarts after permanent worker losses,
	// CheckpointBytes the encoded snapshot payload written to the store, and
	// RecoveryTime the wall time spent inside recovery (rollback, replay,
	// restart).
	Restarts        uint64
	CheckpointBytes uint64
	RecoveryTime    time.Duration
	// Resizes counts completed membership changes, MigratedBytes the master
	// state shipped between partitions during their migration rounds, and
	// ResizeTime the wall time the run spent paused at resize barriers.
	Resizes       uint64
	MigratedBytes uint64
	ResizeTime    time.Duration
	// Out-of-core block backend counters (zero without a BlockGraph):
	// cache hits/misses/evictions, encoded bytes read from disk split by the
	// scheduling mode of the superstep that read them, and how many EdgeMap
	// supersteps ran in each mode.
	BlockHits        uint64
	BlockMisses      uint64
	BlockEvictions   uint64
	BlockBytesDense  uint64
	BlockBytesSparse uint64
	BlockStepsDense  uint64
	BlockStepsSparse uint64
}

// Run executes a FLASH driver program with the engine's fault-tolerance
// machinery engaged: a superstep that fails beyond what retry and
// checkpoint recovery can absorb surfaces here as an error instead of a
// panic, with every worker goroutine already joined and the transport
// aborted cleanly. Structural misuse of the primitives (wrong engine's
// subset, nil reduce in push mode, ...) still panics: those are programming
// errors, not runtime conditions.
func (e *Engine[V]) Run(program func() error) (res RunResult, err error) {
	if e.failed != nil {
		return e.runResult(), e.failed
	}
	if err := e.beginOp(); err != nil {
		return e.runResult(), err
	}
	defer e.endOp()
	defer func() {
		res = e.runResult()
		if r := recover(); r != nil {
			rf, ok := r.(runtimeFailure)
			if !ok {
				panic(r)
			}
			err = rf.err
		}
	}()
	err = program()
	return
}

// runResult snapshots the run counters from the collector and transport.
func (e *Engine[V]) runResult() RunResult {
	stats := e.tr.Stats()
	return RunResult{
		Supersteps:       e.met.Supersteps,
		Checkpoints:      e.met.Checkpoints,
		Recoveries:       e.met.Recoveries,
		Retries:          e.met.Retries,
		Reconnects:       e.met.Reconnects + stats.Reconnects,
		Restarts:         e.met.Restarts,
		CheckpointBytes:  e.met.CheckpointBytes,
		RecoveryTime:     e.met.RecoveryTime,
		Resizes:          e.met.Resizes,
		MigratedBytes:    e.met.MigratedBytes,
		ResizeTime:       e.met.ResizeTime,
		BlockHits:        e.met.BlockHits,
		BlockMisses:      e.met.BlockMisses,
		BlockEvictions:   e.met.BlockEvictions,
		BlockBytesDense:  e.met.BlockBytesDense,
		BlockBytesSparse: e.met.BlockBytesSparse,
		BlockStepsDense:  e.met.BlockStepsDense,
		BlockStepsSparse: e.met.BlockStepsSparse,
	}
}

// OnCheckpoint registers driver-side state hooks: save is called when a
// checkpoint is taken and its value is handed back to restore on rollback.
// Algorithms that keep state outside the engine between supersteps (the
// paper's driver-side DSU in BCC/MSF, iteration-scoped accumulators, ...)
// register here so recovery rewinds that state too. Driver state lives next
// to the store image in driver memory — the driver process is the one
// component whose loss the engine cannot survive anyway.
func (e *Engine[V]) OnCheckpoint(save func() any, restore func(any)) {
	e.ckptSave = save
	e.ckptRestore = restore
}

// Err returns the first unrecovered superstep failure, or nil.
func (e *Engine[V]) Err() error { return e.failed }

// execStep runs one superstep with failure handling. exec must be a
// deterministic function of engine state that fills out and performs this
// worker-parallel superstep's exchange rounds. On failure the engine rolls
// back to the last checkpoint — cold-restarting any permanently lost worker
// first — replays the logged supersteps and re-executes exec, up to the
// recovery budget; an unrecovered error marks the engine failed and unwinds
// to Run.
//
//flash:amortized once per superstep, not per element
func (e *Engine[V]) execStep(frontier int, exec replayStep[V]) *Subset {
	if e.resident >= 0 {
		return e.execStepCluster(frontier, exec)
	}
	if e.failed != nil {
		panic(runtimeFailure{fmt.Errorf("core: engine already failed: %w", e.failed)})
	}
	if e.isClosed() {
		// Covers programs whose steps never touch the transport (NoSync-only):
		// the Close-side abort broadcast cannot reach them, so the barrier
		// checks the flag directly.
		e.failed = ErrEngineClosed
		panic(runtimeFailure{ErrEngineClosed})
	}
	ckptOn := e.cfg.CheckpointEvery > 0
	if ckptOn && !e.hasCkpt {
		// The initial checkpoint, taken lazily so driver-side seeding
		// (Engine.Set) before the first superstep is captured.
		if err := e.takeCheckpoint(); err != nil {
			e.failed = err
			panic(runtimeFailure{err})
		}
	}
	e.met.Step(frontier)
	out := e.newSubset()
	err := exec(out)
	for err != nil {
		if !e.canRecover(err) {
			e.failed = err
			panic(runtimeFailure{err})
		}
		e.recoveries++
		e.met.AddRecoveries(1)
		rstart := time.Now()
		if victim, lost := killedWorker(err); lost {
			e.coldRestart(victim)
		}
		out = e.newSubset()
		err = e.rollbackReplay(exec, out)
		e.met.AddRecoveryTime(time.Since(rstart))
	}
	out.recount()
	if ckptOn {
		e.replayLog = append(e.replayLog, exec)
		e.stepsSince++
		if e.stepsSince >= e.cfg.CheckpointEvery {
			if err := e.takeCheckpoint(); err != nil {
				e.failed = err
				panic(runtimeFailure{err})
			}
		}
	}
	// The resize policy runs after the step has fully committed (output
	// recounted, checkpoint taken): a membership change here is a pure
	// barrier event, and the subsets the driver holds remap lazily on next
	// use.
	if pol := e.cfg.ResizePolicy; pol != nil {
		want := pol(StepInfo{
			Superstep: e.met.Supersteps,
			Frontier:  out.Size(),
			Workers:   e.cfg.Workers,
			Vertices:  e.g.NumVertices(),
		})
		if want > 0 && want != e.cfg.Workers {
			if err := e.Resize(want); err != nil {
				e.failed = err
				panic(runtimeFailure{err})
			}
		}
	}
	return out
}

// canRecover reports whether err is worth a rollback: checkpointing must be
// on with a stored snapshot in hand, the recovery budget must not be
// exhausted, and the failure must not be a worker panic (deterministic: it
// would fire again on replay).
func (e *Engine[V]) canRecover(err error) bool {
	var wp *workerPanic
	if errors.As(err, &wp) {
		return false
	}
	if errors.Is(err, ErrEngineClosed) {
		// The user tore the engine down; replaying the run would fight Close.
		return false
	}
	if e.resident >= 0 {
		// Cluster mode: recovery is the coordinator's restart-all under a
		// fresh epoch, never an in-process rollback (peer state is remote).
		return false
	}
	return e.cfg.CheckpointEvery > 0 && e.hasCkpt && e.recoveries < e.cfg.MaxRecoveries
}

// rollbackReplay restores the last stored checkpoint, replays the supersteps
// logged since then for their state effects, and re-executes the failed
// superstep into out.
func (e *Engine[V]) rollbackReplay(failed replayStep[V], out *Subset) error {
	start := time.Now()
	e.tr.Reset()
	if err := e.restoreCheckpoint(); err != nil {
		e.met.Add(metrics.Other, time.Since(start))
		return err
	}
	for _, step := range e.replayLog {
		if err := step(e.newSubset()); err != nil {
			e.met.Add(metrics.Other, time.Since(start))
			return err
		}
	}
	err := failed(out)
	e.met.Add(metrics.Other, time.Since(start))
	return err
}

// Worker checkpoint section format (inside a CheckpointImage section):
//
//	slots    uvarint
//	cur      slots × codec-encoded value
//	fwords   uvarint
//	frontier fwords × u64 little-endian
//
// The counts are validated against the live worker on restore, so an image
// taken under a different partitioning or graph is rejected instead of
// silently misapplied.

// encodeWorkerSection serializes worker w's checkpointable state.
func (e *Engine[V]) encodeWorkerSection(w *worker[V]) []byte {
	fwords := w.frontier.Words()
	buf := make([]byte, 0, len(w.cur)*8+len(fwords)*8+16)
	buf = binary.AppendUvarint(buf, uint64(len(w.cur)))
	for i := range w.cur {
		buf = e.codec.Append(buf, &w.cur[i])
	}
	buf = binary.AppendUvarint(buf, uint64(len(fwords)))
	for _, word := range fwords {
		buf = binary.LittleEndian.AppendUint64(buf, word)
	}
	return buf
}

// decodeWorkerSection rehydrates worker w from an encoded section, fully
// validating counts before touching live state.
func (e *Engine[V]) decodeWorkerSection(w *worker[V], sect []byte) error {
	slots, k := binary.Uvarint(sect)
	if k <= 0 || slots != uint64(len(w.cur)) {
		return fmt.Errorf("core: checkpoint section for worker %d has %d slots, want %d",
			w.id, slots, len(w.cur))
	}
	off := k
	for i := range w.cur {
		n, err := e.codec.Decode(sect[off:], &w.cur[i])
		if err != nil {
			return fmt.Errorf("core: checkpoint section for worker %d: slot %d: %w", w.id, i, err)
		}
		off += n
	}
	fwords, k := binary.Uvarint(sect[off:])
	if k <= 0 {
		return fmt.Errorf("core: checkpoint section for worker %d: frontier length missing", w.id)
	}
	off += k
	words := w.frontier.Words()
	if fwords != uint64(len(words)) || len(sect[off:]) != 8*len(words) {
		return fmt.Errorf("core: checkpoint section for worker %d has %d frontier words, want %d",
			w.id, fwords, len(words))
	}
	scratch := make([]uint64, len(words))
	for i := range scratch {
		scratch[i] = binary.LittleEndian.Uint64(sect[off+8*i:])
	}
	w.frontier.SetWords(scratch)
	return nil
}

// takeCheckpoint encodes every worker's cur array and frontier bitmap into a
// CheckpointImage, saves it to the store, snapshots the driver hook state,
// and truncates the replay log: everything before the snapshot can never be
// replayed again.
func (e *Engine[V]) takeCheckpoint() error {
	e.ckptSeq++
	img := &CheckpointImage{Seq: e.ckptSeq, Sections: make([][]byte, len(e.workers))}
	var total uint64
	for i, w := range e.workers {
		img.Sections[i] = e.encodeWorkerSection(w)
		total += uint64(len(img.Sections[i]))
	}
	if err := e.store.Save(img); err != nil {
		return fmt.Errorf("core: checkpoint %d: %w", e.ckptSeq, err)
	}
	if e.ckptSave != nil {
		e.ckptDrv = e.ckptSave()
		e.ckptHasDrv = true
	}
	e.hasCkpt = true
	e.replayLog = e.replayLog[:0]
	e.stepsSince = 0
	e.met.AddCheckpoints(1)
	e.met.AddCheckpointBytes(total)
	return nil
}

// restoreCheckpoint loads the stored image, rehydrates every worker from its
// section, and clears per-superstep scratch state so replay starts from a
// barrier-clean slate. Restore is all-or-nothing per worker section: a
// mismatched or corrupt section fails before live state for later workers is
// touched, and the store itself already rejects torn or bit-flipped files.
func (e *Engine[V]) restoreCheckpoint() error {
	img, err := e.store.Load()
	if err != nil {
		return fmt.Errorf("core: checkpoint restore: %w", err)
	}
	if img == nil {
		return fmt.Errorf("core: checkpoint restore: store has no image")
	}
	if len(img.Sections) != len(e.workers) {
		return fmt.Errorf("core: checkpoint image has %d sections, want %d",
			len(img.Sections), len(e.workers))
	}
	for i, w := range e.workers {
		if err := e.decodeWorkerSection(w, img.Sections[i]); err != nil {
			return err
		}
		w.nextSet.Reset()
		for t := range w.acc {
			if w.acc[t].set != nil {
				w.acc[t].set.Reset()
			}
		}
		w.pendSet.Reset()
		w.discardEnc() // unshipped frames back to the pool, delta bases reset
	}
	if e.ckptHasDrv && e.ckptRestore != nil {
		e.ckptRestore(e.ckptDrv)
	}
	return nil
}
