package gas

import (
	"sort"

	"flash/graph"
)

// Table V / Table VI applications expressed in the GAS model. Multi-phased
// algorithms (BC, MIS, MM, KC) chain one-iteration engine runs from the
// driver, the workaround PowerGraph programs use; the model itself has no
// phase concept.

const none = int32(-1)

// BFS computes hop distances from root.
func BFS(g *graph.Graph, root graph.VID, cfg Config) ([]int32, error) {
	type v struct{ Dis int32 }
	res, err := Run(g, func(id graph.VID) v {
		if id == root {
			return v{0}
		}
		return v{none}
	}, nil, Program[v, int32]{
		Gather: func(_ graph.VID, _ *v, _ graph.VID, nbr *v, _ float32) (int32, bool) {
			if nbr.Dis == none {
				return 0, false
			}
			return nbr.Dis + 1, true
		},
		Sum: func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		},
		Apply: func(_ graph.VID, val *v, acc int32, n int) bool {
			if val.Dis == none && n > 0 {
				val.Dis = acc
				return true
			}
			return false
		},
		Scatter: true,
	}, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(res.Values))
	for i, x := range res.Values {
		out[i] = x.Dis
	}
	return out, nil
}

// CC computes connected components by min-label gathering.
func CC(g *graph.Graph, cfg Config) ([]uint32, error) {
	type v struct{ CC uint32 }
	res, err := Run(g, func(id graph.VID) v { return v{uint32(id)} }, nil, Program[v, uint32]{
		Gather: func(_ graph.VID, _ *v, _ graph.VID, nbr *v, _ float32) (uint32, bool) {
			return nbr.CC, true
		},
		Sum: func(a, b uint32) uint32 {
			if a < b {
				return a
			}
			return b
		},
		Apply: func(_ graph.VID, val *v, acc uint32, n int) bool {
			if n > 0 && acc < val.CC {
				val.CC = acc
				return true
			}
			return false
		},
		Scatter: true,
	}, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, len(res.Values))
	for i, x := range res.Values {
		out[i] = x.CC
	}
	return out, nil
}

// LPA runs label propagation for maxIters rounds (all vertices active).
func LPA(g *graph.Graph, maxIters int, cfg Config) ([]int32, error) {
	type v struct{ C int32 }
	labels := make([]int32, g.NumVertices())
	for i := range labels {
		labels[i] = int32(i)
	}
	for it := 0; it < maxIters; it++ {
		step := cfg
		step.MaxIters = 1
		res, err := Run(g, func(id graph.VID) v { return v{labels[id]} }, nil, Program[v, []int32]{
			Gather: func(_ graph.VID, _ *v, _ graph.VID, nbr *v, _ float32) ([]int32, bool) {
				return []int32{nbr.C}, true
			},
			Sum: func(a, b []int32) []int32 { return append(a, b...) },
			Apply: func(_ graph.VID, val *v, acc []int32, n int) bool {
				if n == 0 {
					return false
				}
				count := map[int32]int{}
				best, bestN := val.C, 0
				for _, l := range acc {
					count[l]++
					if count[l] > bestN || (count[l] == bestN && l < best) {
						best, bestN = l, count[l]
					}
				}
				if best != val.C {
					val.C = best
					return true
				}
				return false
			},
		}, step)
		if err != nil {
			return nil, err
		}
		changed := false
		for i, x := range res.Values {
			if labels[i] != x.C {
				labels[i] = x.C
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return labels, nil
}

// BC computes Brandes dependency scores from root: a forward gather run for
// levels and path counts, then one one-iteration run per level backwards.
func BC(g *graph.Graph, root graph.VID, cfg Config) ([]float64, error) {
	type fv struct {
		Level int32
		Sigma float64
	}
	type gv struct {
		Lev int32
		Sig float64
	}
	fres, err := Run(g, func(id graph.VID) fv {
		if id == root {
			return fv{Level: 0, Sigma: 1}
		}
		return fv{Level: none}
	}, nil, Program[fv, gv]{
		Gather: func(_ graph.VID, _ *fv, _ graph.VID, nbr *fv, _ float32) (gv, bool) {
			if nbr.Level == none {
				return gv{}, false
			}
			return gv{Lev: nbr.Level, Sig: nbr.Sigma}, true
		},
		Sum: func(a, b gv) gv {
			if a.Lev < b.Lev {
				return a
			}
			if b.Lev < a.Lev {
				return b
			}
			return gv{Lev: a.Lev, Sig: a.Sig + b.Sig}
		},
		Apply: func(_ graph.VID, val *fv, acc gv, n int) bool {
			if val.Level == none && n > 0 {
				val.Level = acc.Lev + 1
				val.Sigma = acc.Sig
				return true
			}
			return false
		},
		Scatter: true,
	}, cfg)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	levels := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	maxLevel := int32(0)
	for i, x := range fres.Values {
		levels[i] = x.Level
		sigma[i] = x.Sigma
		if x.Level > maxLevel {
			maxLevel = x.Level
		}
	}
	for lev := maxLevel - 1; lev >= 0; lev-- {
		var frontier []graph.VID
		for i := 0; i < n; i++ {
			if levels[i] == lev {
				frontier = append(frontier, graph.VID(i))
			}
		}
		step := cfg
		step.MaxIters = 1
		type bv struct{ Delta float64 }
		res, err := Run(g, func(id graph.VID) bv { return bv{delta[id]} }, frontier, Program[bv, float64]{
			Gather: func(self graph.VID, _ *bv, nbr graph.VID, nv *bv, _ float32) (float64, bool) {
				if levels[nbr] != levels[self]+1 {
					return 0, false
				}
				return sigma[self] / sigma[nbr] * (1 + nv.Delta), true
			},
			Sum: func(a, b float64) float64 { return a + b },
			Apply: func(_ graph.VID, val *bv, acc float64, n int) bool {
				if n > 0 {
					val.Delta += acc
					return true
				}
				return false
			},
		}, step)
		if err != nil {
			return nil, err
		}
		for _, v := range frontier {
			delta[v] = res.Values[v].Delta
		}
	}
	return delta, nil
}

// MIS chains two one-iteration runs per round: select local priority minima
// among the undecided, then dominate their neighbors.
func MIS(g *graph.Graph, cfg Config) ([]bool, error) {
	type v struct {
		R   uint64
		In  bool
		Out bool
	}
	n := g.NumVertices()
	state := make([]v, n)
	for i := range state {
		state[i] = v{R: uint64(g.OutDegree(graph.VID(i)))*uint64(n) + uint64(i)}
	}
	step := cfg
	step.MaxIters = 1
	for {
		var undecided []graph.VID
		for i := range state {
			if !state[i].In && !state[i].Out {
				undecided = append(undecided, graph.VID(i))
			}
		}
		if len(undecided) == 0 {
			break
		}
		// Phase A: minima join the set.
		res, err := Run(g, func(id graph.VID) v { return state[id] }, undecided, Program[v, uint64]{
			Gather: func(_ graph.VID, _ *v, _ graph.VID, nbr *v, _ float32) (uint64, bool) {
				if nbr.In || nbr.Out {
					return 0, false
				}
				return nbr.R, true
			},
			Sum: func(a, b uint64) uint64 {
				if a < b {
					return a
				}
				return b
			},
			Apply: func(_ graph.VID, val *v, acc uint64, cnt int) bool {
				if !val.In && !val.Out && (cnt == 0 || val.R < acc) {
					val.In = true
					return true
				}
				return false
			},
		}, step)
		if err != nil {
			return nil, err
		}
		state = res.Values
		// Phase B: neighbors of members become dominated.
		res, err = Run(g, func(id graph.VID) v { return state[id] }, undecided, Program[v, uint8]{
			Gather: func(_ graph.VID, _ *v, _ graph.VID, nbr *v, _ float32) (uint8, bool) {
				if nbr.In {
					return 1, true
				}
				return 0, false
			},
			Sum: func(a, b uint8) uint8 { return a | b },
			Apply: func(_ graph.VID, val *v, acc uint8, cnt int) bool {
				if !val.In && !val.Out && cnt > 0 {
					val.Out = true
					return true
				}
				return false
			},
		}, step)
		if err != nil {
			return nil, err
		}
		state = res.Values
	}
	out := make([]bool, n)
	for i, x := range state {
		out[i] = x.In
	}
	return out, nil
}

// MM chains propose and marry one-iteration runs.
func MM(g *graph.Graph, cfg Config) ([]int32, error) {
	type v struct {
		S int32
		P int32
	}
	n := g.NumVertices()
	state := make([]v, n)
	for i := range state {
		state[i] = v{S: none, P: none}
	}
	step := cfg
	step.MaxIters = 1
	for {
		var unmatched []graph.VID
		for i := range state {
			state[i].P = none
			if state[i].S == none {
				unmatched = append(unmatched, graph.VID(i))
			}
		}
		// Any unmatched adjacent pair left? (driver-side aggregator)
		pairLeft := false
		g.Edges(func(a, b graph.VID, _ float32) bool {
			if state[a].S == none && state[b].S == none {
				pairLeft = true
				return false
			}
			return true
		})
		if !pairLeft {
			break
		}
		// Propose: best unmatched suitor.
		res, err := Run(g, func(id graph.VID) v { return state[id] }, unmatched, Program[v, int32]{
			Gather: func(_ graph.VID, _ *v, nbr graph.VID, nv *v, _ float32) (int32, bool) {
				if nv.S != none {
					return 0, false
				}
				return int32(nbr), true
			},
			Sum: func(a, b int32) int32 {
				if a > b {
					return a
				}
				return b
			},
			Apply: func(_ graph.VID, val *v, acc int32, cnt int) bool {
				if val.S == none && cnt > 0 {
					val.P = acc
					return true
				}
				return false
			},
		}, step)
		if err != nil {
			return nil, err
		}
		state = res.Values
		// Marry mutual proposals.
		res, err = Run(g, func(id graph.VID) v { return state[id] }, unmatched, Program[v, int32]{
			Gather: func(self graph.VID, sv *v, nbr graph.VID, nv *v, _ float32) (int32, bool) {
				if sv.P == int32(nbr) && nv.P == int32(self) {
					return int32(nbr), true
				}
				return 0, false
			},
			Sum: func(a, b int32) int32 { return a },
			Apply: func(_ graph.VID, val *v, acc int32, cnt int) bool {
				if val.S == none && cnt > 0 {
					val.S = acc
					return true
				}
				return false
			},
		}, step)
		if err != nil {
			return nil, err
		}
		state = res.Values
	}
	out := make([]int32, n)
	for i, x := range state {
		out[i] = x.S
	}
	return out, nil
}

// KC computes the k-core decomposition by peeling with one engine run per
// removal wave.
func KC(g *graph.Graph, cfg Config) ([]int32, error) {
	type v struct {
		D       int32
		Core    int32
		Removed bool
		Round   int32
	}
	n := g.NumVertices()
	state := make([]v, n)
	for i := range state {
		state[i] = v{D: int32(g.OutDegree(graph.VID(i))), Round: -1}
	}
	step := cfg
	step.MaxIters = 1
	_, maxDeg := g.MaxOutDegree()
	round := int32(0)
	for k := int32(1); k <= int32(maxDeg)+1; k++ {
		for {
			round++
			r := round
			res, err := Run(g, func(id graph.VID) v { return state[id] }, nil, Program[v, int32]{
				Gather: func(_ graph.VID, _ *v, _ graph.VID, nbr *v, _ float32) (int32, bool) {
					if nbr.Removed && nbr.Round == r-1 {
						return 1, true
					}
					return 0, false
				},
				Sum: func(a, b int32) int32 { return a + b },
				Apply: func(_ graph.VID, val *v, acc int32, cnt int) bool {
					if val.Removed {
						return false
					}
					val.D -= acc
					if val.D < k {
						val.Removed = true
						val.Round = r
						val.Core = k - 1
						return true
					}
					return cnt > 0
				},
			}, step)
			if err != nil {
				return nil, err
			}
			state = res.Values
			any := false
			remaining := false
			for i := range state {
				if state[i].Round == r && state[i].Removed {
					any = true
				}
				if !state[i].Removed {
					remaining = true
				}
			}
			if !any {
				break
			}
			if !remaining {
				break
			}
		}
		left := false
		for i := range state {
			if !state[i].Removed {
				left = true
				break
			}
		}
		if !left {
			break
		}
	}
	out := make([]int32, n)
	for i, x := range state {
		out[i] = x.Core
	}
	return out, nil
}

// TC counts triangles by gathering ranked neighbor lists — the heavyweight
// list-shipping PowerGraph needs (Table I notes its TC takes 181 LLoC
// because the model lacks list exchange primitives).
func TC(g *graph.Graph, cfg Config) (int64, error) {
	type v struct {
		Out   []uint32
		Count int64
	}
	rank := func(a, b graph.VID) bool {
		da, db := g.OutDegree(a), g.OutDegree(b)
		return da > db || (da == db && a > b)
	}
	step := cfg
	step.MaxIters = 1
	// Phase 1: collect higher-ranked neighbor lists.
	res, err := Run(g, func(graph.VID) v { return v{} }, nil, Program[v, []uint32]{
		Gather: func(self graph.VID, _ *v, nbr graph.VID, _ *v, _ float32) ([]uint32, bool) {
			if rank(nbr, self) {
				return []uint32{uint32(nbr)}, true
			}
			return nil, false
		},
		Sum: func(a, b []uint32) []uint32 { return append(a, b...) },
		Apply: func(_ graph.VID, val *v, acc []uint32, cnt int) bool {
			val.Out = acc
			sort.Slice(val.Out, func(i, j int) bool { return val.Out[i] < val.Out[j] })
			return true
		},
	}, step)
	if err != nil {
		return 0, err
	}
	state := res.Values
	// Phase 2: intersect along each edge once (counted at the larger id).
	res, err = Run(g, func(id graph.VID) v { return state[id] }, nil, Program[v, int64]{
		Gather: func(self graph.VID, sv *v, nbr graph.VID, nv *v, _ float32) (int64, bool) {
			if nbr >= self {
				return 0, false
			}
			return sortedIntersect(nv.Out, sv.Out), true
		},
		Sum: func(a, b int64) int64 { return a + b },
		Apply: func(_ graph.VID, val *v, acc int64, cnt int) bool {
			val.Count = acc
			return true
		},
	}, step)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, x := range res.Values {
		total += x.Count
	}
	return total, nil
}

func sortedIntersect(a, b []uint32) int64 {
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// GC gathers the colors of higher-ranked neighbors every round and moves to
// the smallest free color until stable.
func GC(g *graph.Graph, cfg Config) ([]int32, error) {
	type v struct{ C int32 }
	rank := func(a, b graph.VID) bool {
		da, db := g.OutDegree(a), g.OutDegree(b)
		return da > db || (da == db && a > b)
	}
	res, err := Run(g, func(graph.VID) v { return v{} }, nil, Program[v, []int32]{
		Gather: func(self graph.VID, _ *v, nbr graph.VID, nv *v, _ float32) ([]int32, bool) {
			if rank(nbr, self) {
				return []int32{nv.C}, true
			}
			return nil, false
		},
		Sum: func(a, b []int32) []int32 { return append(a, b...) },
		Apply: func(_ graph.VID, val *v, acc []int32, cnt int) bool {
			used := make(map[int32]bool, len(acc))
			for _, c := range acc {
				used[c] = true
			}
			c := int32(0)
			for used[c] {
				c++
			}
			if c != val.C {
				val.C = c
				return true
			}
			return false
		},
		Scatter: true,
	}, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(res.Values))
	for i, x := range res.Values {
		out[i] = x.C
	}
	return out, nil
}
