// Package partition assigns vertices to workers (the paper's m-way partition
// with master–mirror replication, §II and §IV-A) and precomputes, per worker,
// which remote vertices must be mirrored locally and which remote workers
// hold mirrors of each local master.
package partition

import (
	"fmt"

	"flash/graph"
	"flash/internal/bitset"
)

// Adjacency is the neighbor access mirror discovery needs: both in-memory
// CSR graphs (*graph.Graph) and out-of-core block graphs (*graph.BlockGraph)
// satisfy it, so partitions can be built by streaming a block file without
// ever materializing the full adjacency. Implementations may return slices
// that are only valid until the next call (the block graph's sequential MRU
// does); the partitioner never retains them.
type Adjacency interface {
	NumVertices() int
	OutNeighbors(u graph.VID) []graph.VID
	InNeighbors(v graph.VID) []graph.VID
}

// Placement maps vertices to owning workers. Implementations must be
// bijective between global ids and (worker, local index) pairs.
type Placement interface {
	// Workers returns the number of workers m.
	Workers() int
	// Owner returns the worker owning (holding the master of) v.
	Owner(v graph.VID) int
	// LocalIndex returns v's dense index within its owner's master range.
	LocalIndex(v graph.VID) int
	// LocalCount returns the number of masters on worker w.
	LocalCount(w int) int
	// GlobalID is the inverse of (Owner, LocalIndex).
	GlobalID(w, local int) graph.VID
}

// RangePlacement assigns contiguous, balanced vertex ranges: worker w owns
// [starts[w], starts[w+1]). This matches typical CSR-friendly layouts
// (Gemini-style) and gives cache-friendly local scans.
type RangePlacement struct {
	starts []int
	m      int
}

// NewRange creates a RangePlacement of n vertices over m workers.
func NewRange(n, m int) *RangePlacement {
	if m <= 0 {
		panic("partition: need at least one worker")
	}
	starts := make([]int, m+1)
	base, rem := n/m, n%m
	for w := 0; w < m; w++ {
		sz := base
		if w < rem {
			sz++
		}
		starts[w+1] = starts[w] + sz
	}
	return &RangePlacement{starts: starts, m: m}
}

func (p *RangePlacement) Workers() int { return p.m }

func (p *RangePlacement) Owner(v graph.VID) int {
	// Binary search over at most a few dozen workers.
	lo, hi := 0, p.m-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int(v) >= p.starts[mid+1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (p *RangePlacement) LocalIndex(v graph.VID) int { return int(v) - p.starts[p.Owner(v)] }
func (p *RangePlacement) LocalCount(w int) int       { return p.starts[w+1] - p.starts[w] }
func (p *RangePlacement) GlobalID(w, local int) graph.VID {
	return graph.VID(p.starts[w] + local)
}

// Start returns the first global id owned by worker w.
func (p *RangePlacement) Start(w int) int { return p.starts[w] }

// HashPlacement assigns vertex v to worker v % m; local index is v / m.
// It balances skewed id distributions at the cost of locality.
type HashPlacement struct {
	n, m int
}

// NewHash creates a HashPlacement of n vertices over m workers.
func NewHash(n, m int) *HashPlacement {
	if m <= 0 {
		panic("partition: need at least one worker")
	}
	return &HashPlacement{n: n, m: m}
}

func (p *HashPlacement) Workers() int               { return p.m }
func (p *HashPlacement) Owner(v graph.VID) int      { return int(v) % p.m }
func (p *HashPlacement) LocalIndex(v graph.VID) int { return int(v) / p.m }
func (p *HashPlacement) LocalCount(w int) int {
	c := p.n / p.m
	if w < p.n%p.m {
		c++
	}
	return c
}
func (p *HashPlacement) GlobalID(w, local int) graph.VID {
	return graph.VID(local*p.m + w)
}

// Part is one worker's view of the partitioned graph. Parts are shared
// read-only between every engine borrowing the same catalog partition.
//
//flash:immutable
type Part struct {
	Worker int
	// Masters is the set of local master ids (global numbering).
	MasterLo, MasterCount int // only meaningful for range placement traversal helpers

	// Mirrors marks the remote vertices this worker references through any
	// in- or out-edge of a local master (global numbering, capacity |V|).
	Mirrors *bitset.Bitset

	// MirrorWorkers[l] lists, for local master with local index l, the
	// workers that hold a mirror of it ("necessary mirrors", §IV-C).
	MirrorWorkers [][]int

	// Slots is the worker's compact state layout: local masters first
	// (slot == local index), then mirrors sorted by global id. Property
	// arrays indexed by slot are O(masters + mirrors) instead of O(|V|).
	Slots *SlotTable
}

// Partitioned bundles the adjacency source, placement, and per-worker parts.
// Once published (installed in a catalog or handed to an engine) it is
// read-only; Rebuild must only run on a Fork-private copy.
//
//flash:immutable
type Partitioned struct {
	G      Adjacency
	Place  Placement
	Parts  []*Part
	nTotal int
}

// New partitions g over m workers using the given placement. It discovers
// mirrors from both adjacency directions, matching the paper's data layout:
// masters plus "replicas ... used for update propagation and data
// synchronization".
func New(g Adjacency, place Placement) *Partitioned {
	m := place.Workers()
	n := g.NumVertices()
	p := &Partitioned{G: g, Place: place, nTotal: n}
	p.Parts = make([]*Part, m)
	for w := 0; w < m; w++ {
		p.Parts[w] = &Part{
			Worker:  w,
			Mirrors: bitset.New(n),
		}
		p.Parts[w].MirrorWorkers = make([][]int, place.LocalCount(w))
	}
	// Pass 1: every worker mirrors each remote endpoint of its masters'
	// edges (both directions: pull mode reads in-neighbors, push mode reads
	// local state and writes out-neighbors, whose current value is also read
	// by F/C/M predicates).
	for v := 0; v < n; v++ {
		w := place.Owner(graph.VID(v))
		part := p.Parts[w]
		for _, u := range g.OutNeighbors(graph.VID(v)) {
			if place.Owner(u) != w {
				part.Mirrors.Set(int(u))
			}
		}
		for _, u := range g.InNeighbors(graph.VID(v)) {
			if place.Owner(u) != w {
				part.Mirrors.Set(int(u))
			}
		}
	}
	// Pass 2: invert to per-master mirror-worker lists.
	for w := 0; w < m; w++ {
		p.Parts[w].Mirrors.Range(func(v int) bool {
			ow := place.Owner(graph.VID(v))
			li := place.LocalIndex(graph.VID(v))
			p.Parts[ow].MirrorWorkers[li] = append(p.Parts[ow].MirrorWorkers[li], w)
			return true
		})
	}
	// Pass 3: freeze each worker's compact slot layout.
	for w := 0; w < m; w++ {
		p.Parts[w].Slots = NewSlotTable(place, w, p.Parts[w].Mirrors)
	}
	return p
}

// Shell returns an empty Partitioned for place with no Parts built. It is
// the membership-resize entry point: the engine fills each slot with
// Rebuild(w), reusing the cold-restart path to construct every worker's view
// of the new partitioning one at a time instead of New's whole-graph passes.
func Shell(g Adjacency, place Placement) *Partitioned {
	return &Partitioned{
		G:      g,
		Place:  place,
		Parts:  make([]*Part, place.Workers()),
		nTotal: g.NumVertices(),
	}
}

// Rebuild reconstructs worker w's Part from scratch — mirror set, per-master
// mirror-worker lists, and slot table — as if New had just run, and installs
// it in p. It exists for cold worker restart: a permanently lost worker's
// partition view is recomputed from the graph and placement alone, which is
// possible precisely because every Part is a pure function of (g, place).
// The result is identical to the Part New produced, so the restarted
// worker's slot-indexed state lines up with the checkpoint image byte for
// byte.
//
//flash:mutator
func (p *Partitioned) Rebuild(w int) *Part {
	g, place, n := p.G, p.Place, p.nTotal
	part := &Part{
		Worker:        w,
		Mirrors:       bitset.New(n),
		MirrorWorkers: make([][]int, place.LocalCount(w)),
	}
	// Mirror set: remote endpoints of the local masters' edges, both
	// directions (pass 1 of New restricted to w).
	for l := 0; l < place.LocalCount(w); l++ {
		v := place.GlobalID(w, l)
		for _, u := range g.OutNeighbors(v) {
			if place.Owner(u) != w {
				part.Mirrors.Set(int(u))
			}
		}
		for _, u := range g.InNeighbors(v) {
			if place.Owner(u) != w {
				part.Mirrors.Set(int(u))
			}
		}
	}
	// Mirror-worker lists for w's masters: worker u mirrors master v exactly
	// when some master of u has an edge touching v, i.e. when v has an in- or
	// out-neighbor owned by u. New's pass 2 appends in ascending worker
	// order, so collect owner flags and emit them sorted the same way.
	seen := make([]bool, place.Workers())
	for l := range part.MirrorWorkers {
		v := place.GlobalID(w, l)
		for _, u := range g.OutNeighbors(v) {
			seen[place.Owner(u)] = true
		}
		for _, u := range g.InNeighbors(v) {
			seen[place.Owner(u)] = true
		}
		seen[w] = false
		var ws []int
		for ow, hit := range seen {
			if hit {
				ws = append(ws, ow)
				seen[ow] = false
			}
		}
		part.MirrorWorkers[l] = ws
	}
	part.Slots = NewSlotTable(place, w, part.Mirrors)
	p.Parts[w] = part
	return part
}

// Workers returns the number of workers.
func (p *Partitioned) Workers() int { return p.Place.Workers() }

// Fork returns a shallow copy of p whose Parts slice is private: the *Part
// entries are shared (they are read-only in steady state) but replacing one —
// which is all Rebuild does — no longer reaches other holders of the
// original. Engines running over a catalog-shared partition fork it before
// the first Rebuild (cold restart, resize rollback), so a job recovering from
// a worker loss can never race another job reading the shared layout.
func (p *Partitioned) Fork() *Partitioned {
	return &Partitioned{
		G:      p.G,
		Place:  p.Place,
		Parts:  append([]*Part(nil), p.Parts...),
		nTotal: p.nTotal,
	}
}

// SharedBytes returns the resident footprint of the partition's derived
// structures: per-worker mirror bitsets, mirror-worker lists, and slot-table
// auxiliaries. This is the memory a graph catalog pays once per (graph,
// placement) no matter how many concurrent jobs share the partition — the
// counterpart of Engine.StateBytes, which is paid per job.
func (p *Partitioned) SharedBytes() uint64 {
	var total uint64
	for _, part := range p.Parts {
		if part == nil {
			continue
		}
		total += uint64(len(part.Mirrors.Words())) * 8
		total += uint64(cap(part.MirrorWorkers)) * 24 // slice headers
		for _, ws := range part.MirrorWorkers {
			total += uint64(cap(ws)) * 8
		}
		if part.Slots != nil {
			total += part.Slots.AuxBytes()
		}
	}
	return total
}

// ReplicationFactor returns the average number of copies (master + mirrors)
// per vertex, a standard partitioning quality metric.
func (p *Partitioned) ReplicationFactor() float64 {
	if p.nTotal == 0 {
		return 0
	}
	total := p.nTotal // masters
	for _, part := range p.Parts {
		total += part.Mirrors.Count()
	}
	return float64(total) / float64(p.nTotal)
}

// CheckInvariants verifies the partition invariants (each vertex owned by
// exactly one worker; mirror lists consistent with mirror sets). It is used
// by tests and returns a descriptive error on violation.
func (p *Partitioned) CheckInvariants() error {
	n := p.nTotal
	seen := make([]int, n)
	for w := 0; w < p.Workers(); w++ {
		for l := 0; l < p.Place.LocalCount(w); l++ {
			v := p.Place.GlobalID(w, l)
			if p.Place.Owner(v) != w || p.Place.LocalIndex(v) != l {
				return fmt.Errorf("placement not bijective at worker %d local %d (v=%d)", w, l, v)
			}
			seen[v]++
		}
	}
	for v, c := range seen {
		if c != 1 {
			return fmt.Errorf("vertex %d owned by %d workers", v, c)
		}
	}
	for w, part := range p.Parts {
		var err error
		part.Mirrors.Range(func(v int) bool {
			ow := p.Place.Owner(graph.VID(v))
			if ow == w {
				err = fmt.Errorf("worker %d mirrors its own master %d", w, v)
				return false
			}
			li := p.Place.LocalIndex(graph.VID(v))
			found := false
			for _, mw := range p.Parts[ow].MirrorWorkers[li] {
				if mw == w {
					found = true
				}
			}
			if !found {
				err = fmt.Errorf("mirror list of master %d missing worker %d", v, w)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	for w, part := range p.Parts {
		if err := checkSlots(part.Slots, p.Place, w, part.Mirrors); err != nil {
			return err
		}
	}
	return nil
}

// checkSlots verifies the slot-table invariants: masters occupy slots
// [0, MasterCount) at their local index, mirrors follow in ascending gid
// order, and gid↔slot round-trips both ways.
func checkSlots(st *SlotTable, place Placement, w int, mirrors *bitset.Bitset) error {
	if st == nil {
		return fmt.Errorf("worker %d has no slot table", w)
	}
	if st.MasterCount() != place.LocalCount(w) {
		return fmt.Errorf("worker %d slot table has %d masters, placement %d",
			w, st.MasterCount(), place.LocalCount(w))
	}
	if st.SlotCount() != st.MasterCount()+mirrors.Count() {
		return fmt.Errorf("worker %d slot table has %d slots, want %d masters + %d mirrors",
			w, st.SlotCount(), st.MasterCount(), mirrors.Count())
	}
	prev := graph.VID(0)
	for slot := 0; slot < st.SlotCount(); slot++ {
		gid := st.GID(slot)
		if slot < st.MasterCount() {
			if place.Owner(gid) != w || place.LocalIndex(gid) != slot {
				return fmt.Errorf("worker %d slot %d: master gid %d not at its local index", w, slot, gid)
			}
		} else {
			if !mirrors.Test(int(gid)) {
				return fmt.Errorf("worker %d slot %d: gid %d is not a mirror", w, slot, gid)
			}
			if slot > st.MasterCount() && gid <= prev {
				return fmt.Errorf("worker %d slot %d: mirror gids not ascending (%d after %d)", w, slot, gid, prev)
			}
			prev = gid
		}
		if got := st.Slot(gid); got != slot {
			return fmt.Errorf("worker %d: Slot(GID(%d)) = %d", w, slot, got)
		}
		if got, ok := st.Lookup(gid); !ok || got != slot {
			return fmt.Errorf("worker %d: Lookup(GID(%d)) = %d,%v", w, slot, got, ok)
		}
	}
	return nil
}
