package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	b := New(130)
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("new bitset not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("Test(%d) = false after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("Test(64) after Clear")
	}
	if b.Count() != 7 {
		t.Fatalf("Count after clear = %d", b.Count())
	}
}

func TestTestAndSet(t *testing.T) {
	b := New(10)
	if b.TestAndSet(3) {
		t.Fatal("TestAndSet on absent bit returned true")
	}
	if !b.TestAndSet(3) {
		t.Fatal("TestAndSet on present bit returned false")
	}
}

func TestFillTrim(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		b := New(n)
		b.Fill()
		if got := b.Count(); got != n {
			t.Errorf("Fill(%d).Count = %d", n, got)
		}
	}
}

func TestSetOpsSmall(t *testing.T) {
	a, b := New(200), New(200)
	for i := 0; i < 200; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	u := a.Clone()
	u.Union(b)
	in := a.Clone()
	in.Intersect(b)
	mi := a.Clone()
	mi.Minus(b)
	for i := 0; i < 200; i++ {
		ia, ib := i%2 == 0, i%3 == 0
		if u.Test(i) != (ia || ib) {
			t.Fatalf("union wrong at %d", i)
		}
		if in.Test(i) != (ia && ib) {
			t.Fatalf("intersect wrong at %d", i)
		}
		if mi.Test(i) != (ia && !ib) {
			t.Fatalf("minus wrong at %d", i)
		}
	}
}

func TestRangeOrderAndEarlyStop(t *testing.T) {
	b := New(300)
	want := []int{2, 7, 64, 65, 199, 256}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.Range(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
	n := 0
	b.Range(func(i int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	b := New(70)
	b.Set(0)
	b.Set(69)
	c := New(70)
	c.SetWords(b.Words())
	if !c.Equal(b) {
		t.Fatal("SetWords did not reproduce set")
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"neg-cap":   func() { New(-1) },
		"oob-set":   func() { New(5).Set(5) },
		"oob-test":  func() { New(5).Test(-1) },
		"cap-union": func() { a, b := New(5), New(6); a.Union(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: bitset semantics match a map[int]bool model under random ops.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 97
		b := New(n)
		model := map[int]bool{}
		for i := 0; i < int(nOps)+1; i++ {
			x := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.Set(x)
				model[x] = true
			case 1:
				b.Clear(x)
				delete(model, x)
			case 2:
				if b.Test(x) != model[x] {
					return false
				}
			}
		}
		if b.Count() != len(model) {
			return false
		}
		ok := true
		b.Range(func(i int) bool {
			if !model[i] {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity |A∪B| = |A| + |B| - |A∩B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		u := a.Clone()
		u.Union(b)
		in := a.Clone()
		in.Intersect(b)
		return u.Count() == a.Count()+b.Count()-in.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetTest(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < b.N; i++ {
		s.Set(i & (1<<20 - 1))
		_ = s.Test((i * 7) & (1<<20 - 1))
	}
}

func BenchmarkRangeDense(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < 1<<16; i += 2 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := 0
		s.Range(func(int) bool { c++; return true })
	}
}
