package comm

import "sync"

// MinPooledCap is the smallest capacity the frame pool hands out or takes
// back. The gate lets the transports recycle delivered frames blindly: every
// buffer the engine encodes into comes from GetBuf (cap >= MinPooledCap), so
// a frame below the gate is an ad-hoc caller slice that must not enter the
// pool.
const MinPooledCap = 1 << 12

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MinPooledCap)
		return &b
	},
}

// GetBuf returns an empty frame buffer from the pool for append-style
// encoding. Release it with PutBuf once no reader can still hold it.
//flash:hotpath
func GetBuf() []byte {
	return (*(bufPool.Get().(*[]byte)))[:0]
}

// GetBufN returns a length-n frame buffer from the pool (for index-style
// filling, e.g. the TCP read path).
//flash:hotpath
func GetBufN(n int) []byte {
	b := *(bufPool.Get().(*[]byte))
	if cap(b) < n {
		putSlice(b)
		c := n
		if c < MinPooledCap {
			c = MinPooledCap
		}
		b = make([]byte, 0, c)
	}
	return b[:n]
}

// PutBuf recycles a frame buffer. Buffers below MinPooledCap are ignored, so
// it is always safe to call on a delivered frame regardless of origin. The
// caller asserts unique ownership: a buffer sent to several destinations must
// be cloned per destination before Send.
//flash:hotpath
func PutBuf(b []byte) {
	if cap(b) < MinPooledCap {
		return
	}
	putSlice(b)
}

func putSlice(b []byte) {
	if cap(b) == 0 {
		return
	}
	if debugPoison {
		poisonFrame(b[:cap(b)])
	}
	b = b[:0]
	bufPool.Put(&b)
}
