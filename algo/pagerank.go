package algo

import (
	"math"

	"flash"
	"flash/graph"
)

type prProps struct {
	Rank float64
	Next float64
}

// PageRank runs damped power iteration (damping 0.85) until the L1 change
// drops below eps or maxIters rounds elapse. Dangling mass is redistributed
// uniformly, so ranks always sum to 1.
func PageRank(g *graph.Graph, maxIters int, eps float64, opts ...flash.Option) ([]float64, error) {
	e, err := newEngine[prProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	n := float64(g.NumVertices())
	const damping = 0.85
	out := make([]float64, g.NumVertices())
	if _, err := e.Run(func() error {
		e.VertexMap(e.All(), nil, func(v flash.Vertex[prProps]) prProps {
			return prProps{Rank: 1 / n}
		})
		if err := prIterate(e, g, maxIters, eps, n, damping); err != nil {
			return err
		}
		// Extract inside Run: in cluster mode Gather is a communication round
		// whose failure must unwind through Run's recovery envelope, not
		// escape as a panic.
		e.Gather(func(v graph.VID, val *prProps) { out[v] = val.Rank })
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// prIterate runs the damped power iteration to convergence.
func prIterate(e *flash.Engine[prProps], g *graph.Graph, maxIters int, eps, n, damping float64) error {
	for it := 0; it < maxIters; it++ {
		// Dangling mass of this round, computed on the driver.
		dangling := e.SumFloat64(func(v graph.VID, val *prProps) float64 {
			if g.OutDegree(v) == 0 {
				return val.Rank
			}
			return 0
		})
		base := (1-damping)/n + damping*dangling/n
		// Zero Next so reductions accumulate pure contributions (the same
		// zero-base convention the paper's BC reduce relies on).
		e.VertexMap(e.All(), nil, func(v flash.Vertex[prProps]) prProps {
			return prProps{Rank: v.Val.Rank, Next: 0}
		})
		e.EdgeMap(e.All(), e.E(),
			nil,
			func(s, d flash.Vertex[prProps]) prProps {
				nv := *d.Val
				nv.Next += damping * s.Val.Rank / float64(s.Deg)
				return nv
			},
			nil,
			func(t, cur prProps) prProps {
				cur.Next += t.Next
				return cur
			})
		delta := e.SumFloat64(func(_ graph.VID, val *prProps) float64 {
			return math.Abs(base + val.Next - val.Rank)
		})
		e.VertexMap(e.All(), nil, func(v flash.Vertex[prProps]) prProps {
			return prProps{Rank: base + v.Val.Next}
		})
		if delta < eps {
			break
		}
	}
	return nil
}
