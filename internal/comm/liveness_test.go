package comm

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestMemDeadPeerClassification verifies the liveness upgrade: once a peer
// has heartbeat at least once and then gone silent past the drain-timeout
// window, a timed-out Drain names it with ErrPeerDead instead of the generic
// stall.
func TestMemDeadPeerClassification(t *testing.T) {
	tr := NewMem(2)
	defer tr.Close()
	tr.SetDrainTimeout(40 * time.Millisecond)
	if err := tr.Heartbeat(1); err != nil { // arm classification, then fall silent
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := tr.EndRound(0); err != nil {
		t.Fatal(err)
	}
	err := tr.Drain(0, func(int, []byte) {})
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("drain: err=%v, want ErrPeerDead", err)
	}
	var we *WorkerError
	if !errors.As(err, &we) || we.Worker != 1 {
		t.Fatalf("drain: err=%v, want WorkerError naming worker 1", err)
	}
}

// TestMemStalledPeerStillBeating verifies the other side of the
// classification: a peer that misses the round deadline but keeps
// heartbeating is reported as stalled (retry-worthy), never dead.
func TestMemStalledPeerStillBeating(t *testing.T) {
	tr := NewMem(2)
	defer tr.Close()
	tr.SetDrainTimeout(50 * time.Millisecond)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				tr.Heartbeat(1)
			}
		}
	}()
	defer func() { close(stop); <-done }()
	if err := tr.EndRound(0); err != nil {
		t.Fatal(err)
	}
	err := tr.Drain(0, func(int, []byte) {})
	if !errors.Is(err, ErrPeerStalled) || errors.Is(err, ErrPeerDead) {
		t.Fatalf("drain: err=%v, want plain ErrPeerStalled", err)
	}
}

// TestMemNoHeartbeatKeepsStalled verifies engines that never heartbeat keep
// the pre-liveness behavior: a timeout is always ErrPeerStalled.
func TestMemNoHeartbeatKeepsStalled(t *testing.T) {
	tr := NewMem(2)
	defer tr.Close()
	tr.SetDrainTimeout(30 * time.Millisecond)
	if err := tr.EndRound(0); err != nil {
		t.Fatal(err)
	}
	err := tr.Drain(0, func(int, []byte) {})
	if !errors.Is(err, ErrPeerStalled) || errors.Is(err, ErrPeerDead) {
		t.Fatalf("drain: err=%v, want plain ErrPeerStalled", err)
	}
}

// TestMemEpochDiscardsStaleFrames verifies membership epochs: a frame sent
// under a pre-Reset incarnation that surfaces afterwards is silently dropped
// by Drain instead of being delivered into the replayed round.
func TestMemEpochDiscardsStaleFrames(t *testing.T) {
	tr := NewMem(2)
	defer tr.Close()
	tr.Reset() // epoch 0 -> 1
	// A zombie frame from epoch 0 surfaces late (e.g. a killed worker's
	// buffered send).
	tr.boxes[1].push(frame{from: 0, round: 0, epoch: 0, data: []byte("stale")})
	if err := tr.Send(0, 1, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := tr.EndRound(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.EndRound(1); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := tr.Drain(1, func(_ int, data []byte) { got = append(got, string(data)) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "fresh" {
		t.Fatalf("delivered %v, want only the fresh frame", got)
	}
}

// TestMemEpochDiscardsStaleStash verifies the stash path discards stale
// epochs too: a stale future-round frame parked in the stash is dropped on
// the next Drain rather than replayed into a post-Reset round.
func TestMemEpochDiscardsStaleStash(t *testing.T) {
	tr := NewMem(2)
	defer tr.Close()
	tr.stash[1] = append(tr.stash[1], frame{from: 0, round: 1, epoch: 99, data: []byte("zombie")})
	if err := tr.EndRound(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.EndRound(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Drain(1, func(int, []byte) { t.Fatal("stale frame delivered") }); err != nil {
		t.Fatal(err)
	}
	if len(tr.stash[1]) != 0 {
		t.Fatalf("stale frame still stashed: %d entries", len(tr.stash[1]))
	}
}

// TestFaultyKillWorker verifies the hard-fault mode end to end on the mem
// transport: the victim's first transport call at the scripted round fails
// with KillError, every later call keeps failing, its receive endpoint is
// poisoned for real, and Revive+Reset restore a working transport.
func TestFaultyKillWorker(t *testing.T) {
	inner := NewMem(2)
	f := NewFaulty(inner, FaultPlan{Kills: []WorkerKill{{Worker: 1, Round: 0}}})
	defer f.Close()

	var ke *KillError
	if err := f.Send(1, 0, []byte("x")); !errors.As(err, &ke) || ke.Worker != 1 {
		t.Fatalf("send: err=%v, want KillError{1}", err)
	}
	if err := f.EndRound(1); !errors.As(err, &ke) {
		t.Fatalf("endround after death: err=%v, want KillError", err)
	}
	if err := f.Heartbeat(1); !errors.As(err, &ke) {
		t.Fatalf("heartbeat after death: err=%v, want KillError", err)
	}
	// The victim's receive endpoint is gone for real, not just flagged.
	if err := f.Drain(1, func(int, []byte) {}); !errors.As(err, &ke) {
		t.Fatalf("drain on dead endpoint: err=%v, want KillError", err)
	}
	if got := f.Counts().Kills; got != 1 {
		t.Fatalf("kills=%d, want 1", got)
	}
	// Survivors are unaffected on their own calls.
	if err := f.Send(0, 1, []byte("y")); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	// Cold restart: revive the victim and reset the transport.
	f.Revive(1)
	f.Reset()
	runRounds(t, f, 2, 2)
}

// TestFaultyKillPersistsAcrossReset verifies that, unlike every transient
// fault, a death survives Reset: only an explicit Revive brings the worker
// back, so checkpoint replay alone cannot resurrect a dead worker.
func TestFaultyKillPersistsAcrossReset(t *testing.T) {
	inner := NewMem(2)
	f := NewFaulty(inner, FaultPlan{Kills: []WorkerKill{{Worker: 0, Round: 0}}})
	defer f.Close()
	var ke *KillError
	if err := f.EndRound(0); !errors.As(err, &ke) {
		t.Fatalf("endround: err=%v, want KillError", err)
	}
	f.Reset()
	if err := f.EndRound(0); !errors.As(err, &ke) {
		t.Fatalf("endround after Reset: err=%v, want KillError (death must persist)", err)
	}
}

// TestFaultyCorruptFrame verifies the scripted corrupt-frame mode: the
// delivered payload differs from the sent one by exactly one bit.
func TestFaultyCorruptFrame(t *testing.T) {
	inner := NewMem(2)
	f := NewFaulty(inner, FaultPlan{
		Seed:     7,
		Corrupts: []FrameCorrupt{{From: 0, To: 1, Round: 0}},
	})
	defer f.Close()
	orig := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	if err := f.Send(0, 1, append([]byte(nil), orig...)); err != nil {
		t.Fatal(err)
	}
	if err := f.EndRound(0); err != nil {
		t.Fatal(err)
	}
	if err := f.EndRound(1); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := f.Drain(1, func(_ int, data []byte) { got = append([]byte(nil), data...) }); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("payload not corrupted")
	}
	diff := 0
	for i := range got {
		b := got[i] ^ orig[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
	if got := f.Counts().Corrupts; got != 1 {
		t.Fatalf("corrupts=%d, want 1", got)
	}
}

// TestTCPCorruptFrameCRC verifies the wire integrity check: a frame whose
// CRC32-C does not match its header+payload poisons the receiver with a
// typed ErrCorrupt instead of a decode panic or a silent misparse.
func TestTCPCorruptFrameCRC(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c := hostileConn(t, tr, 0, 1)
	defer c.Close()
	// Header CRC covers only hdr[:13]; appending a non-empty payload makes
	// the receiver's computed checksum disagree.
	hdr := rawHeader(0, 0, tcpFlagData, 4)
	if _, err := c.Write(append(hdr, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	tr.SetDrainTimeout(2 * time.Second)
	drainErr := tr.Drain(0, func(int, []byte) {})
	if !errors.Is(drainErr, ErrCorrupt) {
		t.Fatalf("drain: err=%v, want ErrCorrupt", drainErr)
	}
	var we *WorkerError
	if !errors.As(drainErr, &we) || we.Worker != 1 {
		t.Fatalf("drain: err=%v, want WorkerError naming worker 1", drainErr)
	}
}

// TestTCPHeartbeatReachesPeers verifies heartbeat control frames travel the
// real wire and stamp the shared liveness clock on arrival.
func TestTCPHeartbeatReachesPeers(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Heartbeat(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !tr.hub.hbOn[1].Load() {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never armed worker 1's liveness clock")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPDeadPeerClassification runs the full liveness protocol over real
// sockets: worker 1 heartbeats, dies silently, and worker 0's next drain
// deadline names it dead.
func TestTCPDeadPeerClassification(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetDrainTimeout(60 * time.Millisecond)
	if err := tr.Heartbeat(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !tr.hub.hbOn[1].Load() {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(80 * time.Millisecond) // silence beyond the window
	if err := tr.EndRound(0); err != nil {
		t.Fatal(err)
	}
	drainErr := tr.Drain(0, func(int, []byte) {})
	if !errors.Is(drainErr, ErrPeerDead) {
		t.Fatalf("drain: err=%v, want ErrPeerDead", drainErr)
	}
}
