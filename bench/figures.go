package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"flash"
	"flash/algo"
	"flash/metrics"
)

// Fig3 compares BFS under forced push, forced pull, and the adaptive dual
// mode on the paper's three Fig. 3 datasets (TW, US, UK analogs).
func Fig3(w io.Writer, opt Options) {
	opt.fill()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Data\tsparse(push)\tdense(pull)\tdual(auto)")
	for _, abbr := range []string{"TW", "US", "UK"} {
		d, _ := DatasetByAbbr(abbr)
		g := d.Build(opt.Scale)
		fmt.Fprintf(tw, "%s", abbr)
		for _, mode := range []flash.Mode{flash.Push, flash.Pull, flash.Auto} {
			start := time.Now()
			if _, err := algo.BFS(g, 0,
				flash.WithWorkers(opt.Run.Workers),
				flash.WithThreads(opt.Run.Threads),
				flash.WithMode(mode)); err != nil {
				fmt.Fprintf(tw, "\tERR")
				continue
			}
			fmt.Fprintf(tw, "\t%.4f", time.Since(start).Seconds())
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Fig4a prints the per-iteration active-vertex traces of MM-basic and
// MM-opt on the TW analog.
func Fig4a(w io.Writer, opt Options) error {
	opt.fill()
	d, _ := DatasetByAbbr("TW")
	g := d.Build(opt.Scale)
	fo := []flash.Option{flash.WithWorkers(opt.Run.Workers), flash.WithThreads(opt.Run.Threads)}
	basic, err := algo.MMActiveTrace(g, fo...)
	if err != nil {
		return err
	}
	optTrace, err := algo.MMOptActiveTrace(g, fo...)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "iter\tMM-basic\tMM-opt")
	n := len(basic)
	if len(optTrace) > n {
		n = len(optTrace)
	}
	sumB, sumO := 0, 0
	for i := 0; i < n; i++ {
		b, o := "-", "-"
		if i < len(basic) {
			b = fmt.Sprint(basic[i])
			sumB += basic[i]
		}
		if i < len(optTrace) {
			o = fmt.Sprint(optTrace[i])
			sumO += optTrace[i]
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\n", i, b, o)
	}
	fmt.Fprintf(tw, "total\t%d\t%d\n", sumB, sumO)
	tw.Flush()
	return nil
}

// Fig4b measures TC on the TW analog with varying intra-node parallelism
// (threads on one worker), the paper's core-scaling experiment.
func Fig4b(w io.Writer, opt Options) error {
	opt.fill()
	d, _ := DatasetByAbbr("TW")
	g := d.Build(opt.Scale)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "threads\tseconds\tspeedup")
	var base float64
	for _, threads := range []int{1, 2, 4, 8} {
		start := time.Now()
		if _, err := algo.TC(g, flash.WithWorkers(1), flash.WithThreads(threads)); err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		if threads == 1 {
			base = secs
		}
		fmt.Fprintf(tw, "%d\t%.4f\t%.2fx\n", threads, secs, base/secs)
	}
	tw.Flush()
	return nil
}

// Fig4cd measures TC on TW and CL on UK with varying worker ("node")
// counts, the paper's inter-node scaling experiment.
func Fig4cd(w io.Writer, opt Options) error {
	opt.fill()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\tworkers\tseconds\tspeedup")
	for _, exp := range []struct {
		name string
		data string
		run  func(workers int) error
	}{
		{"TC/TW", "TW", func(workers int) error {
			d, _ := DatasetByAbbr("TW")
			g := d.Build(opt.Scale)
			_, err := algo.TC(g, flash.WithWorkers(workers), flash.WithThreads(opt.Run.Threads))
			return err
		}},
		{"CL/UK", "UK", func(workers int) error {
			d, _ := DatasetByAbbr("UK")
			g := d.Build(opt.Scale)
			_, err := algo.CL(g, opt.Run.CLK, flash.WithWorkers(workers), flash.WithThreads(opt.Run.Threads))
			return err
		}},
	} {
		var base float64
		for _, workers := range []int{1, 2, 4} {
			start := time.Now()
			if err := exp.run(workers); err != nil {
				return err
			}
			secs := time.Since(start).Seconds()
			if workers == 1 {
				base = secs
			}
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.2fx\n", exp.name, workers, secs, base/secs)
		}
	}
	tw.Flush()
	return nil
}

// Breakdown reproduces the §V-E piecewise analysis: the share of
// computation, communication, serialization and other time for CC-opt on
// the TW analog as the worker count grows.
func Breakdown(w io.Writer, opt Options) error {
	opt.fill()
	d, _ := DatasetByAbbr("TW")
	g := d.Build(opt.Scale)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\tcomputation\tcommunication\tserialization\tother\ttotal(s)")
	for _, workers := range []int{1, 2, 4} {
		col := metrics.New()
		start := time.Now()
		if _, err := algo.CCOpt(g, flash.WithWorkers(workers), flash.WithCollector(col)); err != nil {
			return err
		}
		wall := time.Since(start).Seconds()
		bd := col.Breakdown()
		// "Other" includes driver time outside the tracked categories.
		fmt.Fprintf(tw, "%d\t%.0f%%\t%.0f%%\t%.0f%%\t%.0f%%\t%.4f\n",
			workers, bd[metrics.Compute]*100, bd[metrics.Communication]*100,
			bd[metrics.Serialization]*100, bd[metrics.Other]*100, wall)
	}
	tw.Flush()
	return nil
}

// Ablation measures the §IV-C optimization toggles on BFS over the OR
// analog: necessary-mirror sync vs broadcast, and communication overlap on
// vs off.
func Ablation(w io.Writer, opt Options) error {
	opt.fill()
	d, _ := DatasetByAbbr("OR")
	g := d.Build(opt.Scale)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "configuration\tseconds")
	for _, cfg := range []struct {
		name string
		opts []flash.Option
	}{
		{"baseline (all optimizations)", []flash.Option{flash.WithBatchBytes(1 << 16)}},
		{"broadcast sync (no necessary mirrors)", []flash.Option{flash.WithBatchBytes(1 << 16), flash.WithoutNecessaryMirrors()}},
		{"no comm/compute overlap", nil},
		{"hash placement", []flash.Option{flash.WithBatchBytes(1 << 16), flash.WithHashPlacement()}},
	} {
		opts := append([]flash.Option{flash.WithWorkers(opt.Run.Workers), flash.WithThreads(opt.Run.Threads)}, cfg.opts...)
		start := time.Now()
		if _, err := algo.CC(g, opts...); err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.4f\n", cfg.name, time.Since(start).Seconds())
	}
	tw.Flush()
	return nil
}

// CCOptRounds reproduces the Appendix B iteration-count claim: CC-basic
// supersteps vs CC-opt rounds on the large-diameter US analog.
func CCOptRounds(w io.Writer, opt Options) error {
	opt.fill()
	d, _ := DatasetByAbbr("US")
	g := d.Build(opt.Scale)
	col := metrics.New()
	if _, err := algo.CC(g, flash.WithWorkers(opt.Run.Workers), flash.WithCollector(col)); err != nil {
		return err
	}
	res, err := algo.CCOpt(g, flash.WithWorkers(opt.Run.Workers))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "CC-basic supersteps: %d\nCC-opt rounds: %d\n", col.Supersteps, res.Rounds)
	return nil
}
