// Fixture for the hotalloc analyzer: seeded allocating constructs inside
// //flash:hotpath functions plus negative cases that must stay silent.
package hotalloc

import (
	"fmt"

	"hotalloc/hotdep"
)

type VID uint32

func sink(v any)        {}
func use(b []byte)      {}
func grab() []byte      { return nil }
func consume(f func())  {}
func add(dst []int) int { return len(dst) }

//flash:hotpath
func hotBad(vids []VID, out []int) {
	s := fmt.Sprintf("step %d", len(vids)) // want `call into package fmt`
	_ = s
	m := make(map[VID]int) // want `unsized make`
	_ = m
	buf := make([]byte, 0) // want `unsized make`
	_ = buf
	var acc []int
	for i, v := range vids {
		acc = append(acc, int(v))    // want `append to possibly-unsized acc`
		f := func() int { return i } // want `variable-capturing closure inside a loop`
		out[f()%len(out)] = 0
	}
	sink(len(acc)) // want `implicit interface boxing of int`
}

//flash:hotpath
func hotGood(dst []byte, vids []VID) []byte {
	buf := make([]int, 0, len(vids)) // sized: explicit capacity
	for _, v := range vids {
		buf = append(buf, int(v))  // no diagnostic: destination is capacity-carrying
		dst = append(dst, byte(v)) // no diagnostic: parameter, caller owns capacity
	}
	scratch := grab()
	scratch = append(scratch[:0], dst...) // no diagnostic: [:0] reuse idiom
	use(scratch)
	_ = add(buf)
	return dst
}

//flash:hotpath
func hotDecode(src []byte) (int, error) {
	if len(src) == 0 {
		return 0, fmt.Errorf("short frame: %d bytes", len(src)) // no diagnostic: cold error return
	}
	return int(src[0]), nil
}

type badInput struct{ n int }

//flash:hotpath
func hotPanic(n int) {
	if n < 0 {
		panic(badInput{n}) // no diagnostic: panic arguments are cold
	}
}

//flash:hotpath
func hotHoisted(vids []VID, out []int) {
	bump := func(i int) { out[i%len(out)]++ } // no diagnostic: hoisted above the loop
	for _, v := range vids {
		bump(int(v))
	}
}

//flash:hotpath
func hotCaptureFree(vids []VID) int {
	t := 0
	for range vids {
		double := func(x int) int { return x * 2 } // no diagnostic: captures nothing
		t = double(t)
	}
	return t
}

//flash:hotpath
func hotAllowed() {
	idx := make(map[VID]int) //flash:allow hotalloc built once at engine init, not per superstep
	_ = idx
}

// coldPath has no marker: the same constructs are fine here.
func coldPath(vids []VID) string {
	m := make(map[VID]int)
	for i, v := range vids {
		m[v] = i
	}
	return fmt.Sprint(len(m))
}

// Block-path pattern, modeled on the FLASHBLK block cache's Get/decode path:
// the per-read buffer must be sized from the block-table entry, and the
// decoded adjacency must grow into a capacity-carrying destination — an
// unsized scratch grown per edge re-allocates on the per-block hot path.
type blockMeta struct{ encLen uint32 }

//flash:hotpath
func hotBlockDecodeBad(metas []blockMeta, idx int, edges []VID) []VID {
	var adj []VID
	for _, v := range edges {
		adj = append(adj, v) // want `append to possibly-unsized adj`
	}
	return adj
}

//flash:hotpath
func hotBlockDecodeGood(metas []blockMeta, idx int, edges []VID) []VID {
	buf := make([]byte, metas[idx].encLen) // sized by the block-table entry
	use(buf)
	adj := make([]VID, 0, len(edges)) // sized by the block's edge count
	for _, v := range edges {
		adj = append(adj, v) // no diagnostic: destination carries capacity
	}
	return adj
}

// Cross-package allocation: the allocations live in hotalloc/hotdep, behind
// calls v1 treated as opaque. The summaries carry them to the hot call site.
//
//flash:hotpath
func hotCrossPackage(n int, dst []int) []int {
	buckets := hotdep.FillBuckets(n) // want `call to FillBuckets allocates in a loop`
	_ = buckets
	for i := 0; i < n; i++ {
		s := hotdep.Scratch(n) // want `call to allocating Scratch inside a hot loop`
		_ = s
		dst = hotdep.Reuse(dst, i) // no diagnostic: callee allocates nothing, pinned
		t := hotdep.Table(n)       // no diagnostic: //flash:amortized callee
		_ = t
	}
	return dst
}
