package algo

import (
	"flash"
	"flash/graph"
)

type kcProps struct {
	D    int32 // remaining induced degree
	Core int32 // assigned core number
}

// KC computes the k-core decomposition by iterated peeling (paper Algorithm
// 16, following Ligra): for k = 1, 2, ... repeatedly remove vertices whose
// induced degree is below k; removed vertices have core number k-1. Returns
// the core number per vertex.
func KC(g *graph.Graph, opts ...flash.Option) ([]int32, error) {
	e, err := newEngine[kcProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[kcProps]) kcProps {
		return kcProps{D: int32(v.Deg)}
	})
	_, maxDeg := g.MaxOutDegree()
	for k := int32(1); k <= int32(maxDeg)+1; k++ {
		for {
			a := e.VertexMap(u,
				func(v flash.Vertex[kcProps]) bool { return v.Val.D < k },
				func(v flash.Vertex[kcProps]) kcProps {
					nv := *v.Val
					nv.Core = k - 1
					return nv
				})
			if a.Size() == 0 {
				break
			}
			u = e.Minus(u, a)
			// Decrement the induced degree of the removed vertices'
			// neighbors (pull over edges sourced in A, per the paper).
			e.EdgeMapDense(a, e.E(),
				nil,
				func(s, d flash.Vertex[kcProps]) kcProps {
					nv := *d.Val
					nv.D--
					return nv
				},
				nil)
		}
		if u.Size() == 0 {
			break
		}
	}

	out := make([]int32, g.NumVertices())
	e.Gather(func(v graph.VID, val *kcProps) { out[v] = val.Core })
	return out, nil
}

type kcoProps struct {
	Core int32
	Cnt  int32
	C    []int32 // histogram of min(core(d), core(s)) over neighbors
}

// KCOpt computes core numbers with the h-index-style local refinement of
// Khaouid et al. (paper Algorithm 17): every vertex starts at core = degree
// and repeatedly lowers its estimate to the largest k such that at least k
// neighbors have core ≥ k, which converges to the exact core decomposition
// in far fewer rounds than peeling.
func KCOpt(g *graph.Graph, opts ...flash.Option) ([]int32, error) {
	e, err := newEngine[kcoProps](g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	u := e.VertexMap(e.All(), nil, func(v flash.Vertex[kcoProps]) kcoProps {
		return kcoProps{Core: int32(v.Deg)}
	})
	for u.Size() != 0 {
		// Count neighbors whose estimate is at least ours.
		u = e.VertexMap(e.All(), nil, func(v flash.Vertex[kcoProps]) kcoProps {
			nv := *v.Val
			nv.Cnt = 0
			nv.C = nil
			return nv
		}, flash.NoSync()) // Cnt and C are master-local scratch
		u = e.EdgeMap(u, e.E(),
			func(s, d flash.Vertex[kcoProps]) bool { return s.Val.Core >= d.Val.Core },
			func(s, d flash.Vertex[kcoProps]) kcoProps {
				nv := *d.Val
				nv.Cnt++
				return nv
			},
			nil,
			func(t, cur kcoProps) kcoProps {
				cur.Cnt += t.Cnt
				return cur
			},
			flash.NoSync())
		// Vertices with too few supporters must lower their estimate. The
		// filter scans all of V: a vertex with *zero* qualifying neighbors
		// is absent from the EdgeMap output yet still needs lowering.
		u = e.VertexMap(e.All(), func(v flash.Vertex[kcoProps]) bool { return v.Val.Cnt < v.Val.Core }, nil)
		if u.Size() == 0 {
			break
		}
		// Histogram neighbor estimates, capped at own estimate.
		e.EdgeMapDense(e.All(), e.JoinEU(e.E(), u),
			nil,
			func(s, d flash.Vertex[kcoProps]) kcoProps {
				nv := *d.Val
				if len(nv.C) == 0 {
					nv.C = make([]int32, nv.Core+1)
				}
				b := s.Val.Core
				if nv.Core < b {
					b = nv.Core
				}
				nv.C[b]++
				return nv
			},
			nil,
			flash.NoSync())
		// Walk the histogram down to the new estimate (h-index step).
		u = e.VertexMap(u, nil, func(v flash.Vertex[kcoProps]) kcoProps {
			nv := *v.Val
			if len(nv.C) == 0 {
				nv.Core = 0
				return nv
			}
			sum := int32(0)
			for sum+nv.C[nv.Core] < nv.Core {
				sum += nv.C[nv.Core]
				nv.Core--
			}
			nv.C = nil // drop the histogram before the critical sync
			return nv
		})
	}

	out := make([]int32, g.NumVertices())
	e.Gather(func(v graph.VID, val *kcoProps) { out[v] = val.Core })
	return out, nil
}
