// Web-graph structure mining (the paper's WG regime): community detection
// with label propagation, site-level structure with SCC, and the
// beyond-neighborhood algorithms — rectangle counting over two-hop virtual
// edges and k-clique counting via arbitrary-vertex reads — that no
// neighborhood-bound framework expresses.
package main

import (
	"fmt"
	"log"

	"flash"
	"flash/algo"
	"flash/graph"
)

func main() {
	g := graph.GenWeb(3000, 14, 24, 33)
	fmt.Println("web graph:", g)
	opts := []flash.Option{flash.WithWorkers(4)}

	// Communities via label propagation.
	labels, err := algo.LPA(g, 12, opts...)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	biggest := 0
	for _, s := range sizes {
		if s > biggest {
			biggest = s
		}
	}
	fmt.Printf("communities: %d (largest has %d pages)\n", len(sizes), biggest)

	// Strongly connected structure (every symmetric component is one SCC;
	// on a crawl graph this would separate the core from tendrils).
	scc, err := algo.SCC(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	comps := map[int32]bool{}
	for _, c := range scc {
		comps[c] = true
	}
	fmt.Printf("strongly connected components: %d\n", len(comps))

	// Beyond-neighborhood analytics: rectangles (bipartite-core signals)
	// and 4-cliques (tight link farms).
	rc, err := algo.RC(g, opts...)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := algo.CL(g, 4, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rectangles: %d; 4-cliques: %d\n", rc, cl)
}
