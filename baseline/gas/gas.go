// Package gas is a miniature Gather-Apply-Scatter engine (PowerGraph's
// synchronous model): each round, every active vertex gathers an
// associative+commutative accumulation over its in-edges, applies it to its
// value, and — when the apply changed the value — scatters activation to its
// out-neighbors. The model's defining restrictions hold: data moves only
// between immediate neighbors, the control flow is fixed (no vertexSubset
// algebra), and multi-phased algorithms must chain separate engine runs.
//
// Updated values and activations are exchanged through the shared comm
// substrate; like PowerGraph, every replica of a vertex observes the
// master's value of the previous round.
package gas

import (
	"encoding/binary"
	"fmt"
	"sync"

	"flash/graph"
	"flash/internal/bitset"
	"flash/internal/comm"
	"flash/internal/partition"
)

// Config parameterizes a run.
type Config struct {
	// Workers is the number of workers (default 4).
	Workers int
	// MaxIters stops after this many rounds even if vertices remain active
	// (0 = until quiescence). Drivers chaining phases set MaxIters=1.
	MaxIters int
}

func (c *Config) fill() {
	if c.Workers == 0 {
		c.Workers = 4
	}
}

// Program defines one GAS computation over value type V and gather type G.
type Program[V, G any] struct {
	// Gather produces a contribution from one in-edge (nbr -> self); ok
	// false skips the edge. nbrVal is the neighbor's previous-round value.
	Gather func(self graph.VID, selfVal *V, nbr graph.VID, nbrVal *V, w float32) (g G, ok bool)
	// Sum folds two contributions (must be associative and commutative).
	Sum func(a, b G) G
	// Apply folds the gathered accumulation (n contributions; n may be 0)
	// into the vertex value and reports whether the value changed.
	Apply func(self graph.VID, val *V, acc G, n int) bool
	// Scatter activates the out-neighbors of changed vertices when true.
	Scatter bool
}

// Result of a run.
type Result[V any] struct {
	Values []V
	Iters  int
}

// Run executes prog from the given initial values and frontier (nil =
// all vertices active).
func Run[V, G any](g *graph.Graph, init func(v graph.VID) V, frontier []graph.VID, prog Program[V, G], cfg Config) (Result[V], error) {
	cfg.fill()
	if prog.Gather == nil || prog.Apply == nil || prog.Sum == nil {
		return Result[V]{}, fmt.Errorf("gas: program needs Gather, Sum and Apply")
	}
	n := g.NumVertices()
	place := partition.NewRange(n, cfg.Workers)
	tr := comm.NewMem(cfg.Workers)
	defer tr.Close()
	codec := comm.CodecFor[V]()

	// Each worker holds a full value array (master slots authoritative,
	// remote slots are replicas refreshed by broadcast) plus an active set.
	vals := make([][]V, cfg.Workers)
	active := make([]*bitset.Bitset, cfg.Workers)
	nextActive := make([]*bitset.Bitset, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		vals[w] = make([]V, n)
		for v := 0; v < n; v++ {
			vals[w][v] = init(graph.VID(v))
		}
		active[w] = bitset.New(n)
		nextActive[w] = bitset.New(n)
		if frontier == nil {
			active[w].Fill()
		} else {
			for _, v := range frontier {
				active[w].Set(int(v))
			}
		}
	}

	iters := 0
	for {
		iters++
		anyActive := false
		for w := 0; w < cfg.Workers; w++ {
			if !active[w].Empty() {
				anyActive = true
				break
			}
		}
		if !anyActive || (cfg.MaxIters > 0 && iters > cfg.MaxIters) {
			iters--
			break
		}
		var wg sync.WaitGroup
		errs := make([]error, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				myVals := vals[w]
				next := nextActive[w]
				next.Reset()
				var out []byte // (id, value) updates to broadcast
				var acts []byte
				type upd struct {
					id  graph.VID
					val V
				}
				var updates []upd // deferred so gathers see previous-round values
				for l := 0; l < place.LocalCount(w); l++ {
					self := place.GlobalID(w, l)
					if !active[w].Test(int(self)) {
						continue
					}
					// Gather over in-edges.
					var acc G
					contribs := 0
					adj := g.InNeighbors(self)
					ws := g.InWeights(self)
					for i, nbr := range adj {
						var wt float32
						if ws != nil {
							wt = ws[i]
						}
						gv, ok := prog.Gather(self, &myVals[self], nbr, &myVals[nbr], wt)
						if !ok {
							continue
						}
						if contribs == 0 {
							acc = gv
						} else {
							acc = prog.Sum(acc, gv)
						}
						contribs++
					}
					// Apply on a copy: neighbors gathering later in this loop
					// must still observe the previous-round value.
					cp := myVals[self]
					if prog.Apply(self, &cp, acc, contribs) {
						updates = append(updates, upd{id: self, val: cp})
						out = binary.LittleEndian.AppendUint32(out, uint32(self))
						out = codec.Append(out, &cp)
						if prog.Scatter {
							for _, d := range g.OutNeighbors(self) {
								acts = binary.LittleEndian.AppendUint32(acts, uint32(d))
							}
						}
					}
				}
				for _, u := range updates {
					myVals[u.id] = u.val
				}
				// Broadcast value updates and activations (1 byte tag).
				for to := 0; to < cfg.Workers; to++ {
					if to == w {
						continue
					}
					if len(out) > 0 {
						if err := tr.Send(w, to, append([]byte{0}, out...)); err != nil {
							errs[w] = err
							return
						}
					}
					if len(acts) > 0 {
						if err := tr.Send(w, to, append([]byte{1}, acts...)); err != nil {
							errs[w] = err
							return
						}
					}
				}
				// Local activations apply directly.
				for off := 0; off < len(acts); off += 4 {
					next.Set(int(binary.LittleEndian.Uint32(acts[off:])))
				}
				if err := tr.EndRound(w); err != nil {
					errs[w] = err
					return
				}
				errs[w] = tr.Drain(w, func(_ int, data []byte) {
					switch data[0] {
					case 0:
						off := 1
						for off < len(data) {
							id := binary.LittleEndian.Uint32(data[off:])
							off += 4
							var val V
							k, err := codec.Decode(data[off:], &val)
							if err != nil {
								panic("gas: corrupt value frame: " + err.Error())
							}
							off += k
							myVals[id] = val
						}
					case 1:
						for off := 1; off < len(data); off += 4 {
							next.Set(int(binary.LittleEndian.Uint32(data[off:])))
						}
					}
				})
			}()
		}
		wg.Wait()
		for w := 0; w < cfg.Workers; w++ {
			if errs[w] != nil {
				return Result[V]{}, fmt.Errorf("gas: iteration %d: worker %d: %w", iters, w, errs[w])
			}
		}
		for w := 0; w < cfg.Workers; w++ {
			active[w], nextActive[w] = nextActive[w], active[w]
		}
	}

	res := Result[V]{Values: make([]V, n), Iters: iters}
	for w := 0; w < cfg.Workers; w++ {
		for l := 0; l < place.LocalCount(w); l++ {
			gid := place.GlobalID(w, l)
			res.Values[gid] = vals[w][gid]
		}
	}
	return res, nil
}
