package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestNewTCPDialFailureFailsFast is the regression test for the setup
// deadlock: a failed dial used to leave the accept side waiting forever.
// NewTCP must instead return the error promptly with the listeners closed.
func TestNewTCPDialFailureFailsFast(t *testing.T) {
	var calls atomic.Int64
	inject := func(network, addr string) (net.Conn, error) {
		if calls.Add(1) >= 2 {
			return nil, fmt.Errorf("injected dial failure")
		}
		return net.Dial(network, addr)
	}

	type result struct {
		tr  *TCP
		err error
	}
	done := make(chan result, 1)
	go func() {
		tr, err := newTCP(4, inject) // 6 pair dials; the 2nd fails
		done <- result{tr, err}
	}()
	select {
	case res := <-done:
		if res.err == nil {
			res.tr.Close()
			t.Fatal("NewTCP succeeded despite failing dial")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("NewTCP deadlocked on dial failure")
	}
}

// hostileConn dials worker me's listener with a valid hello for peer id and
// returns the raw socket for writing hand-crafted frames.
func hostileConn(t *testing.T, tr *TCP, me, peer int) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", tr.lns[me].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(EncodeHello(peer, tr.helloEpoch.Load())); err != nil {
		t.Fatal(err)
	}
	return c
}

// rawHeader builds a wire frame header with the CRC field covering only the
// header prefix (valid for frames whose payload never arrives; the length
// check fires before any payload is read, so hostile-length tests don't need
// a matching body CRC).
func rawHeader(round, epoch uint32, flag byte, length uint32) []byte {
	hdr := make([]byte, tcpHdrSize)
	binary.LittleEndian.PutUint32(hdr[0:4], round)
	binary.LittleEndian.PutUint32(hdr[4:8], epoch)
	hdr[8] = flag
	binary.LittleEndian.PutUint32(hdr[9:13], length)
	binary.LittleEndian.PutUint32(hdr[13:17], crc32.Checksum(hdr[:13], castagnoli))
	return hdr
}

// TestTCPOversizedFramePrefix verifies a corrupt length prefix cannot drive
// frame allocation past MaxFrameSize: the connection is rejected and the
// receiver's next Drain reports it instead of the process OOMing or hanging.
func TestTCPOversizedFramePrefix(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c := hostileConn(t, tr, 0, 1)
	defer c.Close()
	hdr := rawHeader(0, 0, tcpFlagData, 1<<31) // hostile length
	if _, err := c.Write(hdr); err != nil {
		t.Fatal(err)
	}
	tr.SetDrainTimeout(2 * time.Second)
	drainErr := tr.Drain(0, func(int, []byte) {})
	if !errors.Is(drainErr, ErrFrameTooLarge) {
		t.Fatalf("drain: err=%v, want ErrFrameTooLarge", drainErr)
	}
	select {
	case diag := <-tr.Err():
		if !errors.Is(diag, ErrFrameTooLarge) {
			t.Fatalf("diagnostic: %v", diag)
		}
	default:
		t.Fatal("no diagnostic on Err channel")
	}
}

// TestTCPMidFrameTruncation verifies a connection dying mid-frame is
// distinguished from a clean close: the receiver's Drain fails with
// ErrTruncated instead of stalling.
func TestTCPMidFrameTruncation(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c := hostileConn(t, tr, 0, 1)
	hdr := rawHeader(0, 0, tcpFlagData, 100) // claim 100 bytes
	if _, err := c.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(make([]byte, 10)); err != nil { // deliver only 10
		t.Fatal(err)
	}
	c.Close()
	tr.SetDrainTimeout(2 * time.Second)
	drainErr := tr.Drain(0, func(int, []byte) {})
	if !errors.Is(drainErr, ErrTruncated) {
		t.Fatalf("drain: err=%v, want ErrTruncated", drainErr)
	}
}

// TestTCPReconnect breaks worker 0's write side of the pair socket and
// verifies the next round completes by redialing.
func TestTCPReconnect(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetDrainTimeout(10 * time.Second) // safety net: fail, don't hang
	runRounds(t, tr, 2, 1)

	// Half-close worker 0's end: its next flush fails deterministically while
	// nothing in flight toward worker 0 can be lost.
	tc := tr.conns[0][1]
	tc.mu.Lock()
	tc.c.(*net.TCPConn).CloseWrite()
	tc.mu.Unlock()
	peer := tr.conns[1][0]
	peer.mu.Lock()
	peerOld := peer.c
	peer.mu.Unlock()

	// Worker 0's end-of-round flush hits the dead write side, retries,
	// redials and succeeds.
	if err := tr.EndRound(0); err != nil {
		t.Fatalf("endround after drop: %v", err)
	}
	// Wait until worker 1's accept loop has installed the fresh socket so its
	// own marker is not written to the stale one.
	deadline := time.Now().Add(10 * time.Second)
	for {
		peer.mu.Lock()
		swapped := peer.c != nil && peer.c != peerOld
		peer.mu.Unlock()
		if swapped {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer never received the reconnect")
		}
		time.Sleep(time.Millisecond)
	}
	if err := tr.EndRound(1); err != nil {
		t.Fatalf("peer endround: %v", err)
	}
	if err := tr.Drain(0, func(int, []byte) {}); err != nil {
		t.Fatalf("drain after drop: %v", err)
	}
	if err := tr.Drain(1, func(int, []byte) {}); err != nil {
		t.Fatalf("peer drain: %v", err)
	}
	if rc := tr.Stats().Reconnects; rc < 1 {
		t.Fatalf("reconnects=%d, want >=1", rc)
	}
}

// TestTCPDrainTimeoutStall verifies the stall detector: a peer that never
// finishes its round fails the receiver's Drain with ErrPeerStalled instead
// of blocking forever.
func TestTCPDrainTimeoutStall(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetDrainTimeout(50 * time.Millisecond)
	if err := tr.EndRound(0); err != nil {
		t.Fatal(err)
	}
	// Worker 1 never sends its end-of-round marker.
	if err := tr.Drain(0, func(int, []byte) {}); !errors.Is(err, ErrPeerStalled) {
		t.Fatalf("drain: err=%v, want ErrPeerStalled", err)
	}
}

// TestAbortUnblocksDrain verifies Abort reaches a worker blocked mid-Drain.
func TestAbortUnblocksDrain(t *testing.T) {
	for _, mk := range []func() Transport{
		func() Transport { return NewMem(2) },
		func() Transport {
			tr, err := NewTCP(2)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
	} {
		tr := mk()
		done := make(chan error, 1)
		go func() {
			if err := tr.EndRound(0); err != nil {
				done <- err
				return
			}
			done <- tr.Drain(0, func(int, []byte) {})
		}()
		time.Sleep(20 * time.Millisecond)
		sentinel := errors.New("sentinel abort")
		tr.Abort(sentinel)
		select {
		case err := <-done:
			if !errors.Is(err, sentinel) {
				t.Fatalf("drain after abort: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("abort did not unblock Drain")
		}
		tr.Close()
	}
}

// TestMemResetAfterAbort verifies Reset restores a poisoned transport to a
// working pristine state (the recovery path depends on this).
func TestMemResetAfterAbort(t *testing.T) {
	tr := NewMem(2)
	tr.Send(0, 1, []byte("stale"))
	tr.Abort(errors.New("boom"))
	if err := tr.Send(0, 1, []byte("x")); err == nil {
		t.Fatal("send succeeded on aborted transport")
	}
	tr.Reset()
	runRounds(t, tr, 2, 2)
}
