// Package lloc counts logical lines of code the way the paper's Table I
// does (after Nguyen et al.'s SLOC counting standard): comments, blank
// lines, lone braces/parentheses, package/import clauses, and input/output
// or result-extraction statements are excluded; what remains approximates
// the number of logical source statements in the algorithm's core
// functions.
package lloc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
)

// FuncCount is the logical line count of one function.
type FuncCount struct {
	Name  string
	Lines int
}

// FileReport summarizes one source file.
type FileReport struct {
	Path  string
	Funcs []FuncCount
	Total int
}

// CountFile parses a Go source file and counts logical lines per top-level
// function. Only statements inside function bodies are counted: one line
// per statement, plus one for each function signature, matching the paper's
// "core functions only" methodology (type and variable declarations outside
// functions — the data-structure definitions — are excluded).
func CountFile(path string) (FileReport, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return FileReport{}, fmt.Errorf("lloc: %w", err)
	}
	return CountSource(path, src)
}

// CountSource counts logical lines in the given source text.
func CountSource(path string, src []byte) (FileReport, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		return FileReport{}, fmt.Errorf("lloc: parse %s: %w", path, err)
	}
	rep := FileReport{Path: path}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		c := 1 + countStmts(fn.Body.List) // signature + body statements
		rep.Funcs = append(rep.Funcs, FuncCount{Name: fn.Name.Name, Lines: c})
		rep.Total += c
	}
	sort.Slice(rep.Funcs, func(i, j int) bool { return rep.Funcs[i].Name < rep.Funcs[j].Name })
	return rep, nil
}

// countStmts counts logical statements, descending into blocks: a compound
// statement (if/for/switch/...) counts as one plus its body.
func countStmts(stmts []ast.Stmt) int {
	n := 0
	for _, s := range stmts {
		n += countStmt(s)
	}
	return n
}

func countStmt(s ast.Stmt) int {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return countStmts(st.List)
	case *ast.IfStmt:
		n := 1 + countStmts(st.Body.List)
		if st.Else != nil {
			n += countStmt(st.Else)
		}
		return n
	case *ast.ForStmt:
		return 1 + countStmts(st.Body.List)
	case *ast.RangeStmt:
		return 1 + countStmts(st.Body.List)
	case *ast.SwitchStmt:
		n := 1
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				n += 1 + countStmts(cc.Body)
			}
		}
		return n
	case *ast.TypeSwitchStmt:
		n := 1
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				n += 1 + countStmts(cc.Body)
			}
		}
		return n
	case *ast.SelectStmt:
		n := 1
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				n += 1 + countStmts(cc.Body)
			}
		}
		return n
	case *ast.LabeledStmt:
		return countStmt(st.Stmt)
	case *ast.DeclStmt, *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt,
		*ast.BranchStmt, *ast.IncDecStmt, *ast.GoStmt, *ast.DeferStmt, *ast.SendStmt:
		return 1
	case *ast.EmptyStmt:
		return 0
	default:
		return 1
	}
}
