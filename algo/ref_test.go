package algo

// Sequential reference implementations used to validate the FLASH
// algorithms. These are deliberately simple (textbook) versions.

import (
	"sort"

	"flash/graph"
)

func refBFS(g *graph.Graph, root graph.VID) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	q := []graph.VID{root}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
		}
	}
	return dist
}

// refComponents returns a canonical component id (min member) per vertex.
func refComponents(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	g.Edges(func(u, v graph.VID, _ float32) bool {
		ru, rv := find(int(u)), find(int(v))
		if ru != rv {
			parent[ru] = rv
		}
		return true
	})
	minOf := make(map[int]uint32)
	for v := 0; v < n; v++ {
		r := find(v)
		if m, ok := minOf[r]; !ok || uint32(v) < m {
			minOf[r] = uint32(v)
		}
	}
	out := make([]uint32, n)
	for v := 0; v < n; v++ {
		out[v] = minOf[find(v)]
	}
	return out
}

// samePartition checks that two labelings induce the same partition.
func samePartition[A, B comparable](a []A, b []B) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[A]B)
	rev := make(map[B]A)
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := rev[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// refBC is sequential Brandes from one source on an unweighted graph.
func refBC(g *graph.Graph, root graph.VID) []float64 {
	n := g.NumVertices()
	delta := make([]float64, n)
	sigma := make([]float64, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma[root] = 1
	dist[root] = 0
	var order []graph.VID
	q := []graph.VID{root}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		order = append(order, u)
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, v := range g.OutNeighbors(w) {
			if dist[v] == dist[w]+1 {
				delta[w] += sigma[w] / sigma[v] * (1 + delta[v])
			}
		}
	}
	return delta
}

// refCore is sequential peeling k-core decomposition.
func refCore(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VID(v))
	}
	core := make([]int32, n)
	removed := make([]bool, n)
	type vd struct{ v, d int }
	// Classic peeling: remove a minimum-degree vertex; its core number is
	// the running maximum of the minimum degrees seen so far.
	maxSeen := 0
	for round := 0; round < n; round++ {
		best := vd{-1, 1 << 30}
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < best.d {
				best = vd{v, deg[v]}
			}
		}
		if best.d > maxSeen {
			maxSeen = best.d
		}
		core[best.v] = int32(maxSeen)
		removed[best.v] = true
		for _, u := range g.OutNeighbors(graph.VID(best.v)) {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	return core
}

// refTC counts triangles by per-edge sorted intersection.
func refTC(g *graph.Graph) int64 {
	n := g.NumVertices()
	adj := make([][]uint32, n)
	for v := 0; v < n; v++ {
		nb := g.OutNeighbors(graph.VID(v))
		s := make([]uint32, len(nb))
		for i, x := range nb {
			s[i] = uint32(x)
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		adj[v] = s
	}
	var total int64
	g.Edges(func(u, v graph.VID, _ float32) bool {
		if u < v {
			total += intersectCount(adj[u], adj[v])
		}
		return true
	})
	return total / 3 // each triangle counted at its 3 edges
}

// refRC counts 4-cycles by brute force over vertex quadruples' diagonals.
func refRC(g *graph.Graph) int64 {
	n := g.NumVertices()
	var total int64
	// For each unordered pair (a,b), count common neighbors t; rectangles
	// with diagonal (a,b) = C(t,2). Every rectangle has exactly 2 diagonals.
	for a := 0; a < n; a++ {
		na := g.OutNeighbors(graph.VID(a))
		set := make(map[graph.VID]bool, len(na))
		for _, x := range na {
			set[x] = true
		}
		for b := a + 1; b < n; b++ {
			var t int64
			for _, x := range g.OutNeighbors(graph.VID(b)) {
				if set[x] {
					t++
				}
			}
			total += t * (t - 1) / 2
		}
	}
	return total / 2
}

// refCL counts k-cliques by recursive brute force.
func refCL(g *graph.Graph, k int) int64 {
	n := g.NumVertices()
	var count func(start int, chosen []graph.VID) int64
	count = func(start int, chosen []graph.VID) int64 {
		if len(chosen) == k {
			return 1
		}
		var total int64
		for v := start; v < n; v++ {
			ok := true
			for _, c := range chosen {
				if !g.HasEdge(c, graph.VID(v)) {
					ok = false
					break
				}
			}
			if ok {
				total += count(v+1, append(chosen, graph.VID(v)))
			}
		}
		return total
	}
	return count(0, nil)
}

// refSCC labels strongly connected components with iterative Tarjan.
func refSCC(g *graph.Graph) []int32 {
	n := g.NumVertices()
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack, callStack []int32
	var next int32
	var nComp int32
	iter := make([]int, n)
	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		callStack = append(callStack, int32(s))
		for len(callStack) > 0 {
			v := callStack[len(callStack)-1]
			if index[v] == -1 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
				iter[v] = 0
			}
			advanced := false
			nbrs := g.OutNeighbors(graph.VID(v))
			for iter[v] < len(nbrs) {
				w := int32(nbrs[iter[v]])
				iter[v]++
				if index[w] == -1 {
					callStack = append(callStack, w)
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1]
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// refBCCCount counts biconnected components (Hopcroft–Tarjan, recursive).
func refBCCCount(g *graph.Graph) int {
	n := g.NumVertices()
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	count := 0
	var edgeStack [][2]graph.VID
	var dfs func(u, parent graph.VID)
	dfs = func(u, parent graph.VID) {
		disc[u] = timer
		low[u] = timer
		timer++
		for _, v := range g.OutNeighbors(u) {
			if v == parent {
				parent = graph.NoVertex // skip the tree edge once (parallel-safe)
				continue
			}
			if disc[v] == -1 {
				edgeStack = append(edgeStack, [2]graph.VID{u, v})
				dfs(v, u)
				if low[v] < low[u] {
					low[u] = low[v]
				}
				if low[v] >= disc[u] {
					// pop one biconnected component
					count++
					for {
						e := edgeStack[len(edgeStack)-1]
						edgeStack = edgeStack[:len(edgeStack)-1]
						if e[0] == u && e[1] == v {
							break
						}
					}
				}
			} else if disc[v] < disc[u] {
				edgeStack = append(edgeStack, [2]graph.VID{u, v})
				if disc[v] < low[u] {
					low[u] = disc[v]
				}
			}
		}
	}
	for s := 0; s < n; s++ {
		if disc[s] == -1 {
			dfs(graph.VID(s), graph.NoVertex)
		}
	}
	return count
}
