package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"flash/graph"
	"flash/internal/comm"
)

// clusterFleet runs one engine per worker over a real loopback cluster mesh,
// each in its own goroutine (standing in for a separate OS process), and
// returns each process's driver result. cfg is cloned per process with
// Transport and Cluster filled in.
func clusterFleet(t *testing.T, g *graph.Graph, m int, epoch uint32, cfg Config,
	stores []*WorkerStore, resumeSeq uint64, driver func(e *Engine[bfsProps]) []int32) [][]int32 {
	t.Helper()
	eps := make([]*comm.TCP, m)
	addrs := make([]string, m)
	for i := 0; i < m; i++ {
		ep, err := comm.ListenTCPCluster(comm.ClusterConfig{Workers: m, Self: i, Listen: "127.0.0.1:0", Epoch: epoch})
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	results := make([][]int32, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := eps[i].ConnectPeers(addrs, 10*time.Second); err != nil {
				errs[i] = err
				return
			}
			pcfg := cfg
			pcfg.Workers = m
			pcfg.Transport = eps[i]
			pcfg.Collector = nil
			spec := &ClusterSpec{Resident: i, ResumeSeq: resumeSeq}
			if stores != nil {
				spec.Store = stores[i]
			}
			pcfg.Cluster = spec
			e, err := NewEngine[bfsProps](g, pcfg)
			if err != nil {
				eps[i].Close()
				errs[i] = err
				return
			}
			defer e.Close()
			_, err = e.Run(func() error {
				results[i] = driver(e)
				return nil
			})
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	return results
}

// TestClusterBFSMatchesInProcess runs BFS as a three-process SPMD fleet over
// a real TCP mesh and checks every process extracts the identical, correct
// distance array (the replicated-driver + allgather invariants).
func TestClusterBFSMatchesInProcess(t *testing.T) {
	g := graph.GenErdosRenyi(150, 700, 3)
	want := seqBFS(g, 0)
	for _, mode := range []Mode{Push, Pull, Auto} {
		results := clusterFleet(t, g, 3, 1, Config{}, nil, 0, func(e *Engine[bfsProps]) []int32 {
			return runBFS(e, 0, mode)
		})
		for p, got := range results {
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("mode=%v process %d: dist[%d]=%d want %d", mode, p, v, got[v], want[v])
				}
			}
		}
	}
}

// TestClusterFoldIsReplicated checks a driver-side Fold mid-run (the pattern
// PageRank's convergence test uses) computes the identical value in every
// process: the allgather applies values in ascending vertex order regardless
// of placement.
func TestClusterFoldIsReplicated(t *testing.T) {
	g := graph.GenRMAT(128, 512, 4)
	results := clusterFleet(t, g, 2, 1, Config{UseHashPlacement: true}, nil, 0, func(e *Engine[bfsProps]) []int32 {
		dists := runBFS(e, 0, Auto)
		sum := Fold(e, int32(0), func(acc int32, _ graph.VID, val *bfsProps) int32 {
			if val.Dis < inf {
				acc += val.Dis
			}
			return acc
		})
		return append(dists, sum)
	})
	if got0, got1 := results[0], results[1]; fmt.Sprint(got0) != fmt.Sprint(got1) {
		t.Fatalf("processes diverged:\n p0=%v\n p1=%v", got0, got1)
	}
	want := seqBFS(g, 0)
	for v := range want {
		if results[0][v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, results[0][v], want[v])
		}
	}
}

// TestClusterCheckpointResume exercises the durable cycle: a fleet runs BFS
// with checkpointing, is torn down, and a second fleet (fresh transports,
// bumped epoch — as after a coordinator restart-all) resumes from an earlier
// checkpoint, fast-forwards through the log, live-executes the tail, and
// produces the identical result.
func TestClusterCheckpointResume(t *testing.T) {
	g := graph.GenErdosRenyi(120, 600, 5)
	want := seqBFS(g, 0)
	dir := t.TempDir()
	const m = 2
	openStores := func() []*WorkerStore {
		stores := make([]*WorkerStore, m)
		for i := range stores {
			s, err := OpenWorkerStore(dir, i)
			if err != nil {
				t.Fatal(err)
			}
			stores[i] = s
			t.Cleanup(func() { s.Close() })
		}
		return stores
	}
	cfg := Config{CheckpointEvery: 2}

	stores := openStores()
	first := clusterFleet(t, g, m, 1, cfg, stores, 0, func(e *Engine[bfsProps]) []int32 {
		return runBFS(e, 0, Auto)
	})
	for v := range want {
		if first[0][v] != want[v] {
			t.Fatalf("first run: dist[%d]=%d want %d", v, first[0][v], want[v])
		}
	}
	latest := stores[0].LatestSeq()
	for i, s := range stores {
		if ls := s.LatestSeq(); ls != latest {
			t.Fatalf("worker %d latest seq %d, worker 0 has %d (cadence must be aligned)", i, ls, latest)
		}
	}
	if latest < 2 {
		t.Fatalf("latest checkpoint seq %d, want >= 2 (initial + at least one periodic)", latest)
	}

	// Resume from the previous image: part replay, part live execution.
	stores2 := openStores()
	second := clusterFleet(t, g, m, 2, cfg, stores2, latest-1, func(e *Engine[bfsProps]) []int32 {
		return runBFS(e, 0, Auto)
	})
	for p := range second {
		for v := range want {
			if second[p][v] != first[p][v] {
				t.Fatalf("resumed run process %d: dist[%d]=%d want %d", p, v, second[p][v], first[p][v])
			}
		}
	}
}

// TestClusterConfigRejections pins the validation surface: cluster mode
// refuses the features that assume all worker state is local.
func TestClusterConfigRejections(t *testing.T) {
	g := graph.GenPath(8)
	mem := comm.NewMem(2)
	defer mem.Close()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no transport", Config{Workers: 2, Cluster: &ClusterSpec{Resident: 0}}},
		{"resident range", Config{Workers: 2, Transport: mem, Cluster: &ClusterSpec{Resident: 2}}},
		{"resume without store", Config{Workers: 2, Transport: mem, Cluster: &ClusterSpec{Resident: 0, ResumeSeq: 3}}},
		{"fault plan", Config{Workers: 2, Transport: mem, FaultPlan: &comm.FaultPlan{}, Cluster: &ClusterSpec{Resident: 0}}},
		{"resize policy", Config{Workers: 2, Transport: mem, ResizePolicy: func(StepInfo) int { return 2 }, Cluster: &ClusterSpec{Resident: 0}}},
	}
	for _, tc := range cases {
		if _, err := NewEngine[bfsProps](g, tc.cfg); err == nil {
			t.Errorf("%s: config accepted, want error", tc.name)
		}
	}
}

// TestWorkerStoreLog pins the log format: append, replay-with-truncate, and
// the corrupt-tail path.
func TestWorkerStoreLog(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWorkerStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.appendRecord(logKindStep, []byte{byte(i), 0xAA}); err != nil {
			t.Fatal(err)
		}
	}
	if s.records() != 5 {
		t.Fatalf("records() = %d, want 5", s.records())
	}
	// Reopen and replay a prefix: the tail must be truncated.
	s.Close()
	s, err = OpenWorkerStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s.replay(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].payload[0] != 2 {
		t.Fatalf("replay(3) = %v", recs)
	}
	if err := s.appendRecord(logKindGather, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s, err = OpenWorkerStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err = s.replay(4)
	if err != nil {
		t.Fatal(err)
	}
	if recs[3].kind != logKindGather || string(recs[3].payload) != "tail" {
		t.Fatalf("replayed tail record = %+v", recs[3])
	}
	// Asking for more records than the log holds is an error, not a hang.
	s.Close()
	s, err = OpenWorkerStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.replay(9); err == nil {
		t.Fatal("replay past end succeeded")
	}
}
