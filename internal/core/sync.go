package core

import (
	"math/bits"
	"time"

	"flash/graph"
	"flash/internal/bitset"
	"flash/internal/comm"
	"flash/metrics"
)

// syncScope selects how far a master update propagates.
type syncScope int

const (
	// scopeNone skips synchronization entirely (non-critical updates).
	scopeNone syncScope = iota
	// scopeNecessary sends to the precomputed mirror-holder workers only.
	scopeNecessary
	// scopeBroadcast sends to every other worker (virtual edge sets /
	// FullMirrors / ablation).
	scopeBroadcast
)

// scopeFor picks the sync scope for a step over edge set physicality.
func (e *Engine[V]) scopeFor(physical bool, noSync bool) syncScope {
	switch {
	case noSync:
		return scopeNone
	case e.cfg.FullMirrors, e.cfg.DisableNecessaryMirrors, !physical:
		return scopeBroadcast
	default:
		return scopeNecessary
	}
}

// appendKV encodes (gid, *val) into the KV frame for `to`, flushing eagerly
// when BatchBytes is exceeded so transfer overlaps remaining work. Callers
// must append in ascending gid order per destination — the frame's vid
// deltas then stay small and the message bytes are deterministic.
//
//flash:hotpath
//flash:deterministic
//flash:phase(ship,sync)
func (w *worker[V]) appendKV(to int, gid graph.VID, val *V) error {
	kw := &w.outKV[to]
	kw.Append(uint32(gid), val)
	if bb := w.eng.cfg.BatchBytes; bb > 0 && kw.Len() >= bb {
		return w.send(to, kw.Take())
	}
	return nil
}

// flushAll sends every non-empty pending KV frame.
//
//flash:hotpath
//flash:deterministic
//flash:phase(ship,sync)
func (w *worker[V]) flushAll() error {
	for to := range w.outKV {
		if w.outKV[to].Len() > 0 {
			if err := w.send(to, w.outKV[to].Take()); err != nil {
				return err
			}
		}
	}
	return nil
}

// drainKV completes the current exchange round, decoding (gid, value) pairs
// and handing them to apply. Wall time waiting on peers is recorded as
// communication; decode time as serialization. A truncated or corrupt frame
// is a superstep failure, not a panic: the remaining frames are still
// drained to keep the round consistent, and the first decode error is
// returned alongside transport failures (stall, abort).
//
//flash:hotpath
//flash:phase(ship,sync)
func (w *worker[V]) drainKV(apply func(gid graph.VID, val *V)) error {
	var decode time.Duration
	var decodeErr error
	codec := w.eng.codec
	start := time.Now()
	drainErr := w.eng.tr.Drain(w.id, func(_ int, data []byte) {
		dstart := time.Now()
		if err := comm.DecodeKV(codec, data, func(vid uint32, val *V) {
			apply(graph.VID(vid), val)
		}); err != nil && decodeErr == nil {
			decodeErr = err
		}
		decode += time.Since(dstart)
	})
	w.met.Add(metrics.Communication, time.Since(start)-decode)
	w.met.Add(metrics.Serialization, decode)
	if drainErr != nil {
		return drainErr
	}
	return decodeErr
}

// syncMasters pushes the new values of the updated local masters to the
// workers holding their mirrors (one exchange round), and applies incoming
// values from other masters to local mirrors. Must be called by every worker
// of the engine with the same scope, even when a worker updated nothing.
//
// With Threads > 1 the encode fans out over per-(thread, destination) frames
// along 64-aligned chunks of the local index space and the frames are sent
// in fixed (destination, thread) order after the scan, so the per-receiver
// byte stream stays deterministic; BatchBytes overlap applies only to the
// sequential path.
//
//flash:hotpath
//flash:deterministic
//flash:phase(sync)
func (w *worker[V]) syncMasters(updated *bitset.Bitset, scope syncScope) error {
	e := w.eng
	if scope != scopeNone {
		var err error
		if e.cfg.Threads > 1 {
			err = w.encodeSyncParallel(updated, scope)
		} else {
			err = w.encodeSyncSeq(updated, scope)
		}
		if err != nil {
			return err
		}
	}
	if err := w.flushAll(); err != nil {
		return err
	}
	if err := e.tr.EndRound(w.id); err != nil {
		return err
	}
	// Broadcast scopes can deliver masters this worker does not mirror;
	// non-resident updates are dropped (the old full-size layout stored
	// them in entries nothing ever read).
	var samples []debugSample
	if debugChecks {
		samples = make([]debugSample, 0, debugSampleCap)
	}
	err := w.drainKV(func(gid graph.VID, val *V) {
		if slot, ok := w.st.Lookup(gid); ok {
			w.cur[slot] = *val
			if debugChecks && len(samples) < debugSampleCap {
				samples = append(samples, debugSample{gid: gid, slot: slot})
			}
		}
	})
	if err != nil {
		return err
	}
	if debugChecks {
		w.debugCheckMirrorSamples(samples)
	}
	return nil
}

// debugSample is one (gid, mirror slot) pair recorded during the sync drain
// for the flashdebug coherence spot check; see debugCheckMirrorSamples.
type debugSample struct {
	gid  graph.VID
	slot int
}

// debugSampleCap bounds how many just-synced mirrors each worker re-verifies
// per round under flashdebug.
const debugSampleCap = 64

// encodeSyncSeq is the single-threaded encode: one ascending pass over the
// updated masters, streaming into the per-destination frames (with eager
// BatchBytes flushing).
//
//flash:hotpath
//flash:deterministic
//flash:phase(sync)
func (w *worker[V]) encodeSyncSeq(updated *bitset.Bitset, scope syncScope) error {
	e := w.eng
	sstart := time.Now()
	msgs := 0
	var sendErr error
	updated.Range(func(l int) bool {
		gid := e.place.GlobalID(w.id, l)
		if scope == scopeBroadcast {
			for to := 0; to < e.cfg.Workers; to++ {
				if to != w.id {
					if sendErr = w.appendKV(to, gid, &w.cur[l]); sendErr != nil {
						return false
					}
					msgs++
				}
			}
		} else {
			for _, to := range w.part.MirrorWorkers[l] {
				if sendErr = w.appendKV(to, gid, &w.cur[l]); sendErr != nil {
					return false
				}
				msgs++
			}
		}
		return true
	})
	w.met.Add(metrics.Serialization, time.Since(sstart))
	w.met.AddTraffic(uint64(msgs), 0)
	return sendErr
}

// encodeSyncParallel shards the encode over threads: each thread walks its
// 64-aligned chunk of the local index space in ascending order into private
// per-destination frames, then the frames ship in (destination, thread)
// order. Encoding into private frames cannot fail; send errors surface from
// the sequential ship loop.
//
//flash:hotpath
//flash:deterministic
//flash:phase(sync)
func (w *worker[V]) encodeSyncParallel(updated *bitset.Bitset, scope syncScope) error {
	e := w.eng
	sstart := time.Now()
	words := updated.Words()
	w.parforT(updated.Cap(), func(t, lo, hi int) {
		kws := w.encKV[t]
		msgs := 0
		for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
			word := words[wi]
			base := wi << 6
			for word != 0 {
				l := base + bits.TrailingZeros64(word)
				word &= word - 1
				gid := e.place.GlobalID(w.id, l)
				if scope == scopeBroadcast {
					for to := 0; to < e.cfg.Workers; to++ {
						if to != w.id {
							kws[to].Append(uint32(gid), &w.cur[l])
							msgs++
						}
					}
				} else {
					for _, to := range w.part.MirrorWorkers[l] {
						kws[to].Append(uint32(gid), &w.cur[l])
						msgs++
					}
				}
			}
		}
		w.encMsgs[t] = msgs
	})
	msgs := 0
	var sendErr error
	for to := 0; to < e.cfg.Workers && sendErr == nil; to++ {
		for t := range w.encKV {
			if w.encKV[t][to].Len() > 0 {
				if sendErr = w.send(to, w.encKV[t][to].Take()); sendErr != nil {
					break
				}
			}
		}
	}
	for t := range w.encMsgs {
		msgs += w.encMsgs[t]
	}
	w.met.Add(metrics.Serialization, time.Since(sstart))
	w.met.AddTraffic(uint64(msgs), 0)
	if sendErr != nil {
		// Unshipped frames go back to the pool so a checkpoint replay
		// starts clean.
		w.discardEnc()
	}
	return sendErr
}

// discardEnc drops all pending encode frames back into the pool.
func (w *worker[V]) discardEnc() {
	for to := range w.outKV {
		w.outKV[to].Discard()
	}
	for t := range w.encKV {
		for to := range w.encKV[t] {
			w.encKV[t][to].Discard()
		}
	}
}
