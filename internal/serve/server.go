package serve

import (
	"sync"
)

// ServerConfig configures a flashd server instance.
type ServerConfig struct {
	Scheduler SchedulerConfig
	// Preload is loaded into the catalog before the server accepts requests;
	// a bad spec fails NewServer.
	Preload []GraphSpec
}

// Server is the flashd service core, transport-agnostic: a graph catalog, a
// bounded job scheduler, and service metrics. The HTTP layer (http.go) is a
// thin translation onto it, so tests can drive the same surface in-process.
type Server struct {
	cat   *Catalog
	sched *Scheduler
	met   *Metrics

	mu     sync.Mutex
	closed bool
}

// NewServer builds a server, loading any preload graphs.
func NewServer(cfg ServerConfig) (*Server, error) {
	cat := NewCatalog()
	for _, spec := range cfg.Preload {
		if _, err := cat.Load(spec); err != nil {
			return nil, err
		}
	}
	met := NewMetrics()
	return &Server{
		cat:   cat,
		sched: NewScheduler(cfg.Scheduler, cat, met),
		met:   met,
	}, nil
}

// Catalog exposes the graph catalog.
func (s *Server) Catalog() *Catalog { return s.cat }

// Scheduler exposes the job scheduler.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Submit parses and admits a raw job request body — the one entry point both
// transports (in-process and HTTP) share, so the golden equivalence matrix
// exercises identical code either way.
func (s *Server) Submit(body []byte) (*Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	s.mu.Unlock()
	req, err := ParseJobRequest(body)
	if err != nil {
		s.met.reject(err)
		return nil, err
	}
	return s.sched.Submit(req)
}

// SubmitRequest admits an already-parsed request.
func (s *Server) SubmitRequest(req *JobRequest) (*Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	s.mu.Unlock()
	return s.sched.Submit(req)
}

// Metrics returns the service metrics snapshot with live load and catalog
// accounting filled in.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.met.Snapshot()
	snap.Running, snap.Queued = s.sched.Depth()
	infos := s.cat.List()
	snap.Graphs = len(infos)
	snap.GraphBytes, snap.SharedPartBytes = s.cat.Bytes()
	return snap
}

// Close stops admission and drains in-flight jobs. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.sched.Close()
}
