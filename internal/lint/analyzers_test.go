package lint_test

import (
	"path/filepath"
	"testing"

	"flash/internal/lint"
	"flash/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestHotAlloc(t *testing.T)   { linttest.Run(t, fixture("hotalloc"), lint.HotAlloc) }
func TestPoolEscape(t *testing.T) { linttest.Run(t, fixture("poolescape"), lint.PoolEscape) }
func TestCommErr(t *testing.T)    { linttest.Run(t, fixture("commerr"), lint.CommErr) }
func TestDetOrder(t *testing.T)   { linttest.Run(t, fixture("detorder"), lint.DetOrder) }
func TestSlotIndex(t *testing.T)  { linttest.Run(t, fixture("slotindex"), lint.SlotIndex) }
func TestSharedMut(t *testing.T)  { linttest.Run(t, fixture("sharedmut"), lint.SharedMut) }
func TestBlockRes(t *testing.T)   { linttest.Run(t, fixture("blockres"), lint.BlockRes) }
func TestPhaseOrder(t *testing.T) { linttest.Run(t, fixture("phaseorder"), lint.PhaseOrder) }

// TestSelfCheck runs every analyzer over the whole module — _test.go files
// included, under the flashdebug build tag so the debug-only code is checked
// too — and audits every suppression marker for a written reason. The
// shipped runtime must be flashvet-clean; this is the same invocation CI's
// lint job performs via cmd/flashvet.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check shells out to go list; skipped in -short")
	}
	for _, cfg := range []lint.LoadConfig{
		{Tests: true},
		{Tests: true, Tags: "flashdebug"},
	} {
		pkgs, err := lint.LoadWith(cfg, "../..", "./...")
		if err != nil {
			t.Fatalf("loading module (tags %q): %v", cfg.Tags, err)
		}
		diags, err := lint.RunAnalyzers(pkgs, lint.All())
		if err != nil {
			t.Fatalf("running analyzers (tags %q): %v", cfg.Tags, err)
		}
		for _, d := range diags {
			t.Errorf("[tags %q] %s", cfg.Tags, d)
		}
		for _, d := range lint.AuditSuppressions(pkgs) {
			t.Errorf("[tags %q] %s", cfg.Tags, d)
		}
	}
}
