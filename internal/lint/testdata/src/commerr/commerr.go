// Fixture for the commerr analyzer: fault-surface errors (transport
// Send/EndRound/Drain, Engine.Run) must be checked or explicitly waived
// with //flash:ignore-err <reason>.
package commerr

type Transport struct{}

func (t *Transport) Send(from, to int, data []byte) error    { return nil }
func (t *Transport) EndRound(from int) error                 { return nil }
func (t *Transport) Drain(to int, h func(int, []byte)) error { return nil }

type Engine struct{}

func (e *Engine) Run(p func() error) (int, error) { return 0, nil }

func bad(tr *Transport, e *Engine) {
	tr.Send(0, 1, nil)   // want `Transport.Send error discarded`
	_ = tr.EndRound(0)   // want `Transport.EndRound error assigned to _`
	tr.Drain(0, nil)     // want `Transport.Drain error discarded`
	e.Run(nil)           // want `Engine.Run error discarded`
	go tr.Send(1, 0, nil) // want `Transport.Send error discarded by go statement`
	defer tr.EndRound(0)  // want `Transport.EndRound error discarded by defer`
}

func good(tr *Transport, e *Engine) error {
	if err := tr.Send(0, 1, nil); err != nil {
		return err
	}
	tr.EndRound(0) //flash:ignore-err round already aborted, EndRound error duplicates it
	//flash:ignore-err draining a closed transport cannot fail
	_ = tr.Drain(0, nil)
	_, err := e.Run(nil)
	return err
}

// NotATransport shares a method name but not the fault-surface shape: its
// Send returns nothing, so there is no error to drop.
type NotATransport struct{}

func (n *NotATransport) Send(x int) {}

// Sender is a differently-named type with an error-returning Send; commerr
// matches the runtime's transport type names only, so this stays silent.
type Sender struct{}

func (s *Sender) Send(from, to int, data []byte) error { return nil }

func others(n *NotATransport, s *Sender) {
	n.Send(1)         // no diagnostic: no error result
	s.Send(0, 1, nil) // no diagnostic: not a guarded receiver type
}
