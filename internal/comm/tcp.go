package comm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrameSize bounds the payload length accepted off the wire. A corrupt
// 4-byte length prefix must not drive frame allocation to 4 GiB (mirrors the
// codec's fuzz hardening); anything larger than this is treated as a corrupt
// connection.
const MaxFrameSize = 1 << 26 // 64 MiB

// Retry policy for transient write failures.
const (
	tcpMaxRetries  = 5
	tcpBackoffBase = time.Millisecond
	tcpBackoffCap  = 50 * time.Millisecond
)

// dialFunc matches net.Dial. Each transport carries its own dialer so tests
// can inject dial failures per instance without racing other transports.
type dialFunc func(network, addr string) (net.Conn, error)

// defaultDial is the production dialer.
var defaultDial dialFunc = net.Dial

// castagnoli is the CRC32-C table used for frame integrity (same polynomial
// iSCSI and ext4 use; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// TCP wire frame flags.
const (
	tcpFlagData      = 0 // data frame: payload follows
	tcpFlagEndRound  = 1 // end-of-round marker (no payload)
	tcpFlagHeartbeat = 2 // liveness control frame (no payload, no round)
)

// tcpHdrSize is the frame header length:
// round u32 | epoch u32 | flag u8 | length u32 | crc32c u32.
// The CRC covers the first 13 header bytes plus the payload, so a corrupted
// length, flag, round, epoch or body all surface as ErrCorrupt instead of a
// misparse.
const tcpHdrSize = 17

// Handshake frame ("hello"): the first bytes written on every new socket,
// identifying the dialer and its membership epoch before any data frame.
//
//	magic "FLSH" | version u8 | worker u32 | epoch u32 | crc32c u32
//
// The CRC covers the first 13 bytes. A peer whose hello fails to parse, names
// an out-of-range worker, or carries a stale epoch (a process from a previous
// incarnation of the cluster) is rejected with a *HandshakeError and its
// socket closed — it can never poison a live round.
const (
	helloMagic   = "FLSH"
	helloVersion = 2
	helloSize    = 17
)

// EncodeHello builds the handshake frame a dialer writes first on a new
// socket.
func EncodeHello(worker int, epoch uint32) []byte {
	b := make([]byte, helloSize)
	copy(b[0:4], helloMagic)
	b[4] = helloVersion
	binary.LittleEndian.PutUint32(b[5:9], uint32(worker))
	binary.LittleEndian.PutUint32(b[9:13], epoch)
	binary.LittleEndian.PutUint32(b[13:17], crc32.Checksum(b[:13], castagnoli))
	return b
}

// ParseHello validates a handshake frame and extracts the claimed worker id
// and epoch. Errors are *HandshakeError; the caller still owns range and
// epoch admission checks (ParseHello does not know the mesh size).
func ParseHello(b []byte) (worker int, epoch uint32, err error) {
	if len(b) != helloSize {
		return -1, 0, &HandshakeError{Worker: -1, Reason: fmt.Sprintf("short hello: %d bytes", len(b))}
	}
	if string(b[0:4]) != helloMagic {
		return -1, 0, &HandshakeError{Worker: -1, Reason: fmt.Sprintf("bad magic %q", b[0:4])}
	}
	if b[4] != helloVersion {
		return -1, 0, &HandshakeError{Worker: -1, Reason: fmt.Sprintf("unsupported handshake version %d", b[4])}
	}
	if got, want := crc32.Checksum(b[:13], castagnoli), binary.LittleEndian.Uint32(b[13:17]); got != want {
		return -1, 0, &HandshakeError{Worker: -1, Reason: "hello crc mismatch"}
	}
	w := binary.LittleEndian.Uint32(b[5:9])
	e := binary.LittleEndian.Uint32(b[9:13])
	if w > 1<<20 {
		return -1, 0, &HandshakeError{Worker: -1, Epoch: e, Reason: fmt.Sprintf("implausible worker id %d", w)}
	}
	return int(w), e, nil
}

// TCP is a socket transport: every worker pair is connected with a real TCP
// connection and frames are length-prefixed on the wire. In the default
// in-process mode it builds a full loopback mesh (the closest in-process
// analog of the paper's MPI runtime); in cluster mode (ListenTCPCluster) the
// transport is one endpoint of a cross-process mesh, owning only its resident
// worker's sockets.
//
// Wire format per frame: round uint32 | epoch uint32 | flag byte (0 data,
// 1 end-of-round, 2 heartbeat) | length uint32 | crc32c uint32 | payload.
// The sender id is implicit per connection (established by the hello
// handshake); the CRC32-C spans the first 13 header bytes and the payload.
//
// Robustness: transient write failures are retried with capped exponential
// backoff, and a dropped connection is redialed (the peer's accept loop
// stays alive for the lifetime of the transport, so either side can
// re-establish the pair). Frames buffered but not yet flushed when a
// connection dies may be lost — the engine's checkpoint recovery, not the
// transport, owns exactly-once semantics. Read-side violations (oversized
// length prefix, mid-frame truncation) poison the receiving worker's
// mailbox, so its next Drain reports the corrupt connection instead of
// deadlocking, and are also published on Err for diagnosis.
type TCP struct {
	m     int
	self  int  // resident worker in cluster mode; -1 = in-process full mesh
	hub   *Mem // mailboxes, stash and drain logic are shared with Mem
	conns [][]*tcpConn
	lns   []net.Listener

	// dial is this transport's dialer; swapped atomically by tests to
	// inject dial failures without racing concurrent reconnects.
	dial atomic.Pointer[dialFunc]

	// helloEpoch is stamped into outgoing hellos and required of incoming
	// ones. It tracks the hub's membership epoch: Reset and Resize advance
	// it, and a cluster endpoint pins it to the coordinator-assigned epoch,
	// so sockets from a previous incarnation are rejected at handshake.
	helloEpoch atomic.Uint32

	// meshPeers receives the ids of peers whose sockets were accepted during
	// cluster mesh formation (ConnectPeers is the consumer).
	meshPeers chan int

	reconnects atomic.Uint64
	errs       chan error
	setupDone  atomic.Bool
	closed     atomic.Bool

	// ioWG tracks the current mesh's accept loops, handshake goroutines and
	// read loops. Resize joins them all after closing the old sockets, so no
	// stale goroutine can touch the hub while it is being reconfigured for a
	// different worker count.
	ioWG sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

type tcpConn struct {
	mu   sync.Mutex
	c    net.Conn
	w    *bufio.Writer
	addr string // peer's listener address, for reconnects
}

func (tc *tcpConn) writeFrame(round, epoch uint32, flag byte, data []byte) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.c == nil {
		return ErrConnDropped
	}
	var hdr [tcpHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], round)
	binary.LittleEndian.PutUint32(hdr[4:8], epoch)
	hdr[8] = flag
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(data)))
	crc := crc32.Checksum(hdr[:13], castagnoli)
	crc = crc32.Update(crc, castagnoli, data)
	binary.LittleEndian.PutUint32(hdr[13:17], crc)
	if _, err := tc.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := tc.w.Write(data); err != nil {
		return err
	}
	if flag != tcpFlagData {
		return tc.w.Flush() // round boundaries and heartbeats always flush
	}
	return nil
}

// replace installs a new socket, closing the previous one.
func (tc *tcpConn) replace(c net.Conn) {
	tc.mu.Lock()
	if tc.c != nil {
		tc.c.Close()
	}
	tc.c = c
	tc.w = bufio.NewWriterSize(c, 1<<16)
	tc.mu.Unlock()
}

// drop closes the current socket without installing a replacement; the next
// write fails with ErrConnDropped and the retry path redials.
func (tc *tcpConn) drop() {
	tc.mu.Lock()
	if tc.c != nil {
		tc.c.Close()
		tc.c = nil
	}
	tc.mu.Unlock()
}

// dropIf drops the socket only if c is still the installed one. The read
// loop calls this on exit: once the receive side of a socket has died, the
// write side must fail fast too — the first write after a peer's FIN lands
// in the kernel buffer without an error, which would silently lose a round
// marker instead of triggering the redial path.
func (tc *tcpConn) dropIf(c net.Conn) {
	tc.mu.Lock()
	if tc.c == c {
		tc.c.Close()
		tc.c = nil
	}
	tc.mu.Unlock()
}

// NewTCP builds a full mesh of loopback connections among m workers. A
// failed dial fails fast: the listeners are closed so the accept loops
// cannot block setup, and the error is returned (regression: this used to
// deadlock in wg.Wait).
func NewTCP(m int) (*TCP, error) { return newTCP(m, defaultDial) }

// newTCP is NewTCP with an injectable dialer, so setup-failure tests can
// make the initial mesh dials fail.
func newTCP(m int, d dialFunc) (*TCP, error) {
	t := &TCP{m: m, self: -1, hub: NewMem(m), errs: make(chan error, 64)}
	t.dial.Store(&d)
	if err := t.setupMesh(); err != nil {
		t.Close()
		return nil, err
	}
	t.setupDone.Store(true)
	return t, nil
}

// dialPeer dials through the transport's injectable dialer.
func (t *TCP) dialPeer(addr string) (net.Conn, error) {
	return (*t.dial.Load())("tcp", addr)
}

// SetDial swaps the transport's dialer (test hook for injecting dial
// failures). Safe to call concurrently with reconnect attempts.
func (t *TCP) SetDial(d func(network, addr string) (net.Conn, error)) {
	df := dialFunc(d)
	t.dial.Store(&df)
}

// hello builds the handshake frame identifying worker me at the current
// epoch. Built at write time, not cached: Reset bumps the epoch mid-run and
// reconnects must carry the live value.
func (t *TCP) hello(me int) []byte {
	return EncodeHello(me, t.helloEpoch.Load())
}

// setupMesh listens, dials and installs the full t.m × t.m loopback mesh.
// Used at construction and after a membership resize; the caller flips
// setupDone once the mesh is live.
func (t *TCP) setupMesh() error {
	m := t.m
	t.helloEpoch.Store(t.hub.epoch.Load())
	t.conns = make([][]*tcpConn, m)
	for i := range t.conns {
		t.conns[i] = make([]*tcpConn, m)
	}
	t.lns = make([]net.Listener, m)
	for i := 0; i < m; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("comm: listen for worker %d: %w", i, err)
		}
		t.lns[i] = ln
	}
	// Pre-allocate the connection slots so accept and reconnect paths can
	// swap sockets in place.
	for me := 0; me < m; me++ {
		for peer := 0; peer < m; peer++ {
			if peer == me {
				continue
			}
			t.conns[me][peer] = &tcpConn{addr: t.lns[peer].Addr().String()}
		}
	}
	// Persistent accept loops: they serve both initial mesh setup and later
	// reconnects, and exit when their listener is closed.
	accepted := make(chan error, m*m)
	for i := 0; i < m; i++ {
		i := i
		t.ioWG.Add(1)
		go func() {
			defer t.ioWG.Done()
			t.acceptLoop(i, accepted)
		}()
	}
	// Worker j dials workers i < j; one socket serves the pair full-duplex.
	var dialErr error
dial:
	for j := 0; j < m; j++ {
		for i := 0; i < j; i++ {
			c, err := t.dialPeer(t.lns[i].Addr().String())
			if err != nil {
				dialErr = err
				break dial
			}
			if _, err := c.Write(t.hello(j)); err != nil {
				c.Close()
				dialErr = err
				break dial
			}
			tc := t.conns[j][i]
			tc.replace(c)
			t.startReadLoop(j, i, c)
		}
	}
	if dialErr != nil {
		return fmt.Errorf("comm: tcp mesh setup: %w", dialErr)
	}
	// Wait until every dialed socket has been accepted and installed.
	for k := 0; k < m*(m-1)/2; k++ {
		if err := <-accepted; err != nil {
			return fmt.Errorf("comm: tcp mesh setup: %w", err)
		}
	}
	return nil
}

// startReadLoop launches an ioWG-tracked read loop for the from←peer socket.
func (t *TCP) startReadLoop(me, peer int, c net.Conn) {
	t.ioWG.Add(1)
	go func() {
		defer t.ioWG.Done()
		t.readLoop(me, peer, c)
		if tc := t.conns[me][peer]; tc != nil {
			tc.dropIf(c)
		}
	}()
}

// acceptLoop accepts connections for worker me until the listener closes.
// During setup each install is reported on accepted (full-mesh mode) or
// meshPeers (cluster mode); afterwards installs are reconnects.
func (t *TCP) acceptLoop(me int, accepted chan<- error) {
	for {
		c, err := t.lns[me].Accept()
		if err != nil {
			if accepted != nil && !t.setupDone.Load() && !t.closed.Load() {
				select {
				case accepted <- err:
				default:
				}
			}
			return
		}
		t.ioWG.Add(1)
		go func() {
			defer t.ioWG.Done()
			t.handshake(me, c, accepted)
		}()
	}
}

// handshake validates an accepted socket's hello and installs it. A socket
// that fails validation is closed and reported; in cluster mode a hostile or
// stale peer never fails mesh formation (ConnectPeers keeps waiting for the
// genuine one), while the in-process full mesh — where only our own dials
// can arrive — fails setup fast.
func (t *TCP) handshake(me int, c net.Conn, accepted chan<- error) {
	var hello [helloSize]byte
	// Bound the hello wait: an accepted socket whose dialer died before
	// identifying itself must not park this goroutine forever (Resize joins
	// the mesh's goroutines before rebuilding).
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		c.Close()
		if accepted != nil && !t.setupDone.Load() {
			select {
			case accepted <- err:
			default:
			}
		}
		return
	}
	c.SetReadDeadline(time.Time{})
	peer, epoch, err := ParseHello(hello[:])
	if err == nil && (peer < 0 || peer >= t.m || peer == me) {
		err = &HandshakeError{Worker: peer, Epoch: epoch, Reason: fmt.Sprintf("worker id out of range (mesh of %d, endpoint %d)", t.m, me)}
	}
	if err == nil {
		if want := t.helloEpoch.Load(); epoch != want {
			err = &HandshakeError{Worker: peer, Epoch: epoch, Reason: fmt.Sprintf("stale epoch %d (current %d)", epoch, want)}
		}
	}
	if err != nil {
		c.Close()
		t.report(fmt.Errorf("comm: worker %d rejected connection: %w", me, err))
		return
	}
	t.conns[me][peer].replace(c)
	t.startReadLoop(me, peer, c)
	if !t.setupDone.Load() {
		if accepted != nil {
			select {
			case accepted <- nil:
			default:
			}
		}
		if t.meshPeers != nil {
			select {
			case t.meshPeers <- peer:
			default:
			}
		}
	}
}

// report publishes a diagnostic on the Err channel without blocking.
func (t *TCP) report(err error) {
	select {
	case t.errs <- err:
	default:
	}
}

// Err exposes connection-level diagnostics (truncation, oversized frames,
// bogus peers). Best effort: the channel is buffered and never blocks the
// data path.
func (t *TCP) Err() <-chan error { return t.errs }

func (t *TCP) readLoop(me, peer int, c net.Conn) {
	r := bufio.NewReaderSize(c, 1<<16)
	var hdr [tcpHdrSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			t.readClosed(me, peer, err, false)
			return
		}
		round := binary.LittleEndian.Uint32(hdr[0:4])
		epoch := binary.LittleEndian.Uint32(hdr[4:8])
		flag := hdr[8]
		n := binary.LittleEndian.Uint32(hdr[9:13])
		wantCRC := binary.LittleEndian.Uint32(hdr[13:17])
		if n > MaxFrameSize {
			err := &WorkerError{Worker: peer, Err: fmt.Errorf("%w: %d bytes from worker %d", ErrFrameTooLarge, n, peer)}
			t.report(err)
			t.hub.boxes[me].poison(err)
			c.Close()
			return
		}
		var data []byte
		if n > 0 {
			data = GetBufN(int(n)) // recycled by hub.Drain after delivery
			if _, err := io.ReadFull(r, data); err != nil {
				t.readClosed(me, peer, err, true)
				return
			}
		}
		crc := crc32.Checksum(hdr[:13], castagnoli)
		crc = crc32.Update(crc, castagnoli, data)
		if crc != wantCRC {
			// Integrity failure: fail the receiver's round with a typed
			// ErrCorrupt (checkpoint recovery replays it) and drop the
			// connection — the sender's next write fails transiently and the
			// retry path redials a clean socket.
			PutBuf(data)
			err := &WorkerError{Worker: peer, Err: fmt.Errorf("%w: crc mismatch on frame from worker %d (round %d)", ErrCorrupt, peer, round)}
			t.report(err)
			t.hub.boxes[me].poison(err)
			c.Close()
			return
		}
		if flag == tcpFlagHeartbeat {
			t.hub.markAlive(peer)
			continue
		}
		if flag == tcpFlagEndRound {
			data = nil
		} else if data == nil {
			data = []byte{}
		}
		t.hub.boxes[me].push(frame{from: peer, round: round, epoch: epoch, data: data})
	}
}

// readClosed classifies the end of a read loop: a shutdown or a replaced
// socket is silent; a clean close mid-run is reported for diagnosis (the
// peer may redial); a mid-frame truncation additionally poisons the
// receiver's mailbox so the torn connection is diagnosable at Drain instead
// of a silent stall.
func (t *TCP) readClosed(me, peer int, err error, midFrame bool) {
	if t.closed.Load() || errors.Is(err, net.ErrClosed) {
		return
	}
	if midFrame || errors.Is(err, io.ErrUnexpectedEOF) {
		werr := &WorkerError{Worker: peer, Err: fmt.Errorf("%w (from worker %d: %v)", ErrTruncated, peer, err)}
		t.report(werr)
		t.hub.boxes[me].poison(werr)
		return
	}
	t.report(&WorkerError{Worker: peer, Err: fmt.Errorf("comm: connection from worker %d closed between frames: %v", peer, err)})
}

func (t *TCP) Workers() int { return t.m }

func (t *TCP) Send(from, to int, data []byte) error {
	t.hub.frames.Add(1)
	t.hub.bytes.Add(uint64(len(data)))
	round := t.hub.rounds[from].Load()
	if from == to {
		if err := t.hub.aborted(); err != nil {
			return err
		}
		if data == nil {
			data = []byte{}
		}
		t.hub.boxes[to].push(frame{from: from, round: round, epoch: t.hub.epoch.Load(), data: data})
		return nil
	}
	return t.writeWithRetry(from, to, round, tcpFlagData, data)
}

func (t *TCP) EndRound(from int) error {
	r := t.hub.rounds[from].Load()
	for to := 0; to < t.m; to++ {
		if to == from {
			if err := t.hub.aborted(); err != nil {
				return err
			}
			t.hub.boxes[to].push(frame{from: from, round: r, epoch: t.hub.epoch.Load(), data: nil})
			continue
		}
		if err := t.writeWithRetry(from, to, r, tcpFlagEndRound, nil); err != nil {
			return err
		}
	}
	t.hub.rounds[from].Store(r + 1)
	return nil
}

// Heartbeat ships a flag-2 control frame to every peer (flushed immediately,
// bypassing round batching); each peer's read loop stamps the shared liveness
// clock. Write failures on individual connections are swallowed: a heartbeat
// is best-effort by design and the next tick retries, while a genuinely dead
// sender is stopped above this layer (Faulty returns KillError before the
// wire is reached).
func (t *TCP) Heartbeat(from int) error {
	if err := t.hub.aborted(); err != nil {
		return err
	}
	epoch := t.hub.epoch.Load()
	for to := 0; to < t.m; to++ {
		if to == from {
			continue
		}
		if tc := t.conns[from][to]; tc != nil {
			_ = tc.writeFrame(0, epoch, tcpFlagHeartbeat, nil)
		}
	}
	return nil
}

// CloseEndpoint tears down worker w's receive endpoint (hard-kill support).
func (t *TCP) CloseEndpoint(w int, err error) { t.hub.CloseEndpoint(w, err) }

// writeWithRetry writes one frame, retrying transient failures with capped
// exponential backoff and redialing the peer between attempts.
func (t *TCP) writeWithRetry(from, to int, round uint32, flag byte, data []byte) error {
	if err := t.hub.aborted(); err != nil {
		return err
	}
	tc := t.conns[from][to]
	backoff := tcpBackoffBase
	var err error
	for attempt := 0; attempt <= tcpMaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > tcpBackoffCap {
				backoff = tcpBackoffCap
			}
			if rerr := t.reconnect(from, to); rerr != nil {
				err = rerr
				continue
			}
			t.reconnects.Add(1)
		}
		err = tc.writeFrame(round, t.hub.epoch.Load(), flag, data)
		if err == nil {
			return nil
		}
		if t.closed.Load() {
			break
		}
	}
	return &WorkerError{Worker: from, Err: fmt.Errorf("tcp send %d->%d round %d: %w", from, to, round, err)}
}

// reconnect redials to's listener and installs the fresh socket for the
// from→to direction; to's accept loop installs the same socket for to→from.
func (t *TCP) reconnect(from, to int) error {
	tc := t.conns[from][to]
	c, err := t.dialPeer(tc.addr)
	if err != nil {
		return err
	}
	if _, err := c.Write(t.hello(from)); err != nil {
		c.Close()
		return err
	}
	tc.replace(c)
	t.startReadLoop(from, to, c)
	return nil
}

func (t *TCP) Drain(to int, h func(from int, data []byte)) error { return t.hub.Drain(to, h) }

func (t *TCP) Abort(err error) { t.hub.Abort(err) }

// Reset restores the shared hub state (queues, stashes, rounds, abort) and
// advances the handshake epoch alongside the hub's frame epoch, so sockets
// redialed after the reset identify under the new incarnation. It is only
// safe when no frames are in flight on the wire, which holds after a
// superstep has fully aborted: every worker has stopped sending and the
// buffered writers were flushed or their sockets replaced.
func (t *TCP) Reset() {
	t.hub.Reset()
	t.helloEpoch.Store(t.hub.epoch.Load())
}

// Resize tears the current mesh down and rebuilds a full loopback mesh for n
// workers under a fresh membership epoch: joining workers get listeners and
// sockets, departing workers' endpoints are retired with their connections.
// The caller must have quiesced every worker (no send, drain or heartbeat in
// flight). Cumulative stats survive the rebuild.
func (t *TCP) Resize(n int) error {
	if t.closed.Load() {
		return net.ErrClosed
	}
	if t.self >= 0 {
		return fmt.Errorf("comm: resize unsupported on a cluster endpoint")
	}
	if n < 1 {
		return fmt.Errorf("comm: resize to %d workers", n)
	}
	t.setupDone.Store(false)
	t.teardownMesh()
	if err := t.hub.Resize(n); err != nil {
		return err
	}
	t.m = n
	if err := t.setupMesh(); err != nil {
		// Leave the half-built mesh for Close to reap; the transport is
		// unusable until a successful Resize.
		return err
	}
	t.setupDone.Store(true)
	return nil
}

// teardownMesh closes every listener and socket of the current mesh and
// joins its accept, handshake and read goroutines, so nothing stale can
// touch the hub while it is resized.
func (t *TCP) teardownMesh() {
	for _, ln := range t.lns {
		if ln != nil {
			ln.Close()
		}
	}
	for _, row := range t.conns {
		for _, tc := range row {
			if tc == nil {
				continue
			}
			tc.drop()
		}
	}
	t.ioWG.Wait()
}

func (t *TCP) SetDrainTimeout(d time.Duration) { t.hub.SetDrainTimeout(d) }

func (t *TCP) Stats() Stats {
	s := t.hub.Stats()
	s.Reconnects = t.reconnects.Load()
	return s
}

func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		for _, ln := range t.lns {
			if ln != nil {
				if err := ln.Close(); err != nil && t.closeErr == nil {
					t.closeErr = err
				}
			}
		}
		for _, row := range t.conns {
			for _, tc := range row {
				if tc == nil {
					continue
				}
				tc.mu.Lock()
				if tc.c != nil {
					if err := tc.c.Close(); err != nil && t.closeErr == nil {
						t.closeErr = err
					}
				}
				tc.mu.Unlock()
			}
		}
	})
	return t.closeErr
}
